// Machine-readable benchmark telemetry (DESIGN.md §6, EXPERIMENTS.md
// "Recording a benchmark run").
//
// google-benchmark's console output is for humans; the perf trajectory
// across PRs is tracked through one BENCH_<bench>.json per bench binary,
// written when the process exits:
//
//   {
//     "schema": "fdbscan-bench-telemetry-v1",
//     "run":     {"bench", "date_env", "threads", "scale"},
//     "entries": [{"name", "dataset", "algo", "n", "deterministic",
//                  "wall_ms", "counters": {...},
//                  "phase_ms": {"index", "preprocess", "main", "finalize"},
//                  "error"?}]
//   }
//
// The deterministic work counters (dist_comps, nodes_visited, clusters,
// noise) are bit-exact across thread counts (see test_thread_invariance),
// which makes them gateable at a 0% budget by tools/bench_compare.py —
// wall-clock on this CPU substrate is noisy, work counts are not.
// Entries whose algorithm does *not* guarantee that (CUDA-DClust's chain
// growth races on CAS absorption) carry deterministic=false and are
// exempted from the counter gate.
//
// Every bench routes through bench::register_run / bench::report
// (common.h), which records entries here; the bench main() (telemetry.cpp
// replaces benchmark_main) writes the file. Environment:
//   FDBSCAN_BENCH_OUT   output path (default ./BENCH_<bench>.json)
//   FDBSCAN_BENCH_DATE  value recorded as run.date_env (default: now, UTC)
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "exec/trace.h"

namespace fdbscan::bench {

/// What a benchmark entry measured: which dataset, which algorithm, at
/// what problem size — the series key of the paper's figures.
struct RunMeta {
  std::string dataset;
  std::string algo;
  std::int64_t n = 0;
  /// Whether the algorithm's work counters are bit-exact across thread
  /// counts (true for everything except the chain-racing CUDA-DClust).
  bool deterministic = true;
};

/// One recorded benchmark entry.
struct TelemetryEntry {
  std::string name;  ///< full google-benchmark entry name (unique per file)
  RunMeta meta;
  double wall_ms = 0.0;
  /// Counter name/value pairs, in recording order (mirrors the
  /// benchmark::State user counters of the entry).
  std::vector<std::pair<std::string, double>> counters;
  /// Per-phase milliseconds (zero when the entry has no phase breakdown).
  double phase_index_ms = 0.0;
  double phase_preprocess_ms = 0.0;
  double phase_main_ms = 0.0;
  double phase_finalize_ms = 0.0;
  /// Peak auxiliary ("device") bytes charged to the run's MemoryTracker
  /// (0 when the entry ran without one) — first-class, so bench_compare
  /// and trace_summary read the same number table_memory derives ratios
  /// from.
  std::int64_t peak_bytes = 0;
  /// Per-kernel aggregates of the entry's launches (populated only when
  /// FDBSCAN_TRACE is active; empty otherwise). Serialized as the
  /// optional "kernels" array.
  std::vector<exec::KernelAggregate> kernels;
  /// Service-level measurements (ClusterService benches only): terminal
  /// request counts and latency summaries from ServiceMetrics, flattened
  /// to name/value pairs. Serialized as the optional "service" object
  /// when nonempty; tools/bench_compare.py --gate-service reads it.
  std::vector<std::pair<std::string, double>> service;
  /// The obs registry's view of the same window (per-entry deltas of the
  /// fdbscan_service_* metrics), staged alongside the service block.
  /// Serialized as the optional "obs" object; bench_compare.py
  /// --gate-obs cross-checks shared keys bit-equal against "service".
  std::vector<std::pair<std::string, double>> obs;
  /// Nonempty when the run was skipped (e.g. simulated device OOM); such
  /// entries carry no comparable measurements.
  std::string error;
};

namespace telemetry {

/// Records one entry into the process-wide registry (thread-safe).
void record(TelemetryEntry entry);

/// Stages a service block for the NEXT recorded entry (consumed by
/// record()). Bench bodies call this from inside the entry, before
/// register_custom builds and records the TelemetryEntry.
void stage_service_block(std::vector<std::pair<std::string, double>> service);

/// Stages an obs-registry block for the NEXT recorded entry (consumed
/// by record(), like stage_service_block).
void stage_obs_block(std::vector<std::pair<std::string, double>> obs);

/// Derives the bench name (and default output file) from argv[0].
void set_binary_name(const char* argv0);

/// Writes BENCH_<bench>.json (or $FDBSCAN_BENCH_OUT) and returns the
/// path; empty string when there is nothing to write.
std::string write_json();

}  // namespace telemetry
}  // namespace fdbscan::bench
