# Telemetry smoke gate, driven by ctest (see bench/CMakeLists.txt).
#
# For each §5 bench: run at FDBSCAN_BENCH_SCALE=0.02 with 1 worker and
# with 8 workers, validate both BENCH_*.json files against the schema,
# then diff them with tools/bench_compare.py at a 0% counter budget
# (--skip-wall: only the deterministic work counters are required to be
# bit-identical across thread counts).
#
# Then run fig4_nsweep once more with FDBSCAN_TRACE on: the emitted
# Chrome trace must pass tools/trace_summary.py --validate (balanced
# name-matched B/E pairs, monotone per-track timestamps), the summary
# must render, the traced telemetry must carry per-kernel aggregates,
# and the traced run's summed wall time must stay within 5% (+ absolute
# slack) of the untraced 8-worker run — the tracing overhead budget of
# DESIGN.md §8.
#
# Then run fig4_nsweep once more with FDBSCAN_BENCH_CANCEL_TOKEN=1 (an
# uncancelled CancelToken installed around every entry, putting the
# per-chunk cancellation polls on the measured path): counters must stay
# bit-exact and the summed wall time within 2% (+ slack) of the plain
# 8-worker run — the cancellation-overhead budget of DESIGN.md §10.
#
# service_throughput (in SERVICE_BENCHES) is additionally gated on the
# service contract: under-capacity closed loops reject nothing and build
# one index per dataset; engineered overloads reject exactly their
# overflow; terminal counts partition submitted. It also carries the
# sharded-equivalence entry (SHARD_BENCHES): --gate-shards requires
# zero equivalence failures across the worker x shard sweep and a
# nonzero halo volume, so the gate cannot pass vacuously. Its entries
# also stage the obs registry's per-window deltas (OBS_BENCHES):
# --gate-obs requires the registry mirror to match ServiceMetrics
# bit-equal on every shared key. It also carries the task-graph entries
# (GRAPH_BENCHES): --gate-graph requires graph dispatch bit-equal to
# fork-join across the worker sweep and saturation QPS at least the
# fork-join baseline, non-vacuously.
#
# stream_throughput (in STREAM_BENCHES) is gated on the streaming-session
# contract (--gate-stream): every sliding-window query equivalent to a
# from-scratch run over the live set, BVH rebuilds amortized strictly
# below one per batch, and warm sub-threshold appends rebuilding nothing.
#
# Then run fig4_nsweep once more with the observability plane fully lit
# (FDBSCAN_LOG to a file at debug level): counters must stay bit-exact
# and the summed wall time within 2% (+ slack) of a fresh back-to-back
# plain run — the observability-overhead budget of DESIGN.md §13.
# Finally,
# tools/fdbscan_statusz.py --run spawns service_throughput, signals it
# with SIGUSR1 mid-run, and validates the dumped statusz snapshot
# (Prometheus text parses, bucket sums equal counts, terminal counts
# partition submitted).
#
# Expects: PYTHON, BENCH_DIR, COMPARE, SUMMARY, STATUSZ, WORK_DIR.

cmake_policy(SET CMP0057 NEW)  # IN_LIST operator in script mode

set(SMOKE_BENCHES
  fig4_nsweep
  fig4_minpts
  fig6_cosmo_minpts
  table_densefrac
  table_memory
  table_phases
  ablation_traversal
  service_throughput
  stream_throughput
)

# Benches whose entries share an Engine: after the 1-vs-8 diff they are
# additionally gated on the amortization contract (entries marked
# engine_warm must report 0 index_rebuilds / workspace_reallocs).
set(AMORTIZED_BENCHES fig4_minpts ablation_traversal)

# Benches carrying "service" telemetry blocks: gated on the
# ClusterService contract (tools/bench_compare.py --gate-service).
set(SERVICE_BENCHES service_throughput)

# Benches carrying a sharded-equivalence entry: gated on the sharding
# contract (tools/bench_compare.py --gate-shards) — sharded labels match
# single-engine labels at every worker x shard combination, and the
# equivalence is non-vacuous (multi-shard runs happened, halo volume
# nonzero).
set(SHARD_BENCHES service_throughput)

# Benches staging obs-registry deltas alongside their service blocks:
# gated on the mirror cross-check (tools/bench_compare.py --gate-obs).
set(OBS_BENCHES service_throughput)

# Benches carrying the task-graph entries: gated on the graph contract
# (tools/bench_compare.py --gate-graph) — graph dispatch bit-equal to
# fork-join across the worker sweep (densebox and sharded paths
# included), and saturation QPS at least the fork-join baseline.
set(GRAPH_BENCHES service_throughput)

# Benches carrying streaming-session entries: gated on the stream
# contract (tools/bench_compare.py --gate-stream) — every streamed query
# equivalent to a from-scratch run over the live set, rebuilds amortized
# below one per batch, warm sub-threshold appends rebuilding nothing.
set(STREAM_BENCHES stream_throughput)

file(MAKE_DIRECTORY ${WORK_DIR})

foreach(bench ${SMOKE_BENCHES})
  if(NOT EXISTS ${BENCH_DIR}/${bench})
    message(FATAL_ERROR "bench_smoke: missing bench binary ${BENCH_DIR}/${bench}")
  endif()

  foreach(threads 1 8)
    set(out ${WORK_DIR}/BENCH_${bench}_t${threads}.json)
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E env
        FDBSCAN_BENCH_SCALE=0.02
        FDBSCAN_NUM_THREADS=${threads}
        FDBSCAN_BENCH_OUT=${out}
        FDBSCAN_BENCH_DATE=smoke
        ${BENCH_DIR}/${bench}
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE run_out
      ERROR_VARIABLE run_err)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "bench_smoke: ${bench} (threads=${threads}) exited ${rc}\n${run_out}\n${run_err}")
    endif()
    if(NOT EXISTS ${out})
      message(FATAL_ERROR
        "bench_smoke: ${bench} (threads=${threads}) wrote no telemetry file ${out}")
    endif()

    execute_process(
      COMMAND ${PYTHON} ${COMPARE} --validate ${out}
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE val_out
      ERROR_VARIABLE val_err)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "bench_smoke: schema validation failed for ${out}\n${val_out}\n${val_err}")
    endif()
  endforeach()

  execute_process(
    COMMAND ${PYTHON} ${COMPARE} --skip-wall
      ${WORK_DIR}/BENCH_${bench}_t1.json
      ${WORK_DIR}/BENCH_${bench}_t8.json
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE cmp_out
    ERROR_VARIABLE cmp_err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "bench_smoke: 1-vs-8 worker counter drift in ${bench}\n${cmp_out}\n${cmp_err}")
  endif()
  message(STATUS "bench_smoke: ${bench} ok\n${cmp_out}")

  if(bench IN_LIST AMORTIZED_BENCHES)
    execute_process(
      COMMAND ${PYTHON} ${COMPARE} --gate-amortized
        ${WORK_DIR}/BENCH_${bench}_t1.json
        ${WORK_DIR}/BENCH_${bench}_t8.json
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE amo_out
      ERROR_VARIABLE amo_err)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "bench_smoke: amortization gate failed in ${bench}\n${amo_out}\n${amo_err}")
    endif()
    message(STATUS "bench_smoke: ${bench} amortization ok\n${amo_out}")
  endif()

  if(bench IN_LIST SERVICE_BENCHES)
    execute_process(
      COMMAND ${PYTHON} ${COMPARE} --gate-service
        ${WORK_DIR}/BENCH_${bench}_t1.json
        ${WORK_DIR}/BENCH_${bench}_t8.json
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE svc_out
      ERROR_VARIABLE svc_err)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "bench_smoke: service gate failed in ${bench}\n${svc_out}\n${svc_err}")
    endif()
    message(STATUS "bench_smoke: ${bench} service contract ok\n${svc_out}")
  endif()

  if(bench IN_LIST SHARD_BENCHES)
    execute_process(
      COMMAND ${PYTHON} ${COMPARE} --gate-shards
        ${WORK_DIR}/BENCH_${bench}_t1.json
        ${WORK_DIR}/BENCH_${bench}_t8.json
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE shd_out
      ERROR_VARIABLE shd_err)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "bench_smoke: shard gate failed in ${bench}\n${shd_out}\n${shd_err}")
    endif()
    message(STATUS "bench_smoke: ${bench} shard contract ok\n${shd_out}")
  endif()

  if(bench IN_LIST STREAM_BENCHES)
    execute_process(
      COMMAND ${PYTHON} ${COMPARE} --gate-stream
        ${WORK_DIR}/BENCH_${bench}_t1.json
        ${WORK_DIR}/BENCH_${bench}_t8.json
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE stm_out
      ERROR_VARIABLE stm_err)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "bench_smoke: stream gate failed in ${bench}\n${stm_out}\n${stm_err}")
    endif()
    message(STATUS "bench_smoke: ${bench} stream contract ok\n${stm_out}")
  endif()

  if(bench IN_LIST GRAPH_BENCHES)
    execute_process(
      COMMAND ${PYTHON} ${COMPARE} --gate-graph
        ${WORK_DIR}/BENCH_${bench}_t1.json
        ${WORK_DIR}/BENCH_${bench}_t8.json
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE gph_out
      ERROR_VARIABLE gph_err)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "bench_smoke: graph gate failed in ${bench}\n${gph_out}\n${gph_err}")
    endif()
    message(STATUS "bench_smoke: ${bench} graph contract ok\n${gph_out}")
  endif()

  if(bench IN_LIST OBS_BENCHES)
    execute_process(
      COMMAND ${PYTHON} ${COMPARE} --gate-obs
        ${WORK_DIR}/BENCH_${bench}_t1.json
        ${WORK_DIR}/BENCH_${bench}_t8.json
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE obs_out
      ERROR_VARIABLE obs_err)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "bench_smoke: obs mirror gate failed in ${bench}\n${obs_out}\n${obs_err}")
    endif()
    message(STATUS "bench_smoke: ${bench} obs mirror ok\n${obs_out}")
  endif()
endforeach()

# --- Traced run: trace validity + telemetry aggregates + overhead gate ---

set(trace_bench fig4_nsweep)
set(trace_json ${WORK_DIR}/smoke_trace.json)
set(traced_telemetry ${WORK_DIR}/BENCH_${trace_bench}_traced.json)
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
    FDBSCAN_BENCH_SCALE=0.02
    FDBSCAN_NUM_THREADS=8
    FDBSCAN_BENCH_OUT=${traced_telemetry}
    FDBSCAN_BENCH_DATE=smoke
    FDBSCAN_TRACE=${trace_json}
    ${BENCH_DIR}/${trace_bench}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "bench_smoke: traced ${trace_bench} exited ${rc}\n${run_out}\n${run_err}")
endif()
if(NOT EXISTS ${trace_json})
  message(FATAL_ERROR
    "bench_smoke: traced run wrote no trace file ${trace_json}")
endif()

execute_process(
  COMMAND ${PYTHON} ${SUMMARY} --validate ${trace_json}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE val_out
  ERROR_VARIABLE val_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "bench_smoke: trace schema validation failed for ${trace_json}\n${val_out}\n${val_err}")
endif()

execute_process(
  COMMAND ${PYTHON} ${SUMMARY} --top 5 ${trace_json}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE sum_out
  ERROR_VARIABLE sum_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "bench_smoke: trace summary failed for ${trace_json}\n${sum_out}\n${sum_err}")
endif()
message(STATUS "bench_smoke: trace summary\n${sum_out}")

execute_process(
  COMMAND ${PYTHON} ${COMPARE} --validate ${traced_telemetry}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE val_out
  ERROR_VARIABLE val_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "bench_smoke: schema validation failed for ${traced_telemetry}\n${val_out}\n${val_err}")
endif()
file(READ ${traced_telemetry} traced_doc)
if(NOT traced_doc MATCHES "\"kernels\":")
  message(FATAL_ERROR
    "bench_smoke: traced telemetry ${traced_telemetry} carries no per-kernel aggregates")
endif()

# Tracing-overhead gate: counters must stay bit-exact and the summed wall
# time within the §8 budget of the untraced 8-worker run.
execute_process(
  COMMAND ${PYTHON} ${COMPARE} --skip-wall --wall-sum-budget-pct 5
    ${WORK_DIR}/BENCH_${trace_bench}_t8.json
    ${traced_telemetry}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE cmp_out
  ERROR_VARIABLE cmp_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "bench_smoke: tracing overhead gate failed for ${trace_bench}\n${cmp_out}\n${cmp_err}")
endif()
message(STATUS "bench_smoke: traced ${trace_bench} ok\n${cmp_out}")

# --- Cancellation-overhead gate ------------------------------------------
# The same bench with an (uncancelled) CancelToken installed around every
# entry: the per-chunk token polls must cost <= 2% summed wall time and
# must not perturb the deterministic work counters at all.

set(cancel_bench fig4_nsweep)
set(cancel_telemetry ${WORK_DIR}/BENCH_${cancel_bench}_cancel_token.json)
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
    FDBSCAN_BENCH_SCALE=0.02
    FDBSCAN_NUM_THREADS=8
    FDBSCAN_BENCH_OUT=${cancel_telemetry}
    FDBSCAN_BENCH_DATE=smoke
    FDBSCAN_BENCH_CANCEL_TOKEN=1
    ${BENCH_DIR}/${cancel_bench}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "bench_smoke: cancel-token ${cancel_bench} exited ${rc}\n${run_out}\n${run_err}")
endif()

execute_process(
  COMMAND ${PYTHON} ${COMPARE} --skip-wall --wall-sum-budget-pct 2
    ${WORK_DIR}/BENCH_${cancel_bench}_t8.json
    ${cancel_telemetry}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE cmp_out
  ERROR_VARIABLE cmp_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "bench_smoke: cancellation overhead gate failed for ${cancel_bench}\n${cmp_out}\n${cmp_err}")
endif()
message(STATUS "bench_smoke: cancel-token ${cancel_bench} ok\n${cmp_out}")

# --- Observability-overhead gate ------------------------------------------
# The same bench with the structured log fully lit (file sink at debug
# level, so every suppressed-event check AND every emission is on the
# measured path): counters must stay bit-exact and the summed wall time
# within the 2% DESIGN.md §13 budget. A 2% wall budget is well below
# the run-to-run noise of a smoke-scale sweep, so the baseline is a
# fresh plain run taken immediately before (not the minutes-old t8
# run), and the logged run gets a best-of-2: the gate asks "is the obs
# plane's cost >2%", not "did the machine drift since the t8 pass".

set(obs_bench fig4_nsweep)
set(obs_baseline ${WORK_DIR}/BENCH_${obs_bench}_obsbase.json)
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
    FDBSCAN_BENCH_SCALE=0.02
    FDBSCAN_NUM_THREADS=8
    FDBSCAN_BENCH_OUT=${obs_baseline}
    FDBSCAN_BENCH_DATE=smoke
    ${BENCH_DIR}/${obs_bench}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "bench_smoke: obs-overhead baseline ${obs_bench} exited ${rc}\n${run_out}\n${run_err}")
endif()

set(obs_gate_ok FALSE)
foreach(attempt RANGE 1 2)
  set(obs_telemetry ${WORK_DIR}/BENCH_${obs_bench}_obs${attempt}.json)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
      FDBSCAN_BENCH_SCALE=0.02
      FDBSCAN_NUM_THREADS=8
      FDBSCAN_BENCH_OUT=${obs_telemetry}
      FDBSCAN_BENCH_DATE=smoke
      FDBSCAN_LOG=${WORK_DIR}/smoke_obs_log.jsonl
      FDBSCAN_LOG_LEVEL=debug
      ${BENCH_DIR}/${obs_bench}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "bench_smoke: obs-overhead ${obs_bench} exited ${rc}\n${run_out}\n${run_err}")
  endif()

  execute_process(
    COMMAND ${PYTHON} ${COMPARE} --skip-wall --wall-sum-budget-pct 2
      ${obs_baseline}
      ${obs_telemetry}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE cmp_out
    ERROR_VARIABLE cmp_err)
  if(rc EQUAL 0)
    set(obs_gate_ok TRUE)
    break()
  endif()
  message(STATUS
    "bench_smoke: obs-overhead attempt ${attempt} over budget, retrying\n${cmp_out}")
endforeach()
if(NOT obs_gate_ok)
  message(FATAL_ERROR
    "bench_smoke: observability overhead gate failed for ${obs_bench}\n${cmp_out}\n${cmp_err}")
endif()
message(STATUS "bench_smoke: obs-overhead ${obs_bench} ok\n${cmp_out}")

# --- Live statusz check ----------------------------------------------------
# Spawn service_throughput, SIGUSR1 it mid-run, and validate the dumped
# snapshot: Prometheus text parses, histogram bucket sums equal their
# counts, and the fdbscan_service_* terminal counters partition
# submitted (the ISSUE's acceptance criterion for the dump path).

execute_process(
  COMMAND ${PYTHON} ${STATUSZ} --run ${BENCH_DIR}/service_throughput
    --workdir ${WORK_DIR}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stz_out
  ERROR_VARIABLE stz_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "bench_smoke: live statusz check failed\n${stz_out}\n${stz_err}")
endif()
message(STATUS "bench_smoke: live statusz ok\n${stz_out}")
