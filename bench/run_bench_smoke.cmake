# Telemetry smoke gate, driven by ctest (see bench/CMakeLists.txt).
#
# For each §5 bench: run at FDBSCAN_BENCH_SCALE=0.02 with 1 worker and
# with 8 workers, validate both BENCH_*.json files against the schema,
# then diff them with tools/bench_compare.py at a 0% counter budget
# (--skip-wall: only the deterministic work counters are required to be
# bit-identical across thread counts).
#
# Expects: PYTHON, BENCH_DIR, COMPARE, WORK_DIR.

set(SMOKE_BENCHES
  fig4_nsweep
  fig6_cosmo_minpts
  table_densefrac
  table_memory
  table_phases
  ablation_traversal
)

file(MAKE_DIRECTORY ${WORK_DIR})

foreach(bench ${SMOKE_BENCHES})
  if(NOT EXISTS ${BENCH_DIR}/${bench})
    message(FATAL_ERROR "bench_smoke: missing bench binary ${BENCH_DIR}/${bench}")
  endif()

  foreach(threads 1 8)
    set(out ${WORK_DIR}/BENCH_${bench}_t${threads}.json)
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E env
        FDBSCAN_BENCH_SCALE=0.02
        FDBSCAN_NUM_THREADS=${threads}
        FDBSCAN_BENCH_OUT=${out}
        FDBSCAN_BENCH_DATE=smoke
        ${BENCH_DIR}/${bench}
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE run_out
      ERROR_VARIABLE run_err)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "bench_smoke: ${bench} (threads=${threads}) exited ${rc}\n${run_out}\n${run_err}")
    endif()
    if(NOT EXISTS ${out})
      message(FATAL_ERROR
        "bench_smoke: ${bench} (threads=${threads}) wrote no telemetry file ${out}")
    endif()

    execute_process(
      COMMAND ${PYTHON} ${COMPARE} --validate ${out}
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE val_out
      ERROR_VARIABLE val_err)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "bench_smoke: schema validation failed for ${out}\n${val_out}\n${val_err}")
    endif()
  endforeach()

  execute_process(
    COMMAND ${PYTHON} ${COMPARE} --skip-wall
      ${WORK_DIR}/BENCH_${bench}_t1.json
      ${WORK_DIR}/BENCH_${bench}_t8.json
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE cmp_out
    ERROR_VARIABLE cmp_err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "bench_smoke: 1-vs-8 worker counter drift in ${bench}\n${cmp_out}\n${cmp_err}")
  endif()
  message(STATUS "bench_smoke: ${bench} ok\n${cmp_out}")
endforeach()
