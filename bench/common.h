// Shared infrastructure for the figure/table reproduction benches.
//
// Every bench registers one google-benchmark entry per (dataset,
// parameter, algorithm) point of the corresponding paper figure and runs
// it exactly once (Iterations(1)): these are end-to-end clustering runs,
// not microbenchmarks. Counters attached to each entry carry the series
// the paper plots plus the architecture-neutral work counts (DESIGN.md
// §6 explains why wall-clock alone does not transfer from a V100 to this
// CPU substrate). Every entry is also recorded into the telemetry
// registry (telemetry.h) and lands in BENCH_<bench>.json when the binary
// exits, so tools/bench_compare.py can gate counter drift across runs.
//
// Environment knobs:
//   FDBSCAN_BENCH_SCALE      multiplies every problem size (default 1).
//   FDBSCAN_BENCH_DEVICE_MB  simulated device memory for G-DBSCAN
//                            (default 384, chosen so the OOM points of
//                            Fig. 4(h) appear at the largest G-DBSCAN
//                            sweep sizes, as they do on the paper's
//                            16 GB V100 at its much larger scale).
//   FDBSCAN_NUM_THREADS      worker threads (default: hardware).
//   FDBSCAN_BENCH_OUT        telemetry output path (telemetry.h).
//   FDBSCAN_BENCH_CANCEL_TOKEN=1  installs an (uncancelled) CancelToken
//                            around every entry body, so the per-chunk
//                            cancellation polls are on the measured path.
//                            A tokened run vs a plain run of the same
//                            bench bounds the cancellation overhead
//                            (bench_compare.py --wall-sum-budget-pct 2).
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "core/clustering.h"
#include "data/generators.h"
#include "exec/cancel.h"
#include "exec/timer.h"
#include "telemetry.h"

namespace fdbscan::bench {

inline double scale() {
  if (const char* env = std::getenv("FDBSCAN_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 1.0;
}

inline std::int64_t scaled(std::int64_t n) {
  return std::max<std::int64_t>(64, static_cast<std::int64_t>(
                                        static_cast<double>(n) * scale()));
}

/// Scales a sweep of problem sizes and drops duplicates introduced by the
/// 64-point floor of scaled(): at small FDBSCAN_BENCH_SCALE several base
/// sizes clamp to the same effective n, and registering them all would
/// produce duplicate google-benchmark entry names — ambiguous series in
/// the telemetry JSON. Order is preserved; first occurrence wins.
inline std::vector<std::int64_t> scaled_sweep(
    std::initializer_list<std::int64_t> bases) {
  std::vector<std::int64_t> sizes;
  sizes.reserve(bases.size());
  for (std::int64_t base : bases) {
    const std::int64_t n = scaled(base);
    if (std::find(sizes.begin(), sizes.end(), n) == sizes.end()) {
      sizes.push_back(n);
    }
  }
  return sizes;
}

inline bool cancel_token_enabled() {
  const char* env = std::getenv("FDBSCAN_BENCH_CANCEL_TOKEN");
  return env != nullptr && env[0] == '1';
}

inline std::size_t device_memory_bytes() {
  std::size_t mb = 384;
  if (const char* env = std::getenv("FDBSCAN_BENCH_DEVICE_MB")) {
    const long v = std::atol(env);
    if (v > 0) mb = static_cast<std::size_t>(v);
  }
  return mb * 1024 * 1024;
}

/// Cosmology sample at the paper's number density (16M particles per
/// 64^3 box): the box shrinks with n so that eps = 0.042 keeps its
/// physical meaning at any sample size (DESIGN.md §2).
inline std::vector<Point3> cosmology(std::int64_t n, std::uint64_t seed = 7) {
  data::CosmologyConfig config;
  config.box_size = 64.0f * std::cbrt(static_cast<float>(n) / 16e6f);
  // Halo count scales with volume so the halo mass function (and with it
  // the dense-cell fractions of Fig. 6/7) is size-independent.
  config.num_halos = std::max<std::int32_t>(
      20, static_cast<std::int32_t>(400.0f * static_cast<float>(n) / 16e6f));
  return data::hacc_like(n, seed, config);
}

/// Attaches the standard counters of a clustering run to a benchmark
/// entry: cluster/noise counts, work counters, memory, dense-cell stats.
inline void report(benchmark::State& state, const Clustering& result) {
  state.counters["clusters"] = static_cast<double>(result.num_clusters);
  state.counters["noise"] = static_cast<double>(result.num_noise());
  state.counters["dist_comps"] =
      static_cast<double>(result.distance_computations);
  if (result.index_nodes_visited > 0) {
    state.counters["nodes_visited"] =
        static_cast<double>(result.index_nodes_visited);
  }
  if (result.peak_memory_bytes > 0) {
    state.counters["peak_MB"] =
        static_cast<double>(result.peak_memory_bytes) / (1024.0 * 1024.0);
  }
  if (result.num_dense_cells > 0) {
    state.counters["dense_cells"] = static_cast<double>(result.num_dense_cells);
    state.counters["dense_pts_pct"] =
        100.0 * static_cast<double>(result.points_in_dense_cells) /
        static_cast<double>(result.labels.size());
  }
  // Amortization counters (DESIGN.md §9): only for runs that went
  // through an Engine, so free-function entries keep their exact
  // historical counter sets. bench_compare.py gates that entries marked
  // engine_warm (by the bench body, from pre-run engine state) report
  // zero rebuilds and zero workspace growths.
  if (result.timings.engine_run) {
    state.counters["index_rebuilds"] =
        static_cast<double>(result.timings.index_rebuilds);
    state.counters["workspace_reallocs"] =
        static_cast<double>(result.timings.workspace_reallocs);
    if (result.timings.grid_cache_hits > 0) {
      state.counters["grid_cache_hits"] =
          static_cast<double>(result.timings.grid_cache_hits);
    }
  }
  // Sharded-execution stats (shard/sharded_engine.h): decomposition
  // volume a real exchange would ship plus the boundary stitching work.
  if (result.num_shards > 0) {
    state.counters["shards"] = static_cast<double>(result.num_shards);
    state.counters["ghosts"] = static_cast<double>(result.shard_ghosts);
    state.counters["cross_edges"] =
        static_cast<double>(result.shard_cross_edges);
    state.counters["halo_KB"] =
        static_cast<double>(result.shard_halo_bytes) / 1024.0;
  }
  // Kernel-launch profile of the main phase (populated by algorithms
  // that time phases through exec::PhaseProfiler). main_workers must be
  // read together with main_imbalance: a single-thread phase reports
  // imbalance 1.0 (one thread matches the mean of one), so workers is
  // what exposes the degenerate case (DESIGN.md §7).
  const auto& main = result.timings.main_profile;
  if (main.launches > 0) {
    state.counters["main_launches"] = static_cast<double>(main.launches);
    state.counters["main_chunks"] = static_cast<double>(main.chunks);
    state.counters["main_workers"] = static_cast<double>(main.workers);
    state.counters["main_imbalance"] = main.imbalance();
  }
}

namespace detail {

/// Copies the entry's user counters (in name order — UserCounters is an
/// ordered map) into a telemetry entry.
inline void copy_counters(const benchmark::State& state,
                          TelemetryEntry& entry) {
  entry.counters.clear();
  entry.counters.reserve(state.counters.size());
  for (const auto& [name, counter] : state.counters) {
    entry.counters.emplace_back(name, static_cast<double>(counter.value));
  }
}

}  // namespace detail

/// Registers a single-shot benchmark running `fn` (returning a
/// Clustering) once per entry. `meta` names the series (dataset, algo,
/// problem size) for the telemetry record; phase timings and counters
/// come from the Clustering itself.
template <class Fn>
void register_run(const std::string& name, const RunMeta& meta, Fn fn) {
  benchmark::RegisterBenchmark(
      name.c_str(),
      [name, meta, fn](benchmark::State& state) {
        for (auto _ : state) {
          const bool tracing = exec::trace_enabled();
          const exec::TraceCursor cursor =
              tracing ? exec::trace_cursor() : exec::TraceCursor{};
          // FDBSCAN_BENCH_CANCEL_TOKEN=1: measure with the per-chunk
          // cancellation polls active (token installed, never raised).
          exec::CancelToken token;
          std::optional<exec::CancelScope> cancel_scope;
          if (cancel_token_enabled()) cancel_scope.emplace(token);
          exec::Timer timer;
          Clustering result;
          {
            // Entry span: the run's kernel slices nest under it in the
            // emitted trace. Interned once per entry name, off the hot
            // path.
            exec::TraceSpan span(
                tracing ? exec::trace_intern(name) : nullptr, "entry");
            result = fn(state);
            if (!tracing) span.close();
          }
          const double wall_ms = timer.seconds() * 1e3;
          benchmark::DoNotOptimize(result);
          report(state, result);

          TelemetryEntry entry;
          entry.name = name;
          entry.meta = meta;
          entry.wall_ms = wall_ms;
          entry.phase_index_ms = result.timings.index_construction * 1e3;
          entry.phase_preprocess_ms = result.timings.preprocessing * 1e3;
          entry.phase_main_ms = result.timings.main * 1e3;
          entry.phase_finalize_ms = result.timings.finalization * 1e3;
          entry.peak_bytes =
              static_cast<std::int64_t>(result.peak_memory_bytes);
          if (tracing) entry.kernels = exec::trace_kernel_aggregates(cursor);
          detail::copy_counters(state, entry);
          if (state.error_occurred()) entry.error = "skipped";
          telemetry::record(std::move(entry));
        }
      })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

/// Registers a single-shot benchmark whose body is not a clustering run
/// (index ablations, memory-ratio entries): `fn(state)` attaches whatever
/// counters it wants to the state; wall time and those counters are
/// recorded into the telemetry registry.
template <class Fn>
void register_custom(const std::string& name, const RunMeta& meta, Fn fn) {
  benchmark::RegisterBenchmark(
      name.c_str(),
      [name, meta, fn](benchmark::State& state) {
        for (auto _ : state) {
          const bool tracing = exec::trace_enabled();
          const exec::TraceCursor cursor =
              tracing ? exec::trace_cursor() : exec::TraceCursor{};
          exec::CancelToken token;
          std::optional<exec::CancelScope> cancel_scope;
          if (cancel_token_enabled()) cancel_scope.emplace(token);
          exec::Timer timer;
          {
            exec::TraceSpan span(
                tracing ? exec::trace_intern(name) : nullptr, "entry");
            fn(state);
            if (!tracing) span.close();
          }
          const double wall_ms = timer.seconds() * 1e3;

          TelemetryEntry entry;
          entry.name = name;
          entry.meta = meta;
          entry.wall_ms = wall_ms;
          if (tracing) entry.kernels = exec::trace_kernel_aggregates(cursor);
          detail::copy_counters(state, entry);
          if (state.error_occurred()) entry.error = "skipped";
          telemetry::record(std::move(entry));
        }
      })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace fdbscan::bench
