// Shared infrastructure for the figure/table reproduction benches.
//
// Every bench registers one google-benchmark entry per (dataset,
// parameter, algorithm) point of the corresponding paper figure and runs
// it exactly once (Iterations(1)): these are end-to-end clustering runs,
// not microbenchmarks. Counters attached to each entry carry the series
// the paper plots plus the architecture-neutral work counts (DESIGN.md
// §6 explains why wall-clock alone does not transfer from a V100 to this
// CPU substrate).
//
// Environment knobs:
//   FDBSCAN_BENCH_SCALE      multiplies every problem size (default 1).
//   FDBSCAN_BENCH_DEVICE_MB  simulated device memory for G-DBSCAN
//                            (default 384, chosen so the OOM points of
//                            Fig. 4(h) appear at the largest G-DBSCAN
//                            sweep sizes, as they do on the paper's
//                            16 GB V100 at its much larger scale).
//   FDBSCAN_NUM_THREADS      worker threads (default: hardware).
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/clustering.h"
#include "data/generators.h"

namespace fdbscan::bench {

inline double scale() {
  if (const char* env = std::getenv("FDBSCAN_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 1.0;
}

inline std::int64_t scaled(std::int64_t n) {
  return std::max<std::int64_t>(64, static_cast<std::int64_t>(
                                        static_cast<double>(n) * scale()));
}

inline std::size_t device_memory_bytes() {
  std::size_t mb = 384;
  if (const char* env = std::getenv("FDBSCAN_BENCH_DEVICE_MB")) {
    const long v = std::atol(env);
    if (v > 0) mb = static_cast<std::size_t>(v);
  }
  return mb * 1024 * 1024;
}

/// Cosmology sample at the paper's number density (16M particles per
/// 64^3 box): the box shrinks with n so that eps = 0.042 keeps its
/// physical meaning at any sample size (DESIGN.md §2).
inline std::vector<Point3> cosmology(std::int64_t n, std::uint64_t seed = 7) {
  data::CosmologyConfig config;
  config.box_size = 64.0f * std::cbrt(static_cast<float>(n) / 16e6f);
  // Halo count scales with volume so the halo mass function (and with it
  // the dense-cell fractions of Fig. 6/7) is size-independent.
  config.num_halos = std::max<std::int32_t>(
      20, static_cast<std::int32_t>(400.0f * static_cast<float>(n) / 16e6f));
  return data::hacc_like(n, seed, config);
}

/// Attaches the standard counters of a clustering run to a benchmark
/// entry: cluster/noise counts, work counters, memory, dense-cell stats.
inline void report(benchmark::State& state, const Clustering& result) {
  state.counters["clusters"] = static_cast<double>(result.num_clusters);
  state.counters["noise"] = static_cast<double>(result.num_noise());
  state.counters["dist_comps"] =
      static_cast<double>(result.distance_computations);
  if (result.index_nodes_visited > 0) {
    state.counters["nodes_visited"] =
        static_cast<double>(result.index_nodes_visited);
  }
  if (result.peak_memory_bytes > 0) {
    state.counters["peak_MB"] =
        static_cast<double>(result.peak_memory_bytes) / (1024.0 * 1024.0);
  }
  if (result.num_dense_cells > 0) {
    state.counters["dense_cells"] = static_cast<double>(result.num_dense_cells);
    state.counters["dense_pts_pct"] =
        100.0 * static_cast<double>(result.points_in_dense_cells) /
        static_cast<double>(result.labels.size());
  }
  // Kernel-launch profile of the main phase (populated by algorithms
  // that time phases through exec::PhaseProfiler).
  const auto& main = result.timings.main_profile;
  if (main.launches > 0) {
    state.counters["main_launches"] = static_cast<double>(main.launches);
    state.counters["main_chunks"] = static_cast<double>(main.chunks);
    state.counters["main_imbalance"] = main.imbalance();
  }
}

/// Registers a single-shot benchmark running `fn` (returning a
/// Clustering) once per entry.
template <class Fn>
void register_run(const std::string& name, Fn fn) {
  benchmark::RegisterBenchmark(name.c_str(),
                               [fn](benchmark::State& state) {
                                 for (auto _ : state) {
                                   Clustering result = fn(state);
                                   benchmark::DoNotOptimize(result);
                                   report(state, result);
                                 }
                               })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace fdbscan::bench
