// Fig. 6: impact of minpts on execution time for the 3-D cosmology
// problem at eps = 0.042 (the physically meaningful linking length).
// FDBSCAN vs FDBSCAN-DenseBox; the paper's observations to reproduce:
// similar at low minpts, FDBSCAN clearly faster at large minpts as the
// dense-cell population vanishes (13% of points at minpts = 5, <2% at
// 50, none above ~100-200) and DenseBox pays grid+mixed-tree overhead
// for nothing.
//
// The sample is density-matched to the paper's 36M-particle snapshot
// (DESIGN.md §2); default 250k points, scaled by FDBSCAN_BENCH_SCALE.
#include <benchmark/benchmark.h>

#include <memory>

#include "common.h"
#include "core/fdbscan.h"
#include "core/fdbscan_densebox.h"

namespace {

using namespace fdbscan;
using namespace fdbscan::bench;

void register_all() {
  const std::int64_t n = scaled(250000);
  const auto points =
      std::make_shared<const std::vector<Point3>>(cosmology(n));
  for (std::int32_t minpts : {2, 5, 10, 20, 50, 100, 200}) {
    const Parameters params{0.042f, minpts};
    const std::string suffix = "minpts=" + std::to_string(minpts);
    register_run("fig6_cosmo/fdbscan/" + suffix,
                 RunMeta{"cosmo", "fdbscan", n}, [=](benchmark::State&) {
                   return fdbscan::fdbscan(*points, params);
                 });
    register_run("fig6_cosmo/fdbscan-densebox/" + suffix,
                 RunMeta{"cosmo", "fdbscan-densebox", n},
                 [=](benchmark::State&) {
                   return fdbscan_densebox(*points, params);
                 });
  }
}

const bool registered = (register_all(), true);

}  // namespace
