// The three 2-D evaluation datasets of §5.1 with their Fig. 4 parameter
// choices, shared by the fig4_* benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/generators.h"
#include "geometry/point.h"

namespace fdbscan::bench {

struct Dataset2D {
  std::string name;
  std::vector<Point2> (*generate)(std::int64_t, std::uint64_t);
  // Fig. 4(a-c): fixed eps for the minpts sweep, and the sweep itself
  // (bracketing each dataset's fixed minpts from the other panels, as
  // the paper's ranges bracket the regime change from few large to many
  // small clusters).
  float minpts_sweep_eps;
  std::int32_t minpts_sweep[5];
  // Fig. 4(d-f): fixed minpts for the eps sweep.
  std::int32_t eps_sweep_minpts;
  // Fig. 4(g-i): fixed (minpts, eps) for the n sweep.
  std::int32_t nsweep_minpts;
  float nsweep_eps;
};

inline const Dataset2D kDatasets2D[3] = {
    {"ngsim", data::ngsim_like, 0.005f, {50, 100, 200, 350, 500}, 500, 500,
     0.0025f},
    {"portotaxi", data::porto_taxi_like, 0.01f, {5, 10, 20, 50, 100}, 50,
     1000, 0.05f},
    {"3droad", data::road_network_like, 0.08f, {12, 25, 50, 100, 200}, 100,
     100, 0.01f},
};

}  // namespace fdbscan::bench
