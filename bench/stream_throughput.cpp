// StreamingEngine benchmarks (DESIGN.md §14): the streaming-session
// claims that are gateable, each as one deterministic single-shot entry.
//
//   sliding_window/{ngsim,porto,hacc}  a sliding window replayed over a
//                generator stream: every step expires the oldest prefix,
//                inserts the next batch and queries; each query's labels
//                must be equivalent to a from-scratch run over the live
//                set (stream_equiv_failures == 0), and the threshold
//                rebuild policy must amortize — strictly fewer BVH
//                builds than one-per-batch (stream_rebuilds <=
//                stream_rebuild_bound).
//   warm_append  the zero-rebuild amortization claim: after the lazy
//                initial build, sub-threshold appends are absorbed by
//                the side-buffer membership kernels and every query
//                reports timings.index_rebuilds == 0
//                (warm_query_rebuilds == 0).
//
// The equivalence verdicts and rebuild counts derive from the
// bit-deterministic core flags (test_thread_invariance), so they are
// worker-count invariant and gateable at 0%: tools/bench_compare.py
// --gate-stream enforces the invariants, and a run in which no entry
// carries the counters is itself a gate failure (vacuous != passing).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common.h"
#include "core/fdbscan.h"
#include "core/validate.h"
#include "data/generators.h"
#include "data/sliding_window.h"
#include "stream/streaming_engine.h"

namespace {

using namespace fdbscan;
using namespace fdbscan::bench;

/// Replays `arrivals` through a SlidingWindow-driven StreamingEngine and
/// stages the gate counters: every step's query is checked against a
/// from-scratch fdbscan() over the live set, and the rebuild total is
/// compared to a bound strictly below one-build-per-batch.
template <int DIM>
void run_sliding_window(benchmark::State& state,
                        const std::vector<Point<DIM>>& arrivals,
                        Parameters params, std::int64_t window,
                        std::int64_t batch) {
  std::int64_t checked = 0;
  std::int64_t failures = 0;
  std::int64_t steps = 0;
  stream::StreamingEngine<DIM> engine(params);
  data::SlidingWindow<DIM> driver(arrivals, window, batch);
  while (!driver.done()) {
    const data::WindowStep<DIM> step = driver.next();
    engine.expire(step.expire_before);
    engine.insert(step.batch);
    const Clustering streamed = engine.query();
    const std::vector<Point<DIM>> live = driver.live_points();
    const Clustering reference = fdbscan::fdbscan(live, params);
    ++checked;
    if (!equivalent_clusterings(live, params, reference, streamed).ok) {
      ++failures;
    }
    ++steps;
  }
  const stream::StreamCounters c = engine.counters();
  // One-build-per-batch is the naive schedule; the threshold policy
  // (pending > rebuild_fraction * live) must beat it with room.
  const std::int64_t bound = steps / 2 + 2;
  state.counters["stream_steps"] = static_cast<double>(steps);
  state.counters["stream_equiv_checked"] = static_cast<double>(checked);
  state.counters["stream_equiv_failures"] = static_cast<double>(failures);
  state.counters["stream_rebuilds"] = static_cast<double>(c.index_rebuilds);
  state.counters["stream_rebuild_bound"] = static_cast<double>(bound);
  state.counters["points_inserted"] = static_cast<double>(c.points_inserted);
  state.counters["points_expired"] = static_cast<double>(c.points_expired);
  state.counters["incremental_inserts"] =
      static_cast<double>(c.incremental_inserts);
  state.counters["refinalized_queries"] =
      static_cast<double>(c.refinalized_queries);
  state.counters["full_refreshes"] = static_cast<double>(c.full_refreshes);
}

void register_all() {
  // Floors keep the window geometry meaningful at tiny smoke scales.
  const std::int64_t n = std::max<std::int64_t>(scaled(4800), 480);
  const std::int64_t batch = std::max<std::int64_t>(n / 48, 10);
  const std::int64_t window = 20 * batch;

  register_custom(
      "stream_throughput/sliding_window/ngsim/n=" + std::to_string(n),
      RunMeta{"ngsim-like", "stream", n}, [=](benchmark::State& state) {
        run_sliding_window<2>(state, data::ngsim_like(n, 5),
                              Parameters{0.02f, 5}, window, batch);
      });

  register_custom(
      "stream_throughput/sliding_window/porto/n=" + std::to_string(n),
      RunMeta{"porto-like", "stream", n}, [=](benchmark::State& state) {
        run_sliding_window<2>(state, data::porto_taxi_like(n, 9),
                              Parameters{0.03f, 5}, window, batch);
      });

  register_custom(
      "stream_throughput/sliding_window/hacc/n=" + std::to_string(n),
      RunMeta{"hacc-like", "stream", n}, [=](benchmark::State& state) {
        run_sliding_window<3>(state, data::hacc_like(n, 13),
                              Parameters{0.035f, 4}, window, batch);
      });

  // --- Zero-rebuild warm appends ------------------------------------------
  register_custom(
      "stream_throughput/warm_append/n=" + std::to_string(n),
      RunMeta{"gaussian", "stream", n}, [=](benchmark::State& state) {
        const Parameters params{0.05f, 5};
        constexpr std::int64_t kAppends = 8;
        // Total appended volume stays under rebuild_fraction * seed, so
        // the side buffer absorbs every batch without a rebuild.
        const std::int64_t b = std::max<std::int64_t>(n / 64, 4);
        const auto seed = data::gaussian_mixture2(n, 5, 1.0f, 0.01f, 21);
        const auto extra = data::gaussian_mixture2(kAppends * b, 5, 1.0f,
                                                   0.01f, 22);
        stream::StreamingEngine<2> engine(seed, params);
        const Clustering first = engine.query();  // pays the lazy build
        std::int64_t warm_checked = 0;
        std::int64_t warm_rebuilds = first.timings.index_rebuilds - 1;
        std::int64_t failures = 0;
        for (std::int64_t i = 0; i < kAppends; ++i) {
          engine.insert(std::span<const Point2>(extra.data() +
                                                    static_cast<std::size_t>(
                                                        i * b),
                                                static_cast<std::size_t>(b)));
          const Clustering streamed = engine.query();
          ++warm_checked;
          warm_rebuilds += streamed.timings.index_rebuilds;
          const std::vector<Point2> live = engine.live_points();
          const Clustering reference = fdbscan::fdbscan(live, params);
          if (!equivalent_clusterings(live, params, reference, streamed).ok) {
            ++failures;
          }
        }
        const stream::StreamCounters c = engine.counters();
        state.counters["stream_equiv_checked"] =
            static_cast<double>(warm_checked);
        state.counters["stream_equiv_failures"] =
            static_cast<double>(failures);
        state.counters["warm_queries_checked"] =
            static_cast<double>(warm_checked);
        state.counters["warm_query_rebuilds"] =
            static_cast<double>(warm_rebuilds);
        state.counters["stream_rebuilds"] =
            static_cast<double>(c.index_rebuilds);
        state.counters["stream_rebuild_bound"] = 1.0;  // the lazy build only
        state.counters["incremental_inserts"] =
            static_cast<double>(c.incremental_inserts);
        state.counters["refinalized_queries"] =
            static_cast<double>(c.refinalized_queries);
      });
}

const bool registered = (register_all(), true);

}  // namespace
