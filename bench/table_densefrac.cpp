// §5.1/§5.2 dense-cell population statistics:
//   * 2-D road datasets: >95% of points in dense cells at the Fig. 4
//     parameters, "even for the largest values of minpts";
//   * 3-D cosmology: ~13% at minpts = 5, <2% at 50, none above ~100-200
//     (eps = 0.042), and ~91% at eps = 1.0.
// Each entry reports the dense-cell count and point percentage via the
// dense_pts_pct counter.
#include <benchmark/benchmark.h>

#include <memory>

#include "common.h"
#include "core/fdbscan_densebox.h"
#include "datasets_2d.h"

namespace {

using namespace fdbscan;
using namespace fdbscan::bench;

void register_all() {
  const std::int64_t n = scaled(16384);
  for (const auto& dataset : kDatasets2D) {
    const auto points =
        std::make_shared<const std::vector<Point2>>(dataset.generate(n, 42));
    for (std::int32_t minpts :
         {dataset.minpts_sweep[0], dataset.minpts_sweep[2],
          dataset.minpts_sweep[4]}) {
      const Parameters params{dataset.minpts_sweep_eps, minpts};
      register_run("table_densefrac/2d/" + dataset.name +
                       "/minpts=" + std::to_string(minpts),
                   RunMeta{dataset.name, "fdbscan-densebox", n},
                   [=](benchmark::State&) {
                     return fdbscan_densebox(*points, params);
                   });
    }
  }

  const std::int64_t n3 = scaled(250000);
  const auto cosmo =
      std::make_shared<const std::vector<Point3>>(cosmology(n3));
  for (std::int32_t minpts : {5, 50, 200}) {
    register_run("table_densefrac/cosmo/eps=0.042/minpts=" +
                     std::to_string(minpts),
                 RunMeta{"cosmo", "fdbscan-densebox", n3},
                 [=](benchmark::State&) {
                   return fdbscan_densebox(*cosmo,
                                           Parameters{0.042f, minpts});
                 });
  }
  register_run("table_densefrac/cosmo/eps=1.0/minpts=5",
               RunMeta{"cosmo", "fdbscan-densebox", n3},
               [=](benchmark::State&) {
                 return fdbscan_densebox(*cosmo, Parameters{1.0f, 5});
               });
}

const bool registered = (register_all(), true);

}  // namespace
