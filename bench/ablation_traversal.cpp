// Ablation of §4.1's two traversal optimizations:
//   * masked ("half") traversal in the main phase — processes each
//     neighbor pair once instead of twice;
//   * early exit in the preprocessing phase — stops counting at minpts
//     neighbors instead of computing the full |N_eps(x)|.
// Compare wall time and (decisively) the dist_comps counters.
#include <benchmark/benchmark.h>

#include <memory>

#include "common.h"
#include "core/engine.h"
#include "datasets_2d.h"

namespace {

using namespace fdbscan;
using namespace fdbscan::bench;

void register_all() {
  const std::int64_t n = scaled(16384);
  for (const auto& dataset : kDatasets2D) {
    const auto points =
        std::make_shared<const std::vector<Point2>>(dataset.generate(n, 42));
    // Shared engine: the four ablation variants differ only in traversal
    // options, which the point BVH does not depend on — one index build
    // serves all of them, and entries after the first run warm.
    const auto engine = std::make_shared<Engine<2>>(*points);
    const Parameters params{dataset.minpts_sweep_eps, 32};
    const struct {
      const char* name;
      bool masked;
      bool early_exit;
    } variants[] = {
        {"baseline_no_opts", false, false},
        {"masked_only", true, false},
        {"early_exit_only", false, true},
        {"both_opts", true, true},
    };
    for (const auto& v : variants) {
      Options options;
      options.masked_traversal = v.masked;
      options.early_exit = v.early_exit;
      register_run(
          "ablation_traversal/" + dataset.name + "/" + v.name,
          RunMeta{dataset.name, std::string("fdbscan/") + v.name, n},
          // points is captured explicitly: the engine only borrows the
          // vector, so the shared_ptr must outlive every entry.
          [engine, points, params, options](benchmark::State& state) {
            (void)points;
            state.counters["engine_warm"] = engine->index_built() ? 1.0 : 0.0;
            return engine->run(params, options);
          });
    }
  }
}

const bool registered = (register_all(), true);

}  // namespace
