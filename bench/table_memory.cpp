// §5.1 memory comparison: G-DBSCAN stores the full adjacency graph (the
// [32] study measured 166x CUDA-DClust's footprint; Fig. 4(h) shows it
// running out of 16 GB at the largest PortoTaxi sizes), while the
// framework of §3 keeps memory linear in n. Each entry reports peak
// auxiliary device bytes; the *_ratio entries report G-DBSCAN's multiple
// over FDBSCAN at the same configuration.
#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/cuda_dclust.h"
#include "baselines/gdbscan.h"
#include "baselines/hybrid_gowanlock.h"
#include "common.h"
#include "core/fdbscan.h"
#include "core/fdbscan_densebox.h"
#include "datasets_2d.h"
#include "exec/memory_tracker.h"

namespace {

using namespace fdbscan;
using namespace fdbscan::bench;

void register_all() {
  const std::int64_t n = scaled(16384);
  for (const auto& dataset : kDatasets2D) {
    const auto points =
        std::make_shared<const std::vector<Point2>>(dataset.generate(n, 42));
    // The eps sweep stresses the edge count: memory of the adjacency
    // graph grows with the neighborhood sizes while the tree algorithms
    // stay flat.
    for (float factor : {1.0f, 2.0f, 4.0f}) {
      const Parameters params{dataset.minpts_sweep_eps * factor,
                              dataset.eps_sweep_minpts};
      char eps_str[32];
      std::snprintf(eps_str, sizeof(eps_str), "%g", params.eps);
      const std::string suffix = dataset.name + "/eps=" + eps_str;

      register_run("table_memory/fdbscan/" + suffix,
                   RunMeta{dataset.name, "fdbscan", n},
                   [=](benchmark::State&) {
                     exec::MemoryTracker tracker;
                     Options options;
                     options.memory = &tracker;
                     return fdbscan::fdbscan(*points, params, options);
                   });
      register_run("table_memory/fdbscan-densebox/" + suffix,
                   RunMeta{dataset.name, "fdbscan-densebox", n},
                   [=](benchmark::State&) {
                     exec::MemoryTracker tracker;
                     Options options;
                     options.memory = &tracker;
                     return fdbscan_densebox(*points, params, options);
                   });
      register_run("table_memory/g-dbscan/" + suffix,
                   RunMeta{dataset.name, "g-dbscan", n},
                   [=](benchmark::State&) {
                     exec::MemoryTracker tracker;
                     return baselines::gdbscan(*points, params, &tracker);
                   });
      // The batched hybrid (§2.2 [14]) sits between the two: it
      // materializes neighbor lists, but only one bounded batch at a
      // time.
      register_run("table_memory/hybrid-batched/" + suffix,
                   RunMeta{dataset.name, "hybrid-batched", n},
                   [=](benchmark::State&) {
                     exec::MemoryTracker tracker;
                     return baselines::hybrid_gowanlock(*points, params, {},
                                                        &tracker);
                   });

      register_custom(
          "table_memory/gdbscan_over_fdbscan/" + suffix,
          RunMeta{dataset.name, "gdbscan_over_fdbscan", n},
          [=](benchmark::State& state) {
            exec::MemoryTracker fd_tracker, g_tracker;
            Options options;
            options.memory = &fd_tracker;
            benchmark::DoNotOptimize(
                fdbscan::fdbscan(*points, params, options));
            benchmark::DoNotOptimize(
                baselines::gdbscan(*points, params, &g_tracker));
            state.counters["memory_ratio"] =
                static_cast<double>(g_tracker.peak()) /
                static_cast<double>(fd_tracker.peak());
          });
    }
  }
}

const bool registered = (register_all(), true);

}  // namespace
