// Telemetry registry + JSON writer + the bench main() (replaces
// benchmark_main so the file is written after RunSpecifiedBenchmarks).
#include "telemetry.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "obs/statusz.h"

namespace fdbscan::bench::telemetry {

namespace {

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::vector<TelemetryEntry>& registry() {
  static std::vector<TelemetryEntry> entries;
  return entries;
}

std::string& bench_name() {
  static std::string name = "unknown";
  return name;
}

/// run.date_env: FDBSCAN_BENCH_DATE verbatim if set (lets CI stamp runs
/// reproducibly), else the current UTC time.
std::string date_env() {
  if (const char* env = std::getenv("FDBSCAN_BENCH_DATE")) return env;
  std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

double scale_env() {
  if (const char* env = std::getenv("FDBSCAN_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 1.0;
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  // %.17g round-trips doubles; integral values (the work counters) print
  // without an exponent or fraction so diffs stay readable.
  char buf[40];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

}  // namespace

std::vector<std::pair<std::string, double>>& staged_service_block() {
  static std::vector<std::pair<std::string, double>> block;
  return block;
}

std::vector<std::pair<std::string, double>>& staged_obs_block() {
  static std::vector<std::pair<std::string, double>> block;
  return block;
}

void record(TelemetryEntry entry) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  if (entry.service.empty() && !staged_service_block().empty()) {
    entry.service = std::move(staged_service_block());
    staged_service_block().clear();
  }
  if (entry.obs.empty() && !staged_obs_block().empty()) {
    entry.obs = std::move(staged_obs_block());
    staged_obs_block().clear();
  }
  registry().push_back(std::move(entry));
}

void stage_service_block(
    std::vector<std::pair<std::string, double>> service) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  staged_service_block() = std::move(service);
}

void stage_obs_block(std::vector<std::pair<std::string, double>> obs) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  staged_obs_block() = std::move(obs);
}

void set_binary_name(const char* argv0) {
  std::string s = argv0 ? argv0 : "";
  const std::size_t slash = s.find_last_of('/');
  if (slash != std::string::npos) s = s.substr(slash + 1);
  if (!s.empty()) bench_name() = s;
}

std::string write_json() {
  std::vector<TelemetryEntry> entries;
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    entries = registry();
  }
  if (entries.empty()) return "";

  std::string path;
  if (const char* env = std::getenv("FDBSCAN_BENCH_OUT")) {
    path = env;
  } else {
    path = "BENCH_" + bench_name() + ".json";
  }

  std::string out;
  out.reserve(entries.size() * 256 + 256);
  out += "{\n  \"schema\": \"fdbscan-bench-telemetry-v1\",\n  \"run\": {";
  out += "\"bench\": ";
  append_escaped(out, bench_name());
  out += ", \"date_env\": ";
  append_escaped(out, date_env());
  out += ", \"threads\": ";
  append_number(out, exec::num_threads());
  out += ", \"scale\": ";
  append_number(out, scale_env());
  out += "},\n  \"entries\": [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const TelemetryEntry& e = entries[i];
    out += (i == 0) ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_escaped(out, e.name);
    out += ", \"dataset\": ";
    append_escaped(out, e.meta.dataset);
    out += ", \"algo\": ";
    append_escaped(out, e.meta.algo);
    out += ", \"n\": ";
    append_number(out, static_cast<double>(e.meta.n));
    out += ", \"deterministic\": ";
    out += e.meta.deterministic ? "true" : "false";
    out += ",\n     \"wall_ms\": ";
    append_number(out, e.wall_ms);
    out += ", \"counters\": {";
    for (std::size_t c = 0; c < e.counters.size(); ++c) {
      if (c > 0) out += ", ";
      append_escaped(out, e.counters[c].first);
      out += ": ";
      append_number(out, e.counters[c].second);
    }
    out += "},\n     \"phase_ms\": {\"index\": ";
    append_number(out, e.phase_index_ms);
    out += ", \"preprocess\": ";
    append_number(out, e.phase_preprocess_ms);
    out += ", \"main\": ";
    append_number(out, e.phase_main_ms);
    out += ", \"finalize\": ";
    append_number(out, e.phase_finalize_ms);
    out += "}, \"peak_bytes\": ";
    append_number(out, static_cast<double>(e.peak_bytes));
    if (!e.kernels.empty()) {
      out += ",\n     \"kernels\": [";
      for (std::size_t k = 0; k < e.kernels.size(); ++k) {
        const exec::KernelAggregate& a = e.kernels[k];
        out += (k == 0) ? "\n      " : ",\n      ";
        out += "{\"name\": ";
        append_escaped(out, a.name);
        out += ", \"count\": ";
        append_number(out, static_cast<double>(a.count));
        out += ", \"chunks\": ";
        append_number(out, static_cast<double>(a.chunks));
        out += ", \"total_ms\": ";
        append_number(out, a.total_ms);
        out += ", \"max_ms\": ";
        append_number(out, a.max_ms);
        out += ", \"workers\": ";
        append_number(out, static_cast<double>(a.workers));
        out += ", \"imbalance\": ";
        append_number(out, a.imbalance);
        out += "}";
      }
      out += "]";
    }
    if (!e.service.empty()) {
      out += ",\n     \"service\": {";
      for (std::size_t s = 0; s < e.service.size(); ++s) {
        if (s > 0) out += ", ";
        append_escaped(out, e.service[s].first);
        out += ": ";
        append_number(out, e.service[s].second);
      }
      out += "}";
    }
    if (!e.obs.empty()) {
      out += ",\n     \"obs\": {";
      for (std::size_t s = 0; s < e.obs.size(); ++s) {
        if (s > 0) out += ", ";
        append_escaped(out, e.obs[s].first);
        out += ": ";
        append_number(out, e.obs[s].second);
      }
      out += "}";
    }
    if (!e.error.empty()) {
      out += ", \"error\": ";
      append_escaped(out, e.error);
    }
    out += "}";
  }
  out += "\n  ]\n}\n";

  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    std::fprintf(stderr, "telemetry: cannot open %s for writing\n",
                 path.c_str());
    return "";
  }
  file << out;
  file.close();
  if (!file) {
    std::fprintf(stderr, "telemetry: write to %s failed\n", path.c_str());
    return "";
  }
  return path;
}

}  // namespace fdbscan::bench::telemetry

// The bench entry point: identical to benchmark_main, plus the telemetry
// flush once the run completes. SIGUSR1 dumps a statusz snapshot of the
// obs registry at any point during the run (EXPERIMENTS.md "Inspecting a
// live service").
int main(int argc, char** argv) {
  fdbscan::obs::statusz_install();
  fdbscan::bench::telemetry::set_binary_name(argc > 0 ? argv[0] : nullptr);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const std::string path = fdbscan::bench::telemetry::write_json();
  if (!path.empty()) {
    std::fprintf(stderr, "telemetry: wrote %s\n", path.c_str());
  }
  return 0;
}
