// Fig. 4(d)(e)(f): impact of eps on execution time; n = 16384, minpts
// fixed per dataset (500 / 50 / 100). Sweeps two octaves below and above
// each dataset's Fig. 4(a-c) base radius.
#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/cuda_dclust.h"
#include "baselines/gdbscan.h"
#include "common.h"
#include "core/engine.h"
#include "datasets_2d.h"

namespace {

using namespace fdbscan;
using namespace fdbscan::bench;

void register_all() {
  const std::int64_t n = scaled(16384);
  for (const auto& dataset : kDatasets2D) {
    const auto points =
        std::make_shared<const std::vector<Point2>>(dataset.generate(n, 42));
    // One engine per dataset, shared by every fdbscan/densebox entry of
    // the sweep: the point BVH is built by the first fdbscan entry and
    // reused by all later ones (eps is a query parameter, not an index
    // parameter). The engine borrows the points, so the vector's
    // shared_ptr rides along in every capture.
    const auto engine = std::make_shared<Engine<2>>(*points);
    for (float factor : {0.25f, 0.5f, 1.0f, 2.0f, 4.0f}) {
      const float eps = dataset.minpts_sweep_eps * factor;
      const Parameters params{eps, dataset.eps_sweep_minpts};
      char eps_str[32];
      std::snprintf(eps_str, sizeof(eps_str), "%g", eps);
      const std::string suffix = dataset.name + "/eps=" + eps_str;
      register_run("fig4_eps/cuda-dclust/" + suffix,
                   RunMeta{dataset.name, "cuda-dclust", n, false},
                   [=](benchmark::State&) {
                     return baselines::cuda_dclust(*points, params);
                   });
      register_run("fig4_eps/g-dbscan/" + suffix,
                   RunMeta{dataset.name, "g-dbscan", n},
                   [=](benchmark::State&) {
                     return baselines::gdbscan(*points, params);
                   });
      // engine_warm is computed from the engine state BEFORE the run:
      // bench_compare.py --gate-amortized asserts that warm entries
      // report zero index rebuilds and zero workspace growths, so an
      // unexpected rebuild on a warm entry fails the gate.
      // points is captured explicitly in the engine entries: the engine
      // only borrows the vector, so the shared_ptr must outlive them.
      register_run("fig4_eps/fdbscan/" + suffix,
                   RunMeta{dataset.name, "fdbscan", n},
                   [engine, points, params](benchmark::State& state) {
                     (void)points;
                     state.counters["engine_warm"] =
                         engine->index_built() ? 1.0 : 0.0;
                     return engine->run(params);
                   });
      register_run("fig4_eps/fdbscan-densebox/" + suffix,
                   RunMeta{dataset.name, "fdbscan-densebox", n},
                   [engine, points, params](benchmark::State& state) {
                     (void)points;
                     state.counters["engine_warm"] =
                         engine->grid_cached(params) ? 1.0 : 0.0;
                     return engine->run_densebox(params);
                   });
    }
  }
}

const bool registered = (register_all(), true);

}  // namespace
