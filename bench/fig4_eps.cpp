// Fig. 4(d)(e)(f): impact of eps on execution time; n = 16384, minpts
// fixed per dataset (500 / 50 / 100). Sweeps two octaves below and above
// each dataset's Fig. 4(a-c) base radius.
#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/cuda_dclust.h"
#include "baselines/gdbscan.h"
#include "common.h"
#include "core/fdbscan.h"
#include "core/fdbscan_densebox.h"
#include "datasets_2d.h"

namespace {

using namespace fdbscan;
using namespace fdbscan::bench;

void register_all() {
  const std::int64_t n = scaled(16384);
  for (const auto& dataset : kDatasets2D) {
    const auto points =
        std::make_shared<const std::vector<Point2>>(dataset.generate(n, 42));
    for (float factor : {0.25f, 0.5f, 1.0f, 2.0f, 4.0f}) {
      const float eps = dataset.minpts_sweep_eps * factor;
      const Parameters params{eps, dataset.eps_sweep_minpts};
      char eps_str[32];
      std::snprintf(eps_str, sizeof(eps_str), "%g", eps);
      const std::string suffix = dataset.name + "/eps=" + eps_str;
      register_run("fig4_eps/cuda-dclust/" + suffix,
                   RunMeta{dataset.name, "cuda-dclust", n, false},
                   [=](benchmark::State&) {
                     return baselines::cuda_dclust(*points, params);
                   });
      register_run("fig4_eps/g-dbscan/" + suffix,
                   RunMeta{dataset.name, "g-dbscan", n},
                   [=](benchmark::State&) {
                     return baselines::gdbscan(*points, params);
                   });
      register_run("fig4_eps/fdbscan/" + suffix,
                   RunMeta{dataset.name, "fdbscan", n},
                   [=](benchmark::State&) {
                     return fdbscan::fdbscan(*points, params);
                   });
      register_run("fig4_eps/fdbscan-densebox/" + suffix,
                   RunMeta{dataset.name, "fdbscan-densebox", n},
                   [=](benchmark::State&) {
                     return fdbscan_densebox(*points, params);
                   });
    }
  }
}

const bool registered = (register_all(), true);

}  // namespace
