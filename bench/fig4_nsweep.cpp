// Fig. 4(g)(h)(i): impact of the number of samples (log-log in the
// paper); (minpts, eps) fixed per dataset at (500, 0.0025) / (1000, 0.05)
// / (100, 0.01). G-DBSCAN runs against the simulated device-memory
// budget (FDBSCAN_BENCH_DEVICE_MB, default 2 GiB): entries that exceed it
// are reported as OOM errors — the paper's missing data points in (h).
//
// G-DBSCAN's O(n^2) graph construction makes the largest sizes very slow
// on one CPU core; set FDBSCAN_BENCH_FULL=1 to run it past 32768 points.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>

#include "baselines/cuda_dclust.h"
#include "baselines/gdbscan.h"
#include "common.h"
#include "core/fdbscan.h"
#include "core/fdbscan_densebox.h"
#include "datasets_2d.h"
#include "exec/memory_tracker.h"

namespace {

using namespace fdbscan;
using namespace fdbscan::bench;

bool full_sweep() {
  const char* env = std::getenv("FDBSCAN_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

void register_all() {
  const bool full = full_sweep();
  // G-DBSCAN's O(n^2) cap, in effective (scaled) points.
  const std::int64_t gdbscan_cap = scaled(32768);
  for (const auto& dataset : kDatasets2D) {
    // scaled_sweep deduplicates sizes clamped to the 64-point floor so a
    // tiny FDBSCAN_BENCH_SCALE cannot register duplicate entry names.
    for (std::int64_t n : scaled_sweep({8192, 16384, 32768, 65536, 131072})) {
      const auto points =
          std::make_shared<const std::vector<Point2>>(dataset.generate(n, 42));
      const Parameters params{dataset.nsweep_eps, dataset.nsweep_minpts};
      const std::string suffix = dataset.name + "/n=" + std::to_string(n);
      // CUDA-DClust's chain growth races on CAS absorption: its work
      // counters are not thread-count invariant (deterministic=false).
      register_run("fig4_nsweep/cuda-dclust/" + suffix,
                   RunMeta{dataset.name, "cuda-dclust", n, false},
                   [=](benchmark::State&) {
                     return baselines::cuda_dclust(*points, params);
                   });
      if (n <= gdbscan_cap || full) {
        register_run("fig4_nsweep/g-dbscan/" + suffix,
                     RunMeta{dataset.name, "g-dbscan", n},
                     [=](benchmark::State& state) -> Clustering {
                       exec::MemoryTracker device(device_memory_bytes());
                       try {
                         return baselines::gdbscan(*points, params, &device);
                       } catch (const exec::OutOfDeviceMemory& oom) {
                         state.SkipWithError(oom.what());
                         return {};
                       }
                     });
      }
      register_run("fig4_nsweep/fdbscan/" + suffix,
                   RunMeta{dataset.name, "fdbscan", n},
                   [=](benchmark::State&) {
                     return fdbscan::fdbscan(*points, params);
                   });
      register_run("fig4_nsweep/fdbscan-densebox/" + suffix,
                   RunMeta{dataset.name, "fdbscan-densebox", n},
                   [=](benchmark::State&) {
                     return fdbscan_densebox(*points, params);
                   });
    }
  }
}

const bool registered = (register_all(), true);

}  // namespace
