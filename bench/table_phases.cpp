// §5.1 phase-breakdown claim: "most of the time in FDBSCAN is spent in
// the tree search, while in FDBSCAN-DENSEBOX it is in the dense cells
// processing". Each entry exposes the per-phase seconds as counters
// (build / preprocess / main / finalize) so the split is directly
// inspectable on every dataset.
#include <benchmark/benchmark.h>

#include <memory>

#include "common.h"
#include "core/fdbscan.h"
#include "core/fdbscan_densebox.h"
#include "datasets_2d.h"

namespace {

using namespace fdbscan;
using namespace fdbscan::bench;

void report_phases(benchmark::State& state, const Clustering& result) {
  state.counters["build_ms"] = result.timings.index_construction * 1e3;
  state.counters["preprocess_ms"] = result.timings.preprocessing * 1e3;
  state.counters["main_ms"] = result.timings.main * 1e3;
  state.counters["finalize_ms"] = result.timings.finalization * 1e3;
  state.counters["main_share_pct"] =
      100.0 * result.timings.main / result.timings.total();
  // Per-phase kernel profile: launches, chunk counts and worker busy
  // seconds come from the exec runtime's profiling layer.
  auto kernel_counters = [&state](const char* prefix,
                                  const exec::KernelPhaseProfile& p) {
    if (p.launches == 0) return;
    const std::string s(prefix);
    state.counters[s + "_launches"] = static_cast<double>(p.launches);
    state.counters[s + "_chunks"] = static_cast<double>(p.chunks);
    state.counters[s + "_busy_ms"] = p.busy_total * 1e3;
    state.counters[s + "_imbalance"] = p.imbalance();
  };
  kernel_counters("preprocess", result.timings.preprocessing_profile);
  kernel_counters("main", result.timings.main_profile);
}

void register_all() {
  const std::int64_t n = scaled(16384);
  for (const auto& dataset : kDatasets2D) {
    const auto points =
        std::make_shared<const std::vector<Point2>>(dataset.generate(n, 42));
    const Parameters params{dataset.minpts_sweep_eps, 128};
    // The phase counters are attached inside fn, before register_run's
    // standard report — they ride into the telemetry JSON with the rest.
    register_run("table_phases/fdbscan/" + dataset.name,
                 RunMeta{dataset.name, "fdbscan", n},
                 [=](benchmark::State& state) {
                   Clustering result = fdbscan::fdbscan(*points, params);
                   report_phases(state, result);
                   return result;
                 });
    register_run("table_phases/fdbscan-densebox/" + dataset.name,
                 RunMeta{dataset.name, "fdbscan-densebox", n},
                 [=](benchmark::State& state) {
                   Clustering result = fdbscan_densebox(*points, params);
                   report_phases(state, result);
                   return result;
                 });
  }
}

const bool registered = (register_all(), true);

}  // namespace
