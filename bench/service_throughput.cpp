// ClusterService benchmarks (DESIGN.md §10): the serving-path claims
// that are gateable, each as one deterministic single-shot entry.
//
//   closed_loop  under-capacity serving: a closed loop (never more
//                in-flight requests than queue slots) across two
//                datasets must reject nothing, and — with plain FDBSCAN,
//                whose point BVH is eps/minpts-independent — build each
//                dataset's index exactly once (index_builds == datasets).
//   overload     deterministic backpressure: one dispatcher pinned by a
//                cancellable blocker, then capacity + K submits — the
//                queue admits exactly `capacity` and rejects exactly K
//                with kQueueFull, without blocking the submitter.
//   cancel_latency  a caller token raised mid-run resolves the future
//                within one chunk-quantum (reported as a counter, in ms).
//   deadline     deadline_ms <= 0 fails fast (no kernels) and a tiny
//                mid-run deadline resolves to kDeadlineExceeded.
//   sharded_equivalence  the tentpole's correctness gate: sharded labels
//                through ClusterService::submit are equivalent to
//                single-engine labels (up to renumbering, with
//                bit-identical core flags) at 1/2/8 workers x 1/2/4
//                shards, with a nonzero halo volume whenever shards > 1
//                (tools/bench_compare.py --gate-shards).
//   graph_equivalence  the task-graph runtime's correctness gate: graph
//                dispatch (FDBSCAN_SERVICE_GRAPH) produces bit-identical
//                core flags, cluster counts and work counters to the
//                fork-join path at 1/2/8 workers on the single-engine,
//                densebox and sharded paths (bench_compare.py
//                --gate-graph).
//   graph_saturation  closed-loop saturation against one dispatcher with
//                mixed-size requests: best-of-3 QPS for graph dispatch
//                vs fork-join — the overlap runtime must not lose
//                throughput to the baseline (also --gate-graph).
//
// Each entry stages its ServiceMetrics into the telemetry "service"
// block; tools/bench_compare.py --gate-service enforces the invariants.
// Entries additionally stage the obs registry's per-window delta of the
// fdbscan_service_* mirrors as the "obs" block — bench_compare.py
// --gate-obs cross-checks the two bit-equal.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "core/validate.h"
#include "data/generators.h"
#include "exec/graph/task_graph.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "service/service.h"

namespace {

using namespace fdbscan;
using namespace fdbscan::bench;
using service::ClusterService;
using service::ServiceConfig;
using service::ServiceMetrics;
using service::ServiceResult;
using service::SubmitOptions;

std::shared_ptr<const std::vector<Point2>> make_dataset(std::int64_t n,
                                                        std::uint64_t seed) {
  return std::make_shared<const std::vector<Point2>>(
      data::gaussian_mixture2(n, 5, 1.0f, 0.01f, seed));
}

/// Spins until `pred(metrics())` holds (bounded by a generous timeout).
template <class Pred>
bool wait_until(const ClusterService& svc, Pred pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred(svc.metrics())) return true;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return false;
}

void stage_metrics(const ClusterService& svc) {
  const ServiceMetrics m = svc.metrics();
  std::vector<std::pair<std::string, double>> block;
  block.emplace_back("submitted", static_cast<double>(m.submitted));
  block.emplace_back("completed", static_cast<double>(m.completed));
  block.emplace_back("rejected", static_cast<double>(m.rejected));
  block.emplace_back("cancelled", static_cast<double>(m.cancelled));
  block.emplace_back("deadline_exceeded",
                     static_cast<double>(m.deadline_exceeded));
  block.emplace_back("failed", static_cast<double>(m.failed));
  block.emplace_back("queue_wait_count",
                     static_cast<double>(m.queue_wait.count));
  block.emplace_back("queue_wait_total_ms", m.queue_wait.total_ms);
  block.emplace_back("queue_wait_mean_ms", m.queue_wait.mean_ms());
  block.emplace_back("queue_wait_max_ms", m.queue_wait.max_ms);
  block.emplace_back("run_count", static_cast<double>(m.run_time.count));
  block.emplace_back("run_total_ms", m.run_time.total_ms);
  block.emplace_back("run_time_mean_ms", m.run_time.mean_ms());
  block.emplace_back("run_time_max_ms", m.run_time.max_ms);
  telemetry::stage_service_block(std::move(block));
}

/// The obs registry's view of the entry window, flattened under the same
/// key names stage_metrics uses, so --gate-obs can compare shared keys
/// bit-equal. The service mirror feeds both sides the identical integers
/// (ObsMirror in service.h), so after wait_idle() the per-window delta
/// of a single-service entry must match its ServiceMetrics exactly.
void stage_obs_delta(const obs::MetricsSnapshot& before) {
  const obs::MetricsSnapshot d =
      obs::metrics_delta(before, obs::snapshot_metrics());
  std::vector<std::pair<std::string, double>> block;
  const auto counter = [&](const char* name) {
    for (const auto& c : d.counters) {
      if (c.name == name) return static_cast<double>(c.value);
    }
    return 0.0;
  };
  const auto hist = [&](const char* name) {
    for (const auto& h : d.histograms) {
      if (h.name == name) return h.data;
    }
    return obs::HistogramSnapshot{};
  };
  block.emplace_back("submitted", counter("fdbscan_service_submitted_total"));
  block.emplace_back("completed", counter("fdbscan_service_completed_total"));
  block.emplace_back("rejected", counter("fdbscan_service_rejected_total"));
  block.emplace_back("cancelled", counter("fdbscan_service_cancelled_total"));
  block.emplace_back("deadline_exceeded",
                     counter("fdbscan_service_deadline_exceeded_total"));
  block.emplace_back("failed", counter("fdbscan_service_failed_total"));
  const obs::HistogramSnapshot qw = hist("fdbscan_service_queue_wait");
  const obs::HistogramSnapshot rt = hist("fdbscan_service_run_time");
  block.emplace_back("queue_wait_count", static_cast<double>(qw.count));
  // Same ns->ms conversion as LatencySummary::snapshot(): identical
  // int64 in, bit-identical double out.
  block.emplace_back("queue_wait_total_ms",
                     static_cast<double>(qw.total_ns) * 1e-6);
  block.emplace_back("run_count", static_cast<double>(rt.count));
  block.emplace_back("run_total_ms", static_cast<double>(rt.total_ns) * 1e-6);
  telemetry::stage_obs_block(std::move(block));
}

void register_all() {
  const std::int64_t n = scaled(20000);
  // Deliberately NOT scaled: blocker/victim runs exist to pin a
  // dispatcher and are always cancelled (or deadline-killed) mid-run, so
  // their cost is one cancellation latency, not one full clustering —
  // and a big dataset keeps "the run is still in flight when we act"
  // deterministic even at tiny FDBSCAN_BENCH_SCALE.
  const std::int64_t n_big = 200000;
  const Parameters params{0.01f, 10};

  // --- Under-capacity closed loop ----------------------------------------
  register_custom(
      "service_throughput/closed_loop/datasets=2/n=" + std::to_string(n),
      RunMeta{"gaussian", "service", n},
      [=](benchmark::State& state) {
        const obs::MetricsSnapshot obs_before = obs::snapshot_metrics();
        ServiceConfig config;
        config.dispatchers = 2;
        config.queue_capacity = 8;
        ClusterService svc(config);
        const auto a = make_dataset(n, 42);
        const auto b = make_dataset(n, 43);
        SubmitOptions plain;
        plain.method = Method::kFdbscan;  // eps-independent point BVH
        // Closed loop: one wave of (datasets x dispatchers) requests in
        // flight at a time, well under queue capacity — a correctly
        // backpressured client sees zero rejections.
        constexpr int kWaves = 4;
        std::int64_t requests = 0;
        for (int wave = 0; wave < kWaves; ++wave) {
          std::vector<std::future<ServiceResult>> inflight;
          for (int i = 0; i < 2; ++i) {
            Parameters sweep = params;
            sweep.minpts = 5 + 5 * i + wave;  // parameter sweep, warm index
            inflight.push_back(svc.submit<2>("a", a, sweep, plain));
            inflight.push_back(svc.submit<2>("b", b, sweep, plain));
          }
          for (auto& f : inflight) {
            if (f.get().has_value()) ++requests;
          }
        }
        svc.wait_idle();
        std::int64_t index_builds = 0;
        for (const auto& d : svc.dataset_stats()) {
          index_builds += d.index_builds;
        }
        state.counters["requests"] = static_cast<double>(requests);
        state.counters["datasets"] = 2.0;
        state.counters["index_builds"] = static_cast<double>(index_builds);
        state.counters["rejected"] =
            static_cast<double>(svc.metrics().rejected);
        stage_metrics(svc);
        stage_obs_delta(obs_before);
      });

  // --- Deterministic overload --------------------------------------------
  register_custom(
      "service_throughput/overload/extra=6",
      RunMeta{"gaussian", "service", n_big},
      [=](benchmark::State& state) {
        const obs::MetricsSnapshot obs_before = obs::snapshot_metrics();
        ServiceConfig config;
        config.dispatchers = 1;
        config.queue_capacity = 4;
        ClusterService svc(config);
        const auto big = make_dataset(n_big, 42);
        const auto tiny = make_dataset(64, 7);
        auto blocker_token = std::make_shared<exec::CancelToken>();
        SubmitOptions blocking;
        blocking.token = blocker_token;
        auto blocker = svc.submit<2>("blocker", big, params, blocking);
        wait_until(svc, [](const ServiceMetrics& m) {
          return m.active == 1 && m.queued == 0;
        });
        // Dispatcher pinned, queue empty: capacity + K submits admit
        // exactly `capacity` and reject exactly K — deterministically.
        constexpr int kExtra = 6;
        std::vector<std::future<ServiceResult>> burst;
        for (int i = 0; i < config.queue_capacity + kExtra; ++i) {
          burst.push_back(svc.submit<2>("tiny", tiny, params));
        }
        int rejected = 0;
        for (auto& f : burst) {
          if (f.wait_for(std::chrono::seconds(0)) ==
              std::future_status::ready) {
            const auto r = f.get();
            if (!r.has_value() && r.error().code == ErrorCode::kQueueFull) {
              ++rejected;
            }
          }
        }
        blocker_token->request_cancel();
        (void)blocker.get();
        svc.wait_idle();
        state.counters["expected_rejected"] = kExtra;
        state.counters["rejected"] = rejected;
        stage_metrics(svc);
        stage_obs_delta(obs_before);
      });

  // --- Sharded equivalence gate -------------------------------------------
  // The worker counts are set internally (and restored), so the entry's
  // counters are identical under the smoke harness's outer 1-vs-8 thread
  // sweep: the decomposition, halo volume and equivalence verdicts are
  // worker-count invariant — deterministic=true and gateable at 0%.
  register_custom(
      "service_throughput/sharded_equivalence/n=" + std::to_string(n),
      RunMeta{"gaussian", "service-sharded", n},
      [=](benchmark::State& state) {
        const Parameters sharded_params{0.05f, 10};
        const auto pts = make_dataset(n, 44);
        const int env_threads = exec::num_threads();
        std::int64_t checked = 0;
        std::int64_t failures = 0;
        std::int64_t multi_shard_runs = 0;
        std::int64_t ghosts = 0;
        std::int64_t cross_edges = 0;
        std::int64_t halo_bytes = 0;
        for (int workers : {1, 2, 8}) {
          exec::set_num_threads(workers);
          const auto reference =
              cluster(*pts, sharded_params, {}, Method::kFdbscan);
          {
            // The service (and its launches) must be gone before the
            // next thread-count change — hence the scope.
            ClusterService svc;
            SubmitOptions submit;
            submit.method = Method::kFdbscan;
            for (std::int32_t shards : {1, 2, 4}) {
              submit.shards = shards;
              const auto result =
                  svc.submit<2>("ds", pts, sharded_params, submit).get();
              ++checked;
              const bool ok =
                  reference.has_value() && result.has_value() &&
                  equivalent_clusterings(*pts, sharded_params, *reference,
                                         *result)
                      .ok &&
                  result->is_core == reference->is_core &&
                  result->num_clusters == reference->num_clusters;
              if (!ok) ++failures;
              if (result.has_value() && shards > 1) {
                ++multi_shard_runs;
                ghosts += result->shard_ghosts;
                cross_edges += result->shard_cross_edges;
                halo_bytes += result->shard_halo_bytes;
              }
            }
            svc.wait_idle();
          }
        }
        exec::set_num_threads(env_threads);
        state.counters["shards_checked"] = static_cast<double>(checked);
        state.counters["shard_equiv_failures"] =
            static_cast<double>(failures);
        state.counters["multi_shard_runs"] =
            static_cast<double>(multi_shard_runs);
        state.counters["ghosts"] = static_cast<double>(ghosts);
        state.counters["cross_edges"] = static_cast<double>(cross_edges);
        state.counters["halo_KB"] = static_cast<double>(halo_bytes) / 1024.0;
      });

  // --- Graph-vs-fork-join equivalence --------------------------------------
  // Worker counts are swept internally (and restored) exactly like
  // sharded_equivalence, so the verdict counters are worker-count
  // invariant under the smoke harness's outer 1-vs-8 sweep. Labels are
  // compared only at workers=1 (the dense mixture has genuinely
  // ambiguous border points at >1 workers — the schedule-independent
  // fields are compared everywhere).
  register_custom(
      "service_throughput/graph_equivalence/n=" + std::to_string(n),
      RunMeta{"gaussian", "service-graph", n},
      [=](benchmark::State& state) {
        const Parameters gparams{0.05f, 10};
        const auto pts = make_dataset(n, 45);
        const int env_threads = exec::num_threads();
        const bool graph_was = exec::graph::enabled();
        std::int64_t checked = 0;
        std::int64_t failures = 0;
        std::int64_t densebox_runs = 0;
        std::int64_t sharded_runs = 0;
        struct Case {
          Method method;
          std::int32_t shards;
        };
        const Case cases[] = {{Method::kFdbscan, 1},
                              {Method::kDensebox, 1},
                              {Method::kFdbscan, 2}};
        for (int workers : {1, 2, 8}) {
          exec::set_num_threads(workers);
          for (const Case& c : cases) {
            std::optional<Clustering> by_mode[2];
            for (int mode = 0; mode < 2; ++mode) {
              // Both the service dispatch knob and the global fallback
              // the sharded path consults, so mode 0 is pure fork-join.
              exec::graph::set_enabled(mode == 1);
              ServiceConfig config;
              config.graph = (mode == 1);
              ClusterService svc(config);
              SubmitOptions submit;
              submit.method = c.method;
              submit.shards = c.shards;
              auto r = svc.submit<2>("ds", pts, gparams, submit).get();
              svc.wait_idle();
              if (r.has_value()) by_mode[mode].emplace(std::move(*r));
            }
            ++checked;
            const Clustering* fork = by_mode[0] ? &*by_mode[0] : nullptr;
            const Clustering* graph = by_mode[1] ? &*by_mode[1] : nullptr;
            const bool ok =
                fork != nullptr && graph != nullptr &&
                graph->is_core == fork->is_core &&
                graph->num_clusters == fork->num_clusters &&
                graph->distance_computations == fork->distance_computations &&
                graph->index_nodes_visited == fork->index_nodes_visited &&
                graph->num_dense_cells == fork->num_dense_cells &&
                graph->points_in_dense_cells == fork->points_in_dense_cells &&
                (workers != 1 || graph->labels == fork->labels);
            if (!ok) ++failures;
            if (c.method == Method::kDensebox) ++densebox_runs;
            if (c.shards > 1) ++sharded_runs;
          }
        }
        exec::graph::set_enabled(graph_was);
        exec::set_num_threads(env_threads);
        state.counters["graph_equiv_checked"] = static_cast<double>(checked);
        state.counters["graph_equiv_failures"] = static_cast<double>(failures);
        state.counters["graph_densebox_runs"] =
            static_cast<double>(densebox_runs);
        state.counters["graph_sharded_runs"] =
            static_cast<double>(sharded_runs);
      });

  // --- Graph saturation throughput -----------------------------------------
  // One dispatcher, a deep queue, mixed-size requests: fork-join runs
  // each request end-to-end on the dispatcher, while graph dispatch
  // frees it to stage the next request as soon as the current one's
  // phases are on the runner pool — the per-request bookkeeping
  // overlaps the kernels. Best-of-3 per mode, interleaved, so machine
  // drift hits both modes alike; --gate-graph requires the graph QPS
  // to at least match fork-join.
  //
  // The dataset size is floored: below ~2000 points each phase runs in
  // microseconds and the comparison degenerates into a benchmark of
  // raw node-handoff latency rather than dispatch quality, which is
  // not the contract the gate enforces.
  const std::int64_t sat_n = std::max<std::int64_t>(n, 2000);
  register_custom(
      "service_throughput/graph_saturation/n=" + std::to_string(sat_n),
      RunMeta{"gaussian", "service-graph", sat_n},
      [=](benchmark::State& state) {
        const Parameters sat_params{0.01f, 10};
        const auto small =
            make_dataset(std::max<std::int64_t>(sat_n / 4, 64), 46);
        const auto large = make_dataset(sat_n, 47);
        const bool graph_was = exec::graph::enabled();
        constexpr int kInflight = 8;
        constexpr int kWaves = 6;
        SubmitOptions plain;
        plain.method = Method::kFdbscan;
        std::int64_t total_done = 0;
        const auto measure = [&](ClusterService& svc) {
          // Warmup wave: both datasets' indexes built outside the
          // timed window.
          (void)svc.submit<2>("small", small, sat_params, plain).get();
          (void)svc.submit<2>("large", large, sat_params, plain).get();
          svc.wait_idle();
          const auto t0 = std::chrono::steady_clock::now();
          std::int64_t done = 0;
          for (int wave = 0; wave < kWaves; ++wave) {
            std::vector<std::future<ServiceResult>> inflight;
            inflight.reserve(kInflight);
            for (int i = 0; i < kInflight; ++i) {
              const bool big = (i % 2) == 0;
              Parameters p = sat_params;
              p.minpts = 5 + i;  // mixed parameters, warm index
              inflight.push_back(svc.submit<2>(big ? "large" : "small",
                                               big ? large : small, p, plain));
            }
            for (auto& f : inflight) {
              if (f.get().has_value()) ++done;
            }
          }
          svc.wait_idle();
          const double secs =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
          total_done += done;
          return secs > 0.0 ? static_cast<double>(done) / secs : 0.0;
        };
        double qps[2] = {0.0, 0.0};
        for (int rep = 0; rep < 3; ++rep) {
          for (int mode = 0; mode < 2; ++mode) {
            exec::graph::set_enabled(mode == 1);
            ServiceConfig config;
            config.dispatchers = 1;
            config.queue_capacity = 64;
            config.graph = (mode == 1);
            ClusterService svc(config);
            qps[mode] = std::max(qps[mode], measure(svc));
          }
        }
        exec::graph::set_enabled(graph_was);
        state.counters["forkjoin_qps"] = qps[0];
        state.counters["graph_qps"] = qps[1];
        state.counters["saturation_requests"] =
            static_cast<double>(total_done);
        // On a single-core machine phase overlap is physically
        // impossible and graph dispatch can only pay its handoff cost;
        // --gate-graph reads this to decide between the strict >=
        // contract and the single-core overhead budget.
        state.counters["saturation_cores"] =
            static_cast<double>(std::thread::hardware_concurrency());
      });

  // --- Cancellation latency ----------------------------------------------
  register_custom(
      "service_throughput/cancel_latency/n=" + std::to_string(n_big),
      RunMeta{"gaussian", "service", n_big},
      [=](benchmark::State& state) {
        const obs::MetricsSnapshot obs_before = obs::snapshot_metrics();
        ClusterService svc;
        const auto big = make_dataset(n_big, 42);
        auto token = std::make_shared<exec::CancelToken>();
        SubmitOptions cancellable;
        cancellable.token = token;
        auto doomed = svc.submit<2>("big", big, params, cancellable);
        wait_until(svc, [](const ServiceMetrics& m) { return m.active == 1; });
        // Let kernels make progress, then measure raise -> resolution.
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        const auto raised = std::chrono::steady_clock::now();
        token->request_cancel();
        (void)doomed.get();
        const double latency_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - raised)
                .count();
        svc.wait_idle();
        state.counters["cancel_latency_ms"] = latency_ms;
        state.counters["cancelled"] =
            static_cast<double>(svc.metrics().cancelled);
        stage_metrics(svc);
        stage_obs_delta(obs_before);
      });

  // --- Deadlines -----------------------------------------------------------
  register_custom(
      "service_throughput/deadline/n=" + std::to_string(n_big),
      RunMeta{"gaussian", "service", n_big},
      [=](benchmark::State& state) {
        const obs::MetricsSnapshot obs_before = obs::snapshot_metrics();
        ServiceConfig config;
        config.dispatchers = 1;
        ClusterService svc(config);
        const auto big = make_dataset(n_big, 42);
        // Already-elapsed budget: rejected on the submit path, before any
        // queue slot or kernel.
        SubmitOptions expired;
        expired.deadline_ms = 0.0;
        const auto fast = svc.submit<2>("big", big, params, expired).get();
        const bool fast_fail =
            !fast.has_value() &&
            fast.error().code == ErrorCode::kDeadlineExceeded;
        // In-flight expiry, made deterministic at any bench scale: the
        // deadline covers queue wait, so a request with a 1 ms budget
        // queued behind a blocker held for much longer than that is
        // watchdog-cancelled no matter how fast the substrate is.
        auto blocker_token = std::make_shared<exec::CancelToken>();
        SubmitOptions blocking;
        blocking.token = blocker_token;
        auto blocker = svc.submit<2>("blocker", big, params, blocking);
        wait_until(svc,
                   [](const ServiceMetrics& m) { return m.active == 1; });
        SubmitOptions strict;
        strict.deadline_ms = 1.0;
        auto late = svc.submit<2>("big", big, params, strict);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        blocker_token->request_cancel();
        const auto late_result = late.get();
        const bool in_flight =
            !late_result.has_value() &&
            late_result.error().code == ErrorCode::kDeadlineExceeded;
        (void)blocker.get();
        svc.wait_idle();
        state.counters["fast_fail_ok"] = fast_fail ? 1.0 : 0.0;
        state.counters["mid_run_ok"] = in_flight ? 1.0 : 0.0;
        state.counters["deadline_exceeded"] =
            static_cast<double>(svc.metrics().deadline_exceeded);
        stage_metrics(svc);
        stage_obs_delta(obs_before);
      });
}

const bool registered = (register_all(), true);

}  // namespace
