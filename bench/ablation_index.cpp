// Ablation of the search index (§4.1 argues a linear BVH is the right
// traversal structure for low-dimensional data): identical batched
// eps-range counting queries through the BVH, the k-d tree, and the
// uniform grid directory on each evaluation dataset. Reported counters:
// found neighbor totals (must agree across indexes) and build times.
#include <benchmark/benchmark.h>

#include <memory>

#include "bvh/bvh.h"
#include "common.h"
#include "datasets_2d.h"
#include "exec/atomic.h"
#include "exec/parallel.h"
#include "exec/timer.h"
#include "grid/uniform_grid_index.h"
#include "kdtree/kdtree.h"

namespace {

using namespace fdbscan;
using namespace fdbscan::bench;

template <class Query>
void run_index_bench(benchmark::State& state,
                     const std::vector<Point2>& points, double build_seconds,
                     Query&& query) {
  std::int64_t total_found = 0;
  exec::parallel_for(
      static_cast<std::int64_t>(points.size()), [&](std::int64_t i) {
        exec::atomic_fetch_add(total_found, query(points[static_cast<std::size_t>(i)]));
      });
  benchmark::DoNotOptimize(total_found);
  state.counters["found"] = static_cast<double>(total_found);
  state.counters["build_ms"] = build_seconds * 1e3;
}

void register_all() {
  const std::int64_t n = scaled(16384);
  for (const auto& dataset : kDatasets2D) {
    const auto points =
        std::make_shared<const std::vector<Point2>>(dataset.generate(n, 42));
    const float eps = dataset.minpts_sweep_eps;
    const float eps2 = eps * eps;

    register_custom(
        "ablation_index/bvh/" + dataset.name,
        RunMeta{dataset.name, "bvh", n}, [=](benchmark::State& state) {
          exec::Timer timer;
          Bvh<2> bvh(*points);
          const double build = timer.seconds();
          run_index_bench(state, *points, build, [&](const Point2& p) {
            std::int64_t found = 0;
            bvh.for_each_near(p, eps2, [&](std::int32_t, std::int32_t) {
              ++found;
              return TraversalControl::kContinue;
            });
            return found;
          });
        });

    register_custom(
        "ablation_index/kdtree/" + dataset.name,
        RunMeta{dataset.name, "kdtree", n}, [=](benchmark::State& state) {
          exec::Timer timer;
          KdTree<2> tree(*points);
          const double build = timer.seconds();
          run_index_bench(state, *points, build, [&](const Point2& p) {
            std::int64_t found = 0;
            tree.for_each_near(p, eps2, [&](std::int32_t) {
              ++found;
              return KdTree<2>::TraversalControlKd::kContinue;
            });
            return found;
          });
        });

    register_custom(
        "ablation_index/grid/" + dataset.name,
        RunMeta{dataset.name, "grid", n}, [=](benchmark::State& state) {
          exec::Timer timer;
          UniformGridIndex<2> grid(*points, eps);
          const double build = timer.seconds();
          // The grid query materializes the neighbor list (that is how
          // its consumers use it); reuse a buffer per chunk the way
          // CUDA-DClust does per chain.
          run_index_bench(state, *points, build, [&](const Point2& p) {
            std::vector<std::int32_t> out;
            grid.neighbors(p, out);
            return static_cast<std::int64_t>(out.size());
          });
        });
  }
}

const bool registered = (register_all(), true);

}  // namespace
