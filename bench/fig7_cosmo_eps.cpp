// Fig. 7: impact of eps on execution time for the 3-D cosmology problem
// at minpts = 5 (the paper's body text; its caption says 2 — we run both
// and report the minpts = 5 sweep as the headline, matching the text).
// The paper's observation to reproduce: with growing eps the dense-cell
// advantage widens, reaching ~16x at eps = 1.0 where ~91% of the points
// sit in dense cells.
#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/cell_fof.h"
#include "common.h"
#include "core/fdbscan.h"
#include "core/fdbscan_densebox.h"

namespace {

using namespace fdbscan;
using namespace fdbscan::bench;

void register_all() {
  const std::int64_t n = scaled(250000);
  const auto points =
      std::make_shared<const std::vector<Point3>>(cosmology(n));
  for (std::int32_t minpts : {5, 2}) {
    for (float eps : {0.042f, 0.1f, 0.2f, 0.4f, 0.7f, 1.0f}) {
      const Parameters params{eps, minpts};
      char eps_str[32];
      std::snprintf(eps_str, sizeof(eps_str), "%g", eps);
      const std::string suffix =
          "minpts=" + std::to_string(minpts) + "/eps=" + eps_str;
      register_run("fig7_cosmo/fdbscan/" + suffix,
                   RunMeta{"cosmo", "fdbscan", n}, [=](benchmark::State&) {
                     return fdbscan::fdbscan(*points, params);
                   });
      register_run("fig7_cosmo/fdbscan-densebox/" + suffix,
                   RunMeta{"cosmo", "fdbscan-densebox", n},
                   [=](benchmark::State&) {
                     return fdbscan_densebox(*points, params);
                   });
      if (minpts == 2) {
        // Extra series: the cell-partitioned Friends-of-Friends
        // precursor (Sewell et al. [36], §2.2) on its home turf.
        register_run("fig7_cosmo/cell-fof/" + suffix,
                     RunMeta{"cosmo", "cell-fof", n},
                     [=](benchmark::State&) {
                       return baselines::cell_fof(*points, params);
                     });
      }
    }
  }
}

const bool registered = (register_all(), true);

}  // namespace
