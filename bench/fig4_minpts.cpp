// Fig. 4(a)(b)(c): impact of minpts on execution time for the four GPU
// algorithms on the three 2-D datasets; n = 16384, eps fixed per dataset
// (0.005 / 0.01 / 0.08). The minpts range spans the few-large-clusters to
// many-small-clusters regimes, as in the paper.
#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/cuda_dclust.h"
#include "baselines/gdbscan.h"
#include "baselines/mr_scan.h"
#include "common.h"
#include "core/engine.h"
#include "datasets_2d.h"

namespace {

using namespace fdbscan;
using namespace fdbscan::bench;

void register_all() {
  const std::int64_t n = scaled(16384);
  for (const auto& dataset : kDatasets2D) {
    const auto points =
        std::make_shared<const std::vector<Point2>>(dataset.generate(n, 42));
    // One engine per dataset: the minpts sweep re-clusters the same
    // points, so the point BVH is built exactly once (by the first
    // fdbscan entry) and every later entry runs with a warm index and
    // workspace — the amortization the telemetry gate checks.
    const auto engine = std::make_shared<Engine<2>>(*points);
    for (std::int32_t minpts : dataset.minpts_sweep) {
      const Parameters params{dataset.minpts_sweep_eps, minpts};
      const std::string suffix =
          dataset.name + "/minpts=" + std::to_string(minpts);
      // CUDA-DClust's chain growth races on CAS absorption: its work
      // counters are not thread-count invariant (deterministic=false).
      register_run("fig4_minpts/cuda-dclust/" + suffix,
                   RunMeta{dataset.name, "cuda-dclust", n, false},
                   [=](benchmark::State&) {
                     return baselines::cuda_dclust(*points, params);
                   });
      register_run("fig4_minpts/g-dbscan/" + suffix,
                   RunMeta{dataset.name, "g-dbscan", n},
                   [=](benchmark::State&) {
                     return baselines::gdbscan(*points, params);
                   });
      // engine_warm comes from the engine state BEFORE the run (index
      // present / bundle cached): bench_compare.py --gate-amortized
      // asserts warm entries report zero rebuilds and zero growths.
      // points is captured explicitly in the engine entries: the engine
      // only borrows the vector, so the shared_ptr must outlive them.
      register_run("fig4_minpts/fdbscan/" + suffix,
                   RunMeta{dataset.name, "fdbscan", n},
                   [engine, points, params](benchmark::State& state) {
                     (void)points;
                     state.counters["engine_warm"] =
                         engine->index_built() ? 1.0 : 0.0;
                     return engine->run(params);
                   });
      register_run("fig4_minpts/fdbscan-densebox/" + suffix,
                   RunMeta{dataset.name, "fdbscan-densebox", n},
                   [engine, points, params](benchmark::State& state) {
                     (void)points;
                     state.counters["engine_warm"] =
                         engine->grid_cached(params) ? 1.0 : 0.0;
                     return engine->run_densebox(params);
                   });
      // Extra series beyond the paper's four: the Mr. Scan-style
      // core-first grid algorithm (§2.2).
      register_run("fig4_minpts/mr-scan/" + suffix,
                   RunMeta{dataset.name, "mr-scan", n},
                   [=](benchmark::State&) {
                     return baselines::mr_scan(*points, params);
                   });
    }
  }
}

const bool registered = (register_all(), true);

}  // namespace
