// Ablation of FDBSCAN-DenseBox's grid cell width (§4.2 fixes it at
// eps/sqrt(d), the largest width whose cell diameter stays below eps).
// Smaller factors shrink dense cells: fewer points qualify as
// "in a dense cell" (weakening the optimization) but the boxes prune
// traversals more tightly. The paper's choice should win or tie across
// datasets.
#include <benchmark/benchmark.h>

#include <memory>

#include "common.h"
#include "core/fdbscan_densebox.h"
#include "datasets_2d.h"

namespace {

using namespace fdbscan;
using namespace fdbscan::bench;

void register_all() {
  const std::int64_t n = scaled(16384);
  for (const auto& dataset : kDatasets2D) {
    const auto points =
        std::make_shared<const std::vector<Point2>>(dataset.generate(n, 42));
    const Parameters params{dataset.minpts_sweep_eps, 32};
    for (float factor : {0.25f, 0.5f, 0.75f, 1.0f}) {
      Options options;
      options.densebox_cell_width_factor = factor;
      char label[32];
      std::snprintf(label, sizeof(label), "width_factor=%.2f", factor);
      register_run("ablation_cellwidth/" + dataset.name + "/" + label,
                   RunMeta{dataset.name,
                           std::string("fdbscan-densebox/") + label, n},
                   [=](benchmark::State&) {
                     return fdbscan_densebox(*points, params, options);
                   });
    }
  }
}

const bool registered = (register_all(), true);

}  // namespace
