// Ablation of FDBSCAN-DenseBox's grid cell width (§4.2 fixes it at
// eps/sqrt(d), the largest width whose cell diameter stays below eps).
// Smaller factors shrink dense cells: fewer points qualify as
// "in a dense cell" (weakening the optimization) but the boxes prune
// traversals more tightly. The paper's choice should win or tie across
// datasets.
#include <benchmark/benchmark.h>

#include <memory>

#include "common.h"
#include "core/engine.h"
#include "datasets_2d.h"

namespace {

using namespace fdbscan;
using namespace fdbscan::bench;

void register_all() {
  const std::int64_t n = scaled(16384);
  for (const auto& dataset : kDatasets2D) {
    const auto points =
        std::make_shared<const std::vector<Point2>>(dataset.generate(n, 42));
    // Shared engine: every width factor is a distinct grid-cache key, so
    // the DenseBox index phase runs per entry, but the workspace arena is
    // warm after the first entry (the grow events the gate counts).
    const auto engine = std::make_shared<Engine<2>>(*points);
    const Parameters params{dataset.minpts_sweep_eps, 32};
    for (float factor : {0.25f, 0.5f, 0.75f, 1.0f}) {
      Options options;
      options.densebox_cell_width_factor = factor;
      char label[32];
      std::snprintf(label, sizeof(label), "width_factor=%.2f", factor);
      register_run("ablation_cellwidth/" + dataset.name + "/" + label,
                   RunMeta{dataset.name,
                           std::string("fdbscan-densebox/") + label, n},
                   // points captured explicitly: the engine only borrows
                   // the vector, so the shared_ptr must outlive the entry.
                   [engine, points, params, options](benchmark::State& state) {
                     (void)points;
                     state.counters["engine_warm"] =
                         engine->grid_cached(params, options) ? 1.0 : 0.0;
                     return engine->run_densebox(params, options);
                   });
    }
  }
}

const bool registered = (register_all(), true);

}  // namespace
