// Engine contract tests (core/engine.h, DESIGN.md §9): bit-identity with
// the one-shot path across worker counts, index/grid-cache amortization
// counters, zero heap growth after warmup, and the validated cluster()
// entry point's typed errors.
#include "core/engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/auto_select.h"
#include "core/cluster.h"
#include "core/fdbscan.h"
#include "core/fdbscan_densebox.h"
#include "test_utils.h"

namespace fdbscan {
namespace {

using testing::clustered_points;
using testing::ScopedThreads;

// Bit-identity, not merely equivalence-up-to-relabeling: the engine runs
// the exact kernels of the free function in the same order, so labels
// must match element for element at any worker count.
TEST(Engine, BitIdenticalToFreeFunctionAcrossSweepAndThreads) {
  const auto points = clustered_points<2>(2000, 5, 1.0f, 0.01f, 91);
  const Parameters sweep[] = {
      {0.01f, 2}, {0.01f, 5}, {0.02f, 5}, {0.02f, 20}, {0.05f, 10},
  };
  for (int workers : {1, 2, 8}) {
    ScopedThreads threads(workers);
    Engine<2> engine(points);
    for (const Parameters& params : sweep) {
      const auto expected = fdbscan(points, params);
      const auto got = engine.run(params);
      EXPECT_EQ(got.labels, expected.labels)
          << "workers=" << workers << " eps=" << params.eps
          << " minpts=" << params.minpts;
      EXPECT_EQ(got.is_core, expected.is_core);
      EXPECT_EQ(got.num_clusters, expected.num_clusters);
      EXPECT_EQ(got.distance_computations, expected.distance_computations);
      EXPECT_EQ(got.index_nodes_visited, expected.index_nodes_visited);
    }
  }
}

TEST(Engine, DenseboxBitIdenticalToFreeFunctionAcrossThreads) {
  const auto points = clustered_points<2>(2000, 4, 1.0f, 0.01f, 92);
  const Parameters sweep[] = {{0.02f, 5}, {0.02f, 10}, {0.05f, 5}};
  for (int workers : {1, 2, 8}) {
    ScopedThreads threads(workers);
    Engine<2> engine(points);
    for (const Parameters& params : sweep) {
      const auto expected = fdbscan_densebox(points, params);
      const auto got = engine.run_densebox(params);
      EXPECT_EQ(got.labels, expected.labels)
          << "workers=" << workers << " eps=" << params.eps
          << " minpts=" << params.minpts;
      EXPECT_EQ(got.is_core, expected.is_core);
      EXPECT_EQ(got.num_dense_cells, expected.num_dense_cells);
      EXPECT_EQ(got.distance_computations, expected.distance_computations);
    }
  }
}

TEST(Engine, SweepMatchesPerCallRuns) {
  ScopedThreads threads(4);
  const auto points = clustered_points<2>(1500, 5, 1.0f, 0.01f, 93);
  const std::vector<Parameters> sweep = {
      {0.02f, 2}, {0.02f, 5}, {0.02f, 10}, {0.02f, 32}};
  Engine<2> engine(points);
  const auto results = engine.sweep(sweep);
  ASSERT_EQ(results.size(), sweep.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto expected = fdbscan(points, sweep[i]);
    EXPECT_EQ(results[i].labels, expected.labels) << "i=" << i;
  }
  // One index build serves the whole sweep; only the first run grows the
  // workspace.
  EXPECT_EQ(engine.counters().index_builds, 1);
  EXPECT_EQ(results[0].timings.index_rebuilds, 1);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].timings.engine_run);
    EXPECT_EQ(results[i].timings.index_rebuilds, 0) << "i=" << i;
    EXPECT_EQ(results[i].timings.workspace_reallocs, 0) << "i=" << i;
  }
}

TEST(Engine, PointIndexIsBuiltLazilyAndOnce) {
  const auto points = clustered_points<2>(800, 3, 1.0f, 0.02f, 94);
  Engine<2> engine(points);
  EXPECT_FALSE(engine.index_built());
  EXPECT_EQ(engine.counters().index_builds, 0);
  (void)engine.run({0.02f, 5});
  EXPECT_TRUE(engine.index_built());
  (void)engine.run({0.05f, 8});
  (void)engine.run({0.01f, 2});
  EXPECT_EQ(engine.counters().index_builds, 1);
  EXPECT_EQ(engine.counters().runs, 3);
}

TEST(Engine, GridCacheHitsAndMisses) {
  const auto points = clustered_points<2>(1000, 4, 1.0f, 0.01f, 95);
  const Parameters a{0.02f, 5};
  const Parameters b{0.04f, 5};
  Engine<2> engine(points);
  EXPECT_FALSE(engine.grid_cached(a));

  (void)engine.run_densebox(a);  // miss: first build
  EXPECT_TRUE(engine.grid_cached(a));
  EXPECT_EQ(engine.counters().grid_builds, 1);
  EXPECT_EQ(engine.counters().grid_cache_hits, 0);

  const auto warm = engine.run_densebox(a);  // hit
  EXPECT_EQ(engine.counters().grid_cache_hits, 1);
  EXPECT_EQ(warm.timings.grid_cache_hits, 1);
  EXPECT_EQ(warm.timings.index_rebuilds, 0);

  (void)engine.run_densebox(b);  // different eps: miss
  EXPECT_EQ(engine.counters().grid_builds, 2);
  EXPECT_TRUE(engine.grid_cached(a));  // still cached (capacity 4)
  EXPECT_TRUE(engine.grid_cached(b));

  // minpts feeds the key through max(minpts, 1): 5 vs 7 are distinct
  // grids (different dense-cell thresholds), 2 never collapses below 1.
  EXPECT_FALSE(engine.grid_cached(Parameters{a.eps, 7}));
  // Cell width factor is part of the key too.
  Options narrow;
  narrow.densebox_cell_width_factor = 0.5f;
  EXPECT_FALSE(engine.grid_cached(a, narrow));
}

TEST(Engine, GridCacheEvictsLeastRecentlyUsed) {
  const auto points = clustered_points<2>(800, 4, 1.0f, 0.01f, 96);
  EngineConfig config;
  config.grid_cache_capacity = 2;
  Engine<2> engine(points, config);
  const Parameters a{0.01f, 5}, b{0.02f, 5}, c{0.03f, 5};
  (void)engine.run_densebox(a);
  (void)engine.run_densebox(b);
  (void)engine.run_densebox(a);  // refresh a: b becomes LRU
  (void)engine.run_densebox(c);  // evicts b
  EXPECT_EQ(engine.counters().grid_cache_evictions, 1);
  EXPECT_TRUE(engine.grid_cached(a));
  EXPECT_FALSE(engine.grid_cached(b));
  EXPECT_TRUE(engine.grid_cached(c));
}

TEST(Engine, ZeroHeapGrowthAfterWarmup) {
  ScopedThreads threads(4);
  const auto points = clustered_points<2>(1200, 4, 1.0f, 0.01f, 97);
  exec::MemoryTracker tracker;
  EngineConfig config;
  config.memory = &tracker;
  Engine<2> engine(points, config);

  (void)engine.run({0.02f, 5});
  (void)engine.run_densebox({0.02f, 5});
  const std::size_t warm_bytes = tracker.current();
  const std::int64_t warm_reallocs = engine.counters().workspace_reallocs;
  ASSERT_GT(warm_bytes, 0u);
  ASSERT_GT(warm_reallocs, 0);

  // Warmed: repeat runs must not grow engine-owned memory at all — no
  // workspace growth, no new index, no new grid bundle.
  for (int i = 0; i < 3; ++i) {
    const auto r1 = engine.run({0.02f, 5});
    const auto r2 = engine.run_densebox({0.02f, 5});
    EXPECT_EQ(r1.timings.workspace_reallocs, 0);
    EXPECT_EQ(r1.timings.index_rebuilds, 0);
    EXPECT_EQ(r2.timings.workspace_reallocs, 0);
    EXPECT_EQ(r2.timings.index_rebuilds, 0);
  }
  EXPECT_EQ(tracker.current(), warm_bytes);
  EXPECT_EQ(engine.counters().workspace_reallocs, warm_reallocs);
}

TEST(Engine, ReleasesTrackedMemoryOnDestruction) {
  const auto points = clustered_points<2>(600, 3, 1.0f, 0.02f, 98);
  exec::MemoryTracker tracker;
  {
    EngineConfig config;
    config.memory = &tracker;
    Engine<2> engine(points, config);
    (void)engine.run({0.03f, 5});
    (void)engine.run_densebox({0.03f, 5});
    EXPECT_GT(tracker.current(), 0u);
  }
  EXPECT_EQ(tracker.current(), 0u);
}

TEST(Engine, AutoSelectRoutesThroughEngine) {
  ScopedThreads threads(4);
  const auto points = clustered_points<2>(1500, 4, 1.0f, 0.005f, 99);
  const Parameters params{0.02f, 5};
  Engine<2> engine(points);
  const auto via_engine = fdbscan_auto(engine, params);
  const auto one_shot = fdbscan_auto(points, params);
  EXPECT_EQ(via_engine.used_densebox, one_shot.used_densebox);
  EXPECT_DOUBLE_EQ(via_engine.estimated_dense_fraction,
                   one_shot.estimated_dense_fraction);
  EXPECT_EQ(via_engine.clustering.labels, one_shot.clustering.labels);
  EXPECT_GE(engine.counters().runs, 1);
}

TEST(Engine, EmptyInputRunsReportNothing) {
  const std::vector<Point2> points;
  Engine<2> engine(points);
  EXPECT_TRUE(engine.run({0.1f, 5}).labels.empty());
  EXPECT_TRUE(engine.run_densebox({0.1f, 5}).labels.empty());
  EXPECT_EQ(engine.counters().index_builds, 0);
}

// --- cluster(): the validated entry point --------------------------------

TEST(Cluster, RejectsInvalidEps) {
  const auto points = clustered_points<2>(100, 2, 1.0f, 0.05f, 100);
  for (float eps : {0.0f, -1.0f, std::numeric_limits<float>::quiet_NaN(),
                    std::numeric_limits<float>::infinity()}) {
    const auto result = cluster(points, Parameters{eps, 5});
    ASSERT_FALSE(result.has_value()) << "eps=" << eps;
    EXPECT_EQ(result.error().code, ErrorCode::kInvalidEps);
    EXPECT_FALSE(result.error().message.empty());
  }
}

TEST(Cluster, RejectsInvalidMinpts) {
  const auto points = clustered_points<2>(100, 2, 1.0f, 0.05f, 100);
  const auto result = cluster(points, Parameters{0.1f, 0});
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidMinpts);
}

TEST(Cluster, RejectsInvalidCellWidthFactor) {
  const auto points = clustered_points<2>(100, 2, 1.0f, 0.05f, 100);
  for (float factor : {0.0f, -0.5f, 1.5f,
                       std::numeric_limits<float>::quiet_NaN()}) {
    Options options;
    options.densebox_cell_width_factor = factor;
    const auto result = cluster(points, Parameters{0.1f, 5}, options);
    ASSERT_FALSE(result.has_value()) << "factor=" << factor;
    EXPECT_EQ(result.error().code, ErrorCode::kInvalidCellWidthFactor);
  }
}

TEST(Cluster, RejectsNonFinitePointAndNamesTheFirst) {
  ScopedThreads threads(4);
  auto points = clustered_points<2>(500, 2, 1.0f, 0.05f, 101);
  points[123][1] = std::numeric_limits<float>::quiet_NaN();
  points[400][0] = std::numeric_limits<float>::infinity();
  const auto result = cluster(points, Parameters{0.1f, 5});
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::kNonFinitePoint);
  // Deterministic min-reduction: the FIRST offender is reported, at any
  // worker count.
  EXPECT_NE(result.error().message.find("123"), std::string::npos)
      << result.error().message;
}

TEST(Cluster, ValueThrowsOnError) {
  const std::vector<Point2> points(10);
  const auto result = cluster(points, Parameters{-1.0f, 5});
  EXPECT_FALSE(static_cast<bool>(result));
  EXPECT_THROW((void)result.value(), std::logic_error);
}

TEST(Cluster, ValidInputMatchesUncheckedPath) {
  ScopedThreads threads(4);
  const auto points = clustered_points<2>(1000, 4, 1.0f, 0.01f, 102);
  const Parameters params{0.02f, 5};
  const auto checked = cluster(points, params, {}, Method::kFdbscan);
  ASSERT_TRUE(checked.has_value());
  EXPECT_EQ(checked->labels, fdbscan(points, params).labels);

  const auto densebox = cluster(points, params, {}, Method::kDensebox);
  ASSERT_TRUE(densebox.has_value());
  EXPECT_EQ(densebox->labels, fdbscan_densebox(points, params).labels);

  const auto automatic = cluster(points, params);
  ASSERT_TRUE(automatic.has_value());
  EXPECT_EQ(automatic->num_clusters, checked->num_clusters);
}

TEST(Cluster, EngineOverloadValidatesAndRuns) {
  const auto points = clustered_points<2>(500, 3, 1.0f, 0.02f, 103);
  Engine<2> engine(points);
  const auto bad = cluster(engine, Parameters{0.1f, -3});
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error().code, ErrorCode::kInvalidMinpts);
  EXPECT_EQ(engine.counters().runs, 0);  // rejected before any kernel ran

  const auto good = cluster(engine, Parameters{0.03f, 5}, {},
                            Method::kFdbscan);
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(good->labels, fdbscan(points, Parameters{0.03f, 5}).labels);
}

TEST(Cluster, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(error_code_name(ErrorCode::kInvalidEps), "InvalidEps");
  EXPECT_STREQ(error_code_name(ErrorCode::kInvalidMinpts), "InvalidMinpts");
  EXPECT_STREQ(error_code_name(ErrorCode::kNonFinitePoint), "NonFinitePoint");
  EXPECT_STREQ(error_code_name(ErrorCode::kInvalidCellWidthFactor),
               "InvalidCellWidthFactor");
}

}  // namespace
}  // namespace fdbscan
