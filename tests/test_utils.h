// Shared helpers for the test suite: small deterministic datasets and a
// scoped thread-count override.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "exec/thread_pool.h"
#include "geometry/point.h"

namespace fdbscan::testing {

/// Runs a section of a test with a specific worker count, restoring the
/// previous count afterwards (thread-count is part of many parameterized
/// sweeps: races only show up with real concurrency).
class ScopedThreads {
 public:
  explicit ScopedThreads(int n) : previous_(exec::num_threads()) {
    exec::set_num_threads(n);
  }
  ~ScopedThreads() { exec::set_num_threads(previous_); }
  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

 private:
  int previous_;
};

/// Uniform points in [0, extent]^DIM.
template <int DIM>
std::vector<Point<DIM>> random_points(std::int64_t n, float extent,
                                      std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> coord(0.0f, extent);
  std::vector<Point<DIM>> points(static_cast<std::size_t>(n));
  for (auto& p : points) {
    for (int d = 0; d < DIM; ++d) p[d] = coord(rng);
  }
  return points;
}

/// Clumpy points: uniform cluster centers with Gaussian blobs plus a few
/// uniform stragglers — exercises dense cells, borders and noise at once.
template <int DIM>
std::vector<Point<DIM>> clustered_points(std::int64_t n, std::int32_t k,
                                         float extent, float sigma,
                                         std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> coord(0.0f, extent);
  std::normal_distribution<float> gauss(0.0f, sigma);
  std::vector<Point<DIM>> centers(static_cast<std::size_t>(k));
  for (auto& c : centers) {
    for (int d = 0; d < DIM; ++d) c[d] = coord(rng);
  }
  std::vector<Point<DIM>> points(static_cast<std::size_t>(n));
  for (auto& p : points) {
    if (rng() % 10 == 0) {  // 10% uniform background
      for (int d = 0; d < DIM; ++d) p[d] = coord(rng);
    } else {
      const auto& c = centers[rng() % static_cast<std::uint64_t>(k)];
      for (int d = 0; d < DIM; ++d) p[d] = c[d] + gauss(rng);
    }
  }
  return points;
}

}  // namespace fdbscan::testing
