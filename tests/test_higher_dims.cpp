// Instantiation coverage beyond the paper's 2-D/3-D focus: the templates
// advertise DIM up to 6 (generic Morton interleave path, generic grid).
// Verify correctness end-to-end at DIM = 4 — the generic-bit-interleave
// branch of morton_code and the DIM-generic grid/kd-tree code paths.
#include <gtest/gtest.h>

#include "core/fdbscan.h"
#include "core/fdbscan_densebox.h"
#include "core/validate.h"
#include "test_utils.h"

namespace fdbscan {
namespace {

TEST(HigherDims, Fdbscan4D) {
  testing::ScopedThreads threads(4);
  auto points = testing::clustered_points<4>(600, 4, 1.0f, 0.02f, 1001);
  const Parameters params{0.05f, 6};
  const auto result = fdbscan(points, params);
  const auto check = matches_ground_truth(points, params, result);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(HigherDims, DenseBox4D) {
  testing::ScopedThreads threads(4);
  auto points = testing::clustered_points<4>(600, 4, 1.0f, 0.02f, 1002);
  const Parameters params{0.05f, 6};
  const auto result = fdbscan_densebox(points, params);
  const auto check = matches_ground_truth(points, params, result);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(HigherDims, FriendsOfFriends4D) {
  auto points = testing::random_points<4>(400, 1.0f, 1003);
  const Parameters params{0.15f, 2};
  const auto a = fdbscan(points, params);
  const auto b = fdbscan_densebox(points, params);
  const auto check = equivalent_clusterings(points, params, a, b);
  EXPECT_TRUE(check.ok) << check.message;
  const auto gt = matches_ground_truth(points, params, a);
  EXPECT_TRUE(gt.ok) << gt.message;
}

TEST(HigherDims, MortonGenericPathOrdersAxes4D) {
  // The generic interleave must still be monotone along each axis.
  Box<4> scene;
  for (int d = 0; d < 4; ++d) {
    scene.min[d] = 0.0f;
    scene.max[d] = 1.0f;
  }
  for (int d = 0; d < 4; ++d) {
    Point<4> lo{}, hi{};
    for (int e = 0; e < 4; ++e) lo[e] = hi[e] = 0.3f;
    lo[d] = 0.1f;
    hi[d] = 0.9f;
    EXPECT_LT(morton_code(lo, scene) ^ morton_code(hi, scene), ~0ULL);
    EXPECT_NE(morton_code(lo, scene), morton_code(hi, scene)) << "axis " << d;
  }
}

TEST(HigherDims, GridCellDiameterInvariant4D) {
  const float eps = 0.2f;
  Box<4> domain;
  for (int d = 0; d < 4; ++d) {
    domain.min[d] = 0.0f;
    domain.max[d] = 3.0f;
  }
  const auto spec = GridSpec<4>::create(domain, eps);
  EXPECT_LE(spec.cell_width * std::sqrt(4.0f), eps * 1.000001f);
}

}  // namespace
}  // namespace fdbscan
