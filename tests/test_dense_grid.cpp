#include "grid/dense_grid.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "test_utils.h"

namespace fdbscan {
namespace {

TEST(GridSpec, CellWidthIsEpsOverSqrtD) {
  Box2 domain{{{0.0f, 0.0f}}, {{1.0f, 1.0f}}};
  const auto spec2 = GridSpec<2>::create(domain, 0.1f);
  EXPECT_FLOAT_EQ(spec2.cell_width, 0.1f / std::sqrt(2.0f));
  Box3 domain3{{{0.0f, 0.0f, 0.0f}}, {{1.0f, 1.0f, 1.0f}}};
  const auto spec3 = GridSpec<3>::create(domain3, 0.1f);
  EXPECT_FLOAT_EQ(spec3.cell_width, 0.1f / std::sqrt(3.0f));
}

TEST(GridSpec, CellDiameterDoesNotExceedEps) {
  // The defining invariant of §4.2: any two points of one cell are
  // within eps of each other.
  for (float eps : {0.01f, 0.37f, 2.0f}) {
    Box3 domain{{{0.0f, 0.0f, 0.0f}}, {{10.0f, 10.0f, 10.0f}}};
    const auto spec = GridSpec<3>::create(domain, eps);
    const float diameter = spec.cell_width * std::sqrt(3.0f);
    EXPECT_LE(diameter, eps * 1.000001f);
  }
}

TEST(GridSpec, ThrowsOnNonPositiveEps) {
  Box2 domain{{{0.0f, 0.0f}}, {{1.0f, 1.0f}}};
  EXPECT_THROW(GridSpec<2>::create(domain, 0.0f), std::invalid_argument);
  EXPECT_THROW(GridSpec<2>::create(domain, -1.0f), std::invalid_argument);
}

TEST(GridSpec, ThrowsOnCellIndexOverflow) {
  Box3 domain{{{0.0f, 0.0f, 0.0f}}, {{1e18f, 1e18f, 1e18f}}};
  EXPECT_THROW(GridSpec<3>::create(domain, 1e-4f), std::overflow_error);
}

TEST(GridSpec, SupportsBillionsOfCells) {
  // The paper's 3-D regime: >3.5e9 cells must be representable (§5.2).
  Box3 domain{{{0.0f, 0.0f, 0.0f}}, {{64.0f, 64.0f, 64.0f}}};
  const auto spec = GridSpec<3>::create(domain, 0.042f);
  EXPECT_GT(spec.total_cells, 3'500'000'000ULL);
}

TEST(GridSpec, KeyBoxRoundTrip) {
  Box2 domain{{{-1.0f, 2.0f}}, {{3.0f, 8.0f}}};
  const auto spec = GridSpec<2>::create(domain, 0.33f);
  auto pts = testing::random_points<2>(200, 1.0f, 5);
  for (auto p : pts) {
    p[0] = p[0] * 4.0f - 1.0f;
    p[1] = p[1] * 6.0f + 2.0f;
    const auto key = spec.cell_key(p);
    const auto box = spec.cell_box(key);
    // Allow for float rounding at cell faces.
    for (int d = 0; d < 2; ++d) {
      EXPECT_GE(p[d], box.min[d] - 1e-5f);
      EXPECT_LE(p[d], box.max[d] + 1e-5f);
    }
  }
}

TEST(GridSpec, DistinctCellsDistinctKeys) {
  Box2 domain{{{0.0f, 0.0f}}, {{1.0f, 1.0f}}};
  const auto spec = GridSpec<2>::create(domain, 0.2f);
  std::set<std::uint64_t> keys;
  std::int64_t c[2];
  for (c[0] = 0; c[0] < spec.dims[0]; ++c[0]) {
    for (c[1] = 0; c[1] < spec.dims[1]; ++c[1]) {
      EXPECT_TRUE(keys.insert(spec.linearize(c)).second);
    }
  }
}

TEST(DenseGrid, PermutationIsAPermutation) {
  auto pts = testing::clustered_points<2>(2000, 5, 1.0f, 0.01f, 42);
  DenseGrid<2> grid(pts, 0.05f, 10);
  std::set<std::int32_t> ids(grid.permutation().begin(),
                             grid.permutation().end());
  EXPECT_EQ(ids.size(), pts.size());
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), static_cast<std::int32_t>(pts.size()) - 1);
}

TEST(DenseGrid, DenseCellsMatchManualCount) {
  auto pts = testing::clustered_points<2>(3000, 4, 1.0f, 0.005f, 7);
  const std::int32_t minpts = 8;
  const float eps = 0.02f;
  DenseGrid<2> grid(pts, eps, minpts);
  // Manual histogram over cell keys.
  std::map<std::uint64_t, std::int32_t> histogram;
  for (const auto& p : pts) ++histogram[grid.spec().cell_key(p)];
  std::int32_t expected_dense = 0, expected_dense_points = 0;
  for (const auto& [key, count] : histogram) {
    if (count >= minpts) {
      ++expected_dense;
      expected_dense_points += count;
    }
  }
  EXPECT_EQ(grid.num_dense_cells(), expected_dense);
  EXPECT_EQ(grid.points_in_dense_cells(), expected_dense_points);
  EXPECT_EQ(static_cast<std::int32_t>(grid.cells().size()),
            static_cast<std::int32_t>(histogram.size()));
}

TEST(DenseGrid, CellsPartitionThePermutation) {
  auto pts = testing::random_points<2>(777, 1.0f, 3);
  DenseGrid<2> grid(pts, 0.1f, 5);
  std::int32_t cursor = 0;
  for (const auto& cell : grid.cells()) {
    EXPECT_EQ(cell.begin, cursor);
    EXPECT_GT(cell.count(), 0);
    cursor = cell.end;
    // All members of the cell share its key.
    for (std::int32_t k = cell.begin; k < cell.end; ++k) {
      const auto id = grid.permutation()[static_cast<std::size_t>(k)];
      EXPECT_EQ(grid.spec().cell_key(pts[static_cast<std::size_t>(id)]),
                cell.key);
    }
  }
  EXPECT_EQ(cursor, static_cast<std::int32_t>(pts.size()));
}

TEST(DenseGrid, DenseCellsComeFirst) {
  auto pts = testing::clustered_points<2>(2000, 3, 1.0f, 0.004f, 9);
  const std::int32_t minpts = 6;
  DenseGrid<2> grid(pts, 0.03f, minpts);
  for (std::size_t c = 0; c < grid.cells().size(); ++c) {
    const bool dense =
        grid.cells()[c].count() >= minpts;
    EXPECT_EQ(dense, static_cast<std::int32_t>(c) < grid.num_dense_cells());
  }
}

TEST(DenseGrid, DenseCellOfIsConsistent) {
  auto pts = testing::clustered_points<2>(1500, 5, 1.0f, 0.006f, 13);
  DenseGrid<2> grid(pts, 0.04f, 7);
  std::int32_t dense_points = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const std::int32_t c = grid.dense_cell_of()[i];
    if (c >= 0) {
      ++dense_points;
      EXPECT_LT(c, grid.num_dense_cells());
      EXPECT_EQ(grid.cells()[static_cast<std::size_t>(c)].key,
                grid.spec().cell_key(pts[i]));
      EXPECT_TRUE(grid.in_dense_cell(static_cast<std::int32_t>(i)));
    } else {
      EXPECT_FALSE(grid.in_dense_cell(static_cast<std::int32_t>(i)));
    }
  }
  EXPECT_EQ(dense_points, grid.points_in_dense_cells());
}

TEST(DenseGrid, AllPointsInDenseCellsAreMutuallyWithinEps) {
  // End-to-end check of the diameter invariant on real data.
  auto pts = testing::clustered_points<2>(1000, 2, 0.5f, 0.002f, 21);
  const float eps = 0.05f;
  DenseGrid<2> grid(pts, eps, 5);
  const float eps2 = eps * eps;
  for (std::int32_t c = 0; c < grid.num_dense_cells(); ++c) {
    const auto& cell = grid.cells()[static_cast<std::size_t>(c)];
    for (std::int32_t a = cell.begin; a < cell.end; ++a) {
      for (std::int32_t b = a + 1; b < cell.end; ++b) {
        const auto pa = grid.permutation()[static_cast<std::size_t>(a)];
        const auto pb = grid.permutation()[static_cast<std::size_t>(b)];
        ASSERT_TRUE(within(pts[static_cast<std::size_t>(pa)],
                           pts[static_cast<std::size_t>(pb)], eps2));
      }
    }
  }
}

TEST(DenseGrid, MinptsOneMakesEveryOccupiedCellDense) {
  auto pts = testing::random_points<2>(100, 1.0f, 55);
  DenseGrid<2> grid(pts, 0.2f, 1);
  EXPECT_EQ(grid.num_dense_cells(),
            static_cast<std::int32_t>(grid.cells().size()));
  EXPECT_EQ(grid.points_in_dense_cells(),
            static_cast<std::int32_t>(pts.size()));
}

TEST(DenseGrid, HugeMinptsMakesNoCellDense) {
  auto pts = testing::random_points<2>(100, 1.0f, 56);
  DenseGrid<2> grid(pts, 0.2f, 1000);
  EXPECT_EQ(grid.num_dense_cells(), 0);
  EXPECT_EQ(grid.points_in_dense_cells(), 0);
}

}  // namespace
}  // namespace fdbscan
