// Observability plane (src/obs/, DESIGN.md §13): metrics registry
// semantics (monotone counters under contention, histogram identities,
// name stability), the service's registry mirror (per-window deltas
// bit-equal to ServiceMetrics), request-id propagation through trace
// spans, the structured JSONL log (levels, rate limiting, env-warning
// migration), statusz dumps, and the trace-flush-vs-recorder race the
// SIGUSR1 path depends on (swept under TSan via the `obs` label).
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "exec/memory_tracker.h"
#include "exec/trace.h"
#include "obs/log.h"
#include "obs/request_id.h"
#include "obs/statusz.h"
#include "service/service.h"
#include "test_utils.h"

namespace fdbscan::obs {
namespace {

using testing::ScopedThreads;

std::shared_ptr<const std::vector<Point2>> shared_points(
    std::int64_t n, std::uint64_t seed) {
  return std::make_shared<const std::vector<Point2>>(
      fdbscan::testing::clustered_points<2>(n, 6, 1.0f, 0.02f, seed));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string temp_path(const char* stem) {
  const char* dir = std::getenv("TMPDIR");
  std::string path = dir != nullptr && *dir != '\0' ? dir : "/tmp";
  if (path.back() != '/') path += '/';
  path += stem;
  path += "." + std::to_string(::getpid());
  return path;
}

int count_lines_containing(const std::string& text, const std::string& sub,
                           const std::string& also = "") {
  int count = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find(sub) != std::string::npos &&
        (also.empty() || line.find(also) != std::string::npos)) {
      ++count;
    }
  }
  return count;
}

// --- Metrics registry ----------------------------------------------------

TEST(ObsMetrics, CounterMonotoneUnderConcurrentIncrements) {
  Counter& c = counter("test_obs_concurrent_total");
  const std::int64_t base = c.value();
  constexpr int kThreads = 8;
  constexpr int kIncs = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncs; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), base + kThreads * kIncs);
}

TEST(ObsMetrics, RegistryReturnsStableReferences) {
  Counter& a = counter("test_obs_stable_total");
  Counter& b = counter("test_obs_stable_total");
  EXPECT_EQ(&a, &b);
  // Force a registration wave; the earlier reference must survive it
  // (deque storage — no reallocation moves).
  for (int i = 0; i < 64; ++i) {
    (void)counter("test_obs_churn_" + std::to_string(i) + "_total");
  }
  Counter& c = counter("test_obs_stable_total");
  EXPECT_EQ(&a, &c);
}

TEST(ObsMetrics, KindMismatchAndBadNamesThrow) {
  (void)counter("test_obs_kind_total");
  EXPECT_THROW((void)gauge("test_obs_kind_total"), std::logic_error);
  EXPECT_THROW((void)histogram("test_obs_kind_total"), std::logic_error);
  EXPECT_THROW((void)counter(""), std::logic_error);
  EXPECT_THROW((void)counter("0starts_with_digit"), std::logic_error);
  EXPECT_THROW((void)counter("has space"), std::logic_error);
  EXPECT_THROW((void)counter("has-dash"), std::logic_error);
}

TEST(ObsMetrics, HistogramBucketSumEqualsCountAndPlacementIsLog2) {
  Histogram& h = histogram("test_obs_hist");
  const HistogramSnapshot before = h.snapshot();
  // 500 ns -> 0 us -> bucket 0; 1 us -> bucket 1; 1000 us -> bucket 10;
  // 1 hour -> clamped into the last bucket.
  h.observe_ns(500);
  h.observe_ns(1000);
  h.observe_ns(1000 * 1000);
  h.observe_ns(std::int64_t{3600} * 1000 * 1000 * 1000);
  const HistogramSnapshot after = h.snapshot();
  EXPECT_EQ(after.count - before.count, 4);
  EXPECT_EQ(after.buckets[0] - before.buckets[0], 1);
  EXPECT_EQ(after.buckets[1] - before.buckets[1], 1);
  EXPECT_EQ(after.buckets[10] - before.buckets[10], 1);
  EXPECT_EQ(after.buckets[kHistogramBuckets - 1] -
                before.buckets[kHistogramBuckets - 1],
            1);
  std::int64_t bucket_sum = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) bucket_sum += after.buckets[i];
  EXPECT_EQ(bucket_sum, after.count);
  EXPECT_EQ(after.total_ns - before.total_ns,
            500 + 1000 + 1000 * 1000 +
                std::int64_t{3600} * 1000 * 1000 * 1000);
  EXPECT_GE(after.max_ns, std::int64_t{3600} * 1000 * 1000 * 1000);
}

TEST(ObsMetrics, DeltaSubtractsCountersAndHistograms) {
  Counter& c = counter("test_obs_delta_total");
  Histogram& h = histogram("test_obs_delta_hist");
  const MetricsSnapshot before = snapshot_metrics();
  c.inc(7);
  h.observe_ns(2500);
  h.observe_ns(2500);
  const MetricsSnapshot delta = metrics_delta(before, snapshot_metrics());
  std::int64_t c_delta = -1;
  for (const auto& v : delta.counters) {
    if (v.name == "test_obs_delta_total") c_delta = v.value;
  }
  EXPECT_EQ(c_delta, 7);
  bool found = false;
  for (const auto& hh : delta.histograms) {
    if (hh.name != "test_obs_delta_hist") continue;
    found = true;
    EXPECT_EQ(hh.data.count, 2);
    EXPECT_EQ(hh.data.total_ns, 5000);
    EXPECT_EQ(hh.data.buckets[2], 2);  // 2 us -> bit_width(2) = 2
  }
  EXPECT_TRUE(found);
}

TEST(ObsMetrics, DeltaZeroesMaxWhenWindowSawNoSamples) {
  Histogram& h = histogram("test_obs_delta_idle_hist");
  h.observe_ns(123456789);  // raises the process-lifetime max
  const MetricsSnapshot before = snapshot_metrics();
  const MetricsSnapshot delta = metrics_delta(before, snapshot_metrics());
  for (const auto& hh : delta.histograms) {
    if (hh.name != "test_obs_delta_idle_hist") continue;
    EXPECT_EQ(hh.data.count, 0);
    EXPECT_EQ(hh.data.max_ns, 0) << "idle window must not inherit the "
                                    "lifetime max";
  }
}

TEST(ObsMetrics, PrometheusTextGolden) {
  // Hand-built snapshot: the serializer's output is a stable format
  // contract (tools/fdbscan_statusz.py parses it line-by-line).
  MetricsSnapshot snap;
  snap.counters.push_back({"demo_total", 3});
  snap.gauges.push_back({"demo_gauge", -2});
  MetricsSnapshot::Hist h;
  h.name = "demo_hist";
  h.data.count = 2;
  h.data.total_ns = 3000;
  h.data.max_ns = 2000;
  h.data.buckets[1] = 1;  // 1 us
  h.data.buckets[2] = 1;  // 2 us
  snap.histograms.push_back(h);

  const std::string text = to_prometheus_text(snap);
  EXPECT_NE(text.find("# TYPE demo_total counter\ndemo_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_gauge gauge\ndemo_gauge -2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_hist histogram\n"), std::string::npos);
  // Cumulative buckets: le=1e-06 covers bucket 0 (empty), le=2e-06 adds
  // the 1 us sample, le=4e-06 adds the 2 us one; +Inf equals _count.
  EXPECT_NE(text.find("demo_hist_bucket{le=\"9.9999999999999995e-07\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("demo_hist_bucket{le=\"1.9999999999999999e-06\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("demo_hist_bucket{le=\"3.9999999999999998e-06\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("demo_hist_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("demo_hist_sum 3.0000000000000001e-06\n"),
            std::string::npos);
  EXPECT_NE(text.find("demo_hist_count 2\n"), std::string::npos);
}

TEST(ObsMetrics, JsonGolden) {
  MetricsSnapshot snap;
  snap.counters.push_back({"a_total", 1});
  snap.gauges.push_back({"g", 5});
  const std::string json = to_json(snap);
  EXPECT_EQ(json,
            "{\"counters\":{\"a_total\":1},\"gauges\":{\"g\":5},"
            "\"histograms\":{}}");
}

TEST(ObsMetrics, SnapshotNamesUniqueSortedAndStableAcrossWorkerCounts) {
  const auto points = shared_points(400, 11);
  // Touch the families that only register on their subsystem's first
  // use, so the promised-names check below is about naming, not about
  // which code paths this test happened to drive.
  {
    exec::MemoryTracker tracker;
    tracker.charge(1024);
    tracker.release(1024);
  }
  std::set<std::string> first_names;
  for (const int workers : {1, 2, 8}) {
    ScopedThreads scoped(workers);
    {
      service::ClusterService svc;
      auto result =
          svc.submit<2>("obs-names", points, Parameters{0.05f, 5}).get();
      ASSERT_TRUE(result.has_value());
      service::SubmitOptions sharded;
      sharded.shards = 2;
      auto sharded_result =
          svc.submit<2>("obs-names", points, Parameters{0.05f, 5}, sharded)
              .get();
      ASSERT_TRUE(sharded_result.has_value());
      svc.wait_idle();
    }
    const MetricsSnapshot snap = snapshot_metrics();
    std::vector<std::string> names;
    for (const auto& v : snap.counters) names.push_back(v.name);
    for (const auto& v : snap.gauges) names.push_back(v.name);
    for (const auto& h : snap.histograms) names.push_back(h.name);
    std::set<std::string> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), names.size())
        << "a name is registered under two kinds";
    EXPECT_TRUE(std::is_sorted(snap.counters.begin(), snap.counters.end(),
                               [](const auto& a, const auto& b) {
                                 return a.name < b.name;
                               }));
    if (first_names.empty()) {
      first_names = unique;
    } else {
      EXPECT_EQ(first_names, unique)
          << "worker count " << workers
          << " registered a different metric set — names must not "
             "depend on parallelism";
    }
  }
  // The families the plane promises are all present after service use.
  for (const char* name :
       {"fdbscan_service_submitted_total", "fdbscan_service_completed_total",
        "fdbscan_service_queue_depth", "fdbscan_pool_hits_total",
        "fdbscan_exec_launches_total", "fdbscan_exec_inflight_launches",
        "fdbscan_memory_charged_bytes_total", "fdbscan_shard_runs_total"}) {
    EXPECT_TRUE(first_names.count(name) == 1) << "missing metric " << name;
  }
}

// --- Service mirror ------------------------------------------------------

TEST(ObsServiceMirror, RegistryDeltaMatchesServiceMetricsUnderConcurrency) {
  const auto points = shared_points(500, 21);
  const MetricsSnapshot before = snapshot_metrics();
  service::ServiceMetrics final_metrics;
  {
    service::ServiceConfig config;
    config.dispatchers = 2;
    service::ClusterService svc(config);
    constexpr int kSubmitters = 4;
    constexpr int kPerThread = 6;
    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&svc, &points, t] {
        for (int i = 0; i < kPerThread; ++i) {
          Parameters params{0.05f, 5 + (t + i) % 3};
          auto f = svc.submit<2>("mirror", points, params);
          (void)f.get();
        }
      });
    }
    for (auto& t : submitters) t.join();
    svc.wait_idle();
    final_metrics = svc.metrics();
  }
  const MetricsSnapshot delta = metrics_delta(before, snapshot_metrics());
  const auto counter_delta = [&](const char* name) {
    for (const auto& c : delta.counters) {
      if (c.name == name) return c.value;
    }
    return std::int64_t{-1};
  };
  EXPECT_EQ(counter_delta("fdbscan_service_submitted_total"),
            final_metrics.submitted);
  EXPECT_EQ(counter_delta("fdbscan_service_completed_total"),
            final_metrics.completed);
  EXPECT_EQ(counter_delta("fdbscan_service_rejected_total"),
            final_metrics.rejected);
  EXPECT_EQ(counter_delta("fdbscan_service_cancelled_total"),
            final_metrics.cancelled);
  EXPECT_EQ(counter_delta("fdbscan_service_deadline_exceeded_total"),
            final_metrics.deadline_exceeded);
  EXPECT_EQ(counter_delta("fdbscan_service_failed_total"),
            final_metrics.failed);
  EXPECT_EQ(final_metrics.submitted, 24);
  // Terminal partition over the window.
  EXPECT_EQ(counter_delta("fdbscan_service_submitted_total"),
            counter_delta("fdbscan_service_completed_total") +
                counter_delta("fdbscan_service_rejected_total") +
                counter_delta("fdbscan_service_cancelled_total") +
                counter_delta("fdbscan_service_deadline_exceeded_total") +
                counter_delta("fdbscan_service_failed_total"));
  // Histogram mirrors: identical samples -> identical count / total /
  // buckets (the service feeds both sides the same nanoseconds).
  for (const auto& h : delta.histograms) {
    const service::LatencySummary* own = nullptr;
    if (h.name == "fdbscan_service_queue_wait") {
      own = &final_metrics.queue_wait;
    } else if (h.name == "fdbscan_service_run_time") {
      own = &final_metrics.run_time;
    }
    if (own == nullptr) continue;
    EXPECT_EQ(h.data.count, own->count) << h.name;
    EXPECT_EQ(static_cast<double>(h.data.total_ns) * 1e-6, own->total_ms)
        << h.name;
    std::int64_t bucket_sum = 0;
    for (int i = 0; i < kHistogramBuckets; ++i) {
      EXPECT_EQ(h.data.buckets[static_cast<std::size_t>(i)],
                own->buckets[static_cast<std::size_t>(i)])
          << h.name << " bucket " << i;
      bucket_sum += h.data.buckets[static_cast<std::size_t>(i)];
    }
    EXPECT_EQ(bucket_sum, h.data.count) << h.name;
  }
}

TEST(ObsServiceMirror, ServiceSnapshotSerializes) {
  const auto points = shared_points(300, 31);
  service::ClusterService svc;
  auto result = svc.submit<2>("snap", points, Parameters{0.05f, 5}).get();
  ASSERT_TRUE(result.has_value());
  svc.wait_idle();
  const service::ServiceSnapshot snap = svc.snapshot();
  EXPECT_EQ(snap.metrics.submitted, 1);
  EXPECT_EQ(snap.metrics.completed, 1);

  const std::string prom = service::to_prometheus_text(snap);
  EXPECT_EQ(prom.rfind("# fdbscan-service ", 0), 0u);
  EXPECT_NE(prom.find("fdbscan_service_submitted_total 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE fdbscan_service_queue_wait histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("fdbscan_pool_misses_total 1\n"), std::string::npos);

  const std::string json = service::to_json(snap);
  EXPECT_EQ(json.rfind("{\"config\":", 0), 0u);
  EXPECT_NE(json.find("\"fdbscan_service_completed_total\":1"),
            std::string::npos);
}

// --- Request ids ---------------------------------------------------------

TEST(ObsRequestId, MintedIdsAreUniqueAndNonZero) {
  std::set<RequestId> ids;
  for (int i = 0; i < 100; ++i) {
    const RequestId id = mint_request_id();
    EXPECT_NE(id, 0u);
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 100u);
}

TEST(ObsRequestId, ScopeNestsAndRestores) {
  EXPECT_EQ(current_request_id(), 0u);
  {
    RequestScope outer(5);
    EXPECT_EQ(current_request_id(), 5u);
    {
      RequestScope inner(7);
      EXPECT_EQ(current_request_id(), 7u);
    }
    EXPECT_EQ(current_request_id(), 5u);
  }
  EXPECT_EQ(current_request_id(), 0u);
}

TEST(ObsRequestId, ServiceSpansCarryRidInTrace) {
  exec::trace_start("");
  exec::trace_reset();
  ASSERT_TRUE(exec::trace_enabled());
  const auto points = shared_points(300, 41);
  {
    service::ClusterService svc;
    for (int i = 0; i < 3; ++i) {
      auto result =
          svc.submit<2>("rid", points, Parameters{0.05f, 5 + i}).get();
      ASSERT_TRUE(result.has_value());
    }
    svc.wait_idle();
  }
  const std::string json = exec::trace_flush();
  exec::trace_stop();
  std::set<std::string> rids;
  std::istringstream in(json);
  std::string line;
  int service_begins = 0;
  while (std::getline(in, line)) {
    if (line.find("\"ph\":\"B\"") == std::string::npos ||
        line.find("\"cat\":\"service\"") == std::string::npos) {
      continue;
    }
    ++service_begins;
    const std::size_t at = line.find("\"rid\":");
    ASSERT_NE(at, std::string::npos)
        << "service span without a request id: " << line;
    std::size_t end = at + 6;
    while (end < line.size() && std::isdigit(line[end]) != 0) ++end;
    rids.insert(line.substr(at + 6, end - (at + 6)));
  }
  // Two spans per request (queue-wait + run), three requests, three
  // distinct ids.
  EXPECT_EQ(service_begins, 6);
  EXPECT_EQ(rids.size(), 3u);
  EXPECT_EQ(rids.count("0"), 0u);
}

// --- Structured log ------------------------------------------------------

TEST(ObsLog, WritesJsonlWithFieldsAndRid) {
  const std::string path = temp_path("obs_log_basic");
  std::remove(path.c_str());
  log_init(path, LogLevel::kDebug);
  log_event(LogLevel::kInfo, "test.basic",
            {{"text", "a \"quoted\" value"},
             {"count", 42},
             {"ratio", 0.5},
             {"flag", true}});
  {
    RequestScope scope(99);
    log_event(LogLevel::kWarn, "test.with_rid", {{"k", "v"}});
  }
  log_init("stderr", LogLevel::kWarn);  // release the file sink
  const std::string text = read_file(path);
  EXPECT_EQ(count_lines_containing(text, "\"event\":\"test.basic\""), 1);
  EXPECT_NE(text.find("\"text\":\"a \\\"quoted\\\" value\""),
            std::string::npos);
  EXPECT_NE(text.find("\"count\":42"), std::string::npos);
  EXPECT_NE(text.find("\"flag\":true"), std::string::npos);
  EXPECT_NE(text.find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(text.find("\"ts_ns\":"), std::string::npos);
  // The rid rides along exactly when a RequestScope is installed.
  EXPECT_EQ(count_lines_containing(text, "\"rid\":99"), 1);
  const std::size_t basic = text.find("test.basic");
  const std::size_t rid = text.find("\"rid\":");
  EXPECT_GT(rid, basic) << "rid leaked onto the scope-free line";
  std::remove(path.c_str());
}

TEST(ObsLog, MinimumLevelSuppresses) {
  const std::string path = temp_path("obs_log_levels");
  std::remove(path.c_str());
  log_init(path, LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  log_event(LogLevel::kDebug, "test.suppressed");
  log_event(LogLevel::kInfo, "test.suppressed");
  log_event(LogLevel::kError, "test.emitted");
  log_init("stderr", LogLevel::kWarn);
  const std::string text = read_file(path);
  EXPECT_EQ(count_lines_containing(text, "test.suppressed"), 0);
  EXPECT_EQ(count_lines_containing(text, "test.emitted"), 1);
  std::remove(path.c_str());
}

TEST(ObsLog, RateLimiterCapsPerEventEmission) {
  const std::string path = temp_path("obs_log_rate");
  std::remove(path.c_str());
  log_init(path, LogLevel::kInfo);
  const std::int64_t dropped_before = log_dropped_count();
  constexpr int kBurst = 3 * kLogRateLimitPerSec;
  for (int i = 0; i < kBurst; ++i) {
    log_event(LogLevel::kInfo, "test.hot_loop", {{"i", i}});
  }
  // A tight burst spans at most two 1 s windows.
  const std::string text = read_file(path);
  const int emitted = count_lines_containing(text, "test.hot_loop");
  EXPECT_LE(emitted, 2 * kLogRateLimitPerSec);
  EXPECT_LT(emitted, kBurst);
  EXPECT_GT(log_dropped_count(), dropped_before);
  // The next emission after the window reports what was dropped.
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  log_event(LogLevel::kInfo, "test.hot_loop", {{"i", -1}});
  log_init("stderr", LogLevel::kWarn);
  const std::string after = read_file(path);
  EXPECT_EQ(count_lines_containing(after, "\"dropped\":"), 1);
  std::remove(path.c_str());
}

TEST(ObsLog, ServiceEnvWarningsLandOnTheStructuredLog) {
  const std::string path = temp_path("obs_log_env");
  std::remove(path.c_str());
  log_init(path, LogLevel::kDebug);
  ::setenv("FDBSCAN_SERVICE_QUEUE_CAP", "banana", 1);
  const service::ServiceConfig config = service::ServiceConfig::from_env();
  ::unsetenv("FDBSCAN_SERVICE_QUEUE_CAP");
  log_init("stderr", LogLevel::kWarn);
  EXPECT_EQ(config.queue_capacity, service::ServiceConfig{}.queue_capacity);
  const std::string text = read_file(path);
  EXPECT_EQ(count_lines_containing(text, "service.env_ignored"), 1);
  EXPECT_NE(text.find("FDBSCAN_SERVICE_QUEUE_CAP"), std::string::npos);
  EXPECT_NE(text.find("banana"), std::string::npos);
  std::remove(path.c_str());
}

// --- statusz -------------------------------------------------------------

TEST(ObsStatusz, TextHasSentinelsAndIncrementsSeq) {
  counter("fdbscan_statusz_test_total").inc();
  const std::string first = statusz_text();
  EXPECT_EQ(first.rfind("# fdbscan-statusz seq=", 0), 0u);
  EXPECT_NE(first.find("\n# end fdbscan-statusz seq="), std::string::npos);
  EXPECT_NE(first.find("fdbscan_statusz_test_total"), std::string::npos);
  EXPECT_NE(first.find("fdbscan_statusz_dumps_total"), std::string::npos);
  const auto seq_of = [](const std::string& text) {
    return std::atoll(text.c_str() + std::string("# fdbscan-statusz seq=")
                                         .size());
  };
  const std::string second = statusz_text();
  EXPECT_EQ(seq_of(second), seq_of(first) + 1);
}

TEST(ObsStatusz, DumpWritesAtomicallyToConfiguredFile) {
  const std::string path = temp_path("obs_statusz_dump");
  std::remove(path.c_str());
  ::setenv("FDBSCAN_STATUSZ", path.c_str(), 1);
  const std::string sink = statusz_dump();
  ::unsetenv("FDBSCAN_STATUSZ");
  EXPECT_EQ(sink, path);
  const std::string text = read_file(path);
  EXPECT_EQ(text.rfind("# fdbscan-statusz seq=", 0), 0u);
  EXPECT_NE(text.find("# end fdbscan-statusz"), std::string::npos);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

// --- trace_flush vs live recorders (the SIGUSR1 dump path) ---------------

TEST(ObsTraceFlush, ConcurrentFlushAndRecordersDoNotRace) {
  exec::trace_start("");
  exec::trace_reset();
  ASSERT_TRUE(exec::trace_enabled());
  constexpr int kRecorders = 4;
  std::vector<std::thread> recorders;
  for (int t = 0; t < kRecorders; ++t) {
    recorders.emplace_back([t] {
      // Plain threads have no trace track until they register one.
      exec::trace_register_thread("flush-race");
      const char* name = exec::trace_intern(
          "obs/flush-race-" + std::to_string(t));
      for (int i = 0; i < 4000; ++i) {
        const std::int64_t begin = exec::trace_now_ns();
        exec::trace_record_span(name, begin, begin + 1000, "test");
      }
    });
  }
  // Flush concurrently with the writers, as the statusz writer thread
  // does when SIGUSR1 arrives mid-run. Claimed-but-uncommitted events
  // are skipped; nothing may tear or crash (swept under TSan).
  std::string last;
  for (int i = 0; i < 25; ++i) {
    last = exec::trace_flush();
    EXPECT_NE(last.find("traceEvents"), std::string::npos);
  }
  for (auto& t : recorders) t.join();
  const std::string final_flush = exec::trace_flush();
  exec::trace_stop();
  // Every committed span surfaces as a balanced B/E pair of its name.
  for (int t = 0; t < kRecorders; ++t) {
    const std::string name =
        "\"name\":\"obs/flush-race-" + std::to_string(t) + "\"";
    const int begins =
        count_lines_containing(final_flush, "\"ph\":\"B\"", name);
    const int ends = count_lines_containing(final_flush, "\"ph\":\"E\"", name);
    EXPECT_GT(begins, 0) << name;
    EXPECT_EQ(begins, ends) << name;
  }
}

}  // namespace
}  // namespace fdbscan::obs
