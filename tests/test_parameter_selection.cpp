#include "core/parameter_selection.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "bvh/bvh.h"
#include "core/fdbscan.h"
#include "data/generators.h"
#include "test_utils.h"

namespace fdbscan {
namespace {

// --- kNN queries (the substrate of the k-dist heuristic) ----------------

template <int DIM>
std::vector<std::pair<std::int32_t, float>> brute_force_knn(
    const std::vector<Point<DIM>>& pts, const Point<DIM>& q, std::int32_t k) {
  std::vector<std::pair<std::int32_t, float>> all;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    all.emplace_back(static_cast<std::int32_t>(i), squared_distance(q, pts[i]));
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  all.resize(std::min<std::size_t>(all.size(), static_cast<std::size_t>(k)));
  return all;
}

class BvhKnn : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(BvhKnn, MatchesBruteForce) {
  const std::int32_t k = GetParam();
  auto pts = testing::random_points<2>(700, 1.0f, 801);
  Bvh<2> bvh(pts);
  for (std::size_t q = 0; q < pts.size(); q += 31) {
    const auto expected = brute_force_knn(pts, pts[q], k);
    const auto got = bvh.nearest(pts[q], k);
    ASSERT_EQ(got.size(), expected.size()) << "query " << q;
    for (std::size_t j = 0; j < got.size(); ++j) {
      // Distances must match exactly; ids may differ under ties.
      ASSERT_FLOAT_EQ(got[j].second, expected[j].second)
          << "query " << q << " rank " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, BvhKnn, ::testing::Values(1, 2, 5, 16, 100));

TEST(BvhKnn, DistancesAreSortedAscending) {
  auto pts = testing::random_points<3>(500, 1.0f, 802);
  Bvh<3> bvh(pts);
  const auto nn = bvh.nearest(Point3{{0.5f, 0.5f, 0.5f}}, 20);
  ASSERT_EQ(nn.size(), 20u);
  for (std::size_t j = 1; j < nn.size(); ++j) {
    EXPECT_LE(nn[j - 1].second, nn[j].second);
  }
}

TEST(BvhKnn, KLargerThanNReturnsAll) {
  auto pts = testing::random_points<2>(7, 1.0f, 803);
  Bvh<2> bvh(pts);
  EXPECT_EQ(bvh.nearest(pts[0], 100).size(), 7u);
}

TEST(BvhKnn, EmptyAndZeroK) {
  Bvh<2> empty(std::vector<Point2>{});
  EXPECT_TRUE(empty.nearest(Point2{{0, 0}}, 3).empty());
  auto pts = testing::random_points<2>(10, 1.0f, 804);
  Bvh<2> bvh(pts);
  EXPECT_TRUE(bvh.nearest(pts[0], 0).empty());
}

TEST(BvhKnn, SelfIsTheNearestNeighbor) {
  auto pts = testing::random_points<2>(300, 1.0f, 805);
  Bvh<2> bvh(pts);
  const auto nn = bvh.nearest(pts[42], 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].first, 42);
  EXPECT_FLOAT_EQ(nn[0].second, 0.0f);
}

// --- k-dist & eps suggestion --------------------------------------------

TEST(KDistances, MatchesBruteForce) {
  auto pts = testing::random_points<2>(300, 1.0f, 806);
  const std::int32_t minpts = 5;
  const auto dists = k_distances(pts, minpts);
  ASSERT_EQ(dists.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); i += 17) {
    const auto expected = brute_force_knn(pts, pts[i], minpts);
    EXPECT_FLOAT_EQ(dists[i], std::sqrt(expected.back().second)) << i;
  }
}

TEST(KDistances, RejectsMinptsBelowTwo) {
  auto pts = testing::random_points<2>(10, 1.0f, 807);
  EXPECT_THROW((void)k_distances(pts, 1), std::invalid_argument);
}

TEST(KDistances, SortedCurveIsDescending) {
  auto pts = data::porto_taxi_like(2000, 808);
  const auto curve = sorted_k_distances(pts, 4);
  EXPECT_TRUE(std::is_sorted(curve.begin(), curve.end(), std::greater<>()));
}

TEST(SuggestEps, ProducesTargetNoiseFraction) {
  // Clustering with the suggested eps must leave roughly the requested
  // fraction of points with sub-minpts neighborhoods.
  auto pts = testing::clustered_points<2>(4000, 5, 1.0f, 0.01f, 809);
  const std::int32_t minpts = 8;
  const double target = 0.05;
  const float eps = suggest_eps(pts, minpts, target);
  EXPECT_GT(eps, 0.0f);
  const auto c = fdbscan(pts, Parameters{eps, minpts});
  // Non-core fraction ~ target (border points can still be clustered, so
  // compare against the core deficit, with generous slack for ties).
  std::int64_t non_core = 0;
  for (auto f : c.is_core) non_core += (f == 0);
  const double fraction =
      static_cast<double>(non_core) / static_cast<double>(pts.size());
  EXPECT_NEAR(fraction, target, 0.03);
}

TEST(SuggestEps, LargerNoiseFractionMeansSmallerEps) {
  auto pts = data::road_network_like(3000, 810);
  const float tolerant = suggest_eps(pts, 5, 0.01);
  const float strict = suggest_eps(pts, 5, 0.20);
  EXPECT_GE(tolerant, strict);
}

TEST(SuggestEps, ValidatesArguments) {
  std::vector<Point2> empty;
  EXPECT_THROW((void)suggest_eps(empty, 5), std::invalid_argument);
  auto pts = testing::random_points<2>(10, 1.0f, 811);
  EXPECT_THROW((void)suggest_eps(pts, 5, 1.5), std::invalid_argument);
  EXPECT_THROW((void)suggest_eps(pts, 5, -0.1), std::invalid_argument);
}

}  // namespace
}  // namespace fdbscan
