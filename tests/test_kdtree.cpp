#include "kdtree/kdtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "test_utils.h"

namespace fdbscan {
namespace {

template <int DIM>
std::vector<std::int32_t> brute_force_range(const std::vector<Point<DIM>>& pts,
                                            const Point<DIM>& q, float eps2) {
  std::vector<std::int32_t> result;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (within(q, pts[i], eps2)) result.push_back(static_cast<std::int32_t>(i));
  }
  return result;
}

TEST(KdTree, EmptyTree) {
  std::vector<Point2> pts;
  KdTree<2> tree(pts);
  int hits = 0;
  tree.for_each_near(Point2{{0.0f, 0.0f}}, 1.0f, [&](std::int32_t) {
    ++hits;
    return KdTree<2>::TraversalControlKd::kContinue;
  });
  EXPECT_EQ(hits, 0);
}

TEST(KdTree, SinglePoint) {
  std::vector<Point2> pts{{{2.0f, 3.0f}}};
  KdTree<2> tree(pts);
  std::vector<std::int32_t> found;
  tree.for_each_near(Point2{{2.0f, 3.1f}}, 0.02f, [&](std::int32_t id) {
    found.push_back(id);
    return KdTree<2>::TraversalControlKd::kContinue;
  });
  EXPECT_EQ(found, std::vector<std::int32_t>{0});
}

TEST(KdTree, LeafBucketBoundary) {
  // Exactly kLeafSize and kLeafSize+1 points exercise the split boundary.
  for (std::int32_t n : {KdTree<2>::kLeafSize, KdTree<2>::kLeafSize + 1}) {
    auto pts = testing::random_points<2>(n, 1.0f, 21);
    KdTree<2> tree(pts);
    int hits = 0;
    tree.for_each_near(Point2{{0.5f, 0.5f}}, 10.0f, [&](std::int32_t) {
      ++hits;
      return KdTree<2>::TraversalControlKd::kContinue;
    });
    EXPECT_EQ(hits, n);
  }
}

TEST(KdTree, DuplicatePoints) {
  std::vector<Point2> pts(200, Point2{{1.0f, 1.0f}});
  KdTree<2> tree(pts);
  int hits = 0;
  tree.for_each_near(Point2{{1.0f, 1.0f}}, 0.01f, [&](std::int32_t) {
    ++hits;
    return KdTree<2>::TraversalControlKd::kContinue;
  });
  EXPECT_EQ(hits, 200);
}

TEST(KdTree, EarlyTermination) {
  auto pts = testing::random_points<2>(500, 0.1f, 9);
  KdTree<2> tree(pts);
  int hits = 0;
  tree.for_each_near(Point2{{0.05f, 0.05f}}, 1.0f, [&](std::int32_t) {
    ++hits;
    return hits >= 7 ? KdTree<2>::TraversalControlKd::kTerminate
                     : KdTree<2>::TraversalControlKd::kContinue;
  });
  EXPECT_EQ(hits, 7);
}

TEST(KdTree, BytesUsedPositive) {
  auto pts = testing::random_points<2>(100, 1.0f, 1);
  KdTree<2> tree(pts);
  EXPECT_GT(tree.bytes_used(), 0u);
}

struct KdParam {
  std::int64_t n;
  float eps;
  std::uint64_t seed;
};

class KdTreeRangeQuery : public ::testing::TestWithParam<KdParam> {};

TEST_P(KdTreeRangeQuery, MatchesBruteForce2D) {
  const auto param = GetParam();
  auto pts = testing::random_points<2>(param.n, 1.0f, param.seed);
  KdTree<2> tree(pts);
  const float eps2 = param.eps * param.eps;
  for (std::size_t q = 0; q < pts.size(); q += 11) {
    auto expected = brute_force_range(pts, pts[q], eps2);
    std::vector<std::int32_t> found;
    tree.for_each_near(pts[q], eps2, [&](std::int32_t id) {
      found.push_back(id);
      return KdTree<2>::TraversalControlKd::kContinue;
    });
    std::sort(found.begin(), found.end());
    ASSERT_EQ(found, expected) << "query " << q;
  }
}

TEST_P(KdTreeRangeQuery, MatchesBruteForce3D) {
  const auto param = GetParam();
  auto pts = testing::random_points<3>(param.n, 1.0f, param.seed + 100);
  KdTree<3> tree(pts);
  const float eps2 = param.eps * param.eps;
  for (std::size_t q = 0; q < pts.size(); q += 17) {
    auto expected = brute_force_range(pts, pts[q], eps2);
    std::vector<std::int32_t> found;
    tree.for_each_near(pts[q], eps2, [&](std::int32_t id) {
      found.push_back(id);
      return KdTree<3>::TraversalControlKd::kContinue;
    });
    std::sort(found.begin(), found.end());
    ASSERT_EQ(found, expected) << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, KdTreeRangeQuery,
                         ::testing::Values(KdParam{50, 0.2f, 31},
                                           KdParam{400, 0.1f, 32},
                                           KdParam{2000, 0.05f, 33},
                                           KdParam{1000, 3.0f, 34}));

}  // namespace
}  // namespace fdbscan
