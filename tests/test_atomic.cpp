#include "exec/atomic.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "exec/parallel.h"
#include "test_utils.h"

namespace fdbscan::exec {
namespace {

TEST(Atomic, LoadStoreRoundTrip) {
  std::int32_t x = 7;
  EXPECT_EQ(atomic_load(x), 7);
  atomic_store(x, 42);
  EXPECT_EQ(atomic_load(x), 42);
  atomic_store_relaxed(x, -5);
  EXPECT_EQ(atomic_load_relaxed(x), -5);
}

TEST(Atomic, CasSucceedsOnMatch) {
  std::int32_t x = 10;
  std::int32_t expected = 10;
  EXPECT_TRUE(atomic_cas(x, expected, 20));
  EXPECT_EQ(x, 20);
}

TEST(Atomic, CasFailsAndReportsObservedValue) {
  std::int32_t x = 10;
  std::int32_t expected = 99;
  EXPECT_FALSE(atomic_cas(x, expected, 20));
  EXPECT_EQ(expected, 10);  // updated to the observed value
  EXPECT_EQ(x, 10);         // unchanged
}

TEST(Atomic, FetchAddReturnsPrevious) {
  std::int64_t x = 100;
  EXPECT_EQ(atomic_fetch_add(x, std::int64_t{5}), 100);
  EXPECT_EQ(x, 105);
}

TEST(Atomic, FetchMinKeepsSmaller) {
  std::int32_t x = 10;
  EXPECT_EQ(atomic_fetch_min(x, 20), 10);
  EXPECT_EQ(x, 10);  // 20 is not smaller
  EXPECT_EQ(atomic_fetch_min(x, 3), 10);
  EXPECT_EQ(x, 3);
}

TEST(Atomic, FetchMaxKeepsLarger) {
  std::int32_t x = 10;
  EXPECT_EQ(atomic_fetch_max(x, 5), 10);
  EXPECT_EQ(x, 10);
  EXPECT_EQ(atomic_fetch_max(x, 30), 10);
  EXPECT_EQ(x, 30);
}

TEST(Atomic, FloatMinMax) {
  float x = 1.5f;
  atomic_fetch_min(x, 0.25f);
  EXPECT_FLOAT_EQ(x, 0.25f);
  atomic_fetch_max(x, 9.0f);
  EXPECT_FLOAT_EQ(x, 9.0f);
}

class AtomicConcurrent : public ::testing::TestWithParam<int> {};

TEST_P(AtomicConcurrent, FetchAddCountsEveryIncrement) {
  testing::ScopedThreads threads(GetParam());
  std::int64_t counter = 0;
  constexpr std::int64_t kN = 100000;
  parallel_for(kN, [&](std::int64_t) {
    atomic_fetch_add(counter, std::int64_t{1});
  });
  EXPECT_EQ(counter, kN);
}

TEST_P(AtomicConcurrent, FetchMinFindsGlobalMinimum) {
  testing::ScopedThreads threads(GetParam());
  constexpr std::int64_t kN = 50000;
  std::int32_t best = INT32_MAX;
  parallel_for(kN, [&](std::int64_t i) {
    // A scrambled sequence whose minimum is 1.
    atomic_fetch_min(best,
                     static_cast<std::int32_t>((i * 2654435761u) % kN) + 1);
  });
  EXPECT_EQ(best, 1);
}

TEST_P(AtomicConcurrent, CasClaimHasExactlyOneWinner) {
  testing::ScopedThreads threads(GetParam());
  std::int32_t slot = -1;
  std::int64_t winners = 0;
  parallel_for(1000, [&](std::int64_t i) {
    std::int32_t expected = -1;
    if (atomic_cas(slot, expected, static_cast<std::int32_t>(i))) {
      atomic_fetch_add(winners, std::int64_t{1});
    }
  });
  EXPECT_EQ(winners, 1);
  EXPECT_GE(slot, 0);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, AtomicConcurrent,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace fdbscan::exec
