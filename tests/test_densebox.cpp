#include "core/fdbscan_densebox.h"

#include <gtest/gtest.h>

#include "core/fdbscan.h"
#include "core/validate.h"
#include "dbscan_test_cases.h"
#include "test_utils.h"

namespace fdbscan {
namespace {

using testing::DbscanCase;
using testing::make_dataset;
using testing::ScopedThreads;
using testing::standard_cases;

class DenseBoxGroundTruth : public ::testing::TestWithParam<DbscanCase> {};

TEST_P(DenseBoxGroundTruth, MatchesBruteForce) {
  const auto c = GetParam();
  ScopedThreads threads(c.threads);
  const auto points = make_dataset(c);
  const Parameters params{c.eps, c.minpts};
  const auto result = fdbscan_densebox(points, params);
  const auto check = matches_ground_truth(points, params, result);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST_P(DenseBoxGroundTruth, DbscanStarMatchesBruteForce) {
  const auto c = GetParam();
  ScopedThreads threads(c.threads);
  const auto points = make_dataset(c);
  const Parameters params{c.eps, c.minpts};
  Options options;
  options.variant = Variant::kDbscanStar;
  const auto result = fdbscan_densebox(points, params, options);
  const auto check =
      matches_ground_truth(points, params, result, Variant::kDbscanStar);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST_P(DenseBoxGroundTruth, AgreesWithFdbscan) {
  // The two proposed algorithms implement the same specification; they
  // must agree up to relabeling on every input.
  const auto c = GetParam();
  ScopedThreads threads(c.threads);
  const auto points = make_dataset(c);
  const Parameters params{c.eps, c.minpts};
  const auto a = fdbscan(points, params);
  const auto b = fdbscan_densebox(points, params);
  const auto check = equivalent_clusterings(points, params, a, b);
  EXPECT_TRUE(check.ok) << check.message;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DenseBoxGroundTruth,
                         ::testing::ValuesIn(standard_cases()));

TEST(DenseBox, EmptyInput) {
  std::vector<Point2> points;
  const auto result = fdbscan_densebox(points, Parameters{0.1f, 5});
  EXPECT_TRUE(result.labels.empty());
}

TEST(DenseBox, ReportsDenseCellStatistics) {
  // All points piled into one spot: a single dense cell holding everyone.
  std::vector<Point2> points(100, Point2{{0.5f, 0.5f}});
  const auto result = fdbscan_densebox(points, Parameters{0.1f, 5});
  EXPECT_EQ(result.num_dense_cells, 1);
  EXPECT_EQ(result.points_in_dense_cells, 100);
  EXPECT_EQ(result.num_clusters, 1);
}

TEST(DenseBox, NoDenseCellsWhenSparse) {
  auto points = testing::random_points<2>(200, 100.0f, 61);
  const auto result = fdbscan_densebox(points, Parameters{0.1f, 5});
  EXPECT_EQ(result.num_dense_cells, 0);
  EXPECT_EQ(result.points_in_dense_cells, 0);
}

TEST(DenseBox, AdjacentDenseCellsMergeIntoOneCluster) {
  // Two dense blobs closer than eps must form a single cluster even
  // though they occupy different grid cells.
  std::vector<Point2> points;
  for (int i = 0; i < 50; ++i) {
    points.push_back({{0.001f * static_cast<float>(i % 7), 0.0f}});
    points.push_back(
        {{0.05f + 0.001f * static_cast<float>(i % 7), 0.0f}});
  }
  const Parameters params{0.06f, 5};
  const auto result = fdbscan_densebox(points, params);
  EXPECT_EQ(result.num_clusters, 1);
  const auto check = matches_ground_truth(points, params, result);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(DenseBox, FarApartDenseCellsStaySeparate) {
  std::vector<Point2> points;
  for (int i = 0; i < 50; ++i) {
    points.push_back({{0.001f * static_cast<float>(i % 7), 0.0f}});
    points.push_back({{5.0f + 0.001f * static_cast<float>(i % 7), 0.0f}});
  }
  const auto result = fdbscan_densebox(points, Parameters{0.06f, 5});
  EXPECT_EQ(result.num_clusters, 2);
}

TEST(DenseBox, BorderPointAttachesToDenseCellCluster) {
  // A dense cell (40 points at x=0 plus 5 bridge points at x=0.06, all
  // within one eps/sqrt(2) ~ 0.0707 cell) and a lone point at x=0.15:
  // the lone point reaches only the 5 bridge points + itself (6 < 20),
  // so it is a border point of the dense cell's cluster.
  std::vector<Point2> points(40, Point2{{0.0f, 0.0f}});
  points.insert(points.end(), 5, Point2{{0.06f, 0.0f}});
  points.push_back({{0.15f, 0.0f}});
  const Parameters params{0.1f, 20};
  const auto result = fdbscan_densebox(points, params);
  EXPECT_EQ(result.num_clusters, 1);
  EXPECT_EQ(result.num_dense_cells, 1);
  EXPECT_EQ(result.labels.back(), result.labels.front());
  EXPECT_EQ(result.is_core.back(), 0);
  const auto check = matches_ground_truth(points, params, result);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(DenseBox, ThreeDimensionalCosmologySample) {
  ScopedThreads threads(4);
  auto points = data::hacc_like(1500, 71);
  const Parameters params{0.5f, 5};
  const auto result = fdbscan_densebox(points, params);
  const auto check = matches_ground_truth(points, params, result);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(DenseBox, MemoryIsLinearInN) {
  exec::MemoryTracker small_tracker, large_tracker;
  Options options;
  auto small = testing::clustered_points<2>(1000, 4, 1.0f, 0.01f, 72);
  auto large = testing::clustered_points<2>(8000, 4, 1.0f, 0.01f, 72);
  options.memory = &small_tracker;
  (void)fdbscan_densebox(small, Parameters{0.05f, 5}, options);
  options.memory = &large_tracker;
  (void)fdbscan_densebox(large, Parameters{0.05f, 5}, options);
  const double ratio = static_cast<double>(large_tracker.peak()) /
                       static_cast<double>(small_tracker.peak());
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 12.0);
}

TEST(DenseBox, DenseFractionGrowsWithEps) {
  // §5.2's observation: larger eps -> larger cells -> more points in
  // dense cells.
  auto points = data::hacc_like(5000, 73);
  const auto small_eps = fdbscan_densebox(points, Parameters{0.2f, 5});
  const auto large_eps = fdbscan_densebox(points, Parameters{2.0f, 5});
  EXPECT_GT(large_eps.points_in_dense_cells,
            small_eps.points_in_dense_cells);
}

}  // namespace
}  // namespace fdbscan
