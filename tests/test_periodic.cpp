#include "core/fdbscan_periodic.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "core/fdbscan.h"
#include "data/generators.h"
#include "test_utils.h"

namespace fdbscan {
namespace {

template <int DIM>
Box<DIM> unit_box(float extent) {
  Box<DIM> b;
  for (int d = 0; d < DIM; ++d) {
    b.min[d] = 0.0f;
    b.max[d] = extent;
  }
  return b;
}

// Periodic-metric analogue of equivalent_clusterings: identical core and
// noise flags, bijective core partition, and border points witnessed by
// a min-image-eps-close core point of the same cluster.
template <int DIM>
::testing::AssertionResult periodic_equivalent(
    const std::vector<Point<DIM>>& points, const Parameters& params,
    const Box<DIM>& domain, const Clustering& reference,
    const Clustering& candidate) {
  const float eps2 = params.eps * params.eps;
  if (candidate.labels.size() != points.size()) {
    return ::testing::AssertionFailure() << "size mismatch";
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (reference.is_core[i] != candidate.is_core[i]) {
      return ::testing::AssertionFailure() << "core mismatch at " << i;
    }
    if ((reference.labels[i] == kNoise) != (candidate.labels[i] == kNoise)) {
      return ::testing::AssertionFailure() << "noise mismatch at " << i;
    }
  }
  std::unordered_map<std::int64_t, std::int32_t> fwd, bwd;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (reference.is_core[i] == 0) continue;
    auto [it1, fresh1] = fwd.try_emplace(reference.labels[i], candidate.labels[i]);
    if (!fresh1 && it1->second != candidate.labels[i]) {
      return ::testing::AssertionFailure() << "split cluster at core " << i;
    }
    auto [it2, fresh2] = bwd.try_emplace(candidate.labels[i], reference.labels[i]);
    if (!fresh2 && it2->second != reference.labels[i]) {
      return ::testing::AssertionFailure() << "merged clusters at core " << i;
    }
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (candidate.is_core[i] != 0 || candidate.labels[i] == kNoise) continue;
    bool witnessed = false;
    for (std::size_t j = 0; j < points.size() && !witnessed; ++j) {
      witnessed = candidate.is_core[j] != 0 &&
                  candidate.labels[j] == candidate.labels[i] &&
                  detail::periodic_squared_distance(points[i], points[j],
                                                    domain) <= eps2;
    }
    if (!witnessed) {
      return ::testing::AssertionFailure() << "unwitnessed border " << i;
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(Periodic, MinimumImageDistance) {
  const auto box = unit_box<2>(10.0f);
  Point2 a{{0.5f, 5.0f}}, b{{9.5f, 5.0f}};
  EXPECT_FLOAT_EQ(detail::periodic_squared_distance(a, b, box), 1.0f);
  EXPECT_FLOAT_EQ(squared_distance(a, b), 81.0f);  // Euclidean, for contrast
  Point2 c{{0.5f, 0.5f}}, d{{9.5f, 9.5f}};
  EXPECT_FLOAT_EQ(detail::periodic_squared_distance(c, d, box), 2.0f);
}

TEST(Periodic, ImageEnumeration) {
  const auto box = unit_box<2>(10.0f);
  int images = 0;
  detail::for_each_periodic_image(Point2{{5.0f, 5.0f}}, box, 1.0f,
                                  [&](const Point2&) { ++images; });
  EXPECT_EQ(images, 0);  // interior point: no images
  images = 0;
  detail::for_each_periodic_image(Point2{{0.5f, 5.0f}}, box, 1.0f,
                                  [&](const Point2&) { ++images; });
  EXPECT_EQ(images, 1);  // near one face
  images = 0;
  detail::for_each_periodic_image(Point2{{0.5f, 9.7f}}, box, 1.0f,
                                  [&](const Point2&) { ++images; });
  EXPECT_EQ(images, 3);  // corner: two faces + diagonal image
}

TEST(Periodic, ClusterWrappingAcrossOneFaceIsStitched) {
  // A chain hugging the x-boundary: Euclidean DBSCAN splits it in two,
  // periodic DBSCAN keeps one cluster.
  std::vector<Point2> points;
  for (int i = 0; i < 40; ++i) {
    const float x = 9.0f + 0.05f * static_cast<float>(i);  // 9.0 .. 10.95
    points.push_back({{x < 10.0f ? x : x - 10.0f, 5.0f}});
  }
  const auto box = unit_box<2>(10.0f);
  const Parameters params{0.1f, 3};
  const auto euclidean = fdbscan(points, params);
  const auto periodic = fdbscan_periodic(points, params, box);
  EXPECT_EQ(euclidean.num_clusters, 2);
  EXPECT_EQ(periodic.num_clusters, 1);
}

TEST(Periodic, CornerWrappingCluster) {
  // Points at all four corners of the box form one periodic cluster.
  std::vector<Point2> points;
  for (float dx : {0.1f, 9.9f}) {
    for (float dy : {0.1f, 9.9f}) {
      for (int i = 0; i < 5; ++i) {
        points.push_back({{dx + 0.001f * static_cast<float>(i), dy}});
      }
    }
  }
  const auto box = unit_box<2>(10.0f);
  const auto result = fdbscan_periodic(points, Parameters{0.5f, 3}, box);
  EXPECT_EQ(result.num_clusters, 1);
  EXPECT_EQ(result.num_noise(), 0);
}

struct PeriodicCase {
  std::int64_t n;
  float eps;
  std::int32_t minpts;
  int threads;
  std::uint64_t seed;
};

class PeriodicGroundTruth : public ::testing::TestWithParam<PeriodicCase> {};

TEST_P(PeriodicGroundTruth, MatchesPeriodicBruteForce) {
  const auto c = GetParam();
  testing::ScopedThreads threads(c.threads);
  // Uniform points over the whole box: plenty of boundary activity.
  auto points = testing::random_points<2>(c.n, 1.0f, c.seed);
  const auto box = unit_box<2>(1.0f);
  const Parameters params{c.eps, c.minpts};
  const auto reference = brute_force_periodic_dbscan(points, params, box);
  const auto result = fdbscan_periodic(points, params, box);
  EXPECT_TRUE(periodic_equivalent(points, params, box, reference, result));
  EXPECT_EQ(reference.num_clusters, result.num_clusters);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PeriodicGroundTruth,
    ::testing::Values(PeriodicCase{400, 0.05f, 5, 1, 1101},
                      PeriodicCase{400, 0.05f, 2, 4, 1102},
                      PeriodicCase{600, 0.03f, 4, 8, 1103},
                      PeriodicCase{500, 0.08f, 10, 4, 1104},
                      PeriodicCase{300, 0.02f, 3, 2, 1105}));

TEST(Periodic, ThreeDimensionalCosmologyBox) {
  testing::ScopedThreads threads(4);
  data::CosmologyConfig config;
  config.box_size = 64.0f * std::cbrt(3000.0f / 16e6f);
  auto points = data::hacc_like(3000, 1106, config);
  Box3 box;
  for (int d = 0; d < 3; ++d) {
    box.min[d] = 0.0f;
    box.max[d] = config.box_size;
  }
  const Parameters params{0.5f, 2};
  const auto reference = brute_force_periodic_dbscan(points, params, box);
  const auto result = fdbscan_periodic(points, params, box);
  EXPECT_TRUE(periodic_equivalent(points, params, box, reference, result));
  // Periodic FoF can only merge clusters relative to Euclidean FoF.
  const auto euclidean = fdbscan(points, params);
  EXPECT_LE(result.num_clusters, euclidean.num_clusters);
}

TEST(Periodic, RejectsBoxNarrowerThanTwoEps) {
  auto points = testing::random_points<2>(10, 1.0f, 1107);
  const auto box = unit_box<2>(1.0f);
  EXPECT_THROW(
      (void)fdbscan_periodic(points, Parameters{0.6f, 2}, box),
      std::invalid_argument);
}

TEST(Periodic, InteriorDataMatchesEuclidean) {
  // All points far from the faces: periodic == Euclidean clustering.
  auto points = testing::clustered_points<2>(500, 4, 0.4f, 0.01f, 1108);
  for (auto& p : points) {
    p[0] += 0.3f;  // keep inside [0.3, 0.7]
    p[1] += 0.3f;
  }
  const auto box = unit_box<2>(1.0f);
  const Parameters params{0.02f, 5};
  const auto periodic = fdbscan_periodic(points, params, box);
  const auto euclidean = fdbscan(points, params);
  EXPECT_EQ(periodic.num_clusters, euclidean.num_clusters);
  EXPECT_EQ(periodic.is_core, euclidean.is_core);
}

}  // namespace
}  // namespace fdbscan
