// Cooperative cancellation (exec/cancel.h): token semantics, the
// chunk-granularity checks inside parallel_for/reduce/scan, the
// top-level-only throw contract, and the engine-level guarantee that a
// cancelled run leaves the engine reusable with bit-identical results.
#include "exec/cancel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/validate.h"
#include "exec/atomic.h"
#include "exec/parallel.h"
#include "exec/profile.h"
#include "test_utils.h"

namespace fdbscan::exec {
namespace {

TEST(CancelToken, StartsUnraisedAndRaisesOnce) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kNone);
  EXPECT_TRUE(token.request_cancel());
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kCancelled);
  // Second raise (any reason) is a no-op: the first reason wins.
  EXPECT_FALSE(token.request_cancel(CancelReason::kDeadlineExceeded));
  EXPECT_EQ(token.reason(), CancelReason::kCancelled);
}

TEST(CancelToken, FirstReasonWinsForDeadline) {
  CancelToken token;
  EXPECT_TRUE(token.request_cancel(CancelReason::kDeadlineExceeded));
  EXPECT_FALSE(token.request_cancel(CancelReason::kCancelled));
  EXPECT_EQ(token.reason(), CancelReason::kDeadlineExceeded);
}

TEST(CancelToken, ResetRearms) {
  CancelToken token;
  token.request_cancel();
  token.reset();
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.request_cancel(CancelReason::kDeadlineExceeded));
  EXPECT_EQ(token.reason(), CancelReason::kDeadlineExceeded);
}

TEST(CancelToken, ResetAdvancesTheGeneration) {
  CancelToken token;
  EXPECT_EQ(token.generation(), 0u);
  token.reset();
  EXPECT_EQ(token.generation(), 1u);
  token.request_cancel();
  token.reset();  // clears the reason AND bumps the generation
  EXPECT_EQ(token.generation(), 2u);
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, ConditionalRaiseIsInertAcrossAReset) {
  // The watchdog pattern (service/service.h): capture the generation at
  // registration; a reset() before the deadline fires must turn the
  // raise into a no-op on the token's next user.
  CancelToken token;
  const std::uint32_t stale = token.generation();
  token.reset();
  EXPECT_FALSE(token.request_cancel_if(stale, CancelReason::kDeadlineExceeded));
  EXPECT_FALSE(token.cancelled());
  // With the current generation it fires normally...
  EXPECT_TRUE(token.request_cancel_if(token.generation(),
                                      CancelReason::kDeadlineExceeded));
  EXPECT_EQ(token.reason(), CancelReason::kDeadlineExceeded);
  // ...and never overrides a reason that is already set.
  EXPECT_FALSE(token.request_cancel_if(token.generation(),
                                       CancelReason::kCancelled));
  EXPECT_EQ(token.reason(), CancelReason::kDeadlineExceeded);
}

TEST(CancelScope, InstallsAndRestoresNested) {
  EXPECT_EQ(active_cancel_token(), nullptr);
  CancelToken outer, inner;
  {
    CancelScope a(outer);
    EXPECT_EQ(active_cancel_token(), &outer);
    {
      CancelScope b(inner);
      EXPECT_EQ(active_cancel_token(), &inner);
    }
    EXPECT_EQ(active_cancel_token(), &outer);
  }
  EXPECT_EQ(active_cancel_token(), nullptr);
}

TEST(CancelScope, ThrowIfCancelledNeedsARaisedToken) {
  EXPECT_NO_THROW(throw_if_cancelled());  // no token installed
  CancelToken token;
  CancelScope scope(token);
  EXPECT_NO_THROW(throw_if_cancelled());  // installed but not raised
  token.request_cancel(CancelReason::kDeadlineExceeded);
  try {
    throw_if_cancelled();
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::kDeadlineExceeded);
  }
}

class CancelWithThreads : public ::testing::TestWithParam<int> {
 protected:
  testing::ScopedThreads threads_{GetParam()};
};

TEST_P(CancelWithThreads, UncancelledTokenDoesNotPerturbResults) {
  constexpr std::int64_t kN = 40001;
  auto sum_under = [&](bool with_scope) {
    CancelToken token;
    std::optional<CancelScope> scope;
    if (with_scope) scope.emplace(token);
    return parallel_reduce(
        kN, 0.0, [](std::int64_t i) { return 1.0 / (1.0 + static_cast<double>(i)); },
        [](double a, double b) { return a + b; });
  };
  // Bit-identical: the token polls must not change chunking or merge order.
  EXPECT_EQ(sum_under(false), sum_under(true));
}

TEST_P(CancelWithThreads, PreCancelledForRunsNothingAndThrows) {
  CancelToken token;
  token.request_cancel();
  CancelScope scope(token);
  std::int64_t visited = 0;
  EXPECT_THROW(
      parallel_for(100000, [&](std::int64_t) {
        atomic_fetch_add(visited, std::int64_t{1});
      }),
      CancelledError);
  EXPECT_EQ(visited, 0);
}

TEST_P(CancelWithThreads, CancelFromInsideTheFunctorStopsWithinChunks) {
  constexpr std::int64_t kN = 1 << 20;
  CancelToken token;
  CancelScope scope(token);
  std::int64_t visited = 0;
  try {
    parallel_for(kN, [&](std::int64_t) {
      token.request_cancel();
      atomic_fetch_add(visited, std::int64_t{1});
    });
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::kCancelled);
  }
  // Every participant finishes at most the chunk it was executing when
  // the token was raised, so nearly all of the index space is skipped.
  EXPECT_GT(visited, 0);
  EXPECT_LT(visited, kN / 2);
}

TEST_P(CancelWithThreads, ReduceCancelThrows) {
  constexpr std::int64_t kN = 1 << 20;
  CancelToken token;
  CancelScope scope(token);
  EXPECT_THROW(
      (void)parallel_reduce(
          kN, std::int64_t{0},
          [&](std::int64_t i) {
            token.request_cancel();
            return i;
          },
          [](std::int64_t a, std::int64_t b) { return a + b; }),
      CancelledError);
}

TEST_P(CancelWithThreads, NestedLaunchUnwindsOnlyAtTopLevel) {
  constexpr std::int64_t kN = 1 << 18;
  CancelToken token;
  CancelScope scope(token);
  std::int64_t inner_iterations = 0;
  EXPECT_THROW(
      parallel_for(kN, [&](std::int64_t) {
        // The nested launch observes the raised token and stops claiming
        // chunks — it must NOT throw from a worker (that would
        // std::terminate). Only the outer dispatch throws.
        token.request_cancel();
        parallel_for(1024, [&](std::int64_t) {
          atomic_fetch_add(inner_iterations, std::int64_t{1});
        });
      }),
      CancelledError);
}

TEST_P(CancelWithThreads, ScanSerialFastPathChecksToken) {
  // n < 4096 takes exclusive_scan's serial path, which bypasses the
  // pool; it must still honor a pre-raised token without touching data.
  CancelToken token;
  token.request_cancel(CancelReason::kDeadlineExceeded);
  CancelScope scope(token);
  std::vector<std::int64_t> data(100, 7);
  try {
    (void)exclusive_scan(data.data(), static_cast<std::int64_t>(data.size()));
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::kDeadlineExceeded);
  }
  for (std::int64_t v : data) EXPECT_EQ(v, 7);  // untouched
}

TEST_P(CancelWithThreads, ScanParallelPathChecksToken) {
  CancelToken token;
  token.request_cancel();
  CancelScope scope(token);
  std::vector<std::int64_t> data(100000, 1);
  EXPECT_THROW(
      (void)exclusive_scan(data.data(), static_cast<std::int64_t>(data.size())),
      CancelledError);
}

TEST_P(CancelWithThreads, PoolStaysUsableAfterCancellation) {
  CancelToken token;
  {
    CancelScope scope(token);
    token.request_cancel();
    EXPECT_THROW(parallel_for(1 << 20, [](std::int64_t) {}), CancelledError);
  }
  // Out of scope: the next launch runs to completion.
  std::int64_t visited = 0;
  parallel_for(12345, [&](std::int64_t) {
    atomic_fetch_add(visited, std::int64_t{1});
  });
  EXPECT_EQ(visited, 12345);
}

// --- Engine-level cancellation safety ------------------------------------

TEST_P(CancelWithThreads, PreCancelledEngineRunLaunchesNoKernels) {
  const auto points = testing::clustered_points<2>(2000, 5, 1.0f, 0.02f, 11);
  Engine<2> engine(points);
  CancelToken token;
  token.request_cancel();
  CancelScope scope(token);
  const KernelProfileSnapshot before = kernel_profile();
  EXPECT_THROW((void)engine.run({0.05f, 10}), CancelledError);
  const KernelProfileSnapshot after = kernel_profile();
  EXPECT_EQ(after.launches, before.launches);  // begin_run fails first
  EXPECT_FALSE(engine.index_built());
}

TEST_P(CancelWithThreads, EngineBitIdenticalAfterMidRunCancel) {
  const std::int64_t n = 30000;
  const auto points = testing::clustered_points<2>(n, 8, 1.0f, 0.02f, 23);
  const Parameters params{0.03f, 10};

  Engine<2> reference(points);
  const Clustering expected = reference.run(params);

  Engine<2> engine(points);
  CancelToken token;
  // Raise the token from a second thread once kernels start making
  // progress, so the cancellation lands mid-run (if the run wins the
  // race and completes, the test still verifies the reuse contract).
  std::atomic<bool> stop_watcher{false};
  const std::int64_t chunk_baseline = kernel_profile().chunks;
  std::thread watcher([&] {
    while (!stop_watcher.load(std::memory_order_relaxed)) {
      if (kernel_profile().chunks > chunk_baseline + 4) {
        token.request_cancel();
        return;
      }
      std::this_thread::yield();
    }
  });
  bool cancelled = false;
  {
    CancelScope scope(token);
    try {
      (void)engine.run(params);  // run may win the race and complete
    } catch (const CancelledError&) {
      cancelled = true;
    }
  }
  stop_watcher.store(true, std::memory_order_relaxed);
  watcher.join();

  // The same engine, uncancelled, must now produce a correct clustering:
  // the union-find/compact scratch is rewritten from scratch each run and
  // the caches only ever publish fully-built indexes. Parallel labelings
  // may differ in the legitimate border-point sense (see
  // test_thread_invariance.cpp); serially the output is bit-identical.
  const Clustering fresh = engine.run(params);
  const auto check = equivalent_clusterings(points, params, expected, fresh);
  EXPECT_TRUE(check.ok) << check.message;
  EXPECT_EQ(fresh.is_core, expected.is_core);
  EXPECT_EQ(fresh.num_clusters, expected.num_clusters);
  if (GetParam() == 1) {
    EXPECT_EQ(fresh.labels, expected.labels);
  }
  // And the engine keeps amortizing afterwards.
  const Clustering again = engine.run(params);
  EXPECT_EQ(again.num_clusters, expected.num_clusters);
  EXPECT_EQ(again.timings.index_rebuilds, 0);
  (void)cancelled;  // either race outcome is a valid test
}

TEST_P(CancelWithThreads, DenseboxEngineReusableAfterCancel) {
  const auto points = testing::clustered_points<2>(20000, 6, 1.0f, 0.01f, 5);
  const Parameters params{0.02f, 10};

  Engine<2> reference(points);
  const Clustering expected = reference.run_densebox(params);

  Engine<2> engine(points);
  CancelToken token;
  std::atomic<bool> stop_watcher{false};
  const std::int64_t chunk_baseline = kernel_profile().chunks;
  std::thread watcher([&] {
    while (!stop_watcher.load(std::memory_order_relaxed)) {
      if (kernel_profile().chunks > chunk_baseline + 4) {
        token.request_cancel();
        return;
      }
      std::this_thread::yield();
    }
  });
  {
    CancelScope scope(token);
    try {
      (void)engine.run_densebox(params);
    } catch (const CancelledError&) {
    }
  }
  stop_watcher.store(true, std::memory_order_relaxed);
  watcher.join();

  const Clustering fresh = engine.run_densebox(params);
  const auto check = equivalent_clusterings(points, params, expected, fresh);
  EXPECT_TRUE(check.ok) << check.message;
  EXPECT_EQ(fresh.is_core, expected.is_core);
  EXPECT_EQ(fresh.num_clusters, expected.num_clusters);
  if (GetParam() == 1) {
    EXPECT_EQ(fresh.labels, expected.labels);
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, CancelWithThreads,
                         ::testing::Values(1, 2, 8));

}  // namespace
}  // namespace fdbscan::exec
