#include "baselines/hybrid_gowanlock.h"

#include <gtest/gtest.h>

#include "core/validate.h"
#include "dbscan_test_cases.h"
#include "test_utils.h"

namespace fdbscan {
namespace {

using testing::DbscanCase;
using testing::make_dataset;
using testing::ScopedThreads;
using testing::standard_cases;

class HybridGroundTruth : public ::testing::TestWithParam<DbscanCase> {};

TEST_P(HybridGroundTruth, MatchesBruteForce) {
  const auto c = GetParam();
  ScopedThreads threads(c.threads);
  const auto points = make_dataset(c);
  const Parameters params{c.eps, c.minpts};
  const auto result = baselines::hybrid_gowanlock(points, params);
  const auto check = matches_ground_truth(points, params, result);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST_P(HybridGroundTruth, TinyBatchesGiveIdenticalResults) {
  // A 256-entry device buffer forces many materialize/consume round
  // trips; the clustering must not depend on the batch boundaries.
  const auto c = GetParam();
  ScopedThreads threads(c.threads);
  const auto points = make_dataset(c);
  const Parameters params{c.eps, c.minpts};
  baselines::HybridConfig config;
  config.batch_capacity = 256;
  const auto result = baselines::hybrid_gowanlock(points, params, config);
  const auto check = matches_ground_truth(points, params, result);
  EXPECT_TRUE(check.ok) << check.message;
}

INSTANTIATE_TEST_SUITE_P(Sweep, HybridGroundTruth,
                         ::testing::ValuesIn(standard_cases()));

TEST(Hybrid, OversizedNeighborhoodStillProgresses) {
  // One point's neighbor list alone exceeding the buffer must not hang:
  // it becomes a solo over-capacity batch.
  std::vector<Point2> points(300, Point2{{0.0f, 0.0f}});
  baselines::HybridConfig config;
  config.batch_capacity = 16;
  const Parameters params{0.1f, 5};
  const auto result = baselines::hybrid_gowanlock(points, params, config);
  EXPECT_EQ(result.num_clusters, 1);
  const auto check = matches_ground_truth(points, params, result);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(Hybrid, ChargesTheDeviceBuffer) {
  auto points = testing::clustered_points<2>(2000, 4, 1.0f, 0.01f, 901);
  exec::MemoryTracker tracker;
  baselines::HybridConfig config;
  config.batch_capacity = 1 << 16;
  const auto result = baselines::hybrid_gowanlock(
      points, Parameters{0.02f, 5}, config, &tracker);
  EXPECT_GE(result.peak_memory_bytes,
            static_cast<std::size_t>(config.batch_capacity) *
                sizeof(std::int32_t));
}

TEST(Hybrid, DbscanStarVariant) {
  auto points = testing::clustered_points<2>(600, 4, 1.0f, 0.012f, 902);
  const Parameters params{0.02f, 8};
  const auto result = baselines::hybrid_gowanlock(
      points, params, {}, nullptr, Variant::kDbscanStar);
  const auto check =
      matches_ground_truth(points, params, result, Variant::kDbscanStar);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(Hybrid, EmptyInput) {
  std::vector<Point2> points;
  EXPECT_TRUE(baselines::hybrid_gowanlock(points, Parameters{0.1f, 5})
                  .labels.empty());
}

}  // namespace
}  // namespace fdbscan
