// Task-graph runtime (exec/graph/, DESIGN.md §15): cycle rejection
// through the typed-error path, scheduler edge ordering, node bodies
// that launch kernels (the §7 serialization rule makes this
// deadlock-free), mid-graph cancellation leaving a warm engine
// reusable, and the tentpole equivalence gate — graph execution is
// bit-identical to fork-join (labels, core flags, work counters) at
// 1/2/8 workers on the single-engine, densebox and sharded paths.
#include "exec/graph/task_graph.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/status.h"
#include "exec/cancel.h"
#include "exec/parallel.h"
#include "shard/sharded_engine.h"
#include "test_utils.h"

namespace fdbscan::exec::graph {
namespace {

using fdbscan::testing::ScopedThreads;

// Four well-separated Gaussian blobs plus isolated stragglers. Blob
// centers sit 0.5 apart with sigma 0.015, so at eps = 0.05 no point can
// be within eps of core points of two different clusters — the border
// assignment (the one schedule-dependent choice DBSCAN permits) is
// unique, which is what lets these tests demand *bit-identical* labels
// from racing executions rather than equivalence up to border flips.
std::vector<Point<2>> separated_blobs(std::int64_t per_blob,
                                      std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> gauss(0.0f, 0.015f);
  const float centers[4][2] = {
      {0.25f, 0.25f}, {0.75f, 0.25f}, {0.25f, 0.75f}, {0.75f, 0.75f}};
  std::vector<Point<2>> points;
  points.reserve(static_cast<std::size_t>(4 * per_blob + 3));
  for (const auto& c : centers) {
    for (std::int64_t i = 0; i < per_blob; ++i) {
      points.push_back(Point<2>{{c[0] + gauss(rng), c[1] + gauss(rng)}});
    }
  }
  points.push_back(Point<2>{{0.50f, 0.02f}});
  points.push_back(Point<2>{{0.02f, 0.50f}});
  points.push_back(Point<2>{{0.98f, 0.50f}});
  return points;
}

constexpr Parameters kBlobParams{0.05f, 5};

void expect_bit_identical(const Clustering& graph, const Clustering& fork,
                          const char* what) {
  EXPECT_EQ(graph.labels, fork.labels) << what;
  EXPECT_EQ(graph.is_core, fork.is_core) << what;
  EXPECT_EQ(graph.num_clusters, fork.num_clusters) << what;
  EXPECT_EQ(graph.distance_computations, fork.distance_computations) << what;
  EXPECT_EQ(graph.index_nodes_visited, fork.index_nodes_visited) << what;
  EXPECT_EQ(graph.num_dense_cells, fork.num_dense_cells) << what;
  EXPECT_EQ(graph.points_in_dense_cells, fork.points_in_dense_cells) << what;
}

TEST(GraphValidate, TwoNodeCycleIsTypedError) {
  TaskGraph g;
  const NodeId a = g.add_node("test/a", [] {});
  const NodeId b = g.add_node("test/b", [] {});
  g.add_edge(a, b);
  g.add_edge(b, a);
  const auto error = g.validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, ErrorCode::kGraphCycle);

  GraphScheduler sched(2);
  const Expected<GraphScheduler::Handle> handle = sched.submit(std::move(g));
  ASSERT_FALSE(handle.has_value());
  EXPECT_EQ(handle.error().code, ErrorCode::kGraphCycle);
}

TEST(GraphValidate, SelfEdgeIsACycleAndDagsPass) {
  TaskGraph g;
  const NodeId a = g.add_node("test/self", [] {});
  g.add_edge(a, a);
  const auto error = g.validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, ErrorCode::kGraphCycle);

  TaskGraph dag;
  const NodeId x = dag.add_node("test/x", [] {});
  const NodeId y = dag.add_node("test/y", [] {});
  dag.add_edge(x, y);
  EXPECT_FALSE(dag.validate().has_value());
}

TEST(GraphScheduler_, DiamondRespectsEdgesAndReportsStats) {
  GraphScheduler sched(4);
  std::atomic<int> stamp{0};
  std::atomic<int> at_a{-1}, at_b{-1}, at_c{-1}, at_d{-1};
  TaskGraph g;
  const NodeId a = g.add_node("test/a", [&] { at_a = stamp++; });
  const NodeId b = g.add_node("test/b", [&] { at_b = stamp++; });
  const NodeId c = g.add_node("test/c", [&] { at_c = stamp++; });
  const NodeId d = g.add_node("test/d", [&] { at_d = stamp++; });
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  auto handle = sched.submit(std::move(g));
  ASSERT_TRUE(handle.has_value());
  const GraphStats stats = handle->wait();
  EXPECT_EQ(stats.nodes_run, 4);
  EXPECT_EQ(stats.edges, 4);
  EXPECT_LT(at_a.load(), at_b.load());
  EXPECT_LT(at_a.load(), at_c.load());
  EXPECT_LT(at_b.load(), at_d.load());
  EXPECT_LT(at_c.load(), at_d.load());
}

TEST(GraphScheduler_, EmptyGraphCompletesInline) {
  GraphScheduler sched(2);
  bool completed = false;
  auto handle = sched.submit(
      TaskGraph{}, [&](const GraphStats& s, std::exception_ptr error) {
        completed = (s.nodes_run == 0 && error == nullptr);
      });
  ASSERT_TRUE(handle.has_value());
  EXPECT_TRUE(completed);  // empty graphs complete inside submit()
  const GraphStats stats = handle->wait();
  EXPECT_EQ(stats.nodes_run, 0);
}

TEST(GraphScheduler_, TotalsAdvanceAcrossARun) {
  const SchedulerTotals before = totals();
  GraphScheduler sched(2);
  TaskGraph g;
  const NodeId a = g.add_node("test/t0", [] {});
  g.add_edge(a, g.add_node("test/t1", [] {}));
  auto handle = sched.submit(std::move(g));
  ASSERT_TRUE(handle.has_value());
  (void)handle->wait();
  const SchedulerTotals after = totals();
  EXPECT_EQ(after.graphs, before.graphs + 1);
  EXPECT_EQ(after.nodes_run, before.nodes_run + 2);
  EXPECT_EQ(after.edges, before.edges + 1);
}

// DESIGN §7: a top-level launch from a runner thread serializes on the
// pool launch mutex like any other dispatcher; concurrent node bodies
// all launching kernels therefore make progress instead of deadlocking.
TEST(GraphScheduler_, NodeBodiesLaunchingKernelsDoNotDeadlock) {
  ScopedThreads threads(4);
  GraphScheduler sched(4);
  constexpr int kNodes = 8;
  constexpr std::int64_t kPerNode = 20000;
  std::atomic<std::int64_t> total{0};
  TaskGraph g;
  for (int i = 0; i < kNodes; ++i) {
    g.add_node("test/kernel-node", [&total] {
      std::atomic<std::int64_t> local{0};
      parallel_for("test/graph-node-kernel", kPerNode, [&](std::int64_t) {
        local.fetch_add(1, std::memory_order_relaxed);
      });
      total.fetch_add(local.load(), std::memory_order_relaxed);
    });
  }
  auto handle = sched.submit(std::move(g));
  ASSERT_TRUE(handle.has_value());
  const GraphStats stats = handle->wait();
  EXPECT_EQ(stats.nodes_run, kNodes);
  EXPECT_EQ(total.load(), kNodes * kPerNode);
}

// run() on a runner thread executes inline: a node body running a
// nested graph must not block waiting for its own runner slot.
TEST(GraphScheduler_, NestedGraphInsideANodeRunsInline) {
  std::atomic<std::int64_t> inner_sum{0};
  TaskGraph outer;
  outer.add_node("test/outer", [&] {
    TaskGraph inner;
    inner.add_node("test/inner", [&] {
      inner_sum += parallel_reduce(
          "test/nested-kernel", 1000, std::int64_t{0},
          [](std::int64_t i) { return i; },
          [](std::int64_t a, std::int64_t b) { return a + b; });
    });
    const auto done = shared_scheduler().run(std::move(inner));
    ASSERT_TRUE(done.has_value());
  });
  const auto done = shared_scheduler().run(std::move(outer));
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(inner_sum.load(), 1000 * 999 / 2);
}

TEST(GraphCancel, MidGraphCancellationLeavesEngineWarmAndReusable) {
  const auto points = separated_blobs(200, 901);
  Engine<2> engine(points);
  const Clustering reference = engine.run(kBlobParams);
  const std::int64_t builds_after_warmup = engine.counters().index_builds;

  CancelToken token;
  {
    CancelScope scope(token);
    StagedRun staged = engine.stage(kBlobParams);
    TaskGraph g;
    // The cancel node raises the token before any staged phase runs;
    // the scheduler polls it per node, so every phase body is skipped
    // and the engine is abandoned mid-run — the reuse property under
    // test is that the next run() recovers from exactly that state.
    const NodeId cancel =
        g.add_node("test/cancel", [&token] { token.request_cancel(); });
    g.add_chain(std::move(staged.phases), cancel);
    auto handle = shared_scheduler().submit(std::move(g));
    ASSERT_TRUE(handle.has_value());
    EXPECT_THROW(handle->wait(), CancelledError);
  }

  const Clustering again = engine.run(kBlobParams);
  expect_bit_identical(again, reference, "post-cancel rerun");
  // Warm: the abandoned staged run burned no index rebuild.
  EXPECT_EQ(engine.counters().index_builds, builds_after_warmup);
}

// The tentpole acceptance gate: staged phases run through the graph
// scheduler produce bit-identical output to the serial fork-join loop
// at every worker count, for both single-engine algorithms.
TEST(GraphEquivalence, SingleEngineFdbscanBitIdenticalAcrossWorkers) {
  const auto points = separated_blobs(200, 902);
  for (int workers : {1, 2, 8}) {
    ScopedThreads threads(workers);
    Engine<2> fork_engine(points);
    const Clustering fork = fork_engine.run(kBlobParams);

    Engine<2> graph_engine(points);
    StagedRun staged = graph_engine.stage(kBlobParams);
    TaskGraph g;
    g.add_chain(std::move(staged.phases));
    const auto done = shared_scheduler().run(std::move(g));
    ASSERT_TRUE(done.has_value());
    expect_bit_identical(*staged.result, fork,
                         workers == 1   ? "fdbscan workers=1"
                         : workers == 2 ? "fdbscan workers=2"
                                        : "fdbscan workers=8");
    EXPECT_EQ(fork.num_clusters, 4);
  }
}

TEST(GraphEquivalence, SingleEngineDenseboxBitIdenticalAcrossWorkers) {
  const auto points = separated_blobs(200, 903);
  for (int workers : {1, 2, 8}) {
    ScopedThreads threads(workers);
    Engine<2> fork_engine(points);
    const Clustering fork = fork_engine.run_densebox(kBlobParams);

    Engine<2> graph_engine(points);
    StagedRun staged = graph_engine.stage_densebox(kBlobParams);
    TaskGraph g;
    g.add_chain(std::move(staged.phases));
    const auto done = shared_scheduler().run(std::move(g));
    ASSERT_TRUE(done.has_value());
    expect_bit_identical(*staged.result, fork,
                         workers == 1   ? "densebox workers=1"
                         : workers == 2 ? "densebox workers=2"
                                        : "densebox workers=8");
  }
}

// Sharded: the per-shard node pipeline (index[r] -> pre[r] -> main[r]
// with the cross-shard core-flag edges) against the three fork-join
// barrier waves. Work counters use striped accumulators folded in slot
// order and the dataset admits a unique partition, so everything —
// including the sharded telemetry — must match exactly.
TEST(GraphEquivalence, ShardedBitIdenticalAcrossWorkers) {
  const auto points = separated_blobs(250, 904);
  for (std::int32_t shards : {2, 3}) {
    shard::ShardedEngine<2> engine(points, shards);
    for (int workers : {1, 2, 8}) {
      ScopedThreads threads(workers);
      const shard::ShardedResult fork = engine.run(kBlobParams, {}, false);
      const shard::ShardedResult graph = engine.run(kBlobParams, {}, true);
      expect_bit_identical(graph.clustering, fork.clustering, "sharded");
      EXPECT_EQ(graph.clustering.num_shards, fork.clustering.num_shards);
      EXPECT_EQ(graph.clustering.shard_ghosts, fork.clustering.shard_ghosts);
      EXPECT_EQ(graph.clustering.shard_cross_edges,
                fork.clustering.shard_cross_edges);
      EXPECT_EQ(graph.clustering.shard_halo_bytes,
                fork.clustering.shard_halo_bytes);
      ASSERT_EQ(graph.shards.size(), fork.shards.size());
      for (std::size_t s = 0; s < fork.shards.size(); ++s) {
        EXPECT_EQ(graph.shards[s].owned, fork.shards[s].owned);
        EXPECT_EQ(graph.shards[s].ghosts, fork.shards[s].ghosts);
        EXPECT_EQ(graph.shards[s].cross_edges, fork.shards[s].cross_edges);
      }
    }
  }
}

// FoF fast path (minpts=2 skips the preprocessing wave): the graph mode
// drops the pre[r] nodes entirely, so shards pipeline index->main.
TEST(GraphEquivalence, ShardedFofPathBitIdentical) {
  const auto points = separated_blobs(150, 905);
  const Parameters fof{0.05f, 2};
  shard::ShardedEngine<2> engine(points, 3);
  for (int workers : {1, 8}) {
    ScopedThreads threads(workers);
    const shard::ShardedResult fork = engine.run(fof, {}, false);
    const shard::ShardedResult graph = engine.run(fof, {}, true);
    expect_bit_identical(graph.clustering, fork.clustering, "sharded fof");
  }
}

TEST(GraphKnob, SetEnabledOverridesAndRestores) {
  const bool original = enabled();
  set_enabled(false);
  EXPECT_FALSE(enabled());
  set_enabled(true);
  EXPECT_TRUE(enabled());
  set_enabled(original);
}

}  // namespace
}  // namespace fdbscan::exec::graph
