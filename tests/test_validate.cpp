// Tests for the validation machinery itself: the checker must accept
// every legitimately different output (relabelings, alternative border
// assignments) and reject every corruption (this is what all other
// correctness tests lean on).
#include "core/validate.h"

#include <gtest/gtest.h>

#include "test_utils.h"

namespace fdbscan {
namespace {

// Fixture: two three-core clusters with one border point each plus
// noise, built by hand so every role is known (eps = 0.1, minpts = 3;
// |N| includes the point itself).
//   cluster A: cores 0,1,2 at x = 0.00, 0.04, 0.08; border 3 at x = 0.16
//   cluster B: cores 4,5,6 at x = 1.00, 1.04, 1.08; border 7 at x = 0.92
//   noise: 8 at x = 3.0
// (Spacings of 0.08 < eps keep every in-cluster distance clear of the
// eps boundary, where float rounding would flip the predicate.)
class ValidateFixture : public ::testing::Test {
 protected:
  std::vector<Point2> points_{{{0.00f, 0.0f}}, {{0.04f, 0.0f}},
                              {{0.08f, 0.0f}}, {{0.16f, 0.0f}},
                              {{1.00f, 0.0f}}, {{1.04f, 0.0f}},
                              {{1.08f, 0.0f}}, {{0.92f, 0.0f}},
                              {{3.00f, 0.0f}}};
  Parameters params_{0.1f, 3};
  Clustering reference_ = brute_force_dbscan(points_, params_);
};

TEST_F(ValidateFixture, BruteForceFindsTheExpectedStructure) {
  EXPECT_EQ(reference_.num_clusters, 2);
  EXPECT_EQ(reference_.is_core,
            (std::vector<std::uint8_t>{1, 1, 1, 0, 1, 1, 1, 0, 0}));
  EXPECT_EQ(reference_.labels[8], kNoise);
  EXPECT_NE(reference_.labels[0], reference_.labels[4]);
  EXPECT_EQ(reference_.labels[3], reference_.labels[0]);  // border of A
  EXPECT_EQ(reference_.labels[7], reference_.labels[4]);  // border of B
}

TEST_F(ValidateFixture, AcceptsItself) {
  EXPECT_TRUE(
      equivalent_clusterings(points_, params_, reference_, reference_).ok);
}

TEST_F(ValidateFixture, AcceptsRelabeledClusters) {
  Clustering permuted = reference_;
  for (auto& l : permuted.labels) {
    if (l != kNoise) l = 1 - l;  // swap cluster ids 0 and 1
  }
  EXPECT_TRUE(
      equivalent_clusterings(points_, params_, reference_, permuted).ok);
}

TEST_F(ValidateFixture, RejectsFlippedCoreFlag) {
  Clustering bad = reference_;
  bad.is_core[3] = 1;  // border of A promoted to core
  const auto check = equivalent_clusterings(points_, params_, reference_, bad);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.message.find("core flag"), std::string::npos);
}

TEST_F(ValidateFixture, RejectsNoiseTurnedCluster) {
  Clustering bad = reference_;
  bad.labels[8] = 0;  // the noise point adopted by cluster 0
  const auto check = equivalent_clusterings(points_, params_, reference_, bad);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.message.find("noise"), std::string::npos);
}

TEST_F(ValidateFixture, RejectsMergedClusters) {
  Clustering bad = reference_;
  for (auto& l : bad.labels) {
    if (l == 1) l = 0;  // bridge the two clusters
  }
  bad.num_clusters = 1;
  EXPECT_FALSE(equivalent_clusterings(points_, params_, reference_, bad).ok);
}

TEST_F(ValidateFixture, RejectsSplitCluster) {
  Clustering bad = reference_;
  bad.labels[1] = 2;  // core point 1 exiled to its own cluster
  bad.num_clusters = 3;
  EXPECT_FALSE(equivalent_clusterings(points_, params_, reference_, bad).ok);
}

TEST_F(ValidateFixture, RejectsBorderInFarAwayCluster) {
  Clustering bad = reference_;
  bad.labels[3] = bad.labels[4];  // border of A teleported into B
  const auto check = equivalent_clusterings(points_, params_, reference_, bad);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.message.find("border"), std::string::npos);
}

TEST_F(ValidateFixture, RejectsSizeMismatch) {
  Clustering bad = reference_;
  bad.labels.pop_back();
  EXPECT_FALSE(equivalent_clusterings(points_, params_, reference_, bad).ok);
}

TEST(Validate, AcceptsAlternativeBorderAssignment) {
  // A border point reachable from two clusters may go either way
  // (eps = 0.13, minpts = 4, |N| includes self):
  //   cluster A: cores at x = 0.00, 0.04, 0.08, 0.12
  //   border at x = 0.24 (within eps of A's 0.12 and B's 0.36 only)
  //   cluster B: cores at x = 0.36, 0.40, 0.44, 0.48
  std::vector<Point2> points{{{0.00f, 0.0f}}, {{0.04f, 0.0f}},
                             {{0.08f, 0.0f}}, {{0.12f, 0.0f}},
                             {{0.24f, 0.0f}}, {{0.36f, 0.0f}},
                             {{0.40f, 0.0f}}, {{0.44f, 0.0f}},
                             {{0.48f, 0.0f}}};
  Parameters params{0.13f, 4};
  const auto reference = brute_force_dbscan(points, params);
  ASSERT_EQ(reference.num_clusters, 2);
  ASSERT_EQ(reference.is_core[4], 0);
  ASSERT_NE(reference.labels[4], kNoise);
  Clustering alternative = reference;
  alternative.labels[4] = reference.labels[4] == 0 ? 1 : 0;
  EXPECT_TRUE(
      equivalent_clusterings(points, params, reference, alternative).ok);
}

TEST(Validate, DbscanStarRejectsClusteredBorder) {
  std::vector<Point2> points{{{0.0f, 0.0f}},
                             {{0.05f, 0.0f}},
                             {{0.12f, 0.0f}}};
  Parameters params{0.1f, 3};
  const auto reference =
      brute_force_dbscan(points, params, Variant::kDbscanStar);
  EXPECT_EQ(reference.labels[2], kNoise);
  Clustering bad = reference;
  bad.labels[2] = 0;  // DBSCAN* must not cluster borders
  EXPECT_FALSE(equivalent_clusterings(points, params, reference, bad,
                                      Variant::kDbscanStar)
                   .ok);
}

TEST(Validate, BruteForceRecoversNoiseIntoBorder) {
  // Algorithm 1 line 6 first marks a point as noise, then line 17 can
  // recruit it into a cluster discovered later. Put the border point
  // *before* its cluster in index order to hit that path.
  std::vector<Point2> points{{{0.12f, 0.0f}},  // border, visited first
                             {{0.0f, 0.0f}},  {{0.05f, 0.0f}},
                             {{0.02f, 0.04f}}};
  Parameters params{0.1f, 3};
  const auto c = brute_force_dbscan(points, params);
  EXPECT_EQ(c.num_clusters, 1);
  EXPECT_NE(c.labels[0], kNoise);
  EXPECT_EQ(c.is_core[0], 0);
}

TEST(Validate, MatchesGroundTruthConvenience) {
  auto points = testing::clustered_points<2>(300, 3, 1.0f, 0.01f, 91);
  Parameters params{0.02f, 5};
  const auto c = brute_force_dbscan(points, params);
  EXPECT_TRUE(matches_ground_truth(points, params, c).ok);
}

}  // namespace
}  // namespace fdbscan
