#include "exec/per_thread.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "exec/parallel.h"
#include "test_utils.h"

namespace fdbscan::exec {
namespace {

class PerThreadWithThreads : public ::testing::TestWithParam<int> {
 protected:
  testing::ScopedThreads threads_{GetParam()};
};

TEST_P(PerThreadWithThreads, CounterSumsExactlyOnceAcrossKernel) {
  constexpr std::int64_t kN = 54321;
  PerThread<std::int64_t> tally;
  parallel_for(kN, [&](std::int64_t i) { tally.local() += i; });
  EXPECT_EQ(tally.combine(), kN * (kN - 1) / 2);
}

TEST_P(PerThreadWithThreads, CombineWithCustomOp) {
  constexpr std::int64_t kN = 10000;
  PerThread<std::int64_t> tally;
  parallel_for(kN, [&](std::int64_t) { ++tally.local(); });
  const std::int64_t total = tally.combine(
      std::int64_t{0}, [](std::int64_t acc, std::int64_t s) { return acc + s; });
  EXPECT_EQ(total, kN);
}

TEST_P(PerThreadWithThreads, StructsAccumulateViaPlusEquals) {
  struct Stats {
    std::int64_t a = 0;
    std::int64_t b = 0;
    Stats& operator+=(const Stats& o) {
      a += o.a;
      b += o.b;
      return *this;
    }
  };
  constexpr std::int64_t kN = 4096;
  PerThread<Stats> work;
  parallel_for(kN, [&](std::int64_t i) {
    auto& s = work.local();
    ++s.a;
    s.b += i;
  });
  const Stats total = work.combine();
  EXPECT_EQ(total.a, kN);
  EXPECT_EQ(total.b, kN * (kN - 1) / 2);
}

TEST_P(PerThreadWithThreads, VectorSlotsMergeInSlotOrder) {
  constexpr std::int64_t kN = 2000;
  PerThread<std::vector<std::int64_t>> sink;
  parallel_for(kN, [&](std::int64_t i) { sink.local().push_back(i); });
  std::vector<std::int64_t> merged;
  for (int k = 0; k < sink.num_slots(); ++k) {
    const auto& part = sink.slot(k);
    merged.insert(merged.end(), part.begin(), part.end());
  }
  ASSERT_EQ(static_cast<std::int64_t>(merged.size()), kN);
  std::int64_t sum = 0;
  for (std::int64_t v : merged) sum += v;
  EXPECT_EQ(sum, kN * (kN - 1) / 2);
}

TEST_P(PerThreadWithThreads, WorksOutsideParallelRegion) {
  PerThread<std::int64_t> tally;
  tally.local() += 5;  // dispatching thread owns slot 0
  EXPECT_EQ(tally.combine(), 5);
  EXPECT_EQ(tally.slot(0), 5);
}

TEST_P(PerThreadWithThreads, NestedLaunchAccumulatesIntoOwnerSlot) {
  // Nested kernels run inline on the launching thread, so a nested
  // accumulation lands in that thread's slot and nothing is lost.
  constexpr std::int64_t kOuter = 100;
  constexpr std::int64_t kInner = 50;
  PerThread<std::int64_t> tally;
  parallel_for(kOuter, [&](std::int64_t) {
    parallel_for(kInner, [&](std::int64_t) { ++tally.local(); });
  });
  EXPECT_EQ(tally.combine(), kOuter * kInner);
}

TEST_P(PerThreadWithThreads, InitialValuePropagatesToEverySlot) {
  PerThread<std::int64_t> tally(7);
  EXPECT_EQ(tally.num_slots(), num_threads());
  for (int k = 0; k < tally.num_slots(); ++k) {
    EXPECT_EQ(tally.slot(k), 7);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, PerThreadWithThreads,
                         ::testing::Values(1, 2, 3, 8));

TEST(PerThread, SlotsAreCacheLineAligned) {
  PerThread<std::int64_t> tally;
  if (tally.num_slots() < 2) {
    testing::ScopedThreads threads(4);
    PerThread<std::int64_t> wide;
    ASSERT_GE(wide.num_slots(), 2);
    const auto a = reinterpret_cast<std::uintptr_t>(&wide.slot(0));
    const auto b = reinterpret_cast<std::uintptr_t>(&wide.slot(1));
    EXPECT_GE(b - a, 64u);
    EXPECT_EQ(a % 64, 0u);
    return;
  }
  const auto a = reinterpret_cast<std::uintptr_t>(&tally.slot(0));
  const auto b = reinterpret_cast<std::uintptr_t>(&tally.slot(1));
  EXPECT_GE(b - a, 64u);
  EXPECT_EQ(a % 64, 0u);
}

}  // namespace
}  // namespace fdbscan::exec
