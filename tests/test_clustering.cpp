#include "core/clustering.h"

#include <gtest/gtest.h>

#include <vector>

#include "test_utils.h"
#include "unionfind/union_find.h"

namespace fdbscan {
namespace {

TEST(FinalizeLabels, NoiseGetsMinusOne) {
  // 4 points: {0,1} a cluster rooted at 0; 2 a claimed border; 3 noise.
  std::vector<std::int32_t> labels{0, 0, 0, 3};
  std::vector<std::uint8_t> is_core{1, 1, 0, 0};
  auto c = detail::finalize_labels(std::move(labels), std::move(is_core));
  EXPECT_EQ(c.num_clusters, 1);
  EXPECT_EQ(c.labels, (std::vector<std::int32_t>{0, 0, 0, kNoise}));
  EXPECT_EQ(c.num_noise(), 1);
}

TEST(FinalizeLabels, ClustersAreDenselyRenumbered) {
  // Roots at 1 and 4 (flattened), interleaved with noise.
  std::vector<std::int32_t> labels{1, 1, 2, 4, 4, 4};
  std::vector<std::uint8_t> is_core{1, 1, 0, 0, 1, 1};
  auto c = detail::finalize_labels(std::move(labels), std::move(is_core));
  EXPECT_EQ(c.num_clusters, 2);
  EXPECT_EQ(c.labels[0], 0);
  EXPECT_EQ(c.labels[1], 0);
  EXPECT_EQ(c.labels[2], kNoise);  // non-core self-labelled = noise
  EXPECT_EQ(c.labels[3], 1);       // border claimed into root-4 cluster
  EXPECT_EQ(c.labels[4], 1);
  EXPECT_EQ(c.labels[5], 1);
}

TEST(FinalizeLabels, SingletonCoreClusterSurvives) {
  // A core point whose borders were all stolen forms its own cluster.
  std::vector<std::int32_t> labels{0};
  std::vector<std::uint8_t> is_core{1};
  auto c = detail::finalize_labels(std::move(labels), std::move(is_core));
  EXPECT_EQ(c.num_clusters, 1);
  EXPECT_EQ(c.labels[0], 0);
}

TEST(FinalizeLabels, AllNoise) {
  std::vector<std::int32_t> labels{0, 1, 2};
  std::vector<std::uint8_t> is_core{0, 0, 0};
  auto c = detail::finalize_labels(std::move(labels), std::move(is_core));
  EXPECT_EQ(c.num_clusters, 0);
  EXPECT_EQ(c.num_noise(), 3);
}

TEST(ResolvePair, CoreCoreMerges) {
  std::vector<std::int32_t> labels{0, 1, 2};
  std::vector<std::uint8_t> is_core{1, 1, 0};
  UnionFindView uf(labels.data(), 3);
  detail::resolve_pair(uf, is_core, 0, 1, Variant::kDbscan);
  EXPECT_EQ(uf.representative(0), uf.representative(1));
}

TEST(ResolvePair, CoreBorderClaims) {
  std::vector<std::int32_t> labels{0, 1, 2};
  std::vector<std::uint8_t> is_core{1, 0, 1};
  UnionFindView uf(labels.data(), 3);
  detail::resolve_pair(uf, is_core, 0, 1, Variant::kDbscan);
  EXPECT_EQ(labels[1], 0);
  // A second cluster cannot steal the border point...
  detail::resolve_pair(uf, is_core, 2, 1, Variant::kDbscan);
  EXPECT_EQ(uf.representative(1), 0);
  // ...and the symmetric orientation works too.
  std::vector<std::int32_t> labels2{0, 1, 2};
  UnionFindView uf2(labels2.data(), 3);
  detail::resolve_pair(uf2, is_core, 1, 0, Variant::kDbscan);  // x border, y core
  EXPECT_EQ(labels2[1], 0);
}

TEST(ResolvePair, NonCorePairIsIgnored) {
  std::vector<std::int32_t> labels{0, 1};
  std::vector<std::uint8_t> is_core{0, 0};
  UnionFindView uf(labels.data(), 2);
  detail::resolve_pair(uf, is_core, 0, 1, Variant::kDbscan);
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[1], 1);
}

TEST(ResolvePair, DbscanStarNeverClaimsBorders) {
  std::vector<std::int32_t> labels{0, 1};
  std::vector<std::uint8_t> is_core{1, 0};
  UnionFindView uf(labels.data(), 2);
  detail::resolve_pair(uf, is_core, 0, 1, Variant::kDbscanStar);
  EXPECT_EQ(labels[1], 1);  // untouched -> becomes noise
}

TEST(ResolvePair, BridgingIsImpossible) {
  // The §3.2 hazard: border point 2 sits between clusters {0} and {1}.
  // Whatever the interleaving, the clusters must remain distinct.
  std::vector<std::int32_t> labels{0, 1, 2};
  std::vector<std::uint8_t> is_core{1, 1, 0};
  UnionFindView uf(labels.data(), 3);
  detail::resolve_pair(uf, is_core, 0, 2, Variant::kDbscan);
  detail::resolve_pair(uf, is_core, 1, 2, Variant::kDbscan);
  EXPECT_NE(uf.representative(0), uf.representative(1));
}

TEST(Clustering, NumNoiseCountsMinusOnes) {
  Clustering c;
  c.labels = {0, kNoise, 1, kNoise, kNoise};
  EXPECT_EQ(c.num_noise(), 3);
}

TEST(PhaseTimings, TotalSumsAllPhases) {
  PhaseTimings t;
  t.index_construction = 1.0;
  t.preprocessing = 0.5;
  t.main = 2.0;
  t.finalization = 0.25;
  EXPECT_DOUBLE_EQ(t.total(), 3.75);
}

}  // namespace
}  // namespace fdbscan
