#include "core/emst.h"

#include <gtest/gtest.h>

#include <limits>

#include "core/fdbscan.h"
#include "core/validate.h"
#include "data/generators.h"
#include "test_utils.h"

namespace fdbscan {
namespace {

// Prim's O(n^2) MST — the reference. The MST *weight* is unique for any
// graph (even with ties), so weights are the comparison target.
template <int DIM>
double prim_mst_weight(const std::vector<Point<DIM>>& pts,
                       std::int32_t mutual_k = 1) {
  const auto n = static_cast<std::int32_t>(pts.size());
  if (n <= 1) return 0.0;
  std::vector<float> core2;
  if (mutual_k > 1) {
    core2 = k_distances(pts, mutual_k);
    for (auto& c : core2) c = c * c;
  }
  auto metric2 = [&](std::int32_t a, std::int32_t b) {
    float m = squared_distance(pts[static_cast<std::size_t>(a)],
                               pts[static_cast<std::size_t>(b)]);
    if (!core2.empty()) {
      m = std::max({m, core2[static_cast<std::size_t>(a)],
                    core2[static_cast<std::size_t>(b)]});
    }
    return m;
  };
  std::vector<float> best(pts.size(), std::numeric_limits<float>::max());
  std::vector<std::uint8_t> in_tree(pts.size(), 0);
  best[0] = 0.0f;
  double total = 0.0;
  for (std::int32_t step = 0; step < n; ++step) {
    std::int32_t next = -1;
    for (std::int32_t i = 0; i < n; ++i) {
      if (in_tree[static_cast<std::size_t>(i)] == 0 &&
          (next < 0 || best[static_cast<std::size_t>(i)] <
                           best[static_cast<std::size_t>(next)])) {
        next = i;
      }
    }
    in_tree[static_cast<std::size_t>(next)] = 1;
    total += std::sqrt(best[static_cast<std::size_t>(next)]);
    for (std::int32_t i = 0; i < n; ++i) {
      if (in_tree[static_cast<std::size_t>(i)] == 0) {
        best[static_cast<std::size_t>(i)] =
            std::min(best[static_cast<std::size_t>(i)], metric2(next, i));
      }
    }
  }
  return total;
}

struct EmstCase {
  std::int64_t n;
  int threads;
  std::uint64_t seed;
  bool clustered;
};

class EmstGroundTruth : public ::testing::TestWithParam<EmstCase> {};

TEST_P(EmstGroundTruth, WeightMatchesPrim2D) {
  const auto c = GetParam();
  testing::ScopedThreads threads(c.threads);
  auto pts = c.clustered
                 ? testing::clustered_points<2>(c.n, 5, 1.0f, 0.01f, c.seed)
                 : testing::random_points<2>(c.n, 1.0f, c.seed);
  const auto mst = euclidean_mst(pts);
  ASSERT_EQ(mst.size(), pts.size() - 1);
  EXPECT_NEAR(mst_weight(mst), prim_mst_weight(pts),
              1e-4 * prim_mst_weight(pts) + 1e-6);
}

TEST_P(EmstGroundTruth, WeightMatchesPrim3D) {
  const auto c = GetParam();
  testing::ScopedThreads threads(c.threads);
  auto pts = testing::random_points<3>(c.n, 1.0f, c.seed + 50);
  const auto mst = euclidean_mst(pts);
  ASSERT_EQ(mst.size(), pts.size() - 1);
  EXPECT_NEAR(mst_weight(mst), prim_mst_weight(pts),
              1e-4 * prim_mst_weight(pts) + 1e-6);
}

TEST_P(EmstGroundTruth, MutualReachabilityWeightMatchesPrim) {
  const auto c = GetParam();
  testing::ScopedThreads threads(c.threads);
  auto pts = testing::clustered_points<2>(c.n, 4, 1.0f, 0.02f, c.seed + 99);
  MstConfig config;
  config.mutual_reachability_k = 5;
  const auto mst = euclidean_mst(pts, config);
  ASSERT_EQ(mst.size(), pts.size() - 1);
  const double expected = prim_mst_weight(pts, 5);
  EXPECT_NEAR(mst_weight(mst), expected, 1e-4 * expected + 1e-6);
}

TEST_P(EmstGroundTruth, TreeSpansAllPoints) {
  const auto c = GetParam();
  testing::ScopedThreads threads(c.threads);
  auto pts = testing::random_points<2>(c.n, 1.0f, c.seed + 7);
  const auto mst = euclidean_mst(pts);
  SequentialDSU dsu(static_cast<std::int32_t>(pts.size()));
  std::int32_t merges = 0;
  for (const auto& e : mst) merges += dsu.unite(e.a, e.b);
  EXPECT_EQ(merges, static_cast<std::int32_t>(pts.size()) - 1)
      << "edges must form a spanning tree (acyclic and connected)";
}

INSTANTIATE_TEST_SUITE_P(Sweep, EmstGroundTruth,
                         ::testing::Values(EmstCase{2, 1, 1, false},
                                           EmstCase{50, 1, 2, false},
                                           EmstCase{300, 4, 3, false},
                                           EmstCase{300, 8, 4, true},
                                           EmstCase{1000, 8, 5, true}));

TEST(Emst, EmptyAndSingle) {
  EXPECT_TRUE(euclidean_mst(std::vector<Point2>{}).empty());
  EXPECT_TRUE(euclidean_mst(std::vector<Point2>{{{1.0f, 2.0f}}}).empty());
}

TEST(Emst, DuplicatePoints) {
  std::vector<Point2> pts(100, Point2{{0.5f, 0.5f}});
  const auto mst = euclidean_mst(pts);
  ASSERT_EQ(mst.size(), 99u);
  EXPECT_DOUBLE_EQ(mst_weight(mst), 0.0);
}

TEST(Emst, WeightIsDeterministicAcrossThreadCounts) {
  auto pts = testing::clustered_points<2>(800, 5, 1.0f, 0.01f, 11);
  testing::ScopedThreads one(1);
  const double serial = mst_weight(euclidean_mst(pts));
  testing::ScopedThreads many(8);
  const double parallel_weight = mst_weight(euclidean_mst(pts));
  EXPECT_NEAR(serial, parallel_weight, 1e-4 * serial + 1e-9);
}

// --- The HDBSCAN defining property: dendrogram cut == DBSCAN* -----------

struct CutCase {
  float eps;
  std::int32_t k;
};

class HdbscanCut : public ::testing::TestWithParam<CutCase> {};

TEST_P(HdbscanCut, EqualsDbscanStar) {
  const auto c = GetParam();
  testing::ScopedThreads threads(4);
  auto pts = testing::clustered_points<2>(700, 5, 1.0f, 0.015f, 21);
  MstConfig config;
  config.mutual_reachability_k = c.k;
  const auto mst = euclidean_mst(pts, config);
  const auto cut = hdbscan_cut(pts, mst, c.k, c.eps);

  Options options;
  options.variant = Variant::kDbscanStar;
  const Parameters params{c.eps, c.k};
  const auto star = fdbscan(pts, params, options);

  const auto check =
      equivalent_clusterings(pts, params, star, cut, Variant::kDbscanStar);
  EXPECT_TRUE(check.ok) << check.message;
}

INSTANTIATE_TEST_SUITE_P(EpsKGrid, HdbscanCut,
                         ::testing::Values(CutCase{0.01f, 4},
                                           CutCase{0.02f, 4},
                                           CutCase{0.02f, 8},
                                           CutCase{0.05f, 8},
                                           CutCase{0.005f, 3},
                                           CutCase{0.04f, 16}));

TEST(HdbscanCut, SingleMstServesEveryCut) {
  // The hierarchy pitch: one MST answers all eps values; cluster counts
  // are monotone along the cut only in the merge sense (components only
  // merge as eps grows), and noise shrinks monotonically.
  auto pts = testing::clustered_points<2>(600, 4, 1.0f, 0.02f, 31);
  MstConfig config;
  config.mutual_reachability_k = 5;
  const auto mst = euclidean_mst(pts, config);
  std::int64_t previous_noise = std::numeric_limits<std::int64_t>::max();
  for (float eps : {0.005f, 0.01f, 0.02f, 0.05f, 0.1f}) {
    const auto cut = hdbscan_cut(pts, mst, 5, eps);
    EXPECT_LE(cut.num_noise(), previous_noise) << "eps=" << eps;
    previous_noise = cut.num_noise();
  }
}

}  // namespace
}  // namespace fdbscan
