// Tests for the named-kernel trace subsystem (src/exec/trace.h,
// DESIGN.md §8): off-by-default capture, Chrome-trace JSON round-trip,
// nested-launch attribution, thread-count invariance of the captured
// kernel names, and the per-kernel aggregates that feed bench telemetry.
//
// Every tracing test enables capture itself via trace_start(""):
// gtest_discover_tests runs each TEST in its own process, so no state
// carries over — and when the whole binary runs in one process,
// OffByDefault is registered first, before anyone turns capture on.
#include "exec/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/emst.h"
#include "core/fdbscan.h"
#include "core/fdbscan_densebox.h"
#include "core/fdbscan_periodic.h"
#include "exec/memory_tracker.h"
#include "exec/parallel.h"
#include "test_utils.h"

namespace fdbscan {
namespace {

using testing::ScopedThreads;

// --- A minimal parser for the flat event lines trace_flush() emits -------

struct EventLine {
  char ph = 0;  // B / E / C / M
  int tid = -1;
  double ts = -1.0;
  std::string name;
  std::string cat;
};

std::string extract_string(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t from = at + needle.size();
  return line.substr(from, line.find('"', from) - from);
}

double extract_number(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return -1.0;
  return std::atof(line.c_str() + at + needle.size());
}

std::vector<EventLine> parse_events(const std::string& json) {
  std::vector<EventLine> events;
  std::istringstream in(json);
  std::string line;
  while (std::getline(in, line)) {
    const std::string ph = extract_string(line, "ph");
    if (ph.size() != 1) continue;
    EventLine ev;
    ev.ph = ph[0];
    ev.tid = static_cast<int>(extract_number(line, "tid"));
    ev.ts = extract_number(line, "ts");
    ev.name = extract_string(line, "name");
    ev.cat = extract_string(line, "cat");
    events.push_back(std::move(ev));
  }
  return events;
}

std::vector<Point<2>> small_cloud(std::int64_t n = 500) {
  return testing::clustered_points<2>(n, 5, 10.0f, 0.2f, 42);
}

// --- Tests ---------------------------------------------------------------

TEST(TraceTest, OffByDefault) {
  // The suite must run without FDBSCAN_TRACE in the environment; the
  // first trace_enabled() call latches the off state.
  ::unsetenv("FDBSCAN_TRACE");
  EXPECT_FALSE(exec::trace_enabled());

  std::vector<int> out(1024, 0);
  exec::parallel_for("test/off-kernel", 1024,
                     [&](std::int64_t i) { out[std::size_t(i)] = 1; });
  EXPECT_EQ(exec::trace_event_count(), 0);
  EXPECT_EQ(exec::trace_dropped_count(), 0);
  EXPECT_TRUE(exec::trace_kernel_aggregates(exec::TraceCursor{}).empty());
  EXPECT_FALSE(exec::trace_enabled());
}

TEST(TraceTest, RoundTripJson) {
  exec::trace_start("");  // capture on, no output file
  exec::trace_reset();
  ASSERT_TRUE(exec::trace_enabled());

  const auto points = small_cloud();
  Parameters params{0.5f, 3};
  {
    Clustering a = fdbscan(points, params);
    Clustering b = fdbscan_densebox(points, params);
    Box<2> domain;
    for (int d = 0; d < 2; ++d) {
      domain.min[d] = 0.0f;
      domain.max[d] = 10.0f;
    }
    Clustering c = fdbscan_periodic(points, params, domain);
    const auto mst = euclidean_mst(points);
    ASSERT_GT(a.num_clusters, 0);
    ASSERT_EQ(a.num_clusters, b.num_clusters);
    ASSERT_FALSE(mst.empty());
    (void)c;
  }
  ASSERT_GT(exec::trace_event_count(), 0);
  EXPECT_EQ(exec::trace_dropped_count(), 0);

  const std::string json = exec::trace_flush();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);

  const auto events = parse_events(json);
  ASSERT_FALSE(events.empty());

  // Balanced B/E pairs, stack-matched names, monotone timestamps — all
  // per tid (tools/trace_summary.py --validate applies the same rules).
  std::map<int, std::vector<std::string>> stacks;
  std::map<int, double> last_ts;
  std::set<std::string> kernel_names;
  std::set<std::string> phase_names;
  for (const EventLine& ev : events) {
    if (ev.ph != 'B' && ev.ph != 'E') continue;
    auto it = last_ts.find(ev.tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ev.ts, it->second)
          << "timestamps go backwards on tid " << ev.tid;
    }
    last_ts[ev.tid] = ev.ts;
    if (ev.ph == 'B') {
      stacks[ev.tid].push_back(ev.name);
      if (ev.cat == "kernel") kernel_names.insert(ev.name);
      if (ev.cat == "phase") phase_names.insert(ev.name);
    } else {
      ASSERT_FALSE(stacks[ev.tid].empty())
          << "E " << ev.name << " with empty stack on tid " << ev.tid;
      EXPECT_EQ(stacks[ev.tid].back(), ev.name);
      stacks[ev.tid].pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed slices on tid " << tid;
  }

  // Every src/core/ algorithm exercised above must appear by name.
  for (const char* name :
       {"fdbscan/pre/core-count", "fdbscan/main/traverse-union",
        "densebox/index/cell-boxes", "densebox/main/traverse-union",
        "periodic/main/traverse-union", "emst/round/nearest",
        "finalize/relabel", "bvh/build/morton-codes",
        "union-find/flatten"}) {
    EXPECT_TRUE(kernel_names.count(name)) << "missing kernel " << name;
  }
  for (const char* name : {"fdbscan/index", "fdbscan/main",
                           "densebox/pre", "periodic/finalize"}) {
    EXPECT_TRUE(phase_names.count(name)) << "missing phase span " << name;
  }
  // The whole launch surface is labeled: nothing records as <unnamed>.
  EXPECT_EQ(kernel_names.count(exec::kUnnamedKernel), 0u);
}

TEST(TraceTest, NestedLaunchAttribution) {
  exec::trace_start("");
  const exec::TraceCursor cursor = exec::trace_cursor();

  constexpr std::int64_t kOuter = 4;
  std::vector<std::int64_t> sums(kOuter, 0);
  exec::parallel_for("test/nested-outer", kOuter, [&](std::int64_t i) {
    // Nested launches execute inline on the worker thread; the trace
    // must attribute them to the inner kernel's name on that worker's
    // track.
    sums[std::size_t(i)] = exec::parallel_sum<std::int64_t>(
        "test/nested-inner", 256, [](std::int64_t j) { return j; });
  });
  for (std::int64_t s : sums) EXPECT_EQ(s, 256 * 255 / 2);

  const auto aggs = exec::trace_kernel_aggregates(cursor);
  const auto find = [&](const std::string& name) {
    return std::find_if(aggs.begin(), aggs.end(),
                        [&](const auto& a) { return a.name == name; });
  };
  const auto outer = find("test/nested-outer");
  const auto inner = find("test/nested-inner");
  ASSERT_NE(outer, aggs.end());
  ASSERT_NE(inner, aggs.end());
  EXPECT_EQ(outer->count, 1);
  // One inline launch per outer iteration, each executing its own chunks.
  EXPECT_EQ(inner->count, kOuter);
  EXPECT_GE(inner->chunks, kOuter);
  EXPECT_GE(inner->workers, 1);
  EXPECT_GT(inner->total_ms, 0.0);
}

TEST(TraceTest, AggregatesRespectCursor) {
  exec::trace_start("");
  exec::parallel_for("test/before-cursor", 64, [](std::int64_t) {});
  const exec::TraceCursor cursor = exec::trace_cursor();
  exec::parallel_for("test/after-cursor", 64, [](std::int64_t) {});

  const auto aggs = exec::trace_kernel_aggregates(cursor);
  const auto has = [&](const std::string& name) {
    return std::any_of(aggs.begin(), aggs.end(),
                       [&](const auto& a) { return a.name == name; });
  };
  EXPECT_TRUE(has("test/after-cursor"));
  EXPECT_FALSE(has("test/before-cursor"));
}

TEST(TraceTest, ThreadCountInvariantKernelNames) {
  exec::trace_start("");
  const auto points = small_cloud(300);
  Parameters params{0.5f, 4};

  std::vector<std::set<std::string>> name_sets;
  for (int threads : {1, 2, 8}) {
    ScopedThreads scoped(threads);
    const exec::TraceCursor cursor = exec::trace_cursor();
    Clustering result = fdbscan(points, params);
    ASSERT_GT(result.num_clusters, 0);
    std::set<std::string> names;
    for (const auto& a : exec::trace_kernel_aggregates(cursor)) {
      names.insert(a.name);
    }
    name_sets.push_back(std::move(names));
  }
  // The set of kernels an algorithm launches is a property of the
  // algorithm, not of the worker count (inline vs. pooled execution must
  // not change the labels).
  EXPECT_EQ(name_sets[0], name_sets[1]);
  EXPECT_EQ(name_sets[1], name_sets[2]);
  EXPECT_TRUE(name_sets[0].count("fdbscan/main/traverse-union"));
}

TEST(TraceTest, MemoryTrackerCounterSamples) {
  exec::trace_start("");
  const std::int64_t before = exec::trace_event_count();
  exec::MemoryTracker tracker;
  tracker.charge(1 << 20);
  tracker.release(1 << 20);
  EXPECT_EQ(exec::trace_event_count(), before + 2);
  const std::string json = exec::trace_flush();
  EXPECT_NE(json.find("\"device_memory\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

TEST(TraceTest, SingleThreadImbalanceDegenerateCase) {
  // The no-work sentinel: a phase with no recorded parallel work reports
  // imbalance 0.0, not 1.0 (DESIGN.md §7).
  EXPECT_EQ(exec::KernelPhaseProfile{}.imbalance(), 0.0);

  // A single-thread run reports workers == 1 and imbalance == 1.0 — the
  // degenerate case the workers field disambiguates: 1.0 on one worker
  // is not balance, it is all work on one thread.
  ScopedThreads scoped(1);
  Clustering result = fdbscan(small_cloud(), Parameters{0.5f, 3});
  const auto& main = result.timings.main_profile;
  ASSERT_GT(main.launches, 0);
  EXPECT_EQ(main.workers, 1);
  EXPECT_DOUBLE_EQ(main.imbalance(), 1.0);
}

}  // namespace
}  // namespace fdbscan
