#include "grid/uniform_grid_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "test_utils.h"

namespace fdbscan {
namespace {

template <int DIM>
std::vector<std::int32_t> brute_force_range(const std::vector<Point<DIM>>& pts,
                                            const Point<DIM>& q, float eps2) {
  std::vector<std::int32_t> result;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (within(q, pts[i], eps2)) result.push_back(static_cast<std::int32_t>(i));
  }
  return result;
}

TEST(UniformGridIndex, IncludesSelf) {
  auto pts = testing::random_points<2>(100, 1.0f, 1);
  UniformGridIndex<2> index(pts, 0.05f);
  std::vector<std::int32_t> out;
  index.neighbors(pts[10], out);
  EXPECT_NE(std::find(out.begin(), out.end(), 10), out.end());
}

TEST(UniformGridIndex, SinglePoint) {
  std::vector<Point2> pts{{{0.3f, 0.4f}}};
  UniformGridIndex<2> index(pts, 0.1f);
  std::vector<std::int32_t> out;
  index.neighbors(pts[0], out);
  EXPECT_EQ(out, std::vector<std::int32_t>{0});
}

TEST(UniformGridIndex, BytesUsedPositive) {
  auto pts = testing::random_points<2>(100, 1.0f, 3);
  UniformGridIndex<2> index(pts, 0.05f);
  EXPECT_GT(index.bytes_used(), 0u);
}

struct GridIndexParam {
  std::int64_t n;
  float eps;
  std::uint64_t seed;
};

class UniformGridIndexQuery : public ::testing::TestWithParam<GridIndexParam> {};

TEST_P(UniformGridIndexQuery, MatchesBruteForce2D) {
  const auto param = GetParam();
  auto pts = testing::random_points<2>(param.n, 1.0f, param.seed);
  UniformGridIndex<2> index(pts, param.eps);
  const float eps2 = param.eps * param.eps;
  std::vector<std::int32_t> out;
  for (std::size_t q = 0; q < pts.size(); q += 9) {
    index.neighbors(pts[q], out);
    std::sort(out.begin(), out.end());
    ASSERT_EQ(out, brute_force_range(pts, pts[q], eps2)) << "query " << q;
  }
}

TEST_P(UniformGridIndexQuery, MatchesBruteForce3D) {
  const auto param = GetParam();
  auto pts = testing::random_points<3>(param.n, 1.0f, param.seed + 7);
  UniformGridIndex<3> index(pts, param.eps);
  const float eps2 = param.eps * param.eps;
  std::vector<std::int32_t> out;
  for (std::size_t q = 0; q < pts.size(); q += 13) {
    index.neighbors(pts[q], out);
    std::sort(out.begin(), out.end());
    ASSERT_EQ(out, brute_force_range(pts, pts[q], eps2)) << "query " << q;
  }
}

TEST_P(UniformGridIndexQuery, BoundaryQueriesStayInGrid) {
  // Queries at the domain corners must not step outside the cell grid.
  const auto param = GetParam();
  auto pts = testing::random_points<2>(param.n, 1.0f, param.seed + 11);
  UniformGridIndex<2> index(pts, param.eps);
  const float eps2 = param.eps * param.eps;
  std::vector<std::int32_t> out;
  for (Point2 corner : {Point2{{0.0f, 0.0f}}, Point2{{1.0f, 1.0f}},
                        Point2{{0.0f, 1.0f}}, Point2{{1.0f, 0.0f}}}) {
    index.neighbors(corner, out);
    std::sort(out.begin(), out.end());
    EXPECT_EQ(out, brute_force_range(pts, corner, eps2));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, UniformGridIndexQuery,
                         ::testing::Values(GridIndexParam{64, 0.2f, 41},
                                           GridIndexParam{500, 0.07f, 42},
                                           GridIndexParam{2000, 0.03f, 43},
                                           GridIndexParam{300, 1.5f, 44}));

}  // namespace
}  // namespace fdbscan
