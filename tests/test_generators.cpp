#include "data/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>

#include "data/io.h"
#include "geometry/box.h"
#include "grid/dense_grid.h"
#include "test_utils.h"

namespace fdbscan::data {
namespace {

TEST(Generators, DeterministicInSeed) {
  EXPECT_EQ(ngsim_like(500, 1), ngsim_like(500, 1));
  EXPECT_NE(ngsim_like(500, 1), ngsim_like(500, 2));
  EXPECT_EQ(porto_taxi_like(500, 1), porto_taxi_like(500, 1));
  EXPECT_EQ(road_network_like(500, 1), road_network_like(500, 1));
  EXPECT_EQ(hacc_like(500, 1), hacc_like(500, 1));
}

TEST(Generators, ProduceRequestedSize) {
  EXPECT_EQ(ngsim_like(1234, 3).size(), 1234u);
  EXPECT_EQ(porto_taxi_like(1234, 3).size(), 1234u);
  EXPECT_EQ(road_network_like(1234, 3).size(), 1234u);
  EXPECT_EQ(hacc_like(1234, 3).size(), 1234u);
  EXPECT_EQ(uniform2(99, 1.0f, 3).size(), 99u);
  EXPECT_EQ(uniform3(99, 1.0f, 3).size(), 99u);
  EXPECT_EQ(gaussian_mixture2(99, 5, 1.0f, 0.01f, 3).size(), 99u);
}

TEST(Generators, HaccStaysInsidePeriodicBox) {
  CosmologyConfig config;
  config.box_size = 32.0f;
  auto pts = hacc_like(5000, 5, config);
  for (const auto& p : pts) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_GE(p[d], 0.0f);
      EXPECT_LT(p[d], config.box_size + 1e-3f);
    }
  }
}

TEST(Generators, NgsimIsDenserThanUniform) {
  // The NGSIM regime: nearly every point lives in a dense cell at the
  // paper's parameters (>95%, §5.1).
  auto pts = ngsim_like(16384, 7);
  DenseGrid<2> grid(pts, 0.005f, 50);
  const double fraction = static_cast<double>(grid.points_in_dense_cells()) /
                          static_cast<double>(pts.size());
  EXPECT_GT(fraction, 0.95);
}

TEST(Generators, RoadNetworkIsDenseAtPaperParameters) {
  auto pts = road_network_like(16384, 8);
  DenseGrid<2> grid(pts, 0.08f, 100);
  const double fraction = static_cast<double>(grid.points_in_dense_cells()) /
                          static_cast<double>(pts.size());
  EXPECT_GT(fraction, 0.95);
}

TEST(Generators, PortoHasDenseCenterAndSparseOutskirts) {
  auto pts = porto_taxi_like(10000, 9);
  int center = 0, fringe = 0;
  for (const auto& p : pts) {
    const float dx = p[0] - 0.5f, dy = p[1] - 0.5f;
    const float r2 = dx * dx + dy * dy;
    if (r2 < 0.01f) ++center;
    if (r2 > 0.16f) ++fringe;
  }
  EXPECT_GT(center, fringe);
}

TEST(Generators, UniformCoversTheDomain) {
  auto pts = uniform2(10000, 2.0f, 10);
  const auto b = bounds_of(pts.data(), pts.size());
  EXPECT_LT(b.min[0], 0.05f);
  EXPECT_GT(b.max[0], 1.95f);
}

TEST(Subsample, TakesRequestedCountWithoutReplacement) {
  auto pts = uniform2(1000, 1.0f, 11);
  auto sample = subsample<2>(pts, 100, 12);
  EXPECT_EQ(sample.size(), 100u);
  // Without replacement: all sampled points occur in the original with
  // at least the sampled multiplicity (uniform floats: effectively all
  // distinct).
  std::set<std::pair<float, float>> seen;
  for (const auto& p : sample) {
    EXPECT_TRUE(seen.insert({p[0], p[1]}).second) << "duplicate sample";
  }
}

TEST(Subsample, ClampsToInputSize) {
  auto pts = uniform2(50, 1.0f, 13);
  auto sample = subsample<2>(pts, 500, 14);
  EXPECT_EQ(sample.size(), 50u);
}

TEST(Subsample, DeterministicInSeed) {
  auto pts = uniform2(500, 1.0f, 15);
  EXPECT_EQ(subsample<2>(pts, 100, 16), subsample<2>(pts, 100, 16));
  EXPECT_NE(subsample<2>(pts, 100, 16), subsample<2>(pts, 100, 17));
}

TEST(Io, CsvRoundTrip2D) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "fdbscan_test_2d.csv").string();
  auto pts = uniform2(200, 1.0f, 18);
  write_csv(path, pts);
  auto back = read_csv2(path);
  ASSERT_EQ(back.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_NEAR(back[i][0], pts[i][0], 1e-5f);
    EXPECT_NEAR(back[i][1], pts[i][1], 1e-5f);
  }
  std::filesystem::remove(path);
}

TEST(Io, CsvRoundTrip3D) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "fdbscan_test_3d.csv").string();
  auto pts = uniform3(100, 5.0f, 19);
  write_csv(path, pts);
  auto back = read_csv3(path);
  ASSERT_EQ(back.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_NEAR(back[i][2], pts[i][2], 1e-4f);
  }
  std::filesystem::remove(path);
}

TEST(Io, LabeledCsvHasLabelColumn) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "fdbscan_test_labeled.csv").string();
  std::vector<Point2> pts{{{1.0f, 2.0f}}, {{3.0f, 4.0f}}};
  std::vector<std::int32_t> labels{0, -1};
  write_labeled_csv(path, pts, labels);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_NE(line.find(",0"), std::string::npos);
  std::getline(in, line);
  EXPECT_NE(line.find(",-1"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Io, ReadSkipsCommentsAndBlankLines) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "fdbscan_test_comments.csv").string();
  {
    std::ofstream out(path);
    out << "# header comment\n\n1.0,2.0\n\n3.0 4.0\n";
  }
  auto pts = read_csv2(path);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_FLOAT_EQ(pts[1][0], 3.0f);
  std::filesystem::remove(path);
}

TEST(Io, ThrowsOnMissingFile) {
  EXPECT_THROW(read_csv2("/nonexistent/definitely_missing.csv"),
               std::runtime_error);
}

TEST(Io, ThrowsOnMalformedRow) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "fdbscan_test_bad.csv").string();
  {
    std::ofstream out(path);
    out << "1.0,2.0\nnot-a-number,3\n";
  }
  EXPECT_THROW(read_csv2(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Io, RejectsTrailingGarbageNamingTheLine) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "fdbscan_test_trailing.csv").string();
  {
    std::ofstream out(path);
    out << "1.0,2.0\n1,2,abc\n";
  }
  try {
    read_csv2(path);
    FAIL() << "trailing garbage parsed as a valid point";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
  std::filesystem::remove(path);
}

TEST(Io, RejectsExtraColumns) {
  // A labeled CSV re-read as plain points must fail, not silently parse
  // the first DIM columns.
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "fdbscan_test_extracol.csv").string();
  std::vector<Point2> pts{{{1.0f, 2.0f}}, {{3.0f, 4.0f}}};
  std::vector<std::int32_t> labels{0, -1};
  write_labeled_csv(path, pts, labels);
  EXPECT_THROW(read_csv2(path), std::runtime_error);
  // 3-D points re-read as 2-D: also an extra column.
  std::filesystem::remove(path);
  write_csv(path, std::vector<Point3>{{{1.0f, 2.0f, 3.0f}}});
  EXPECT_THROW(read_csv2(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Io, RejectsMissingColumns) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "fdbscan_test_short.csv").string();
  {
    std::ofstream out(path);
    out << "1.0,2.0,3.0\n4.0,5.0\n";
  }
  EXPECT_THROW(read_csv3(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Io, LabeledCsvRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "fdbscan_test_labeled_rt.csv").string();
  std::vector<Point2> pts{{{1.5f, -2.0f}}, {{0.0f, 4.25f}}, {{3.0f, 3.0f}}};
  std::vector<std::int32_t> labels{1, -1, 0};
  write_labeled_csv(path, pts, labels);
  const auto back = read_labeled_csv2(path);
  ASSERT_EQ(back.points.size(), pts.size());
  EXPECT_EQ(back.labels, labels);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_FLOAT_EQ(back.points[i][0], pts[i][0]);
    EXPECT_FLOAT_EQ(back.points[i][1], pts[i][1]);
  }
  std::filesystem::remove(path);
}

TEST(Io, LabeledReaderRejectsUnlabeledRows) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "fdbscan_test_unlabeled.csv").string();
  {
    std::ofstream out(path);
    out << "1.0,2.0,0\n3.0,4.0\n";
  }
  EXPECT_THROW(read_labeled_csv2(path), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace fdbscan::data
