// Tests for the architecture-neutral work counters: these carry the
// paper's efficiency claims (masked traversal halves pair work, early
// exit prunes preprocessing, dense boxes eliminate distance computations,
// G-DBSCAN does Theta(n^2) work) independently of wall-clock.
#include <gtest/gtest.h>

#include "baselines/cuda_dclust.h"
#include "baselines/dsdbscan.h"
#include "baselines/gdbscan.h"
#include "core/fdbscan.h"
#include "core/fdbscan_densebox.h"
#include "data/generators.h"
#include "test_utils.h"

namespace fdbscan {
namespace {

TEST(WorkCounters, FdbscanCountsArePositive) {
  auto points = testing::random_points<2>(2000, 1.0f, 301);
  const auto result = fdbscan(points, Parameters{0.05f, 5});
  EXPECT_GT(result.distance_computations, 0);
  EXPECT_GT(result.index_nodes_visited, 0);
}

TEST(WorkCounters, CountsAreDeterministicAcrossThreadCounts) {
  auto points = testing::clustered_points<2>(3000, 5, 1.0f, 0.01f, 302);
  const Parameters params{0.02f, 5};
  testing::ScopedThreads serial(1);
  const auto a = fdbscan(points, params);
  testing::ScopedThreads many(8);
  const auto b = fdbscan(points, params);
  EXPECT_EQ(a.distance_computations, b.distance_computations);
  EXPECT_EQ(a.index_nodes_visited, b.index_nodes_visited);
}

TEST(WorkCounters, MaskedTraversalRoughlyHalvesMainPhaseWork) {
  // §4.1: hiding leaves below the query's own position halves the pair
  // work. With minpts=2 the main phase is the only traversal, so the
  // total counter ratio must approach 1/2 on neighbor-rich data.
  auto points = data::ngsim_like(8000, 303);
  const Parameters params{0.003f, 2};
  Options masked, unmasked;
  unmasked.masked_traversal = false;
  const auto with_mask = fdbscan(points, params, masked);
  const auto without_mask = fdbscan(points, params, unmasked);
  const double ratio =
      static_cast<double>(with_mask.distance_computations) /
      static_cast<double>(without_mask.distance_computations);
  EXPECT_LT(ratio, 0.65);
  EXPECT_GT(ratio, 0.35);
}

TEST(WorkCounters, EarlyExitPrunesPreprocessing) {
  // On data where |N(x)| >> minpts, terminating at minpts neighbors must
  // slash the distance computations (§3.2's "lightweight approach").
  auto points = data::ngsim_like(8000, 304);
  const Parameters params{0.005f, 10};
  Options eager, exhaustive;
  exhaustive.early_exit = false;
  const auto with_exit = fdbscan(points, params, eager);
  const auto without_exit = fdbscan(points, params, exhaustive);
  EXPECT_LT(with_exit.distance_computations,
            without_exit.distance_computations / 2);
}

TEST(WorkCounters, DenseBoxEliminatesDistanceComputationsInDenseData) {
  // §4.2's purpose: on road-like data, dense cells collapse almost all
  // of FDBSCAN's point-pair tests.
  auto points = data::road_network_like(16384, 305);
  const Parameters params{0.08f, 100};
  const auto plain = fdbscan(points, params);
  const auto densebox = fdbscan_densebox(points, params);
  EXPECT_LT(densebox.distance_computations, plain.distance_computations / 2);
}

TEST(WorkCounters, GdbscanDoesQuadraticWork) {
  auto points = testing::random_points<2>(1500, 1.0f, 306);
  const auto result = baselines::gdbscan(points, Parameters{0.05f, 5});
  EXPECT_EQ(result.distance_computations, 2LL * 1500 * 1499);
}

TEST(WorkCounters, TreeAlgorithmsDoFarLessWorkThanGdbscan) {
  auto points = data::porto_taxi_like(8000, 307);
  const Parameters params{0.005f, 10};
  const auto tree = fdbscan(points, params);
  const auto graph = baselines::gdbscan(points, params);
  EXPECT_LT(tree.distance_computations, graph.distance_computations / 10);
}

TEST(WorkCounters, CudaDclustCountsGridScans) {
  auto points = testing::clustered_points<2>(2000, 4, 1.0f, 0.01f, 308);
  const auto result = baselines::cuda_dclust(points, Parameters{0.02f, 5});
  // Every point is expanded or at least seeded once, and each expansion
  // scans at least its own cell (which contains the point itself).
  EXPECT_GE(result.distance_computations, 2000);
}

TEST(WorkCounters, DsdbscanCountsKdTreeWork) {
  auto points = testing::random_points<2>(2000, 1.0f, 309);
  const auto result = baselines::dsdbscan(points, Parameters{0.05f, 5});
  EXPECT_GT(result.distance_computations, 0);
  EXPECT_LT(result.distance_computations, 2LL * 2000 * 1999);
}

}  // namespace
}  // namespace fdbscan
