#include "geometry/morton.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "test_utils.h"

namespace fdbscan {
namespace {

// Bit-by-bit reference interleave.
std::uint64_t naive_interleave(const std::uint32_t* q, int dim, int bits) {
  std::uint64_t code = 0;
  for (int b = 0; b < bits; ++b) {
    for (int d = 0; d < dim; ++d) {
      code |= ((static_cast<std::uint64_t>(q[d]) >> b) & 1ULL)
              << (b * dim + d);
    }
  }
  return code;
}

TEST(Morton, ExpandBits2MatchesNaive) {
  for (std::uint32_t x : {0u, 1u, 2u, 0x55555555u, 0x7fffffffu, 12345u}) {
    std::uint32_t q[2] = {x, 0};
    EXPECT_EQ(detail::expand_bits_2(x), naive_interleave(q, 2, 31)) << x;
  }
}

TEST(Morton, ExpandBits3MatchesNaive) {
  for (std::uint32_t x : {0u, 1u, 2u, 0x155555u, 0x1fffffu, 54321u}) {
    std::uint32_t q[3] = {x, 0, 0};
    EXPECT_EQ(detail::expand_bits_3(x), naive_interleave(q, 3, 21)) << x;
  }
}

TEST(Morton, Morton2MatchesNaiveOnRandomInputs) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 200; ++i) {
    const auto x = static_cast<std::uint32_t>(rng() & 0x7fffffff);
    const auto y = static_cast<std::uint32_t>(rng() & 0x7fffffff);
    std::uint32_t q[2] = {x, y};
    EXPECT_EQ(morton2(x, y), naive_interleave(q, 2, 31));
  }
}

TEST(Morton, Morton3MatchesNaiveOnRandomInputs) {
  std::mt19937_64 rng(8);
  for (int i = 0; i < 200; ++i) {
    const auto x = static_cast<std::uint32_t>(rng() & 0x1fffff);
    const auto y = static_cast<std::uint32_t>(rng() & 0x1fffff);
    const auto z = static_cast<std::uint32_t>(rng() & 0x1fffff);
    std::uint32_t q[3] = {x, y, z};
    EXPECT_EQ(morton3(x, y, z), naive_interleave(q, 3, 21));
  }
}

TEST(Morton, PreservesPerAxisOrderingAlongAxes) {
  // Along a single axis, Morton codes are monotone.
  for (std::uint32_t v = 0; v < 100; ++v) {
    EXPECT_LT(morton2(v, 0), morton2(v + 1, 0));
    EXPECT_LT(morton2(0, v), morton2(0, v + 1));
    EXPECT_LT(morton3(v, 0, 0), morton3(v + 1, 0, 0));
  }
}

TEST(Morton, QuadrantPrefixProperty) {
  // Points in the same half-space on the top bit share the top output bit:
  // the locality property the BVH build relies on.
  Box2 scene{{{0.0f, 0.0f}}, {{1.0f, 1.0f}}};
  const auto low = morton_code(Point2{{0.2f, 0.3f}}, scene);
  const auto low2 = morton_code(Point2{{0.4f, 0.1f}}, scene);
  const auto high = morton_code(Point2{{0.9f, 0.9f}}, scene);
  // Top two interleaved bits identify the quadrant.
  EXPECT_EQ(low >> 60, low2 >> 60);
  EXPECT_NE(low >> 60, high >> 60);
}

TEST(Morton, CodeClampsOutOfSceneCoordinates) {
  Box2 scene{{{0.0f, 0.0f}}, {{1.0f, 1.0f}}};
  const auto inside_max = morton_code(Point2{{1.0f, 1.0f}}, scene);
  const auto beyond = morton_code(Point2{{5.0f, 7.0f}}, scene);
  EXPECT_EQ(inside_max, beyond);
  const auto origin = morton_code(Point2{{0.0f, 0.0f}}, scene);
  const auto below = morton_code(Point2{{-3.0f, -1.0f}}, scene);
  EXPECT_EQ(origin, below);
}

TEST(Morton, DegenerateSceneProducesUniformCode) {
  // A zero-extent scene (all points identical) must not divide by zero.
  Box2 scene{{{0.5f, 0.5f}}, {{0.5f, 0.5f}}};
  EXPECT_EQ(morton_code(Point2{{0.5f, 0.5f}}, scene),
            morton_code(Point2{{0.5f, 0.5f}}, scene));
}

TEST(Morton, DistinctCellsGetDistinctCodes) {
  Box2 scene{{{0.0f, 0.0f}}, {{1.0f, 1.0f}}};
  const auto a = morton_code(Point2{{0.1f, 0.1f}}, scene);
  const auto b = morton_code(Point2{{0.9f, 0.9f}}, scene);
  EXPECT_NE(a, b);
}

TEST(Morton, Closeness3DProperty) {
  // For random 3-D point pairs, nearby points share at least as long a
  // code prefix as a far-away control point (statistically: check the
  // scene's octant split).
  Box3 scene{{{0.0f, 0.0f, 0.0f}}, {{1.0f, 1.0f, 1.0f}}};
  const auto a = morton_code(Point3{{0.1f, 0.1f, 0.1f}}, scene);
  const auto b = morton_code(Point3{{0.12f, 0.11f, 0.13f}}, scene);
  const auto c = morton_code(Point3{{0.9f, 0.95f, 0.85f}}, scene);
  const int ab = a == b ? 64 : __builtin_clzll(a ^ b);
  const int ac = a == c ? 64 : __builtin_clzll(a ^ c);
  EXPECT_GT(ab, ac);
}

}  // namespace
}  // namespace fdbscan
