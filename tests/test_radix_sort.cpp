#include "exec/radix_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "test_utils.h"

namespace fdbscan::exec {
namespace {

void fill_random(std::vector<std::uint64_t>& keys, std::uint64_t mask,
                 std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  for (auto& k : keys) k = rng() & mask;
}

std::vector<std::int32_t> iota_ids(std::size_t n) {
  std::vector<std::int32_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

class RadixSortThreads : public ::testing::TestWithParam<int> {
 protected:
  testing::ScopedThreads threads_{GetParam()};
};

TEST_P(RadixSortThreads, SortsRandomKeys) {
  std::vector<std::uint64_t> keys(10007);
  fill_random(keys, ~std::uint64_t{0}, 1);
  auto ids = iota_ids(keys.size());
  auto original = keys;
  radix_sort_pairs(keys, ids);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  // ids must carry the permutation: keys[i] == original[ids[i]].
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(keys[i], original[static_cast<std::size_t>(ids[i])]);
  }
}

TEST_P(RadixSortThreads, MatchesStdStableSort) {
  std::vector<std::uint64_t> keys(5000);
  fill_random(keys, 0xffff, 2);  // many duplicates
  auto ids = iota_ids(keys.size());
  auto original = keys;
  auto expected_ids = ids;
  std::stable_sort(expected_ids.begin(), expected_ids.end(),
                   [&](std::int32_t a, std::int32_t b) {
                     return original[static_cast<std::size_t>(a)] <
                            original[static_cast<std::size_t>(b)];
                   });
  radix_sort_pairs(keys, ids);
  EXPECT_EQ(ids, expected_ids);
}

TEST_P(RadixSortThreads, StableOnAllEqualKeys) {
  std::vector<std::uint64_t> keys(1000, 42);
  auto ids = iota_ids(keys.size());
  radix_sort_pairs(keys, ids);
  EXPECT_EQ(ids, iota_ids(keys.size()));  // untouched order
}

TEST_P(RadixSortThreads, HandlesHighBytesOnly) {
  // Keys varying only in the top byte exercise the pass-skip logic.
  std::vector<std::uint64_t> keys(3000);
  std::mt19937_64 rng(3);
  for (auto& k : keys) k = (rng() & 0xff) << 56;
  auto ids = iota_ids(keys.size());
  radix_sort_pairs(keys, ids);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST_P(RadixSortThreads, HandlesAlreadySorted) {
  std::vector<std::uint64_t> keys(4096);
  std::iota(keys.begin(), keys.end(), 1000);
  auto ids = iota_ids(keys.size());
  radix_sort_pairs(keys, ids);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(ids, iota_ids(keys.size()));
}

TEST_P(RadixSortThreads, HandlesReverseSorted) {
  std::vector<std::uint64_t> keys(4096);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = keys.size() - i;
  }
  auto ids = iota_ids(keys.size());
  radix_sort_pairs(keys, ids);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(ids[0], static_cast<std::int32_t>(keys.size()) - 1);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, RadixSortThreads,
                         ::testing::Values(1, 3, 8));

TEST(RadixSort, EmptyAndSingle) {
  std::vector<std::uint64_t> keys;
  std::vector<std::int32_t> ids;
  radix_sort_pairs(keys, ids);
  EXPECT_TRUE(keys.empty());
  keys = {7};
  ids = {0};
  radix_sort_pairs(keys, ids);
  EXPECT_EQ(keys[0], 7u);
}

TEST(RadixSort, OddNumberOfPassesCopiesBack) {
  // Keys spanning exactly 3 varying bytes force an odd pass count.
  std::vector<std::uint64_t> keys(2000);
  std::mt19937_64 rng(4);
  for (auto& k : keys) k = rng() & 0xffffff;
  auto ids = iota_ids(keys.size());
  auto sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  radix_sort_pairs(keys, ids);
  EXPECT_EQ(keys, sorted);
}

TEST(RadixSort, LargeInputAcrossManyChunks) {
  testing::ScopedThreads threads(8);
  std::vector<std::uint64_t> keys(300000);
  fill_random(keys, ~std::uint64_t{0}, 5);
  auto ids = iota_ids(keys.size());
  auto sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  radix_sort_pairs(keys, ids);
  EXPECT_EQ(keys, sorted);
}

}  // namespace
}  // namespace fdbscan::exec
