// Cross-module integration tests: all six complete implementations on
// realistic mid-size workloads, agreement sweeps over parameter grids,
// and the framework-level invariants the paper argues for (O(n) memory,
// FoF = connected components, minpts monotonicity).
#include <gtest/gtest.h>

#include "baselines/cuda_dclust.h"
#include "baselines/dsdbscan.h"
#include "baselines/gdbscan.h"
#include "baselines/sequential_dbscan.h"
#include "core/fdbscan.h"
#include "core/fdbscan_densebox.h"
#include "core/validate.h"
#include "data/generators.h"
#include "test_utils.h"
#include "unionfind/union_find.h"

namespace fdbscan {
namespace {

using testing::ScopedThreads;

// On mid-size data the O(n^2) brute force is too slow, so the k-d-tree
// sequential DBSCAN (itself brute-force-validated in test_baselines)
// serves as the reference.
void expect_all_algorithms_agree(const std::vector<Point2>& points,
                                 const Parameters& params) {
  const auto reference = baselines::sequential_dbscan(points, params);
  struct Named {
    const char* name;
    Clustering result;
  };
  const Named candidates[] = {
      {"fdbscan", fdbscan(points, params)},
      {"densebox", fdbscan_densebox(points, params)},
      {"dsdbscan", baselines::dsdbscan(points, params)},
      {"gdbscan", baselines::gdbscan(points, params)},
      {"cuda_dclust", baselines::cuda_dclust(points, params)},
  };
  for (const auto& [name, result] : candidates) {
    const auto check =
        equivalent_clusterings(points, params, reference, result);
    EXPECT_TRUE(check.ok) << name << ": " << check.message;
  }
}

TEST(Integration, AllAlgorithmsAgreeOnNgsim) {
  ScopedThreads threads(4);
  expect_all_algorithms_agree(data::ngsim_like(4000, 201), {0.005f, 40});
}

TEST(Integration, AllAlgorithmsAgreeOnPorto) {
  ScopedThreads threads(4);
  expect_all_algorithms_agree(data::porto_taxi_like(4000, 202), {0.01f, 10});
}

TEST(Integration, AllAlgorithmsAgreeOnRoadNetwork) {
  ScopedThreads threads(4);
  expect_all_algorithms_agree(data::road_network_like(4000, 203), {0.008f, 8});
}

TEST(Integration, AllAlgorithmsAgreeOnFriendsOfFriends) {
  ScopedThreads threads(8);
  expect_all_algorithms_agree(data::porto_taxi_like(3000, 204), {0.006f, 2});
}

struct GridSweep {
  float eps;
  std::int32_t minpts;
};

class IntegrationParameterGrid : public ::testing::TestWithParam<GridSweep> {};

TEST_P(IntegrationParameterGrid, TreeAlgorithmsMatchReferenceOnCosmology) {
  ScopedThreads threads(4);
  const auto param = GetParam();
  auto points = data::hacc_like(3000, 205);
  // Project the reference via the 3-D sequential baseline.
  const Parameters params{param.eps, param.minpts};
  const auto reference = baselines::sequential_dbscan(points, params);
  const auto a = fdbscan(points, params);
  const auto b = fdbscan_densebox(points, params);
  auto check = equivalent_clusterings(points, params, reference, a);
  EXPECT_TRUE(check.ok) << "fdbscan: " << check.message;
  check = equivalent_clusterings(points, params, reference, b);
  EXPECT_TRUE(check.ok) << "densebox: " << check.message;
}

INSTANTIATE_TEST_SUITE_P(EpsMinptsGrid, IntegrationParameterGrid,
                         ::testing::Values(GridSweep{0.2f, 2},
                                           GridSweep{0.2f, 5},
                                           GridSweep{0.5f, 5},
                                           GridSweep{0.5f, 20},
                                           GridSweep{1.0f, 10},
                                           GridSweep{2.0f, 50}));

TEST(Integration, FofEqualsConnectedComponents) {
  // minpts=2 DBSCAN is exactly connected components of the eps-graph
  // (§2.1). Compare fdbscan against an independent CC computation.
  auto points = data::porto_taxi_like(2000, 206);
  const float eps = 0.004f;
  const auto result = fdbscan(points, Parameters{eps, 2});
  SequentialDSU dsu(static_cast<std::int32_t>(points.size()));
  const float eps2 = eps * eps;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      if (within(points[i], points[j], eps2)) {
        dsu.unite(static_cast<std::int32_t>(i), static_cast<std::int32_t>(j));
      }
    }
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); j += 37) {
      const bool same_cc = dsu.find(static_cast<std::int32_t>(i)) ==
                           dsu.find(static_cast<std::int32_t>(j));
      const bool both_clustered =
          result.labels[i] != kNoise && result.labels[j] != kNoise;
      if (both_clustered) {
        ASSERT_EQ(same_cc, result.labels[i] == result.labels[j])
            << i << "," << j;
      } else if (same_cc) {
        // Same nontrivial component but marked noise: only possible for
        // singleton components.
        ASSERT_EQ(i, j);
      }
    }
  }
}

TEST(Integration, CorePointsShrinkAsMinptsGrows) {
  auto points = data::ngsim_like(3000, 207);
  const float eps = 0.003f;
  std::size_t previous = points.size() + 1;
  for (std::int32_t minpts : {2, 5, 20, 100, 400}) {
    const auto result = fdbscan(points, Parameters{eps, minpts});
    std::size_t cores = 0;
    for (auto f : result.is_core) cores += f;
    EXPECT_LE(cores, previous) << "minpts=" << minpts;
    previous = cores;
  }
}

TEST(Integration, ClustersGrowAsEpsGrows) {
  // Larger eps can only merge clusters / recruit noise, never create
  // noise out of clustered points.
  auto points = data::road_network_like(2000, 208);
  const auto small = fdbscan(points, Parameters{0.005f, 5});
  const auto large = fdbscan(points, Parameters{0.02f, 5});
  EXPECT_LE(large.num_noise(), small.num_noise());
}

TEST(Integration, MemoryOrderingMatchesThePaper) {
  // Peak auxiliary memory: G-DBSCAN >> FDBSCAN ~ DenseBox on dense data.
  auto points = data::ngsim_like(4000, 209);
  const Parameters params{0.01f, 10};
  exec::MemoryTracker fd_tracker, db_tracker, g_tracker;
  Options options;
  options.memory = &fd_tracker;
  (void)fdbscan(points, params, options);
  options.memory = &db_tracker;
  (void)fdbscan_densebox(points, params, options);
  (void)baselines::gdbscan(points, params, &g_tracker);
  EXPECT_GT(g_tracker.peak(), 10 * fd_tracker.peak());
  EXPECT_GT(g_tracker.peak(), 10 * db_tracker.peak());
}

TEST(Integration, LargeScaleFofSmokeTest) {
  // 50k-point Friends-of-Friends run exercising every kernel at a size
  // where chunked dispatch and atomics really interleave.
  ScopedThreads threads(8);
  auto points = data::hacc_like(50000, 210);
  const auto a = fdbscan(points, Parameters{0.3f, 2});
  const auto b = fdbscan_densebox(points, Parameters{0.3f, 2});
  EXPECT_EQ(a.num_clusters, b.num_clusters);
  EXPECT_EQ(a.num_noise(), b.num_noise());
  const auto check =
      equivalent_clusterings(points, Parameters{0.3f, 2}, a, b);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(Integration, RepeatedRunsAreStable) {
  // Re-running on identical input yields the identical clustering
  // (catches uninitialized memory and iteration-order dependence).
  auto points = data::porto_taxi_like(2500, 211);
  const Parameters params{0.006f, 5};
  const auto first = fdbscan_densebox(points, params);
  for (int run = 0; run < 3; ++run) {
    const auto again = fdbscan_densebox(points, params);
    EXPECT_EQ(first.num_clusters, again.num_clusters);
    EXPECT_EQ(first.is_core, again.is_core);
    const auto check = equivalent_clusterings(points, params, first, again);
    EXPECT_TRUE(check.ok) << check.message;
  }
}

}  // namespace
}  // namespace fdbscan
