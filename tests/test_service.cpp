// ClusterService (service/service.h): queue backpressure, engine-pool
// reuse and serialization, deadlines, cancellation through the service
// surface, metrics accounting, and the ErrorCode round-trip satellite.
#include "service/service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/cluster.h"
#include "core/validate.h"
#include "exec/profile.h"
#include "test_utils.h"

namespace fdbscan::service {
namespace {

using exec::CancelToken;

std::shared_ptr<const std::vector<Point2>> shared_points(
    std::int64_t n, std::uint64_t seed, float sigma = 0.02f) {
  return std::make_shared<const std::vector<Point2>>(
      fdbscan::testing::clustered_points<2>(n, 6, 1.0f, sigma, seed));
}

/// Polls the service until `pred(metrics())` holds (or a generous
/// timeout elapses — the assertion then fails loudly in the caller).
template <class Pred>
bool wait_until(const ClusterService& service, Pred pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred(service.metrics())) return true;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return false;
}

// --- Satellite: every ErrorCode enumerator round-trips through its name --

TEST(ErrorCode, EveryEnumeratorHasADistinctName) {
  const ErrorCode all[] = {
      ErrorCode::kInvalidEps,       ErrorCode::kInvalidMinpts,
      ErrorCode::kNonFinitePoint,   ErrorCode::kInvalidCellWidthFactor,
      ErrorCode::kInvalidShards,    ErrorCode::kQueueFull,
      ErrorCode::kCancelled,        ErrorCode::kDeadlineExceeded,
      ErrorCode::kInternal,
  };
  std::set<std::string> names;
  for (ErrorCode code : all) {
    const std::string name = error_code_name(code);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "UnknownError") << "missing switch case";
    names.insert(name);
  }
  EXPECT_EQ(names.size(), std::size(all)) << "duplicate names";
}

TEST(ErrorCode, ServiceCodesSpellTheirCondition) {
  EXPECT_STREQ(error_code_name(ErrorCode::kQueueFull), "QueueFull");
  EXPECT_STREQ(error_code_name(ErrorCode::kCancelled), "Cancelled");
  EXPECT_STREQ(error_code_name(ErrorCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(error_code_name(ErrorCode::kInternal), "Internal");
}

// --- Configuration -------------------------------------------------------

TEST(ServiceConfig, StrictEnvParseRejectsEverythingButPositiveInts) {
  using detail::parse_positive_env_int;
  EXPECT_EQ(parse_positive_env_int("5"), 5);
  EXPECT_EQ(parse_positive_env_int("64"), 64);
  EXPECT_EQ(parse_positive_env_int("2147483647"),
            std::numeric_limits<int>::max());
  EXPECT_EQ(parse_positive_env_int(nullptr), std::nullopt);
  EXPECT_EQ(parse_positive_env_int(""), std::nullopt);
  EXPECT_EQ(parse_positive_env_int("0"), std::nullopt);
  EXPECT_EQ(parse_positive_env_int("-3"), std::nullopt);
  EXPECT_EQ(parse_positive_env_int("banana"), std::nullopt);
  EXPECT_EQ(parse_positive_env_int("12abc"), std::nullopt);
  EXPECT_EQ(parse_positive_env_int("3.5"), std::nullopt);
  EXPECT_EQ(parse_positive_env_int("2147483648"), std::nullopt);  // > int
  EXPECT_EQ(parse_positive_env_int("99999999999999999999"), std::nullopt);
}

TEST(ServiceConfig, InvalidEnvValuesFallBackToDefaultsWithAWarning) {
  // Pre-fix these silently became the defaults via atoi(); the value
  // contract (defaults) is what we can assert — the once-per-variable
  // stderr warning is exercised but not captured here.
  ::setenv("FDBSCAN_SERVICE_QUEUE_CAP", "banana", 1);
  ::setenv("FDBSCAN_SERVICE_DISPATCHERS", "0", 1);
  ::setenv("FDBSCAN_SERVICE_SHARDS", "-2", 1);
  const ServiceConfig config = ServiceConfig::from_env();
  EXPECT_EQ(config.queue_capacity, ServiceConfig{}.queue_capacity);
  EXPECT_EQ(config.dispatchers, ServiceConfig{}.dispatchers);
  EXPECT_EQ(config.shards, ServiceConfig{}.shards);
  ::unsetenv("FDBSCAN_SERVICE_QUEUE_CAP");
  ::unsetenv("FDBSCAN_SERVICE_DISPATCHERS");
  ::unsetenv("FDBSCAN_SERVICE_SHARDS");
}

TEST(ServiceConfig, FromEnvReadsTheKnobs) {
  ::setenv("FDBSCAN_SERVICE_QUEUE_CAP", "5", 1);
  ::setenv("FDBSCAN_SERVICE_DISPATCHERS", "3", 1);
  const ServiceConfig config = ServiceConfig::from_env();
  EXPECT_EQ(config.queue_capacity, 5);
  EXPECT_EQ(config.dispatchers, 3);
  ::unsetenv("FDBSCAN_SERVICE_QUEUE_CAP");
  ::unsetenv("FDBSCAN_SERVICE_DISPATCHERS");
  const ServiceConfig defaults = ServiceConfig::from_env();
  EXPECT_EQ(defaults.queue_capacity, ServiceConfig{}.queue_capacity);
  EXPECT_EQ(defaults.dispatchers, ServiceConfig{}.dispatchers);
}

// --- Happy path ----------------------------------------------------------

TEST(ClusterService, SubmitMatchesDirectCluster) {
  const auto points = shared_points(5000, 17);
  const Parameters params{0.03f, 10};
  const auto expected = cluster(*points, params, {}, Method::kFdbscan);
  ASSERT_TRUE(expected.has_value());

  ClusterService service;
  SubmitOptions submit;
  submit.method = Method::kFdbscan;
  auto result = service.submit<2>("ds", points, params, submit).get();
  ASSERT_TRUE(result.has_value());
  // Parallel labelings may differ border-point-wise run to run (see
  // test_thread_invariance.cpp); core-ness and partition are invariant.
  const auto check = equivalent_clusterings(*points, params, *expected, *result);
  EXPECT_TRUE(check.ok) << check.message;
  EXPECT_EQ(result->is_core, expected->is_core);
  EXPECT_EQ(result->num_clusters, expected->num_clusters);
}

TEST(ClusterService, WarmEngineSharedAcrossConcurrentSubmits) {
  const auto points = shared_points(8000, 3);
  const Parameters params{0.03f, 10};
  ServiceConfig config;
  config.dispatchers = 4;
  config.queue_capacity = 32;
  ClusterService service(config);

  SubmitOptions submit;
  submit.method = Method::kFdbscan;  // point BVH: one build per dataset
  std::vector<std::future<ServiceResult>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(service.submit<2>("shared", points, params, submit));
  }
  std::vector<Clustering> results;
  for (auto& f : futures) {
    auto result = f.get();
    ASSERT_TRUE(result.has_value());
    results.push_back(*std::move(result));
  }
  for (const Clustering& c : results) {
    // Serialized on one engine, not racing: every run is a valid
    // clustering of the same dataset (labels may differ border-wise).
    EXPECT_EQ(c.is_core, results.front().is_core);
    EXPECT_EQ(c.num_clusters, results.front().num_clusters);
    const auto check =
        equivalent_clusterings(*points, params, results.front(), c);
    EXPECT_TRUE(check.ok) << check.message;
  }
  service.wait_idle();
  const auto stats = service.dataset_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].id, "shared");
  EXPECT_EQ(stats[0].runs, 8);
  EXPECT_EQ(stats[0].index_builds, 1) << "concurrent submits rebuilt the BVH";
}

TEST(ClusterService, DistinctDatasetsGetDistinctEngines) {
  const auto a = shared_points(3000, 1);
  const auto b = shared_points(3000, 2);
  const Parameters params{0.03f, 10};
  ClusterService service;
  auto fa = service.submit<2>("a", a, params);
  auto fb = service.submit<2>("b", b, params);
  EXPECT_TRUE(fa.get().has_value());
  EXPECT_TRUE(fb.get().has_value());
  service.wait_idle();
  EXPECT_EQ(service.dataset_stats().size(), 2u);
  const auto pool = service.pool_stats();
  EXPECT_EQ(pool.misses, 2);
  EXPECT_EQ(pool.engines, 2);
}

TEST(ClusterService, EnginePoolEvictsLeastRecentlyUsed) {
  const auto a = shared_points(2000, 4);
  const auto b = shared_points(2000, 5);
  const Parameters params{0.03f, 10};
  ServiceConfig config;
  config.engine_capacity = 1;
  ClusterService service(config);
  EXPECT_TRUE(service.submit<2>("a", a, params).get().has_value());
  EXPECT_TRUE(service.submit<2>("b", b, params).get().has_value());
  service.wait_idle();
  const auto pool = service.pool_stats();
  EXPECT_EQ(pool.engines, 1);
  EXPECT_GE(pool.evictions, 1);
  const auto stats = service.dataset_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].id, "b");  // "a" was the LRU victim
}

// --- Validation ----------------------------------------------------------

TEST(ClusterService, InvalidParametersFailAtSubmit) {
  const auto points = shared_points(100, 9);
  ClusterService service;
  auto future = service.submit<2>("ds", points, Parameters{0.0f, 10});
  // The future is ready immediately: rejection happened on this thread.
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const auto result = future.get();
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidEps);
  EXPECT_EQ(service.metrics().failed, 1);
}

TEST(ClusterService, NullPointsFailAtSubmit) {
  ClusterService service;
  auto result =
      service.submit<2>("ds", nullptr, Parameters{0.01f, 10}).get();
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::kInternal);
}

TEST(ClusterService, NonFinitePointsFailOnTheDispatcher) {
  auto bad = std::make_shared<std::vector<Point2>>(
      fdbscan::testing::random_points<2>(1000, 1.0f, 3));
  (*bad)[500][1] = std::numeric_limits<float>::quiet_NaN();
  ClusterService service;
  const std::shared_ptr<const std::vector<Point2>> frozen = bad;
  auto first = service.submit<2>("bad", frozen, Parameters{0.01f, 10}).get();
  ASSERT_FALSE(first.has_value());
  EXPECT_EQ(first.error().code, ErrorCode::kNonFinitePoint);
  // The failed scan must not mark the dataset validated.
  auto second = service.submit<2>("bad", frozen, Parameters{0.01f, 10}).get();
  ASSERT_FALSE(second.has_value());
  EXPECT_EQ(second.error().code, ErrorCode::kNonFinitePoint);
  EXPECT_EQ(service.metrics().failed, 2);
}

// --- Backpressure --------------------------------------------------------

TEST(ClusterService, FullQueueRejectsDeterministically) {
  const auto big = shared_points(150000, 7);
  const auto tiny = shared_points(64, 8);
  const Parameters params{0.05f, 10};
  ServiceConfig config;
  config.dispatchers = 1;
  config.queue_capacity = 3;
  ClusterService service(config);

  // Occupy the single dispatcher with a long run we can cancel later.
  auto blocker_token = std::make_shared<CancelToken>();
  SubmitOptions blocking;
  blocking.token = blocker_token;
  auto blocker = service.submit<2>("blocker", big, params, blocking);
  ASSERT_TRUE(wait_until(service, [](const ServiceMetrics& m) {
    return m.active == 1 && m.queued == 0;
  })) << "blocker never reached a dispatcher";

  // With the dispatcher busy and the queue empty, cap + K submits admit
  // exactly cap and reject exactly K — no timing dependence.
  constexpr int kExtra = 5;
  std::vector<std::future<ServiceResult>> burst;
  for (int i = 0; i < config.queue_capacity + kExtra; ++i) {
    burst.push_back(service.submit<2>("tiny", tiny, params));
  }
  int rejected = 0;
  int accepted = 0;
  for (auto& f : burst) {
    // Rejected futures are ready now; accepted ones resolve once the
    // blocker is cancelled below. Inspect readiness first.
    if (f.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      const auto result = f.get();
      ASSERT_FALSE(result.has_value());
      EXPECT_EQ(result.error().code, ErrorCode::kQueueFull);
      ++rejected;
    } else {
      ++accepted;
    }
  }
  EXPECT_EQ(rejected, kExtra);
  EXPECT_EQ(accepted, config.queue_capacity);
  EXPECT_EQ(service.metrics().rejected, kExtra);

  blocker_token->request_cancel();
  const auto blocked = blocker.get();
  ASSERT_FALSE(blocked.has_value());
  EXPECT_EQ(blocked.error().code, ErrorCode::kCancelled);
  service.wait_idle();
}

// --- Cancellation through the service ------------------------------------

TEST(ClusterService, CancelQueuedRequestNeverRuns) {
  const auto big = shared_points(150000, 11);
  const auto tiny = shared_points(64, 12);
  const Parameters params{0.05f, 10};
  ServiceConfig config;
  config.dispatchers = 1;
  ClusterService service(config);

  auto blocker_token = std::make_shared<CancelToken>();
  SubmitOptions blocking;
  blocking.token = blocker_token;
  auto blocker = service.submit<2>("blocker", big, params, blocking);
  ASSERT_TRUE(wait_until(
      service, [](const ServiceMetrics& m) { return m.active == 1; }));

  auto queued_token = std::make_shared<CancelToken>();
  SubmitOptions cancellable;
  cancellable.token = queued_token;
  auto queued = service.submit<2>("victim", tiny, params, cancellable);
  queued_token->request_cancel();
  blocker_token->request_cancel();

  const auto result = queued.get();
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::kCancelled);
  service.wait_idle();
  // The cancelled request was dropped before touching the pool: no
  // engine was ever built for its dataset.
  for (const auto& d : service.dataset_stats()) {
    EXPECT_NE(d.id, "victim");
  }
}

TEST(ClusterService, CancelRunningRequestLeavesEngineReusable) {
  const auto points = shared_points(100000, 13);
  const Parameters params{0.05f, 10};
  const auto expected = cluster(*points, params, {}, Method::kFdbscan);
  ASSERT_TRUE(expected.has_value());

  ClusterService service;
  SubmitOptions submit;
  submit.method = Method::kFdbscan;
  submit.token = std::make_shared<CancelToken>();
  auto doomed = service.submit<2>("ds", points, params, submit);
  wait_until(service, [](const ServiceMetrics& m) { return m.active >= 1; });
  submit.token->request_cancel();
  const auto result = doomed.get();
  if (!result.has_value()) {
    EXPECT_EQ(result.error().code, ErrorCode::kCancelled);
  }
  // Same dataset, fresh request: the pooled engine survived the unwind.
  SubmitOptions fresh;
  fresh.method = Method::kFdbscan;
  const auto again = service.submit<2>("ds", points, params, fresh).get();
  ASSERT_TRUE(again.has_value());
  const auto check = equivalent_clusterings(*points, params, *expected, *again);
  EXPECT_TRUE(check.ok) << check.message;
  EXPECT_EQ(again->is_core, expected->is_core);
}

// --- Deadlines -----------------------------------------------------------

TEST(ClusterService, ZeroDeadlineFailsFastWithoutKernels) {
  const auto points = shared_points(10000, 14);
  ClusterService service;
  const exec::KernelProfileSnapshot before = exec::kernel_profile();
  SubmitOptions strict;
  strict.deadline_ms = 0.0;
  auto future = service.submit<2>("ds", points, Parameters{0.03f, 10}, strict);
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const auto result = future.get();
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::kDeadlineExceeded);
  const exec::KernelProfileSnapshot after = exec::kernel_profile();
  EXPECT_EQ(after.launches, before.launches) << "zero deadline ran kernels";
  EXPECT_EQ(service.metrics().deadline_exceeded, 1);
}

TEST(ClusterService, DeadlineExpiresMidRun) {
  const auto points = shared_points(200000, 15);
  ClusterService service;
  SubmitOptions strict;
  strict.deadline_ms = 2.0;  // far below this run's wall time
  const auto result =
      service.submit<2>("ds", points, Parameters{0.05f, 10}, strict).get();
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(service.metrics().deadline_exceeded, 1);
}

TEST(ClusterService, TokenReuseAfterDeadlineIsNotCancelledByStaleEntry) {
  // Regression: the watchdog heap keeps a request's deadline entry until
  // it comes due. A caller that completed well inside the deadline,
  // reset() the token, and resubmitted it used to get the new request
  // cancelled when the first request's (now stale) deadline fired. The
  // per-request generation captured at registration makes that firing a
  // no-op.
  const auto points = shared_points(2000, 22);
  const Parameters params{0.03f, 10};
  ClusterService service;
  auto token = std::make_shared<CancelToken>();
  SubmitOptions with_deadline;
  with_deadline.deadline_ms = 300.0;
  with_deadline.token = token;
  ASSERT_TRUE(
      service.submit<2>("ds", points, params, with_deadline).get().has_value());
  ASSERT_FALSE(token->cancelled());

  token->reset();
  // Let the first request's deadline come due while the token is armed
  // for its next use; the stale entry must not raise it.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_FALSE(token->cancelled())
      << "stale watchdog deadline cancelled a reset token";

  SubmitOptions reuse;
  reuse.token = token;  // no deadline this time
  const auto result = service.submit<2>("ds", points, params, reuse).get();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(token->cancelled());
  service.wait_idle();
  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.deadline_exceeded, 0);
  EXPECT_EQ(m.submitted, m.completed + m.rejected + m.cancelled +
                             m.deadline_exceeded + m.failed);
}

TEST(ClusterService, ZeroDeadlineDoesNotPoisonCallersSharedToken) {
  // Regression: the deadline_ms <= 0 fast-fail used to raise the
  // request's token unconditionally. With a caller-supplied token shared
  // across requests, that rejection cancelled the caller's *other*
  // in-flight work. Only service-private tokens may be raised there.
  const auto points = shared_points(2000, 23);
  const Parameters params{0.03f, 10};
  ClusterService service;
  auto shared_token = std::make_shared<CancelToken>();

  SubmitOptions expired;
  expired.deadline_ms = 0.0;
  expired.token = shared_token;
  const auto rejected = service.submit<2>("ds", points, params, expired).get();
  ASSERT_FALSE(rejected.has_value());
  EXPECT_EQ(rejected.error().code, ErrorCode::kDeadlineExceeded);
  EXPECT_FALSE(shared_token->cancelled())
      << "fast-fail poisoned a caller-owned token";

  // A sibling request sharing the token still completes.
  SubmitOptions sibling;
  sibling.token = shared_token;
  EXPECT_TRUE(service.submit<2>("ds", points, params, sibling).get().has_value());

  // The service-private case still fails fast the same way (nothing to
  // observe about the token; the error and the metrics are the contract).
  SubmitOptions private_expired;
  private_expired.deadline_ms = -1.0;
  const auto rejected2 =
      service.submit<2>("ds", points, params, private_expired).get();
  ASSERT_FALSE(rejected2.has_value());
  EXPECT_EQ(rejected2.error().code, ErrorCode::kDeadlineExceeded);

  service.wait_idle();
  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.deadline_exceeded, 2);
  EXPECT_EQ(m.submitted, m.completed + m.rejected + m.cancelled +
                             m.deadline_exceeded + m.failed);
}

TEST(ClusterService, ShardedExecutorCacheIsBoundedWithEvictionsCounted) {
  // Regression: EngineHolder::sharded grew one warm ShardedEngine (with
  // ghost replicas of the dataset) per distinct shard count, forever.
  // The holder now keeps an LRU of kShardedCapacity (2) and reports
  // evictions through DatasetStats.
  const auto points = shared_points(3000, 24);
  const Parameters params{0.03f, 10};
  ClusterService service;
  auto run_sharded = [&](std::int32_t shards) {
    SubmitOptions submit;
    submit.shards = shards;
    return service.submit<2>("ds", points, params, submit).get();
  };
  ASSERT_TRUE(run_sharded(2).has_value());
  ASSERT_TRUE(run_sharded(3).has_value());
  service.wait_idle();
  {
    const auto stats = service.dataset_stats();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].sharded_evictions, 0);
    EXPECT_EQ(stats[0].runs, 2);
  }
  ASSERT_TRUE(run_sharded(4).has_value());  // third distinct count: evict
  service.wait_idle();
  {
    const auto stats = service.dataset_stats();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].sharded_evictions, 1);
    EXPECT_EQ(stats[0].runs, 3) << "eviction lost retired run counts";
  }
  ASSERT_TRUE(run_sharded(2).has_value());  // evicted earlier: rebuild
  service.wait_idle();
  {
    const auto stats = service.dataset_stats();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].sharded_evictions, 2);
    EXPECT_EQ(stats[0].runs, 4);
  }
}

TEST(ClusterService, GenerousDeadlineDoesNotFire) {
  const auto points = shared_points(2000, 16);
  ClusterService service;
  SubmitOptions relaxed;
  relaxed.deadline_ms = 60000.0;
  const auto result =
      service.submit<2>("ds", points, Parameters{0.03f, 10}, relaxed).get();
  EXPECT_TRUE(result.has_value());
  EXPECT_EQ(service.metrics().deadline_exceeded, 0);
}

// --- Shutdown ------------------------------------------------------------

TEST(ClusterService, ShutdownResolvesQueuedFuturesAsCancelled) {
  const auto big = shared_points(150000, 18);
  const auto tiny = shared_points(64, 19);
  const Parameters params{0.05f, 10};
  std::vector<std::future<ServiceResult>> queued;
  auto blocker_token = std::make_shared<CancelToken>();
  {
    ServiceConfig config;
    config.dispatchers = 1;
    ClusterService service(config);
    SubmitOptions blocking;
    blocking.token = blocker_token;
    queued.push_back(service.submit<2>("blocker", big, params, blocking));
    ASSERT_TRUE(wait_until(
        service, [](const ServiceMetrics& m) { return m.active == 1; }));
    queued.push_back(service.submit<2>("q1", tiny, params));
    queued.push_back(service.submit<2>("q2", tiny, params));
    blocker_token->request_cancel();  // let the dtor join promptly
  }
  // Destructor ran: every future must be resolved, queued ones cancelled.
  ASSERT_FALSE(queued[0].get().has_value());
  for (std::size_t i = 1; i < queued.size(); ++i) {
    const auto result = queued[i].get();
    ASSERT_FALSE(result.has_value()) << "queued request " << i;
    EXPECT_EQ(result.error().code, ErrorCode::kCancelled);
  }
}

// --- Metrics -------------------------------------------------------------

TEST(ClusterService, TerminalCountsPartitionSubmitted) {
  const auto points = shared_points(2000, 20);
  const Parameters params{0.03f, 10};
  ClusterService service;
  EXPECT_TRUE(service.submit<2>("ds", points, params).get().has_value());
  EXPECT_FALSE(
      service.submit<2>("ds", points, Parameters{-1.0f, 10}).get().has_value());
  SubmitOptions strict;
  strict.deadline_ms = 0.0;
  EXPECT_FALSE(service.submit<2>("ds", points, params, strict).get().has_value());
  service.wait_idle();
  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.submitted, 3);
  EXPECT_EQ(m.queued, 0);
  EXPECT_EQ(m.active, 0);
  EXPECT_EQ(m.submitted, m.completed + m.rejected + m.cancelled +
                             m.deadline_exceeded + m.failed);
}

TEST(ClusterService, LatencyHistogramsCoverEveryDispatch) {
  const auto points = shared_points(2000, 21);
  const Parameters params{0.03f, 10};
  ClusterService service;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(service.submit<2>("ds", points, params).get().has_value());
  }
  service.wait_idle();
  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.queue_wait.count, 4);
  EXPECT_EQ(m.run_time.count, 4);
  EXPECT_GT(m.run_time.total_ms, 0.0);
  EXPECT_GE(m.run_time.max_ms, m.run_time.total_ms / 4.0);
  std::int64_t bucket_sum = 0;
  for (std::int64_t b : m.run_time.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, m.run_time.count);
}

}  // namespace
}  // namespace fdbscan::service
