#include "bvh/bvh.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "exec/atomic.h"
#include "exec/parallel.h"
#include "test_utils.h"

namespace fdbscan {
namespace {

template <int DIM>
std::vector<std::int32_t> brute_force_range(const std::vector<Point<DIM>>& pts,
                                            const Point<DIM>& q, float eps2) {
  std::vector<std::int32_t> result;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (within(q, pts[i], eps2)) result.push_back(static_cast<std::int32_t>(i));
  }
  return result;
}

TEST(Bvh, EmptyTreeHasNoHits) {
  Bvh<2> bvh(std::vector<Point2>{});
  EXPECT_EQ(bvh.size(), 0);
  int hits = 0;
  bvh.for_each_near(Point2{{0.0f, 0.0f}}, 1.0f, [&](std::int32_t, std::int32_t) {
    ++hits;
    return TraversalControl::kContinue;
  });
  EXPECT_EQ(hits, 0);
}

TEST(Bvh, SingleLeaf) {
  Bvh<2> bvh(std::vector<Point2>{{{1.0f, 1.0f}}});
  EXPECT_EQ(bvh.size(), 1);
  std::vector<std::int32_t> found;
  bvh.for_each_near(Point2{{1.0f, 1.2f}}, 0.05f, [&](std::int32_t, std::int32_t id) {
    found.push_back(id);
    return TraversalControl::kContinue;
  });
  EXPECT_EQ(found, std::vector<std::int32_t>{0});
  found.clear();
  bvh.for_each_near(Point2{{9.0f, 9.0f}}, 0.05f, [&](std::int32_t, std::int32_t id) {
    found.push_back(id);
    return TraversalControl::kContinue;
  });
  EXPECT_TRUE(found.empty());
}

TEST(Bvh, TwoLeaves) {
  std::vector<Point2> pts{{{0.0f, 0.0f}}, {{10.0f, 10.0f}}};
  Bvh<2> bvh(pts);
  std::vector<std::int32_t> found;
  bvh.for_each_near(Point2{{0.1f, 0.0f}}, 0.25f, [&](std::int32_t, std::int32_t id) {
    found.push_back(id);
    return TraversalControl::kContinue;
  });
  EXPECT_EQ(found, std::vector<std::int32_t>{0});
}

TEST(Bvh, HandlesAllIdenticalPoints) {
  // Every Morton code equal: the index-tiebreak path of the hierarchy
  // construction must still produce a valid tree.
  std::vector<Point2> pts(100, Point2{{0.5f, 0.5f}});
  Bvh<2> bvh(pts);
  int hits = 0;
  bvh.for_each_near(Point2{{0.5f, 0.5f}}, 0.01f, [&](std::int32_t, std::int32_t) {
    ++hits;
    return TraversalControl::kContinue;
  });
  EXPECT_EQ(hits, 100);
}

TEST(Bvh, SortedPositionsAreAPermutation) {
  auto pts = testing::random_points<2>(1000, 1.0f, 17);
  Bvh<2> bvh(pts);
  std::set<std::int32_t> ids;
  for (std::int32_t pos = 0; pos < bvh.size(); ++pos) {
    ids.insert(bvh.primitive_at(pos));
    EXPECT_EQ(bvh.position_of(bvh.primitive_at(pos)), pos);
  }
  EXPECT_EQ(ids.size(), pts.size());
}

TEST(Bvh, SceneBoundsCoverAllPrimitives) {
  auto pts = testing::random_points<3>(500, 4.0f, 3);
  Bvh<3> bvh(pts);
  for (const auto& p : pts) EXPECT_TRUE(bvh.scene_bounds().contains(p));
}

TEST(Bvh, BytesUsedIsPositiveAndLinear) {
  auto small = testing::random_points<2>(100, 1.0f, 5);
  auto large = testing::random_points<2>(1000, 1.0f, 5);
  Bvh<2> a(small), b(large);
  EXPECT_GT(a.bytes_used(), 0u);
  EXPECT_GT(b.bytes_used(), 5 * a.bytes_used());
  EXPECT_LT(b.bytes_used(), 20 * a.bytes_used());
}

TEST(Bvh, EarlyTerminationStopsTraversal) {
  std::vector<Point2> pts(50, Point2{{0.0f, 0.0f}});
  Bvh<2> bvh(pts);
  int hits = 0;
  bvh.for_each_near(Point2{{0.0f, 0.0f}}, 1.0f, [&](std::int32_t, std::int32_t) {
    ++hits;
    return hits >= 5 ? TraversalControl::kTerminate : TraversalControl::kContinue;
  });
  EXPECT_EQ(hits, 5);
}

TEST(Bvh, MixedBoxAndPointPrimitives) {
  // A fat box next to isolated points — the FDBSCAN-DenseBox setup.
  std::vector<Box2> prims;
  prims.push_back(Box2{{{0.0f, 0.0f}}, {{1.0f, 1.0f}}});  // box primitive
  prims.push_back(Box2{{{5.0f, 5.0f}}, {{5.0f, 5.0f}}});  // point primitive
  prims.push_back(Box2{{{1.4f, 0.5f}}, {{1.4f, 0.5f}}});
  Bvh<2> bvh(prims);
  std::vector<std::int32_t> found;
  // Query at (1.5, 0.5) with radius 0.5: touches the box (distance 0.5)
  // and the point at distance 0.1; misses (5,5).
  bvh.for_each_near(Point2{{1.5f, 0.5f}}, 0.25f, [&](std::int32_t, std::int32_t id) {
    found.push_back(id);
    return TraversalControl::kContinue;
  });
  std::sort(found.begin(), found.end());
  EXPECT_EQ(found, (std::vector<std::int32_t>{0, 2}));
}

struct RangeQueryParam {
  std::int64_t n;
  float extent;
  float eps;
  std::uint64_t seed;
  bool clustered;
};

class BvhRangeQuery : public ::testing::TestWithParam<RangeQueryParam> {};

TEST_P(BvhRangeQuery, MatchesBruteForce2D) {
  const auto param = GetParam();
  auto pts = param.clustered
                 ? testing::clustered_points<2>(param.n, 10, param.extent,
                                                param.eps, param.seed)
                 : testing::random_points<2>(param.n, param.extent, param.seed);
  Bvh<2> bvh(pts);
  const float eps2 = param.eps * param.eps;
  for (std::size_t q = 0; q < pts.size(); q += 7) {
    auto expected = brute_force_range(pts, pts[q], eps2);
    std::vector<std::int32_t> found;
    bvh.for_each_near(pts[q], eps2, [&](std::int32_t, std::int32_t id) {
      found.push_back(id);
      return TraversalControl::kContinue;
    });
    std::sort(found.begin(), found.end());
    ASSERT_EQ(found, expected) << "query " << q;
  }
}

TEST_P(BvhRangeQuery, MatchesBruteForce3D) {
  const auto param = GetParam();
  auto pts = testing::random_points<3>(param.n, param.extent, param.seed);
  Bvh<3> bvh(pts);
  const float eps2 = param.eps * param.eps;
  for (std::size_t q = 0; q < pts.size(); q += 13) {
    auto expected = brute_force_range(pts, pts[q], eps2);
    std::vector<std::int32_t> found;
    bvh.for_each_near(pts[q], eps2, [&](std::int32_t, std::int32_t id) {
      found.push_back(id);
      return TraversalControl::kContinue;
    });
    std::sort(found.begin(), found.end());
    ASSERT_EQ(found, expected) << "query " << q;
  }
}

TEST_P(BvhRangeQuery, MaskedTraversalVisitsEachPairExactlyOnce) {
  // The §4.1 half-traversal invariant: iterating all threads with mask
  // pos+1 enumerates each eps-close (i, j) pair exactly once, and the
  // union over threads equals the full pair set.
  const auto param = GetParam();
  auto pts = testing::random_points<2>(param.n, param.extent, param.seed);
  Bvh<2> bvh(pts);
  const float eps2 = param.eps * param.eps;
  std::set<std::pair<std::int32_t, std::int32_t>> seen;
  for (std::int32_t pos = 0; pos < bvh.size(); ++pos) {
    const std::int32_t x = bvh.primitive_at(pos);
    bvh.for_each_near(pts[static_cast<std::size_t>(x)], eps2, pos + 1,
                      [&](std::int32_t jpos, std::int32_t y) {
                        EXPECT_GT(jpos, pos);
                        auto key = std::minmax(x, y);
                        auto [it, fresh] = seen.insert({key.first, key.second});
                        EXPECT_TRUE(fresh)
                            << "pair (" << x << "," << y << ") seen twice";
                        return TraversalControl::kContinue;
                      });
  }
  // Reference pair set.
  std::size_t expected_pairs = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      expected_pairs += within(pts[i], pts[j], eps2);
    }
  }
  EXPECT_EQ(seen.size(), expected_pairs);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BvhRangeQuery,
    ::testing::Values(RangeQueryParam{2, 1.0f, 0.2f, 11, false},
                      RangeQueryParam{64, 1.0f, 0.1f, 12, false},
                      RangeQueryParam{500, 1.0f, 0.08f, 13, false},
                      RangeQueryParam{500, 1.0f, 0.02f, 14, true},
                      RangeQueryParam{1500, 2.0f, 0.05f, 15, false},
                      RangeQueryParam{1000, 1.0f, 2.5f, 16, false}));  // all-pairs

TEST(Bvh, ParallelBatchedQueriesAreSafe) {
  testing::ScopedThreads threads(8);
  auto pts = testing::random_points<2>(3000, 1.0f, 77);
  Bvh<2> bvh(pts);
  const float eps2 = 0.05f * 0.05f;
  std::vector<std::int32_t> counts(pts.size(), 0);
  exec::parallel_for(static_cast<std::int64_t>(pts.size()), [&](std::int64_t i) {
    std::int32_t c = 0;
    bvh.for_each_near(pts[static_cast<std::size_t>(i)], eps2,
                      [&](std::int32_t, std::int32_t) {
                        ++c;
                        return TraversalControl::kContinue;
                      });
    counts[static_cast<std::size_t>(i)] = c;
  });
  // Spot-check against brute force.
  for (std::size_t q = 0; q < pts.size(); q += 97) {
    EXPECT_EQ(counts[q],
              static_cast<std::int32_t>(
                  brute_force_range(pts, pts[q], eps2).size()));
  }
}

TEST(Bvh, BuildUnderConcurrencyIsDeterministic) {
  auto pts = testing::random_points<2>(5000, 1.0f, 123);
  testing::ScopedThreads single(1);
  Bvh<2> serial(pts);
  std::vector<std::int32_t> order_serial(static_cast<std::size_t>(serial.size()));
  for (std::int32_t i = 0; i < serial.size(); ++i) {
    order_serial[static_cast<std::size_t>(i)] = serial.primitive_at(i);
  }
  testing::ScopedThreads many(8);
  Bvh<2> parallel_tree(pts);
  for (std::int32_t i = 0; i < parallel_tree.size(); ++i) {
    ASSERT_EQ(parallel_tree.primitive_at(i),
              order_serial[static_cast<std::size_t>(i)]);
  }
}

}  // namespace
}  // namespace fdbscan
