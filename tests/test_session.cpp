// Streaming sessions through ClusterService (service/service.h §14):
// open/append/expire/query ordering and equivalence, the engine-pool Pin
// under eviction pressure, per-op deadlines and cancellation, the
// kTokenBusy admission guard, the RequestSpec/SubmitOptions shim, and
// the session capacity / invalid-session / failed-open error paths.
#include "service/service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/fdbscan.h"
#include "core/validate.h"
#include "data/generators.h"
#include "data/sliding_window.h"
#include "test_utils.h"

namespace fdbscan::service {
namespace {

using exec::CancelToken;

std::shared_ptr<const std::vector<Point2>> shared_slice(
    const std::vector<Point2>& points, std::int64_t lo, std::int64_t hi) {
  return std::make_shared<const std::vector<Point2>>(
      points.begin() + static_cast<std::ptrdiff_t>(lo),
      points.begin() + static_cast<std::ptrdiff_t>(hi));
}

// --- RequestSpec / SubmitOptions shim ------------------------------------

TEST(RequestSpecSubmit, SpecAndLegacyShimProduceTheSameResult) {
  ClusterService service(ServiceConfig{.dispatchers = 2});
  const auto points = std::make_shared<const std::vector<Point2>>(
      fdbscan::testing::clustered_points<2>(2000, 5, 1.0f, 0.02f, 3));
  RequestSpec spec;
  spec.params = Parameters{0.05f, 5};
  spec.method = Method::kFdbscan;
  auto via_spec = service.submit<2>("d", points, spec);
  SubmitOptions legacy;
  legacy.method = Method::kFdbscan;
  auto via_legacy =
      service.submit<2>("d", points, Parameters{0.05f, 5}, legacy);
  const ServiceResult a = via_spec.get();
  const ServiceResult b = via_legacy.get();
  ASSERT_TRUE(a.has_value()) << a.error().message;
  ASSERT_TRUE(b.has_value()) << b.error().message;
  EXPECT_EQ(a->num_clusters, b->num_clusters);
  EXPECT_EQ(a->labels, b->labels);
  EXPECT_EQ(a->is_core, b->is_core);
}

TEST(RequestSpecSubmit, SharedValidationRejectsBadScalars) {
  ClusterService service(ServiceConfig{.dispatchers = 1});
  const auto points = std::make_shared<const std::vector<Point2>>(
      fdbscan::testing::random_points<2>(10, 1.0f, 1));
  RequestSpec spec;
  spec.params = Parameters{-1.0f, 5};
  const ServiceResult r = service.submit<2>("d", points, spec).get();
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kInvalidEps);
  RequestSpec bad_shards;
  bad_shards.params = Parameters{0.05f, 5};
  bad_shards.shards = -2;
  const ServiceResult s = service.submit<2>("d", points, bad_shards).get();
  ASSERT_FALSE(s.has_value());
  EXPECT_EQ(s.error().code, ErrorCode::kInvalidShards);
}

// --- kTokenBusy ----------------------------------------------------------

TEST(TokenBusy, SharedTokenWithAnInFlightRequestIsRejected) {
  // One dispatcher + a large dataset: the first submit is still queued
  // or running when the second arrives sharing its token.
  ClusterService service(ServiceConfig{.dispatchers = 1});
  const auto points = std::make_shared<const std::vector<Point2>>(
      fdbscan::testing::clustered_points<2>(60000, 8, 1.0f, 0.01f, 7));
  auto token = std::make_shared<CancelToken>();
  RequestSpec spec;
  spec.params = Parameters{0.02f, 5};
  spec.token = token;
  auto first = service.submit<2>("big", points, spec);
  auto second = service.submit<2>("big", points, spec);
  const ServiceResult r2 = second.get();
  ASSERT_FALSE(r2.has_value());
  EXPECT_EQ(r2.error().code, ErrorCode::kTokenBusy);
  const ServiceResult r1 = first.get();
  EXPECT_TRUE(r1.has_value());
  // The token frees up once the first request resolved.
  auto third = service.submit<2>("big", points, spec);
  const ServiceResult r3 = third.get();
  EXPECT_TRUE(r3.has_value());
  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.rejected, 1);
}

TEST(TokenBusy, ErrorCodeNamesRoundTrip) {
  EXPECT_STREQ(error_code_name(ErrorCode::kTokenBusy), "TokenBusy");
  EXPECT_STREQ(error_code_name(ErrorCode::kInvalidSession), "InvalidSession");
  EXPECT_STREQ(error_code_name(ErrorCode::kSessionLimit), "SessionLimit");
}

// --- Session lifecycle and equivalence -----------------------------------

TEST(Session, SlidingWindowMatchesFromScratchThroughTheService) {
  ClusterService service(ServiceConfig{.dispatchers = 2});
  const auto arrivals = data::ngsim_like(2400, 5);
  const Parameters params{0.02f, 5};
  data::SlidingWindow<2> driver(arrivals, 900, 300);

  // Seed the session with the first batch.
  data::WindowStep<2> s0 = driver.next();
  RequestSpec spec;
  spec.params = params;
  auto opened = service.open_session<2>(
      "traj", std::make_shared<const std::vector<Point2>>(
                  s0.batch.begin(), s0.batch.end()),
      spec);
  ASSERT_TRUE(opened.has_value()) << opened.error().message;
  ClusterService::Session session = std::move(*opened);

  std::int64_t step = 0;
  while (!driver.done()) {
    const data::WindowStep<2> s = driver.next();
    auto expired = session.expire(s.expire_before);
    auto appended = session.append<2>(
        std::make_shared<const std::vector<Point2>>(s.batch.begin(),
                                                    s.batch.end()));
    auto queried = session.query();
    const SessionResult e = expired.get();
    ASSERT_TRUE(e.has_value()) << "step " << step << ": " << e.error().message;
    const SessionResult a = appended.get();
    ASSERT_TRUE(a.has_value()) << "step " << step << ": " << a.error().message;
    EXPECT_EQ(a->first_seq, s.first_seq);
    EXPECT_EQ(a->next_seq, s.first_seq + static_cast<std::int64_t>(
                                             s.batch.size()));
    EXPECT_EQ(a->live_points, s.live_count);
    const ServiceResult q = queried.get();
    ASSERT_TRUE(q.has_value()) << "step " << step << ": " << q.error().message;
    const std::vector<Point2> live = driver.live_points();
    const Clustering reference = fdbscan(live, params);
    const auto check = equivalent_clusterings(live, params, reference, *q);
    EXPECT_TRUE(check.ok) << "step " << step << ": " << check.message;
    ++step;
  }
  session.close();
  service.wait_idle();
  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.session_opened, 1);
  EXPECT_EQ(m.sessions_open, 0);
  EXPECT_EQ(m.session_appends, step);
  EXPECT_EQ(m.session_queries, step);
  EXPECT_GT(m.session_expires, 0);
  EXPECT_GT(m.session_rebuilds, 0);
}

TEST(Session, AppendsBelowThresholdReportZeroRebuilds) {
  ClusterService service(ServiceConfig{.dispatchers = 2});
  const auto points =
      fdbscan::testing::clustered_points<2>(4000, 6, 1.0f, 0.02f, 11);
  RequestSpec spec;
  spec.params = Parameters{0.05f, 5};
  auto opened =
      service.open_session<2>("warm", shared_slice(points, 0, 3600), spec);
  ASSERT_TRUE(opened.has_value());
  ClusterService::Session session = std::move(*opened);
  const ServiceResult first = session.query().get();
  ASSERT_TRUE(first.has_value()) << first.error().message;
  EXPECT_EQ(first->timings.index_rebuilds, 1);  // the lazy initial build
  for (std::int64_t lo = 3600; lo < 4000; lo += 100) {
    const SessionResult a =
        session.append<2>(shared_slice(points, lo, lo + 100)).get();
    ASSERT_TRUE(a.has_value()) << a.error().message;
    EXPECT_EQ(a->rebuilds, 1);  // still only the initial build
    const ServiceResult q = session.query().get();
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->timings.index_rebuilds, 0) << "append at " << lo;
  }
  session.close();
  service.wait_idle();
  EXPECT_EQ(service.metrics().session_rebuilds, 1);
}

TEST(Session, QueryObservesExactlyThePrecedingMutations) {
  // Interleave without waiting: ops of one session must apply in
  // submission order even with several dispatchers racing to pick them
  // up, so each query sees a well-defined prefix of the mutation stream.
  ClusterService service(ServiceConfig{.dispatchers = 4});
  const auto points =
      fdbscan::testing::random_points<2>(1200, 1.0f, 13);
  RequestSpec spec;
  spec.params = Parameters{0.05f, 3};
  auto opened =
      service.open_session<2>("order", shared_slice(points, 0, 400), spec);
  ASSERT_TRUE(opened.has_value());
  ClusterService::Session session = std::move(*opened);
  std::vector<std::future<ServiceResult>> queries;
  std::vector<std::int64_t> expected_sizes;
  std::int64_t live = 400;
  for (std::int64_t lo = 400; lo < 1200; lo += 200) {
    auto appended = session.append<2>(shared_slice(points, lo, lo + 200));
    (void)appended;
    live += 200;
    expected_sizes.push_back(live);
    queries.push_back(session.query());
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const ServiceResult q = queries[i].get();
    ASSERT_TRUE(q.has_value()) << q.error().message;
    EXPECT_EQ(static_cast<std::int64_t>(q->labels.size()), expected_sizes[i])
        << "query " << i;
  }
  session.close();
}

// --- Pin under eviction pressure -----------------------------------------

TEST(Session, PinKeepsTheEngineResidentUnderEvictionPressure) {
  ClusterService service(
      ServiceConfig{.dispatchers = 2, .engine_capacity = 1});
  const auto points =
      fdbscan::testing::clustered_points<2>(1500, 4, 1.0f, 0.02f, 17);
  RequestSpec spec;
  spec.params = Parameters{0.05f, 5};
  auto opened = service.open_session<2>("pinned",
                                        shared_slice(points, 0, 1000), spec);
  ASSERT_TRUE(opened.has_value());
  ClusterService::Session session = std::move(*opened);
  const ServiceResult before = session.query().get();
  ASSERT_TRUE(before.has_value()) << before.error().message;

  // Churn the capacity-1 pool with other datasets: without the Pin the
  // LRU would evict the session's entry.
  const auto churn = std::make_shared<const std::vector<Point2>>(
      fdbscan::testing::random_points<2>(500, 1.0f, 19));
  for (int i = 0; i < 4; ++i) {
    RequestSpec one_shot;
    one_shot.params = Parameters{0.05f, 5};
    const ServiceResult r =
        service.submit<2>("churn-" + std::to_string(i), churn, one_shot)
            .get();
    ASSERT_TRUE(r.has_value());
  }
  const EnginePoolStats pressured = service.pool_stats();
  EXPECT_EQ(pressured.pinned, 1);
  EXPECT_GE(pressured.engines, 1);

  // The session keeps working and matches a from-scratch run.
  const SessionResult a =
      session.append<2>(shared_slice(points, 1000, 1500)).get();
  ASSERT_TRUE(a.has_value()) << a.error().message;
  const ServiceResult after = session.query().get();
  ASSERT_TRUE(after.has_value()) << after.error().message;
  const Parameters params{0.05f, 5};
  const Clustering reference = fdbscan(points, params);
  const auto check = equivalent_clusterings(points, params, reference, *after);
  EXPECT_TRUE(check.ok) << check.message;

  // Closing releases the Pin; the next churn shrinks the pool back. The
  // dispatcher drops its Request (and the last SessionState reference)
  // just after wait_idle() can return, so poll for the release.
  session.close();
  service.wait_idle();
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (service.pool_stats().pinned != 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  RequestSpec one_shot;
  one_shot.params = Parameters{0.05f, 5};
  ASSERT_TRUE(service.submit<2>("churn-final", churn, one_shot).get()
                  .has_value());
  const EnginePoolStats released = service.pool_stats();
  EXPECT_EQ(released.pinned, 0);
  EXPECT_EQ(released.engines, 1);
}

// --- Deadlines and cancellation ------------------------------------------

TEST(Session, NonPositiveDeadlineFailsFastWithoutMutating) {
  ClusterService service(ServiceConfig{.dispatchers = 1});
  const auto points =
      fdbscan::testing::random_points<2>(600, 1.0f, 23);
  RequestSpec spec;
  spec.params = Parameters{0.05f, 3};
  auto opened =
      service.open_session<2>("dl", shared_slice(points, 0, 300), spec);
  ASSERT_TRUE(opened.has_value());
  ClusterService::Session session = std::move(*opened);
  const SessionResult a =
      session.append<2>(shared_slice(points, 300, 600), 0.0).get();
  ASSERT_FALSE(a.has_value());
  EXPECT_EQ(a.error().code, ErrorCode::kDeadlineExceeded);
  const ServiceResult q = session.query().get();
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->labels.size(), 300u);  // the failed append mutated nothing
  session.close();
}

TEST(Session, RaisedTokenCancelsAQueuedOpAndTheSessionSurvives) {
  ClusterService service(ServiceConfig{.dispatchers = 1});
  const auto points =
      fdbscan::testing::random_points<2>(900, 1.0f, 29);
  RequestSpec spec;
  spec.params = Parameters{0.05f, 3};
  auto opened =
      service.open_session<2>("cancel", shared_slice(points, 0, 300), spec);
  ASSERT_TRUE(opened.has_value());
  ClusterService::Session session = std::move(*opened);
  auto token = std::make_shared<CancelToken>();
  token->request_cancel(exec::CancelReason::kCancelled);
  const SessionResult a = session
                              .append<2>(shared_slice(points, 300, 600),
                                         kNoDeadline, token)
                              .get();
  ASSERT_FALSE(a.has_value());
  EXPECT_EQ(a.error().code, ErrorCode::kCancelled);
  // The turnstile skipped the cancelled ticket: later ops still run.
  const SessionResult b =
      session.append<2>(shared_slice(points, 600, 900)).get();
  ASSERT_TRUE(b.has_value()) << b.error().message;
  EXPECT_EQ(b->live_points, 600);
  const ServiceResult q = session.query().get();
  ASSERT_TRUE(q.has_value()) << q.error().message;
  EXPECT_EQ(q->labels.size(), 600u);
  session.close();
}

TEST(Session, PerOpDeadlineAppliesToAppendMidFlight) {
  // A large append under a short deadline: the watchdog raises the op's
  // token mid-absorb (or while queued). Either the deadline fired — the
  // batch rolled back — or the append beat the clock; both leave the
  // session consistent, which the follow-up query proves.
  ClusterService service(ServiceConfig{.dispatchers = 1});
  const auto points =
      fdbscan::testing::clustered_points<2>(40000, 8, 1.0f, 0.01f, 31);
  RequestSpec spec;
  spec.params = Parameters{0.02f, 5};
  auto opened =
      service.open_session<2>("mid", shared_slice(points, 0, 4000), spec);
  ASSERT_TRUE(opened.has_value());
  ClusterService::Session session = std::move(*opened);
  ASSERT_TRUE(session.query().get().has_value());
  const SessionResult a =
      session.append<2>(shared_slice(points, 4000, 40000), 5.0).get();
  std::int64_t expected = 36000 + 4000;
  if (!a.has_value()) {
    EXPECT_EQ(a.error().code, ErrorCode::kDeadlineExceeded);
    expected = 4000;  // rolled back
  }
  const ServiceResult q = session.query().get();
  ASSERT_TRUE(q.has_value()) << q.error().message;
  EXPECT_EQ(static_cast<std::int64_t>(q->labels.size()), expected);
  session.close();
}

// --- Error paths ---------------------------------------------------------

TEST(Session, CapacityLimitRejectsTheNextOpen) {
  ClusterService service(
      ServiceConfig{.dispatchers = 1, .session_capacity = 1});
  const auto points = std::make_shared<const std::vector<Point2>>(
      fdbscan::testing::random_points<2>(100, 1.0f, 37));
  RequestSpec spec;
  spec.params = Parameters{0.05f, 3};
  auto first = service.open_session<2>("a", points, spec);
  ASSERT_TRUE(first.has_value());
  auto second = service.open_session<2>("b", points, spec);
  ASSERT_FALSE(second.has_value());
  EXPECT_EQ(second.error().code, ErrorCode::kSessionLimit);
  first->close();
  auto third = service.open_session<2>("c", points, spec);
  EXPECT_TRUE(third.has_value());
}

TEST(Session, ClosedOrEmptyHandlesRejectWithInvalidSession) {
  ClusterService service(ServiceConfig{.dispatchers = 1});
  const auto points = std::make_shared<const std::vector<Point2>>(
      fdbscan::testing::random_points<2>(100, 1.0f, 41));
  RequestSpec spec;
  spec.params = Parameters{0.05f, 3};
  auto opened = service.open_session<2>("x", points, spec);
  ASSERT_TRUE(opened.has_value());
  ClusterService::Session session = std::move(*opened);
  session.close();
  const SessionResult a = session.append<2>(points).get();
  ASSERT_FALSE(a.has_value());
  EXPECT_EQ(a.error().code, ErrorCode::kInvalidSession);
  ClusterService::Session empty;
  const ServiceResult q = empty.query().get();
  ASSERT_FALSE(q.has_value());
  EXPECT_EQ(q.error().code, ErrorCode::kInvalidSession);
}

TEST(Session, AppendDimensionMismatchIsRejected) {
  ClusterService service(ServiceConfig{.dispatchers = 1});
  const auto points2 = std::make_shared<const std::vector<Point2>>(
      fdbscan::testing::random_points<2>(100, 1.0f, 43));
  RequestSpec spec;
  spec.params = Parameters{0.05f, 3};
  auto opened = service.open_session<2>("dims", points2, spec);
  ASSERT_TRUE(opened.has_value());
  ClusterService::Session session = std::move(*opened);
  const auto points3 = std::make_shared<const std::vector<Point3>>(
      fdbscan::testing::random_points<3>(100, 1.0f, 43));
  const SessionResult a = session.append<3>(points3).get();
  ASSERT_FALSE(a.has_value());
  EXPECT_EQ(a.error().code, ErrorCode::kInvalidSession);
  session.close();
}

TEST(Session, ShardedSpecIsRejectedAtOpen) {
  ClusterService service(ServiceConfig{.dispatchers = 1});
  const auto points = std::make_shared<const std::vector<Point2>>(
      fdbscan::testing::random_points<2>(100, 1.0f, 47));
  RequestSpec spec;
  spec.params = Parameters{0.05f, 3};
  spec.shards = 4;
  auto opened = service.open_session<2>("sharded", points, spec);
  ASSERT_FALSE(opened.has_value());
  EXPECT_EQ(opened.error().code, ErrorCode::kInvalidShards);
}

TEST(Session, FailedOpenSurfacesOnEveryLaterOp) {
  ClusterService service(ServiceConfig{.dispatchers = 1});
  auto bad = std::make_shared<std::vector<Point2>>(
      fdbscan::testing::random_points<2>(100, 1.0f, 53));
  (*bad)[50][0] = std::numeric_limits<float>::quiet_NaN();
  RequestSpec spec;
  spec.params = Parameters{0.05f, 3};
  auto opened = service.open_session<2>(
      "bad", std::shared_ptr<const std::vector<Point2>>(bad), spec);
  ASSERT_TRUE(opened.has_value());  // failure surfaces asynchronously
  ClusterService::Session session = std::move(*opened);
  const ServiceResult q = session.query().get();
  ASSERT_FALSE(q.has_value());
  EXPECT_EQ(q.error().code, ErrorCode::kNonFinitePoint);
  const SessionResult a = session
                              .append<2>(std::make_shared<
                                         const std::vector<Point2>>(
                                  fdbscan::testing::random_points<2>(10, 1.0f,
                                                                     59)))
                              .get();
  ASSERT_FALSE(a.has_value());
  EXPECT_EQ(a.error().code, ErrorCode::kNonFinitePoint);
  session.close();
}

TEST(Session, CancelledOpenPoisonsTheSessionForEveryLaterOp) {
  // The spec's token governs the open op; pre-raising it makes the open
  // unwind by exception on the dispatcher, leaving the session's stream
  // and accessors null. Every later op must surface the open's error —
  // not call through the null pointers.
  ClusterService service(ServiceConfig{.dispatchers = 1});
  const auto points = std::make_shared<const std::vector<Point2>>(
      fdbscan::testing::random_points<2>(400, 1.0f, 61));
  auto token = std::make_shared<CancelToken>();
  token->request_cancel(exec::CancelReason::kCancelled);
  RequestSpec spec;
  spec.params = Parameters{0.05f, 3};
  spec.token = token;
  auto opened = service.open_session<2>("poisoned", points, spec);
  ASSERT_TRUE(opened.has_value());  // failure surfaces asynchronously
  ClusterService::Session session = std::move(*opened);
  const SessionResult a = session.append<2>(points).get();
  ASSERT_FALSE(a.has_value());
  EXPECT_EQ(a.error().code, ErrorCode::kCancelled);
  const SessionResult e = session.expire(100).get();
  ASSERT_FALSE(e.has_value());
  EXPECT_EQ(e.error().code, ErrorCode::kCancelled);
  const ServiceResult q = session.query().get();
  ASSERT_FALSE(q.has_value());
  EXPECT_EQ(q.error().code, ErrorCode::kCancelled);
  session.close();
}

TEST(Session, NonFiniteBatchIsRejectedWithoutMutating) {
  ClusterService service(ServiceConfig{.dispatchers = 1});
  const auto points = std::make_shared<const std::vector<Point2>>(
      fdbscan::testing::random_points<2>(200, 1.0f, 61));
  RequestSpec spec;
  spec.params = Parameters{0.05f, 3};
  auto opened = service.open_session<2>("batch", points, spec);
  ASSERT_TRUE(opened.has_value());
  ClusterService::Session session = std::move(*opened);
  auto bad = std::make_shared<std::vector<Point2>>(
      fdbscan::testing::random_points<2>(50, 1.0f, 67));
  (*bad)[25][1] = std::numeric_limits<float>::infinity();
  const SessionResult a =
      session.append<2>(std::shared_ptr<const std::vector<Point2>>(bad))
          .get();
  ASSERT_FALSE(a.has_value());
  EXPECT_EQ(a.error().code, ErrorCode::kNonFinitePoint);
  const ServiceResult q = session.query().get();
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->labels.size(), 200u);
  session.close();
}

// --- Telemetry -----------------------------------------------------------

TEST(Session, SnapshotSerializersCarryTheSessionFamilies) {
  ClusterService service(ServiceConfig{.dispatchers = 1});
  const auto points = std::make_shared<const std::vector<Point2>>(
      fdbscan::testing::random_points<2>(200, 1.0f, 71));
  RequestSpec spec;
  spec.params = Parameters{0.05f, 3};
  auto opened = service.open_session<2>("telemetry", points, spec);
  ASSERT_TRUE(opened.has_value());
  ClusterService::Session session = std::move(*opened);
  ASSERT_TRUE(session.query().get().has_value());
  const ServiceSnapshot snap = service.snapshot();
  EXPECT_EQ(snap.metrics.sessions_open, 1);
  EXPECT_EQ(snap.metrics.session_opened, 1);
  EXPECT_EQ(snap.metrics.session_queries, 1);
  const std::string prom = to_prometheus_text(snap);
  EXPECT_NE(prom.find("fdbscan_service_sessions_open"), std::string::npos);
  EXPECT_NE(prom.find("fdbscan_service_session_opened_total"),
            std::string::npos);
  EXPECT_NE(prom.find("session_capacity="), std::string::npos);
  const std::string json = to_json(snap);
  EXPECT_NE(json.find("\"session_capacity\":"), std::string::npos);
  session.close();
}

}  // namespace
}  // namespace fdbscan::service
