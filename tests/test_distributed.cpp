#include "distributed/distributed_dbscan.h"

#include <gtest/gtest.h>

#include "core/fdbscan.h"
#include "core/validate.h"
#include "data/generators.h"
#include "test_utils.h"

namespace fdbscan::distributed {
namespace {

template <int DIM>
DistributedConfig<DIM> make_config(std::initializer_list<std::int32_t> dims) {
  DistributedConfig<DIM> config;
  int d = 0;
  for (auto v : dims) config.ranks_per_dim[d++] = v;
  return config;
}

struct DistCase {
  std::int32_t rx, ry;
  std::int64_t n;
  float eps;
  std::int32_t minpts;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const DistCase& c) {
    return os << c.rx << "x" << c.ry << " n=" << c.n << " eps=" << c.eps
              << " minpts=" << c.minpts << " seed=" << c.seed;
  }
};

class DistributedGroundTruth : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributedGroundTruth, MatchesBruteForce) {
  const auto c = GetParam();
  auto points = testing::clustered_points<2>(c.n, 5, 1.0f, c.eps, c.seed);
  const Parameters params{c.eps, c.minpts};
  const auto result =
      distributed_dbscan(points, params, make_config<2>({c.rx, c.ry}));
  const auto check = matches_ground_truth(points, params, result.clustering);
  EXPECT_TRUE(check.ok) << check.message;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistributedGroundTruth,
    ::testing::Values(DistCase{1, 1, 500, 0.02f, 5, 501},
                      DistCase{2, 2, 500, 0.02f, 5, 502},
                      DistCase{4, 1, 500, 0.02f, 5, 503},
                      DistCase{3, 3, 800, 0.03f, 8, 504},
                      DistCase{2, 2, 600, 0.02f, 2, 505},   // FoF path
                      DistCase{2, 3, 600, 0.05f, 1, 506},   // minpts=1
                      DistCase{5, 5, 1000, 0.01f, 4, 507},  // many tiny ranks
                      DistCase{2, 2, 400, 0.5f, 10, 508}));  // huge halos

TEST(Distributed, AgreesWithLocalFdbscanOnEveryDataset) {
  const Parameters params{0.01f, 10};
  for (auto points : {data::ngsim_like(3000, 511),
                      data::porto_taxi_like(3000, 512),
                      data::road_network_like(3000, 513)}) {
    const auto local = fdbscan(points, params);
    const auto dist =
        distributed_dbscan(points, params, make_config<2>({2, 2}));
    const auto check =
        equivalent_clusterings(points, params, local, dist.clustering);
    EXPECT_TRUE(check.ok) << check.message;
  }
}

TEST(Distributed, ThreeDimensionalDecomposition) {
  auto points = data::hacc_like(4000, 514);
  const Parameters params{0.5f, 5};
  const auto local = fdbscan(points, params);
  const auto dist =
      distributed_dbscan(points, params, make_config<3>({2, 2, 2}));
  const auto check =
      equivalent_clusterings(points, params, local, dist.clustering);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(Distributed, RankStatsPartitionThePoints) {
  auto points = testing::random_points<2>(2000, 1.0f, 515);
  const auto result = distributed_dbscan(points, Parameters{0.05f, 5},
                                         make_config<2>({3, 2}));
  ASSERT_EQ(result.ranks.size(), 6u);
  std::int64_t owned = 0;
  for (const auto& r : result.ranks) {
    owned += r.owned;
    EXPECT_GE(r.ghosts, 0);
  }
  EXPECT_EQ(owned, 2000);
  EXPECT_GT(result.total_ghosts(), 0);
}

TEST(Distributed, GhostsShrinkWithEps) {
  auto points = testing::random_points<2>(3000, 1.0f, 516);
  const auto wide = distributed_dbscan(points, Parameters{0.1f, 5},
                                       make_config<2>({2, 2}));
  const auto narrow = distributed_dbscan(points, Parameters{0.01f, 5},
                                         make_config<2>({2, 2}));
  EXPECT_GT(wide.total_ghosts(), narrow.total_ghosts());
}

TEST(Distributed, SingleRankHasNoGhostsOrCrossEdges) {
  auto points = testing::random_points<2>(1000, 1.0f, 517);
  const auto result = distributed_dbscan(points, Parameters{0.05f, 5},
                                         make_config<2>({1, 1}));
  EXPECT_EQ(result.total_ghosts(), 0);
  EXPECT_EQ(result.ranks[0].cross_rank_edges, 0);
}

TEST(Distributed, CrossRankClustersAreStitched) {
  // A single tight cluster straddling the 2x1 rank boundary must come
  // out as one cluster, with cross-rank edges reported.
  std::vector<Point2> points;
  for (int i = 0; i < 200; ++i) {
    points.push_back({{0.5f + 0.0005f * static_cast<float>(i - 100), 0.5f}});
  }
  // Anchor points so the domain split at x=0.5 cuts the cluster.
  points.push_back({{0.0f, 0.0f}});
  points.push_back({{1.0f, 1.0f}});
  const auto result = distributed_dbscan(points, Parameters{0.01f, 5},
                                         make_config<2>({2, 1}));
  EXPECT_EQ(result.clustering.num_clusters, 1);
  std::int64_t cross = 0;
  for (const auto& r : result.ranks) cross += r.cross_rank_edges;
  EXPECT_GT(cross, 0);
}

TEST(Distributed, EmptyInput) {
  std::vector<Point2> points;
  const auto result = distributed_dbscan(points, Parameters{0.1f, 5},
                                         make_config<2>({2, 2}));
  EXPECT_TRUE(result.clustering.labels.empty());
}

// Satellite: the distributed path reports real traversal work counters,
// and — like the local algorithms — bit-equal ones at any worker count.
TEST(Distributed, WorkCountersReportedAndWorkerInvariant) {
  auto points = testing::clustered_points<2>(1500, 5, 1.0f, 0.02f, 520);
  const Parameters params{0.03f, 8};
  std::int64_t dist_comps = -1;
  std::int64_t nodes_visited = -1;
  for (int workers : {1, 8}) {
    testing::ScopedThreads threads(workers);
    const auto result =
        distributed_dbscan(points, params, make_config<2>({2, 2}));
    EXPECT_GT(result.clustering.distance_computations, 0);
    EXPECT_GT(result.clustering.index_nodes_visited, 0);
    if (dist_comps < 0) {
      dist_comps = result.clustering.distance_computations;
      nodes_visited = result.clustering.index_nodes_visited;
    } else {
      EXPECT_EQ(result.clustering.distance_computations, dist_comps);
      EXPECT_EQ(result.clustering.index_nodes_visited, nodes_visited);
    }
  }
}

// Satellite: each rank builds its local BVH exactly once (it used to be
// rebuilt by both phases), and only ranks that own points build one.
TEST(Distributed, IndexBuiltOncePerRankWithOwnedPoints) {
  auto points = testing::random_points<2>(2000, 1.0f, 521);
  const auto result = distributed_dbscan(points, Parameters{0.05f, 5},
                                         make_config<2>({3, 2}));
  for (const auto& r : result.ranks) {
    EXPECT_EQ(r.index_builds, r.owned > 0 ? 1 : 0);
  }
  EXPECT_GT(result.clustering.timings.index_construction, 0.0);
}

TEST(Distributed, RejectsNonPositiveRankGrid) {
  auto points = testing::random_points<2>(10, 1.0f, 518);
  auto config = make_config<2>({0, 2});
  EXPECT_THROW(distributed_dbscan(points, Parameters{0.1f, 5}, config),
               std::invalid_argument);
}

TEST(Distributed, DbscanStarVariant) {
  auto points = testing::clustered_points<2>(800, 4, 1.0f, 0.015f, 519);
  const Parameters params{0.015f, 8};
  Options options;
  options.variant = Variant::kDbscanStar;
  const auto result = distributed_dbscan(points, params,
                                         make_config<2>({2, 2}), options);
  const auto check = matches_ground_truth(points, params, result.clustering,
                                          Variant::kDbscanStar);
  EXPECT_TRUE(check.ok) << check.message;
}

}  // namespace
}  // namespace fdbscan::distributed
