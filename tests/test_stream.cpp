// StreamingEngine (stream/streaming_engine.h): label equivalence of the
// incremental insert/expire path against from-scratch runs on the same
// logical point set, rebuild amortization (appends below the threshold
// leave index_rebuilds at zero), lazy expiry, sequence-number stability
// across rebuilds, and cancellation rollback.
#include "stream/streaming_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/fdbscan.h"
#include "core/fdbscan_densebox.h"
#include "core/validate.h"
#include "data/generators.h"
#include "data/sliding_window.h"
#include "exec/cancel.h"
#include "test_utils.h"

namespace fdbscan::stream {
namespace {

using fdbscan::testing::ScopedThreads;

/// Checks one streaming query against BOTH from-scratch algorithms on
/// the same live point set. Core flags are algorithm-independent, so
/// the streaming result must be equivalent to each (bit-identical core
/// flags, bijective core partition, witnessed borders).
template <int DIM>
void expect_equivalent(const std::vector<Point<DIM>>& live,
                       const Parameters& params, const Options& options,
                       const Clustering& streamed, const char* where) {
  const Clustering ref_fd = fdbscan(live, params, options);
  const auto check_fd =
      equivalent_clusterings(live, params, ref_fd, streamed, options.variant);
  EXPECT_TRUE(check_fd.ok) << where << " vs fdbscan: " << check_fd.message;
  const Clustering ref_db = fdbscan_densebox(live, params, options);
  const auto check_db =
      equivalent_clusterings(live, params, ref_db, streamed, options.variant);
  EXPECT_TRUE(check_db.ok) << where << " vs densebox: " << check_db.message;
}

/// Replays a sliding window through a StreamingEngine, checking every
/// step's query for equivalence. Returns the engine's final counters.
template <int DIM>
StreamCounters replay_and_check(const std::vector<Point<DIM>>& arrivals,
                                std::int64_t window, std::int64_t batch,
                                const Parameters& params,
                                const Options& options,
                                const StreamConfig& config = {}) {
  data::SlidingWindow<DIM> driver(arrivals, window, batch);
  StreamingEngine<DIM> engine(params, options, config);
  std::int64_t step = 0;
  while (!driver.done()) {
    const data::WindowStep<DIM> s = driver.next();
    (void)engine.expire(s.expire_before);
    const std::int64_t first = engine.insert(s.batch);
    EXPECT_EQ(first, s.first_seq) << "step " << step;
    EXPECT_EQ(engine.size(), s.live_count) << "step " << step;
    EXPECT_EQ(engine.first_live_seq(), s.expire_before) << "step " << step;
    const std::vector<Point<DIM>> live = driver.live_points();
    const Clustering streamed = engine.query();
    const std::string where = "step " + std::to_string(step);
    expect_equivalent(live, params, options, streamed, where.c_str());
    ++step;
  }
  return engine.counters();
}

// --- Equivalence sweep: worker counts x dimensions x variants ------------

class StreamEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(StreamEquivalence, SlidingWindow2dMatchesFromScratch) {
  ScopedThreads threads(GetParam());
  const auto arrivals = data::ngsim_like(2400, 7);
  const StreamCounters c = replay_and_check<2>(
      arrivals, /*window=*/900, /*batch=*/300, Parameters{0.02f, 5}, {});
  EXPECT_GT(c.inserts, 0);
  EXPECT_GT(c.expires, 0);
}

TEST_P(StreamEquivalence, SlidingWindow3dMatchesFromScratch) {
  ScopedThreads threads(GetParam());
  const auto arrivals = data::hacc_like(1600, 11);
  const StreamCounters c = replay_and_check<3>(
      arrivals, /*window=*/700, /*batch=*/200, Parameters{0.035f, 4}, {});
  EXPECT_GT(c.inserts, 0);
  EXPECT_GT(c.expires, 0);
}

TEST_P(StreamEquivalence, AppendOnlyGrowthMatchesFromScratch) {
  // No expiry: every insert is absorbed incrementally once the first
  // query establishes the union-find, so this sweep exercises the
  // three-pass absorb (count / flip / resolve) at every worker count.
  ScopedThreads threads(GetParam());
  const auto arrivals =
      fdbscan::testing::clustered_points<2>(2000, 6, 1.0f, 0.02f, 21);
  Parameters params{0.05f, 5};
  StreamingEngine<2> engine(
      std::vector<Point2>(arrivals.begin(), arrivals.begin() + 800), params);
  (void)engine.query();  // establishes incremental state
  std::vector<Point2> live(arrivals.begin(), arrivals.begin() + 800);
  std::int64_t cursor = 800;
  while (cursor < static_cast<std::int64_t>(arrivals.size())) {
    const std::int64_t k =
        std::min<std::int64_t>(150, arrivals.size() - cursor);
    const std::span<const Point2> batch(arrivals.data() + cursor,
                                        static_cast<std::size_t>(k));
    (void)engine.insert(batch);
    live.insert(live.end(), batch.begin(), batch.end());
    cursor += k;
    const Clustering streamed = engine.query();
    expect_equivalent(live, params, Options{}, streamed, "append-only");
  }
  EXPECT_GT(engine.counters().incremental_inserts, 0);
  EXPECT_GT(engine.counters().refinalized_queries, 0);
}

INSTANTIATE_TEST_SUITE_P(Workers, StreamEquivalence,
                         ::testing::Values(1, 2, 8));

// --- Variants and parameter edge cases -----------------------------------

TEST(StreamingEngine, DbscanStarVariantMatchesFromScratch) {
  const auto arrivals = data::porto_taxi_like(1500, 3);
  Options options;
  options.variant = Variant::kDbscanStar;
  (void)replay_and_check<2>(arrivals, 600, 200, Parameters{0.02f, 5},
                            options);
}

TEST(StreamingEngine, MinptsOneAllCore) {
  const auto arrivals =
      fdbscan::testing::random_points<2>(600, 1.0f, 5);
  const StreamCounters c = replay_and_check<2>(arrivals, 250, 100,
                                               Parameters{0.05f, 1}, {});
  EXPECT_GT(c.queries, 0);
}

TEST(StreamingEngine, MinptsTwoIncrementalFlips) {
  // minpts == 2 exercises the no-reprocess flip shortcut: a point that
  // crosses the threshold owes all its edges to the batch itself.
  const auto arrivals =
      fdbscan::testing::clustered_points<2>(1200, 5, 1.0f, 0.02f, 9);
  const StreamCounters c = replay_and_check<2>(arrivals, 500, 150,
                                               Parameters{0.04f, 2}, {});
  EXPECT_GT(c.queries, 0);
}

TEST(StreamingEngine, EarlyExitDisabledMatches) {
  const auto arrivals = data::road_network_like(1200, 13);
  Options options;
  options.early_exit = false;
  (void)replay_and_check<2>(arrivals, 500, 150, Parameters{0.02f, 4},
                            options);
}

// --- Rebuild amortization ------------------------------------------------

TEST(StreamingEngine, AppendsBelowThresholdNeverRebuild) {
  const auto points =
      fdbscan::testing::clustered_points<2>(4000, 6, 1.0f, 0.02f, 17);
  Parameters params{0.05f, 5};
  StreamingEngine<2> engine(
      std::vector<Point2>(points.begin(), points.begin() + 3600), params);
  Clustering first = engine.query();
  EXPECT_EQ(first.timings.index_rebuilds, 1);  // the lazy initial build
  std::int64_t cursor = 3600;
  while (cursor < 4000) {  // 400 appended points < 25% of 3600
    const std::span<const Point2> batch(points.data() + cursor, 50);
    (void)engine.insert(batch);
    cursor += 50;
    const Clustering q = engine.query();
    EXPECT_EQ(q.timings.index_rebuilds, 0) << "cursor " << cursor;
  }
  const StreamCounters c = engine.counters();
  EXPECT_EQ(c.index_rebuilds, 1);
  EXPECT_EQ(c.incremental_inserts, 8);
  EXPECT_EQ(c.full_refreshes, 1);
  EXPECT_EQ(c.refinalized_queries, 8);
}

TEST(StreamingEngine, CrossingTheThresholdRebuildsOnce) {
  const auto points =
      fdbscan::testing::clustered_points<2>(2000, 4, 1.0f, 0.02f, 19);
  Parameters params{0.05f, 5};
  StreamConfig config;
  config.rebuild_fraction = 0.25f;
  StreamingEngine<2> engine(
      std::vector<Point2>(points.begin(), points.begin() + 1000), params,
      Options{}, config);
  (void)engine.query();
  // One batch of 400 > 25% of the 1000 live points: rebuild at insert.
  (void)engine.insert(
      std::span<const Point2>(points.data() + 1000, 400));
  EXPECT_EQ(engine.counters().index_rebuilds, 2);
  const Clustering q = engine.query();
  EXPECT_EQ(q.timings.index_rebuilds, 1);
  // The rebuild folded the delta into the base; ids survived, so the
  // query after a pure-insert rebuild is still a cheap re-finalize.
  EXPECT_EQ(engine.counters().refinalized_queries, 1);
  // A refinalized query reports the probe work of the inserts it serves.
  EXPECT_GT(q.distance_computations, 0);
  expect_equivalent(
      std::vector<Point2>(points.begin(), points.begin() + 1400), params,
      Options{}, q, "post-rebuild");
}

TEST(StreamingEngine, ExpireInvalidatesIncrementalState) {
  const auto points =
      fdbscan::testing::clustered_points<2>(1500, 4, 1.0f, 0.02f, 23);
  Parameters params{0.05f, 5};
  StreamingEngine<2> engine(std::vector<Point2>(points), params);
  (void)engine.query();
  EXPECT_EQ(engine.expire(100), 100);  // below threshold: lazy, no rebuild
  EXPECT_EQ(engine.counters().index_rebuilds, 1);
  EXPECT_EQ(engine.first_live_seq(), 100);
  const Clustering q = engine.query();
  expect_equivalent(
      std::vector<Point2>(points.begin() + 100, points.end()), params,
      Options{}, q, "post-expire");
  EXPECT_EQ(engine.counters().full_refreshes, 2);  // expiry forced a refresh
  // Expiring most of the stream trips the threshold: dead prefix > 25%.
  (void)engine.expire(1200);
  EXPECT_EQ(engine.counters().index_rebuilds, 2);
  EXPECT_EQ(engine.size(), 300);
  expect_equivalent(
      std::vector<Point2>(points.begin() + 1200, points.end()), params,
      Options{}, engine.query(), "post-rebuild-expire");
}

// --- Sequence-number bookkeeping -----------------------------------------

TEST(StreamingEngine, SequenceNumbersSurviveRebuilds) {
  const auto points =
      fdbscan::testing::random_points<2>(900, 1.0f, 29);
  StreamingEngine<2> engine(Parameters{0.05f, 3});
  EXPECT_EQ(engine.next_seq(), 0);
  EXPECT_EQ(engine.insert(
                std::span<const Point2>(points.data(), 300)),
            0);
  EXPECT_EQ(engine.next_seq(), 300);
  EXPECT_EQ(engine.expire(250), 250);  // forces a rebuild (dead > 25%)
  EXPECT_EQ(engine.first_live_seq(), 250);
  EXPECT_EQ(engine.next_seq(), 300);
  EXPECT_EQ(engine.insert(
                std::span<const Point2>(points.data() + 300, 300)),
            300);
  EXPECT_EQ(engine.next_seq(), 600);
  EXPECT_EQ(engine.size(), 350);
  // Retiring below the live horizon is a no-op.
  EXPECT_EQ(engine.expire(100), 0);
  EXPECT_EQ(engine.first_live_seq(), 250);
}

TEST(StreamingEngine, DrainToEmptyAndRefill) {
  const auto points =
      fdbscan::testing::random_points<2>(400, 1.0f, 31);
  StreamingEngine<2> engine(
      std::vector<Point2>(points.begin(), points.begin() + 200),
      Parameters{0.05f, 3});
  (void)engine.query();
  EXPECT_EQ(engine.expire(200), 200);
  EXPECT_EQ(engine.size(), 0);
  const Clustering empty = engine.query();
  EXPECT_EQ(empty.labels.size(), 0u);
  EXPECT_EQ(empty.num_clusters, 0);
  EXPECT_EQ(engine.insert(std::span<const Point2>(points.data() + 200, 200)),
            200);
  EXPECT_EQ(engine.size(), 200);
  expect_equivalent(
      std::vector<Point2>(points.begin() + 200, points.end()),
      Parameters{0.05f, 3}, Options{}, engine.query(), "refill");
}

// --- Cancellation --------------------------------------------------------

TEST(StreamingEngine, RaisedTokenRejectsMutationsAtEntry) {
  const auto points =
      fdbscan::testing::random_points<2>(300, 1.0f, 37);
  StreamingEngine<2> engine(std::vector<Point2>(points),
                            Parameters{0.05f, 3});
  exec::CancelToken token;
  token.request_cancel(exec::CancelReason::kCancelled);
  exec::CancelScope scope(token);
  EXPECT_THROW((void)engine.insert(points), exec::CancelledError);
  EXPECT_THROW((void)engine.expire(10), exec::CancelledError);
  EXPECT_THROW((void)engine.query(), exec::CancelledError);
  EXPECT_EQ(engine.size(), 300);  // logical point set unchanged
  EXPECT_EQ(engine.first_live_seq(), 0);
}

TEST(StreamingEngine, CancelledInsertRollsTheBatchBack) {
  // Raise the token from a second thread while a large batch is being
  // absorbed. Whichever way the race lands — cancelled mid-absorb or
  // completed first — the logical point set must be exactly the
  // pre-insert or post-insert set, and the next query (under a fresh
  // scope) must match a from-scratch run of whichever it is.
  const auto points =
      fdbscan::testing::clustered_points<2>(30000, 6, 1.0f, 0.02f, 41);
  Parameters params{0.02f, 5};
  StreamingEngine<2> engine(
      std::vector<Point2>(points.begin(), points.begin() + 4000), params);
  (void)engine.query();
  const std::vector<Point2> batch(points.begin() + 4000, points.end());
  auto token = std::make_shared<exec::CancelToken>();
  std::thread canceller([token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    token->request_cancel(exec::CancelReason::kCancelled);
  });
  bool cancelled = false;
  {
    exec::CancelScope scope(*token);
    try {
      (void)engine.insert(batch);
    } catch (const exec::CancelledError&) {
      cancelled = true;
    }
  }
  canceller.join();
  const std::int64_t n = engine.size();
  const StreamCounters c = engine.counters();
  if (cancelled) {
    EXPECT_EQ(n, 4000) << "rollback must restore the pre-insert set";
    // A rolled-back insert is not part of the logical stream and must
    // not be counted.
    EXPECT_EQ(c.inserts, 0);
    EXPECT_EQ(c.points_inserted, 0);
  } else {
    EXPECT_EQ(n, 30000);
    EXPECT_EQ(c.inserts, 1);
    EXPECT_EQ(c.points_inserted, 26000);
  }
  const std::vector<Point2> live(points.begin(),
                                 points.begin() + static_cast<std::ptrdiff_t>(n));
  expect_equivalent(live, params, Options{}, engine.query(),
                    cancelled ? "rolled-back" : "completed");
}

}  // namespace
}  // namespace fdbscan::stream
