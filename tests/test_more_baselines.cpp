#include <gtest/gtest.h>

#include "baselines/cell_fof.h"
#include "baselines/mr_scan.h"
#include "core/fdbscan.h"
#include "core/validate.h"
#include "dbscan_test_cases.h"
#include "test_utils.h"

namespace fdbscan {
namespace {

using testing::DbscanCase;
using testing::make_dataset;
using testing::ScopedThreads;
using testing::standard_cases;

class MrScanGroundTruth : public ::testing::TestWithParam<DbscanCase> {};

TEST_P(MrScanGroundTruth, MatchesBruteForce) {
  const auto c = GetParam();
  ScopedThreads threads(c.threads);
  const auto points = make_dataset(c);
  const Parameters params{c.eps, c.minpts};
  const auto result = baselines::mr_scan(points, params);
  const auto check = matches_ground_truth(points, params, result);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST_P(MrScanGroundTruth, CellFofMatchesOnFofCases) {
  const auto c = GetParam();
  if (c.minpts != 2) GTEST_SKIP() << "cell_fof is minpts==2 only";
  ScopedThreads threads(c.threads);
  const auto points = make_dataset(c);
  const Parameters params{c.eps, c.minpts};
  const auto result = baselines::cell_fof(points, params);
  const auto check = matches_ground_truth(points, params, result);
  EXPECT_TRUE(check.ok) << check.message;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MrScanGroundTruth,
                         ::testing::ValuesIn(standard_cases()));

TEST(MrScan, DbscanStarVariant) {
  auto points = testing::clustered_points<2>(700, 4, 1.0f, 0.012f, 701);
  const Parameters params{0.02f, 8};
  const auto result =
      baselines::mr_scan(points, params, Variant::kDbscanStar);
  const auto check =
      matches_ground_truth(points, params, result, Variant::kDbscanStar);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(MrScan, ThreeDimensional) {
  ScopedThreads threads(4);
  auto points = testing::clustered_points<3>(800, 5, 1.0f, 0.02f, 702);
  const Parameters params{0.04f, 5};
  const auto result = baselines::mr_scan(points, params);
  const auto check = matches_ground_truth(points, params, result);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(CellFof, RejectsGeneralMinpts) {
  auto points = testing::random_points<2>(10, 1.0f, 703);
  EXPECT_THROW((void)baselines::cell_fof(points, Parameters{0.1f, 5}),
               std::invalid_argument);
}

TEST(CellFof, AgreesWithFdbscanFastPath) {
  ScopedThreads threads(8);
  auto points = data::hacc_like(5000, 704);
  const Parameters params{0.5f, 2};
  const auto a = baselines::cell_fof(points, params);
  const auto b = fdbscan(points, params);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
  const auto check = equivalent_clusterings(points, params, b, a);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(CellFof, EmptyInput) {
  std::vector<Point2> points;
  const auto result = baselines::cell_fof(points, Parameters{0.1f, 2});
  EXPECT_TRUE(result.labels.empty());
}

}  // namespace
}  // namespace fdbscan
