#include <gtest/gtest.h>

#include <cmath>

#include "geometry/box.h"
#include "geometry/point.h"
#include "test_utils.h"

namespace fdbscan {
namespace {

TEST(Point, SquaredDistance2D) {
  Point2 a{{0.0f, 0.0f}}, b{{3.0f, 4.0f}};
  EXPECT_FLOAT_EQ(squared_distance(a, b), 25.0f);
  EXPECT_FLOAT_EQ(distance(a, b), 5.0f);
  EXPECT_FLOAT_EQ(squared_distance(a, a), 0.0f);
}

TEST(Point, SquaredDistance3D) {
  Point3 a{{1.0f, 2.0f, 3.0f}}, b{{2.0f, 4.0f, 5.0f}};
  EXPECT_FLOAT_EQ(squared_distance(a, b), 1.0f + 4.0f + 4.0f);
}

TEST(Point, WithinIsInclusiveAtTheBoundary) {
  // The eps-predicate is dist <= eps: a point exactly at distance eps is
  // a neighbor. This convention must match every algorithm and the
  // brute-force reference.
  Point2 a{{0.0f, 0.0f}}, b{{1.0f, 0.0f}};
  EXPECT_TRUE(within(a, b, 1.0f));
  EXPECT_FALSE(within(a, b, 0.999999f));
}

TEST(Point, EqualityComparesCoordinates) {
  Point2 a{{1.0f, 2.0f}};
  Point2 b{{1.0f, 2.0f}};
  Point2 c{{1.0f, 2.5f}};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(Box, EmptyIsInvalidUntilExpanded) {
  auto b = Box2::empty();
  EXPECT_FALSE(b.valid());
  b.expand(Point2{{1.0f, 2.0f}});
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.min, (Point2{{1.0f, 2.0f}}));
  EXPECT_EQ(b.max, (Point2{{1.0f, 2.0f}}));
}

TEST(Box, ExpandGrowsToCover) {
  auto b = Box2::empty();
  b.expand(Point2{{0.0f, 5.0f}});
  b.expand(Point2{{3.0f, -1.0f}});
  EXPECT_EQ(b.min, (Point2{{0.0f, -1.0f}}));
  EXPECT_EQ(b.max, (Point2{{3.0f, 5.0f}}));
  Box2 other{{{-2.0f, 0.0f}}, {{-1.0f, 1.0f}}};
  b.expand(other);
  EXPECT_FLOAT_EQ(b.min[0], -2.0f);
}

TEST(Box, ContainsIsInclusive) {
  Box2 b{{{0.0f, 0.0f}}, {{1.0f, 1.0f}}};
  EXPECT_TRUE(b.contains(Point2{{0.0f, 0.0f}}));
  EXPECT_TRUE(b.contains(Point2{{1.0f, 1.0f}}));
  EXPECT_TRUE(b.contains(Point2{{0.5f, 0.5f}}));
  EXPECT_FALSE(b.contains(Point2{{1.0001f, 0.5f}}));
}

TEST(Box, Center) {
  Box2 b{{{0.0f, 2.0f}}, {{4.0f, 6.0f}}};
  EXPECT_EQ(b.center(), (Point2{{2.0f, 4.0f}}));
}

TEST(Box, PointDistanceInsideIsZero) {
  Box2 b{{{0.0f, 0.0f}}, {{2.0f, 2.0f}}};
  EXPECT_FLOAT_EQ(squared_distance(Point2{{1.0f, 1.0f}}, b), 0.0f);
  EXPECT_FLOAT_EQ(squared_distance(Point2{{0.0f, 2.0f}}, b), 0.0f);  // corner
}

TEST(Box, PointDistanceToFaceAndCorner) {
  Box2 b{{{0.0f, 0.0f}}, {{2.0f, 2.0f}}};
  // Directly left of a face: distance along one axis only.
  EXPECT_FLOAT_EQ(squared_distance(Point2{{-3.0f, 1.0f}}, b), 9.0f);
  // Diagonal from a corner.
  EXPECT_FLOAT_EQ(squared_distance(Point2{{-3.0f, -4.0f}}, b), 25.0f);
  // Symmetric overload.
  EXPECT_FLOAT_EQ(squared_distance(b, Point2{{-3.0f, 1.0f}}), 9.0f);
}

TEST(Box, PointDistanceEqualsMinOverCorners) {
  // Property: distance to a degenerate (point) box equals point distance.
  Point3 p{{1.0f, -2.0f, 0.5f}};
  Point3 q{{4.0f, 0.0f, 1.0f}};
  Box3 degenerate{q, q};
  EXPECT_FLOAT_EQ(squared_distance(p, degenerate), squared_distance(p, q));
}

TEST(Box, IntersectsSphere) {
  Box2 b{{{0.0f, 0.0f}}, {{1.0f, 1.0f}}};
  EXPECT_TRUE(intersects(Point2{{2.0f, 0.5f}}, 1.0f, b));    // touches face
  EXPECT_FALSE(intersects(Point2{{2.1f, 0.5f}}, 1.0f, b));   // just misses
  EXPECT_TRUE(intersects(Point2{{0.5f, 0.5f}}, 0.01f, b));   // inside
}

TEST(Box, BoundsOfCoversAllPoints) {
  auto points = testing::random_points<3>(500, 10.0f, 99);
  const auto b = bounds_of(points.data(), points.size());
  EXPECT_TRUE(b.valid());
  for (const auto& p : points) EXPECT_TRUE(b.contains(p));
}

TEST(Box, BoundsOfEmptyIsInvalid) {
  const auto b = bounds_of<2>(nullptr, 0);
  EXPECT_FALSE(b.valid());
}

// Property sweep: point-to-box distance lower-bounds the distance to any
// point inside the box (the correctness requirement of the BVH descent
// predicate — if this breaks, traversal silently drops neighbors).
class BoxDistanceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoxDistanceProperty, LowerBoundsContainedPointDistance) {
  auto corners = testing::random_points<2>(2, 5.0f, GetParam());
  Box2 b = Box2::empty();
  b.expand(corners[0]);
  b.expand(corners[1]);
  auto queries = testing::random_points<2>(50, 8.0f, GetParam() + 1);
  auto inside = testing::random_points<2>(50, 1.0f, GetParam() + 2);
  for (const auto& q : queries) {
    for (auto t : inside) {
      // Map t into the box.
      Point2 s;
      for (int d = 0; d < 2; ++d) {
        s[d] = b.min[d] + t[d] * (b.max[d] - b.min[d]);
      }
      EXPECT_LE(squared_distance(q, b), squared_distance(q, s) * 1.000001f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoxDistanceProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace fdbscan
