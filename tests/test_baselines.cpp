#include <gtest/gtest.h>

#include "baselines/cuda_dclust.h"
#include "baselines/dsdbscan.h"
#include "baselines/gdbscan.h"
#include "baselines/sequential_dbscan.h"
#include "core/validate.h"
#include "dbscan_test_cases.h"
#include "test_utils.h"

namespace fdbscan {
namespace {

using testing::DbscanCase;
using testing::make_dataset;
using testing::ScopedThreads;
using testing::standard_cases;

class BaselineGroundTruth : public ::testing::TestWithParam<DbscanCase> {
 protected:
  void run_case(auto&& algorithm) {
    const auto c = GetParam();
    ScopedThreads threads(c.threads);
    const auto points = make_dataset(c);
    const Parameters params{c.eps, c.minpts};
    const auto result = algorithm(points, params);
    const auto check = matches_ground_truth(points, params, result);
    EXPECT_TRUE(check.ok) << check.message;
  }
};

TEST_P(BaselineGroundTruth, SequentialDbscan) {
  run_case([](const auto& pts, const Parameters& p) {
    return baselines::sequential_dbscan(pts, p);
  });
}

TEST_P(BaselineGroundTruth, Dsdbscan) {
  run_case([](const auto& pts, const Parameters& p) {
    return baselines::dsdbscan(pts, p);
  });
}

TEST_P(BaselineGroundTruth, Gdbscan) {
  run_case([](const auto& pts, const Parameters& p) {
    return baselines::gdbscan(pts, p);
  });
}

TEST_P(BaselineGroundTruth, CudaDclust) {
  run_case([](const auto& pts, const Parameters& p) {
    return baselines::cuda_dclust(pts, p);
  });
}

INSTANTIATE_TEST_SUITE_P(Sweep, BaselineGroundTruth,
                         ::testing::ValuesIn(standard_cases()));

TEST(SequentialDbscan, DbscanStarVariant) {
  auto points = testing::clustered_points<2>(600, 4, 1.0f, 0.01f, 81);
  const Parameters params{0.02f, 8};
  const auto result =
      baselines::sequential_dbscan(points, params, Variant::kDbscanStar);
  const auto check =
      matches_ground_truth(points, params, result, Variant::kDbscanStar);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(Gdbscan, StoresTheFullAdjacencyGraph) {
  // The defining memory behaviour: peak memory grows with neighbor
  // count, not just n. Same n, denser data -> much more memory.
  auto points = testing::random_points<2>(2000, 1.0f, 82);
  exec::MemoryTracker sparse_tracker, dense_tracker;
  (void)baselines::gdbscan(points, Parameters{0.01f, 5}, &sparse_tracker);
  (void)baselines::gdbscan(points, Parameters{0.5f, 5}, &dense_tracker);
  EXPECT_GT(dense_tracker.peak(), 20 * sparse_tracker.peak());
}

TEST(Gdbscan, RunsOutOfDeviceMemoryOnDenseData) {
  // Fig. 4(h)'s missing points: the adjacency graph exceeds the device
  // budget and the algorithm aborts.
  auto points = testing::random_points<2>(3000, 1.0f, 83);
  exec::MemoryTracker tight(200 * 1024);  // 200 KiB "GPU"
  EXPECT_THROW(
      (void)baselines::gdbscan(points, Parameters{0.5f, 5}, &tight),
      exec::OutOfDeviceMemory);
}

TEST(Gdbscan, FitsWhenEpsIsSmall) {
  auto points = testing::random_points<2>(3000, 1.0f, 83);
  exec::MemoryTracker tight(400 * 1024);
  EXPECT_NO_THROW(
      (void)baselines::gdbscan(points, Parameters{0.001f, 5}, &tight));
}

TEST(CudaDclust, SingleChainConfiguration) {
  auto points = testing::clustered_points<2>(500, 3, 1.0f, 0.01f, 84);
  const Parameters params{0.02f, 5};
  baselines::CudaDclustConfig config;
  config.chains_per_round = 1;  // fully sequential chain growth
  const auto result = baselines::cuda_dclust(points, params, config);
  const auto check = matches_ground_truth(points, params, result);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(CudaDclust, ManyChainsUnderConcurrency) {
  ScopedThreads threads(8);
  auto points = testing::clustered_points<2>(2000, 6, 1.0f, 0.008f, 85);
  const Parameters params{0.015f, 4};
  baselines::CudaDclustConfig config;
  config.chains_per_round = 256;  // heavy chain collision pressure
  const auto result = baselines::cuda_dclust(points, params, config);
  const auto check = matches_ground_truth(points, params, result);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(CudaDclust, CollisionHeavyRing) {
  // A single connected ring carved into many chains: every chain must
  // collide and merge back into one cluster.
  ScopedThreads threads(8);
  std::vector<Point2> points;
  constexpr int kN = 720;
  for (int i = 0; i < kN; ++i) {
    const float a = static_cast<float>(i) * 2.0f * 3.14159265f / kN;
    points.push_back({{std::cos(a), std::sin(a)}});
  }
  const Parameters params{0.02f, 3};
  baselines::CudaDclustConfig config;
  config.chains_per_round = 64;
  const auto result = baselines::cuda_dclust(points, params, config);
  EXPECT_EQ(result.num_clusters, 1);
  EXPECT_EQ(result.num_noise(), 0);
}

TEST(Baselines, AllAgreeOnModerateDataset) {
  ScopedThreads threads(4);
  auto points = data::porto_taxi_like(1200, 86);
  const Parameters params{0.005f, 6};
  const auto reference = baselines::sequential_dbscan(points, params);
  for (const auto& result :
       {baselines::dsdbscan(points, params),
        baselines::gdbscan(points, params),
        baselines::cuda_dclust(points, params)}) {
    const auto check =
        equivalent_clusterings(points, params, reference, result);
    EXPECT_TRUE(check.ok) << check.message;
  }
}

}  // namespace
}  // namespace fdbscan
