// Thread-count invariance: the clustering (and the architecture-neutral
// work counters) an algorithm produces must not depend on how many
// workers the runtime happens to have. Cluster *labelings* may differ in
// the legitimate border-point sense, which equivalent_clusterings
// tolerates; the counter totals must match exactly because the striped
// accumulators sum the same per-point work regardless of which thread
// performed it.
#include <gtest/gtest.h>

#include <vector>

#include "core/fdbscan.h"
#include "core/fdbscan_densebox.h"
#include "core/validate.h"
#include "dbscan_test_cases.h"
#include "test_utils.h"

namespace fdbscan {
namespace {

using testing::DbscanCase;
using testing::ScopedThreads;

class ThreadInvariance : public ::testing::TestWithParam<DbscanCase> {};

TEST_P(ThreadInvariance, FdbscanClusteringMatchesSingleThreadRun) {
  const DbscanCase c = GetParam();
  const auto points = make_dataset(c);
  const Parameters params{c.eps, c.minpts};

  Clustering reference;
  {
    ScopedThreads threads(1);
    reference = fdbscan(points, params);
  }
  for (int threads : {2, 4, 8}) {
    ScopedThreads scoped(threads);
    const Clustering candidate = fdbscan(points, params);
    const auto check =
        equivalent_clusterings(points, params, reference, candidate);
    EXPECT_TRUE(check.ok) << "threads=" << threads << ": " << check.message;
    EXPECT_EQ(candidate.num_clusters, reference.num_clusters)
        << "threads=" << threads;
    EXPECT_EQ(candidate.distance_computations, reference.distance_computations)
        << "threads=" << threads;
    EXPECT_EQ(candidate.index_nodes_visited, reference.index_nodes_visited)
        << "threads=" << threads;
  }
}

TEST_P(ThreadInvariance, DenseboxClusteringMatchesSingleThreadRun) {
  const DbscanCase c = GetParam();
  const auto points = make_dataset(c);
  const Parameters params{c.eps, c.minpts};

  Clustering reference;
  {
    ScopedThreads threads(1);
    reference = fdbscan_densebox(points, params);
  }
  for (int threads : {2, 4, 8}) {
    ScopedThreads scoped(threads);
    const Clustering candidate = fdbscan_densebox(points, params);
    const auto check =
        equivalent_clusterings(points, params, reference, candidate);
    EXPECT_TRUE(check.ok) << "threads=" << threads << ": " << check.message;
    EXPECT_EQ(candidate.num_clusters, reference.num_clusters)
        << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(StandardCases, ThreadInvariance,
                         ::testing::ValuesIn(testing::standard_cases()));

}  // namespace
}  // namespace fdbscan
