// Backend-equivalence contract of exec/simd.h (and the wide BVH built on
// it): every vector kernel is BIT-EQUAL to its scalar twin, lane for
// lane, and the full clustering pipeline produces identical labels and
// identical deterministic work counters whichever backend is selected,
// at any worker count. The tests toggle simd::set_enabled() inside one
// binary, so a scalar-only build (FDBSCAN_SIMD=OFF) runs the same suite
// with both sides scalar — the assertions stay meaningful as a
// self-consistency check and the build is proven label-compatible.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "bvh/bvh.h"
#include "core/engine.h"
#include "exec/simd.h"
#include "geometry/morton.h"
#include "geometry/point.h"
#include "geometry/points_view.h"
#include "test_utils.h"

namespace fdbscan {
namespace {

using testing::ScopedThreads;

/// Restores the backend selection on scope exit (the flag is global).
class ScopedBackend {
 public:
  explicit ScopedBackend(bool on) : previous_(simd::enabled()) {
    simd::set_enabled(on);
  }
  ~ScopedBackend() { simd::set_enabled(previous_); }
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  bool previous_;
};

/// Labels with cluster ids renumbered by first appearance, so two
/// clusterings that differ only in id assignment order compare equal.
std::vector<std::int32_t> canonical(const std::vector<std::int32_t>& labels) {
  std::vector<std::int32_t> out(labels.size(), kNoise);
  std::vector<std::int32_t> remap;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == kNoise) continue;
    const auto id = static_cast<std::size_t>(labels[i]);
    if (id >= remap.size()) remap.resize(id + 1, -1);
    if (remap[id] < 0) remap[id] = static_cast<std::int32_t>(
        std::count_if(remap.begin(), remap.begin() + static_cast<std::ptrdiff_t>(id),
                      [](std::int32_t v) { return v >= 0; }));
    out[i] = remap[id];
  }
  return out;
}

template <int DIM>
PointsStore<DIM> store_of(const std::vector<Point<DIM>>& points) {
  return PointsStore<DIM>(points);
}

// --- Kernel twins -------------------------------------------------------

TEST(SimdKernels, BoxDistanceBatchMatchesScalarBitForBit) {
  if (!simd::compiled()) GTEST_SKIP() << "scalar-only build";
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<float> coord(-4.0f, 4.0f);
  for (int iter = 0; iter < 500; ++iter) {
    constexpr int DIM = 3;
    float lo[DIM][simd::kWidth];
    float hi[DIM][simd::kWidth];
    for (int d = 0; d < DIM; ++d) {
      for (int l = 0; l < simd::kWidth; ++l) {
        const float a = coord(rng);
        const float b = coord(rng);
        lo[d][l] = std::min(a, b);
        hi[d][l] = std::max(a, b);
      }
    }
    // One padding-style lane: inverted infinite bounds.
    lo[0][7] = std::numeric_limits<float>::infinity();
    hi[0][7] = -std::numeric_limits<float>::infinity();
    Point<DIM> p;
    for (int d = 0; d < DIM; ++d) p[d] = coord(rng);

    float vec[simd::kWidth];
    float ref[simd::kWidth];
    {
      ScopedBackend backend(true);
      simd::box_d2_batch<DIM>(p, lo, hi, vec);
    }
    {
      ScopedBackend backend(false);
      simd::box_d2_batch<DIM>(p, lo, hi, ref);
    }
    for (int l = 0; l < simd::kWidth - 1; ++l) {
      EXPECT_EQ(vec[l], ref[l]) << "iter=" << iter << " lane=" << l;
    }
    EXPECT_EQ(vec[7], std::numeric_limits<float>::infinity());
  }
}

TEST(SimdKernels, MortonGroupMatchesCanonicalEncoder2D) {
  if (!simd::compiled()) GTEST_SKIP() << "scalar-only build";
  const auto points = testing::random_points<2>(999, 3.0f, 11);
  const auto store = store_of<2>(points);
  Box<2> scene;
  for (const auto& p : points) scene.expand(p);
  const auto view = store.view();
  for (std::int64_t g = 0; g < view.size(); g += simd::kWidth) {
    const int count =
        static_cast<int>(std::min<std::int64_t>(simd::kWidth, view.size() - g));
    std::uint64_t vec[simd::kWidth];
    ScopedBackend backend(true);
    simd::morton_group<2>(view.axes(), g, count, scene, vec);
    for (int l = 0; l < count; ++l) {
      EXPECT_EQ(vec[l], morton_code(points[static_cast<std::size_t>(g + l)],
                                    scene))
          << "i=" << g + l;
    }
  }
}

TEST(SimdKernels, MortonGroupMatchesCanonicalEncoder3D) {
  if (!simd::compiled()) GTEST_SKIP() << "scalar-only build";
  const auto points = testing::random_points<3>(517, 2.0f, 13);
  const auto store = store_of<3>(points);
  Box<3> scene;
  for (const auto& p : points) scene.expand(p);
  const auto view = store.view();
  for (std::int64_t g = 0; g < view.size(); g += simd::kWidth) {
    const int count =
        static_cast<int>(std::min<std::int64_t>(simd::kWidth, view.size() - g));
    std::uint64_t vec[simd::kWidth];
    ScopedBackend backend(true);
    simd::morton_group<3>(view.axes(), g, count, scene, vec);
    for (int l = 0; l < count; ++l) {
      EXPECT_EQ(vec[l], morton_code(points[static_cast<std::size_t>(g + l)],
                                    scene))
          << "i=" << g + l;
    }
  }
}

TEST(SimdKernels, DegenerateSceneQuantizesLikeScalar) {
  if (!simd::compiled()) GTEST_SKIP() << "scalar-only build";
  // All points identical: extent 0 on every axis takes the t = 0 branch.
  std::vector<Point<2>> points(16, Point<2>{1.5f, -2.5f});
  const auto store = store_of<2>(points);
  Box<2> scene;
  for (const auto& p : points) scene.expand(p);
  std::uint64_t vec[simd::kWidth];
  ScopedBackend backend(true);
  simd::morton_group<2>(store.view().axes(), 0, simd::kWidth, scene, vec);
  for (int l = 0; l < simd::kWidth; ++l) {
    EXPECT_EQ(vec[l], morton_code(points[0], scene));
  }
}

TEST(SimdKernels, CountWithinMatchesScalarIncludingScansTally) {
  const auto points = testing::clustered_points<2>(700, 6, 1.0f, 0.02f, 17);
  const auto store = store_of<2>(points);
  const auto axes = store.view().axes();
  const float eps2 = 0.05f * 0.05f;
  std::mt19937_64 rng(23);
  for (int iter = 0; iter < 200; ++iter) {
    const auto begin = static_cast<std::int32_t>(rng() % 600);
    const auto end =
        begin + static_cast<std::int32_t>(rng() % 100);
    const Point<2>& p = points[static_cast<std::size_t>(rng() % 700)];
    for (std::int32_t early : {0, 1, 4}) {
      std::int64_t scans_vec = 0;
      std::int64_t scans_ref = 0;
      std::int32_t count_vec = 0;
      std::int32_t count_ref = 0;
      {
        ScopedBackend backend(true);
        count_vec =
            simd::count_within<2>(axes, begin, end, p, eps2, early, scans_vec);
      }
      {
        ScopedBackend backend(false);
        count_ref =
            simd::count_within<2>(axes, begin, end, p, eps2, early, scans_ref);
      }
      EXPECT_EQ(count_vec, count_ref) << "iter=" << iter << " early=" << early;
      EXPECT_EQ(scans_vec, scans_ref) << "iter=" << iter << " early=" << early;
    }
  }
}

TEST(SimdKernels, FirstWithinReturnsLowestWitnessOnBothBackends) {
  const auto points = testing::clustered_points<3>(500, 5, 1.0f, 0.03f, 19);
  const auto store = store_of<3>(points);
  const auto axes = store.view().axes();
  const float eps2 = 0.08f * 0.08f;
  std::mt19937_64 rng(29);
  for (int iter = 0; iter < 200; ++iter) {
    const auto begin = static_cast<std::int32_t>(rng() % 400);
    const auto end = begin + static_cast<std::int32_t>(rng() % 100);
    const Point<3>& p = points[static_cast<std::size_t>(rng() % 500)];
    std::int64_t scans_vec = 0;
    std::int64_t scans_ref = 0;
    std::int32_t hit_vec = 0;
    std::int32_t hit_ref = 0;
    {
      ScopedBackend backend(true);
      hit_vec = simd::first_within<3>(axes, begin, end, p, eps2, scans_vec);
    }
    {
      ScopedBackend backend(false);
      hit_ref = simd::first_within<3>(axes, begin, end, p, eps2, scans_ref);
    }
    EXPECT_EQ(hit_vec, hit_ref) << "iter=" << iter;
    EXPECT_EQ(scans_vec, scans_ref) << "iter=" << iter;
    // Cross-check the witness against a straight scan.
    std::int32_t expect = -1;
    for (std::int32_t m = begin; m < end; ++m) {
      float d2 = 0.0f;
      for (int d = 0; d < 3; ++d) {
        const float diff = axes[static_cast<std::size_t>(d)][m] - p[d];
        d2 += diff * diff;
      }
      if (d2 <= eps2) {
        expect = m;
        break;
      }
    }
    EXPECT_EQ(hit_ref, expect) << "iter=" << iter;
  }
}

// --- Wide BVH -----------------------------------------------------------

TEST(WideBvh, NeighborSetsMatchBruteForceOnBothBackends) {
  const auto points = testing::clustered_points<2>(400, 4, 1.0f, 0.05f, 31);
  const auto store = store_of<2>(points);
  const float eps = 0.1f;
  const float eps2 = eps * eps;
  for (bool backend_on : {true, false}) {
    ScopedBackend backend(backend_on);
    const Bvh<2> bvh(store.view());
    for (std::size_t i = 0; i < points.size(); i += 37) {
      std::vector<std::int32_t> found;
      TraversalStats stats;
      bvh.for_each_near(
          points[i], eps2,
          [&](std::int32_t /*pos*/, std::int32_t id) {
            found.push_back(id);
            return TraversalControl::kContinue;
          },
          &stats);
      std::vector<std::int32_t> expect;
      for (std::size_t j = 0; j < points.size(); ++j) {
        float d2 = 0.0f;
        for (int d = 0; d < 2; ++d) {
          const float diff = points[j][d] - points[i][d];
          d2 += diff * diff;
        }
        if (d2 <= eps2) expect.push_back(static_cast<std::int32_t>(j));
      }
      std::sort(found.begin(), found.end());
      EXPECT_EQ(found, expect) << "i=" << i << " simd=" << backend_on;
    }
  }
}

TEST(WideBvh, TraversalCountersIdenticalAcrossBackends) {
  const auto points = testing::clustered_points<3>(600, 5, 1.0f, 0.04f, 37);
  const auto store = store_of<3>(points);
  std::int64_t nodes[2] = {0, 0};
  std::int64_t leaves[2] = {0, 0};
  int which = 0;
  for (bool backend_on : {true, false}) {
    ScopedBackend backend(backend_on);
    const Bvh<3> bvh(store.view());
    for (std::size_t i = 0; i < points.size(); ++i) {
      TraversalStats stats;
      bvh.for_each_near(
          points[i], 0.08f * 0.08f,
          [](std::int32_t, std::int32_t) { return TraversalControl::kContinue; },
          &stats);
      nodes[which] += stats.nodes_visited;
      leaves[which] += stats.leaves_tested;
    }
    ++which;
  }
  EXPECT_EQ(nodes[0], nodes[1]);
  EXPECT_EQ(leaves[0], leaves[1]);
  EXPECT_GT(leaves[1], 0);
}

// --- Full pipeline ------------------------------------------------------

template <int DIM>
void expect_backend_identity(const std::vector<Point<DIM>>& points,
                             const Parameters& params, bool densebox) {
  Clustering ref;
  {
    ScopedBackend backend(false);
    ScopedThreads threads(1);
    Engine<DIM> engine(points);
    ref = densebox ? engine.run_densebox(params) : engine.run(params);
  }
  for (int threads : {1, 2, 8}) {
    ScopedBackend backend(true);
    ScopedThreads scoped(threads);
    Engine<DIM> engine(points);
    const Clustering got =
        densebox ? engine.run_densebox(params) : engine.run(params);
    EXPECT_EQ(canonical(got.labels), canonical(ref.labels))
        << "threads=" << threads << " densebox=" << densebox;
    EXPECT_EQ(got.is_core, ref.is_core) << "threads=" << threads;
    EXPECT_EQ(got.num_clusters, ref.num_clusters) << "threads=" << threads;
    EXPECT_EQ(got.distance_computations, ref.distance_computations)
        << "threads=" << threads << " densebox=" << densebox;
    EXPECT_EQ(got.index_nodes_visited, ref.index_nodes_visited)
        << "threads=" << threads << " densebox=" << densebox;
  }
}

TEST(SimdPipeline, FdbscanLabelsAndCountersMatchScalarBackend2D) {
  const auto points = testing::clustered_points<2>(900, 7, 1.0f, 0.015f, 41);
  expect_backend_identity<2>(points, Parameters{0.03f, 5}, false);
}

TEST(SimdPipeline, FdbscanLabelsAndCountersMatchScalarBackend3D) {
  const auto points = testing::clustered_points<3>(800, 6, 1.0f, 0.02f, 43);
  expect_backend_identity<3>(points, Parameters{0.05f, 4}, false);
}

TEST(SimdPipeline, DenseboxLabelsAndCountersMatchScalarBackend2D) {
  const auto points = testing::clustered_points<2>(900, 7, 1.0f, 0.015f, 47);
  expect_backend_identity<2>(points, Parameters{0.03f, 5}, true);
}

TEST(SimdPipeline, DenseboxLabelsAndCountersMatchScalarBackend3D) {
  const auto points = testing::clustered_points<3>(800, 6, 1.0f, 0.02f, 53);
  expect_backend_identity<3>(points, Parameters{0.05f, 4}, true);
}

TEST(SimdPipeline, TinyInputsRunOnBothBackends) {
  for (std::int64_t n : {0, 1, 2, 7, 8, 9}) {
    const auto points = testing::random_points<2>(n, 1.0f, 59);
    for (bool backend_on : {true, false}) {
      ScopedBackend backend(backend_on);
      Engine<2> engine(points);
      const Clustering got = engine.run(Parameters{0.2f, 2});
      EXPECT_EQ(static_cast<std::int64_t>(got.labels.size()), n)
          << "n=" << n << " simd=" << backend_on;
    }
  }
}

}  // namespace
}  // namespace fdbscan
