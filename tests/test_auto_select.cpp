#include "core/auto_select.h"

#include <gtest/gtest.h>

#include "core/validate.h"
#include "data/generators.h"
#include "test_utils.h"

namespace fdbscan {
namespace {

TEST(EstimateDenseFraction, ZeroOnEmptyInput) {
  std::vector<Point2> points;
  EXPECT_DOUBLE_EQ(estimate_dense_fraction(points, Parameters{0.1f, 5}), 0.0);
}

TEST(EstimateDenseFraction, HighOnDenseData) {
  auto points = data::road_network_like(16384, 401);
  const double fraction =
      estimate_dense_fraction(points, Parameters{0.08f, 100});
  EXPECT_GT(fraction, 0.8);
}

TEST(EstimateDenseFraction, LowOnSparseData) {
  auto points = testing::random_points<2>(16384, 100.0f, 402);
  const double fraction =
      estimate_dense_fraction(points, Parameters{0.05f, 10});
  EXPECT_LT(fraction, 0.05);
}

TEST(EstimateDenseFraction, TracksExactFractionOnFullSample) {
  // With sample_size >= n the estimate is exact.
  auto points = data::ngsim_like(4000, 403);
  const Parameters params{0.005f, 50};
  AutoSelectConfig config;
  config.sample_size = 4000;
  const double estimate = estimate_dense_fraction(points, params, config);
  DenseGrid<2> grid(points, params.eps, params.minpts);
  const double exact = static_cast<double>(grid.points_in_dense_cells()) /
                       static_cast<double>(points.size());
  EXPECT_NEAR(estimate, exact, 1e-12);
}

TEST(EstimateDenseFraction, SubsampleApproximatesFullFraction) {
  auto points = data::road_network_like(30000, 404);
  const Parameters params{0.08f, 100};
  AutoSelectConfig config;
  config.sample_size = 3000;
  const double estimate = estimate_dense_fraction(points, params, config);
  DenseGrid<2> grid(points, params.eps, params.minpts);
  const double exact = static_cast<double>(grid.points_in_dense_cells()) /
                       static_cast<double>(points.size());
  EXPECT_NEAR(estimate, exact, 0.15);
}

TEST(AutoSelect, PicksDenseBoxOnRoadData) {
  auto points = data::road_network_like(8000, 405);
  const auto result = fdbscan_auto(points, Parameters{0.08f, 50});
  EXPECT_TRUE(result.used_densebox);
  EXPECT_GT(result.clustering.num_dense_cells, 0);
}

TEST(AutoSelect, PicksFdbscanOnSparseCosmology) {
  auto points = data::hacc_like(8000, 406);
  // At paper density a small sample in the default 64^3 box is extremely
  // sparse at eps = 0.042: no dense cells.
  const auto result = fdbscan_auto(points, Parameters{0.042f, 50});
  EXPECT_FALSE(result.used_densebox);
  EXPECT_EQ(result.clustering.num_dense_cells, 0);
}

TEST(AutoSelect, ResultMatchesGroundTruthEitherWay) {
  for (std::uint64_t seed : {407u, 408u}) {
    auto dense = data::ngsim_like(2000, seed);
    auto sparse = testing::random_points<2>(2000, 10.0f, seed);
    for (const auto& points : {dense, sparse}) {
      const Parameters params{0.01f, 8};
      const auto result = fdbscan_auto(points, params);
      const auto check =
          matches_ground_truth(points, params, result.clustering);
      EXPECT_TRUE(check.ok) << check.message;
    }
  }
}

TEST(AutoSelect, ThresholdIsRespected) {
  auto points = data::ngsim_like(8000, 409);
  const Parameters params{0.005f, 20};
  AutoSelectConfig always_densebox, never_densebox;
  always_densebox.densebox_threshold = 0.0;
  never_densebox.densebox_threshold = 1.1;  // unreachable
  EXPECT_TRUE(
      fdbscan_auto(points, params, {}, always_densebox).used_densebox);
  EXPECT_FALSE(
      fdbscan_auto(points, params, {}, never_densebox).used_densebox);
}

TEST(AutoSelect, EstimateIsDeterministicInSeed) {
  auto points = data::porto_taxi_like(20000, 410);
  const Parameters params{0.01f, 20};
  AutoSelectConfig config;
  config.sample_size = 2000;
  EXPECT_DOUBLE_EQ(estimate_dense_fraction(points, params, config),
                   estimate_dense_fraction(points, params, config));
}

}  // namespace
}  // namespace fdbscan
