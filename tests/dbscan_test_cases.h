// Shared parameterized cases for validating complete DBSCAN
// implementations against the brute-force ground truth.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/clustering.h"
#include "data/generators.h"
#include "geometry/point.h"
#include "test_utils.h"

namespace fdbscan::testing {

enum class Dataset2 : std::uint8_t {
  kUniform,
  kClustered,
  kNgsimLike,
  kPortoLike,
  kRoadLike,
  kIdentical,   // all points coincide
  kCollinear,   // a 1-D chain of equidistant points
};

struct DbscanCase {
  Dataset2 dataset;
  std::int64_t n;
  float eps;
  std::int32_t minpts;
  int threads;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const DbscanCase& c) {
    return os << "dataset=" << static_cast<int>(c.dataset) << " n=" << c.n
              << " eps=" << c.eps << " minpts=" << c.minpts
              << " threads=" << c.threads << " seed=" << c.seed;
  }
};

inline std::vector<Point2> make_dataset(const DbscanCase& c) {
  switch (c.dataset) {
    case Dataset2::kUniform:
      return random_points<2>(c.n, 1.0f, c.seed);
    case Dataset2::kClustered:
      return clustered_points<2>(c.n, 6, 1.0f, c.eps * 0.8f, c.seed);
    case Dataset2::kNgsimLike:
      return data::ngsim_like(c.n, c.seed);
    case Dataset2::kPortoLike:
      return data::porto_taxi_like(c.n, c.seed);
    case Dataset2::kRoadLike:
      return data::road_network_like(c.n, c.seed);
    case Dataset2::kIdentical:
      return std::vector<Point2>(static_cast<std::size_t>(c.n),
                                 Point2{{0.25f, 0.75f}});
    case Dataset2::kCollinear: {
      std::vector<Point2> pts(static_cast<std::size_t>(c.n));
      for (std::int64_t i = 0; i < c.n; ++i) {
        // Spacing exactly eps: every consecutive pair is a neighbor
        // (inclusive boundary), exercising the <=-vs-< convention.
        pts[static_cast<std::size_t>(i)] = {
            {static_cast<float>(i) * c.eps, 0.0f}};
      }
      return pts;
    }
  }
  return {};
}

/// The standard sweep used by every complete-algorithm test suite:
/// datasets x (eps, minpts) x thread counts, chosen to hit the minpts<=2
/// fast path, border-heavy settings, all-noise and all-one-cluster
/// regimes, and true concurrency.
inline std::vector<DbscanCase> standard_cases() {
  return {
      {Dataset2::kUniform, 600, 0.05f, 5, 1, 101},
      {Dataset2::kUniform, 600, 0.05f, 2, 4, 102},    // FoF fast path
      {Dataset2::kUniform, 400, 0.02f, 4, 2, 103},    // mostly noise
      {Dataset2::kUniform, 300, 0.5f, 5, 4, 104},     // one giant cluster
      {Dataset2::kClustered, 800, 0.01f, 8, 4, 105},  // dense cells + noise
      {Dataset2::kClustered, 800, 0.01f, 2, 1, 106},
      {Dataset2::kClustered, 500, 0.008f, 30, 8, 107},  // heavy borders
      {Dataset2::kNgsimLike, 700, 0.005f, 10, 4, 108},
      {Dataset2::kPortoLike, 700, 0.01f, 5, 4, 109},
      {Dataset2::kRoadLike, 700, 0.01f, 5, 4, 110},
      {Dataset2::kIdentical, 150, 0.01f, 5, 4, 111},
      {Dataset2::kCollinear, 200, 0.01f, 3, 4, 112},
      {Dataset2::kCollinear, 200, 0.01f, 2, 1, 113},
      {Dataset2::kUniform, 1, 0.1f, 5, 1, 114},  // single point
      {Dataset2::kUniform, 2, 10.0f, 2, 1, 115},  // one pair
      {Dataset2::kUniform, 500, 0.05f, 1, 4, 116},  // minpts=1 degenerate
  };
}

}  // namespace fdbscan::testing
