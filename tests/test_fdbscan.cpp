#include "core/fdbscan.h"

#include <gtest/gtest.h>

#include "core/validate.h"
#include "dbscan_test_cases.h"
#include "test_utils.h"

namespace fdbscan {
namespace {

using testing::DbscanCase;
using testing::make_dataset;
using testing::ScopedThreads;
using testing::standard_cases;

class FdbscanGroundTruth : public ::testing::TestWithParam<DbscanCase> {};

TEST_P(FdbscanGroundTruth, MatchesBruteForce) {
  const auto c = GetParam();
  ScopedThreads threads(c.threads);
  const auto points = make_dataset(c);
  const Parameters params{c.eps, c.minpts};
  const auto result = fdbscan(points, params);
  const auto check = matches_ground_truth(points, params, result);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST_P(FdbscanGroundTruth, UnmaskedTraversalGivesSameResult) {
  const auto c = GetParam();
  ScopedThreads threads(c.threads);
  const auto points = make_dataset(c);
  const Parameters params{c.eps, c.minpts};
  Options options;
  options.masked_traversal = false;
  const auto result = fdbscan(points, params, options);
  const auto check = matches_ground_truth(points, params, result);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST_P(FdbscanGroundTruth, NoEarlyExitGivesSameResult) {
  const auto c = GetParam();
  ScopedThreads threads(c.threads);
  const auto points = make_dataset(c);
  const Parameters params{c.eps, c.minpts};
  Options options;
  options.early_exit = false;
  const auto result = fdbscan(points, params, options);
  const auto check = matches_ground_truth(points, params, result);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST_P(FdbscanGroundTruth, DbscanStarMatchesBruteForce) {
  const auto c = GetParam();
  ScopedThreads threads(c.threads);
  const auto points = make_dataset(c);
  const Parameters params{c.eps, c.minpts};
  Options options;
  options.variant = Variant::kDbscanStar;
  const auto result = fdbscan(points, params, options);
  const auto check =
      matches_ground_truth(points, params, result, Variant::kDbscanStar);
  EXPECT_TRUE(check.ok) << check.message;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FdbscanGroundTruth,
                         ::testing::ValuesIn(standard_cases()));

TEST(Fdbscan, EmptyInput) {
  std::vector<Point2> points;
  const auto result = fdbscan(points, Parameters{0.1f, 5});
  EXPECT_TRUE(result.labels.empty());
  EXPECT_EQ(result.num_clusters, 0);
}

TEST(Fdbscan, ThreeDimensionalData) {
  ScopedThreads threads(4);
  auto points = testing::clustered_points<3>(800, 5, 1.0f, 0.01f, 31);
  const Parameters params{0.03f, 6};
  const auto result = fdbscan(points, params);
  const auto check = matches_ground_truth(points, params, result);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(Fdbscan, ResultIsDeterministicUpToRelabeling) {
  // Cluster count, core flags and noise set must not depend on thread
  // count or scheduling.
  auto points = testing::clustered_points<2>(1500, 5, 1.0f, 0.01f, 32);
  const Parameters params{0.02f, 5};
  ScopedThreads serial(1);
  const auto a = fdbscan(points, params);
  ScopedThreads many(8);
  const auto b = fdbscan(points, params);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
  EXPECT_EQ(a.is_core, b.is_core);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(a.labels[i] == kNoise, b.labels[i] == kNoise) << i;
  }
  const auto check = equivalent_clusterings(points, params, a, b);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(Fdbscan, ReportsPhaseTimings) {
  auto points = testing::random_points<2>(2000, 1.0f, 33);
  const auto result = fdbscan(points, Parameters{0.05f, 5});
  EXPECT_GT(result.timings.index_construction, 0.0);
  EXPECT_GT(result.timings.main, 0.0);
  EXPECT_GT(result.timings.total(), 0.0);
}

TEST(Fdbscan, TracksMemoryWhenRequested) {
  auto points = testing::random_points<2>(1000, 1.0f, 34);
  exec::MemoryTracker tracker;
  Options options;
  options.memory = &tracker;
  const auto result = fdbscan(points, Parameters{0.05f, 5}, options);
  EXPECT_GT(result.peak_memory_bytes, points.size() * sizeof(std::int32_t));
  // O(n) memory: far below the ~n^2 adjacency a graph algorithm needs.
  EXPECT_LT(result.peak_memory_bytes, points.size() * 1000);
}

TEST(Fdbscan, MemoryIsLinearInN) {
  exec::MemoryTracker small_tracker, large_tracker;
  Options options;
  auto small = testing::random_points<2>(1000, 1.0f, 35);
  auto large = testing::random_points<2>(8000, 1.0f, 35);
  options.memory = &small_tracker;
  (void)fdbscan(small, Parameters{0.3f, 5}, options);  // dense neighborhoods
  options.memory = &large_tracker;
  (void)fdbscan(large, Parameters{0.3f, 5}, options);
  // 8x the points must cost ~8x the memory, independent of neighbor
  // counts (the paper's central memory claim).
  const double ratio = static_cast<double>(large_tracker.peak()) /
                       static_cast<double>(small_tracker.peak());
  EXPECT_GT(ratio, 6.0);
  EXPECT_LT(ratio, 10.0);
}

TEST(Fdbscan, MinptsLargerThanNMakesAllNoise) {
  auto points = testing::random_points<2>(50, 1.0f, 36);
  const auto result = fdbscan(points, Parameters{10.0f, 100});
  EXPECT_EQ(result.num_clusters, 0);
  EXPECT_EQ(result.num_noise(), 50);
}

}  // namespace
}  // namespace fdbscan
