// Masked-traversal counter parity (§4.1). The half-traversal hides
// leaves below the query's own sorted position so each neighbor pair is
// discovered once; on datasets where every bounds test passes (all
// points mutually within eps) the tested set is symmetric, so the
// unmasked leaf-test total must equal exactly twice the masked total
// (each unordered pair tested from both sides) plus the n self-hits the
// mask removes:
//
//   unmasked_leaves_tested == 2 * masked_leaves_tested + n
//
// This pins down the counting discipline of both for_each_near paths
// (the n==1 fast path used to count masked leaves it never tested) and
// must hold bit-exactly at any worker count.
#include <gtest/gtest.h>

#include <vector>

#include "bvh/bvh.h"
#include "core/fdbscan.h"
#include "core/fdbscan_densebox.h"
#include "test_utils.h"

namespace fdbscan {
namespace {

using testing::ScopedThreads;

/// Sums leaves_tested over one traversal per point, each masked at the
/// point's own sorted position + 1 (mask 0 = unmasked).
template <int DIM>
TraversalStats traversal_totals(const Bvh<DIM>& bvh,
                                const std::vector<Point<DIM>>& points,
                                float eps2, bool masked) {
  TraversalStats total;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto pos = bvh.position_of(static_cast<std::int32_t>(i));
    bvh.for_each_near(
        points[i], eps2, masked ? pos + 1 : 0,
        [](std::int32_t, std::int32_t) { return TraversalControl::kContinue; },
        &total);
  }
  return total;
}

template <int DIM>
void expect_bvh_parity(const std::vector<Point<DIM>>& points, float eps2) {
  Bvh<DIM> bvh(points);
  const auto n = static_cast<std::int64_t>(points.size());
  const auto unmasked = traversal_totals(bvh, points, eps2, false);
  const auto masked = traversal_totals(bvh, points, eps2, true);
  EXPECT_EQ(unmasked.leaves_tested, 2 * masked.leaves_tested + n)
      << "n=" << n;
}

TEST(BvhMaskParity, SingleLeafMaskedQueryCountsNothing) {
  const std::vector<Point2> points{{{0.5f, 0.5f}}};
  Bvh<2> bvh(points);
  TraversalStats stats;
  int hits = 0;
  bvh.for_each_near(
      points[0], 1.0f, /*min_sorted_pos=*/1,
      [&](std::int32_t, std::int32_t) {
        ++hits;
        return TraversalControl::kContinue;
      },
      &stats);
  EXPECT_EQ(stats.leaves_tested, 0);  // the only leaf is masked
  EXPECT_EQ(hits, 0);
}

TEST(BvhMaskParity, SingleLeafUnmaskedQueryCountsOneLeaf) {
  const std::vector<Point2> points{{{0.5f, 0.5f}}};
  Bvh<2> bvh(points);
  TraversalStats stats;
  int hits = 0;
  bvh.for_each_near(
      points[0], 1.0f, /*min_sorted_pos=*/0,
      [&](std::int32_t, std::int32_t) {
        ++hits;
        return TraversalControl::kContinue;
      },
      &stats);
  EXPECT_EQ(stats.leaves_tested, 1);
  EXPECT_EQ(hits, 1);
}

TEST(BvhMaskParity, UnmaskedEqualsTwiceMaskedPlusSelfHits) {
  // n = 1: 1 == 2*0 + 1.
  expect_bvh_parity<2>({{{0.25f, 0.75f}}}, 1.0f);
  // n = 2, both within eps: 4 == 2*1 + 2.
  expect_bvh_parity<2>({{{0.0f, 0.0f}}, {{0.3f, 0.0f}}}, 1.0f);
  // Duplicate coordinates (ties broken by index in the Karras build):
  // n^2 == 2 * n(n-1)/2 + n.
  std::vector<Point2> dups;
  for (int i = 0; i < 5; ++i) dups.push_back({{0.4f, 0.4f}});
  for (int i = 0; i < 3; ++i) dups.push_back({{0.6f, 0.4f}});
  expect_bvh_parity<2>(dups, 1.0f);
}

/// fdbscan at minpts = 2 (FoF path) does exactly one main-phase
/// traversal per point: dist_comps is the leaf-test total, so the parity
/// identity transfers to the public counter.
void expect_fdbscan_parity(const std::vector<Point2>& points, float eps) {
  const auto n = static_cast<std::int64_t>(points.size());
  const Parameters params{eps, 2};
  Options masked, unmasked;
  unmasked.masked_traversal = false;

  std::int64_t reference_masked = -1;
  for (int threads : {1, 2, 8}) {
    ScopedThreads scoped(threads);
    const auto with_mask = fdbscan(points, params, masked);
    const auto without_mask = fdbscan(points, params, unmasked);
    EXPECT_EQ(without_mask.distance_computations,
              2 * with_mask.distance_computations + n)
        << "n=" << n << " threads=" << threads;
    if (reference_masked < 0) {
      reference_masked = with_mask.distance_computations;
    } else {
      EXPECT_EQ(with_mask.distance_computations, reference_masked)
          << "threads=" << threads;
    }
  }
}

TEST(FdbscanMaskParity, SinglePoint) {
  expect_fdbscan_parity({{{0.1f, 0.2f}}}, 1.0f);
}

TEST(FdbscanMaskParity, TwoPointsWithinEps) {
  expect_fdbscan_parity({{{0.0f, 0.0f}}, {{0.3f, 0.0f}}}, 1.0f);
}

TEST(FdbscanMaskParity, DuplicateCoordinates) {
  std::vector<Point2> dups;
  for (int i = 0; i < 8; ++i) dups.push_back({{0.4f, 0.4f}});
  expect_fdbscan_parity(dups, 1.0f);
}

TEST(FdbscanMaskParity, MutuallyCloseSquare) {
  expect_fdbscan_parity(
      {{{0.0f, 0.0f}}, {{0.2f, 0.0f}}, {{0.0f, 0.2f}}, {{0.2f, 0.2f}}}, 1.0f);
}

/// With no dense cells, FDBSCAN-DenseBox's mixed-primitive BVH reduces
/// to the point BVH and its (always unmasked) main traversal must count
/// exactly what unmasked FDBSCAN counts — i.e. 2 * masked + n on
/// symmetric sets. Dense cells divert pairs to member scans, so the
/// dense configurations have their own expected counts.
TEST(DenseboxMaskParity, NoDenseCellsMatchesUnmaskedFdbscan) {
  // 5x5 unit lattice, eps below the spacing: every cell holds one point
  // (no dense cells at minpts = 2) and traversals prune identically in
  // both implementations.
  std::vector<Point2> lattice;
  for (int x = 0; x < 5; ++x) {
    for (int y = 0; y < 5; ++y) {
      lattice.push_back({{static_cast<float>(x), static_cast<float>(y)}});
    }
  }
  const Parameters params{0.8f, 2};
  Options unmasked;
  unmasked.masked_traversal = false;
  for (int threads : {1, 2, 8}) {
    ScopedThreads scoped(threads);
    const auto densebox = fdbscan_densebox(lattice, params);
    ASSERT_EQ(densebox.num_dense_cells, 0);
    const auto plain = fdbscan(lattice, params, unmasked);
    EXPECT_EQ(densebox.distance_computations, plain.distance_computations)
        << "threads=" << threads;
    EXPECT_GE(densebox.distance_computations,
              static_cast<std::int64_t>(lattice.size()));
  }
}

TEST(DenseboxMaskParity, TwoPointsSeparateCellsHoldParityIdentity) {
  // eps = 1 -> cell width 1/sqrt(2): the points land in different cells
  // (neither dense), yet are within eps of each other.
  const std::vector<Point2> points{{{0.0f, 0.0f}}, {{0.9f, 0.0f}}};
  const Parameters params{1.0f, 2};
  Options masked;
  for (int threads : {1, 2, 8}) {
    ScopedThreads scoped(threads);
    const auto densebox = fdbscan_densebox(points, params);
    ASSERT_EQ(densebox.num_dense_cells, 0);
    const auto with_mask = fdbscan(points, params, masked);
    EXPECT_EQ(densebox.distance_computations,
              2 * with_mask.distance_computations + 2)
        << "threads=" << threads;
  }
}

TEST(DenseboxMaskParity, DuplicateCoordinatesCollapseToOneDenseBoxTest) {
  // All duplicates share one dense cell: the BVH holds a single box
  // primitive (the n==1 fast path inside a clustering run) and each of
  // the n queries tests exactly that one leaf; the own-cell skip means
  // no member scans. dist_comps == n, at every worker count.
  std::vector<Point2> dups;
  for (int i = 0; i < 8; ++i) dups.push_back({{0.4f, 0.4f}});
  const Parameters params{1.0f, 2};
  for (int threads : {1, 2, 8}) {
    ScopedThreads scoped(threads);
    const auto result = fdbscan_densebox(dups, params);
    ASSERT_EQ(result.num_dense_cells, 1);
    EXPECT_EQ(result.distance_computations,
              static_cast<std::int64_t>(dups.size()))
        << "threads=" << threads;
    EXPECT_EQ(result.num_clusters, 1);
  }
}

}  // namespace
}  // namespace fdbscan
