#include "unionfind/union_find.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "exec/atomic.h"
#include "exec/parallel.h"
#include "test_utils.h"

namespace fdbscan {
namespace {

TEST(SequentialDSU, SingletonsInitially) {
  SequentialDSU dsu(5);
  for (std::int32_t i = 0; i < 5; ++i) EXPECT_EQ(dsu.find(i), i);
}

TEST(SequentialDSU, UniteReportsNovelty) {
  SequentialDSU dsu(4);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_FALSE(dsu.unite(1, 0));  // already together
  EXPECT_TRUE(dsu.unite(2, 3));
  EXPECT_TRUE(dsu.unite(0, 3));
  EXPECT_EQ(dsu.find(1), dsu.find(2));
}

TEST(UnionFindView, InitSingletons) {
  std::vector<std::int32_t> labels(10);
  init_singletons(labels);
  for (std::int32_t i = 0; i < 10; ++i) EXPECT_EQ(labels[static_cast<std::size_t>(i)], i);
}

TEST(UnionFindView, MergeJoinsSets) {
  std::vector<std::int32_t> labels(6);
  init_singletons(labels);
  UnionFindView uf(labels.data(), 6);
  uf.merge(0, 5);
  uf.merge(2, 3);
  EXPECT_EQ(uf.representative(0), uf.representative(5));
  EXPECT_EQ(uf.representative(2), uf.representative(3));
  EXPECT_NE(uf.representative(0), uf.representative(2));
  uf.merge(5, 3);
  EXPECT_EQ(uf.representative(0), uf.representative(2));
}

TEST(UnionFindView, MergeIsIdempotent) {
  std::vector<std::int32_t> labels(4);
  init_singletons(labels);
  UnionFindView uf(labels.data(), 4);
  uf.merge(1, 2);
  const auto r = uf.representative(1);
  uf.merge(1, 2);
  uf.merge(2, 1);
  EXPECT_EQ(uf.representative(1), r);
  EXPECT_EQ(uf.representative(2), r);
}

TEST(UnionFindView, HooksLargerUnderSmaller) {
  // The decreasing-parent invariant underpins lock-freedom: check the
  // root of any merged set is the minimum element ever merged into it
  // (true for sequences of merges without interleaved claims).
  std::vector<std::int32_t> labels(100);
  init_singletons(labels);
  UnionFindView uf(labels.data(), 100);
  uf.merge(99, 98);
  uf.merge(98, 3);
  uf.merge(50, 99);
  EXPECT_EQ(uf.representative(50), 3);
}

TEST(UnionFindView, ClaimWinsOnlyOnce) {
  std::vector<std::int32_t> labels(5);
  init_singletons(labels);
  UnionFindView uf(labels.data(), 5);
  EXPECT_TRUE(uf.unassigned(3));
  EXPECT_TRUE(uf.claim(3, 0));
  EXPECT_FALSE(uf.unassigned(3));
  EXPECT_FALSE(uf.claim(3, 1));  // second cluster must not steal it
  EXPECT_EQ(uf.representative(3), 0);
}

TEST(UnionFindView, ClaimedPointFollowsLaterRootMerges) {
  std::vector<std::int32_t> labels(6);
  init_singletons(labels);
  UnionFindView uf(labels.data(), 6);
  EXPECT_TRUE(uf.claim(4, 2));  // border point 4 joins cluster of 2
  uf.merge(2, 0);               // cluster of 2 later merges under 0
  flatten(labels);
  EXPECT_EQ(labels[4], 0);
}

TEST(UnionFindView, FlattenMakesLabelsDirect) {
  std::vector<std::int32_t> labels(64);
  init_singletons(labels);
  UnionFindView uf(labels.data(), 64);
  for (std::int32_t i = 1; i < 64; ++i) uf.merge(i - 1, i);  // long chain
  flatten(labels);
  for (std::int32_t i = 0; i < 64; ++i) EXPECT_EQ(labels[static_cast<std::size_t>(i)], 0);
}

TEST(UnionFindView, FlattenIsIdempotent) {
  std::vector<std::int32_t> labels(32);
  init_singletons(labels);
  UnionFindView uf(labels.data(), 32);
  uf.merge(5, 17);
  uf.merge(17, 30);
  flatten(labels);
  auto snapshot = labels;
  flatten(labels);
  EXPECT_EQ(labels, snapshot);
}

// --- Concurrent stress: random edge list, compare against sequential ---
struct StressParam {
  int threads;
  std::int32_t n;
  std::int32_t edges;
  std::uint64_t seed;
};

class UnionFindStress : public ::testing::TestWithParam<StressParam> {};

TEST_P(UnionFindStress, MatchesSequentialPartition) {
  const auto param = GetParam();
  testing::ScopedThreads threads(param.threads);
  std::mt19937_64 rng(param.seed);
  std::vector<std::pair<std::int32_t, std::int32_t>> edges(
      static_cast<std::size_t>(param.edges));
  for (auto& [u, v] : edges) {
    u = static_cast<std::int32_t>(rng() % static_cast<std::uint64_t>(param.n));
    v = static_cast<std::int32_t>(rng() % static_cast<std::uint64_t>(param.n));
  }

  std::vector<std::int32_t> labels(static_cast<std::size_t>(param.n));
  init_singletons(labels);
  UnionFindView uf(labels.data(), param.n);
  exec::parallel_for(param.edges, [&](std::int64_t e) {
    const auto& [u, v] = edges[static_cast<std::size_t>(e)];
    uf.merge(u, v);
  });
  flatten(labels);

  SequentialDSU dsu(param.n);
  for (const auto& [u, v] : edges) dsu.unite(u, v);

  // Same partition: labels agree iff dsu roots agree.
  for (std::int32_t i = 0; i < param.n; ++i) {
    for (std::int32_t j : {std::int32_t{0}, i / 2, param.n - 1}) {
      const bool same_ref = dsu.find(i) == dsu.find(j);
      const bool same_cand = labels[static_cast<std::size_t>(i)] ==
                             labels[static_cast<std::size_t>(j)];
      ASSERT_EQ(same_ref, same_cand) << "points " << i << ", " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UnionFindStress,
    ::testing::Values(StressParam{1, 1000, 500, 1},
                      StressParam{4, 1000, 500, 2},
                      StressParam{8, 5000, 20000, 3},
                      StressParam{8, 100, 5000, 4},   // heavy contention
                      StressParam{3, 20000, 19999, 5},
                      StressParam{8, 50000, 400000, 6}));

TEST(UnionFindConcurrent, ParallelClaimsHaveUniqueWinners) {
  testing::ScopedThreads threads(8);
  constexpr std::int32_t kN = 1000;
  std::vector<std::int32_t> labels(kN);
  init_singletons(labels);
  UnionFindView uf(labels.data(), kN);
  // 999 threads all try to claim point 0 for their own cluster.
  std::int64_t winners = 0;
  exec::parallel_for(kN - 1, [&](std::int64_t i) {
    if (uf.claim(0, static_cast<std::int32_t>(i) + 1)) {
      exec::atomic_fetch_add(winners, std::int64_t{1});
    }
  });
  EXPECT_EQ(winners, 1);
}

}  // namespace
}  // namespace fdbscan
