#include "exec/memory_tracker.h"

#include <gtest/gtest.h>

namespace fdbscan::exec {
namespace {

TEST(MemoryTracker, TracksCurrentAndPeak) {
  MemoryTracker tracker;
  tracker.charge(100);
  tracker.charge(50);
  EXPECT_EQ(tracker.current(), 150u);
  EXPECT_EQ(tracker.peak(), 150u);
  tracker.release(120);
  EXPECT_EQ(tracker.current(), 30u);
  EXPECT_EQ(tracker.peak(), 150u);
  tracker.charge(10);
  EXPECT_EQ(tracker.peak(), 150u);  // peak only moves on new highs
}

TEST(MemoryTracker, UnlimitedByDefault) {
  MemoryTracker tracker;
  EXPECT_NO_THROW(tracker.charge(std::size_t{1} << 60));
}

TEST(MemoryTracker, ThrowsOverBudget) {
  MemoryTracker tracker(1000);
  tracker.charge(900);
  EXPECT_THROW(tracker.charge(200), OutOfDeviceMemory);
  // A failed charge must not corrupt the running total.
  EXPECT_EQ(tracker.current(), 900u);
  EXPECT_NO_THROW(tracker.charge(100));
}

TEST(MemoryTracker, ExceptionCarriesDetails) {
  MemoryTracker tracker(64);
  try {
    tracker.charge(100);
    FAIL() << "expected OutOfDeviceMemory";
  } catch (const OutOfDeviceMemory& e) {
    EXPECT_EQ(e.requested(), 100u);
    EXPECT_EQ(e.budget(), 64u);
    EXPECT_NE(std::string(e.what()).find("100"), std::string::npos);
  }
}

TEST(MemoryTracker, ReleaseClampsAtZero) {
  MemoryTracker tracker;
  tracker.charge(10);
  tracker.release(100);
  EXPECT_EQ(tracker.current(), 0u);
}

TEST(MemoryTracker, ResetClearsBothCounters) {
  MemoryTracker tracker(500);
  tracker.charge(400);
  tracker.reset();
  EXPECT_EQ(tracker.current(), 0u);
  EXPECT_EQ(tracker.peak(), 0u);
  EXPECT_EQ(tracker.budget(), 500u);  // budget survives reset
}

TEST(MemoryTracker, ScopedChargeReleasesOnDestruction) {
  MemoryTracker tracker;
  {
    ScopedCharge charge(&tracker, 256);
    EXPECT_EQ(tracker.current(), 256u);
  }
  EXPECT_EQ(tracker.current(), 0u);
  EXPECT_EQ(tracker.peak(), 256u);
}

TEST(MemoryTracker, ScopedChargeToleratesNullTracker) {
  EXPECT_NO_THROW({ ScopedCharge charge(nullptr, 1024); });
}

}  // namespace
}  // namespace fdbscan::exec
