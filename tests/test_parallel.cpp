#include "exec/parallel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "exec/atomic.h"
#include "test_utils.h"

namespace fdbscan::exec {
namespace {

class ParallelWithThreads : public ::testing::TestWithParam<int> {
 protected:
  testing::ScopedThreads threads_{GetParam()};
};

TEST_P(ParallelWithThreads, ForVisitsEveryIndexExactlyOnce) {
  constexpr std::int64_t kN = 12345;
  std::vector<std::int32_t> visits(kN, 0);
  parallel_for(kN, [&](std::int64_t i) {
    atomic_fetch_add(visits[static_cast<std::size_t>(i)], std::int32_t{1});
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[static_cast<std::size_t>(i)], 1) << "index " << i;
  }
}

TEST_P(ParallelWithThreads, ForHandlesEmptyAndSingle) {
  std::int64_t count = 0;
  parallel_for(0, [&](std::int64_t) { atomic_fetch_add(count, std::int64_t{1}); });
  EXPECT_EQ(count, 0);
  parallel_for(-5, [&](std::int64_t) { atomic_fetch_add(count, std::int64_t{1}); });
  EXPECT_EQ(count, 0);
  parallel_for(1, [&](std::int64_t i) {
    EXPECT_EQ(i, 0);
    atomic_fetch_add(count, std::int64_t{1});
  });
  EXPECT_EQ(count, 1);
}

TEST_P(ParallelWithThreads, ReduceSum) {
  constexpr std::int64_t kN = 100001;
  const std::int64_t total = parallel_reduce(
      kN, std::int64_t{0}, [](std::int64_t i) { return i; },
      [](std::int64_t a, std::int64_t b) { return a + b; });
  EXPECT_EQ(total, kN * (kN - 1) / 2);
}

TEST_P(ParallelWithThreads, ReduceMax) {
  constexpr std::int64_t kN = 7777;
  const std::int64_t mx = parallel_reduce(
      kN, std::int64_t{-1},
      [](std::int64_t i) { return (i * 37) % 1000; },
      [](std::int64_t a, std::int64_t b) { return a > b ? a : b; });
  EXPECT_EQ(mx, 999);
}

TEST_P(ParallelWithThreads, ReduceRespectsInitOnEmptyRange) {
  const int v = parallel_reduce(
      0, 42, [](std::int64_t) { return 0; }, [](int a, int b) { return a + b; });
  EXPECT_EQ(v, 42);
}

TEST_P(ParallelWithThreads, SumConvenience) {
  EXPECT_EQ(parallel_sum<std::int64_t>(1000, [](std::int64_t) { return 2; }),
            2000);
}

TEST_P(ParallelWithThreads, ExclusiveScanMatchesSerialReference) {
  for (std::int64_t n : {0LL, 1LL, 2LL, 100LL, 4095LL, 4096LL, 100000LL}) {
    std::vector<std::int64_t> data(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      data[static_cast<std::size_t>(i)] = (i * 7919) % 13;
    }
    std::vector<std::int64_t> expected(data.size());
    std::int64_t run = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      expected[i] = run;
      run += data[i];
    }
    const std::int64_t total = exclusive_scan(data);
    EXPECT_EQ(total, run) << "n=" << n;
    EXPECT_EQ(data, expected) << "n=" << n;
  }
}

TEST_P(ParallelWithThreads, NestedSequentialKernelsKeepOrdering) {
  // Two kernels in sequence: the second must observe all writes of the
  // first (the pool's dispatch acts as a device-wide barrier).
  constexpr std::int64_t kN = 50000;
  std::vector<std::int32_t> a(kN), b(kN);
  parallel_for(kN, [&](std::int64_t i) {
    a[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(i);
  });
  parallel_for(kN, [&](std::int64_t i) {
    b[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(i)] + 1;
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(b[static_cast<std::size_t>(i)], i + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelWithThreads,
                         ::testing::Values(1, 2, 3, 8));

TEST(Parallel, SetNumThreadsTakesEffect) {
  testing::ScopedThreads threads(3);
  EXPECT_EQ(num_threads(), 3);
  {
    testing::ScopedThreads inner(1);
    EXPECT_EQ(num_threads(), 1);
  }
  EXPECT_EQ(num_threads(), 3);
}

TEST(Parallel, LargeGrainStillCoversRange) {
  // n smaller than any reasonable grain must still be fully covered.
  testing::ScopedThreads threads(8);
  std::int64_t sum = 0;
  parallel_for(3, [&](std::int64_t i) { atomic_fetch_add(sum, i); });
  EXPECT_EQ(sum, 3);
}

}  // namespace
}  // namespace fdbscan::exec
