#include "exec/parallel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include "exec/atomic.h"
#include "exec/profile.h"
#include "test_utils.h"

namespace fdbscan::exec {
namespace {

class ParallelWithThreads : public ::testing::TestWithParam<int> {
 protected:
  testing::ScopedThreads threads_{GetParam()};
};

TEST_P(ParallelWithThreads, ForVisitsEveryIndexExactlyOnce) {
  constexpr std::int64_t kN = 12345;
  std::vector<std::int32_t> visits(kN, 0);
  parallel_for(kN, [&](std::int64_t i) {
    atomic_fetch_add(visits[static_cast<std::size_t>(i)], std::int32_t{1});
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[static_cast<std::size_t>(i)], 1) << "index " << i;
  }
}

TEST_P(ParallelWithThreads, ForHandlesEmptyAndSingle) {
  std::int64_t count = 0;
  parallel_for(0, [&](std::int64_t) { atomic_fetch_add(count, std::int64_t{1}); });
  EXPECT_EQ(count, 0);
  parallel_for(-5, [&](std::int64_t) { atomic_fetch_add(count, std::int64_t{1}); });
  EXPECT_EQ(count, 0);
  parallel_for(1, [&](std::int64_t i) {
    EXPECT_EQ(i, 0);
    atomic_fetch_add(count, std::int64_t{1});
  });
  EXPECT_EQ(count, 1);
}

TEST_P(ParallelWithThreads, ReduceSum) {
  constexpr std::int64_t kN = 100001;
  const std::int64_t total = parallel_reduce(
      kN, std::int64_t{0}, [](std::int64_t i) { return i; },
      [](std::int64_t a, std::int64_t b) { return a + b; });
  EXPECT_EQ(total, kN * (kN - 1) / 2);
}

TEST_P(ParallelWithThreads, ReduceMax) {
  constexpr std::int64_t kN = 7777;
  const std::int64_t mx = parallel_reduce(
      kN, std::int64_t{-1},
      [](std::int64_t i) { return (i * 37) % 1000; },
      [](std::int64_t a, std::int64_t b) { return a > b ? a : b; });
  EXPECT_EQ(mx, 999);
}

TEST_P(ParallelWithThreads, ReduceRespectsInitOnEmptyRange) {
  const int v = parallel_reduce(
      0, 42, [](std::int64_t) { return 0; }, [](int a, int b) { return a + b; });
  EXPECT_EQ(v, 42);
}

TEST_P(ParallelWithThreads, SumConvenience) {
  EXPECT_EQ(parallel_sum<std::int64_t>(1000, [](std::int64_t) { return 2; }),
            2000);
}

TEST_P(ParallelWithThreads, ExclusiveScanMatchesSerialReference) {
  for (std::int64_t n : {0LL, 1LL, 2LL, 100LL, 4095LL, 4096LL, 100000LL}) {
    std::vector<std::int64_t> data(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      data[static_cast<std::size_t>(i)] = (i * 7919) % 13;
    }
    std::vector<std::int64_t> expected(data.size());
    std::int64_t run = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      expected[i] = run;
      run += data[i];
    }
    const std::int64_t total = exclusive_scan(data);
    EXPECT_EQ(total, run) << "n=" << n;
    EXPECT_EQ(data, expected) << "n=" << n;
  }
}

TEST_P(ParallelWithThreads, ThreadIndexStaysInRangeAndRegionFlagIsSet) {
  EXPECT_FALSE(in_parallel_region());
  EXPECT_EQ(thread_index(), 0);  // dispatching thread is slot 0 outside
  constexpr std::int64_t kN = 20000;
  std::vector<std::int32_t> seen_index(kN);
  std::vector<std::uint8_t> seen_flag(kN);
  parallel_for(kN, [&](std::int64_t i) {
    seen_index[static_cast<std::size_t>(i)] = thread_index();
    seen_flag[static_cast<std::size_t>(i)] = in_parallel_region() ? 1 : 0;
  });
  EXPECT_FALSE(in_parallel_region());
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_GE(seen_index[static_cast<std::size_t>(i)], 0);
    ASSERT_LT(seen_index[static_cast<std::size_t>(i)], num_threads());
    ASSERT_EQ(seen_flag[static_cast<std::size_t>(i)], 1);
  }
}

TEST_P(ParallelWithThreads, NestedParallelForInsideKernelIsSerialAndComplete) {
  // A launch from inside a kernel must execute inline (Kokkos serial
  // nested policy), not deadlock or hand chunks to other workers.
  constexpr std::int64_t kOuter = 200;
  constexpr std::int64_t kInner = 300;
  std::vector<std::int64_t> row_sums(kOuter, 0);
  parallel_for(kOuter, [&](std::int64_t i) {
    EXPECT_TRUE(in_parallel_region());
    const int outer_index = thread_index();
    std::int64_t sum = 0;
    parallel_for(kInner, [&](std::int64_t j) {
      // Inline execution: the nested kernel runs on the same thread.
      EXPECT_EQ(thread_index(), outer_index);
      sum += j;
    });
    row_sums[static_cast<std::size_t>(i)] = sum;
  });
  for (std::int64_t i = 0; i < kOuter; ++i) {
    ASSERT_EQ(row_sums[static_cast<std::size_t>(i)], kInner * (kInner - 1) / 2);
  }
}

TEST_P(ParallelWithThreads, NestedScanAndReduceInsideKernel) {
  constexpr std::int64_t kOuter = 64;
  std::vector<std::int64_t> totals(kOuter, 0);
  std::vector<std::int64_t> sums(kOuter, 0);
  parallel_for(kOuter, [&](std::int64_t i) {
    std::vector<std::int64_t> data(100, 2);
    totals[static_cast<std::size_t>(i)] = exclusive_scan(data);
    sums[static_cast<std::size_t>(i)] = parallel_reduce(
        50, std::int64_t{0}, [](std::int64_t j) { return j; },
        [](std::int64_t a, std::int64_t b) { return a + b; });
    // The scan must have produced the running prefix, not garbage.
    EXPECT_EQ(data[0], 0);
    EXPECT_EQ(data[99], 198);
  });
  for (std::int64_t i = 0; i < kOuter; ++i) {
    ASSERT_EQ(totals[static_cast<std::size_t>(i)], 200);
    ASSERT_EQ(sums[static_cast<std::size_t>(i)], 49 * 50 / 2);
  }
}

TEST_P(ParallelWithThreads, ProfilerCountsLaunchesAndChunks) {
  PhaseProfiler profiler;
  KernelPhaseProfile profile;
  constexpr std::int64_t kN = 10000;
  std::vector<std::int32_t> out(kN);
  parallel_for(kN, [&](std::int64_t i) {
    out[static_cast<std::size_t>(i)] = 1;
  });
  profiler.lap(&profile);
  EXPECT_EQ(profile.launches, 1);
  EXPECT_GE(profile.chunks, 1);
  EXPECT_GE(profile.workers, 1);
  EXPECT_LE(profile.workers, num_threads());
  EXPECT_GE(profile.busy_total, 0.0);
  EXPECT_GE(profile.busy_max, 0.0);
  if (profile.workers > 0) {
    EXPECT_GE(profile.imbalance(), 1.0);
  }

  // A quiet phase records nothing.
  KernelPhaseProfile quiet;
  profiler.lap(&quiet);
  EXPECT_EQ(quiet.launches, 0);
  EXPECT_EQ(quiet.chunks, 0);
  EXPECT_EQ(quiet.imbalance(), 0.0);
}

TEST_P(ParallelWithThreads, NestedSequentialKernelsKeepOrdering) {
  // Two kernels in sequence: the second must observe all writes of the
  // first (the pool's dispatch acts as a device-wide barrier).
  constexpr std::int64_t kN = 50000;
  std::vector<std::int32_t> a(kN), b(kN);
  parallel_for(kN, [&](std::int64_t i) {
    a[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(i);
  });
  parallel_for(kN, [&](std::int64_t i) {
    b[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(i)] + 1;
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(b[static_cast<std::size_t>(i)], i + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelWithThreads,
                         ::testing::Values(1, 2, 3, 8));

TEST(Parallel, FloatReduceIsBitIdenticalAcrossThreadCounts) {
  // The chunking of parallel_reduce is thread-count independent and the
  // partials merge in chunk order, so a float sum — where association
  // order changes the rounding — must come out bit-identical at any
  // worker count.
  constexpr std::int64_t kN = 123457;
  auto value = [](std::int64_t i) {
    // Mix magnitudes so a different summation order would actually
    // produce different rounding, not accidentally agree.
    return (i % 7 == 0) ? 1e8f : 1.0f / (static_cast<float>(i) + 1.0f);
  };
  auto run = [&] {
    return parallel_reduce(
        kN, 0.0f, value, [](float a, float b) { return a + b; });
  };
  std::uint32_t reference_bits = 0;
  {
    testing::ScopedThreads threads(1);
    const float sum = run();
    std::memcpy(&reference_bits, &sum, sizeof(sum));
  }
  for (int threads : {2, 8}) {
    testing::ScopedThreads scoped(threads);
    const float sum = run();
    std::uint32_t bits = 0;
    std::memcpy(&bits, &sum, sizeof(sum));
    EXPECT_EQ(bits, reference_bits) << "threads=" << threads;
  }
}

TEST(Parallel, DoubleReduceIsBitIdenticalAcrossThreadCounts) {
  constexpr std::int64_t kN = 99991;
  auto run = [&] {
    return parallel_reduce(
        kN, 0.0, [](std::int64_t i) { return 1.0 / (static_cast<double>(i) + 1.0); },
        [](double a, double b) { return a + b; });
  };
  std::uint64_t reference_bits = 0;
  {
    testing::ScopedThreads threads(1);
    const double sum = run();
    std::memcpy(&reference_bits, &sum, sizeof(sum));
  }
  for (int threads : {2, 8}) {
    testing::ScopedThreads scoped(threads);
    const double sum = run();
    std::uint64_t bits = 0;
    std::memcpy(&bits, &sum, sizeof(sum));
    EXPECT_EQ(bits, reference_bits) << "threads=" << threads;
  }
}

TEST(Parallel, SetNumThreadsTakesEffect) {
  testing::ScopedThreads threads(3);
  EXPECT_EQ(num_threads(), 3);
  {
    testing::ScopedThreads inner(1);
    EXPECT_EQ(num_threads(), 1);
  }
  EXPECT_EQ(num_threads(), 3);
}

TEST(Parallel, LargeGrainStillCoversRange) {
  // n smaller than any reasonable grain must still be fully covered.
  testing::ScopedThreads threads(8);
  std::int64_t sum = 0;
  parallel_for(3, [&](std::int64_t i) { atomic_fetch_add(sum, i); });
  EXPECT_EQ(sum, 3);
}

}  // namespace
}  // namespace fdbscan::exec
