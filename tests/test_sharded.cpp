// ShardedEngine (shard/sharded_engine.h): sharded-vs-single-engine
// equivalence across worker and shard counts, degenerate decompositions,
// plan/engine amortization, typed-error validation, and the sharded path
// through ClusterService including cancellation mid-shard.
#include "shard/sharded_engine.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "core/cluster.h"
#include "core/engine.h"
#include "core/fdbscan.h"
#include "core/validate.h"
#include "distributed/distributed_dbscan.h"
#include "service/service.h"
#include "test_utils.h"

namespace fdbscan::shard {
namespace {

struct ShardCase {
  std::int32_t shards;
  std::int64_t n;
  float eps;
  std::int32_t minpts;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const ShardCase& c) {
    return os << c.shards << " shards n=" << c.n << " eps=" << c.eps
              << " minpts=" << c.minpts << " seed=" << c.seed;
  }
};

class ShardedGroundTruth : public ::testing::TestWithParam<ShardCase> {};

TEST_P(ShardedGroundTruth, MatchesBruteForce) {
  const auto c = GetParam();
  auto points = testing::clustered_points<2>(c.n, 5, 1.0f, c.eps, c.seed);
  const Parameters params{c.eps, c.minpts};
  ShardedEngine<2> engine(points, c.shards);
  const auto result = engine.run(params);
  const auto check = matches_ground_truth(points, params, result.clustering);
  EXPECT_TRUE(check.ok) << check.message;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShardedGroundTruth,
    ::testing::Values(ShardCase{1, 500, 0.02f, 5, 601},
                      ShardCase{2, 500, 0.02f, 5, 602},
                      ShardCase{4, 800, 0.03f, 8, 603},
                      ShardCase{5, 1000, 0.01f, 4, 604},
                      ShardCase{4, 600, 0.02f, 2, 605},   // FoF path
                      ShardCase{3, 600, 0.05f, 1, 606},   // minpts=1
                      ShardCase{4, 400, 0.5f, 10, 607},   // huge halos
                      ShardCase{8, 200, 0.02f, 5, 608}));  // tiny shards

// The tentpole's correctness gate in test form: sharded labels are
// equivalent to single-engine labels (up to cluster renumbering), with
// bit-identical core flags and cluster counts, at every (workers, shards)
// combination the issue names.
TEST(Sharded, AgreesWithSingleEngineAcrossWorkerAndShardCounts) {
  auto points = testing::clustered_points<2>(4000, 6, 1.0f, 0.02f, 611);
  const Parameters params{0.03f, 10};
  Engine<2> reference_engine(points);
  const Clustering reference = reference_engine.run(params);
  for (int workers : {1, 2, 8}) {
    testing::ScopedThreads threads(workers);
    for (std::int32_t shards : {1, 2, 4}) {
      ShardedEngine<2> engine(points, shards);
      const auto result = engine.run(params);
      const auto check = equivalent_clusterings(points, params, reference,
                                                result.clustering);
      EXPECT_TRUE(check.ok)
          << "workers=" << workers << " shards=" << shards << ": "
          << check.message;
      EXPECT_EQ(result.clustering.is_core, reference.is_core)
          << "workers=" << workers << " shards=" << shards;
      EXPECT_EQ(result.clustering.num_clusters, reference.num_clusters)
          << "workers=" << workers << " shards=" << shards;
    }
  }
}

// Work counters on the sharded path are real (non-zero) and, like the
// single-engine ones, invariant to the worker count.
TEST(Sharded, WorkCountersReportedAndWorkerInvariant) {
  auto points = testing::clustered_points<2>(2000, 5, 1.0f, 0.02f, 612);
  const Parameters params{0.03f, 10};
  std::int64_t dist_comps = -1;
  std::int64_t nodes_visited = -1;
  for (int workers : {1, 8}) {
    testing::ScopedThreads threads(workers);
    ShardedEngine<2> engine(points, 3);
    const auto result = engine.run(params);
    EXPECT_GT(result.clustering.distance_computations, 0);
    EXPECT_GT(result.clustering.index_nodes_visited, 0);
    if (dist_comps < 0) {
      dist_comps = result.clustering.distance_computations;
      nodes_visited = result.clustering.index_nodes_visited;
    } else {
      EXPECT_EQ(result.clustering.distance_computations, dist_comps);
      EXPECT_EQ(result.clustering.index_nodes_visited, nodes_visited);
    }
  }
}

TEST(Sharded, StatsPartitionThePoints) {
  auto points = testing::random_points<2>(2000, 1.0f, 613);
  ShardedEngine<2> engine(points, 4);
  const auto result = engine.run(Parameters{0.05f, 5});
  ASSERT_EQ(result.shards.size(), 4u);
  std::int64_t owned = 0;
  for (const auto& s : result.shards) {
    owned += s.owned;
    EXPECT_GE(s.ghosts, 0);
    EXPECT_EQ(s.halo_bytes,
              static_cast<std::int64_t>(s.ghosts) *
                  static_cast<std::int64_t>(sizeof(Point2) +
                                            sizeof(std::int32_t) +
                                            sizeof(std::uint8_t)));
  }
  EXPECT_EQ(owned, 2000);
  EXPECT_GT(result.clustering.shard_ghosts, 0);
  EXPECT_EQ(result.clustering.num_shards, 4);
}

TEST(Sharded, OneShardHasNoGhostsOrCrossEdges) {
  auto points = testing::random_points<2>(1000, 1.0f, 614);
  ShardedEngine<2> engine(points, 1);
  const auto result = engine.run(Parameters{0.05f, 5});
  EXPECT_EQ(result.clustering.shard_ghosts, 0);
  EXPECT_EQ(result.clustering.shard_cross_edges, 0);
  EXPECT_EQ(result.clustering.shard_halo_bytes, 0);
  EXPECT_EQ(result.shards[0].owned, 1000);
}

// A cluster straddling the slab boundary must be stitched into one, with
// the boundary work visible in the stats.
TEST(Sharded, CrossShardClustersAreStitched) {
  std::vector<Point2> points;
  for (int i = 0; i < 200; ++i) {
    points.push_back({{0.5f + 0.0005f * static_cast<float>(i - 100), 0.5f}});
  }
  points.push_back({{0.0f, 0.0f}});  // anchors: the split at x=0.5 cuts
  points.push_back({{1.0f, 1.0f}});  // the cluster
  const Parameters params{0.01f, 5};
  ShardedEngine<2> engine(points, 2);
  const auto result = engine.run(params);
  EXPECT_EQ(result.clustering.num_clusters, 1);
  EXPECT_GT(result.clustering.shard_cross_edges, 0);
  EXPECT_GT(result.clustering.shard_halo_bytes, 0);
}

// Heavy coordinate duplicates defeat even balanced cuts: two blobs at
// duplicated axis coordinates collapse the quantiles, ties all stay in
// the lowest covering shard, and the squeezed-out shards own nothing —
// yet with a wide-enough eps their zero-width slabs still receive ghosts
// (the all-ghost shard degenerate case).
TEST(Sharded, EmptyAndAllGhostShards) {
  std::vector<Point2> points;
  for (int i = 0; i < 30; ++i) {
    points.push_back({{0.1f, 0.5f + 0.001f * static_cast<float>(i)}});
    points.push_back({{0.9f, 0.5f + 0.001f * static_cast<float>(i)}});
  }
  const Parameters params{0.3f, 5};
  ShardedEngine<2> engine(points, 4);
  const auto result = engine.run(params);
  bool saw_all_ghost = false;
  for (const auto& s : result.shards) {
    if (s.owned == 0) {
      EXPECT_EQ(s.cross_edges, 0);  // no owned points, no resolved edges
      if (s.ghosts > 0) saw_all_ghost = true;
    }
  }
  EXPECT_TRUE(saw_all_ghost) << "expected an owned-empty shard with ghosts";
  const auto check = matches_ground_truth(points, params, result.clustering);
  EXPECT_TRUE(check.ok) << check.message;
  EXPECT_EQ(result.clustering.num_clusters, 2);
}

// All points identical: the domain has zero width along every axis, so
// shard 0 owns everything and the others are empty. The empty shards'
// zero-width slabs all coincide with the points, so they still *report*
// every point as a ghost — a decomposition fact, not work: they own
// nothing, launch nothing, and resolve no edges.
TEST(Sharded, ZeroWidthDomain) {
  std::vector<Point2> points(10, Point2{{0.25f, 0.75f}});
  ShardedEngine<2> engine(points, 4);
  const auto result = engine.run(Parameters{0.1f, 5});
  EXPECT_EQ(result.shards[0].owned, 10);
  EXPECT_EQ(result.clustering.num_clusters, 1);
  for (std::int32_t r = 1; r < 4; ++r) {
    EXPECT_EQ(result.shards[static_cast<std::size_t>(r)].owned, 0);
    EXPECT_EQ(result.shards[static_cast<std::size_t>(r)].ghosts, 10);
    EXPECT_EQ(result.shards[static_cast<std::size_t>(r)].cross_edges, 0);
  }
}

TEST(Sharded, EmptyInput) {
  std::vector<Point2> points;
  ShardedEngine<2> engine(points, 3);
  const auto result = engine.run(Parameters{0.1f, 5});
  EXPECT_TRUE(result.clustering.labels.empty());
  EXPECT_EQ(result.shards.size(), 3u);
}

TEST(Sharded, RejectsNonPositiveShardCount) {
  auto points = testing::random_points<2>(10, 1.0f, 615);
  EXPECT_THROW(ShardedEngine<2>(points, 0), std::invalid_argument);
}

// Amortization: a repeat run at the same eps reuses the plan and every
// per-shard BVH; a new eps builds a new plan (new halos) but the old one
// stays cached.
TEST(Sharded, WarmShardEnginesAmortize) {
  auto points = testing::clustered_points<2>(3000, 5, 1.0f, 0.02f, 616);
  ShardedEngine<2> engine(points, 4);

  const auto first = engine.run(Parameters{0.03f, 10});
  EXPECT_GT(first.clustering.timings.index_rebuilds, 0);
  EXPECT_EQ(engine.counters().plans_built, 1);

  const auto warm = engine.run(Parameters{0.03f, 5});  // same eps, new minpts
  EXPECT_EQ(warm.clustering.timings.index_rebuilds, 0);
  EXPECT_EQ(warm.clustering.timings.workspace_reallocs, 0);
  EXPECT_EQ(engine.counters().plans_built, 1);
  EXPECT_EQ(engine.counters().plan_cache_hits, 1);

  const auto cold = engine.run(Parameters{0.05f, 10});  // new eps: new plan
  EXPECT_GT(cold.clustering.timings.index_rebuilds, 0);
  EXPECT_EQ(engine.counters().plans_built, 2);

  const auto back = engine.run(Parameters{0.03f, 10});  // still cached
  EXPECT_EQ(back.clustering.timings.index_rebuilds, 0);
  EXPECT_EQ(engine.counters().plans_built, 2);
  EXPECT_EQ(engine.counters().plan_cache_hits, 2);
}

// --- Typed-error validation (satellite) ----------------------------------

TEST(Sharded, ClusterShardedValidatesLikeClusterDoes) {
  auto points = testing::random_points<2>(100, 1.0f, 617);
  ShardedEngine<2> engine(points, 2);

  const auto bad_eps = cluster_sharded(engine, Parameters{-1.0f, 5});
  ASSERT_FALSE(bad_eps.has_value());
  EXPECT_EQ(bad_eps.error().code, ErrorCode::kInvalidEps);

  const auto bad_minpts = cluster_sharded(engine, Parameters{0.1f, 0});
  ASSERT_FALSE(bad_minpts.has_value());
  EXPECT_EQ(bad_minpts.error().code, ErrorCode::kInvalidMinpts);

  auto poisoned = points;
  poisoned[7][1] = std::nanf("");
  ShardedEngine<2> poisoned_engine(poisoned, 2);
  const auto bad_point = cluster_sharded(poisoned_engine, Parameters{0.1f, 5});
  ASSERT_FALSE(bad_point.has_value());
  EXPECT_EQ(bad_point.error().code, ErrorCode::kNonFinitePoint);

  const auto ok = cluster_sharded(engine, Parameters{0.05f, 5});
  ASSERT_TRUE(ok.has_value());
  const auto check =
      matches_ground_truth(points, Parameters{0.05f, 5}, ok->clustering);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(DistributedCluster, ValidatesLikeClusterDoes) {
  auto points = testing::random_points<2>(100, 1.0f, 618);
  fdbscan::distributed::DistributedConfig<2> config;
  config.ranks_per_dim[0] = 2;

  const auto bad_eps = fdbscan::distributed::distributed_cluster(
      points, Parameters{0.0f, 5}, config);
  ASSERT_FALSE(bad_eps.has_value());
  EXPECT_EQ(bad_eps.error().code, ErrorCode::kInvalidEps);

  fdbscan::distributed::DistributedConfig<2> bad_grid;
  bad_grid.ranks_per_dim[0] = 0;
  const auto bad_ranks = fdbscan::distributed::distributed_cluster(
      points, Parameters{0.1f, 5}, bad_grid);
  ASSERT_FALSE(bad_ranks.has_value());
  EXPECT_EQ(bad_ranks.error().code, ErrorCode::kInvalidShards);

  const auto ok =
      fdbscan::distributed::distributed_cluster(points, Parameters{0.05f, 5}, config);
  ASSERT_TRUE(ok.has_value());
  const auto check =
      matches_ground_truth(points, Parameters{0.05f, 5}, ok->clustering);
  EXPECT_TRUE(check.ok) << check.message;
}

// --- The service surface -------------------------------------------------

std::shared_ptr<const std::vector<Point2>> shared_points(std::int64_t n,
                                                         std::uint64_t seed) {
  return std::make_shared<const std::vector<Point2>>(
      fdbscan::testing::clustered_points<2>(n, 6, 1.0f, 0.02f, seed));
}

TEST(ServiceSharded, SubmitOverrideMatchesSingleEngine) {
  const auto points = shared_points(4000, 619);
  const Parameters params{0.03f, 10};
  const auto expected = cluster(*points, params, {}, Method::kFdbscan);
  ASSERT_TRUE(expected.has_value());

  service::ClusterService service;
  service::SubmitOptions submit;
  submit.shards = 4;
  auto result = service.submit<2>("ds", points, params, submit).get();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->num_shards, 4);
  EXPECT_GT(result->shard_ghosts, 0);
  const auto check =
      equivalent_clusterings(*points, params, *expected, *result);
  EXPECT_TRUE(check.ok) << check.message;
  EXPECT_EQ(result->is_core, expected->is_core);
  EXPECT_EQ(result->num_clusters, expected->num_clusters);
}

TEST(ServiceSharded, ConfigDefaultAppliesWhenSubmitLeavesZero) {
  const auto points = shared_points(2000, 620);
  const Parameters params{0.03f, 10};
  service::ServiceConfig config;
  config.shards = 2;
  service::ClusterService service(config);
  auto result = service.submit<2>("ds", points, params).get();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->num_shards, 2);

  // An explicit shards=1 overrides the config back to single-engine.
  service::SubmitOptions single;
  single.shards = 1;
  auto direct = service.submit<2>("ds", points, params, single).get();
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(direct->num_shards, 0);
}

TEST(ServiceSharded, NegativeShardsRejectedAtSubmit) {
  const auto points = shared_points(100, 621);
  service::ClusterService service;
  service::SubmitOptions submit;
  submit.shards = -1;
  auto result =
      service.submit<2>("ds", points, Parameters{0.05f, 5}, submit).get();
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidShards);
  EXPECT_GE(service.metrics().failed, 1);
}

TEST(ServiceSharded, FromEnvReadsTheShardsKnob) {
  ::setenv("FDBSCAN_SERVICE_SHARDS", "3", 1);
  EXPECT_EQ(service::ServiceConfig::from_env().shards, 3);
  ::unsetenv("FDBSCAN_SERVICE_SHARDS");
  EXPECT_EQ(service::ServiceConfig::from_env().shards,
            service::ServiceConfig{}.shards);
}

// Cancellation raised while the shards are mid-flight must unwind every
// shard, resolve the future with kCancelled, and leave the pooled
// ShardedEngine reusable: the resubmit completes with correct labels.
TEST(ServiceSharded, CancelMidShardLeavesPoolReusable) {
  const auto points = shared_points(60000, 622);
  const Parameters params{0.05f, 10};
  service::ClusterService service;

  auto token = std::make_shared<exec::CancelToken>();
  service::SubmitOptions submit;
  submit.shards = 4;
  submit.token = token;
  auto cancelled = service.submit<2>("ds", points, params, submit);
  // Let the request reach the dispatcher, then cancel mid-run. Even if
  // the cancel lands before the run starts, the request still resolves
  // to kCancelled and the engine stays reusable — the interesting
  // schedule (mid-wave cancel) is just the likeliest one.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  token->request_cancel();
  auto result = cancelled.get();
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::kCancelled);

  service::SubmitOptions retry;
  retry.shards = 4;
  auto good = service.submit<2>("ds", points, params, retry).get();
  ASSERT_TRUE(good.has_value());
  const auto expected = cluster(*points, params, {}, Method::kFdbscan);
  ASSERT_TRUE(expected.has_value());
  const auto check = equivalent_clusterings(*points, params, *expected, *good);
  EXPECT_TRUE(check.ok) << check.message;
  EXPECT_EQ(good->is_core, expected->is_core);
}

// A deadline that expires mid-shard behaves like a cancel with the
// deadline reason.
TEST(ServiceSharded, DeadlineMidShardResolvesDeadlineExceeded) {
  const auto points = shared_points(60000, 623);
  service::ClusterService service;
  service::SubmitOptions submit;
  submit.shards = 4;
  submit.deadline_ms = 1.0;
  auto result =
      service.submit<2>("ds", points, Parameters{0.05f, 10}, submit).get();
  if (!result.has_value()) {
    EXPECT_EQ(result.error().code, ErrorCode::kDeadlineExceeded);
  }
  // Pool must stay reusable either way.
  auto good =
      service.submit<2>("ds", points, Parameters{0.03f, 10},
                        service::SubmitOptions{})
          .get();
  EXPECT_TRUE(good.has_value());
}

}  // namespace
}  // namespace fdbscan::shard
