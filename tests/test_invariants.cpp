// Direct DBSCAN-specification invariants, checked with O(n * query)
// index lookups instead of the O(n^2) brute force — this lets the
// property sweep run at sizes (10k+) where scheduling, chunking and
// union-find contention behave like production runs:
//   I1. x is core  <=>  |N_eps(x)| >= minpts;
//   I2. every core point is clustered (never noise);
//   I3. eps-close core points share a cluster;
//   I4. a clustered non-core (border) point has an eps-close core point
//       in its own cluster;
//   I5. a noise point has no eps-close core point at all.
#include <gtest/gtest.h>

#include "bvh/bvh.h"
#include "core/fdbscan.h"
#include "core/fdbscan_densebox.h"
#include "data/generators.h"
#include "distributed/distributed_dbscan.h"
#include "test_utils.h"

namespace fdbscan {
namespace {

template <int DIM>
void check_invariants(const std::vector<Point<DIM>>& points,
                      const Parameters& params, const Clustering& c) {
  ASSERT_EQ(c.labels.size(), points.size());
  ASSERT_EQ(c.is_core.size(), points.size());
  const float eps2 = params.eps * params.eps;
  Bvh<DIM> bvh(points);
  for (std::size_t i = 0; i < points.size(); ++i) {
    // Gather neighborhood facts in one query.
    std::int32_t neighbor_count = 0;  // includes i itself
    bool core_neighbor = false;
    bool core_neighbor_same_cluster = false;
    bvh.for_each_near(
        points[i], eps2,
        [&](std::int32_t, std::int32_t j) -> TraversalControl {
          ++neighbor_count;
          if (static_cast<std::size_t>(j) != i &&
              c.is_core[static_cast<std::size_t>(j)] != 0) {
            core_neighbor = true;
            if (c.labels[static_cast<std::size_t>(j)] == c.labels[i]) {
              core_neighbor_same_cluster = true;
            }
            // I3 for this pair.
            if (c.is_core[i] != 0) {
              EXPECT_EQ(c.labels[i], c.labels[static_cast<std::size_t>(j)])
                  << "I3: eps-close core points " << i << " and " << j
                  << " in different clusters";
            }
          }
          return TraversalControl::kContinue;
        });
    if (::testing::Test::HasFailure()) return;
    const bool should_be_core = neighbor_count >= params.minpts;
    ASSERT_EQ(c.is_core[i] != 0, should_be_core) << "I1 at point " << i;
    if (should_be_core) {
      ASSERT_NE(c.labels[i], kNoise) << "I2 at point " << i;
    } else if (c.labels[i] != kNoise) {
      ASSERT_TRUE(core_neighbor_same_cluster) << "I4 at point " << i;
    } else {
      ASSERT_FALSE(core_neighbor) << "I5 at point " << i;
    }
  }
}

struct InvariantCase {
  int dataset;  // 0 ngsim, 1 porto, 2 road
  std::int64_t n;
  float eps;
  std::int32_t minpts;
  int threads;
};

class LargeScaleInvariants : public ::testing::TestWithParam<InvariantCase> {
 protected:
  std::vector<Point2> make_points() const {
    const auto c = GetParam();
    switch (c.dataset) {
      case 0:
        return data::ngsim_like(c.n, 601);
      case 1:
        return data::porto_taxi_like(c.n, 602);
      default:
        return data::road_network_like(c.n, 603);
    }
  }
};

TEST_P(LargeScaleInvariants, Fdbscan) {
  const auto c = GetParam();
  testing::ScopedThreads threads(c.threads);
  const auto points = make_points();
  const Parameters params{c.eps, c.minpts};
  check_invariants(points, params, fdbscan(points, params));
}

TEST_P(LargeScaleInvariants, DenseBox) {
  const auto c = GetParam();
  testing::ScopedThreads threads(c.threads);
  const auto points = make_points();
  const Parameters params{c.eps, c.minpts};
  check_invariants(points, params, fdbscan_densebox(points, params));
}

TEST_P(LargeScaleInvariants, Distributed) {
  const auto c = GetParam();
  testing::ScopedThreads threads(c.threads);
  const auto points = make_points();
  const Parameters params{c.eps, c.minpts};
  distributed::DistributedConfig<2> config;
  config.ranks_per_dim[0] = 2;
  config.ranks_per_dim[1] = 2;
  check_invariants(points, params,
                   distributed::distributed_dbscan(points, params, config)
                       .clustering);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LargeScaleInvariants,
    ::testing::Values(InvariantCase{0, 10000, 0.002f, 20, 8},
                      InvariantCase{1, 10000, 0.005f, 10, 8},
                      InvariantCase{2, 10000, 0.01f, 8, 8},
                      InvariantCase{1, 20000, 0.003f, 5, 4},
                      InvariantCase{2, 15000, 0.02f, 2, 8}));

TEST(LargeScaleInvariants3D, CosmologyFriendsOfFriends) {
  testing::ScopedThreads threads(8);
  data::CosmologyConfig config;
  config.box_size = 64.0f * std::cbrt(30000.0f / 16e6f);
  const auto points = data::hacc_like(30000, 604, config);
  const Parameters params{0.042f, 2};
  check_invariants(points, params, fdbscan(points, params));
  check_invariants(points, params, fdbscan_densebox(points, params));
}

}  // namespace
}  // namespace fdbscan
