file(REMOVE_RECURSE
  "libfdbscan.a"
)
