# Empty compiler generated dependencies file for fdbscan.
# This may be replaced when dependencies are built.
