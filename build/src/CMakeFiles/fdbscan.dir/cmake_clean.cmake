file(REMOVE_RECURSE
  "CMakeFiles/fdbscan.dir/data/generators.cpp.o"
  "CMakeFiles/fdbscan.dir/data/generators.cpp.o.d"
  "CMakeFiles/fdbscan.dir/data/io.cpp.o"
  "CMakeFiles/fdbscan.dir/data/io.cpp.o.d"
  "CMakeFiles/fdbscan.dir/exec/memory_tracker.cpp.o"
  "CMakeFiles/fdbscan.dir/exec/memory_tracker.cpp.o.d"
  "CMakeFiles/fdbscan.dir/exec/thread_pool.cpp.o"
  "CMakeFiles/fdbscan.dir/exec/thread_pool.cpp.o.d"
  "libfdbscan.a"
  "libfdbscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdbscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
