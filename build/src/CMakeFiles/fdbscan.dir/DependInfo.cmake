
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/generators.cpp" "src/CMakeFiles/fdbscan.dir/data/generators.cpp.o" "gcc" "src/CMakeFiles/fdbscan.dir/data/generators.cpp.o.d"
  "/root/repo/src/data/io.cpp" "src/CMakeFiles/fdbscan.dir/data/io.cpp.o" "gcc" "src/CMakeFiles/fdbscan.dir/data/io.cpp.o.d"
  "/root/repo/src/exec/memory_tracker.cpp" "src/CMakeFiles/fdbscan.dir/exec/memory_tracker.cpp.o" "gcc" "src/CMakeFiles/fdbscan.dir/exec/memory_tracker.cpp.o.d"
  "/root/repo/src/exec/thread_pool.cpp" "src/CMakeFiles/fdbscan.dir/exec/thread_pool.cpp.o" "gcc" "src/CMakeFiles/fdbscan.dir/exec/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
