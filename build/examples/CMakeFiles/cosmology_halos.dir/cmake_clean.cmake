file(REMOVE_RECURSE
  "CMakeFiles/cosmology_halos.dir/cosmology_halos.cpp.o"
  "CMakeFiles/cosmology_halos.dir/cosmology_halos.cpp.o.d"
  "cosmology_halos"
  "cosmology_halos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmology_halos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
