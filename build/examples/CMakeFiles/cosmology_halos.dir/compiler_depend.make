# Empty compiler generated dependencies file for cosmology_halos.
# This may be replaced when dependencies are built.
