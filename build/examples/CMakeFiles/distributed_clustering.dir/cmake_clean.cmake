file(REMOVE_RECURSE
  "CMakeFiles/distributed_clustering.dir/distributed_clustering.cpp.o"
  "CMakeFiles/distributed_clustering.dir/distributed_clustering.cpp.o.d"
  "distributed_clustering"
  "distributed_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
