# Empty compiler generated dependencies file for distributed_clustering.
# This may be replaced when dependencies are built.
