# Empty dependencies file for hierarchical_clustering.
# This may be replaced when dependencies are built.
