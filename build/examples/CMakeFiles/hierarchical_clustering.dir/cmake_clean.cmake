file(REMOVE_RECURSE
  "CMakeFiles/hierarchical_clustering.dir/hierarchical_clustering.cpp.o"
  "CMakeFiles/hierarchical_clustering.dir/hierarchical_clustering.cpp.o.d"
  "hierarchical_clustering"
  "hierarchical_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
