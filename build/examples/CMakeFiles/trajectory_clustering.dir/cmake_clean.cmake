file(REMOVE_RECURSE
  "CMakeFiles/trajectory_clustering.dir/trajectory_clustering.cpp.o"
  "CMakeFiles/trajectory_clustering.dir/trajectory_clustering.cpp.o.d"
  "trajectory_clustering"
  "trajectory_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajectory_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
