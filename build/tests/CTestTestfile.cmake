# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_atomic[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_memory_tracker[1]_include.cmake")
include("/root/repo/build/tests/test_geometry[1]_include.cmake")
include("/root/repo/build/tests/test_morton[1]_include.cmake")
include("/root/repo/build/tests/test_union_find[1]_include.cmake")
include("/root/repo/build/tests/test_bvh[1]_include.cmake")
include("/root/repo/build/tests/test_kdtree[1]_include.cmake")
include("/root/repo/build/tests/test_dense_grid[1]_include.cmake")
include("/root/repo/build/tests/test_uniform_grid_index[1]_include.cmake")
include("/root/repo/build/tests/test_clustering[1]_include.cmake")
include("/root/repo/build/tests/test_fdbscan[1]_include.cmake")
include("/root/repo/build/tests/test_densebox[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_generators[1]_include.cmake")
include("/root/repo/build/tests/test_validate[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_work_counters[1]_include.cmake")
include("/root/repo/build/tests/test_auto_select[1]_include.cmake")
include("/root/repo/build/tests/test_distributed[1]_include.cmake")
include("/root/repo/build/tests/test_invariants[1]_include.cmake")
include("/root/repo/build/tests/test_radix_sort[1]_include.cmake")
include("/root/repo/build/tests/test_more_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_hybrid[1]_include.cmake")
include("/root/repo/build/tests/test_higher_dims[1]_include.cmake")
include("/root/repo/build/tests/test_periodic[1]_include.cmake")
include("/root/repo/build/tests/test_emst[1]_include.cmake")
include("/root/repo/build/tests/test_parameter_selection[1]_include.cmake")
