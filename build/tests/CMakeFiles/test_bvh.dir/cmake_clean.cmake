file(REMOVE_RECURSE
  "CMakeFiles/test_bvh.dir/test_bvh.cpp.o"
  "CMakeFiles/test_bvh.dir/test_bvh.cpp.o.d"
  "test_bvh"
  "test_bvh.pdb"
  "test_bvh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bvh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
