# Empty dependencies file for test_more_baselines.
# This may be replaced when dependencies are built.
