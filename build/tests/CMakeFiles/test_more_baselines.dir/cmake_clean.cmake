file(REMOVE_RECURSE
  "CMakeFiles/test_more_baselines.dir/test_more_baselines.cpp.o"
  "CMakeFiles/test_more_baselines.dir/test_more_baselines.cpp.o.d"
  "test_more_baselines"
  "test_more_baselines.pdb"
  "test_more_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_more_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
