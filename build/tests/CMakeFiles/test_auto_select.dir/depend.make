# Empty dependencies file for test_auto_select.
# This may be replaced when dependencies are built.
