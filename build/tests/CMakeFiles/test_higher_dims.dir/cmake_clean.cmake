file(REMOVE_RECURSE
  "CMakeFiles/test_higher_dims.dir/test_higher_dims.cpp.o"
  "CMakeFiles/test_higher_dims.dir/test_higher_dims.cpp.o.d"
  "test_higher_dims"
  "test_higher_dims.pdb"
  "test_higher_dims[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_higher_dims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
