# Empty dependencies file for test_higher_dims.
# This may be replaced when dependencies are built.
