# Empty compiler generated dependencies file for test_densebox.
# This may be replaced when dependencies are built.
