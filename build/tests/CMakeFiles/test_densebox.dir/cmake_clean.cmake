file(REMOVE_RECURSE
  "CMakeFiles/test_densebox.dir/test_densebox.cpp.o"
  "CMakeFiles/test_densebox.dir/test_densebox.cpp.o.d"
  "test_densebox"
  "test_densebox.pdb"
  "test_densebox[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_densebox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
