file(REMOVE_RECURSE
  "CMakeFiles/test_dense_grid.dir/test_dense_grid.cpp.o"
  "CMakeFiles/test_dense_grid.dir/test_dense_grid.cpp.o.d"
  "test_dense_grid"
  "test_dense_grid.pdb"
  "test_dense_grid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dense_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
