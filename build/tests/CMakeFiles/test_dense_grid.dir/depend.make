# Empty dependencies file for test_dense_grid.
# This may be replaced when dependencies are built.
