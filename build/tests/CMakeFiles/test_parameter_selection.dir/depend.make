# Empty dependencies file for test_parameter_selection.
# This may be replaced when dependencies are built.
