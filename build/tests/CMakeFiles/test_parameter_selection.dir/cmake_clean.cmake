file(REMOVE_RECURSE
  "CMakeFiles/test_parameter_selection.dir/test_parameter_selection.cpp.o"
  "CMakeFiles/test_parameter_selection.dir/test_parameter_selection.cpp.o.d"
  "test_parameter_selection"
  "test_parameter_selection.pdb"
  "test_parameter_selection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parameter_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
