file(REMOVE_RECURSE
  "CMakeFiles/test_fdbscan.dir/test_fdbscan.cpp.o"
  "CMakeFiles/test_fdbscan.dir/test_fdbscan.cpp.o.d"
  "test_fdbscan"
  "test_fdbscan.pdb"
  "test_fdbscan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fdbscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
