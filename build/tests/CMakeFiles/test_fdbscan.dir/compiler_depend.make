# Empty compiler generated dependencies file for test_fdbscan.
# This may be replaced when dependencies are built.
