# Empty dependencies file for test_uniform_grid_index.
# This may be replaced when dependencies are built.
