file(REMOVE_RECURSE
  "CMakeFiles/test_emst.dir/test_emst.cpp.o"
  "CMakeFiles/test_emst.dir/test_emst.cpp.o.d"
  "test_emst"
  "test_emst.pdb"
  "test_emst[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
