# Empty compiler generated dependencies file for test_emst.
# This may be replaced when dependencies are built.
