# Empty dependencies file for fig4_minpts.
# This may be replaced when dependencies are built.
