file(REMOVE_RECURSE
  "../bench/fig4_minpts"
  "../bench/fig4_minpts.pdb"
  "CMakeFiles/fig4_minpts.dir/fig4_minpts.cpp.o"
  "CMakeFiles/fig4_minpts.dir/fig4_minpts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_minpts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
