# Empty dependencies file for ablation_cellwidth.
# This may be replaced when dependencies are built.
