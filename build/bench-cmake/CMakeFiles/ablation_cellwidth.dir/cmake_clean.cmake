file(REMOVE_RECURSE
  "../bench/ablation_cellwidth"
  "../bench/ablation_cellwidth.pdb"
  "CMakeFiles/ablation_cellwidth.dir/ablation_cellwidth.cpp.o"
  "CMakeFiles/ablation_cellwidth.dir/ablation_cellwidth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cellwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
