# Empty compiler generated dependencies file for fig4_eps.
# This may be replaced when dependencies are built.
