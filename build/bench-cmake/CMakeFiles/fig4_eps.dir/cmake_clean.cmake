file(REMOVE_RECURSE
  "../bench/fig4_eps"
  "../bench/fig4_eps.pdb"
  "CMakeFiles/fig4_eps.dir/fig4_eps.cpp.o"
  "CMakeFiles/fig4_eps.dir/fig4_eps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_eps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
