file(REMOVE_RECURSE
  "../bench/ablation_traversal"
  "../bench/ablation_traversal.pdb"
  "CMakeFiles/ablation_traversal.dir/ablation_traversal.cpp.o"
  "CMakeFiles/ablation_traversal.dir/ablation_traversal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
