# Empty compiler generated dependencies file for table_memory.
# This may be replaced when dependencies are built.
