file(REMOVE_RECURSE
  "../bench/table_memory"
  "../bench/table_memory.pdb"
  "CMakeFiles/table_memory.dir/table_memory.cpp.o"
  "CMakeFiles/table_memory.dir/table_memory.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
