file(REMOVE_RECURSE
  "../bench/fig7_cosmo_eps"
  "../bench/fig7_cosmo_eps.pdb"
  "CMakeFiles/fig7_cosmo_eps.dir/fig7_cosmo_eps.cpp.o"
  "CMakeFiles/fig7_cosmo_eps.dir/fig7_cosmo_eps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_cosmo_eps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
