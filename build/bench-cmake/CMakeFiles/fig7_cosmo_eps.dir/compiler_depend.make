# Empty compiler generated dependencies file for fig7_cosmo_eps.
# This may be replaced when dependencies are built.
