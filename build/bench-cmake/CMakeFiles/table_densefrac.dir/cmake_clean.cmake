file(REMOVE_RECURSE
  "../bench/table_densefrac"
  "../bench/table_densefrac.pdb"
  "CMakeFiles/table_densefrac.dir/table_densefrac.cpp.o"
  "CMakeFiles/table_densefrac.dir/table_densefrac.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_densefrac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
