# Empty compiler generated dependencies file for table_densefrac.
# This may be replaced when dependencies are built.
