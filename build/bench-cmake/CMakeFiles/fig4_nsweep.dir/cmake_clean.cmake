file(REMOVE_RECURSE
  "../bench/fig4_nsweep"
  "../bench/fig4_nsweep.pdb"
  "CMakeFiles/fig4_nsweep.dir/fig4_nsweep.cpp.o"
  "CMakeFiles/fig4_nsweep.dir/fig4_nsweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_nsweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
