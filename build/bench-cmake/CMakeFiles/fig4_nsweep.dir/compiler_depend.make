# Empty compiler generated dependencies file for fig4_nsweep.
# This may be replaced when dependencies are built.
