# Empty dependencies file for table_phases.
# This may be replaced when dependencies are built.
