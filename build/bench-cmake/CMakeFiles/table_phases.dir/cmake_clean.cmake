file(REMOVE_RECURSE
  "../bench/table_phases"
  "../bench/table_phases.pdb"
  "CMakeFiles/table_phases.dir/table_phases.cpp.o"
  "CMakeFiles/table_phases.dir/table_phases.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
