# Empty dependencies file for fig6_cosmo_minpts.
# This may be replaced when dependencies are built.
