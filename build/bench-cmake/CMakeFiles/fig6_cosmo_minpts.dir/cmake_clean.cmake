file(REMOVE_RECURSE
  "../bench/fig6_cosmo_minpts"
  "../bench/fig6_cosmo_minpts.pdb"
  "CMakeFiles/fig6_cosmo_minpts.dir/fig6_cosmo_minpts.cpp.o"
  "CMakeFiles/fig6_cosmo_minpts.dir/fig6_cosmo_minpts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cosmo_minpts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
