#!/usr/bin/env python3
"""Parse and validate fdbscan statusz dumps (DESIGN.md §13).

A statusz dump is the obs registry's Prometheus text exposition wrapped
in sequence-numbered sentinel comments:

    # fdbscan-statusz seq=N ts_ns=T
    # TYPE fdbscan_service_submitted_total counter
    fdbscan_service_submitted_total 42
    ...
    # end fdbscan-statusz seq=N

It is produced by obs::statusz_text() — on demand, or whenever a process
that called obs::statusz_install() (every bench binary does) receives
SIGUSR1. With FDBSCAN_STATUSZ=<path> the dump goes to the file via
write-then-rename, so a polling reader never sees a truncated snapshot.

Usage:
  fdbscan_statusz.py FILE [FILE...]        validate dump files: the text
                       must parse, every histogram's +Inf bucket must
                       cover its _count, cumulative buckets must be
                       monotone, and the fdbscan_service_* terminal
                       counters must not exceed submitted
  fdbscan_statusz.py --strict FILE [...]   additionally require exact
                       identities (bucket sum == count, terminal counts
                       partition submitted) — valid only for dumps taken
                       at a quiescent instant
  fdbscan_statusz.py --run BINARY --workdir DIR
                       live check: spawn BINARY (a bench binary, e.g.
                       service_throughput) with FDBSCAN_STATUSZ pointed
                       into DIR, send it SIGUSR1 repeatedly while it
                       runs, and require (a) at least one dump parsed
                       and (b) at least one QUIESCENT dump (all
                       in-flight gauges zero) passing the strict checks
                       — the ISSUE's acceptance criterion for the
                       introspection path

Exit codes: 0 ok, 1 validation failure, 2 usage/parse error.

Stdlib only — no third-party dependencies.
"""

import argparse
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

HEADER_RE = re.compile(r"^# fdbscan-statusz seq=(\d+) ts_ns=(\d+)$")
FOOTER_RE = re.compile(r"^# end fdbscan-statusz seq=(\d+)$")
TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_][a-zA-Z0-9_]*) "
                     r"(counter|gauge|histogram)$")
BUCKET_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)_bucket\{le="([^"]+)"\} '
                       r"(\d+)$")
SAMPLE_RE = re.compile(r"^([a-zA-Z_][a-zA-Z0-9_]*) (-?[0-9.eE+-]+)$")

TERMINAL_COUNTERS = (
    "fdbscan_service_completed_total",
    "fdbscan_service_rejected_total",
    "fdbscan_service_cancelled_total",
    "fdbscan_service_deadline_exceeded_total",
    "fdbscan_service_failed_total",
)

# Gauges that must all read zero for a dump to be quiescent (no request
# or launch was in flight when the snapshot was taken), making the
# strict identities exact instead of merely one-sided.
INFLIGHT_GAUGES = (
    "fdbscan_service_queue_depth",
    "fdbscan_service_active_requests",
    "fdbscan_exec_inflight_launches",
)


class ParseError(Exception):
    pass


def parse_dump(text, where="<dump>"):
    """Parses one statusz dump into
    {"seq", "counters": {name: int}, "gauges": {name: int},
     "histograms": {name: {"buckets": [(le, cum)], "sum": f, "count": n}}}.
    Raises ParseError on any line that fits no production or any
    structural violation (missing sentinels, sample before its # TYPE,
    non-monotone cumulative buckets, missing +Inf)."""
    lines = [ln for ln in text.splitlines() if ln]
    if not lines:
        raise ParseError(f"{where}: empty dump")
    header = HEADER_RE.match(lines[0])
    if not header:
        raise ParseError(f"{where}: first line is not a statusz header: "
                         f"{lines[0]!r}")
    footer = FOOTER_RE.match(lines[-1])
    if not footer:
        raise ParseError(f"{where}: last line is not a statusz footer: "
                         f"{lines[-1]!r}")
    if header.group(1) != footer.group(1):
        raise ParseError(f"{where}: header seq={header.group(1)} != footer "
                         f"seq={footer.group(1)} — interleaved dumps?")

    types = {}
    counters, gauges = {}, {}
    histograms = {}
    for ln in lines[1:-1]:
        m = TYPE_RE.match(ln)
        if m:
            name, kind = m.groups()
            if name in types:
                raise ParseError(f"{where}: duplicate # TYPE for {name}")
            types[name] = kind
            if kind == "histogram":
                histograms[name] = {"buckets": [], "sum": None, "count": None}
            continue
        m = BUCKET_RE.match(ln)
        if m:
            name, le, cum = m.group(1), m.group(2), int(m.group(3))
            if types.get(name) != "histogram":
                raise ParseError(
                    f"{where}: bucket sample for {name} without a "
                    "histogram # TYPE")
            h = histograms[name]
            if h["buckets"] and cum < h["buckets"][-1][1]:
                raise ParseError(
                    f"{where}: {name} cumulative buckets decrease at "
                    f"le={le}")
            h["buckets"].append((le, cum))
            continue
        m = SAMPLE_RE.match(ln)
        if m:
            name, value = m.groups()
            if name.endswith("_sum") and types.get(name[:-4]) == "histogram":
                histograms[name[:-4]]["sum"] = float(value)
            elif (name.endswith("_count")
                  and types.get(name[:-6]) == "histogram"):
                histograms[name[:-6]]["count"] = int(value)
            elif types.get(name) == "counter":
                counters[name] = int(value)
            elif types.get(name) == "gauge":
                gauges[name] = int(value)
            else:
                raise ParseError(
                    f"{where}: sample for {name} without a # TYPE")
            continue
        raise ParseError(f"{where}: unparseable line: {ln!r}")

    for name, h in histograms.items():
        if not h["buckets"] or h["buckets"][-1][0] != "+Inf":
            raise ParseError(f"{where}: {name} lacks a +Inf bucket")
        if h["sum"] is None or h["count"] is None:
            raise ParseError(f"{where}: {name} lacks _sum/_count samples")
    return {"seq": int(header.group(1)), "counters": counters,
            "gauges": gauges, "histograms": histograms}


def check(dump, where="<dump>", strict=False):
    """Semantic checks over a parsed dump; returns a violation list.

    Relaxed mode allows the one-sided inequalities a mid-run snapshot
    can legitimately exhibit (each metric is read atomically but the
    set is not a consistent cut: a histogram's buckets are read after
    its count, a request may sit between its submitted and terminal
    increments). Strict mode requires the exact identities, which hold
    whenever the dump was quiescent."""
    violations = []
    for name, h in dump["histograms"].items():
        inf = h["buckets"][-1][1]
        if strict and inf != h["count"]:
            violations.append(
                f"{where}: {name} bucket sum {inf} != count {h['count']}")
        elif inf < h["count"]:
            violations.append(
                f"{where}: {name} bucket sum {inf} < count {h['count']} — "
                "a sample was counted but never bucketed")
        if h["count"] == 0 and h["sum"] != 0.0:
            violations.append(
                f"{where}: {name} has zero count but sum {h['sum']:g}")
    counters = dump["counters"]
    if "fdbscan_service_submitted_total" in counters:
        submitted = counters["fdbscan_service_submitted_total"]
        terminal = sum(counters.get(c, 0) for c in TERMINAL_COUNTERS)
        if strict and submitted != terminal:
            violations.append(
                f"{where}: terminal counts sum to {terminal} but "
                f"submitted={submitted} — the partition does not hold")
        elif terminal > submitted:
            violations.append(
                f"{where}: terminal counts sum to {terminal} > "
                f"submitted={submitted} — some request resolved twice")
    return violations


def quiescent(dump):
    return all(dump["gauges"].get(g, 0) == 0 for g in INFLIGHT_GAUGES)


def cmd_validate(paths, strict):
    violations = []
    for path in paths:
        try:
            dump = parse_dump(Path(path).read_text(), path)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except ParseError as exc:
            print(f"parse error: {exc}", file=sys.stderr)
            return 2
        violations.extend(check(dump, path, strict=strict))
        print(f"{path}: seq={dump['seq']}, {len(dump['counters'])} counters, "
              f"{len(dump['gauges'])} gauges, "
              f"{len(dump['histograms'])} histograms"
              + (", quiescent" if quiescent(dump) else ""))
    for v in violations:
        print(f"FAIL: {v}", file=sys.stderr)
    if violations:
        return 1
    print("ok: all dumps parse and satisfy the "
          + ("strict" if strict else "relaxed") + " invariants")
    return 0


def cmd_run(binary, workdir):
    """Spawns `binary`, signals it with SIGUSR1 while it runs, and
    validates the dumps it writes. Succeeds when the process exits 0,
    at least one dump parsed, and at least one quiescent dump passed
    the strict checks (mid-run dumps only need the relaxed ones)."""
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    dump_path = workdir / "statusz.prom"
    if dump_path.exists():
        dump_path.unlink()
    env = dict(os.environ)
    env.update({
        "FDBSCAN_STATUSZ": str(dump_path),
        "FDBSCAN_BENCH_SCALE": env.get("FDBSCAN_BENCH_SCALE", "0.02"),
        "FDBSCAN_BENCH_OUT": str(workdir / "BENCH_statusz_run.json"),
        "FDBSCAN_BENCH_DATE": "statusz-live",
    })
    # The heavy sharded-equivalence sweep is gated elsewhere; the live
    # check only needs the service to serve requests while we signal.
    # One pass of the filtered entries takes well under 100 ms at smoke
    # scale — repeat them so the process stays alive long enough to be
    # signalled mid-run many times.
    args = [binary, "--benchmark_filter=closed_loop|overload|cancel_latency"
                    "|deadline",
            "--benchmark_repetitions=25"]
    proc = subprocess.Popen(args, env=env, stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    # The handler is installed first thing in main(); give the process a
    # beat so an early signal cannot hit the default (terminating)
    # disposition.
    time.sleep(0.1)

    dumps = 0
    parse_failures = []
    relaxed_violations = []
    strict_pass = 0
    quiescent_seen = 0
    last_seq = -1
    deadline = time.monotonic() + 300.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            break
        try:
            proc.send_signal(signal.SIGUSR1)
        except ProcessLookupError:
            break
        time.sleep(0.1)
        try:
            text = dump_path.read_text()
        except OSError:
            continue  # no dump yet
        try:
            dump = parse_dump(text, str(dump_path))
        except ParseError as exc:
            parse_failures.append(str(exc))
            continue
        if dump["seq"] == last_seq:
            continue  # writer has not caught up with this signal yet
        last_seq = dump["seq"]
        dumps += 1
        relaxed_violations.extend(check(dump, f"seq={dump['seq']}"))
        if quiescent(dump):
            quiescent_seen += 1
            if not check(dump, f"seq={dump['seq']}", strict=True):
                strict_pass += 1
    rc = proc.wait()

    print(f"process exited {rc}; {dumps} dumps parsed, "
          f"{quiescent_seen} quiescent, {strict_pass} passed strict checks")
    failures = []
    if rc != 0:
        failures.append(f"process exited {rc}")
    if dumps == 0:
        failures.append("no statusz dump was ever written — is the SIGUSR1 "
                        "handler installed?")
    if parse_failures:
        failures.append(f"{len(parse_failures)} dumps failed to parse "
                        f"(first: {parse_failures[0]})")
    failures.extend(relaxed_violations)
    if dumps > 0 and strict_pass == 0:
        failures.append(
            "no quiescent dump passed the strict checks — the registry's "
            "terminal partition or histogram identities are broken")
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if failures:
        return 1
    print("ok: live statusz dumps parse, mid-run invariants hold, and a "
          "quiescent snapshot satisfied the exact identities")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="*", metavar="FILE",
                        help="statusz dump files to validate")
    parser.add_argument("--strict", action="store_true",
                        help="require the exact quiescent identities")
    parser.add_argument("--run", metavar="BINARY",
                        help="live mode: spawn BINARY and validate the "
                             "dumps SIGUSR1 elicits from it")
    parser.add_argument("--workdir", metavar="DIR", default=".",
                        help="where --run puts the dump and telemetry "
                             "files (default .)")
    args = parser.parse_args(argv)
    if args.run:
        if args.files:
            parser.error("--run takes no positional files")
        return cmd_run(args.run, args.workdir)
    if not args.files:
        parser.error("nothing to do: pass dump files or --run BINARY")
    return cmd_validate(args.files, args.strict)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
