#!/usr/bin/env python3
"""Diff two BENCH_*.json telemetry files and gate perf regressions.

The bench binaries (see bench/telemetry.h) emit one JSON file per run
with the series the paper's evaluation plots: wall-clock plus the
architecture-neutral work counters. The work counters of the tree
algorithms are bit-exact across thread counts (PR "exec runtime
overhaul"), so they are gated at a 0% budget by default — any drift in
dist_comps / nodes_visited / clusters / noise on a matched entry is a
real algorithmic change, not noise. Wall-clock is gated loosely (+20%
by default) and only above a floor, because this CPU substrate is noisy
at small problem sizes; pass --skip-wall to compare work only (the
bench_smoke ctest does, since it diffs runs at different thread counts).

Usage:
  bench_compare.py [options] OLD.json NEW.json     compare two runs
  bench_compare.py [options] NEW.json              compare the committed
                       baseline (the lexicographically greatest
                       BENCH_*.json at the repo root) against NEW.json.
                       Exits 2 when the runs' scales differ (the work
                       counters would not be comparable); auto-enables
                       --skip-wall when their thread counts differ.
  bench_compare.py --validate FILE [FILE...]       schema-check files
  bench_compare.py --gate-amortized FILE [...]     check the Engine's
                       amortization contract: entries marked engine_warm
                       must report 0 index_rebuilds / workspace_reallocs
  bench_compare.py --gate-service FILE [...]       check the service
                       contract (DESIGN.md §10): under-capacity closed
                       loops reject nothing and build each dataset's
                       index once; deterministic overloads reject exactly
                       their overflow; the terminal-state counts
                       partition submitted
  bench_compare.py --gate-shards FILE [...]        check the sharding
                       contract (DESIGN.md §11) over entries carrying a
                       shards_checked counter: zero equivalence failures
                       across the worker x shard sweep, with multi-shard
                       runs present and a nonzero halo volume so the
                       gate cannot pass vacuously
  bench_compare.py --gate-obs FILE [...]           check the obs-registry
                       mirror (DESIGN.md §13): every entry carrying both
                       a "service" and an "obs" block must agree bit-equal
                       on their shared keys (the registry mirror and the
                       service's own atomics are fed the same integers);
                       zero such entries or zero shared keys fails — a
                       vacuous match is a broken gate
  bench_compare.py --gate-graph FILE [...]         check the task-graph
                       runtime contract (DESIGN.md §15) over entries
                       carrying graph counters: zero graph-vs-fork-join
                       equivalence failures across the worker sweep
                       (with densebox and sharded runs present, so the
                       gate cannot pass vacuously), and saturation QPS
                       under graph dispatch at least matching the
                       fork-join baseline (on a single-core machine,
                       where overlap is impossible, within a 10%
                       handoff budget instead)
  bench_compare.py --gate-simd SCALAR.json SIMD.json
                       check that the vectorized backend does not lose to
                       the scalar one: over name-matched fdbscan /
                       fdbscan-densebox entries, the summed traversal-
                       phase wall time (phase_ms.preprocess + .main) of
                       the SIMD run must be <= the scalar run's. Exits 2
                       when the runs' scales differ, and fails when no
                       entries match (a vacuous gate is a broken one)

Exit codes: 0 ok, 1 regression/drift found, 2 usage or schema error.

Stdlib only — no third-party dependencies.
"""

import argparse
import json
import re
import sys
from pathlib import Path

SCHEMA_ID = "fdbscan-bench-telemetry-v1"

# Counters that must be bit-exact across runs of the same configuration
# (when the entry is marked deterministic). index_rebuilds and
# workspace_reallocs / grid_cache_hits are the Engine's amortization
# counters (DESIGN.md §9): entry order within a bench binary is fixed, so
# how often a given entry rebuilds or grows is as deterministic as its
# work counts.
GATED_COUNTERS = ("dist_comps", "nodes_visited", "clusters", "noise",
                  "index_rebuilds", "workspace_reallocs", "grid_cache_hits")

PHASE_KEYS = ("index", "preprocess", "main", "finalize")


class SchemaError(Exception):
    pass


def _expect(cond, msg):
    if not cond:
        raise SchemaError(msg)


def validate(doc, path="<doc>"):
    """Validates a telemetry document; raises SchemaError on violation."""
    _expect(isinstance(doc, dict), f"{path}: top level is not an object")
    _expect(doc.get("schema") == SCHEMA_ID,
            f"{path}: schema is {doc.get('schema')!r}, expected {SCHEMA_ID!r}")

    run = doc.get("run")
    _expect(isinstance(run, dict), f"{path}: missing run object")
    _expect(isinstance(run.get("date_env"), str), f"{path}: run.date_env missing")
    _expect(isinstance(run.get("threads"), int) and run["threads"] > 0,
            f"{path}: run.threads must be a positive integer")
    _expect(isinstance(run.get("scale"), (int, float)) and run["scale"] > 0,
            f"{path}: run.scale must be positive")

    entries = doc.get("entries")
    _expect(isinstance(entries, list) and entries,
            f"{path}: entries must be a non-empty array")
    seen = set()
    for i, e in enumerate(entries):
        where = f"{path}: entries[{i}]"
        _expect(isinstance(e, dict), f"{where} is not an object")
        name = e.get("name")
        _expect(isinstance(name, str) and name, f"{where}: missing name")
        _expect(name not in seen,
                f"{where}: duplicate entry name {name!r} — per-entry series "
                "would be ambiguous (is a sweep collapsing onto the 64-point "
                "floor without deduplication?)")
        seen.add(name)
        for key in ("dataset", "algo"):
            _expect(isinstance(e.get(key), str), f"{where}: missing {key}")
        _expect(isinstance(e.get("n"), int) and e["n"] >= 0,
                f"{where}: n must be a non-negative integer")
        _expect(isinstance(e.get("deterministic"), bool),
                f"{where}: missing deterministic flag")
        _expect(isinstance(e.get("wall_ms"), (int, float)) and e["wall_ms"] >= 0,
                f"{where}: wall_ms must be a non-negative number")
        counters = e.get("counters")
        _expect(isinstance(counters, dict), f"{where}: missing counters object")
        for cname, cval in counters.items():
            _expect(isinstance(cval, (int, float)),
                    f"{where}: counter {cname!r} is not a number")
        phases = e.get("phase_ms")
        _expect(isinstance(phases, dict), f"{where}: missing phase_ms object")
        for key in PHASE_KEYS:
            _expect(isinstance(phases.get(key), (int, float)),
                    f"{where}: phase_ms.{key} missing")
        if "peak_bytes" in e:
            _expect(isinstance(e["peak_bytes"], int) and e["peak_bytes"] >= 0,
                    f"{where}: peak_bytes must be a non-negative integer")
        if "kernels" in e:
            _expect(isinstance(e["kernels"], list),
                    f"{where}: kernels must be an array")
            for k, agg in enumerate(e["kernels"]):
                kw = f"{where}.kernels[{k}]"
                _expect(isinstance(agg, dict), f"{kw} is not an object")
                _expect(isinstance(agg.get("name"), str) and agg["name"],
                        f"{kw}: missing name")
                for key in ("count", "chunks", "workers"):
                    _expect(isinstance(agg.get(key), int) and agg[key] >= 0,
                            f"{kw}: {key} must be a non-negative integer")
                for key in ("total_ms", "max_ms", "imbalance"):
                    _expect(isinstance(agg.get(key), (int, float))
                            and agg[key] >= 0,
                            f"{kw}: {key} must be a non-negative number")
        if "service" in e:
            _expect(isinstance(e["service"], dict),
                    f"{where}: service must be an object")
            for sname, sval in e["service"].items():
                _expect(isinstance(sval, (int, float)),
                        f"{where}: service.{sname!r} is not a number")
        if "obs" in e:
            _expect(isinstance(e["obs"], dict),
                    f"{where}: obs must be an object")
            for oname, oval in e["obs"].items():
                _expect(isinstance(oval, (int, float)),
                        f"{where}: obs.{oname!r} is not a number")
        if "error" in e:
            _expect(isinstance(e["error"], str), f"{where}: error must be a string")


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as exc:
        raise SchemaError(f"{path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path}: invalid JSON: {exc}") from exc
    validate(doc, path)
    return doc


def kernel_deltas(o, n, top=3):
    """Top `top` kernels by absolute wall-ms delta between two entries'
    per-kernel aggregates. Empty when either side lacks aggregates (the
    run was not traced)."""
    ok = {k["name"]: k for k in o.get("kernels", [])}
    nk = {k["name"]: k for k in n.get("kernels", [])}
    if not ok or not nk:
        return []
    deltas = []
    for name in set(ok) | set(nk):
        ov = ok.get(name, {}).get("total_ms", 0.0)
        nv = nk.get(name, {}).get("total_ms", 0.0)
        deltas.append((abs(nv - ov), name, ov, nv))
    deltas.sort(reverse=True)
    return [f"    kernel {name}: {ov:.3f} -> {nv:.3f} ms ({nv - ov:+.3f})"
            for _, name, ov, nv in deltas[:top]]


def gate_amortized(doc, path):
    """Single-file gate over the Engine's amortization contract: every
    entry whose bench body marked it engine_warm (the engine's index /
    bundle cache was already populated BEFORE the run) must report zero
    index rebuilds and zero workspace growths. Returns (violations,
    warm_count); zero warm entries is itself a violation — a gate that
    never fires is indistinguishable from a broken one."""
    violations = []
    warm = 0
    for e in doc["entries"]:
        if e.get("error"):
            continue
        counters = e["counters"]
        if counters.get("engine_warm") != 1:
            continue
        warm += 1
        for counter in ("index_rebuilds", "workspace_reallocs"):
            if counter not in counters:
                violations.append(
                    f"{e['name']}: marked engine_warm but {counter} missing")
            elif counters[counter] != 0:
                violations.append(
                    f"{e['name']}: warm engine run reports {counter}="
                    f"{counters[counter]:g}, expected 0")
    if warm == 0:
        violations.append(
            f"{path}: no engine_warm entries found — the amortization gate "
            "is vacuous (did the benches stop sharing engines?)")
    return violations, warm


def gate_service(doc, path):
    """Single-file gate over the ClusterService contract (DESIGN.md §10),
    applied to every entry carrying a "service" block:

      * the terminal-state counts partition submitted (a request resolves
        exactly once);
      * closed_loop entries (an under-capacity closed loop) reject
        nothing and build each dataset's index exactly once;
      * overload entries reject exactly their engineered overflow — and
        more than zero of it, so backpressure demonstrably fired;
      * deadline entries observe both the fast-fail and mid-run paths.

    Zero service entries is itself a violation — a gate that never fires
    is indistinguishable from a broken one."""
    violations = []
    checked = 0
    for e in doc["entries"]:
        if e.get("error") or "service" not in e:
            continue
        checked += 1
        name, s, counters = e["name"], e["service"], e["counters"]
        terminal = (s.get("completed", 0) + s.get("rejected", 0)
                    + s.get("cancelled", 0) + s.get("deadline_exceeded", 0)
                    + s.get("failed", 0))
        if s.get("submitted", -1) != terminal:
            violations.append(
                f"{name}: terminal counts sum to {terminal:g} but "
                f"submitted={s.get('submitted', -1):g} — some request "
                "resolved twice or never")
        if "datasets" in counters:  # closed_loop shape
            if s.get("rejected", 0) != 0:
                violations.append(
                    f"{name}: under-capacity closed loop rejected "
                    f"{s['rejected']:g} requests, expected 0")
            if counters.get("index_builds") != counters["datasets"]:
                violations.append(
                    f"{name}: index_builds={counters.get('index_builds')!r} "
                    f"!= datasets={counters['datasets']:g} — warm-engine "
                    "reuse broke (one BVH build per dataset)")
        if "expected_rejected" in counters:  # overload shape
            if counters.get("rejected") != counters["expected_rejected"]:
                violations.append(
                    f"{name}: rejected {counters.get('rejected')!r} of an "
                    f"engineered overflow of {counters['expected_rejected']:g}")
            if counters["expected_rejected"] <= 0:
                violations.append(
                    f"{name}: overload entry engineered no overflow")
        for flag in ("fast_fail_ok", "mid_run_ok"):  # deadline shape
            if flag in counters and counters[flag] != 1:
                violations.append(f"{name}: {flag}={counters[flag]:g}")
    if checked == 0:
        violations.append(
            f"{path}: no entries carry a service block — the service gate "
            "is vacuous (did the bench stop staging its metrics?)")
    return violations, checked


def gate_shards(doc, path):
    """Single-file gate over the sharding contract (DESIGN.md §11),
    applied to every entry carrying a "shards_checked" counter (the
    sharded-equivalence sweep of service_throughput):

      * shard_equiv_failures == 0: every (workers, shards) combination
        produced labels equivalent to the single-engine reference, with
        bit-identical core flags and cluster counts;
      * shards_checked > 0 and multi_shard_runs > 0: the sweep actually
        ran multi-shard configurations;
      * ghosts > 0: the halo exchange carried volume, so the equivalence
        was not tested on a decomposition with no boundary work.

    Zero matching entries is itself a violation — a gate that never
    fires is indistinguishable from a broken one."""
    violations = []
    checked = 0
    for e in doc["entries"]:
        if e.get("error") or "shards_checked" not in e["counters"]:
            continue
        checked += 1
        name, counters = e["name"], e["counters"]
        if counters.get("shard_equiv_failures", -1) != 0:
            violations.append(
                f"{name}: shard_equiv_failures="
                f"{counters.get('shard_equiv_failures')!r} — sharded labels "
                "diverged from the single-engine reference")
        if counters["shards_checked"] <= 0:
            violations.append(
                f"{name}: shards_checked={counters['shards_checked']:g} — "
                "the equivalence sweep ran no configurations")
        if counters.get("multi_shard_runs", 0) <= 0:
            violations.append(
                f"{name}: multi_shard_runs="
                f"{counters.get('multi_shard_runs', 0):g} — only "
                "single-shard configurations ran, the gate is vacuous")
        if counters.get("ghosts", 0) <= 0:
            violations.append(
                f"{name}: ghosts={counters.get('ghosts', 0):g} — the halo "
                "exchange carried no volume; bump eps so shard boundaries "
                "actually interact")
    if checked == 0:
        violations.append(
            f"{path}: no entries carry a shards_checked counter — the shard "
            "gate is vacuous (did service_throughput drop its "
            "sharded_equivalence entry?)")
    return violations, checked


def gate_obs(doc, path):
    """Single-file gate over the obs-registry mirror (DESIGN.md §13),
    applied to every entry carrying both a "service" and an "obs" block:
    the two must agree bit-equal on every shared key. The service's own
    atomics and the registry mirror are incremented with the identical
    integers at the identical sites (ObsMirror in service/service.h), and
    the bench derives both blocks' ms values with the same int64-ns ->
    double conversion — so ANY difference, however small, means a mirror
    site was dropped or double-counted.

    Zero dual-block entries, or an entry pair sharing zero keys, is
    itself a violation — a vacuous match is a broken gate."""
    violations = []
    checked = 0
    for e in doc["entries"]:
        if e.get("error") or "service" not in e or "obs" not in e:
            continue
        checked += 1
        name, s, o = e["name"], e["service"], e["obs"]
        shared = sorted(set(s) & set(o))
        if not shared:
            violations.append(
                f"{name}: service and obs blocks share no keys — the "
                "cross-check compared nothing")
            continue
        for key in shared:
            if s[key] != o[key]:
                violations.append(
                    f"{name}: {key} disagrees — service={s[key]:g}, "
                    f"obs registry delta={o[key]:g}")
    if checked == 0:
        violations.append(
            f"{path}: no entries carry both a service and an obs block — "
            "the obs gate is vacuous (did the bench stop staging the "
            "registry delta?)")
    return violations, checked


def gate_stream(doc, path):
    """Single-file gate over the streaming-session contract (DESIGN.md
    §14), applied to every entry carrying a "stream_equiv_checked"
    counter (the stream_throughput sliding-window and warm-append
    entries):

      * stream_equiv_checked > 0 and stream_equiv_failures == 0: every
        step's query matched a from-scratch run over the live set (with
        bit-identical core flags — the verdict is worker-count
        invariant);
      * stream_rebuilds <= stream_rebuild_bound: the threshold policy
        amortized BVH construction strictly below one-build-per-batch;
      * entries carrying warm_queries_checked must check > 0 warm
        queries and report warm_query_rebuilds == 0: sub-threshold
        appends are absorbed by the side buffer without any rebuild.

    Zero matching entries is itself a violation — a gate that never
    fires is indistinguishable from a broken one."""
    violations = []
    checked = 0
    warm_entries = 0
    for e in doc["entries"]:
        if e.get("error") or "stream_equiv_checked" not in e["counters"]:
            continue
        checked += 1
        name, counters = e["name"], e["counters"]
        if counters["stream_equiv_checked"] <= 0:
            violations.append(
                f"{name}: stream_equiv_checked="
                f"{counters['stream_equiv_checked']:g} — the equivalence "
                "sweep checked no queries")
        if counters.get("stream_equiv_failures", -1) != 0:
            violations.append(
                f"{name}: stream_equiv_failures="
                f"{counters.get('stream_equiv_failures')!r} — a streamed "
                "query diverged from the from-scratch reference")
        if "stream_rebuild_bound" in counters:
            rebuilds = counters.get("stream_rebuilds", float("inf"))
            bound = counters["stream_rebuild_bound"]
            if rebuilds > bound:
                violations.append(
                    f"{name}: stream_rebuilds={rebuilds:g} exceeds the "
                    f"amortization bound {bound:g} — the threshold policy "
                    "degenerated to (or past) one build per batch")
        if "warm_queries_checked" in counters:
            warm_entries += 1
            if counters["warm_queries_checked"] <= 0:
                violations.append(
                    f"{name}: warm_queries_checked="
                    f"{counters['warm_queries_checked']:g} — the "
                    "zero-rebuild claim was not exercised")
            if counters.get("warm_query_rebuilds", -1) != 0:
                violations.append(
                    f"{name}: warm_query_rebuilds="
                    f"{counters.get('warm_query_rebuilds')!r} — a "
                    "sub-threshold append triggered a rebuild")
    if checked == 0:
        violations.append(
            f"{path}: no entries carry a stream_equiv_checked counter — "
            "the stream gate is vacuous (did stream_throughput drop its "
            "entries?)")
    elif warm_entries == 0:
        violations.append(
            f"{path}: no entries carry a warm_queries_checked counter — "
            "the zero-rebuild amortization claim went unchecked")
    return violations, checked


def gate_graph(doc, path):
    """Single-file gate over the task-graph runtime contract (DESIGN.md
    §15), applied to entries carrying graph counters (the
    graph_equivalence and graph_saturation entries of
    service_throughput):

      * graph_equiv_checked > 0 and graph_equiv_failures == 0: graph
        dispatch produced bit-identical core flags, cluster counts and
        work counters to the fork-join path at every swept worker count;
      * graph_densebox_runs > 0 and graph_sharded_runs > 0: the sweep
        covered the densebox and sharded paths, not just plain FDBSCAN
        (a single-path pass would be near-vacuous);
      * graph_qps >= forkjoin_qps on the saturation entry: running the
        phases through the dependency scheduler must not lose closed-loop
        throughput to the fork-join baseline. On a single-core machine
        (saturation_cores <= 1) overlap is physically impossible and
        graph dispatch can only pay its runner-handoff cost, so the
        contract degrades to a 10% overhead budget there;
      * saturation_requests > 0: the QPS comparison measured real
        requests.

    Zero matching entries — or an equivalence sweep without a saturation
    entry — is itself a violation: a gate that never fires is
    indistinguishable from a broken one."""
    violations = []
    checked = 0
    saturation_entries = 0
    for e in doc["entries"]:
        if e.get("error"):
            continue
        name, counters = e["name"], e["counters"]
        if "graph_equiv_checked" in counters:
            checked += 1
            if counters["graph_equiv_checked"] <= 0:
                violations.append(
                    f"{name}: graph_equiv_checked="
                    f"{counters['graph_equiv_checked']:g} — the equivalence "
                    "sweep ran no configurations")
            if counters.get("graph_equiv_failures", -1) != 0:
                violations.append(
                    f"{name}: graph_equiv_failures="
                    f"{counters.get('graph_equiv_failures')!r} — graph "
                    "dispatch diverged from the fork-join reference")
            if counters.get("graph_densebox_runs", 0) <= 0:
                violations.append(
                    f"{name}: graph_densebox_runs="
                    f"{counters.get('graph_densebox_runs', 0):g} — the "
                    "densebox path went unchecked")
            if counters.get("graph_sharded_runs", 0) <= 0:
                violations.append(
                    f"{name}: graph_sharded_runs="
                    f"{counters.get('graph_sharded_runs', 0):g} — the "
                    "sharded path went unchecked")
        if "graph_qps" in counters:
            checked += 1
            saturation_entries += 1
            if counters.get("saturation_requests", 0) <= 0:
                violations.append(
                    f"{name}: saturation_requests="
                    f"{counters.get('saturation_requests', 0):g} — the "
                    "saturation loop completed no requests")
            forkjoin = counters.get("forkjoin_qps", 0.0)
            graph = counters["graph_qps"]
            if forkjoin <= 0.0:
                violations.append(
                    f"{name}: forkjoin_qps={forkjoin:g} — no baseline was "
                    "measured, the QPS comparison is vacuous")
            else:
                single_core = counters.get("saturation_cores", 0) <= 1
                floor = forkjoin * 0.90 if single_core else forkjoin
                if graph < floor:
                    budget = (" (single-core 10% handoff budget)"
                              if single_core else "")
                    violations.append(
                        f"{name}: graph_qps={graph:g} fell below the "
                        f"fork-join baseline {forkjoin:g}{budget} — graph "
                        "dispatch lost saturation throughput")
    if checked == 0:
        violations.append(
            f"{path}: no entries carry graph counters — the graph gate is "
            "vacuous (did service_throughput drop its graph_equivalence / "
            "graph_saturation entries?)")
    elif saturation_entries == 0:
        violations.append(
            f"{path}: no entries carry a graph_qps counter — the "
            "saturation throughput claim went unchecked")
    return violations, checked


def gate_simd(scalar_doc, simd_doc):
    """Two-file gate: the vectorized backend must not lose to the scalar
    one on the traversal-dominated phases. Over name-matched, non-errored
    entries whose algo is one of the tree algorithms this repo vectorizes
    (fdbscan, fdbscan-densebox), sum phase_ms.preprocess + phase_ms.main
    (index build is gated separately by the ordinary wall comparison) and
    require simd_sum <= scalar_sum. Zero matched entries or a zero scalar
    sum is itself a violation — the gate must not pass vacuously."""
    violations = []
    if scalar_doc["run"]["scale"] != simd_doc["run"]["scale"]:
        raise SchemaError(
            f"scalar scale {scalar_doc['run']['scale']:g} != simd scale "
            f"{simd_doc['run']['scale']:g} — traversal wall is not "
            "comparable across problem sizes")
    vectorized = ("fdbscan", "fdbscan-densebox")

    def traversal_sums(doc):
        sums = {}
        for e in doc["entries"]:
            if e.get("error") or e["algo"] not in vectorized:
                continue
            sums[e["name"]] = e["phase_ms"]["preprocess"] + e["phase_ms"]["main"]
        return sums

    scalar_sums = traversal_sums(scalar_doc)
    simd_sums = traversal_sums(simd_doc)
    matched = sorted(set(scalar_sums) & set(simd_sums))
    scalar_total = sum(scalar_sums[n] for n in matched)
    simd_total = sum(simd_sums[n] for n in matched)
    if not matched:
        violations.append(
            "no name-matched fdbscan/fdbscan-densebox entries — the SIMD "
            "gate is vacuous")
    elif scalar_total <= 0.0:
        violations.append(
            f"scalar traversal wall sum is {scalar_total:g} ms over "
            f"{len(matched)} entries — nothing was measured, the gate is "
            "vacuous")
    elif simd_total > scalar_total:
        violations.append(
            f"SIMD traversal wall regressed: {simd_total:.3f} ms > scalar "
            f"{scalar_total:.3f} ms over {len(matched)} matched entries")
    return violations, matched, scalar_total, simd_total


def baseline_path():
    """The committed baseline: the lexicographically greatest
    BENCH_*.json at the repo root (dates sort lexicographically)."""
    root = Path(__file__).resolve().parent.parent
    candidates = sorted(root.glob("BENCH_*.json"))
    return candidates[-1] if candidates else None


def wall_sum(doc):
    """Summed wall_ms over non-errored entries."""
    return sum(e["wall_ms"] for e in doc["entries"] if not e.get("error"))


def compare(old, new, args):
    """Returns a list of violation strings."""
    old_entries = {e["name"]: e for e in old["entries"]}
    new_entries = {e["name"]: e for e in new["entries"]}
    exclude = re.compile(args.exclude) if args.exclude else None

    matched = 0
    violations = []
    notes = []
    for name, o in old_entries.items():
        if exclude and exclude.search(name):
            continue
        n = new_entries.get(name)
        if n is None:
            notes.append(f"unmatched (gone in new): {name}")
            continue
        if o.get("error") or n.get("error"):
            notes.append(f"skipped (errored run): {name}")
            continue
        matched += 1

        if o["deterministic"] and n["deterministic"]:
            for counter in GATED_COUNTERS:
                if counter not in o["counters"] or counter not in n["counters"]:
                    continue
                ov, nv = o["counters"][counter], n["counters"][counter]
                budget = max(abs(ov), 1.0) * args.counter_budget_pct / 100.0
                if abs(nv - ov) > budget:
                    violations.append(
                        f"{name}: {counter} drifted {ov:g} -> {nv:g} "
                        f"(budget {args.counter_budget_pct:g}%)")

        if not args.skip_wall and o["wall_ms"] >= args.wall_min_ms:
            limit = o["wall_ms"] * (1.0 + args.wall_budget_pct / 100.0)
            if n["wall_ms"] > limit:
                violations.append(
                    f"{name}: wall_ms regressed {o['wall_ms']:.3f} -> "
                    f"{n['wall_ms']:.3f} (budget +{args.wall_budget_pct:g}%)")
                # When both runs were traced, name the kernels that moved:
                # "which kernel got slower" beats "the entry got slower".
                violations.extend(kernel_deltas(o, n))

    for name in new_entries:
        if name not in old_entries and not (exclude and exclude.search(name)):
            notes.append(f"unmatched (new entry): {name}")

    for note in notes:
        print(f"note: {note}")
    if matched == 0:
        violations.append("no comparable entries matched between the two runs")
    else:
        print(f"compared {matched} matched entries "
              f"(counter budget {args.counter_budget_pct:g}%, "
              + ("wall skipped" if args.skip_wall
                 else f"wall budget +{args.wall_budget_pct:g}% "
                      f"above {args.wall_min_ms:g} ms") + ")")
    return violations


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="+", metavar="FILE",
                        help="OLD NEW for comparison, or files for --validate")
    parser.add_argument("--validate", action="store_true",
                        help="only schema-check the given files")
    parser.add_argument("--gate-amortized", action="store_true",
                        help="single-file mode: check that every entry "
                             "marked engine_warm reports zero index "
                             "rebuilds and zero workspace reallocations "
                             "(the Engine's amortization contract, "
                             "DESIGN.md §9)")
    parser.add_argument("--gate-service", action="store_true",
                        help="single-file mode: check the ClusterService "
                             "contract over entries carrying a service "
                             "block (DESIGN.md §10)")
    parser.add_argument("--gate-shards", action="store_true",
                        help="single-file mode: check the sharding "
                             "contract over entries carrying a "
                             "shards_checked counter (DESIGN.md §11)")
    parser.add_argument("--gate-obs", action="store_true",
                        help="single-file mode: check that entries carrying "
                             "both a service and an obs block agree "
                             "bit-equal on their shared keys (the obs "
                             "registry mirror, DESIGN.md §13)")
    parser.add_argument("--gate-stream", action="store_true",
                        help="single-file mode: check the streaming-"
                             "session contract over entries carrying a "
                             "stream_equiv_checked counter (DESIGN.md "
                             "§14)")
    parser.add_argument("--gate-graph", action="store_true",
                        help="check the task-graph runtime contract "
                             "(DESIGN.md §15): zero graph-vs-fork-join "
                             "equivalence failures across the worker sweep "
                             "and saturation QPS at least matching the "
                             "fork-join baseline, non-vacuously")
    parser.add_argument("--gate-simd", action="store_true",
                        help="two-file mode (SCALAR.json SIMD.json): the "
                             "SIMD run's summed traversal-phase wall over "
                             "name-matched fdbscan/fdbscan-densebox "
                             "entries must not exceed the scalar run's")
    parser.add_argument("--counter-budget-pct", type=float, default=0.0,
                        help="allowed relative drift for the deterministic "
                             "counters (default 0: bit-exact)")
    parser.add_argument("--wall-budget-pct", type=float, default=20.0,
                        help="allowed wall-clock regression (default 20)")
    parser.add_argument("--wall-min-ms", type=float, default=50.0,
                        help="ignore wall-clock of entries faster than this "
                             "in the old run (default 50 ms: sub-threshold "
                             "entries are dominated by scheduler noise)")
    parser.add_argument("--skip-wall", action="store_true",
                        help="compare work counters only (use when the runs "
                             "differ in thread count or machine)")
    parser.add_argument("--wall-sum-budget-pct", type=float, default=None,
                        metavar="PCT",
                        help="also gate the SUM of wall_ms over non-errored "
                             "entries: new_sum <= old_sum * (1 + PCT/100) "
                             "+ slack. Robust to per-entry noise; used by "
                             "the bench_smoke tracing-overhead gate")
    parser.add_argument("--wall-sum-slack-ms", type=float, default=25.0,
                        help="absolute slack added to the wall-sum budget "
                             "(default 25 ms: absorbs fixed per-run costs "
                             "like the trace flush at tiny smoke scales)")
    parser.add_argument("--exclude", metavar="REGEX",
                        help="skip entries whose name matches this regex")
    args = parser.parse_args(argv)

    try:
        if args.validate:
            for path in args.files:
                load(path)
                print(f"ok: {path}")
            return 0
        if args.gate_amortized:
            violations = []
            for path in args.files:
                file_violations, warm = gate_amortized(load(path), path)
                violations.extend(file_violations)
                print(f"{path}: {warm} engine_warm entries checked")
            for v in violations:
                print(f"FAIL: {v}", file=sys.stderr)
            if violations:
                return 1
            print("ok: all warm engine runs amortized "
                  "(0 rebuilds, 0 reallocs)")
            return 0
        if args.gate_service:
            violations = []
            for path in args.files:
                file_violations, checked = gate_service(load(path), path)
                violations.extend(file_violations)
                print(f"{path}: {checked} service entries checked")
            for v in violations:
                print(f"FAIL: {v}", file=sys.stderr)
            if violations:
                return 1
            print("ok: service contract holds (no under-capacity "
                  "rejections, one index build per dataset, exact "
                  "overload backpressure)")
            return 0
        if args.gate_shards:
            violations = []
            for path in args.files:
                file_violations, checked = gate_shards(load(path), path)
                violations.extend(file_violations)
                print(f"{path}: {checked} sharded entries checked")
            for v in violations:
                print(f"FAIL: {v}", file=sys.stderr)
            if violations:
                return 1
            print("ok: shard contract holds (sharded labels match the "
                  "single-engine reference across the worker x shard "
                  "sweep, with nonzero halo volume)")
            return 0
        if args.gate_obs:
            violations = []
            for path in args.files:
                file_violations, checked = gate_obs(load(path), path)
                violations.extend(file_violations)
                print(f"{path}: {checked} dual-block entries checked")
            for v in violations:
                print(f"FAIL: {v}", file=sys.stderr)
            if violations:
                return 1
            print("ok: obs registry mirror matches service metrics "
                  "bit-equal on all shared keys")
            return 0
        if args.gate_stream:
            violations = []
            for path in args.files:
                file_violations, checked = gate_stream(load(path), path)
                violations.extend(file_violations)
                print(f"{path}: {checked} stream entries checked")
            for v in violations:
                print(f"FAIL: {v}", file=sys.stderr)
            if violations:
                return 1
            print("ok: stream contract holds (every streamed query "
                  "matches a from-scratch run over the live set, rebuilds "
                  "amortized below one per batch, warm appends rebuild "
                  "nothing)")
            return 0
        if args.gate_graph:
            violations = []
            for path in args.files:
                file_violations, checked = gate_graph(load(path), path)
                violations.extend(file_violations)
                print(f"{path}: {checked} graph entries checked")
            for v in violations:
                print(f"FAIL: {v}", file=sys.stderr)
            if violations:
                return 1
            print("ok: graph contract holds (graph dispatch bit-equal to "
                  "fork-join across the worker sweep, saturation QPS at "
                  "least the fork-join baseline)")
            return 0
        if args.gate_simd:
            if len(args.files) != 2:
                parser.error("--gate-simd takes exactly two files: "
                             "SCALAR.json SIMD.json")
            violations, matched, scalar_total, simd_total = gate_simd(
                load(args.files[0]), load(args.files[1]))
            print(f"compared {len(matched)} matched traversal entries")
            if matched:
                print(f"  traversal wall sum: scalar {scalar_total:.3f} ms, "
                      f"simd {simd_total:.3f} ms")
            for v in violations:
                print(f"FAIL: {v}", file=sys.stderr)
            if violations:
                return 1
            print("ok: SIMD traversal wall <= scalar")
            return 0
        if len(args.files) == 1:
            # Single-file comparison mode: diff the committed baseline
            # (the dated BENCH_*.json at the repo root) against this run.
            base = baseline_path()
            if base is None:
                parser.error("no committed BENCH_*.json baseline found at "
                             "the repo root; pass OLD NEW explicitly")
            print(f"baseline: {base}")
            old, new = load(str(base)), load(args.files[0])
            if old["run"]["scale"] != new["run"]["scale"]:
                print(f"schema error: baseline scale "
                      f"{old['run']['scale']:g} != run scale "
                      f"{new['run']['scale']:g} — work counters are not "
                      "comparable across problem sizes",
                      file=sys.stderr)
                return 2
            if (old["run"]["threads"] != new["run"]["threads"]
                    and not args.skip_wall):
                print(f"note: thread counts differ "
                      f"({old['run']['threads']} vs {new['run']['threads']})"
                      " — comparing work counters only (--skip-wall)")
                args.skip_wall = True
        elif len(args.files) == 2:
            old, new = (load(p) for p in args.files)
        else:
            parser.error("comparison needs OLD NEW, or a single NEW to "
                         "diff against the committed baseline")
    except SchemaError as exc:
        print(f"schema error: {exc}", file=sys.stderr)
        return 2

    violations = compare(old, new, args)
    if args.wall_sum_budget_pct is not None:
        old_sum, new_sum = wall_sum(old), wall_sum(new)
        limit = (old_sum * (1.0 + args.wall_sum_budget_pct / 100.0)
                 + args.wall_sum_slack_ms)
        print(f"wall sum: {old_sum:.3f} -> {new_sum:.3f} ms "
              f"(limit {limit:.3f})")
        if new_sum > limit:
            violations.append(
                f"wall_ms sum regressed {old_sum:.3f} -> {new_sum:.3f} "
                f"(budget +{args.wall_sum_budget_pct:g}% "
                f"+ {args.wall_sum_slack_ms:g} ms)")
    for v in violations:
        print(f"FAIL: {v}", file=sys.stderr)
    if violations:
        return 1
    print("ok: no counter drift" + ("" if args.skip_wall
                                    else ", no wall-clock regression"))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
