#!/usr/bin/env python3
"""Summarize (or schema-check) a Chrome trace written by FDBSCAN_TRACE.

The exec runtime (src/exec/trace.h, DESIGN.md §8) emits one trace-event
JSON per run: kernel slices (cat "kernel", with args.kind in
worker/launch/inline and args.chunks) on one track per runtime thread,
nested under the algorithm-phase spans (cat "phase") and bench-entry
spans (cat "entry"), plus counter samples (ph "C", e.g. device_memory).
This tool turns that file into the tables the paper-style analysis
needs:

  * top-N kernels by total wall time, with launch counts, chunk counts,
    worker counts and load imbalance (busiest / mean busy worker — read
    together with workers: imbalance 1.0 on 1 worker is the degenerate
    single-thread case, not balance);
  * a per-phase critical path: for each phase span, the busy time of the
    busiest thread inside the span's window is the lower bound on the
    phase's runtime no amount of extra balance can beat;
  * counter peaks (device_memory -> peak bytes charged to the
    MemoryTracker);
  * a service breakdown when the trace carries cat "service" spans (the
    ClusterService dispatcher tracks): queue-wait vs run time per span
    name — how much of a request's latency was spent waiting for a
    dispatcher versus clustering;
  * with --per-request, the same spans grouped by the request id the
    service stamps into args.rid (obs::RequestScope, DESIGN.md §13):
    per-request queue-wait / run / shard-wave breakdowns, so one slow
    request can be told apart from uniformly slow traffic.

--validate additionally checks the id contract: every cat "service"
span must carry a positive integer args.rid — a service span without
one means a dispatch path lost its RequestScope.

Usage:
  trace_summary.py TRACE.json [--top N] [--per-request]
  trace_summary.py --validate TRACE.json [TRACE.json...]

Exit codes: 0 ok, 2 usage or schema error.

Stdlib only — no third-party dependencies.
"""

import argparse
import json
import sys
from collections import defaultdict

KERNEL_KINDS = ("worker", "launch", "inline")


class SchemaError(Exception):
    pass


def _expect(cond, msg):
    if not cond:
        raise SchemaError(msg)


def load_events(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as exc:
        raise SchemaError(f"{path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path}: invalid JSON: {exc}") from exc
    _expect(isinstance(doc, dict), f"{path}: top level is not an object")
    events = doc.get("traceEvents")
    _expect(isinstance(events, list), f"{path}: missing traceEvents array")
    return events


def pair_slices(events, path="<trace>"):
    """Replays the per-tid B/E streams into completed slices, validating
    stack discipline (balanced, name-matched pairs) and per-tid timestamp
    monotonicity along the way.

    Returns (slices, counters): slices are dicts with tid/name/cat/begin/
    end/args (ts in microseconds); counters are (tid, ts, name, value).
    """
    stacks = defaultdict(list)   # tid -> [(name, ts, cat, args)]
    last_ts = {}                 # tid -> last B/E timestamp seen
    slices = []
    counters = []
    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        _expect(isinstance(ev, dict), f"{where} is not an object")
        ph = ev.get("ph")
        _expect(ph in ("B", "E", "M", "C"),
                f"{where}: unexpected ph {ph!r}")
        if ph == "M":
            _expect(isinstance(ev.get("name"), str), f"{where}: missing name")
            continue
        tid = ev.get("tid")
        _expect(isinstance(tid, int), f"{where}: missing tid")
        ts = ev.get("ts")
        _expect(isinstance(ts, (int, float)), f"{where}: missing ts")
        if ph == "C":
            args = ev.get("args")
            _expect(isinstance(args, dict) and "value" in args,
                    f"{where}: counter without args.value")
            counters.append((tid, ts, ev.get("name"), args["value"]))
            continue
        name = ev.get("name")
        _expect(isinstance(name, str) and name, f"{where}: missing name")
        _expect(ts >= last_ts.get(tid, 0.0),
                f"{where}: ts {ts} goes backwards on tid {tid}")
        last_ts[tid] = ts
        if ph == "B":
            cat = ev.get("cat")
            _expect(isinstance(cat, str) and cat, f"{where}: B without cat")
            if cat == "kernel":
                args = ev.get("args")
                _expect(isinstance(args, dict)
                        and args.get("kind") in KERNEL_KINDS
                        and isinstance(args.get("chunks"), int),
                        f"{where}: kernel B without args.kind/args.chunks")
            stacks[tid].append((name, ts, cat, ev.get("args") or {}))
        else:  # E
            _expect(stacks[tid],
                    f"{where}: E {name!r} on tid {tid} with empty stack")
            bname, bts, cat, args = stacks[tid].pop()
            _expect(bname == name,
                    f"{where}: E {name!r} does not match open B {bname!r} "
                    f"on tid {tid}")
            slices.append({"tid": tid, "name": name, "cat": cat,
                           "begin": bts, "end": ts, "args": args})
    for tid, stack in stacks.items():
        _expect(not stack,
                f"{path}: tid {tid} ends with unclosed slices "
                f"{[s[0] for s in stack]!r}")
    return slices, counters


def busy_union_ms(intervals):
    """Total measure of a union of [begin, end) intervals, in ms. Handles
    the nesting of inline slices inside worker slices without double
    counting."""
    total = 0.0
    end = -1.0
    for b, e in sorted(intervals):
        if b > end:
            total += e - b
            end = e
        elif e > end:
            total += e - end
            end = e
    return total / 1000.0


def kernel_table(slices):
    """Per-kernel aggregates, mirroring exec::trace_kernel_aggregates():
    wall stats from launch/inline slices (launches serialize, so their
    walls sum to the kernel's wall share), busy from worker/inline."""
    aggs = defaultdict(lambda: {"count": 0, "chunks": 0, "total_ms": 0.0,
                                "max_ms": 0.0, "busy": defaultdict(float)})
    for s in slices:
        if s["cat"] != "kernel":
            continue
        a = aggs[s["name"]]
        ms = (s["end"] - s["begin"]) / 1000.0
        kind = s["args"]["kind"]
        if kind != "worker":
            a["count"] += 1
            a["chunks"] += s["args"]["chunks"]
            a["total_ms"] += ms
            a["max_ms"] = max(a["max_ms"], ms)
        if kind != "launch":
            a["busy"][s["tid"]] += ms
    rows = []
    for name, a in aggs.items():
        busy = a["busy"].values()
        workers = len(busy)
        imbalance = (max(busy) * workers / sum(busy)
                     if workers and sum(busy) > 0 else 0.0)
        rows.append({"name": name, "count": a["count"], "chunks": a["chunks"],
                     "total_ms": a["total_ms"], "max_ms": a["max_ms"],
                     "workers": workers, "imbalance": imbalance})
    rows.sort(key=lambda r: -r["total_ms"])
    return rows


def phase_table(slices):
    """Per-phase critical path. For every phase span, clips each thread's
    busy kernel slices (worker/inline; launch windows include dispatcher
    wait and are excluded) to the span's window and takes the interval
    union per tid. The busiest thread's clipped busy is the critical
    path: the phase cannot run faster than that thread, however the rest
    of the work is balanced."""
    phases = defaultdict(lambda: {"wall_ms": 0.0, "spans": 0,
                                  "busy_ms": 0.0, "critical_ms": 0.0})
    busy_slices = [s for s in slices if s["cat"] == "kernel"
                   and s["args"]["kind"] != "launch"]
    for span in slices:
        if span["cat"] != "phase":
            continue
        p = phases[span["name"]]
        p["spans"] += 1
        p["wall_ms"] += (span["end"] - span["begin"]) / 1000.0
        per_tid = defaultdict(list)
        for s in busy_slices:
            b = max(s["begin"], span["begin"])
            e = min(s["end"], span["end"])
            if e > b:
                per_tid[s["tid"]].append((b, e))
        busy = {tid: busy_union_ms(iv) for tid, iv in per_tid.items()}
        p["busy_ms"] += sum(busy.values())
        p["critical_ms"] += max(busy.values(), default=0.0)
    rows = [{"name": name, **p} for name, p in phases.items()]
    rows.sort(key=lambda r: -r["wall_ms"])
    return rows


def service_table(slices):
    """Per-name aggregates over the ClusterService dispatcher spans
    (cat "service": service/queue-wait and service/run). Queue-wait spans
    are clamped to their dispatcher track (the true waits live in the
    service metrics histograms), so this reads as a per-track timeline
    breakdown: dispatcher time spent waiting for work vs running it."""
    aggs = defaultdict(lambda: {"count": 0, "total_ms": 0.0, "max_ms": 0.0})
    for s in slices:
        if s["cat"] != "service":
            continue
        a = aggs[s["name"]]
        ms = (s["end"] - s["begin"]) / 1000.0
        a["count"] += 1
        a["total_ms"] += ms
        a["max_ms"] = max(a["max_ms"], ms)
    rows = [{"name": name, **a} for name, a in sorted(aggs.items())]
    return rows


def check_request_ids(slices, path="<trace>"):
    """The id contract: every service span carries a positive args.rid.
    Other categories may or may not (spans recorded outside any request
    context legitimately have none)."""
    for s in slices:
        if s["cat"] != "service":
            continue
        rid = s["args"].get("rid")
        _expect(isinstance(rid, int) and rid > 0,
                f"{path}: service span {s['name']!r} on tid {s['tid']} "
                f"carries rid {rid!r} — a dispatch path lost its "
                "RequestScope")


def per_request_table(slices):
    """Groups spans by args.rid. Returns rows sorted by rid: per request,
    the queue-wait / run walls from its service spans and the count and
    summed wall of every other span category recorded in its context
    (phase spans, shard waves)."""
    requests = defaultdict(lambda: defaultdict(
        lambda: {"count": 0, "total_ms": 0.0}))
    for s in slices:
        rid = s["args"].get("rid")
        if not isinstance(rid, int) or rid <= 0:
            continue
        key = (s["cat"], s["name"])
        cell = requests[rid][key]
        cell["count"] += 1
        cell["total_ms"] += (s["end"] - s["begin"]) / 1000.0
    rows = []
    for rid in sorted(requests):
        spans = requests[rid]
        wait = spans.get(("service", "service/queue-wait"),
                         {"total_ms": 0.0})["total_ms"]
        run = spans.get(("service", "service/run"),
                        {"total_ms": 0.0})["total_ms"]
        other = {f"{cat}:{name}": cell for (cat, name), cell in
                 sorted(spans.items()) if cat != "service"}
        rows.append({"rid": rid, "queue_wait_ms": wait, "run_ms": run,
                     "other": other})
    return rows


def print_per_request(slices):
    rows = per_request_table(slices)
    if not rows:
        print("\nno rid-tagged spans (run under a ClusterService with "
              "FDBSCAN_TRACE to get per-request breakdowns)")
        return
    print(f"\nper-request breakdown ({len(rows)} requests):")
    print(f"  {'rid':>6} {'wait ms':>9} {'run ms':>9}  spans in context")
    for r in rows:
        detail = ", ".join(
            f"{key} x{cell['count']} ({cell['total_ms']:.3f} ms)"
            for key, cell in r["other"].items())
        print(f"  {r['rid']:>6} {r['queue_wait_ms']:>9.3f} "
              f"{r['run_ms']:>9.3f}  {detail if detail else '-'}")


def print_summary(path, top, per_request=False):
    events = load_events(path)
    slices, counters = pair_slices(events, path)

    kernels = kernel_table(slices)
    total_ms = sum(r["total_ms"] for r in kernels)
    print(f"{path}: {len(events)} events, {len(kernels)} kernels, "
          f"{total_ms:.3f} ms total kernel wall")

    print(f"\ntop {min(top, len(kernels))} kernels by total wall time:")
    print(f"  {'kernel':<36} {'count':>6} {'chunks':>9} {'total ms':>10} "
          f"{'max ms':>9} {'wrk':>4} {'imbal':>6}")
    for r in kernels[:top]:
        print(f"  {r['name']:<36} {r['count']:>6} {r['chunks']:>9} "
              f"{r['total_ms']:>10.3f} {r['max_ms']:>9.3f} "
              f"{r['workers']:>4} {r['imbalance']:>6.2f}")

    phases = phase_table(slices)
    if phases:
        print("\nper-phase critical path (busiest thread inside the span; "
              "the floor on the phase's runtime):")
        print(f"  {'phase':<28} {'spans':>6} {'wall ms':>10} "
              f"{'busy ms':>10} {'crit ms':>9} {'par':>5}")
        for r in phases:
            par = r["busy_ms"] / r["critical_ms"] if r["critical_ms"] else 0.0
            print(f"  {r['name']:<28} {r['spans']:>6} {r['wall_ms']:>10.3f} "
                  f"{r['busy_ms']:>10.3f} {r['critical_ms']:>9.3f} "
                  f"{par:>5.2f}")

    service = service_table(slices)
    if service:
        print("\nservice spans (dispatcher-track queue-wait vs run):")
        print(f"  {'span':<28} {'count':>6} {'total ms':>10} {'mean ms':>9} "
              f"{'max ms':>9}")
        for r in service:
            mean = r["total_ms"] / r["count"] if r["count"] else 0.0
            print(f"  {r['name']:<28} {r['count']:>6} {r['total_ms']:>10.3f} "
                  f"{mean:>9.3f} {r['max_ms']:>9.3f}")

    if counters:
        peaks = defaultdict(int)
        for _, _, name, value in counters:
            peaks[name] = max(peaks[name], value)
        print("\ncounter peaks:")
        for name, peak in sorted(peaks.items()):
            if name == "device_memory":
                print(f"  {name}: {peak} bytes "
                      f"({peak / (1024.0 * 1024.0):.2f} MB peak)")
            else:
                print(f"  {name}: {peak}")

    if per_request:
        print_per_request(slices)

    unnamed = [r for r in kernels if r["name"] == "<unnamed>"]
    if unnamed:
        print(f"\nnote: {unnamed[0]['count']} launches are <unnamed> — "
              "route them through the labeled parallel_for overloads")


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="+", metavar="TRACE",
                        help="Chrome trace JSON written by FDBSCAN_TRACE")
    parser.add_argument("--validate", action="store_true",
                        help="only schema-check the given traces")
    parser.add_argument("--top", type=int, default=10, metavar="N",
                        help="kernels to show in the summary (default 10)")
    parser.add_argument("--per-request", action="store_true",
                        help="group service/phase/shard spans by their "
                             "args.rid request id")
    args = parser.parse_args(argv)

    try:
        if args.validate:
            for path in args.files:
                events = load_events(path)
                slices, counters = pair_slices(events, path)
                check_request_ids(slices, path)
                service = sum(1 for s in slices if s["cat"] == "service")
                print(f"ok: {path} ({len(events)} events, "
                      f"{len(slices)} slices, {len(counters)} counter "
                      f"samples, {service} service spans id-tagged)")
            return 0
        for path in args.files:
            print_summary(path, args.top, args.per_request)
    except SchemaError as exc:
        print(f"schema error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
