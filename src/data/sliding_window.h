// Sliding-window driver over an arrival-ordered point stream.
//
// The streaming benches and tests (bench/stream_throughput.cpp,
// tests/test_stream.cpp) all replay the same workload shape over the
// trajectory generators: points arrive in batches, a window of the W
// most recent points stays live, everything older expires. This header
// is that loop, factored once: a SlidingWindow walks a pre-generated
// vector (the generators are deterministic, so the whole arrival order
// is known up front) and yields one WindowStep per batch — the points
// to insert() and the sequence horizon to expire(), in the order a
// session would apply them. The driver is pure bookkeeping: it never
// touches an engine, so the same step sequence can feed a
// stream::StreamingEngine, a service session, and the from-scratch
// reference runs of an equivalence check.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "geometry/point.h"

namespace fdbscan::data {

/// One step of a sliding-window replay: first expire everything below
/// `expire_before` (sequence numbers == arrival indices), then insert
/// `batch`. After applying both, the live set is arrivals
/// [expire_before, next_seq) — exactly `live_count` points.
template <int DIM>
struct WindowStep {
  std::span<const Point<DIM>> batch;  ///< points arriving this step
  std::int64_t first_seq = 0;         ///< sequence number of batch[0]
  std::int64_t expire_before = 0;     ///< expire horizon applied *before* insert
  std::int64_t live_count = 0;        ///< live points after the step
};

/// Replays `stream` (arrival order) in batches of `batch_size`, keeping
/// at most `window` points live. The final batch may be short. The
/// expire horizon trails the insert so the live set never exceeds
/// `window`: step i inserts arrivals [i*B, i*B + b) and first expires
/// everything below i*B + b - window.
template <int DIM>
class SlidingWindow {
 public:
  SlidingWindow(const std::vector<Point<DIM>>& stream, std::int64_t window,
                std::int64_t batch_size) noexcept
      : stream_(stream.data(), stream.size()),
        window_(std::max<std::int64_t>(window, 1)),
        batch_(std::max<std::int64_t>(batch_size, 1)) {}

  [[nodiscard]] bool done() const noexcept {
    return cursor_ >= static_cast<std::int64_t>(stream_.size());
  }

  [[nodiscard]] std::int64_t num_steps() const noexcept {
    const auto n = static_cast<std::int64_t>(stream_.size());
    return (n + batch_ - 1) / batch_;
  }

  /// The next step. Precondition: !done().
  [[nodiscard]] WindowStep<DIM> next() noexcept {
    const auto n = static_cast<std::int64_t>(stream_.size());
    const std::int64_t b = std::min(batch_, n - cursor_);
    WindowStep<DIM> step;
    step.first_seq = cursor_;
    step.batch = stream_.subspan(static_cast<std::size_t>(cursor_),
                                 static_cast<std::size_t>(b));
    step.expire_before = std::max<std::int64_t>(0, cursor_ + b - window_);
    step.live_count = cursor_ + b - step.expire_before;
    cursor_ += b;
    return step;
  }

  /// The live arrivals after the step that `next()` just returned —
  /// the from-scratch reference point set of an equivalence check.
  [[nodiscard]] std::vector<Point<DIM>> live_points() const {
    const std::int64_t lo = std::max<std::int64_t>(0, cursor_ - window_);
    std::vector<Point<DIM>> out;
    out.reserve(static_cast<std::size_t>(cursor_ - lo));
    for (std::int64_t i = lo; i < cursor_; ++i) {
      out.push_back(stream_[static_cast<std::size_t>(i)]);
    }
    return out;
  }

 private:
  std::span<const Point<DIM>> stream_;
  std::int64_t window_;
  std::int64_t batch_;
  std::int64_t cursor_ = 0;
};

}  // namespace fdbscan::data
