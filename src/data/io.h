// CSV import/export for points and labels, so datasets and clustering
// results can move between this library and external tooling (plotting,
// the real NGSIM/PortoTaxi downloads if available, etc.).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/point.h"

namespace fdbscan::data {

/// Writes one point per line, coordinates comma-separated.
void write_csv(const std::string& path, const std::vector<Point2>& points);
void write_csv(const std::string& path, const std::vector<Point3>& points);

/// Writes points with a trailing label column.
void write_labeled_csv(const std::string& path,
                       const std::vector<Point2>& points,
                       const std::vector<std::int32_t>& labels);
void write_labeled_csv(const std::string& path,
                       const std::vector<Point3>& points,
                       const std::vector<std::int32_t>& labels);

/// Reads comma/space-separated points, taking the first DIM columns of
/// every non-empty, non-comment ('#') line. Throws std::runtime_error on
/// open failure or malformed rows.
std::vector<Point2> read_csv2(const std::string& path);
std::vector<Point3> read_csv3(const std::string& path);

}  // namespace fdbscan::data
