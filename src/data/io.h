// CSV import/export for points and labels, so datasets and clustering
// results can move between this library and external tooling (plotting,
// the real NGSIM/PortoTaxi downloads if available, etc.).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/point.h"

namespace fdbscan::data {

/// Writes one point per line, coordinates comma-separated.
void write_csv(const std::string& path, const std::vector<Point2>& points);
void write_csv(const std::string& path, const std::vector<Point3>& points);

/// Writes points with a trailing label column.
void write_labeled_csv(const std::string& path,
                       const std::vector<Point2>& points,
                       const std::vector<std::int32_t>& labels);
void write_labeled_csv(const std::string& path,
                       const std::vector<Point3>& points,
                       const std::vector<std::int32_t>& labels);

/// Reads comma/semicolon/tab/space-separated points. Every non-empty,
/// non-comment ('#') line must hold exactly DIM numeric columns; rows
/// with trailing garbage or a different column count (e.g. a labeled CSV
/// re-read as plain points) throw std::runtime_error naming the
/// offending line. Use read_labeled_csv* for files written by
/// write_labeled_csv.
std::vector<Point2> read_csv2(const std::string& path);
std::vector<Point3> read_csv3(const std::string& path);

/// Points plus the label column of a write_labeled_csv file.
struct LabeledPoints2 {
  std::vector<Point2> points;
  std::vector<std::int32_t> labels;
};
struct LabeledPoints3 {
  std::vector<Point3> points;
  std::vector<std::int32_t> labels;
};

/// Reads a labeled CSV (DIM coordinates + exactly one integer label per
/// row); the strict-column counterpart of read_csv* for labeled files.
/// Throws std::runtime_error on open failure or malformed rows.
LabeledPoints2 read_labeled_csv2(const std::string& path);
LabeledPoints3 read_labeled_csv3(const std::string& path);

}  // namespace fdbscan::data
