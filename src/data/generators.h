// Synthetic dataset generators reproducing the density structure of the
// paper's evaluation data (DESIGN.md §2 documents each substitution):
//
//   * ngsim_like      — vehicle trajectories on a few multi-lane highway
//                       segments: extremely dense, nearly 1-D clusters
//                       (NGSIM; Fig. 3 left).
//   * porto_taxi_like — taxi GPS tracks over a city street grid with a
//                       dense center and sparse outskirts (PortoTaxi;
//                       Fig. 3 middle).
//   * road_network_like — points along the polylines of a sparse
//                       regional road network (3D Road; Fig. 3 right).
//   * hacc_like       — 3-D cosmology: NFW-profile halos in a periodic
//                       box over a uniform background (§5.2, Fig. 5).
//   * uniform / gaussian_mixture — controlled inputs for tests and
//                       ablations.
//
// All generators are deterministic in their seed.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/point.h"
#include "geometry/points_view.h"

namespace fdbscan::data {

/// NGSIM-like: `n` points on three highway locations, each with several
/// parallel lanes. Coordinates span roughly [0, 1]^2; lane width and GPS
/// jitter make point spacing ~1e-4, so eps values of 1e-3..1e-2 produce
/// the paper's "overly dense" regime.
std::vector<Point2> ngsim_like(std::int64_t n, std::uint64_t seed);

/// PortoTaxi-like: `n` points from random-walk taxi trips on a Manhattan
/// street grid, trip density decaying with distance from the center.
std::vector<Point2> porto_taxi_like(std::int64_t n, std::uint64_t seed);

/// 3DRoad-like: `n` points sampled along the polyline edges of a random
/// planar road network (sparse, curve-like clusters).
std::vector<Point2> road_network_like(std::int64_t n, std::uint64_t seed);

/// HACC-like 3-D cosmology snapshot: `n` particles in a periodic cube of
/// side `box_size` (default matches the paper's 64-rank subdivision of a
/// 256^3 Mpc/h volume: 64 Mpc/h per rank). `halo_fraction` of the
/// particles live in NFW-like halos; the rest form a uniform background.
struct CosmologyConfig {
  float box_size = 64.0f;
  float halo_fraction = 0.45f;
  std::int32_t num_halos = 400;
  /// Mean halo scale radius; sizes are drawn log-uniformly around it.
  float scale_radius = 0.25f;
  /// Force-resolution softening: halo centers are smeared over this
  /// radius, mimicking the simulation's force resolution so that cell
  /// occupancies at the paper's eps = 0.042 match §5.2's dense-cell
  /// fractions instead of collapsing into delta spikes.
  /// (Defaults calibrated against §5.2: ~13-18% of points in dense cells
  /// at (eps, minpts) = (0.042, 5), <2% at 50, none at >=200, ~91-94% at
  /// eps = 1.0.)
  float core_softening = 0.08f;
};
std::vector<Point3> hacc_like(std::int64_t n, std::uint64_t seed,
                              const CosmologyConfig& config = {});

/// Uniform points in [0, extent]^2 / ^3.
std::vector<Point2> uniform2(std::int64_t n, float extent, std::uint64_t seed);
std::vector<Point3> uniform3(std::int64_t n, float extent, std::uint64_t seed);

/// `k` isotropic Gaussian blobs with the given sigma, centers uniform in
/// [0, extent]^2, equal weights.
std::vector<Point2> gaussian_mixture2(std::int64_t n, std::int32_t k,
                                      float extent, float sigma,
                                      std::uint64_t seed);

/// Random subsample of `m` points without replacement (m >= size returns
/// a shuffled copy). Mirrors the paper's "random subsampling of the
/// datasets" (§5.1).
template <int DIM>
std::vector<Point<DIM>> subsample(const std::vector<Point<DIM>>& points,
                                  std::int64_t m, std::uint64_t seed);

extern template std::vector<Point2> subsample<2>(const std::vector<Point2>&,
                                                 std::int64_t, std::uint64_t);
extern template std::vector<Point3> subsample<3>(const std::vector<Point3>&,
                                                 std::int64_t, std::uint64_t);

/// Packs a generated point set into the per-axis SoA layout the engine's
/// index build and the SIMD kernels consume (geometry/points_view.h),
/// so callers can hand `Engine` both layouts without a second pass of
/// their own.
template <int DIM>
[[nodiscard]] inline PointsStore<DIM> soa(const std::vector<Point<DIM>>& points) {
  return PointsStore<DIM>(points);
}

}  // namespace fdbscan::data
