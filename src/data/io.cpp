#include "data/io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace fdbscan::data {

namespace {

template <int DIM>
void write_csv_impl(const std::string& path,
                    const std::vector<Point<DIM>>& points,
                    const std::vector<std::int32_t>* labels) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (int d = 0; d < DIM; ++d) {
      if (d > 0) out << ',';
      out << points[i][d];
    }
    if (labels) out << ',' << (*labels)[i];
    out << '\n';
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

template <int DIM>
std::vector<Point<DIM>> read_csv_impl(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::vector<Point<DIM>> points;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    for (char& c : line) {
      if (c == ',' || c == ';' || c == '\t') c = ' ';
    }
    std::istringstream row(line);
    Point<DIM> p;
    for (int d = 0; d < DIM; ++d) {
      if (!(row >> p[d])) {
        throw std::runtime_error(path + ": malformed row at line " +
                                 std::to_string(lineno));
      }
    }
    points.push_back(p);
  }
  return points;
}

}  // namespace

void write_csv(const std::string& path, const std::vector<Point2>& points) {
  write_csv_impl<2>(path, points, nullptr);
}
void write_csv(const std::string& path, const std::vector<Point3>& points) {
  write_csv_impl<3>(path, points, nullptr);
}
void write_labeled_csv(const std::string& path,
                       const std::vector<Point2>& points,
                       const std::vector<std::int32_t>& labels) {
  write_csv_impl<2>(path, points, &labels);
}
void write_labeled_csv(const std::string& path,
                       const std::vector<Point3>& points,
                       const std::vector<std::int32_t>& labels) {
  write_csv_impl<3>(path, points, &labels);
}
std::vector<Point2> read_csv2(const std::string& path) {
  return read_csv_impl<2>(path);
}
std::vector<Point3> read_csv3(const std::string& path) {
  return read_csv_impl<3>(path);
}

}  // namespace fdbscan::data
