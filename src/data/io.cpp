#include "data/io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace fdbscan::data {

namespace {

template <int DIM>
void write_csv_impl(const std::string& path,
                    const std::vector<Point<DIM>>& points,
                    const std::vector<std::int32_t>* labels) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (int d = 0; d < DIM; ++d) {
      if (d > 0) out << ',';
      out << points[i][d];
    }
    if (labels) out << ',' << (*labels)[i];
    out << '\n';
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

[[noreturn]] void malformed(const std::string& path, std::size_t lineno,
                            const std::string& what) {
  throw std::runtime_error(path + ": " + what + " at line " +
                           std::to_string(lineno));
}

/// Parses the coordinate columns of one row into `p` and returns the
/// stream positioned after them. Throws when a coordinate is not numeric.
template <int DIM>
std::istringstream row_stream(std::string line, const std::string& path,
                              std::size_t lineno, Point<DIM>& p) {
  for (char& c : line) {
    if (c == ',' || c == ';' || c == '\t') c = ' ';
  }
  std::istringstream row(std::move(line));
  for (int d = 0; d < DIM; ++d) {
    if (!(row >> p[d])) {
      malformed(path, lineno,
                "malformed row (expected " + std::to_string(DIM) +
                    " numeric columns)");
    }
  }
  return row;
}

/// Rejects rows with columns beyond the ones already consumed: a labeled
/// CSV re-read as plain points, or trailing garbage ("1,2,abc"), must
/// fail loudly instead of silently parsing as a valid point.
void require_row_end(std::istringstream& row, const std::string& path,
                     std::size_t lineno, int expected_columns) {
  std::string extra;
  if (row >> extra) {
    malformed(path, lineno,
              "extra column(s) starting with '" + extra + "' (expected " +
                  std::to_string(expected_columns) +
                  " columns; use read_labeled_csv for labeled files)");
  }
}

template <int DIM>
std::vector<Point<DIM>> read_csv_impl(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::vector<Point<DIM>> points;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    Point<DIM> p;
    auto row = row_stream<DIM>(std::move(line), path, lineno, p);
    require_row_end(row, path, lineno, DIM);
    points.push_back(p);
  }
  return points;
}

template <int DIM, class Labeled>
Labeled read_labeled_csv_impl(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  Labeled result;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    Point<DIM> p;
    auto row = row_stream<DIM>(std::move(line), path, lineno, p);
    std::int32_t label;
    if (!(row >> label)) {
      malformed(path, lineno, "missing or non-integer label column");
    }
    require_row_end(row, path, lineno, DIM + 1);
    result.points.push_back(p);
    result.labels.push_back(label);
  }
  return result;
}

}  // namespace

void write_csv(const std::string& path, const std::vector<Point2>& points) {
  write_csv_impl<2>(path, points, nullptr);
}
void write_csv(const std::string& path, const std::vector<Point3>& points) {
  write_csv_impl<3>(path, points, nullptr);
}
void write_labeled_csv(const std::string& path,
                       const std::vector<Point2>& points,
                       const std::vector<std::int32_t>& labels) {
  write_csv_impl<2>(path, points, &labels);
}
void write_labeled_csv(const std::string& path,
                       const std::vector<Point3>& points,
                       const std::vector<std::int32_t>& labels) {
  write_csv_impl<3>(path, points, &labels);
}
std::vector<Point2> read_csv2(const std::string& path) {
  return read_csv_impl<2>(path);
}
std::vector<Point3> read_csv3(const std::string& path) {
  return read_csv_impl<3>(path);
}
LabeledPoints2 read_labeled_csv2(const std::string& path) {
  return read_labeled_csv_impl<2, LabeledPoints2>(path);
}
LabeledPoints3 read_labeled_csv3(const std::string& path) {
  return read_labeled_csv_impl<3, LabeledPoints3>(path);
}

}  // namespace fdbscan::data
