#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>

namespace fdbscan::data {

namespace {

using Rng = std::mt19937_64;

float uniform01(Rng& rng) {
  return std::uniform_real_distribution<float>(0.0f, 1.0f)(rng);
}

}  // namespace

std::vector<Point2> ngsim_like(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  // Three studied locations, well separated; each is a short stretch of
  // highway with 5 lanes. Lane separation 4e-4, along-lane extent ~0.1,
  // lateral jitter 5e-5 — matching NGSIM's transcription noise scale
  // relative to a [0,1]-normalized longitude/latitude frame.
  struct Site {
    Point2 origin;
    float heading;  // radians
  };
  const Site sites[3] = {{{0.15f, 0.20f}, 0.3f},
                         {{0.55f, 0.60f}, 1.2f},
                         {{0.80f, 0.25f}, 2.2f}};
  constexpr int kLanes = 5;
  constexpr float kLaneGap = 4e-4f;
  constexpr float kExtent = 0.010f;
  constexpr float kJitter = 5e-5f;
  std::normal_distribution<float> jitter(0.0f, kJitter);
  std::vector<Point2> points;
  points.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const Site& site = sites[rng() % 3];
    const int lane = static_cast<int>(rng() % kLanes);
    const float along = uniform01(rng) * kExtent;
    const float across = (static_cast<float>(lane) -
                          static_cast<float>(kLanes - 1) / 2.0f) *
                             kLaneGap +
                         jitter(rng);
    const float c = std::cos(site.heading), s = std::sin(site.heading);
    points.push_back({{site.origin[0] + along * c - across * s,
                       site.origin[1] + along * s + across * c}});
  }
  return points;
}

std::vector<Point2> porto_taxi_like(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  // Manhattan street grid with 0.01-spaced streets over [0,1]^2. Taxi
  // pings split between *idle spots* (stands, stations, traffic lights —
  // where real fleets emit most of their GPS fixes, giving the extreme
  // per-cell concentration §5.1 measures) and moving trips random-walking
  // along streets; both cluster downtown and fade toward the outskirts
  // (Fig. 3 middle).
  constexpr float kStreetGap = 0.01f;
  constexpr float kJitter = 7e-4f;
  constexpr int kIdleSpots = 30;
  constexpr float kIdleFraction = 0.85f;
  std::normal_distribution<float> start(0.5f, 0.09f);
  std::normal_distribution<float> gps(0.0f, kJitter);
  std::vector<Point2> points;
  points.reserve(static_cast<std::size_t>(n));
  auto snap = [&](float v) {
    return std::round(v / kStreetGap) * kStreetGap;
  };
  // Idle spots cluster downtown; popularity is Zipf-like.
  std::vector<Point2> spots(kIdleSpots);
  std::vector<double> spot_cdf(kIdleSpots);
  double spot_total = 0.0;
  for (int s = 0; s < kIdleSpots; ++s) {
    spots[static_cast<std::size_t>(s)] = {
        {snap(std::clamp(start(rng), 0.0f, 1.0f)),
         snap(std::clamp(start(rng), 0.0f, 1.0f))}};
    spot_total += 1.0 / std::pow(static_cast<double>(s) + 1.0, 0.8);
    spot_cdf[static_cast<std::size_t>(s)] = spot_total;
  }
  std::normal_distribution<float> idle_spread(0.0f, 5e-4f);
  while (static_cast<std::int64_t>(points.size()) < n) {
    if (uniform01(rng) < kIdleFraction) {
      // A burst of pings while waiting at one spot.
      const double pick = uniform01(rng) * spot_total;
      const auto it = std::lower_bound(spot_cdf.begin(), spot_cdf.end(), pick);
      const auto& spot = spots[static_cast<std::size_t>(it - spot_cdf.begin())];
      const int burst = 30 + static_cast<int>(rng() % 60);
      for (int b = 0;
           b < burst && static_cast<std::int64_t>(points.size()) < n; ++b) {
        points.push_back({{std::clamp(spot[0] + idle_spread(rng), 0.0f, 1.0f),
                           std::clamp(spot[1] + idle_spread(rng), 0.0f, 1.0f)}});
      }
      continue;
    }
    // One trip: walk along axis-aligned streets, recording GPS pings.
    float x = std::clamp(start(rng), 0.0f, 1.0f);
    float y = std::clamp(start(rng), 0.0f, 1.0f);
    x = snap(x);
    y = snap(y);
    const int pings = 20 + static_cast<int>(rng() % 60);
    bool horizontal = (rng() & 1) != 0;
    for (int p = 0;
         p < pings && static_cast<std::int64_t>(points.size()) < n; ++p) {
      points.push_back({{std::clamp(x + gps(rng), 0.0f, 1.0f),
                         std::clamp(y + gps(rng), 0.0f, 1.0f)}});
      const float step = kStreetGap * 0.25f;
      if (horizontal) {
        x = std::clamp(x + ((rng() & 1) ? step : -step), 0.0f, 1.0f);
      } else {
        y = std::clamp(y + ((rng() & 1) ? step : -step), 0.0f, 1.0f);
      }
      if (rng() % 8 == 0) {  // turn at an intersection
        x = snap(x);
        y = snap(y);
        horizontal = !horizontal;
      }
    }
  }
  return points;
}

std::vector<Point2> road_network_like(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  // A sparse regional road network: junction nodes in [0,1]^2 joined to
  // their nearest neighbors by slightly wiggly polylines; points are GPS
  // samples along the roads (3D Road records elevation along roads; the
  // paper uses only longitude/latitude). The node count is tuned so that
  // >95% of a 16k-point sample falls into dense cells at the paper's
  // Fig. 4 parameters, matching §5.1's observation.
  constexpr int kNodes = 20;
  std::vector<Point2> nodes(kNodes);
  for (auto& node : nodes) node = {{uniform01(rng), uniform01(rng)}};
  struct Edge {
    Point2 a, b;
    float length;
    float traffic;  // sampling weight (currently proportional to length)
  };
  std::vector<Edge> edges;
  float total_weight = 0.0f;
  for (int i = 0; i < kNodes; ++i) {
    // Connect to the 2 nearest following nodes for a sparse planar-ish net.
    std::vector<std::pair<float, int>> dist;
    for (int j = 0; j < kNodes; ++j) {
      if (j != i) dist.push_back({squared_distance(nodes[i], nodes[j]), j});
    }
    std::partial_sort(dist.begin(), dist.begin() + 2, dist.end());
    for (int k = 0; k < 2; ++k) {
      if (dist[static_cast<std::size_t>(k)].second > i) {  // dedupe i<j
        Edge e{nodes[static_cast<std::size_t>(i)],
               nodes[static_cast<std::size_t>(
                   dist[static_cast<std::size_t>(k)].second)],
               0.0f, 0.0f};
        e.length = distance(e.a, e.b);
        e.traffic = e.length;
        total_weight += e.traffic;
        edges.push_back(e);
      }
    }
  }
  std::normal_distribution<float> jitter(0.0f, 3e-4f);
  std::vector<Point2> points;
  points.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    // Pick an edge with probability proportional to its traffic.
    float target = uniform01(rng) * total_weight;
    std::size_t e = 0;
    while (e + 1 < edges.size() && target > edges[e].traffic) {
      target -= edges[e].traffic;
      ++e;
    }
    const float t = uniform01(rng);
    const Edge& edge = edges[e];
    // A gentle sinusoidal wiggle makes roads curve like real ones.
    const float wiggle =
        0.004f * std::sin(t * 6.0f * std::numbers::pi_v<float> +
                          static_cast<float>(e));
    const float dx = edge.b[0] - edge.a[0], dy = edge.b[1] - edge.a[1];
    const float len = std::max(edge.length, 1e-6f);
    points.push_back({{edge.a[0] + t * dx - wiggle * dy / len + jitter(rng),
                       edge.a[1] + t * dy + wiggle * dx / len + jitter(rng)}});
  }
  return points;
}

std::vector<Point3> hacc_like(std::int64_t n, std::uint64_t seed,
                              const CosmologyConfig& config) {
  Rng rng(seed);
  const float L = config.box_size;
  // Halo centers and sizes. Halo masses (point counts) follow a steep
  // power law, as do real halo mass functions.
  struct Halo {
    Point3 center;
    float rs;
    float weight;
  };
  std::vector<Halo> halos(static_cast<std::size_t>(config.num_halos));
  float total_weight = 0.0f;
  for (auto& h : halos) {
    h.center = {{uniform01(rng) * L, uniform01(rng) * L, uniform01(rng) * L}};
    const float u = uniform01(rng);
    h.rs = config.scale_radius * std::exp2(4.0f * (u - 0.5f));  // log-uniform
    h.weight = std::pow(uniform01(rng), 2.0f) + 0.01f;  // steep mass function
    total_weight += h.weight;
  }
  std::normal_distribution<float> gauss(0.0f, 1.0f);
  std::vector<Point3> points;
  points.reserve(static_cast<std::size_t>(n));
  auto wrap = [L](float v) {
    v = std::fmod(v, L);
    return v < 0.0f ? v + L : v;
  };
  for (std::int64_t i = 0; i < n; ++i) {
    if (uniform01(rng) < config.halo_fraction) {
      // Pick a halo by weight, sample an isotropic NFW-like radius:
      // r = rs * u / (1 - u)^(1/2) concentrates mass at the center with a
      // heavy tail, close to an NFW profile's behaviour.
      float target = uniform01(rng) * total_weight;
      std::size_t h = 0;
      while (h + 1 < halos.size() && target > halos[h].weight) {
        target -= halos[h].weight;
        ++h;
      }
      const float u = uniform01(rng);
      float r = halos[h].rs * u / std::sqrt(1.0f - u * 0.999f);
      // Core softening: in quadrature, so the profile tail is unchanged
      // while the innermost density saturates at the resolution scale.
      r = std::sqrt(r * r + config.core_softening * config.core_softening);
      float dir[3] = {gauss(rng), gauss(rng), gauss(rng)};
      const float norm = std::sqrt(dir[0] * dir[0] + dir[1] * dir[1] +
                                   dir[2] * dir[2]) +
                         1e-12f;
      points.push_back({{wrap(halos[h].center[0] + r * dir[0] / norm),
                         wrap(halos[h].center[1] + r * dir[1] / norm),
                         wrap(halos[h].center[2] + r * dir[2] / norm)}});
    } else {
      points.push_back(
          {{uniform01(rng) * L, uniform01(rng) * L, uniform01(rng) * L}});
    }
  }
  return points;
}

std::vector<Point2> uniform2(std::int64_t n, float extent, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point2> points(static_cast<std::size_t>(n));
  for (auto& p : points) {
    p = {{uniform01(rng) * extent, uniform01(rng) * extent}};
  }
  return points;
}

std::vector<Point3> uniform3(std::int64_t n, float extent, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point3> points(static_cast<std::size_t>(n));
  for (auto& p : points) {
    p = {{uniform01(rng) * extent, uniform01(rng) * extent,
          uniform01(rng) * extent}};
  }
  return points;
}

std::vector<Point2> gaussian_mixture2(std::int64_t n, std::int32_t k,
                                      float extent, float sigma,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point2> centers(static_cast<std::size_t>(k));
  for (auto& c : centers) {
    c = {{uniform01(rng) * extent, uniform01(rng) * extent}};
  }
  std::normal_distribution<float> gauss(0.0f, sigma);
  std::vector<Point2> points(static_cast<std::size_t>(n));
  for (auto& p : points) {
    const auto& c = centers[rng() % static_cast<std::uint64_t>(k)];
    p = {{c[0] + gauss(rng), c[1] + gauss(rng)}};
  }
  return points;
}

template <int DIM>
std::vector<Point<DIM>> subsample(const std::vector<Point<DIM>>& points,
                                  std::int64_t m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> ids(points.size());
  std::iota(ids.begin(), ids.end(), 0);
  std::shuffle(ids.begin(), ids.end(), rng);
  const auto take =
      std::min<std::int64_t>(m, static_cast<std::int64_t>(points.size()));
  std::vector<Point<DIM>> result(static_cast<std::size_t>(take));
  for (std::int64_t i = 0; i < take; ++i) {
    result[static_cast<std::size_t>(i)] =
        points[static_cast<std::size_t>(ids[static_cast<std::size_t>(i)])];
  }
  return result;
}

template std::vector<Point2> subsample<2>(const std::vector<Point2>&,
                                          std::int64_t, std::uint64_t);
template std::vector<Point3> subsample<3>(const std::vector<Point3>&,
                                          std::int64_t, std::uint64_t);

}  // namespace fdbscan::data
