// Morton (Z-order) codes used by the linear BVH construction (Karras
// 2012) and by the dense grid to linearize cell coordinates. 64-bit codes:
// 31 bits per dimension in 2-D, 21 bits per dimension in 3-D.
#pragma once

#include <cstdint>

#include "geometry/box.h"
#include "geometry/point.h"

namespace fdbscan {

namespace detail {

/// Spreads the low 21 bits of x so that bit i moves to bit 3*i.
[[nodiscard]] constexpr std::uint64_t expand_bits_3(std::uint64_t x) noexcept {
  x &= 0x1fffff;  // 21 bits
  x = (x | (x << 32)) & 0x1f00000000ffffULL;
  x = (x | (x << 16)) & 0x1f0000ff0000ffULL;
  x = (x | (x << 8)) & 0x100f00f00f00f00fULL;
  x = (x | (x << 4)) & 0x10c30c30c30c30c3ULL;
  x = (x | (x << 2)) & 0x1249249249249249ULL;
  return x;
}

/// Spreads the low 31 bits of x so that bit i moves to bit 2*i.
[[nodiscard]] constexpr std::uint64_t expand_bits_2(std::uint64_t x) noexcept {
  x &= 0x7fffffff;  // 31 bits
  x = (x | (x << 16)) & 0x0000ffff0000ffffULL;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

}  // namespace detail

/// Interleaves integer grid coordinates into a Morton code.
[[nodiscard]] constexpr std::uint64_t morton2(std::uint32_t x,
                                              std::uint32_t y) noexcept {
  return detail::expand_bits_2(x) | (detail::expand_bits_2(y) << 1);
}

[[nodiscard]] constexpr std::uint64_t morton3(std::uint32_t x, std::uint32_t y,
                                              std::uint32_t z) noexcept {
  return detail::expand_bits_3(x) | (detail::expand_bits_3(y) << 1) |
         (detail::expand_bits_3(z) << 2);
}

/// Bits of grid resolution per dimension used for BVH Morton codes.
template <int DIM>
constexpr int morton_bits_per_dim() noexcept {
  return DIM == 2 ? 31 : (DIM == 3 ? 21 : 63 / DIM);
}

/// Maps a point to its Morton code within `scene`: coordinates are
/// normalized to [0, 1) over the scene bounds and quantized.
template <int DIM>
[[nodiscard]] inline std::uint64_t morton_code(const Point<DIM>& p,
                                               const Box<DIM>& scene) noexcept {
  constexpr int bits = morton_bits_per_dim<DIM>();
  constexpr std::uint64_t buckets = 1ULL << bits;
  std::uint32_t q[DIM > 0 ? DIM : 1];
  for (int d = 0; d < DIM; ++d) {
    const float extent = scene.max[d] - scene.min[d];
    float t = extent > 0.0f ? (p[d] - scene.min[d]) / extent : 0.0f;
    if (t < 0.0f) t = 0.0f;
    if (t >= 1.0f) t = 0x1.fffffep-1f;  // largest float < 1
    q[d] = static_cast<std::uint32_t>(t * static_cast<float>(buckets));
    if (q[d] >= buckets) q[d] = static_cast<std::uint32_t>(buckets - 1);
  }
  if constexpr (DIM == 2) {
    return morton2(q[0], q[1]);
  } else if constexpr (DIM == 3) {
    return morton3(q[0], q[1], q[2]);
  } else {
    // Generic bit interleave for other low dimensions.
    std::uint64_t code = 0;
    for (int b = 0; b < bits; ++b)
      for (int d = 0; d < DIM; ++d)
        code |= ((static_cast<std::uint64_t>(q[d]) >> b) & 1ULL)
                << (b * DIM + d);
    return code;
  }
}

}  // namespace fdbscan
