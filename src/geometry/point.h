// Low-dimensional point type and distance kernels. The paper targets
// "low-dimensional (e.g., spatial) data"; DIM = 2 and DIM = 3 are the
// instantiations used throughout, with single-precision coordinates as on
// the GPU.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>

namespace fdbscan {

template <int DIM>
struct Point {
  static_assert(DIM >= 1 && DIM <= 6, "designed for low-dimensional data");
  std::array<float, DIM> coords{};

  float& operator[](int d) noexcept { return coords[static_cast<std::size_t>(d)]; }
  float operator[](int d) const noexcept {
    return coords[static_cast<std::size_t>(d)];
  }

  friend bool operator==(const Point& a, const Point& b) noexcept {
    return a.coords == b.coords;
  }
};

using Point2 = Point<2>;
using Point3 = Point<3>;

/// Squared Euclidean distance — the workhorse of all range predicates
/// (the square root is never needed; comparisons use eps^2).
template <int DIM>
[[nodiscard]] inline float squared_distance(const Point<DIM>& a,
                                            const Point<DIM>& b) noexcept {
  float s = 0.0f;
  for (int d = 0; d < DIM; ++d) {
    const float diff = a[d] - b[d];
    s += diff * diff;
  }
  return s;
}

template <int DIM>
[[nodiscard]] inline float distance(const Point<DIM>& a,
                                    const Point<DIM>& b) noexcept {
  return std::sqrt(squared_distance(a, b));
}

/// DBSCAN's eps-neighborhood predicate: dist(a, b) <= eps.
/// (The paper's set definition uses strict <, its Alg. 3 uses <=; every
/// implementation it compares against uses <=, which we follow.)
template <int DIM>
[[nodiscard]] inline bool within(const Point<DIM>& a, const Point<DIM>& b,
                                 float eps_squared) noexcept {
  return squared_distance(a, b) <= eps_squared;
}

}  // namespace fdbscan
