// Axis-aligned bounding boxes: the bounding volumes of the BVH and the
// dense-cell primitives of FDBSCAN-DenseBox.
#pragma once

#include <algorithm>
#include <limits>

#include "geometry/point.h"

namespace fdbscan {

template <int DIM>
struct Box {
  Point<DIM> min;
  Point<DIM> max;

  /// An inverted (empty) box: any expand() makes it valid.
  [[nodiscard]] static Box empty() noexcept {
    Box b;
    for (int d = 0; d < DIM; ++d) {
      b.min[d] = std::numeric_limits<float>::max();
      b.max[d] = std::numeric_limits<float>::lowest();
    }
    return b;
  }

  [[nodiscard]] bool valid() const noexcept {
    for (int d = 0; d < DIM; ++d)
      if (min[d] > max[d]) return false;
    return true;
  }

  void expand(const Point<DIM>& p) noexcept {
    for (int d = 0; d < DIM; ++d) {
      min[d] = std::min(min[d], p[d]);
      max[d] = std::max(max[d], p[d]);
    }
  }

  void expand(const Box& other) noexcept {
    for (int d = 0; d < DIM; ++d) {
      min[d] = std::min(min[d], other.min[d]);
      max[d] = std::max(max[d], other.max[d]);
    }
  }

  [[nodiscard]] bool contains(const Point<DIM>& p) const noexcept {
    for (int d = 0; d < DIM; ++d)
      if (p[d] < min[d] || p[d] > max[d]) return false;
    return true;
  }

  [[nodiscard]] Point<DIM> center() const noexcept {
    Point<DIM> c;
    for (int d = 0; d < DIM; ++d) c[d] = 0.5f * (min[d] + max[d]);
    return c;
  }

  friend bool operator==(const Box& a, const Box& b) noexcept {
    return a.min == b.min && a.max == b.max;
  }
};

using Box2 = Box<2>;
using Box3 = Box<3>;

/// Squared distance from a point to the closest point of a box (0 if the
/// point is inside). This is the BVH descent predicate: a subtree can
/// contain an eps-neighbor iff squared_distance(p, bounds) <= eps^2.
template <int DIM>
[[nodiscard]] inline float squared_distance(const Point<DIM>& p,
                                            const Box<DIM>& b) noexcept {
  float s = 0.0f;
  for (int d = 0; d < DIM; ++d) {
    float diff = 0.0f;
    if (p[d] < b.min[d]) {
      diff = b.min[d] - p[d];
    } else if (p[d] > b.max[d]) {
      diff = p[d] - b.max[d];
    }
    s += diff * diff;
  }
  return s;
}

template <int DIM>
[[nodiscard]] inline float squared_distance(const Box<DIM>& b,
                                            const Point<DIM>& p) noexcept {
  return squared_distance(p, b);
}

/// True iff the sphere of radius sqrt(eps_squared) around p intersects b.
template <int DIM>
[[nodiscard]] inline bool intersects(const Point<DIM>& p, float eps_squared,
                                     const Box<DIM>& b) noexcept {
  return squared_distance(p, b) <= eps_squared;
}

/// Bounding box of a set of points (serial; parallel version in bvh).
template <int DIM>
[[nodiscard]] inline Box<DIM> bounds_of(const Point<DIM>* points,
                                        std::size_t n) noexcept {
  Box<DIM> b = Box<DIM>::empty();
  for (std::size_t i = 0; i < n; ++i) b.expand(points[i]);
  return b;
}

}  // namespace fdbscan
