// Structure-of-arrays point storage: one contiguous float span per
// coordinate axis. This is the layout the vectorized kernels
// (exec/simd.h) consume — a batched distance test loads eight consecutive
// x's (then y's, ...) with one vector load instead of eight strided AoS
// reads. The AoS Point<DIM> remains the public element type everywhere;
// the store is the engine-internal mirror the hot loops run over.
//
// Padding contract: every axis array carries kSoaPadding extra entries of
// +infinity past the logical size, so a kernel may always load a full
// vector group starting at any in-range index without reading past the
// allocation. Padding lanes produce +inf distances and fail every
// eps-test, but callers are expected to mask them out by group size
// anyway (exec/simd.h kernels do).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "geometry/point.h"

namespace fdbscan {

/// Extra +inf entries appended to every axis array (one vector group
/// minus one lane; keep in sync with simd::kWidth).
inline constexpr std::int64_t kSoaPadding = 7;

/// Non-owning per-axis view of a point set. `axes()[d][i]` is coordinate
/// d of point i; each axis span has kSoaPadding valid entries past
/// size() (the padding contract above).
template <int DIM>
struct PointsView {
  static_assert(DIM >= 1 && DIM <= 6, "designed for low-dimensional data");
  std::array<const float*, DIM> axis{};
  std::int64_t n = 0;

  [[nodiscard]] std::int64_t size() const noexcept { return n; }
  [[nodiscard]] const std::array<const float*, DIM>& axes() const noexcept {
    return axis;
  }

  [[nodiscard]] Point<DIM> point(std::int64_t i) const noexcept {
    Point<DIM> p;
    for (int d = 0; d < DIM; ++d) p[d] = axis[static_cast<std::size_t>(d)][i];
    return p;
  }
};

/// Owning SoA store. Convertible from the AoS vector every generator and
/// public entry point produces; the sharded gather fills one directly
/// (shard/sharded_engine.h) so the per-shard engines skip the re-pack.
template <int DIM>
class PointsStore {
 public:
  PointsStore() = default;

  explicit PointsStore(const std::vector<Point<DIM>>& aos) { assign(aos); }

  void assign(const std::vector<Point<DIM>>& aos) {
    resize(static_cast<std::int64_t>(aos.size()));
    for (std::int64_t i = 0; i < n_; ++i) {
      set(i, aos[static_cast<std::size_t>(i)]);
    }
  }

  /// Sets the logical size and re-establishes the +inf padding; existing
  /// coordinates are not preserved.
  void resize(std::int64_t n) {
    n_ = n;
    for (int d = 0; d < DIM; ++d) {
      axis_[static_cast<std::size_t>(d)].assign(
          static_cast<std::size_t>(n + kSoaPadding),
          std::numeric_limits<float>::infinity());
    }
  }

  void set(std::int64_t i, const Point<DIM>& p) noexcept {
    for (int d = 0; d < DIM; ++d) {
      axis_[static_cast<std::size_t>(d)][static_cast<std::size_t>(i)] = p[d];
    }
  }

  [[nodiscard]] std::int64_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

  [[nodiscard]] PointsView<DIM> view() const noexcept {
    PointsView<DIM> v;
    v.n = n_;
    for (int d = 0; d < DIM; ++d) {
      v.axis[static_cast<std::size_t>(d)] =
          axis_[static_cast<std::size_t>(d)].data();
    }
    return v;
  }

  [[nodiscard]] Point<DIM> point(std::int64_t i) const noexcept {
    Point<DIM> p;
    for (int d = 0; d < DIM; ++d) {
      p[d] = axis_[static_cast<std::size_t>(d)][static_cast<std::size_t>(i)];
    }
    return p;
  }

  /// Heap bytes of the axis arrays (for memory accounting).
  [[nodiscard]] std::size_t bytes_used() const noexcept {
    std::size_t total = 0;
    for (int d = 0; d < DIM; ++d) {
      total += axis_[static_cast<std::size_t>(d)].capacity() * sizeof(float);
    }
    return total;
  }

 private:
  std::array<std::vector<float>, DIM> axis_;
  std::int64_t n_ = 0;
};

using PointsView2 = PointsView<2>;
using PointsView3 = PointsView<3>;
using PointsStore2 = PointsStore<2>;
using PointsStore3 = PointsStore<3>;

}  // namespace fdbscan
