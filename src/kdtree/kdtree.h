// Median-split k-d tree (Bentley 1975). The classic spatial index the
// DBSCAN literature pairs with Algorithm 1 to reach O(n log n); used here
// by the sequential reference implementation and by the BVH-vs-kd-tree
// index ablation (the paper's claim is that a BVH is the better traversal
// structure for low-dimensional data on wide parallel hardware).
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"

namespace fdbscan {

template <int DIM>
class KdTree {
 public:
  /// Points with fewer than this many entries become a leaf bucket.
  static constexpr std::int32_t kLeafSize = 16;

  explicit KdTree(const std::vector<Point<DIM>>& points) : points_(points) {
    ids_.resize(points.size());
    std::iota(ids_.begin(), ids_.end(), 0);
    if (!points_.empty()) {
      nodes_.reserve(2 * points.size() / kLeafSize + 2);
      root_ = build(0, static_cast<std::int32_t>(points.size()), 0);
    }
  }

  [[nodiscard]] std::int32_t size() const noexcept {
    return static_cast<std::int32_t>(points_.size());
  }

  [[nodiscard]] std::size_t bytes_used() const noexcept {
    return nodes_.size() * sizeof(Node) + ids_.size() * sizeof(std::int32_t);
  }

  /// Visits every point id within sqrt(eps_squared) of p. The callback
  /// returns TraversalControl and may terminate early. If `tested` is
  /// non-null it accumulates the number of point distance computations.
  template <class Callback>
  void for_each_near(const Point<DIM>& p, float eps_squared, Callback&& cb,
                     std::int64_t* tested = nullptr) const {
    if (points_.empty()) return;
    std::int32_t stack[64];
    int top = 0;
    stack[top++] = root_;
    while (top > 0) {
      const Node& node = nodes_[static_cast<std::size_t>(stack[--top])];
      if (node.is_leaf()) {
        if (tested) *tested += node.end - node.begin;
        for (std::int32_t k = node.begin; k < node.end; ++k) {
          const std::int32_t id = ids_[static_cast<std::size_t>(k)];
          if (squared_distance(p, points_[static_cast<std::size_t>(id)]) <=
              eps_squared) {
            if (cb(id) == TraversalControlKd::kTerminate) return;
          }
        }
        continue;
      }
      const float diff = p[node.axis] - node.split;
      const std::int32_t near_child = diff <= 0.0f ? node.left : node.right;
      const std::int32_t far_child = diff <= 0.0f ? node.right : node.left;
      if (diff * diff <= eps_squared) stack[top++] = far_child;
      stack[top++] = near_child;
    }
  }

  /// Local traversal-control enum (kept distinct from the BVH's so this
  /// header stands alone).
  enum class TraversalControlKd : std::uint8_t { kContinue, kTerminate };

 private:
  struct Node {
    float split = 0.0f;
    std::int32_t axis = -1;          // -1 marks a leaf
    std::int32_t left = -1;          // internal: child node ids
    std::int32_t right = -1;
    std::int32_t begin = 0, end = 0;  // leaf: range into ids_

    [[nodiscard]] bool is_leaf() const noexcept { return axis < 0; }
  };

  std::int32_t build(std::int32_t begin, std::int32_t end, int depth) {
    const auto node_id = static_cast<std::int32_t>(nodes_.size());
    nodes_.emplace_back();
    if (end - begin <= kLeafSize) {
      nodes_[static_cast<std::size_t>(node_id)].begin = begin;
      nodes_[static_cast<std::size_t>(node_id)].end = end;
      return node_id;
    }
    const int axis = depth % DIM;
    const std::int32_t mid = begin + (end - begin) / 2;
    std::nth_element(ids_.begin() + begin, ids_.begin() + mid,
                     ids_.begin() + end, [&](std::int32_t a, std::int32_t b) {
                       return points_[static_cast<std::size_t>(a)][axis] <
                              points_[static_cast<std::size_t>(b)][axis];
                     });
    const float split =
        points_[static_cast<std::size_t>(
            ids_[static_cast<std::size_t>(mid)])][axis];
    const std::int32_t left = build(begin, mid, depth + 1);
    const std::int32_t right = build(mid, end, depth + 1);
    Node& node = nodes_[static_cast<std::size_t>(node_id)];
    node.axis = axis;
    node.split = split;
    node.left = left;
    node.right = right;
    return node_id;
  }

  const std::vector<Point<DIM>>& points_;
  std::vector<std::int32_t> ids_;
  std::vector<Node> nodes_;
  std::int32_t root_ = 0;
};

}  // namespace fdbscan
