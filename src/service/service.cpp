#include "service/service.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <set>
#include <string>

#include "exec/trace.h"
#include "obs/log.h"

namespace fdbscan::service {

namespace detail {

std::optional<int> parse_positive_env_int(const char* value) {
  if (value == nullptr || *value == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (errno == ERANGE || end == value || *end != '\0') return std::nullopt;
  if (v <= 0 || v > std::numeric_limits<int>::max()) return std::nullopt;
  return static_cast<int>(v);
}

}  // namespace detail

namespace {

int env_int(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  if (const auto v = detail::parse_positive_env_int(env)) return *v;
  // A set-but-unusable knob silently becoming the default is how typos
  // ship to production; warn once per variable. The warning rides the
  // structured log (obs/log.h) so it carries machine-readable fields
  // and honors FDBSCAN_LOG; the default sink keeps it on stderr.
  static std::mutex warned_mutex;
  static std::set<std::string> warned;
  std::lock_guard<std::mutex> lock(warned_mutex);
  if (warned.insert(name).second) {
    obs::log_event(obs::LogLevel::kWarn, "service.env_ignored",
                   {{"var", name},
                    {"value", env},
                    {"expected", "positive integer"},
                    {"fallback", fallback}});
  }
  return fallback;
}

// wd_heap_ comparator: std::push_heap/pop_heap build a max-heap, so
// "greater due_ns first" yields the earliest deadline at the front.
bool later_deadline(const detail::WatchdogEntry& a,
                    const detail::WatchdogEntry& b) {
  return a.due_ns > b.due_ns;
}

}  // namespace

ServiceConfig ServiceConfig::from_env() {
  ServiceConfig config;
  config.queue_capacity =
      env_int("FDBSCAN_SERVICE_QUEUE_CAP", config.queue_capacity);
  config.dispatchers =
      env_int("FDBSCAN_SERVICE_DISPATCHERS", config.dispatchers);
  config.shards = env_int("FDBSCAN_SERVICE_SHARDS", config.shards);
  return config;
}

ClusterService::ClusterService(const ServiceConfig& config)
    : config_(config), pool_(std::max<std::int32_t>(1, config.engine_capacity)) {
  config_.queue_capacity = std::max<std::int32_t>(1, config_.queue_capacity);
  config_.dispatchers = std::max<std::int32_t>(1, config_.dispatchers);
  config_.engine_capacity = std::max<std::int32_t>(1, config_.engine_capacity);
  config_.shards = std::max<std::int32_t>(1, config_.shards);
  dispatchers_.reserve(static_cast<std::size_t>(config_.dispatchers));
  for (int i = 0; i < config_.dispatchers; ++i) {
    dispatchers_.emplace_back([this, i] { dispatcher_loop(i); });
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
  obs::log_event(obs::LogLevel::kInfo, "service.start",
                 {{"queue_capacity", config_.queue_capacity},
                  {"dispatchers", config_.dispatchers},
                  {"engine_capacity", config_.engine_capacity},
                  {"shards", config_.shards}});
}

ClusterService::~ClusterService() {
  std::deque<Request> leftover;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
    leftover.swap(queue_);
  }
  cv_queue_.notify_all();
  {
    std::lock_guard<std::mutex> lock(wd_mutex_);
    wd_stop_ = true;
  }
  wd_cv_.notify_all();
  for (std::thread& t : dispatchers_) t.join();
  if (watchdog_.joinable()) watchdog_.join();
  // Requests still queued at shutdown never ran; their futures must not
  // dangle. They resolve to kCancelled after the dispatchers are gone.
  for (Request& req : leftover) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    obs_.cancelled.inc();
    obs_.queued.add(-1);
    req.promise.set_value(
        Error{ErrorCode::kCancelled, "service destroyed before the request ran"});
  }
  obs::log_event(
      obs::LogLevel::kInfo, "service.stop",
      {{"submitted", submitted_.load(std::memory_order_relaxed)},
       {"completed", completed_.load(std::memory_order_relaxed)},
       {"cancelled", cancelled_.load(std::memory_order_relaxed)}});
}

void ClusterService::enqueue(Request req, double deadline_ms) {
  req.submit_ns = exec::trace_now_ns();
  if (deadline_ms <= 0.0) {
    // Fail fast: the deadline elapsed before the request existed. No
    // queue slot, no kernel launch. Only a service-private token may be
    // raised here — a caller-supplied token can be shared across that
    // caller's other requests, and poisoning it would cancel work this
    // rejection has nothing to do with (the future's error is the
    // caller's signal either way).
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    obs_.deadline_exceeded.inc();
    if (req.token_private) {
      req.token->request_cancel(exec::CancelReason::kDeadlineExceeded);
    }
    req.promise.set_value(Error{ErrorCode::kDeadlineExceeded,
                                "deadline_ms <= 0: deadline elapsed before "
                                "submission"});
    return;
  }
  const bool has_deadline = deadline_ms != kNoDeadline;
  const std::int64_t deadline_ns =
      has_deadline
          ? req.submit_ns + static_cast<std::int64_t>(deadline_ms * 1e6)
          : 0;
  std::weak_ptr<exec::CancelToken> wd_token = req.token;
  // Capture the generation BEFORE the request can run: a reset() after
  // completion bumps it, turning our not-yet-due heap entry into a
  // no-op instead of a stale cancel of the token's next user.
  const std::uint32_t wd_generation = req.token->generation();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_) {
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      obs_.cancelled.inc();
      req.promise.set_value(
          Error{ErrorCode::kCancelled, "service is shutting down"});
      return;
    }
    if (static_cast<std::int64_t>(queue_.size()) >= config_.queue_capacity) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      obs_.rejected.inc();
      req.promise.set_value(Error{
          ErrorCode::kQueueFull,
          "request queue at capacity (" +
              std::to_string(config_.queue_capacity) + ")"});
      return;
    }
    queue_.push_back(std::move(req));
    obs_.queued.add(1);
  }
  cv_queue_.notify_one();
  if (has_deadline) {
    bool new_front = false;
    {
      std::lock_guard<std::mutex> lock(wd_mutex_);
      new_front = wd_heap_.empty() || deadline_ns < wd_heap_.front().due_ns;
      wd_heap_.push_back(detail::WatchdogEntry{deadline_ns,
                                               std::move(wd_token),
                                               wd_generation});
      std::push_heap(wd_heap_.begin(), wd_heap_.end(), later_deadline);
    }
    if (new_front) wd_cv_.notify_one();
  }
}

void ClusterService::dispatcher_loop(int index) {
  exec::trace_register_thread(
      ("service dispatcher " + std::to_string(index)).c_str());
  // Floor for this dispatcher's trace spans: a queue-wait span reaches
  // back to its request's submit time, which may overlap the previous
  // request's run on this track — clamp to keep per-track slices
  // non-overlapping (the metrics histograms record the true wait).
  std::int64_t track_floor_ns = exec::trace_now_ns();
  for (;;) {
    std::optional<Request> req;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      cv_queue_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      req.emplace(std::move(queue_.front()));
      queue_.pop_front();
      ++active_;
      obs_.queued.add(-1);
      obs_.active.add(1);
    }
    process(*req, track_floor_ns);
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      --active_;
      obs_.active.add(-1);
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

void ClusterService::process(Request& req, std::int64_t& track_floor_ns) {
  // Request-id context for the whole dispatch: the queue-wait and run
  // spans below, every span/log line emitted inside run_request (engine
  // lease, phase spans, shard waves) and the request_done event all
  // carry req.id, so the trace and the log join per request.
  obs::RequestScope rid_scope(req.id);
  const std::int64_t start_ns = exec::trace_now_ns();
  const std::int64_t wait_ns = start_ns - req.submit_ns;
  queue_wait_.add(wait_ns);
  obs_.queue_wait.observe_ns(wait_ns);
  if (exec::trace_enabled()) {
    exec::trace_record_span("service/queue-wait",
                            std::max(req.submit_ns, track_floor_ns), start_ns,
                            "service");
  }

  ServiceResult result = run_request(req);

  const std::int64_t end_ns = exec::trace_now_ns();
  const std::int64_t run_ns = end_ns - start_ns;
  run_time_.add(run_ns);
  obs_.run_time.observe_ns(run_ns);
  if (exec::trace_enabled()) {
    exec::trace_record_span("service/run", start_ns, end_ns, "service");
  }
  track_floor_ns = end_ns;

  const char* outcome = "ok";
  if (result.has_value()) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    obs_.completed.inc();
  } else {
    switch (result.error().code) {
      case ErrorCode::kCancelled:
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        obs_.cancelled.inc();
        outcome = "cancelled";
        break;
      case ErrorCode::kDeadlineExceeded:
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
        obs_.deadline_exceeded.inc();
        outcome = "deadline_exceeded";
        break;
      default:
        failed_.fetch_add(1, std::memory_order_relaxed);
        obs_.failed.inc();
        outcome = "failed";
        break;
    }
  }
  if (obs::log_enabled(obs::LogLevel::kDebug)) {
    obs::log_event(obs::LogLevel::kDebug, "service.request_done",
                   {{"dataset", req.dataset_id},
                    {"outcome", outcome},
                    {"queue_wait_ms", static_cast<double>(wait_ns) * 1e-6},
                    {"run_ms", static_cast<double>(run_ns) * 1e-6}});
  }
  req.promise.set_value(std::move(result));
}

ServiceResult ClusterService::run_request(Request& req) {
  try {
    // The token governs everything from here: engine construction, the
    // one-time coordinate scan and the run itself all dispatch kernels
    // under this scope, so a raised token unwinds out of any of them
    // within one chunk-quantum.
    exec::CancelScope scope(*req.token);
    exec::throw_if_cancelled();  // raised while queued: skip all work
    EnginePool::Lease lease =
        pool_.acquire(req.dataset_id, req.dim, req.make_engine, req.counters);
    if (!lease.validated()) {
      exec::throw_if_cancelled();
      if (auto error = req.scan(lease.engine())) return *std::move(error);
      lease.set_validated();
    }
    return req.run(lease.engine(), req.params, req.options, req.method,
                   req.shards);
  } catch (const exec::CancelledError& e) {
    const bool deadline =
        e.reason() == exec::CancelReason::kDeadlineExceeded;
    return Error{deadline ? ErrorCode::kDeadlineExceeded
                          : ErrorCode::kCancelled,
                 e.what()};
  } catch (const std::exception& e) {
    return Error{ErrorCode::kInternal,
                 std::string("dispatcher caught: ") + e.what()};
  }
}

void ClusterService::watchdog_loop() {
  std::unique_lock<std::mutex> lock(wd_mutex_);
  for (;;) {
    if (wd_stop_) return;
    if (wd_heap_.empty()) {
      wd_cv_.wait(lock, [&] { return wd_stop_ || !wd_heap_.empty(); });
      continue;
    }
    const std::int64_t due_ns = wd_heap_.front().due_ns;
    const std::int64_t now_ns = exec::trace_now_ns();
    if (now_ns >= due_ns) {
      std::pop_heap(wd_heap_.begin(), wd_heap_.end(), later_deadline);
      detail::WatchdogEntry entry = std::move(wd_heap_.back());
      wd_heap_.pop_back();
      if (auto token = entry.token.lock()) {
        // Conditional raise: a no-op unless the token is still unraised
        // AND in the generation we registered against. A user cancel
        // that raced us keeps kCancelled; a reset() (token reused for a
        // later request) makes this stale deadline inert.
        token->request_cancel_if(entry.generation,
                                 exec::CancelReason::kDeadlineExceeded);
      }
      continue;
    }
    wd_cv_.wait_for(lock, std::chrono::nanoseconds(due_ns - now_ns));
  }
}

void ClusterService::wait_idle() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  cv_idle_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

ServiceMetrics ClusterService::metrics() const {
  ServiceMetrics m;
  m.submitted = submitted_.load(std::memory_order_relaxed);
  m.completed = completed_.load(std::memory_order_relaxed);
  m.rejected = rejected_.load(std::memory_order_relaxed);
  m.cancelled = cancelled_.load(std::memory_order_relaxed);
  m.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  m.failed = failed_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    m.queued = static_cast<std::int64_t>(queue_.size());
    m.active = active_;
  }
  m.queue_wait = queue_wait_.snapshot();
  m.run_time = run_time_.snapshot();
  return m;
}

ServiceSnapshot ClusterService::snapshot() const {
  ServiceSnapshot s;
  s.config = config_;
  s.metrics = metrics();
  s.pool = pool_.stats();
  return s;
}

namespace {

// Re-expresses a ServiceSnapshot in the registry's vocabulary so the
// obs serializers render it — a per-service scrape and a statusz dump
// then agree on names and formats by construction.
obs::HistogramSnapshot to_histogram(const LatencySummary& s) {
  obs::HistogramSnapshot h;
  h.count = s.count;
  h.total_ns = static_cast<std::int64_t>(s.total_ms * 1e6);
  h.max_ns = static_cast<std::int64_t>(s.max_ms * 1e6);
  static_assert(kLatencyBuckets == obs::kHistogramBuckets,
                "service latency buckets must mirror the registry's");
  for (int i = 0; i < kLatencyBuckets; ++i) {
    h.buckets[static_cast<std::size_t>(i)] =
        s.buckets[static_cast<std::size_t>(i)];
  }
  return h;
}

obs::MetricsSnapshot to_metrics(const ServiceSnapshot& snap) {
  obs::MetricsSnapshot m;
  const ServiceMetrics& sm = snap.metrics;
  m.counters = {
      {"fdbscan_pool_evictions_total", snap.pool.evictions},
      {"fdbscan_pool_hits_total", snap.pool.hits},
      {"fdbscan_pool_misses_total", snap.pool.misses},
      {"fdbscan_service_cancelled_total", sm.cancelled},
      {"fdbscan_service_completed_total", sm.completed},
      {"fdbscan_service_deadline_exceeded_total", sm.deadline_exceeded},
      {"fdbscan_service_failed_total", sm.failed},
      {"fdbscan_service_rejected_total", sm.rejected},
      {"fdbscan_service_submitted_total", sm.submitted},
  };
  m.gauges = {
      {"fdbscan_pool_engines", snap.pool.engines},
      {"fdbscan_service_active_requests", sm.active},
      {"fdbscan_service_queue_depth", sm.queued},
  };
  m.histograms = {
      {"fdbscan_service_queue_wait", to_histogram(sm.queue_wait)},
      {"fdbscan_service_run_time", to_histogram(sm.run_time)},
  };
  return m;
}

}  // namespace

std::string to_prometheus_text(const ServiceSnapshot& snap) {
  std::string out =
      "# fdbscan-service queue_capacity=" +
      std::to_string(snap.config.queue_capacity) +
      " dispatchers=" + std::to_string(snap.config.dispatchers) +
      " engine_capacity=" + std::to_string(snap.config.engine_capacity) +
      " shards=" + std::to_string(snap.config.shards) + "\n";
  out += obs::to_prometheus_text(to_metrics(snap));
  return out;
}

std::string to_json(const ServiceSnapshot& snap) {
  std::string out = "{\"config\":{\"queue_capacity\":";
  out += std::to_string(snap.config.queue_capacity);
  out += ",\"dispatchers\":";
  out += std::to_string(snap.config.dispatchers);
  out += ",\"engine_capacity\":";
  out += std::to_string(snap.config.engine_capacity);
  out += ",\"shards\":";
  out += std::to_string(snap.config.shards);
  out += "},\"metrics\":";
  out += obs::to_json(to_metrics(snap));
  out += "}";
  return out;
}

}  // namespace fdbscan::service
