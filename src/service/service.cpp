#include "service/service.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <set>
#include <string>

#include "exec/trace.h"
#include "obs/log.h"

namespace fdbscan::service {

namespace detail {

std::optional<int> parse_positive_env_int(const char* value) {
  if (value == nullptr || *value == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (errno == ERANGE || end == value || *end != '\0') return std::nullopt;
  if (v <= 0 || v > std::numeric_limits<int>::max()) return std::nullopt;
  return static_cast<int>(v);
}

}  // namespace detail

namespace {

int env_int(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  if (const auto v = detail::parse_positive_env_int(env)) return *v;
  // A set-but-unusable knob silently becoming the default is how typos
  // ship to production; warn once per variable. The warning rides the
  // structured log (obs/log.h) so it carries machine-readable fields
  // and honors FDBSCAN_LOG; the default sink keeps it on stderr.
  static std::mutex warned_mutex;
  static std::set<std::string> warned;
  std::lock_guard<std::mutex> lock(warned_mutex);
  if (warned.insert(name).second) {
    obs::log_event(obs::LogLevel::kWarn, "service.env_ignored",
                   {{"var", name},
                    {"value", env},
                    {"expected", "positive integer"},
                    {"fallback", fallback}});
  }
  return fallback;
}

// wd_heap_ comparator: std::push_heap/pop_heap build a max-heap, so
// "greater due_ns first" yields the earliest deadline at the front.
bool later_deadline(const detail::WatchdogEntry& a,
                    const detail::WatchdogEntry& b) {
  return a.due_ns > b.due_ns;
}

// The session ticket turnstile: operations of one session execute in
// ticket (enqueue) order even though any dispatcher may pick them up.
// The constructor blocks until the session's `current` reaches this
// op's ticket; the destructor advances `current` and wakes the waiters.
//
// A waiter whose CancelToken is raised must not park forever holding up
// its future: it registers its ticket as abandoned and unwinds (the
// CancelledError surfaces as the op's result). Whoever later advances
// `current` onto an abandoned ticket skips past it, so the turnstile
// never stalls on a ticket nobody will run. The wait polls at 1ms — the
// token has no wakeup hook — which bounds cancel latency for a parked
// session op at roughly the same chunk-quantum the kernels guarantee.
class SessionTurn {
 public:
  SessionTurn(const std::shared_ptr<detail::SessionState>& state,
              std::uint64_t ticket)
      : s_(state.get()) {
    std::unique_lock<std::mutex> lock(s_->mutex);
    for (;;) {
      if (s_->current == ticket) return;
      const exec::CancelToken* token = exec::active_cancel_token();
      if (token != nullptr && token->cancelled()) {
        // Not our turn (checked under the lock just above), so no one
        // depends on us advancing `current` — mark the ticket skippable.
        s_->abandoned.insert(ticket);
        s_ = nullptr;
        exec::throw_if_cancelled();
      }
      s_->cv.wait_for(lock, std::chrono::milliseconds(1));
    }
  }

  SessionTurn(const SessionTurn&) = delete;
  SessionTurn& operator=(const SessionTurn&) = delete;

  ~SessionTurn() {
    if (s_ == nullptr) return;
    std::lock_guard<std::mutex> lock(s_->mutex);
    ++s_->current;
    while (s_->abandoned.erase(s_->current) > 0) ++s_->current;
    s_->cv.notify_all();
  }

 private:
  detail::SessionState* s_;
};

}  // namespace

ServiceConfig ServiceConfig::from_env() {
  ServiceConfig config;
  config.queue_capacity =
      env_int("FDBSCAN_SERVICE_QUEUE_CAP", config.queue_capacity);
  config.dispatchers =
      env_int("FDBSCAN_SERVICE_DISPATCHERS", config.dispatchers);
  config.shards = env_int("FDBSCAN_SERVICE_SHARDS", config.shards);
  config.session_capacity =
      env_int("FDBSCAN_SERVICE_SESSION_CAP", config.session_capacity);
  config.session_rebuild_pct =
      env_int("FDBSCAN_SESSION_REBUILD_PCT", config.session_rebuild_pct);
  return config;
}

ClusterService::ClusterService(const ServiceConfig& config)
    : config_(config), pool_(std::max<std::int32_t>(1, config.engine_capacity)) {
  config_.queue_capacity = std::max<std::int32_t>(1, config_.queue_capacity);
  config_.dispatchers = std::max<std::int32_t>(1, config_.dispatchers);
  config_.engine_capacity = std::max<std::int32_t>(1, config_.engine_capacity);
  config_.shards = std::max<std::int32_t>(1, config_.shards);
  config_.session_capacity =
      std::max<std::int32_t>(1, config_.session_capacity);
  config_.session_rebuild_pct =
      std::max<std::int32_t>(1, config_.session_rebuild_pct);
  dispatchers_.reserve(static_cast<std::size_t>(config_.dispatchers));
  for (int i = 0; i < config_.dispatchers; ++i) {
    dispatchers_.emplace_back([this, i] { dispatcher_loop(i); });
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
  obs::log_event(obs::LogLevel::kInfo, "service.start",
                 {{"queue_capacity", config_.queue_capacity},
                  {"dispatchers", config_.dispatchers},
                  {"engine_capacity", config_.engine_capacity},
                  {"shards", config_.shards},
                  {"session_capacity", config_.session_capacity},
                  {"graph", config_.graph ? 1 : 0}});
}

ClusterService::~ClusterService() {
  std::deque<Request> leftover;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
    leftover.swap(queue_);
  }
  cv_queue_.notify_all();
  for (std::thread& t : dispatchers_) t.join();
  // Graph-dispatched requests may still be in flight on the scheduler's
  // runners after the dispatchers are gone; their completions touch this
  // service (counters, queue mutex, promises). active_ covers them until
  // complete_graph runs, so waiting for zero here is the async drain.
  // The watchdog stays up until then — in-flight graphs keep their
  // deadline enforcement through shutdown.
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    cv_idle_.wait(lock, [&] { return active_ == 0; });
  }
  {
    std::lock_guard<std::mutex> lock(wd_mutex_);
    wd_stop_ = true;
  }
  wd_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  // Requests still queued at shutdown never ran; their futures must not
  // dangle. They resolve to kCancelled after the dispatchers are gone.
  for (Request& req : leftover) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    obs_.cancelled.inc();
    obs_.queued.add(-1);
    Error error{ErrorCode::kCancelled,
                "service destroyed before the request ran"};
    if (req.op == Op::kCluster || req.op == Op::kSessionQuery) {
      req.promise.set_value(std::move(error));
    } else {
      req.delta_promise.set_value(std::move(error));
    }
  }
  // Sessions still open die with the service; keep the process-wide
  // open-sessions gauge honest (busy_tokens_ and the map simply go away
  // with us — no dispatcher can touch them anymore).
  obs_.sessions_open.add(-static_cast<std::int64_t>(sessions_.size()));
  sessions_.clear();
  obs::log_event(
      obs::LogLevel::kInfo, "service.stop",
      {{"submitted", submitted_.load(std::memory_order_relaxed)},
       {"completed", completed_.load(std::memory_order_relaxed)},
       {"cancelled", cancelled_.load(std::memory_order_relaxed)}});
}

// Resolve a request rejected at admission into whichever promise its op
// uses. A rejected session *open* additionally poisons the session so
// later ops report why (the open holds ticket 0, but rejection happens
// before ticket assignment, so the turnstile is unaffected; no other op
// of the session can exist yet — open_session has not returned its
// handle — which is what makes the unlocked `failed` write safe).
void ClusterService::reject_request(Request& req, Error error) {
  if (req.session != nullptr && req.op == Op::kSessionOpen) {
    req.session->failed = true;
    req.session->open_error = error;
  }
  if (req.op == Op::kCluster || req.op == Op::kSessionQuery) {
    req.promise.set_value(std::move(error));
  } else {
    req.delta_promise.set_value(std::move(error));
  }
}

void ClusterService::enqueue(Request req, double deadline_ms) {
  req.submit_ns = exec::trace_now_ns();
  if (deadline_ms <= 0.0) {
    // Fail fast: the deadline elapsed before the request existed. No
    // queue slot, no kernel launch. Only a service-private token may be
    // raised here — a caller-supplied token can be shared across that
    // caller's other requests, and poisoning it would cancel work this
    // rejection has nothing to do with (the future's error is the
    // caller's signal either way).
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    obs_.deadline_exceeded.inc();
    if (req.token_private) {
      req.token->request_cancel(exec::CancelReason::kDeadlineExceeded);
    }
    reject_request(req, Error{ErrorCode::kDeadlineExceeded,
                              "deadline_ms <= 0: deadline elapsed before "
                              "submission"});
    return;
  }
  const bool has_deadline = deadline_ms != kNoDeadline;
  const std::int64_t deadline_ns =
      has_deadline
          ? req.submit_ns + static_cast<std::int64_t>(deadline_ms * 1e6)
          : 0;
  std::weak_ptr<exec::CancelToken> wd_token = req.token;
  // Capture the generation BEFORE the request can run: a reset() after
  // completion bumps it, turning our not-yet-due heap entry into a
  // no-op instead of a stale cancel of the token's next user.
  const std::uint32_t wd_generation = req.token->generation();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_) {
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      obs_.cancelled.inc();
      reject_request(req,
                     Error{ErrorCode::kCancelled, "service is shutting down"});
      return;
    }
    if (static_cast<std::int64_t>(queue_.size()) >= config_.queue_capacity) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      obs_.rejected.inc();
      reject_request(req, Error{ErrorCode::kQueueFull,
                                "request queue at capacity (" +
                                    std::to_string(config_.queue_capacity) +
                                    ")"});
      return;
    }
    // A caller-supplied token already observing an in-flight request
    // must not be shared with a second one: the two would race each
    // other's deadline registration and generation bump (DESIGN.md §10).
    // Registered here, released by process() when the request resolves.
    if (!req.token_private &&
        !busy_tokens_.insert(req.token.get()).second) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      obs_.rejected.inc();
      reject_request(req, Error{ErrorCode::kTokenBusy,
                                "CancelToken is already observing an "
                                "in-flight request"});
      return;
    }
    // Ticket assignment must be the last admission step and must happen
    // under the queue lock: tickets are dense (every assigned ticket is
    // eventually consumed by a dispatcher or the turnstile's abandoned
    // protocol) and ordered exactly like the queue.
    if (req.session != nullptr) req.ticket = req.session->next_ticket++;
    queue_.push_back(std::move(req));
    obs_.queued.add(1);
  }
  cv_queue_.notify_one();
  if (has_deadline) {
    bool new_front = false;
    {
      std::lock_guard<std::mutex> lock(wd_mutex_);
      new_front = wd_heap_.empty() || deadline_ns < wd_heap_.front().due_ns;
      wd_heap_.push_back(detail::WatchdogEntry{deadline_ns,
                                               std::move(wd_token),
                                               wd_generation});
      std::push_heap(wd_heap_.begin(), wd_heap_.end(), later_deadline);
    }
    if (new_front) wd_cv_.notify_one();
  }
}

void ClusterService::dispatcher_loop(int index) {
  exec::trace_register_thread(
      ("service dispatcher " + std::to_string(index)).c_str());
  // Floor for this dispatcher's trace spans: a queue-wait span reaches
  // back to its request's submit time, which may overlap the previous
  // request's run on this track — clamp to keep per-track slices
  // non-overlapping (the metrics histograms record the true wait).
  std::int64_t track_floor_ns = exec::trace_now_ns();
  for (;;) {
    std::optional<Request> req;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      cv_queue_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      req.emplace(std::move(queue_.front()));
      queue_.pop_front();
      ++active_;
      obs_.queued.add(-1);
      obs_.active.add(1);
    }
    const bool deferred = process(*req, track_floor_ns);
    // A deferred request is still active: the graph scheduler owns it
    // now, and complete_graph performs this decrement when it resolves.
    if (!deferred) {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      --active_;
      obs_.active.add(-1);
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

bool ClusterService::process(Request& req, std::int64_t& track_floor_ns) {
  // Request-id context for the whole dispatch: the queue-wait and run
  // spans below, every span/log line emitted inside run_request (engine
  // lease, phase spans, shard waves) and the request_done event all
  // carry req.id, so the trace and the log join per request.
  obs::RequestScope rid_scope(req.id);
  const std::int64_t start_ns = exec::trace_now_ns();
  const std::int64_t wait_ns = start_ns - req.submit_ns;
  queue_wait_.add(wait_ns);
  obs_.queue_wait.observe_ns(wait_ns);
  if (exec::trace_enabled()) {
    exec::trace_record_span("service/queue-wait",
                            std::max(req.submit_ns, track_floor_ns), start_ns,
                            "service");
  }

  if (config_.graph && req.op == Op::kCluster && req.stage != nullptr) {
    const bool deferred = process_graph(req, start_ns, wait_ns);
    track_floor_ns = exec::trace_now_ns();
    return deferred;
  }

  // Expected<> has no default construction; exactly one of these is
  // engaged per op (kCluster/kSessionQuery produce a Clustering, the
  // session mutations a SessionDelta) and resolves the matching promise.
  std::optional<ServiceResult> result;
  std::optional<SessionResult> delta;
  if (req.op == Op::kCluster || req.op == Op::kSessionQuery) {
    result.emplace(run_request(req));
  } else {
    delta.emplace(run_session_mutation(req));
  }
  finish_request(req, std::move(result), std::move(delta), start_ns, wait_ns);
  track_floor_ns = exec::trace_now_ns();
  return false;
}

bool ClusterService::process_graph(Request& req, std::int64_t start_ns,
                                   std::int64_t wait_ns) {
  // The dispatcher half of a graph dispatch mirrors run_request's
  // prologue exactly: cancel fast-fail, engine lease, one-time scan —
  // then stages the run instead of executing it. Failures here resolve
  // the request immediately (return false: not deferred).
  auto state = std::make_shared<DeferredRun>();
  state->start_ns = start_ns;
  state->wait_ns = wait_ns;
  // Tracks which Request object is live: `req` until it is moved into
  // the deferred state (which must happen before submit — a fast graph
  // could complete, and complete_graph read state->req, before this
  // thread regains control), state->req after. submit() can throw
  // (bad_alloc building the run; std::system_error lazily constructing
  // shared_scheduler's runner threads happens before anything is
  // enqueued, so no completion can race these handlers) — the catch
  // blocks must resolve whichever object still owns the promise, never
  // the moved-from shell.
  Request* live_req = &req;
  try {
    exec::CancelScope scope(*req.token);
    exec::throw_if_cancelled();  // raised while queued: skip all work
    state->lease.emplace(
        pool_.acquire(req.dataset_id, req.dim, req.make_engine, req.counters));
    EnginePool::Lease& lease = *state->lease;
    if (!lease.validated()) {
      exec::throw_if_cancelled();
      if (auto error = req.scan(lease.engine())) {
        finish_request(req, ServiceResult(*std::move(error)), std::nullopt,
                       start_ns, wait_ns);
        return false;
      }
      lease.set_validated();
    }
    exec::graph::TaskGraph g;
    state->out = req.stage(lease.engine(), g, req.params, req.options,
                           req.method, req.shards);
    // Hand the request to the scheduler. submit() captures the ambient
    // token (req.token, installed by the scope above — it outlives the
    // run inside state->req) and this thread's request id, so every
    // node polls the right token and attributes its span to req.id.
    state->req = std::move(req);
    live_req = &state->req;
    const Expected<exec::graph::GraphScheduler::Handle> handle =
        exec::graph::shared_scheduler().submit(
            std::move(g),
            [this, state](const exec::graph::GraphStats&,
                          std::exception_ptr error) {
              complete_graph(*state, error);
            });
    if (!handle.has_value()) {
      // Unreachable for staged graphs (they are DAGs by construction);
      // resolve rather than hang the future if it ever happens.
      finish_request(state->req,
                     ServiceResult(Error{ErrorCode::kInternal,
                                         handle.error().message}),
                     std::nullopt, start_ns, wait_ns);
      return false;
    }
    return true;
  } catch (const exec::CancelledError& e) {
    const bool deadline = e.reason() == exec::CancelReason::kDeadlineExceeded;
    finish_request(*live_req,
                   ServiceResult(Error{deadline ? ErrorCode::kDeadlineExceeded
                                                : ErrorCode::kCancelled,
                                       e.what()}),
                   std::nullopt, start_ns, wait_ns);
    return false;
  } catch (const std::exception& e) {
    finish_request(*live_req,
                   ServiceResult(Error{ErrorCode::kInternal,
                                       std::string("dispatcher caught: ") +
                                           e.what()}),
                   std::nullopt, start_ns, wait_ns);
    return false;
  }
}

void ClusterService::complete_graph(DeferredRun& run,
                                    std::exception_ptr error) {
  // Runs on the scheduler runner that finished (or failed) the graph's
  // last node. Must not throw (GraphScheduler::Completion contract).
  obs::RequestScope rid_scope(run.req.id);
  std::optional<ServiceResult> result;
  if (error == nullptr) {
    result.emplace(std::move(*run.out));
  } else {
    try {
      std::rethrow_exception(error);
    } catch (const exec::CancelledError& e) {
      const bool deadline =
          e.reason() == exec::CancelReason::kDeadlineExceeded;
      result.emplace(Error{deadline ? ErrorCode::kDeadlineExceeded
                                    : ErrorCode::kCancelled,
                           e.what()});
    } catch (const std::exception& e) {
      result.emplace(Error{ErrorCode::kInternal,
                           std::string("graph runner caught: ") + e.what()});
    } catch (...) {
      result.emplace(Error{ErrorCode::kInternal,
                           "graph runner caught a non-exception throw"});
    }
  }
  // Release the engine before resolving: a caller that waits on the
  // future and immediately resubmits against the same dataset must find
  // the lease free (same ordering finish_request keeps for busy tokens).
  run.lease.reset();
  finish_request(run.req, std::move(result), std::nullopt, run.start_ns,
                 run.wait_ns);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    --active_;
    obs_.active.add(-1);
    if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
  }
}

void ClusterService::finish_request(Request& req,
                                    std::optional<ServiceResult> result,
                                    std::optional<SessionResult> delta,
                                    std::int64_t start_ns,
                                    std::int64_t wait_ns) {
  const std::int64_t end_ns = exec::trace_now_ns();
  const std::int64_t run_ns = end_ns - start_ns;
  run_time_.add(run_ns);
  obs_.run_time.observe_ns(run_ns);
  if (exec::trace_enabled()) {
    exec::trace_record_span("service/run", start_ns, end_ns, "service");
  }

  // The caller token is free for its next request the moment its
  // current one reaches a terminal state — release before resolving the
  // promise so a caller that waits on the future never sees kTokenBusy
  // from an immediate resubmit.
  if (!req.token_private) {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    busy_tokens_.erase(req.token.get());
  }

  const Error* error = nullptr;
  if (result.has_value() && !result->has_value()) error = &result->error();
  if (delta.has_value() && !delta->has_value()) error = &delta->error();
  const char* outcome = "ok";
  if (error == nullptr) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    obs_.completed.inc();
  } else {
    switch (error->code) {
      case ErrorCode::kCancelled:
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        obs_.cancelled.inc();
        outcome = "cancelled";
        break;
      case ErrorCode::kDeadlineExceeded:
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
        obs_.deadline_exceeded.inc();
        outcome = "deadline_exceeded";
        break;
      default:
        failed_.fetch_add(1, std::memory_order_relaxed);
        obs_.failed.inc();
        outcome = "failed";
        break;
    }
  }
  if (obs::log_enabled(obs::LogLevel::kDebug)) {
    obs::log_event(obs::LogLevel::kDebug, "service.request_done",
                   {{"dataset", req.dataset_id},
                    {"outcome", outcome},
                    {"queue_wait_ms", static_cast<double>(wait_ns) * 1e-6},
                    {"run_ms", static_cast<double>(run_ns) * 1e-6}});
  }
  if (result.has_value()) {
    req.promise.set_value(*std::move(result));
  } else {
    req.delta_promise.set_value(*std::move(delta));
  }
}

ServiceResult ClusterService::run_request(Request& req) {
  try {
    // The token governs everything from here: engine construction, the
    // one-time coordinate scan and the run itself all dispatch kernels
    // under this scope, so a raised token unwinds out of any of them
    // within one chunk-quantum.
    exec::CancelScope scope(*req.token);
    if (req.op == Op::kSessionQuery) {
      // Take the turn BEFORE the queued-cancel check: the op owns a
      // turnstile ticket, and every exit path must consume it (the turn
      // constructor itself converts a raised token into an abandoned
      // ticket when it is not yet our turn).
      detail::SessionState& s = *req.session;
      SessionTurn turn(req.session, req.ticket);
      exec::throw_if_cancelled();  // raised while queued: skip all work
      if (s.failed) return s.open_error;
      if (s.stream == nullptr) {
        // Defense in depth (see run_session_mutation): never call
        // through null even if a failed open somehow left failed unset.
        return Error{ErrorCode::kInvalidSession,
                     "session open did not complete"};
      }
      Clustering result;
      if (config_.graph) {
        // Session queries keep their synchronous shape (the dispatcher
        // holds the session's turn), but the query body runs as a graph
        // node so its work lands on the runner pool with a rid-tagged
        // node span, interleaving with other requests' phases.
        exec::graph::TaskGraph g;
        g.add_node("stream/query",
                   [&result, &s] { result = s.query_fn(s.stream.get()); });
        const Expected<exec::graph::GraphStats> done =
            exec::graph::shared_scheduler().run(std::move(g));
        if (!done.has_value()) {  // unreachable: single node, no edges
          return Error{ErrorCode::kInternal, done.error().message};
        }
      } else {
        result = s.query_fn(s.stream.get());
      }
      session_queries_.fetch_add(1, std::memory_order_relaxed);
      obs_.session_queries.inc();
      note_session_rebuilds(s);
      return result;
    }
    exec::throw_if_cancelled();  // raised while queued: skip all work
    EnginePool::Lease lease =
        pool_.acquire(req.dataset_id, req.dim, req.make_engine, req.counters);
    if (!lease.validated()) {
      exec::throw_if_cancelled();
      if (auto error = req.scan(lease.engine())) return *std::move(error);
      lease.set_validated();
    }
    return req.run(lease.engine(), req.params, req.options, req.method,
                   req.shards);
  } catch (const exec::CancelledError& e) {
    const bool deadline =
        e.reason() == exec::CancelReason::kDeadlineExceeded;
    return Error{deadline ? ErrorCode::kDeadlineExceeded
                          : ErrorCode::kCancelled,
                 e.what()};
  } catch (const std::exception& e) {
    return Error{ErrorCode::kInternal,
                 std::string("dispatcher caught: ") + e.what()};
  }
}

SessionResult ClusterService::run_session_mutation(Request& req) {
  detail::SessionState& s = *req.session;
  try {
    exec::CancelScope scope(*req.token);
    // Turn first, cancel check second: the ticket must be consumed on
    // every exit path (see the kSessionQuery branch of run_request).
    SessionTurn turn(req.session, req.ticket);
    exec::throw_if_cancelled();  // raised while queued: skip all work
    SessionDelta delta;
    delta.session = s.id;
    if (req.op == Op::kSessionOpen) {
      if (auto error = s.open_fn(s)) {
        s.failed = true;
        s.open_error = *error;
        return *std::move(error);
      }
      s.open_fn = nullptr;  // releases the captured initial points
    } else if (s.failed) {
      return s.open_error;
    } else if (s.stream == nullptr) {
      // Defense in depth: the turnstile guarantees the open ran first,
      // and a failed open sets s.failed — but never call through null.
      return Error{ErrorCode::kInvalidSession,
                   "session open did not complete"};
    } else if (req.op == Op::kSessionAppend) {
      if (auto error = s.batch_scan_fn(req.payload.get())) {
        return *std::move(error);
      }
      delta.first_seq = s.append_fn(s.stream.get(), req.payload.get());
      session_appends_.fetch_add(1, std::memory_order_relaxed);
      obs_.session_appends.inc();
    } else {  // Op::kSessionExpire
      delta.expired = s.expire_fn(s.stream.get(), req.expire_before);
      session_expires_.fetch_add(1, std::memory_order_relaxed);
      obs_.session_expires.inc();
    }
    delta.next_seq = s.next_seq_fn(s.stream.get());
    delta.live_points = s.size_fn(s.stream.get());
    delta.rebuilds = s.counters_fn(s.stream.get()).index_rebuilds;
    note_session_rebuilds(s);
    return delta;
  } catch (const exec::CancelledError& e) {
    const bool deadline =
        e.reason() == exec::CancelReason::kDeadlineExceeded;
    Error error{deadline ? ErrorCode::kDeadlineExceeded
                         : ErrorCode::kCancelled,
                e.what()};
    // An open that unwinds (cancelled while queued, deadline mid-open,
    // engine construction throwing) leaves the session's stream and
    // function pointers null — poison it so later ops return this error
    // instead of calling through null.
    if (req.op == Op::kSessionOpen) {
      s.failed = true;
      s.open_error = error;
    }
    return error;
  } catch (const std::exception& e) {
    Error error{ErrorCode::kInternal,
                std::string("dispatcher caught: ") + e.what()};
    if (req.op == Op::kSessionOpen) {
      s.failed = true;
      s.open_error = error;
    }
    return error;
  }
}

Expected<ClusterService::Session, Error> ClusterService::register_session(
    std::shared_ptr<detail::SessionState> state, double deadline_ms,
    std::shared_ptr<exec::CancelToken> token) {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_) {
      return Error{ErrorCode::kCancelled, "service is shutting down"};
    }
    if (static_cast<std::int64_t>(sessions_.size()) >=
        config_.session_capacity) {
      return Error{ErrorCode::kSessionLimit,
                   "session table at capacity (" +
                       std::to_string(config_.session_capacity) + ")"};
    }
    state->id = next_session_id_++;
    sessions_.emplace(state->id, state);
  }
  session_opened_.fetch_add(1, std::memory_order_relaxed);
  obs_.session_opened.inc();
  obs_.sessions_open.add(1);
  obs::log_event(obs::LogLevel::kInfo, "service.session_open",
                 {{"session", static_cast<std::int64_t>(state->id)},
                  {"dataset", state->dataset_id},
                  {"dim", state->dim}});
  // The spec's token belongs to the open operation, not the session:
  // per-op tokens are supplied per call, and retaining it here would
  // pin it busy for the session's whole life.
  state->spec.token = nullptr;
  const std::uint64_t id = state->id;
  // The open itself is the session's ticket-0 operation: pin + scan +
  // engine construction happen on a dispatcher, strictly before any
  // append/expire/query. Its outcome is observable on every later op
  // (and in the structured log); the future itself is not surfaced.
  std::future<SessionResult> open_done = enqueue_session_op(
      std::move(state), Op::kSessionOpen, nullptr, 0, deadline_ms,
      std::move(token));
  (void)open_done;
  return Session(this, id);
}

std::shared_ptr<detail::SessionState> ClusterService::find_session(
    std::uint64_t id) {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  const auto it = sessions_.find(id);
  return it != sessions_.end() ? it->second : nullptr;
}

std::future<SessionResult> ClusterService::enqueue_session_op(
    std::shared_ptr<detail::SessionState> state, Op op,
    std::shared_ptr<const void> payload, std::int64_t expire_before,
    double deadline_ms, std::shared_ptr<exec::CancelToken> token) {
  std::promise<SessionResult> promise;
  std::future<SessionResult> future = promise.get_future();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  obs_.submitted.inc();
  Request req;
  req.id = obs::mint_request_id();
  req.op = op;
  req.dataset_id = state->dataset_id;
  req.dim = state->dim;
  req.token_private = (token == nullptr);
  req.token = token ? std::move(token) : std::make_shared<exec::CancelToken>();
  req.session = std::move(state);
  req.payload = std::move(payload);
  req.expire_before = expire_before;
  req.delta_promise = std::move(promise);
  enqueue(std::move(req), deadline_ms);
  return future;
}

std::future<SessionResult> ClusterService::session_expire(
    std::uint64_t id, std::int64_t before_seq, double deadline_ms,
    std::shared_ptr<exec::CancelToken> token) {
  auto state = find_session(id);
  if (!state) {
    return reject_session(Error{ErrorCode::kInvalidSession,
                                "unknown or closed session " +
                                    std::to_string(id)});
  }
  return enqueue_session_op(std::move(state), Op::kSessionExpire, nullptr,
                            before_seq, deadline_ms, std::move(token));
}

std::future<ServiceResult> ClusterService::session_query(
    std::uint64_t id, double deadline_ms,
    std::shared_ptr<exec::CancelToken> token) {
  std::promise<ServiceResult> promise;
  std::future<ServiceResult> future = promise.get_future();
  auto state = find_session(id);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  obs_.submitted.inc();
  if (!state) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    obs_.failed.inc();
    promise.set_value(Error{ErrorCode::kInvalidSession,
                            "unknown or closed session " +
                                std::to_string(id)});
    return future;
  }
  Request req;
  req.id = obs::mint_request_id();
  req.op = Op::kSessionQuery;
  req.dataset_id = state->dataset_id;
  req.dim = state->dim;
  req.token_private = (token == nullptr);
  req.token = token ? std::move(token) : std::make_shared<exec::CancelToken>();
  req.session = std::move(state);
  req.promise = std::move(promise);
  enqueue(std::move(req), deadline_ms);
  return future;
}

std::future<SessionResult> ClusterService::reject_session(Error error) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  obs_.submitted.inc();
  failed_.fetch_add(1, std::memory_order_relaxed);
  obs_.failed.inc();
  std::promise<SessionResult> promise;
  std::future<SessionResult> future = promise.get_future();
  promise.set_value(std::move(error));
  return future;
}

void ClusterService::close_session(std::uint64_t id) {
  std::shared_ptr<detail::SessionState> state;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    state = std::move(it->second);
    sessions_.erase(it);
  }
  // New ops now reject with kInvalidSession; ops already queued hold the
  // state by shared_ptr and run to completion. The streaming engine and
  // the pool Pin release when the last such reference drops.
  obs_.sessions_open.add(-1);
  obs::log_event(obs::LogLevel::kInfo, "service.session_close",
                 {{"session", static_cast<std::int64_t>(id)},
                  {"dataset", state->dataset_id}});
}

void ClusterService::note_session_rebuilds(detail::SessionState& s) {
  if (s.stream == nullptr) return;
  const std::int64_t total = s.counters_fn(s.stream.get()).index_rebuilds;
  if (total > s.reported_rebuilds) {
    const std::int64_t delta = total - s.reported_rebuilds;
    s.reported_rebuilds = total;
    session_rebuilds_.fetch_add(delta, std::memory_order_relaxed);
    obs_.session_rebuilds.inc(delta);
  }
}

void ClusterService::watchdog_loop() {
  std::unique_lock<std::mutex> lock(wd_mutex_);
  for (;;) {
    if (wd_stop_) return;
    if (wd_heap_.empty()) {
      wd_cv_.wait(lock, [&] { return wd_stop_ || !wd_heap_.empty(); });
      continue;
    }
    const std::int64_t due_ns = wd_heap_.front().due_ns;
    const std::int64_t now_ns = exec::trace_now_ns();
    if (now_ns >= due_ns) {
      std::pop_heap(wd_heap_.begin(), wd_heap_.end(), later_deadline);
      detail::WatchdogEntry entry = std::move(wd_heap_.back());
      wd_heap_.pop_back();
      if (auto token = entry.token.lock()) {
        // Conditional raise: a no-op unless the token is still unraised
        // AND in the generation we registered against. A user cancel
        // that raced us keeps kCancelled; a reset() (token reused for a
        // later request) makes this stale deadline inert.
        token->request_cancel_if(entry.generation,
                                 exec::CancelReason::kDeadlineExceeded);
      }
      continue;
    }
    wd_cv_.wait_for(lock, std::chrono::nanoseconds(due_ns - now_ns));
  }
}

void ClusterService::wait_idle() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  cv_idle_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

ServiceMetrics ClusterService::metrics() const {
  ServiceMetrics m;
  m.submitted = submitted_.load(std::memory_order_relaxed);
  m.completed = completed_.load(std::memory_order_relaxed);
  m.rejected = rejected_.load(std::memory_order_relaxed);
  m.cancelled = cancelled_.load(std::memory_order_relaxed);
  m.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  m.failed = failed_.load(std::memory_order_relaxed);
  m.session_opened = session_opened_.load(std::memory_order_relaxed);
  m.session_appends = session_appends_.load(std::memory_order_relaxed);
  m.session_expires = session_expires_.load(std::memory_order_relaxed);
  m.session_queries = session_queries_.load(std::memory_order_relaxed);
  m.session_rebuilds = session_rebuilds_.load(std::memory_order_relaxed);
  {
    // Scheduler totals are process-wide (all services share it); see the
    // ServiceMetrics field docs.
    const exec::graph::SchedulerTotals g = exec::graph::totals();
    m.graphs = g.graphs;
    m.graph_nodes_run = g.nodes_run;
    m.graph_edges = g.edges;
    m.graph_ready_depth = g.ready_depth;
    m.graph_overlap_pct = g.overlap_pct;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    m.queued = static_cast<std::int64_t>(queue_.size());
    m.active = active_;
    m.sessions_open = static_cast<std::int64_t>(sessions_.size());
  }
  m.queue_wait = queue_wait_.snapshot();
  m.run_time = run_time_.snapshot();
  return m;
}

ServiceSnapshot ClusterService::snapshot() const {
  ServiceSnapshot s;
  s.config = config_;
  s.metrics = metrics();
  s.pool = pool_.stats();
  return s;
}

namespace {

// Re-expresses a ServiceSnapshot in the registry's vocabulary so the
// obs serializers render it — a per-service scrape and a statusz dump
// then agree on names and formats by construction.
obs::HistogramSnapshot to_histogram(const LatencySummary& s) {
  obs::HistogramSnapshot h;
  h.count = s.count;
  h.total_ns = static_cast<std::int64_t>(s.total_ms * 1e6);
  h.max_ns = static_cast<std::int64_t>(s.max_ms * 1e6);
  static_assert(kLatencyBuckets == obs::kHistogramBuckets,
                "service latency buckets must mirror the registry's");
  for (int i = 0; i < kLatencyBuckets; ++i) {
    h.buckets[static_cast<std::size_t>(i)] =
        s.buckets[static_cast<std::size_t>(i)];
  }
  return h;
}

obs::MetricsSnapshot to_metrics(const ServiceSnapshot& snap) {
  obs::MetricsSnapshot m;
  const ServiceMetrics& sm = snap.metrics;
  m.counters = {
      {"fdbscan_graph_edges_total", sm.graph_edges},
      {"fdbscan_graph_graphs_total", sm.graphs},
      {"fdbscan_graph_nodes_run_total", sm.graph_nodes_run},
      {"fdbscan_pool_evictions_total", snap.pool.evictions},
      {"fdbscan_pool_hits_total", snap.pool.hits},
      {"fdbscan_pool_misses_total", snap.pool.misses},
      {"fdbscan_service_cancelled_total", sm.cancelled},
      {"fdbscan_service_completed_total", sm.completed},
      {"fdbscan_service_deadline_exceeded_total", sm.deadline_exceeded},
      {"fdbscan_service_failed_total", sm.failed},
      {"fdbscan_service_rejected_total", sm.rejected},
      {"fdbscan_service_session_append_total", sm.session_appends},
      {"fdbscan_service_session_expire_total", sm.session_expires},
      {"fdbscan_service_session_opened_total", sm.session_opened},
      {"fdbscan_service_session_query_total", sm.session_queries},
      {"fdbscan_service_session_rebuilds_total", sm.session_rebuilds},
      {"fdbscan_service_submitted_total", sm.submitted},
  };
  m.gauges = {
      {"fdbscan_graph_overlap_pct", sm.graph_overlap_pct},
      {"fdbscan_graph_ready_depth", sm.graph_ready_depth},
      {"fdbscan_pool_engines", snap.pool.engines},
      {"fdbscan_service_active_requests", sm.active},
      {"fdbscan_service_queue_depth", sm.queued},
      {"fdbscan_service_sessions_open", sm.sessions_open},
  };
  m.histograms = {
      {"fdbscan_service_queue_wait", to_histogram(sm.queue_wait)},
      {"fdbscan_service_run_time", to_histogram(sm.run_time)},
  };
  return m;
}

}  // namespace

std::string to_prometheus_text(const ServiceSnapshot& snap) {
  std::string out =
      "# fdbscan-service queue_capacity=" +
      std::to_string(snap.config.queue_capacity) +
      " dispatchers=" + std::to_string(snap.config.dispatchers) +
      " engine_capacity=" + std::to_string(snap.config.engine_capacity) +
      " shards=" + std::to_string(snap.config.shards) +
      " session_capacity=" + std::to_string(snap.config.session_capacity) +
      " graph=" + std::to_string(snap.config.graph ? 1 : 0) + "\n";
  out += obs::to_prometheus_text(to_metrics(snap));
  return out;
}

std::string to_json(const ServiceSnapshot& snap) {
  std::string out = "{\"config\":{\"queue_capacity\":";
  out += std::to_string(snap.config.queue_capacity);
  out += ",\"dispatchers\":";
  out += std::to_string(snap.config.dispatchers);
  out += ",\"engine_capacity\":";
  out += std::to_string(snap.config.engine_capacity);
  out += ",\"shards\":";
  out += std::to_string(snap.config.shards);
  out += ",\"session_capacity\":";
  out += std::to_string(snap.config.session_capacity);
  out += ",\"graph\":";
  out += snap.config.graph ? "true" : "false";
  out += "},\"metrics\":";
  out += obs::to_json(to_metrics(snap));
  out += "}";
  return out;
}

}  // namespace fdbscan::service
