// In-process clustering service (DESIGN.md §10): admission control,
// deadlines and cancellation on top of the Engine.
//
// ClusterService turns the blocking one-shot entry points into a serving
// surface: submit() validates scalar parameters, enqueues the request
// into a *bounded* MPMC queue (a full queue rejects immediately with
// Error{kQueueFull} — backpressure instead of unbounded growth) and
// returns a std::future<Expected<Clustering, Error>>. N dispatcher
// threads drain the queue into runs on pooled warm engines
// (service/engine_pool.h): requests naming the same dataset id reuse one
// Engine — one BVH build per dataset — and serialize on it, while
// distinct datasets run concurrently.
//
// Deadlines and cancellation ride on exec/cancel.h: every request gets a
// CancelToken (caller-supplied or service-created), a watchdog thread
// raises it with kDeadlineExceeded when the request's deadline elapses
// (the deadline covers queue wait + run), and the runtime polls the
// token once per chunk — a cancelled request unwinds within one
// chunk-quantum, its engine stays warm and reusable, and the future
// resolves to Error{kCancelled | kDeadlineExceeded}.
//
// Sharded execution: ServiceConfig::shards (or the per-request
// SubmitOptions::shards override) routes a request through a pooled
// ShardedEngine (shard/sharded_engine.h) instead of the single Engine —
// same dataset id, same warm-pool amortization, same deadline/cancel
// semantics (the request's token reaches every shard's kernels).
//
// Knobs: FDBSCAN_SERVICE_QUEUE_CAP, FDBSCAN_SERVICE_DISPATCHERS and
// FDBSCAN_SERVICE_SHARDS seed ServiceConfig::from_env().
//
// Caveat: per-request Options::memory trackers are not thread-safe; do
// not share one MemoryTracker across requests that may run concurrently.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/cluster.h"
#include "exec/cancel.h"
#include "obs/metrics.h"
#include "obs/request_id.h"
#include "service/engine_pool.h"
#include "shard/sharded_engine.h"

namespace fdbscan::service {

/// Sentinel for "no deadline" in SubmitOptions::deadline_ms.
inline constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

struct ServiceConfig {
  /// Maximum queued (not yet dispatched) requests; a full queue rejects
  /// with kQueueFull. Env: FDBSCAN_SERVICE_QUEUE_CAP.
  std::int32_t queue_capacity = 64;
  /// Dispatcher threads draining the queue. Env:
  /// FDBSCAN_SERVICE_DISPATCHERS.
  std::int32_t dispatchers = 2;
  /// Engine-pool LRU capacity (warm datasets kept resident).
  std::int32_t engine_capacity = 8;
  /// Default shard count for requests that leave SubmitOptions::shards
  /// at 0. 1 = single-engine execution; > 1 runs every request through a
  /// pooled ShardedEngine. Env: FDBSCAN_SERVICE_SHARDS.
  std::int32_t shards = 1;

  /// Defaults overridden by the FDBSCAN_SERVICE_* environment knobs.
  [[nodiscard]] static ServiceConfig from_env();
};

/// Log2-bucketed latency distribution. Bucket i counts samples whose
/// duration in microseconds lies in [2^(i-1), 2^i) (bucket 0: < 1 us;
/// the last bucket absorbs everything larger).
inline constexpr int kLatencyBuckets = 24;

struct LatencySummary {
  std::int64_t count = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;
  std::array<std::int64_t, kLatencyBuckets> buckets{};

  [[nodiscard]] double mean_ms() const {
    return count > 0 ? total_ms / static_cast<double>(count) : 0.0;
  }
};

/// Snapshot of the service counters. Terminal-state counts partition the
/// finished requests: every submitted request ends in exactly one of
/// completed / rejected / cancelled / deadline_exceeded / failed, so
/// after wait_idle() `submitted` equals their sum.
struct ServiceMetrics {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t rejected = 0;           ///< kQueueFull at admission
  std::int64_t cancelled = 0;          ///< kCancelled (token or shutdown)
  std::int64_t deadline_exceeded = 0;  ///< kDeadlineExceeded
  std::int64_t failed = 0;             ///< validation or internal errors
  std::int64_t queued = 0;             ///< instantaneous queue depth
  std::int64_t active = 0;             ///< requests inside a dispatcher
  LatencySummary queue_wait;           ///< submit -> dispatch
  LatencySummary run_time;             ///< dispatch -> future resolved
};

/// One coherent view of a service for exposition (DESIGN.md §13):
/// configuration, the counter/histogram snapshot and the pool stats,
/// captured at one call. Serialize with to_prometheus_text()/to_json().
struct ServiceSnapshot {
  ServiceConfig config{};
  ServiceMetrics metrics{};
  EnginePoolStats pool{};
};

/// Rendered as the same fdbscan_service_* / fdbscan_pool_* families the
/// process-wide registry exposes, so a per-service scrape and a statusz
/// dump line up name-for-name.
[[nodiscard]] std::string to_prometheus_text(const ServiceSnapshot& snap);
[[nodiscard]] std::string to_json(const ServiceSnapshot& snap);

struct SubmitOptions {
  Options options{};
  Method method = Method::kAuto;
  /// Total latency budget (queue wait + run) in milliseconds, enforced
  /// by the watchdog. kNoDeadline disables it; a value <= 0 fails fast
  /// with kDeadlineExceeded before any kernel runs.
  double deadline_ms = kNoDeadline;
  /// Caller-held cancellation handle; the service creates a private one
  /// when absent. request_cancel() resolves the future with kCancelled
  /// within one chunk-quantum if the request is running.
  std::shared_ptr<exec::CancelToken> token{};
  /// Shard count for this request: 0 = use ServiceConfig::shards, 1 =
  /// single-engine, > 1 = sharded execution. Anything else rejects with
  /// kInvalidShards. Sharded runs always execute plain FDBSCAN (the
  /// decomposition is FDBSCAN's; `method` is ignored when shards > 1).
  std::int32_t shards = 0;
};

using ServiceResult = Expected<Clustering, Error>;

namespace detail {

/// Pool-entry payload: the engine plus the shared ownership of its
/// points (Engine borrows the vector — the holder is what keeps it
/// alive for the engine's whole pooled lifetime).
template <int DIM>
struct EngineHolder {
  /// Distinct shard counts kept warm per dataset. A ShardedEngine holds
  /// ghost replicas of the dataset, so caching one per shard count ever
  /// requested would grow without bound under adversarial traffic —
  /// bound it like the eps-plan LRU inside each executor.
  static constexpr std::size_t kShardedCapacity = 2;

  struct ShardedSlot {
    std::int32_t shards = 0;
    std::uint64_t last_used = 0;
    std::unique_ptr<shard::ShardedEngine<DIM>> engine;
  };

  std::shared_ptr<const std::vector<Point<DIM>>> points;
  Engine<DIM> engine;
  /// Warm sharded executors, LRU-bounded at kShardedCapacity. Mutated
  /// only under the pool entry's run-mutex (the Lease serializes runs
  /// per dataset), so no extra lock is needed.
  std::vector<ShardedSlot> sharded;
  std::uint64_t sharded_clock = 0;
  std::int64_t sharded_evictions = 0;
  /// Counters of evicted executors, folded in so dataset telemetry
  /// stays monotone across evictions.
  std::int64_t retired_runs = 0;
  std::int64_t retired_index_builds = 0;
  std::int64_t retired_workspace_reallocs = 0;

  explicit EngineHolder(std::shared_ptr<const std::vector<Point<DIM>>> pts)
      : points(std::move(pts)), engine(*points) {}

  shard::ShardedEngine<DIM>& sharded_for(std::int32_t shards) {
    for (auto& slot : sharded) {
      if (slot.shards == shards) {
        slot.last_used = ++sharded_clock;
        return *slot.engine;
      }
    }
    while (sharded.size() >= kShardedCapacity) {
      auto victim = sharded.begin();
      for (auto it = sharded.begin(); it != sharded.end(); ++it) {
        if (it->last_used < victim->last_used) victim = it;
      }
      const shard::ShardedCounters& sc = victim->engine->counters();
      retired_runs += sc.runs;
      retired_index_builds += sc.index_builds;
      retired_workspace_reallocs += sc.workspace_reallocs;
      ++sharded_evictions;
      sharded.erase(victim);
    }
    sharded.push_back(ShardedSlot{
        shards, ++sharded_clock,
        std::make_unique<shard::ShardedEngine<DIM>>(*points, shards)});
    return *sharded.back().engine;
  }
};

template <int DIM>
EngineCounters counters_typed(const void* holder) {
  const auto* h = static_cast<const EngineHolder<DIM>*>(holder);
  EngineCounters c = h->engine.counters();
  // Fold the sharded executors' amortization into the dataset's counters
  // so pool/dataset telemetry sees sharded traffic too — including the
  // retired tallies of evicted executors (keeps runs monotone).
  for (const auto& slot : h->sharded) {
    const shard::ShardedCounters& sc = slot.engine->counters();
    c.runs += sc.runs;
    c.index_builds += sc.index_builds;
    c.workspace_reallocs += sc.workspace_reallocs;
  }
  c.runs += h->retired_runs;
  c.index_builds += h->retired_index_builds;
  c.workspace_reallocs += h->retired_workspace_reallocs;
  c.sharded_evictions = h->sharded_evictions;
  return c;
}

template <int DIM>
std::optional<Error> scan_typed(const void* holder) {
  const auto* h = static_cast<const EngineHolder<DIM>*>(holder);
  const auto n = static_cast<std::int64_t>(h->points->size());
  const std::int64_t bad = fdbscan::detail::first_non_finite(*h->points);
  if (bad < n) {
    return Error{ErrorCode::kNonFinitePoint,
                 "point " + std::to_string(bad) +
                     " has a non-finite coordinate"};
  }
  return std::nullopt;
}

template <int DIM>
Clustering run_typed(void* holder, const Parameters& params,
                     const Options& options, Method method,
                     std::int32_t shards) {
  auto* h = static_cast<EngineHolder<DIM>*>(holder);
  if (shards > 1) {
    // Sharded execution is FDBSCAN's decomposition; `method` does not
    // apply (documented on SubmitOptions::shards).
    return h->sharded_for(shards).run(params, options).clustering;
  }
  switch (method) {
    case Method::kFdbscan: return h->engine.run(params, options);
    case Method::kDensebox: return h->engine.run_densebox(params, options);
    case Method::kAuto: break;
  }
  return fdbscan_auto(h->engine, params, options).clustering;
}

/// Strict parse of a FDBSCAN_SERVICE_* knob value: the whole string must
/// be a base-10 integer that fits in int and is > 0. Anything else —
/// empty, trailing junk, zero, negative, overflow — is rejected
/// (std::nullopt) and from_env() emits a "service.env_ignored" warning
/// (once per variable) on the structured log (obs/log.h; the default
/// sink keeps warnings on stderr) instead of silently falling back.
/// Exposed for tests.
[[nodiscard]] std::optional<int> parse_positive_env_int(const char* value);

/// One registered deadline in the watchdog heap. weak_ptr so an
/// already-resolved request cannot be kept alive (or touched) by a
/// stale deadline; the generation (captured at registration) makes
/// firing conditional — request_cancel_if() is a no-op on a token that
/// was reset() and reused for a later request, so a not-yet-due entry
/// from request A cannot cancel request B (DESIGN.md §10).
struct WatchdogEntry {
  std::int64_t due_ns = 0;
  std::weak_ptr<exec::CancelToken> token;
  std::uint32_t generation = 0;
};

}  // namespace detail

class ClusterService {
 public:
  explicit ClusterService(const ServiceConfig& config = ServiceConfig::from_env());
  ~ClusterService();

  ClusterService(const ClusterService&) = delete;
  ClusterService& operator=(const ClusterService&) = delete;

  /// Submit a clustering request against dataset `dataset_id`. The
  /// service shares ownership of `points` for as long as the dataset's
  /// engine stays pooled; all submits naming one id must pass the same
  /// points. Scalar parameters are validated here (immediate error
  /// future); the O(n) coordinate scan runs on a dispatcher, once per
  /// pooled dataset. Never blocks on a full queue — it rejects.
  template <int DIM>
  [[nodiscard]] std::future<ServiceResult> submit(
      const std::string& dataset_id,
      std::shared_ptr<const std::vector<Point<DIM>>> points,
      const Parameters& params, SubmitOptions submit = {}) {
    std::promise<ServiceResult> promise;
    std::future<ServiceResult> future = promise.get_future();
    submitted_.fetch_add(1, std::memory_order_relaxed);
    obs_.submitted.inc();
    if (!points) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      obs_.failed.inc();
      promise.set_value(Error{ErrorCode::kInternal, "points must not be null"});
      return future;
    }
    if (auto error = validate_parameters(params, submit.options)) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      obs_.failed.inc();
      promise.set_value(*std::move(error));
      return future;
    }
    const std::int32_t shards =
        submit.shards != 0 ? submit.shards : config_.shards;
    if (shards < 1) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      obs_.failed.inc();
      promise.set_value(Error{ErrorCode::kInvalidShards,
                              "shards must be >= 1, got " +
                                  std::to_string(shards)});
      return future;
    }
    Request req;
    req.id = obs::mint_request_id();
    req.dataset_id = dataset_id;
    req.dim = DIM;
    req.params = params;
    req.options = submit.options;
    req.method = submit.method;
    req.shards = shards;
    req.token_private = (submit.token == nullptr);
    req.token = submit.token ? std::move(submit.token)
                             : std::make_shared<exec::CancelToken>();
    req.promise = std::move(promise);
    req.make_engine = [points]() -> std::shared_ptr<void> {
      return std::make_shared<detail::EngineHolder<DIM>>(points);
    };
    req.counters = &detail::counters_typed<DIM>;
    req.scan = &detail::scan_typed<DIM>;
    req.run = &detail::run_typed<DIM>;
    enqueue(std::move(req), submit.deadline_ms);
    return future;
  }

  /// Blocks until the queue is empty and no dispatcher is running a
  /// request. Does not stop the service.
  void wait_idle();

  [[nodiscard]] ServiceMetrics metrics() const;

  /// Coherent config + metrics + pool view for exposition; pair with
  /// service::to_prometheus_text() / service::to_json().
  [[nodiscard]] ServiceSnapshot snapshot() const;

  [[nodiscard]] EnginePoolStats pool_stats() const { return pool_.stats(); }
  [[nodiscard]] std::vector<DatasetStats> dataset_stats() {
    return pool_.dataset_stats();
  }
  [[nodiscard]] const ServiceConfig& config() const noexcept { return config_; }

 private:
  struct Request {
    /// Correlation id minted at submit() (obs/request_id.h); carried by
    /// the dispatcher's trace spans and structured log lines.
    obs::RequestId id = 0;
    std::string dataset_id;
    int dim = 0;
    Parameters params{};
    Options options{};
    Method method = Method::kAuto;
    std::int32_t shards = 1;
    std::shared_ptr<exec::CancelToken> token;
    /// True when the service created the token itself. The deadline_ms
    /// <= 0 fast-fail may only raise private tokens: poisoning a
    /// caller's shared token would cancel the caller's other in-flight
    /// requests (DESIGN.md §10).
    bool token_private = false;
    std::int64_t submit_ns = 0;
    std::promise<ServiceResult> promise;
    std::function<std::shared_ptr<void>()> make_engine;
    EngineCounters (*counters)(const void*) = nullptr;
    std::optional<Error> (*scan)(const void*) = nullptr;
    Clustering (*run)(void*, const Parameters&, const Options&, Method,
                      std::int32_t) = nullptr;
  };

  struct AtomicHistogram {
    std::array<std::atomic<std::int64_t>, kLatencyBuckets> buckets{};
    std::atomic<std::int64_t> count{0};
    std::atomic<std::int64_t> total_ns{0};
    std::atomic<std::int64_t> max_ns{0};

    void add(std::int64_t ns) noexcept {
      const auto us = static_cast<std::uint64_t>(ns > 0 ? ns / 1000 : 0);
      const int idx = std::min(static_cast<int>(std::bit_width(us)),
                               kLatencyBuckets - 1);
      buckets[static_cast<std::size_t>(idx)].fetch_add(
          1, std::memory_order_relaxed);
      count.fetch_add(1, std::memory_order_relaxed);
      total_ns.fetch_add(ns, std::memory_order_relaxed);
      std::int64_t seen = max_ns.load(std::memory_order_relaxed);
      while (ns > seen && !max_ns.compare_exchange_weak(
                              seen, ns, std::memory_order_relaxed)) {
      }
    }

    [[nodiscard]] LatencySummary snapshot() const {
      LatencySummary s;
      s.count = count.load(std::memory_order_relaxed);
      s.total_ms =
          static_cast<double>(total_ns.load(std::memory_order_relaxed)) * 1e-6;
      s.max_ms =
          static_cast<double>(max_ns.load(std::memory_order_relaxed)) * 1e-6;
      for (int i = 0; i < kLatencyBuckets; ++i) {
        s.buckets[static_cast<std::size_t>(i)] =
            buckets[static_cast<std::size_t>(i)].load(
                std::memory_order_relaxed);
      }
      return s;
    }
  };

  void enqueue(Request req, double deadline_ms);
  void dispatcher_loop(int index);
  void watchdog_loop();
  void process(Request& req, std::int64_t& track_floor_ns);
  [[nodiscard]] ServiceResult run_request(Request& req);

  ServiceConfig config_;
  EnginePool pool_;

  mutable std::mutex queue_mutex_;
  std::condition_variable cv_queue_;
  std::condition_variable cv_idle_;
  std::deque<Request> queue_;
  int active_ = 0;       // guarded by queue_mutex_
  bool stopping_ = false;  // guarded by queue_mutex_

  // Deadline watchdog: min-heap of detail::WatchdogEntry (absolute
  // trace_now_ns deadline, token, token generation — see the struct doc
  // for the generation contract).
  std::mutex wd_mutex_;
  std::condition_variable wd_cv_;
  std::vector<detail::WatchdogEntry> wd_heap_;  // guarded by wd_mutex_
  bool wd_stop_ = false;

  std::atomic<std::int64_t> submitted_{0};
  std::atomic<std::int64_t> completed_{0};
  std::atomic<std::int64_t> rejected_{0};
  std::atomic<std::int64_t> cancelled_{0};
  std::atomic<std::int64_t> deadline_exceeded_{0};
  std::atomic<std::int64_t> failed_{0};
  AtomicHistogram queue_wait_;
  AtomicHistogram run_time_;

  /// Registry mirrors (DESIGN.md §13): every site that bumps one of the
  /// atomics above bumps the same-named registry metric with the same
  /// value, so a registry delta over a window in which only this
  /// service ran is bit-equal to the ServiceMetrics delta
  /// (bench_compare.py --gate-obs cross-checks exactly that). The
  /// registry is process-wide: concurrent services share these.
  struct ObsMirror {
    obs::Counter& submitted =
        obs::counter("fdbscan_service_submitted_total");
    obs::Counter& completed =
        obs::counter("fdbscan_service_completed_total");
    obs::Counter& rejected = obs::counter("fdbscan_service_rejected_total");
    obs::Counter& cancelled =
        obs::counter("fdbscan_service_cancelled_total");
    obs::Counter& deadline_exceeded =
        obs::counter("fdbscan_service_deadline_exceeded_total");
    obs::Counter& failed = obs::counter("fdbscan_service_failed_total");
    obs::Gauge& queued = obs::gauge("fdbscan_service_queue_depth");
    obs::Gauge& active = obs::gauge("fdbscan_service_active_requests");
    obs::Histogram& queue_wait =
        obs::histogram("fdbscan_service_queue_wait");
    obs::Histogram& run_time = obs::histogram("fdbscan_service_run_time");
  };
  ObsMirror obs_;

  std::vector<std::thread> dispatchers_;
  std::thread watchdog_;
};

}  // namespace fdbscan::service
