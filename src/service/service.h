// In-process clustering service (DESIGN.md §10): admission control,
// deadlines and cancellation on top of the Engine.
//
// ClusterService turns the blocking one-shot entry points into a serving
// surface: submit() validates scalar parameters, enqueues the request
// into a *bounded* MPMC queue (a full queue rejects immediately with
// Error{kQueueFull} — backpressure instead of unbounded growth) and
// returns a std::future<Expected<Clustering, Error>>. N dispatcher
// threads drain the queue into runs on pooled warm engines
// (service/engine_pool.h): requests naming the same dataset id reuse one
// Engine — one BVH build per dataset — and serialize on it, while
// distinct datasets run concurrently.
//
// Deadlines and cancellation ride on exec/cancel.h: every request gets a
// CancelToken (caller-supplied or service-created), a watchdog thread
// raises it with kDeadlineExceeded when the request's deadline elapses
// (the deadline covers queue wait + run), and the runtime polls the
// token once per chunk — a cancelled request unwinds within one
// chunk-quantum, its engine stays warm and reusable, and the future
// resolves to Error{kCancelled | kDeadlineExceeded}.
//
// Sharded execution: ServiceConfig::shards (or the per-request
// RequestSpec::shards override) routes a request through a pooled
// ShardedEngine (shard/sharded_engine.h) instead of the single Engine —
// same dataset id, same warm-pool amortization, same deadline/cancel
// semantics (the request's token reaches every shard's kernels).
//
// Streaming sessions (DESIGN.md §14): open_session(dataset_id, points,
// spec) pins the dataset's pooled entry and returns a Session handle
// whose append()/expire()/query() enqueue *stateful* operations against
// a stream::StreamingEngine owned by the session. Session operations
// ride the same queue, dispatchers, watchdog, request ids and metrics as
// one-shot submits; per session they execute strictly in submission
// order (a ticket protocol across dispatchers), so a query observes
// exactly the mutations enqueued before it. Query parameters are pinned
// at open (that is what makes incremental maintenance sound); per-op
// deadlines and tokens still apply.
//
// Task-graph dispatch (DESIGN.md §15): with ServiceConfig::graph set
// (the default), a dispatcher stages a clustering request's phases into
// a TaskGraph, submits it to the shared scheduler and moves on — the
// request finishes from the runner that completes its last node, so
// phases of different requests overlap on the runner pool and service
// concurrency is bounded by runners, not dispatchers. Fork-join
// dispatch (FDBSCAN_SERVICE_GRAPH=0) runs the request inline on the
// dispatcher as before; kernel labels and work counters are
// bit-identical between the modes.
//
// Knobs: FDBSCAN_SERVICE_QUEUE_CAP, FDBSCAN_SERVICE_DISPATCHERS,
// FDBSCAN_SERVICE_SHARDS, FDBSCAN_SERVICE_SESSION_CAP,
// FDBSCAN_SESSION_REBUILD_PCT and FDBSCAN_SERVICE_GRAPH seed
// ServiceConfig::from_env().
//
// Caveat: per-request Options::memory trackers are not thread-safe; do
// not share one MemoryTracker across requests that may run concurrently.
// A CancelToken, by contrast, is explicitly guarded: a submit whose
// caller-supplied token is already observing an in-flight request is
// rejected with kTokenBusy instead of racing the first request's
// deadline/cancel lifecycle (DESIGN.md §10).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/cluster.h"
#include "core/request.h"
#include "exec/cancel.h"
#include "exec/graph/task_graph.h"
#include "obs/metrics.h"
#include "obs/request_id.h"
#include "service/engine_pool.h"
#include "shard/sharded_engine.h"
#include "stream/streaming_engine.h"

namespace fdbscan::service {

/// Sentinel for "no deadline" — one value shared with RequestSpec
/// (core/request.h), re-exported here for source compatibility.
using fdbscan::kNoDeadline;

struct ServiceConfig {
  /// Maximum queued (not yet dispatched) requests; a full queue rejects
  /// with kQueueFull. Env: FDBSCAN_SERVICE_QUEUE_CAP.
  std::int32_t queue_capacity = 64;
  /// Dispatcher threads draining the queue. Env:
  /// FDBSCAN_SERVICE_DISPATCHERS.
  std::int32_t dispatchers = 2;
  /// Engine-pool LRU capacity (warm datasets kept resident).
  std::int32_t engine_capacity = 8;
  /// Default shard count for requests that leave RequestSpec::shards
  /// at 0. 1 = single-engine execution; > 1 runs every request through a
  /// pooled ShardedEngine. Env: FDBSCAN_SERVICE_SHARDS.
  std::int32_t shards = 1;
  /// Maximum concurrently open streaming sessions; open_session beyond
  /// it rejects with kSessionLimit. Env: FDBSCAN_SERVICE_SESSION_CAP.
  std::int32_t session_capacity = 16;
  /// Session rebuild threshold as a percentage: a session's streaming
  /// engine re-sorts + rebuilds its BVH when pending work (live delta
  /// points + retired slots) exceeds this percent of the live set.
  /// Env: FDBSCAN_SESSION_REBUILD_PCT.
  std::int32_t session_rebuild_pct = 25;
  /// Dispatch one-shot clustering requests as task graphs on the shared
  /// scheduler (exec/graph, DESIGN.md §15): dispatchers stage and submit
  /// instead of running inline, so a dispatcher frees up while the
  /// graph's phases run — and phases of *different* requests overlap on
  /// the runner pool. false falls back to today's fork-join dispatch;
  /// kernel labels and work counters are bit-identical either way.
  /// Env: FDBSCAN_SERVICE_GRAPH ("0" = fork-join; default on).
  bool graph = exec::graph::enabled();

  /// Defaults overridden by the FDBSCAN_SERVICE_* environment knobs.
  [[nodiscard]] static ServiceConfig from_env();
};

/// Log2-bucketed latency distribution. Bucket i counts samples whose
/// duration in microseconds lies in [2^(i-1), 2^i) (bucket 0: < 1 us;
/// the last bucket absorbs everything larger).
inline constexpr int kLatencyBuckets = 24;

struct LatencySummary {
  std::int64_t count = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;
  std::array<std::int64_t, kLatencyBuckets> buckets{};

  [[nodiscard]] double mean_ms() const {
    return count > 0 ? total_ms / static_cast<double>(count) : 0.0;
  }
};

/// Snapshot of the service counters. Terminal-state counts partition the
/// finished requests: every submitted request ends in exactly one of
/// completed / rejected / cancelled / deadline_exceeded / failed, so
/// after wait_idle() `submitted` equals their sum.
struct ServiceMetrics {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t rejected = 0;           ///< kQueueFull/kTokenBusy at admission
  std::int64_t cancelled = 0;          ///< kCancelled (token or shutdown)
  std::int64_t deadline_exceeded = 0;  ///< kDeadlineExceeded
  std::int64_t failed = 0;             ///< validation or internal errors
  std::int64_t queued = 0;             ///< instantaneous queue depth
  std::int64_t active = 0;             ///< requests inside a dispatcher
  /// Streaming-session traffic (DESIGN.md §14). Session operations also
  /// count in the request totals above; these break them out, and
  /// session_rebuilds totals the Morton re-sort + BVH rebuilds their
  /// streaming engines performed.
  std::int64_t sessions_open = 0;      ///< instantaneous open sessions
  std::int64_t session_opened = 0;     ///< sessions ever opened
  std::int64_t session_appends = 0;    ///< append operations completed
  std::int64_t session_expires = 0;    ///< expire operations completed
  std::int64_t session_queries = 0;    ///< query operations completed
  std::int64_t session_rebuilds = 0;   ///< index rebuilds across sessions
  /// Task-graph runtime totals (exec/graph). Process-wide: every service
  /// (and direct ShardedEngine use) shares the one scheduler, so these
  /// are mirrors of the fdbscan_graph_* registry metrics, not per-
  /// service counts.
  std::int64_t graphs = 0;             ///< graphs submitted to the scheduler
  std::int64_t graph_nodes_run = 0;    ///< node bodies executed
  std::int64_t graph_edges = 0;        ///< dependency edges scheduled
  std::int64_t graph_ready_depth = 0;  ///< instantaneous ready-queue depth
  std::int64_t graph_overlap_pct = 0;  ///< busy/wall of last completed graph
  LatencySummary queue_wait;           ///< submit -> dispatch
  LatencySummary run_time;             ///< dispatch -> future resolved
};

/// One coherent view of a service for exposition (DESIGN.md §13):
/// configuration, the counter/histogram snapshot and the pool stats,
/// captured at one call. Serialize with to_prometheus_text()/to_json().
struct ServiceSnapshot {
  ServiceConfig config{};
  ServiceMetrics metrics{};
  EnginePoolStats pool{};
};

/// Rendered as the same fdbscan_service_* / fdbscan_pool_* families the
/// process-wide registry exposes, so a per-service scrape and a statusz
/// dump line up name-for-name.
[[nodiscard]] std::string to_prometheus_text(const ServiceSnapshot& snap);
[[nodiscard]] std::string to_json(const ServiceSnapshot& snap);

/// Legacy request shape, kept as a shim: submit(dataset, points, params,
/// SubmitOptions) folds into a RequestSpec (core/request.h) and forwards
/// to the spec overload — one validation path, one queue. New call sites
/// should pass a RequestSpec directly.
struct SubmitOptions {
  Options options{};
  Method method = Method::kAuto;
  /// See RequestSpec::deadline_ms.
  double deadline_ms = kNoDeadline;
  /// See RequestSpec::token.
  std::shared_ptr<exec::CancelToken> token{};
  /// See RequestSpec::shards (0 = ServiceConfig::shards).
  std::int32_t shards = 0;

  [[nodiscard]] RequestSpec to_spec(const Parameters& params) const {
    RequestSpec spec;
    spec.params = params;
    spec.options = options;
    spec.method = method;
    spec.shards = shards;
    spec.deadline_ms = deadline_ms;
    spec.token = token;
    return spec;
  }
};

using ServiceResult = Expected<Clustering, Error>;

/// What a session mutation (open/append/expire) reports back: where the
/// stream now stands. Sequence numbers are assigned in arrival order
/// starting at 0 (the initial point set of open_session occupies
/// [0, points.size())).
struct SessionDelta {
  std::uint64_t session = 0;     ///< owning session id
  std::int64_t first_seq = 0;    ///< first sequence number this op appended
  std::int64_t next_seq = 0;     ///< sequence the next append will start at
  std::int64_t live_points = 0;  ///< live (non-expired) points after the op
  std::int64_t expired = 0;      ///< points this op retired
  std::int64_t rebuilds = 0;     ///< cumulative index rebuilds of the session
};

using SessionResult = Expected<SessionDelta, Error>;

namespace detail {

/// Pool-entry payload: the engine plus the shared ownership of its
/// points (Engine borrows the vector — the holder is what keeps it
/// alive for the engine's whole pooled lifetime).
template <int DIM>
struct EngineHolder {
  /// Distinct shard counts kept warm per dataset. A ShardedEngine holds
  /// ghost replicas of the dataset, so caching one per shard count ever
  /// requested would grow without bound under adversarial traffic —
  /// bound it like the eps-plan LRU inside each executor.
  static constexpr std::size_t kShardedCapacity = 2;

  struct ShardedSlot {
    std::int32_t shards = 0;
    std::uint64_t last_used = 0;
    std::unique_ptr<shard::ShardedEngine<DIM>> engine;
  };

  std::shared_ptr<const std::vector<Point<DIM>>> points;
  Engine<DIM> engine;
  /// Warm sharded executors, LRU-bounded at kShardedCapacity. Mutated
  /// only under the pool entry's run-mutex (the Lease serializes runs
  /// per dataset), so no extra lock is needed.
  std::vector<ShardedSlot> sharded;
  std::uint64_t sharded_clock = 0;
  std::int64_t sharded_evictions = 0;
  /// Counters of evicted executors, folded in so dataset telemetry
  /// stays monotone across evictions.
  std::int64_t retired_runs = 0;
  std::int64_t retired_index_builds = 0;
  std::int64_t retired_workspace_reallocs = 0;

  explicit EngineHolder(std::shared_ptr<const std::vector<Point<DIM>>> pts)
      : points(std::move(pts)), engine(*points) {}

  shard::ShardedEngine<DIM>& sharded_for(std::int32_t shards) {
    for (auto& slot : sharded) {
      if (slot.shards == shards) {
        slot.last_used = ++sharded_clock;
        return *slot.engine;
      }
    }
    while (sharded.size() >= kShardedCapacity) {
      auto victim = sharded.begin();
      for (auto it = sharded.begin(); it != sharded.end(); ++it) {
        if (it->last_used < victim->last_used) victim = it;
      }
      const shard::ShardedCounters& sc = victim->engine->counters();
      retired_runs += sc.runs;
      retired_index_builds += sc.index_builds;
      retired_workspace_reallocs += sc.workspace_reallocs;
      ++sharded_evictions;
      sharded.erase(victim);
    }
    sharded.push_back(ShardedSlot{
        shards, ++sharded_clock,
        std::make_unique<shard::ShardedEngine<DIM>>(*points, shards)});
    return *sharded.back().engine;
  }
};

template <int DIM>
EngineCounters counters_typed(const void* holder) {
  const auto* h = static_cast<const EngineHolder<DIM>*>(holder);
  EngineCounters c = h->engine.counters();
  // Fold the sharded executors' amortization into the dataset's counters
  // so pool/dataset telemetry sees sharded traffic too — including the
  // retired tallies of evicted executors (keeps runs monotone).
  for (const auto& slot : h->sharded) {
    const shard::ShardedCounters& sc = slot.engine->counters();
    c.runs += sc.runs;
    c.index_builds += sc.index_builds;
    c.workspace_reallocs += sc.workspace_reallocs;
  }
  c.runs += h->retired_runs;
  c.index_builds += h->retired_index_builds;
  c.workspace_reallocs += h->retired_workspace_reallocs;
  c.sharded_evictions = h->sharded_evictions;
  return c;
}

template <int DIM>
std::optional<Error> scan_typed(const void* holder) {
  const auto* h = static_cast<const EngineHolder<DIM>*>(holder);
  const auto n = static_cast<std::int64_t>(h->points->size());
  const std::int64_t bad = fdbscan::detail::first_non_finite(*h->points);
  if (bad < n) {
    return Error{ErrorCode::kNonFinitePoint,
                 "point " + std::to_string(bad) +
                     " has a non-finite coordinate"};
  }
  return std::nullopt;
}

template <int DIM>
Clustering run_typed(void* holder, const Parameters& params,
                     const Options& options, Method method,
                     std::int32_t shards) {
  auto* h = static_cast<EngineHolder<DIM>*>(holder);
  if (shards > 1) {
    // Sharded execution is FDBSCAN's decomposition; `method` does not
    // apply (documented on SubmitOptions::shards).
    return h->sharded_for(shards).run(params, options).clustering;
  }
  switch (method) {
    case Method::kFdbscan: return h->engine.run(params, options);
    case Method::kDensebox: return h->engine.run_densebox(params, options);
    case Method::kAuto: break;
  }
  return fdbscan_auto(h->engine, params, options).clustering;
}

/// Graph-mode twin of run_typed: appends the request's phases to `g`
/// instead of running them, returning the shared slot the finished graph
/// leaves the Clustering in. Staging happens on the dispatcher (like the
/// fork-join prologue): the kAuto density estimate, sharded plan build
/// and per-phase kernel set are identical to run_typed's, so labels and
/// work counters stay bit-identical between the two dispatch modes.
template <int DIM>
std::shared_ptr<Clustering> stage_typed(void* holder,
                                        exec::graph::TaskGraph& g,
                                        const Parameters& params,
                                        const Options& options, Method method,
                                        std::int32_t shards) {
  auto* h = static_cast<EngineHolder<DIM>*>(holder);
  if (shards > 1) {
    auto sharded = std::make_shared<shard::ShardedResult>();
    const exec::graph::NodeId tail =
        h->sharded_for(shards).stage(g, params, options, sharded);
    auto out = std::make_shared<Clustering>();
    g.add_edge(tail, g.add_node("service/collect", [sharded, out] {
                 *out = std::move(sharded->clustering);
               }));
    return out;
  }
  Method resolved = method;
  if (resolved == Method::kAuto) {
    // The same subsample estimate fdbscan_auto runs, in the same spot
    // (before the run's first phase, on the dispatching thread).
    const AutoSelectConfig auto_config;
    resolved = estimate_dense_fraction(h->engine.points(), params,
                                       auto_config) >=
                       auto_config.densebox_threshold
                   ? Method::kDensebox
                   : Method::kFdbscan;
  }
  StagedRun staged = resolved == Method::kDensebox
                         ? h->engine.stage_densebox(params, options)
                         : h->engine.stage(params, options);
  g.add_chain(std::move(staged.phases));
  return staged.result;
}

/// Strict parse of a FDBSCAN_SERVICE_* knob value: the whole string must
/// be a base-10 integer that fits in int and is > 0. Anything else —
/// empty, trailing junk, zero, negative, overflow — is rejected
/// (std::nullopt) and from_env() emits a "service.env_ignored" warning
/// (once per variable) on the structured log (obs/log.h; the default
/// sink keeps warnings on stderr) instead of silently falling back.
/// Exposed for tests.
[[nodiscard]] std::optional<int> parse_positive_env_int(const char* value);

/// One registered deadline in the watchdog heap. weak_ptr so an
/// already-resolved request cannot be kept alive (or touched) by a
/// stale deadline; the generation (captured at registration) makes
/// firing conditional — request_cancel_if() is a no-op on a token that
/// was reset() and reused for a later request, so a not-yet-due entry
/// from request A cannot cancel request B (DESIGN.md §10).
struct WatchdogEntry {
  std::int64_t due_ns = 0;
  std::weak_ptr<exec::CancelToken> token;
  std::uint32_t generation = 0;
};

/// Shared state of one streaming session. The service's session table
/// and every queued operation hold it by shared_ptr, so the streaming
/// engine (and the pool Pin keeping its dataset resident) outlives
/// close() until the last queued op resolves.
///
/// Concurrency: `next_ticket` is guarded by the service queue mutex
/// (tickets are assigned at enqueue, in queue order); `current` and
/// `abandoned` by `mutex` (the ticket turnstile — see SessionTurn in
/// service.cpp). Everything else is written only by the op that holds
/// the session's current ticket, so it needs no lock of its own.
struct SessionState {
  std::uint64_t id = 0;
  std::string dataset_id;
  int dim = 0;
  RequestSpec spec;  ///< pinned at open; per-op deadline/token override

  /// Type-erased stream::StreamingEngine<DIM> plus its accessors, set by
  /// the open operation (open_fn). Null until the open ran.
  std::shared_ptr<void> stream;
  Clustering (*query_fn)(void*) = nullptr;
  std::int64_t (*append_fn)(void*, const void* batch) = nullptr;
  std::int64_t (*expire_fn)(void*, std::int64_t before_seq) = nullptr;
  stream::StreamCounters (*counters_fn)(const void*) = nullptr;
  std::int64_t (*size_fn)(const void*) = nullptr;
  std::int64_t (*next_seq_fn)(const void*) = nullptr;
  /// O(n) coordinate scan of an append batch (same check submit()'s
  /// dispatcher scan applies to a dataset).
  std::optional<Error> (*batch_scan_fn)(const void* batch) = nullptr;
  /// Deferred open work (pin + scan + engine construction), built by the
  /// templated open_session and run on a dispatcher under ticket 0.
  std::function<std::optional<Error>(SessionState&)> open_fn;

  /// Keeps the dataset's pooled engine resident for the session's life.
  std::optional<EnginePool::Pin> pin;

  /// Ticket turnstile: ops execute in ticket order regardless of which
  /// dispatcher picked them up.
  std::mutex mutex;
  std::condition_variable cv;
  std::uint64_t next_ticket = 0;  // guarded by the service queue mutex
  std::uint64_t current = 0;      // guarded by mutex
  std::set<std::uint64_t> abandoned;  // cancelled-before-turn tickets

  /// Set by the open op when it fails; every later op returns the error.
  bool failed = false;
  Error open_error{};
  /// index_rebuilds already folded into the service-wide counter.
  std::int64_t reported_rebuilds = 0;
};

}  // namespace detail

class ClusterService {
 public:
  explicit ClusterService(const ServiceConfig& config = ServiceConfig::from_env());
  ~ClusterService();

  ClusterService(const ClusterService&) = delete;
  ClusterService& operator=(const ClusterService&) = delete;

  /// Submit a clustering request against dataset `dataset_id`. The
  /// service shares ownership of `points` for as long as the dataset's
  /// engine stays pooled; all submits naming one id must pass the same
  /// points. The spec's scalar half is validated here via the shared
  /// validate_spec path (immediate error future); the O(n) coordinate
  /// scan runs on a dispatcher, once per pooled dataset. Never blocks on
  /// a full queue — it rejects.
  template <int DIM>
  [[nodiscard]] std::future<ServiceResult> submit(
      const std::string& dataset_id,
      std::shared_ptr<const std::vector<Point<DIM>>> points,
      RequestSpec spec) {
    std::promise<ServiceResult> promise;
    std::future<ServiceResult> future = promise.get_future();
    submitted_.fetch_add(1, std::memory_order_relaxed);
    obs_.submitted.inc();
    if (!points) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      obs_.failed.inc();
      promise.set_value(Error{ErrorCode::kInternal, "points must not be null"});
      return future;
    }
    if (auto error = validate_spec(spec)) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      obs_.failed.inc();
      promise.set_value(*std::move(error));
      return future;
    }
    Request req;
    req.id = obs::mint_request_id();
    req.dataset_id = dataset_id;
    req.dim = DIM;
    req.params = spec.params;
    req.options = spec.options;
    req.method = spec.method;
    req.shards = spec.shards != 0 ? spec.shards : config_.shards;
    req.token_private = (spec.token == nullptr);
    req.token = spec.token ? std::move(spec.token)
                           : std::make_shared<exec::CancelToken>();
    req.promise = std::move(promise);
    req.make_engine = [points]() -> std::shared_ptr<void> {
      return std::make_shared<detail::EngineHolder<DIM>>(points);
    };
    req.counters = &detail::counters_typed<DIM>;
    req.scan = &detail::scan_typed<DIM>;
    req.run = &detail::run_typed<DIM>;
    req.stage = &detail::stage_typed<DIM>;
    enqueue(std::move(req), spec.deadline_ms);
    return future;
  }

  /// Legacy submit shape; folds into a RequestSpec and forwards.
  template <int DIM>
  [[nodiscard]] std::future<ServiceResult> submit(
      const std::string& dataset_id,
      std::shared_ptr<const std::vector<Point<DIM>>> points,
      const Parameters& params, SubmitOptions submit_options = {}) {
    return submit<DIM>(dataset_id, std::move(points),
                       submit_options.to_spec(params));
  }

  /// Stateful handle to one streaming session (move-only). Obtained from
  /// open_session(); destroying it (or calling close()) closes the
  /// session — already-enqueued operations still run to completion, new
  /// ones reject with kInvalidSession.
  ///
  /// Lifetime: the handle holds a raw pointer to its ClusterService, so
  /// it must not outlive the service that created it — close() or
  /// destroy every handle before destroying the service. The service
  /// destructor drains queued session ops and releases the session
  /// table, but it cannot reach outstanding handles; a handle destroyed
  /// after its service calls close_session on a dangling pointer.
  class Session {
   public:
    Session() = default;
    Session(Session&& other) noexcept
        : service_(other.service_), id_(other.id_) {
      other.service_ = nullptr;
    }
    Session& operator=(Session&& other) noexcept {
      if (this != &other) {
        close();
        service_ = other.service_;
        id_ = other.id_;
        other.service_ = nullptr;
      }
      return *this;
    }
    ~Session() { close(); }

    [[nodiscard]] bool valid() const noexcept { return service_ != nullptr; }
    [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

    /// Append a batch to the stream. The future resolves with the first
    /// sequence number of the batch (SessionDelta::first_seq) once the
    /// dispatcher absorbed it — incrementally while the session's
    /// union-find is valid. DIM must match the session's dimension.
    template <int DIM>
    [[nodiscard]] std::future<SessionResult> append(
        std::shared_ptr<const std::vector<Point<DIM>>> points,
        double deadline_ms = kNoDeadline,
        std::shared_ptr<exec::CancelToken> token = {}) {
      if (service_ == nullptr) return invalid_handle();
      return service_->session_append<DIM>(id_, std::move(points), deadline_ms,
                                           std::move(token));
    }

    /// Retire every point with sequence number < before_seq.
    [[nodiscard]] std::future<SessionResult> expire(
        std::int64_t before_seq, double deadline_ms = kNoDeadline,
        std::shared_ptr<exec::CancelToken> token = {}) {
      if (service_ == nullptr) return invalid_handle();
      return service_->session_expire(id_, before_seq, deadline_ms,
                                      std::move(token));
    }

    /// Cluster the session's live point set under the spec pinned at
    /// open. Observes exactly the mutations enqueued before this call.
    [[nodiscard]] std::future<ServiceResult> query(
        double deadline_ms = kNoDeadline,
        std::shared_ptr<exec::CancelToken> token = {}) {
      if (service_ == nullptr) {
        std::promise<ServiceResult> p;
        p.set_value(Error{ErrorCode::kInvalidSession,
                          "session handle is empty or already closed"});
        return p.get_future();
      }
      return service_->session_query(id_, deadline_ms, std::move(token));
    }

    /// Close the session: new operations reject, queued ones finish, and
    /// the engine-pool Pin releases once the last queued op resolved.
    void close() {
      if (service_ != nullptr) {
        service_->close_session(id_);
        service_ = nullptr;
      }
    }

   private:
    friend class ClusterService;
    Session(ClusterService* service, std::uint64_t id)
        : service_(service), id_(id) {}

    [[nodiscard]] static std::future<SessionResult> invalid_handle() {
      std::promise<SessionResult> p;
      p.set_value(Error{ErrorCode::kInvalidSession,
                        "session handle is empty or already closed"});
      return p.get_future();
    }

    ClusterService* service_ = nullptr;
    std::uint64_t id_ = 0;
  };

  /// Open a streaming session on `dataset_id`, seeded with `points`
  /// (sequence numbers [0, points.size())). The spec — params, options,
  /// single-engine method — is pinned for the session's lifetime; its
  /// deadline/token govern the open operation itself. Scalar validation
  /// and the session-table capacity check happen here (immediate error);
  /// the O(n) scan, the pool pin and the streaming-engine construction
  /// run on a dispatcher, strictly before any of the session's other
  /// operations (ticket 0). An open failure surfaces on every subsequent
  /// operation of that session.
  template <int DIM>
  [[nodiscard]] Expected<Session, Error> open_session(
      const std::string& dataset_id,
      std::shared_ptr<const std::vector<Point<DIM>>> points,
      RequestSpec spec = {}) {
    if (!points) {
      return Error{ErrorCode::kInternal, "points must not be null"};
    }
    if (auto error = validate_spec(spec)) return *std::move(error);
    if (spec.shards > 1) {
      return Error{ErrorCode::kInvalidShards,
                   "streaming sessions are single-engine; shards must be 0 "
                   "or 1, got " + std::to_string(spec.shards)};
    }
    auto state = std::make_shared<detail::SessionState>();
    state->dataset_id = dataset_id;
    state->dim = DIM;
    state->spec = spec;
    const float rebuild_fraction =
        static_cast<float>(config_.session_rebuild_pct) / 100.0f;
    state->open_fn = [this, points, rebuild_fraction](
                         detail::SessionState& s) -> std::optional<Error> {
      // Pin first: the session's dataset must be resident (and stay so)
      // even though the streaming engine owns its own copy — one-shot
      // submits against the same id keep hitting a warm engine.
      s.pin.emplace(pool_.pin(
          s.dataset_id, DIM,
          [points]() -> std::shared_ptr<void> {
            return std::make_shared<detail::EngineHolder<DIM>>(points);
          },
          &detail::counters_typed<DIM>));
      const auto n = static_cast<std::int64_t>(points->size());
      const std::int64_t bad = fdbscan::detail::first_non_finite(*points);
      if (bad < n) {
        return Error{ErrorCode::kNonFinitePoint,
                     "point " + std::to_string(bad) +
                         " has a non-finite coordinate"};
      }
      stream::StreamConfig sc;
      sc.rebuild_fraction = rebuild_fraction;
      s.stream = std::make_shared<stream::StreamingEngine<DIM>>(
          *points, s.spec.params, s.spec.options, sc);
      s.query_fn = [](void* p) {
        return static_cast<stream::StreamingEngine<DIM>*>(p)->query();
      };
      s.append_fn = [](void* p, const void* batch) {
        return static_cast<stream::StreamingEngine<DIM>*>(p)->insert(
            *static_cast<const std::vector<Point<DIM>>*>(batch));
      };
      s.expire_fn = [](void* p, std::int64_t before_seq) {
        return static_cast<stream::StreamingEngine<DIM>*>(p)->expire(
            before_seq);
      };
      s.counters_fn = [](const void* p) {
        return static_cast<const stream::StreamingEngine<DIM>*>(p)->counters();
      };
      s.size_fn = [](const void* p) {
        return static_cast<const stream::StreamingEngine<DIM>*>(p)->size();
      };
      s.next_seq_fn = [](const void* p) {
        return static_cast<const stream::StreamingEngine<DIM>*>(p)
            ->next_seq();
      };
      s.batch_scan_fn = [](const void* batch) -> std::optional<Error> {
        const auto& pts =
            *static_cast<const std::vector<Point<DIM>>*>(batch);
        const auto k = static_cast<std::int64_t>(pts.size());
        const std::int64_t bad_at = fdbscan::detail::first_non_finite(pts);
        if (bad_at < k) {
          return Error{ErrorCode::kNonFinitePoint,
                       "batch point " + std::to_string(bad_at) +
                           " has a non-finite coordinate"};
        }
        return std::nullopt;
      };
      return std::nullopt;
    };
    return register_session(std::move(state), spec.deadline_ms,
                            std::move(spec.token));
  }

  /// Blocks until the queue is empty and no dispatcher is running a
  /// request. Does not stop the service.
  void wait_idle();

  [[nodiscard]] ServiceMetrics metrics() const;

  /// Coherent config + metrics + pool view for exposition; pair with
  /// service::to_prometheus_text() / service::to_json().
  [[nodiscard]] ServiceSnapshot snapshot() const;

  [[nodiscard]] EnginePoolStats pool_stats() const { return pool_.stats(); }
  [[nodiscard]] std::vector<DatasetStats> dataset_stats() {
    return pool_.dataset_stats();
  }
  [[nodiscard]] const ServiceConfig& config() const noexcept { return config_; }

 private:
  /// What a queued request does. kCluster and kSessionQuery resolve
  /// `promise` (a Clustering); the session mutations resolve
  /// `delta_promise` (a SessionDelta).
  enum class Op : std::uint8_t {
    kCluster,
    kSessionOpen,
    kSessionAppend,
    kSessionExpire,
    kSessionQuery,
  };

  struct Request {
    /// Correlation id minted at submit() (obs/request_id.h); carried by
    /// the dispatcher's trace spans and structured log lines.
    obs::RequestId id = 0;
    Op op = Op::kCluster;
    std::string dataset_id;
    int dim = 0;
    Parameters params{};
    Options options{};
    Method method = Method::kAuto;
    std::int32_t shards = 1;
    std::shared_ptr<exec::CancelToken> token;
    /// True when the service created the token itself. The deadline_ms
    /// <= 0 fast-fail may only raise private tokens: poisoning a
    /// caller's shared token would cancel the caller's other in-flight
    /// requests (DESIGN.md §10). Caller tokens are additionally
    /// registered busy for the request's lifetime (kTokenBusy).
    bool token_private = false;
    std::int64_t submit_ns = 0;
    std::promise<ServiceResult> promise;
    std::function<std::shared_ptr<void>()> make_engine;
    EngineCounters (*counters)(const void*) = nullptr;
    std::optional<Error> (*scan)(const void*) = nullptr;
    Clustering (*run)(void*, const Parameters&, const Options&, Method,
                      std::int32_t) = nullptr;
    /// Graph-mode twin of `run` (detail::stage_typed): stages the run's
    /// phases into a TaskGraph instead of executing them. Used only when
    /// ServiceConfig::graph is set and op == kCluster.
    std::shared_ptr<Clustering> (*stage)(void*, exec::graph::TaskGraph&,
                                         const Parameters&, const Options&,
                                         Method, std::int32_t) = nullptr;
    /// Session-op fields (op != kCluster).
    std::shared_ptr<detail::SessionState> session;
    std::promise<SessionResult> delta_promise;
    std::shared_ptr<const void> payload;  ///< append batch (vector<Point>)
    std::int64_t expire_before = 0;
    std::uint64_t ticket = 0;  ///< position in the session's turnstile
  };

  struct AtomicHistogram {
    std::array<std::atomic<std::int64_t>, kLatencyBuckets> buckets{};
    std::atomic<std::int64_t> count{0};
    std::atomic<std::int64_t> total_ns{0};
    std::atomic<std::int64_t> max_ns{0};

    void add(std::int64_t ns) noexcept {
      const auto us = static_cast<std::uint64_t>(ns > 0 ? ns / 1000 : 0);
      const int idx = std::min(static_cast<int>(std::bit_width(us)),
                               kLatencyBuckets - 1);
      buckets[static_cast<std::size_t>(idx)].fetch_add(
          1, std::memory_order_relaxed);
      count.fetch_add(1, std::memory_order_relaxed);
      total_ns.fetch_add(ns, std::memory_order_relaxed);
      std::int64_t seen = max_ns.load(std::memory_order_relaxed);
      while (ns > seen && !max_ns.compare_exchange_weak(
                              seen, ns, std::memory_order_relaxed)) {
      }
    }

    [[nodiscard]] LatencySummary snapshot() const {
      LatencySummary s;
      s.count = count.load(std::memory_order_relaxed);
      s.total_ms =
          static_cast<double>(total_ns.load(std::memory_order_relaxed)) * 1e-6;
      s.max_ms =
          static_cast<double>(max_ns.load(std::memory_order_relaxed)) * 1e-6;
      for (int i = 0; i < kLatencyBuckets; ++i) {
        s.buckets[static_cast<std::size_t>(i)] =
            buckets[static_cast<std::size_t>(i)].load(
                std::memory_order_relaxed);
      }
      return s;
    }
  };

  template <int DIM>
  [[nodiscard]] std::future<SessionResult> session_append(
      std::uint64_t id,
      std::shared_ptr<const std::vector<Point<DIM>>> points,
      double deadline_ms, std::shared_ptr<exec::CancelToken> token) {
    auto state = find_session(id);
    if (!state) {
      return reject_session(Error{ErrorCode::kInvalidSession,
                                  "unknown or closed session " +
                                      std::to_string(id)});
    }
    if (!points) {
      return reject_session(
          Error{ErrorCode::kInternal, "points must not be null"});
    }
    if (state->dim != DIM) {
      return reject_session(Error{
          ErrorCode::kInvalidSession,
          "append dimension (" + std::to_string(DIM) +
              ") does not match the session's (" +
              std::to_string(state->dim) + ")"});
    }
    return enqueue_session_op(std::move(state), Op::kSessionAppend,
                              std::shared_ptr<const void>(std::move(points)),
                              0, deadline_ms, std::move(token));
  }

  /// Session-op plumbing (service.cpp): registration, turnstile enqueue,
  /// lookup, close.
  [[nodiscard]] Expected<Session, Error> register_session(
      std::shared_ptr<detail::SessionState> state, double deadline_ms,
      std::shared_ptr<exec::CancelToken> token);
  [[nodiscard]] std::shared_ptr<detail::SessionState> find_session(
      std::uint64_t id);
  [[nodiscard]] std::future<SessionResult> enqueue_session_op(
      std::shared_ptr<detail::SessionState> state, Op op,
      std::shared_ptr<const void> payload, std::int64_t expire_before,
      double deadline_ms, std::shared_ptr<exec::CancelToken> token);
  [[nodiscard]] std::future<SessionResult> session_expire(
      std::uint64_t id, std::int64_t before_seq, double deadline_ms,
      std::shared_ptr<exec::CancelToken> token);
  [[nodiscard]] std::future<ServiceResult> session_query(
      std::uint64_t id, double deadline_ms,
      std::shared_ptr<exec::CancelToken> token);
  [[nodiscard]] std::future<SessionResult> reject_session(Error error);
  void close_session(std::uint64_t id);

  /// One graph-dispatched request in flight: everything the graph's
  /// completion callback (invoked on a scheduler runner) needs to finish
  /// the request. Holds the engine lease until completion, so per-
  /// dataset serialization spans the whole graph exactly like the
  /// fork-join dispatch (the cv-based Lease releases thread-agnostically).
  struct DeferredRun {
    Request req;
    std::optional<EnginePool::Lease> lease;
    std::shared_ptr<Clustering> out;
    std::int64_t start_ns = 0;
    std::int64_t wait_ns = 0;
  };

  static void reject_request(Request& req, Error error);
  void enqueue(Request req, double deadline_ms);
  void dispatcher_loop(int index);
  void watchdog_loop();
  /// Returns true when the request was deferred to the graph scheduler:
  /// its terminal accounting (and the active_ decrement) happen in
  /// complete_graph, not in the dispatcher.
  [[nodiscard]] bool process(Request& req, std::int64_t& track_floor_ns);
  /// Graph dispatch of a kCluster request: lease + scan + stage on the
  /// dispatcher, then submit with a completion. Returns false (request
  /// fully resolved here) when admission-time work failed.
  [[nodiscard]] bool process_graph(Request& req, std::int64_t start_ns,
                                   std::int64_t wait_ns);
  /// Terminal accounting shared by both dispatch modes: run-time
  /// histogram/span, busy-token release, outcome counters, request_done
  /// log line, promise resolution. Exactly one of result/delta is set.
  void finish_request(Request& req, std::optional<ServiceResult> result,
                      std::optional<SessionResult> delta,
                      std::int64_t start_ns, std::int64_t wait_ns);
  void complete_graph(DeferredRun& run, std::exception_ptr error);
  [[nodiscard]] ServiceResult run_request(Request& req);
  [[nodiscard]] SessionResult run_session_mutation(Request& req);
  /// Fold a session's not-yet-reported index rebuilds into the
  /// service-wide counter. Caller must hold the session's turn.
  void note_session_rebuilds(detail::SessionState& s);

  ServiceConfig config_;
  EnginePool pool_;

  mutable std::mutex queue_mutex_;
  std::condition_variable cv_queue_;
  std::condition_variable cv_idle_;
  std::deque<Request> queue_;
  int active_ = 0;       // guarded by queue_mutex_
  bool stopping_ = false;  // guarded by queue_mutex_
  /// Caller-supplied tokens with a request in flight (queued or
  /// running); a second submit sharing one rejects with kTokenBusy.
  /// Guarded by queue_mutex_.
  std::set<const exec::CancelToken*> busy_tokens_;
  /// Open sessions by id. Guarded by queue_mutex_ (ops look up their
  /// session here; close erases).
  std::map<std::uint64_t, std::shared_ptr<detail::SessionState>> sessions_;
  std::uint64_t next_session_id_ = 1;  // guarded by queue_mutex_

  // Deadline watchdog: min-heap of detail::WatchdogEntry (absolute
  // trace_now_ns deadline, token, token generation — see the struct doc
  // for the generation contract).
  std::mutex wd_mutex_;
  std::condition_variable wd_cv_;
  std::vector<detail::WatchdogEntry> wd_heap_;  // guarded by wd_mutex_
  bool wd_stop_ = false;

  std::atomic<std::int64_t> submitted_{0};
  std::atomic<std::int64_t> completed_{0};
  std::atomic<std::int64_t> rejected_{0};
  std::atomic<std::int64_t> cancelled_{0};
  std::atomic<std::int64_t> deadline_exceeded_{0};
  std::atomic<std::int64_t> failed_{0};
  std::atomic<std::int64_t> session_opened_{0};
  std::atomic<std::int64_t> session_appends_{0};
  std::atomic<std::int64_t> session_expires_{0};
  std::atomic<std::int64_t> session_queries_{0};
  std::atomic<std::int64_t> session_rebuilds_{0};
  AtomicHistogram queue_wait_;
  AtomicHistogram run_time_;

  /// Registry mirrors (DESIGN.md §13): every site that bumps one of the
  /// atomics above bumps the same-named registry metric with the same
  /// value, so a registry delta over a window in which only this
  /// service ran is bit-equal to the ServiceMetrics delta
  /// (bench_compare.py --gate-obs cross-checks exactly that). The
  /// registry is process-wide: concurrent services share these.
  struct ObsMirror {
    obs::Counter& submitted =
        obs::counter("fdbscan_service_submitted_total");
    obs::Counter& completed =
        obs::counter("fdbscan_service_completed_total");
    obs::Counter& rejected = obs::counter("fdbscan_service_rejected_total");
    obs::Counter& cancelled =
        obs::counter("fdbscan_service_cancelled_total");
    obs::Counter& deadline_exceeded =
        obs::counter("fdbscan_service_deadline_exceeded_total");
    obs::Counter& failed = obs::counter("fdbscan_service_failed_total");
    obs::Gauge& queued = obs::gauge("fdbscan_service_queue_depth");
    obs::Gauge& active = obs::gauge("fdbscan_service_active_requests");
    obs::Gauge& sessions_open = obs::gauge("fdbscan_service_sessions_open");
    obs::Counter& session_opened =
        obs::counter("fdbscan_service_session_opened_total");
    obs::Counter& session_appends =
        obs::counter("fdbscan_service_session_append_total");
    obs::Counter& session_expires =
        obs::counter("fdbscan_service_session_expire_total");
    obs::Counter& session_queries =
        obs::counter("fdbscan_service_session_query_total");
    obs::Counter& session_rebuilds =
        obs::counter("fdbscan_service_session_rebuilds_total");
    obs::Histogram& queue_wait =
        obs::histogram("fdbscan_service_queue_wait");
    obs::Histogram& run_time = obs::histogram("fdbscan_service_run_time");
  };
  ObsMirror obs_;

  std::vector<std::thread> dispatchers_;
  std::thread watchdog_;
};

}  // namespace fdbscan::service
