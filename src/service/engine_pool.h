// Warm-engine cache for the clustering service (DESIGN.md §10).
//
// The service keys engines by a caller-chosen dataset id: every request
// naming the same id reuses one fdbscan::Engine, so the point BVH is
// built once per dataset (index_rebuilds == 1 in telemetry) and the
// DenseBox bundle cache and workspace arena stay warm across requests.
//
// Concurrency rules:
//   * An Engine supports one run at a time (engine.h). The pool enforces
//     this with a per-entry cv-guarded running flag: acquire() returns a
//     Lease that holds the flag, so concurrent requests against one
//     dataset serialize on the warm engine instead of each building a
//     cold one. Requests against distinct datasets run fully in
//     parallel. The flag (not a held mutex) lets a lease acquired on a
//     service dispatcher be released by the graph runner that finishes
//     the request's task graph.
//   * Eviction is LRU over entries with no lease and no pin outstanding.
//     An entry that is leased or pinned is never destroyed under the
//     caller — the pool may temporarily exceed its capacity when every
//     resident engine is busy rather than block or evict a live engine.
//     A Pin (streaming sessions, DESIGN.md §14) is the long-lived
//     residency variant of a Lease: no run mutex, just eviction immunity.
//
// The pool is type-erased (the service is not templated on DIM): entries
// hold shared_ptr<void> produced by a caller factory, and a counters
// accessor so dataset_stats() can report per-dataset amortization
// without knowing the concrete Engine<DIM>.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "obs/metrics.h"

namespace fdbscan::service {

namespace pool_detail {

/// Registry mirrors of the pool counters (DESIGN.md §13). Process-wide:
/// several pools (several services) add into the same totals; the
/// engines gauge tracks the net resident count across all of them.
struct PoolMetrics {
  obs::Counter& hits = obs::counter("fdbscan_pool_hits_total");
  obs::Counter& misses = obs::counter("fdbscan_pool_misses_total");
  obs::Counter& evictions = obs::counter("fdbscan_pool_evictions_total");
  obs::Gauge& engines = obs::gauge("fdbscan_pool_engines");
};

inline PoolMetrics& pool_metrics() {
  static PoolMetrics m;
  return m;
}

}  // namespace pool_detail

struct EnginePoolStats {
  std::int64_t engines = 0;    ///< currently resident entries
  std::int64_t hits = 0;       ///< acquires/pins that found a warm engine
  std::int64_t misses = 0;     ///< acquires/pins that built a fresh engine
  std::int64_t evictions = 0;  ///< entries dropped by the LRU policy
  std::int64_t pinned = 0;     ///< resident entries with >= 1 Pin outstanding
};

/// Per-dataset amortization counters (from EngineCounters), exported
/// into the service telemetry block.
struct DatasetStats {
  std::string id;
  int dim = 0;
  std::int64_t runs = 0;
  std::int64_t index_builds = 0;
  std::int64_t grid_cache_hits = 0;
  /// Sharded executors this dataset's holder dropped from its bounded
  /// per-shard-count LRU (EngineCounters::sharded_evictions).
  std::int64_t sharded_evictions = 0;
};

class EnginePool {
  struct Entry {
    std::string id;
    int dim = 0;
    std::shared_ptr<void> engine;  // keeps the points alive via its holder
    EngineCounters (*counters)(const void*) = nullptr;
    // One run at a time per engine. A cv-guarded flag rather than a held
    // mutex: a graph-mode request acquires its lease on a dispatcher but
    // releases it from the scheduler runner that finishes the graph, and
    // a std::mutex must be unlocked by its locking thread.
    std::mutex run_mutex;
    std::condition_variable run_cv;
    bool running = false;
    bool validated = false;  // O(n) coordinate scan done for these points
    int active = 0;          // leases outstanding (guarded by pool mutex_)
    int pins = 0;            // long-lived Pins outstanding (guarded by mutex_)
    std::uint64_t last_used = 0;
  };

 public:
  explicit EnginePool(std::int32_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  ~EnginePool() {
    // Keep the process-wide resident-engines gauge honest when a whole
    // pool (service) goes away.
    pool_detail::pool_metrics().engines.add(
        -static_cast<std::int64_t>(entries_.size()));
  }

  EnginePool(const EnginePool&) = delete;
  EnginePool& operator=(const EnginePool&) = delete;

  /// Exclusive use of one dataset's engine: holds the entry's running
  /// flag (and a liveness reference) until destruction. Unlike a held
  /// mutex, the flag may be released by a different thread than acquired
  /// it — graph-mode requests destroy their lease from the scheduler
  /// runner that completes the graph, not the dispatcher that staged it.
  class Lease {
   public:
    Lease() = default;
    Lease(std::shared_ptr<Entry> entry, EnginePool* pool)
        : entry_(std::move(entry)), pool_(pool) {
      std::unique_lock<std::mutex> lock(entry_->run_mutex);
      entry_->run_cv.wait(lock, [&] { return !entry_->running; });
      entry_->running = true;
    }
    Lease(Lease&&) = default;
    // No move-assign: overwriting a live lease would skip its active-count
    // release. Construct fresh leases instead.
    Lease& operator=(Lease&&) = delete;
    ~Lease() {
      if (entry_ && pool_) {
        {
          std::lock_guard<std::mutex> lock(entry_->run_mutex);
          entry_->running = false;
        }
        // notify_all, not notify_one: blocked acquirers (Lease ctor) and
        // dataset_stats() pollers share run_cv. A single wakeup consumed
        // by a stats poll (which reads and returns without re-notifying)
        // would strand a dispatcher waiting on the same entry forever.
        entry_->run_cv.notify_all();
        std::lock_guard<std::mutex> guard(pool_->mutex_);
        --entry_->active;
      }
    }

    [[nodiscard]] void* engine() const noexcept { return entry_->engine.get(); }

    /// Whether the O(n) coordinate scan already ran for this dataset.
    /// Callers flip it after a successful scan; guarded by the lease
    /// (only the lease holder may touch the entry's run state).
    [[nodiscard]] bool validated() const noexcept { return entry_->validated; }
    void set_validated() noexcept { entry_->validated = true; }

   private:
    std::shared_ptr<Entry> entry_;
    EnginePool* pool_ = nullptr;
  };

  /// Long-lived residency reference (DESIGN.md §14): unlike a Lease, a
  /// Pin holds no run mutex — runs against the dataset proceed normally —
  /// but while any Pin on an entry is outstanding the LRU never evicts
  /// it. Streaming sessions pin their dataset's entry for their whole
  /// lifetime so eviction pressure from other datasets cannot drop an
  /// engine (and the points its holder keeps alive) out from under an
  /// open session. Dropping the Pin (destruction) makes the entry
  /// evictable again; the entry itself stays alive as long as the Pin
  /// holds it even if the LRU replaced it in the meantime (the same-id-
  /// different-dim replacement path), so a pinned session keeps a
  /// consistent engine even across a dataset redefinition.
  class Pin {
   public:
    Pin() = default;
    Pin(std::shared_ptr<Entry> entry, EnginePool* pool)
        : entry_(std::move(entry)), pool_(pool) {}
    Pin(Pin&&) = default;
    // No move-assign: overwriting a live pin would skip its pin-count
    // release. Construct fresh pins instead (std::optional<Pin>::emplace).
    Pin& operator=(Pin&&) = delete;
    ~Pin() {
      if (entry_ && pool_) {
        std::lock_guard<std::mutex> guard(pool_->mutex_);
        --entry_->pins;
      }
    }

    [[nodiscard]] void* engine() const noexcept { return entry_->engine.get(); }
    [[nodiscard]] explicit operator bool() const noexcept {
      return entry_ != nullptr;
    }

   private:
    std::shared_ptr<Entry> entry_;
    EnginePool* pool_ = nullptr;
  };

  /// Lease the engine for dataset `id`, building it via `make_engine` on
  /// a miss. Blocks while another lease on the same dataset is live (the
  /// per-engine serialization rule). `counters` must read the
  /// EngineCounters out of the opaque engine produced by `make_engine`.
  Lease acquire(const std::string& id, int dim,
                const std::function<std::shared_ptr<void>()>& make_engine,
                EngineCounters (*counters)(const void*)) {
    std::shared_ptr<Entry> entry = find_or_create(id, dim, make_engine,
                                                  counters);
    // Taking the run mutex outside the pool lock: a long run on one
    // dataset must not block acquires for other datasets.
    return Lease(std::move(entry), this);
  }

  /// Pin the engine for dataset `id` (building it on a miss, like
  /// acquire). Returns immediately — no run mutex is taken.
  Pin pin(const std::string& id, int dim,
          const std::function<std::shared_ptr<void>()>& make_engine,
          EngineCounters (*counters)(const void*)) {
    std::shared_ptr<Entry> entry = find_or_create(id, dim, make_engine,
                                                  counters);
    {
      std::lock_guard<std::mutex> guard(mutex_);
      ++entry->pins;
      --entry->active;  // find_or_create took a lease-style reference
    }
    return Pin(std::move(entry), this);
  }

  [[nodiscard]] EnginePoolStats stats() const {
    std::lock_guard<std::mutex> guard(mutex_);
    EnginePoolStats s = stats_;
    s.engines = static_cast<std::int64_t>(entries_.size());
    for (const auto& [id, entry] : entries_) s.pinned += (entry->pins > 0);
    return s;
  }

  /// Per-dataset counters for resident engines, sorted by id. Waits for
  /// each entry's running flag to clear (EngineCounters is mutated by
  /// runs) and holds it while reading, so this briefly serializes
  /// against in-flight runs — call from telemetry paths, ideally after
  /// the service is idle.
  [[nodiscard]] std::vector<DatasetStats> dataset_stats() {
    std::vector<std::shared_ptr<Entry>> snapshot;
    {
      std::lock_guard<std::mutex> guard(mutex_);
      snapshot.reserve(entries_.size());
      for (const auto& [id, entry] : entries_) snapshot.push_back(entry);
    }
    std::vector<DatasetStats> out;
    out.reserve(snapshot.size());
    for (const auto& entry : snapshot) {
      std::unique_lock<std::mutex> run_lock(entry->run_mutex);
      entry->run_cv.wait(run_lock, [&] { return !entry->running; });
      const EngineCounters c = entry->counters(entry->engine.get());
      run_lock.unlock();
      out.push_back(DatasetStats{entry->id, entry->dim, c.runs,
                                 c.index_builds, c.grid_cache_hits,
                                 c.sharded_evictions});
    }
    return out;
  }

 private:
  // Shared hit/miss path of acquire() and pin(): returns the entry for
  // `id` with its active count bumped (so it cannot be evicted between
  // the lookup and whichever reference the caller converts it into).
  std::shared_ptr<Entry> find_or_create(
      const std::string& id, int dim,
      const std::function<std::shared_ptr<void>()>& make_engine,
      EngineCounters (*counters)(const void*)) {
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = entries_.find(id);
    bool fresh = false;
    pool_detail::PoolMetrics& pm = pool_detail::pool_metrics();
    std::shared_ptr<Entry> entry;
    if (it != entries_.end() && it->second->dim == dim) {
      entry = it->second;
      ++stats_.hits;
      pm.hits.inc();
    } else {
      if (it != entries_.end()) {
        // Same id resubmitted at a different dimension: replace. A
        // pinned old entry stays alive through its Pin's shared_ptr —
        // open sessions keep observing the points they opened with.
        entries_.erase(it);
        ++stats_.evictions;
        pm.evictions.inc();
        pm.engines.add(-1);
      }
      entry = std::make_shared<Entry>();
      entry->id = id;
      entry->dim = dim;
      entry->engine = make_engine();
      entry->counters = counters;
      entries_.emplace(id, entry);
      ++stats_.misses;
      pm.misses.inc();
      pm.engines.add(1);
      fresh = true;
    }
    // Touch and reference BEFORE any eviction pass: a fresh entry still
    // at last_used == 0 / active == 0 would otherwise be its own victim.
    entry->last_used = ++clock_;
    ++entry->active;
    if (fresh) evict_locked();
    return entry;
  }

  // Must hold mutex_. Evicts least-recently-used idle entries until the
  // pool fits its capacity; leased and pinned entries are skipped
  // (temporary overflow beats destroying an engine under a running
  // request or an open session).
  void evict_locked() {
    while (entries_.size() > static_cast<std::size_t>(capacity_)) {
      auto victim = entries_.end();
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->second->active > 0 || it->second->pins > 0) continue;
        if (victim == entries_.end() ||
            it->second->last_used < victim->second->last_used) {
          victim = it;
        }
      }
      if (victim == entries_.end()) return;  // every entry is leased/pinned
      entries_.erase(victim);
      ++stats_.evictions;
      pool_detail::pool_metrics().evictions.inc();
      pool_detail::pool_metrics().engines.add(-1);
    }
  }

  const std::int32_t capacity_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  EnginePoolStats stats_;
  std::uint64_t clock_ = 0;
};

}  // namespace fdbscan::service
