// The original sequential DBSCAN (Ester et al. 1996; paper Algorithm 1)
// backed by a k-d tree, reaching the classic O(n log n). Serves as the
// "what the field started from" baseline and as a fast exact reference
// for mid-size integration tests where the O(n^2) brute force is too slow.
#pragma once

#include <deque>
#include <vector>

#include "core/clustering.h"
#include "exec/timer.h"
#include "geometry/point.h"
#include "kdtree/kdtree.h"

namespace fdbscan::baselines {

template <int DIM>
[[nodiscard]] Clustering sequential_dbscan(const std::vector<Point<DIM>>& points,
                                           const Parameters& params,
                                           Variant variant = Variant::kDbscan) {
  const auto n = static_cast<std::int32_t>(points.size());
  const float eps2 = params.eps * params.eps;
  constexpr std::int32_t kUnvisited = -2;

  exec::Timer timer;
  KdTree<DIM> tree(points);
  PhaseTimings timings;
  timings.index_construction = timer.lap();

  std::int64_t distance_computations = 0;
  auto neighbors_of = [&](std::int32_t i, std::vector<std::int32_t>& out) {
    out.clear();
    tree.for_each_near(
        points[static_cast<std::size_t>(i)], eps2,
        [&](std::int32_t id) {
          out.push_back(id);
          return KdTree<DIM>::TraversalControlKd::kContinue;
        },
        &distance_computations);
  };

  Clustering result;
  result.labels.assign(points.size(), kUnvisited);
  result.is_core.assign(points.size(), 0);
  std::int32_t next_cluster = 0;
  std::vector<std::int32_t> scratch;

  for (std::int32_t i = 0; i < n; ++i) {
    if (result.labels[static_cast<std::size_t>(i)] != kUnvisited) continue;
    neighbors_of(i, scratch);
    if (static_cast<std::int32_t>(scratch.size()) < params.minpts) {
      result.labels[static_cast<std::size_t>(i)] = kNoise;
      continue;
    }
    const std::int32_t c = next_cluster++;
    result.labels[static_cast<std::size_t>(i)] = c;
    result.is_core[static_cast<std::size_t>(i)] = 1;
    std::deque<std::int32_t> queue(scratch.begin(), scratch.end());
    while (!queue.empty()) {
      const std::int32_t y = queue.front();
      queue.pop_front();
      auto& label = result.labels[static_cast<std::size_t>(y)];
      if (label == kNoise) label = c;
      if (label != kUnvisited) continue;
      label = c;
      neighbors_of(y, scratch);
      if (static_cast<std::int32_t>(scratch.size()) >= params.minpts) {
        result.is_core[static_cast<std::size_t>(y)] = 1;
        queue.insert(queue.end(), scratch.begin(), scratch.end());
      }
    }
  }
  if (variant == Variant::kDbscanStar) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (result.is_core[i] == 0) result.labels[i] = kNoise;
    }
  }
  result.num_clusters = next_cluster;
  timings.main = timer.lap();
  result.timings = timings;
  result.distance_computations = distance_computations;
  return result;
}

}  // namespace fdbscan::baselines
