// Hybrid batched DBSCAN after Gowanlock et al. (IPDPS'17 [15], ICS'19
// [14]): the "device" computes explicit eps-neighbor lists with an index,
// the "host" consumes them with a sequential disjoint-set clustering, and
// — the ICS'19 refinement §2.2 highlights — the neighbor lists are
// produced in bounded *batches* so the working set fits device memory
// (unlike G-DBSCAN, which must hold the entire adjacency graph at once).
//
// This baseline exists to quantify the paper's contrast: FDBSCAN
// processes neighbors on the fly and never materializes lists at all,
// while the hybrid approach pays for materialization and a device-host
// round trip per batch (modeled here by the batch boundary between the
// parallel fill kernel and the sequential consume loop).
#pragma once

#include <vector>

#include "core/clustering.h"
#include "exec/memory_tracker.h"
#include "exec/parallel.h"
#include "exec/per_thread.h"
#include "exec/profile.h"
#include "geometry/point.h"
#include "grid/uniform_grid_index.h"
#include "unionfind/union_find.h"

namespace fdbscan::baselines {

struct HybridConfig {
  /// Device-side buffer capacity in neighbor entries per batch. Small
  /// buffers force many batches (more round trips); the default mirrors
  /// a few hundred MB of a GPU buffer at realistic scales.
  std::int64_t batch_capacity = 1 << 22;
};

template <int DIM>
[[nodiscard]] Clustering hybrid_gowanlock(
    const std::vector<Point<DIM>>& points, const Parameters& params,
    const HybridConfig& config = {},
    exec::MemoryTracker* memory = nullptr,
    Variant variant = Variant::kDbscan) {
  const auto n = static_cast<std::int32_t>(points.size());
  if (n == 0) return {};

  exec::PhaseProfiler timer;
  UniformGridIndex<DIM> index(points, params.eps);
  PhaseTimings timings;
  timings.index_construction =
      timer.lap("hybrid/index", &timings.index_construction_profile);

  // Device pass 1: neighbor counts (cheap, no materialization).
  exec::PerThread<std::int64_t> distance_tally;
  std::vector<std::int64_t> counts(points.size());
  exec::parallel_for("hybrid/pre/neighbor-count", n, [&](std::int64_t i) {
    std::vector<std::int32_t> neighbors;
    const std::int64_t tested =
        index.neighbors(points[static_cast<std::size_t>(i)], neighbors);
    counts[static_cast<std::size_t>(i)] =
        static_cast<std::int64_t>(neighbors.size());
    distance_tally.local() += tested;
  });
  std::vector<std::uint8_t> is_core(points.size(), 0);
  exec::parallel_for("hybrid/pre/core-flags", n, [&](std::int64_t i) {
    const auto ui = static_cast<std::size_t>(i);
    is_core[ui] = counts[ui] >= params.minpts ? 1 : 0;
  });
  timings.preprocessing =
      timer.lap("hybrid/pre", &timings.preprocessing_profile);

  // Batched materialize-and-consume: points are packed greedily into
  // batches whose total neighbor count fits the device buffer.
  std::vector<std::int32_t> labels(points.size());
  init_singletons(labels);
  UnionFindView uf(labels.data(), n);
  exec::ScopedCharge buffer_charge(
      memory, static_cast<std::size_t>(config.batch_capacity) *
                  sizeof(std::int32_t));

  std::vector<std::int64_t> offsets;   // per batch point, into buffer
  std::vector<std::int32_t> batch_ids;
  std::vector<std::int32_t> buffer;
  std::int32_t batch_start = 0;
  while (batch_start < n) {
    // Greedy batch packing.
    batch_ids.clear();
    offsets.clear();
    std::int64_t used = 0;
    std::int32_t i = batch_start;
    for (; i < n; ++i) {
      const std::int64_t need = counts[static_cast<std::size_t>(i)];
      if (!batch_ids.empty() && used + need > config.batch_capacity) break;
      offsets.push_back(used);
      batch_ids.push_back(i);
      used += need;
    }
    // "Device" kernel: materialize the batch's neighbor lists.
    buffer.resize(static_cast<std::size_t>(used));
    exec::parallel_for(
        "hybrid/main/batch-fill",
        static_cast<std::int64_t>(batch_ids.size()), [&](std::int64_t k) {
          const std::int32_t x = batch_ids[static_cast<std::size_t>(k)];
          std::vector<std::int32_t> neighbors;
          index.neighbors(points[static_cast<std::size_t>(x)], neighbors);
          std::copy(neighbors.begin(), neighbors.end(),
                    buffer.begin() + offsets[static_cast<std::size_t>(k)]);
          distance_tally.local() +=
              static_cast<std::int64_t>(neighbors.size());
        });
    // "Host" pass: sequential disjoint-set clustering over the lists.
    for (std::size_t k = 0; k < batch_ids.size(); ++k) {
      const std::int32_t x = batch_ids[k];
      if (is_core[static_cast<std::size_t>(x)] == 0) continue;
      const std::int64_t begin = offsets[k];
      const std::int64_t end =
          begin + counts[static_cast<std::size_t>(x)];
      for (std::int64_t e = begin; e < end; ++e) {
        const std::int32_t y = buffer[static_cast<std::size_t>(e)];
        if (y != x) detail::resolve_pair(uf, is_core, x, y, variant);
      }
    }
    batch_start = i;
  }
  timings.main = timer.lap("hybrid/main", &timings.main_profile);

  flatten(labels);
  Clustering result =
      detail::finalize_labels(std::move(labels), std::move(is_core));
  timings.finalization =
      timer.lap("hybrid/finalize", &timings.finalization_profile);
  result.timings = timings;
  result.distance_computations = distance_tally.combine();
  if (memory) result.peak_memory_bytes = memory->peak();
  return result;
}

}  // namespace fdbscan::baselines
