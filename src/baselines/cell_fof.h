// Cell-partitioned Friends-of-Friends after Sewell et al. (LDAV'15),
// which §2.2 calls a precursor of this work: the minpts = 2 special case
// (strongly connected components of the implicit eps-graph) computed
// with a cell partitioning of the domain as the index and a disjoint-set
// structure — no tree, no general minpts. Each point scans the 3^d
// surrounding cells and unions with eps-close points of higher id (each
// implicit edge handled once).
#pragma once

#include <stdexcept>
#include <vector>

#include "core/clustering.h"
#include "exec/parallel.h"
#include "exec/per_thread.h"
#include "exec/profile.h"
#include "geometry/point.h"
#include "grid/uniform_grid_index.h"
#include "unionfind/union_find.h"

namespace fdbscan::baselines {

/// Friends-of-Friends halo finding: DBSCAN restricted to minpts = 2.
/// `params.minpts` must be 2 (throws otherwise — the algorithm has no
/// notion of border points or density thresholds).
template <int DIM>
[[nodiscard]] Clustering cell_fof(const std::vector<Point<DIM>>& points,
                                  const Parameters& params) {
  if (params.minpts != 2) {
    throw std::invalid_argument(
        "cell_fof implements only the minpts == 2 (Friends-of-Friends) case");
  }
  const auto n = static_cast<std::int64_t>(points.size());
  if (n == 0) return {};

  exec::PhaseProfiler timer;
  UniformGridIndex<DIM> index(points, params.eps);
  PhaseTimings timings;
  timings.index_construction =
      timer.lap("cell-fof/index", &timings.index_construction_profile);

  std::vector<std::int32_t> labels(points.size());
  init_singletons(labels);
  UnionFindView uf(labels.data(), static_cast<std::int32_t>(n));
  std::vector<std::uint8_t> is_core(points.size(), 0);
  exec::PerThread<std::int64_t> distance_tally;
  exec::parallel_for("cell-fof/main/scan-union", n, [&](std::int64_t i) {
    const auto x = static_cast<std::int32_t>(i);
    std::vector<std::int32_t> neighbors;
    const std::int64_t tested =
        index.neighbors(points[static_cast<std::size_t>(x)], neighbors);
    for (std::int32_t y : neighbors) {
      if (y > x) {  // each implicit edge once
        exec::atomic_store_relaxed(is_core[static_cast<std::size_t>(x)],
                                   std::uint8_t{1});
        exec::atomic_store_relaxed(is_core[static_cast<std::size_t>(y)],
                                   std::uint8_t{1});
        uf.merge(x, y);
      }
    }
    distance_tally.local() += tested;
  });
  timings.main = timer.lap("cell-fof/main", &timings.main_profile);

  flatten(labels);
  Clustering result =
      detail::finalize_labels(std::move(labels), std::move(is_core));
  timings.finalization =
      timer.lap("cell-fof/finalize", &timings.finalization_profile);
  result.timings = timings;
  result.distance_computations = distance_tally.combine();
  return result;
}

}  // namespace fdbscan::baselines
