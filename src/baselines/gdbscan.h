// G-DBSCAN (Andrade et al. 2013): builds the full eps-adjacency graph
// with an all-to-all O(n^2) computation, then clusters with a
// level-synchronous parallel BFS. Reproduced with its two defining
// properties intact (cf. Mustafa et al. [32] and §5.1):
//   * it stores every neighbor list, so memory grows with the number of
//     edges — a MemoryTracker budget reproduces the V100 out-of-memory
//     failures of Fig. 4(h);
//   * graph construction is all-pairs, giving the poorer n-scaling seen
//     in Fig. 4(g)(h).
#pragma once

#include <vector>

#include "core/clustering.h"
#include "exec/atomic.h"
#include "exec/parallel.h"
#include "exec/profile.h"
#include "geometry/point.h"

namespace fdbscan::baselines {

template <int DIM>
[[nodiscard]] Clustering gdbscan(const std::vector<Point<DIM>>& points,
                                 const Parameters& params,
                                 exec::MemoryTracker* memory = nullptr,
                                 Variant variant = Variant::kDbscan) {
  const auto n = static_cast<std::int64_t>(points.size());
  const float eps2 = params.eps * params.eps;
  if (n == 0) return {};

  exec::PhaseProfiler timer;
  PhaseTimings timings;

  // --- Graph construction (vertices kernel): degree of every vertex ------
  std::vector<std::int32_t> degree(points.size(), 0);
  exec::ScopedCharge degree_charge(memory, points.size() * sizeof(std::int32_t) * 2);
  exec::parallel_for("gdbscan/build/degree", n, [&](std::int64_t i) {
    const auto& p = points[static_cast<std::size_t>(i)];
    std::int32_t d = 0;
    for (std::int64_t j = 0; j < n; ++j) {
      d += (j != i &&
            within(p, points[static_cast<std::size_t>(j)], eps2));
    }
    degree[static_cast<std::size_t>(i)] = d;
  });

  // Core points: |N_eps(x)| >= minpts with x in N, i.e. degree+1.
  std::vector<std::uint8_t> is_core(points.size(), 0);
  exec::parallel_for("gdbscan/build/core-flags", n, [&](std::int64_t i) {
    const auto ui = static_cast<std::size_t>(i);
    is_core[ui] = (degree[ui] + 1 >= params.minpts) ? 1 : 0;
  });

  // --- Graph construction (edges kernel): CSR adjacency -------------------
  std::vector<std::int64_t> offsets(points.size() + 1, 0);
  exec::parallel_for("gdbscan/build/degree-copy", n, [&](std::int64_t i) {
    offsets[static_cast<std::size_t>(i)] = degree[static_cast<std::size_t>(i)];
  });
  const std::int64_t num_edges =
      exec::exclusive_scan("gdbscan/build/edge-offsets", offsets.data(),
                           static_cast<std::int64_t>(n));
  offsets[points.size()] = num_edges;
  // This is the allocation that kills G-DBSCAN on dense data: the full
  // edge list. The charge throws OutOfDeviceMemory when over budget.
  exec::ScopedCharge adjacency_charge(
      memory, static_cast<std::size_t>(num_edges) * sizeof(std::int32_t) +
                  offsets.size() * sizeof(std::int64_t));
  std::vector<std::int32_t> adjacency(static_cast<std::size_t>(num_edges));
  exec::parallel_for("gdbscan/build/edge-fill", n, [&](std::int64_t i) {
    const auto& p = points[static_cast<std::size_t>(i)];
    std::int64_t cursor = offsets[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < n; ++j) {
      if (j != i && within(p, points[static_cast<std::size_t>(j)], eps2)) {
        adjacency[static_cast<std::size_t>(cursor++)] =
            static_cast<std::int32_t>(j);
      }
    }
  });
  timings.index_construction =
      timer.lap("gdbscan/build", &timings.index_construction_profile);

  // --- Clustering: level-synchronous BFS from each unvisited core --------
  Clustering result;
  result.labels.assign(points.size(), kNoise);
  std::vector<std::uint8_t> visited(points.size(), 0);
  std::int32_t next_cluster = 0;
  std::vector<std::int32_t> frontier, next_frontier;
  for (std::int64_t seed = 0; seed < n; ++seed) {
    const auto useed = static_cast<std::size_t>(seed);
    if (visited[useed] != 0 || is_core[useed] == 0) continue;
    const std::int32_t c = next_cluster++;
    visited[useed] = 1;
    result.labels[useed] = c;
    frontier.assign(1, static_cast<std::int32_t>(seed));
    while (!frontier.empty()) {
      next_frontier.clear();
      std::mutex frontier_mutex;
      exec::parallel_for(
          "gdbscan/bfs/frontier-expand",
          static_cast<std::int64_t>(frontier.size()), [&](std::int64_t f) {
            const std::int32_t x = frontier[static_cast<std::size_t>(f)];
            if (is_core[static_cast<std::size_t>(x)] == 0) {
              return;  // border points join but are not expanded
            }
            std::vector<std::int32_t> local;
            for (std::int64_t e = offsets[static_cast<std::size_t>(x)];
                 e < offsets[static_cast<std::size_t>(x) + 1]; ++e) {
              const std::int32_t y = adjacency[static_cast<std::size_t>(e)];
              std::uint8_t expected = 0;
              if (exec::atomic_cas(visited[static_cast<std::size_t>(y)],
                                   expected, std::uint8_t{1})) {
                result.labels[static_cast<std::size_t>(y)] = c;
                local.push_back(y);
              }
            }
            if (!local.empty()) {
              std::lock_guard<std::mutex> lock(frontier_mutex);
              next_frontier.insert(next_frontier.end(), local.begin(),
                                   local.end());
            }
          });
      frontier.swap(next_frontier);
    }
  }
  if (variant == Variant::kDbscanStar) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (is_core[i] == 0) result.labels[i] = kNoise;
    }
  }
  result.is_core = std::move(is_core);
  result.num_clusters = next_cluster;
  timings.main = timer.lap("gdbscan/bfs", &timings.main_profile);
  result.timings = timings;
  // Both all-to-all passes (degree count + edge fill) evaluate every
  // ordered pair: the O(n^2) work the paper's framework avoids.
  result.distance_computations = 2 * n * (n - 1);
  if (memory) result.peak_memory_bytes = memory->peak();
  return result;
}

}  // namespace fdbscan::baselines
