// CUDA-DClust (Böhm et al., CIKM'09), with the CUDA-DClust* grid
// directory index. The algorithm grows many sub-clusters ("chains") of
// density-reachable points concurrently — one chain per GPU block in the
// original; one chain per task here. Inter-chain contacts are recorded in
// a collision list and resolved in a final pass (the original resolves a
// collision matrix on the CPU), which is exactly the overhead that makes
// it the slowest contender in §5.1.
#pragma once

#include <deque>
#include <utility>
#include <vector>

#include "core/clustering.h"
#include "exec/atomic.h"
#include "exec/parallel.h"
#include "exec/per_thread.h"
#include "exec/profile.h"
#include "geometry/point.h"
#include "grid/uniform_grid_index.h"
#include "unionfind/union_find.h"

namespace fdbscan::baselines {

struct CudaDclustConfig {
  /// Chains grown concurrently per round (the original launches a fixed
  /// number of blocks per kernel invocation).
  std::int32_t chains_per_round = 64;
};

template <int DIM>
[[nodiscard]] Clustering cuda_dclust(const std::vector<Point<DIM>>& points,
                                     const Parameters& params,
                                     const CudaDclustConfig& config = {},
                                     Variant variant = Variant::kDbscan) {
  const auto n = static_cast<std::int32_t>(points.size());
  if (n == 0) return {};

  exec::PhaseProfiler timer;
  UniformGridIndex<DIM> index(points, params.eps);
  PhaseTimings timings;
  timings.index_construction =
      timer.lap("cuda-dclust/index", &timings.index_construction_profile);

  // chain_of[p]: chain id once p is absorbed, -1 before. Chains never
  // change after assignment; collisions are resolved at the end.
  // Collision records and distance tallies go into striped per-thread
  // slots (persist across rounds), replacing the old mutex-guarded
  // global list and shared atomic counter.
  std::vector<std::int32_t> chain_of(points.size(), -1);
  std::vector<std::uint8_t> is_core(points.size(), 0);
  std::vector<std::int32_t> chain_seed;       // seed point of each chain
  exec::PerThread<std::vector<std::pair<std::int32_t, std::int32_t>>>
      collision_tally;  // (chain, point)
  exec::PerThread<std::int64_t> distance_tally;

  std::int32_t cursor = 0;
  while (cursor < n) {
    // Select up to chains_per_round unabsorbed seeds.
    std::vector<std::int32_t> seeds;
    while (cursor < n &&
           static_cast<std::int32_t>(seeds.size()) < config.chains_per_round) {
      if (chain_of[static_cast<std::size_t>(cursor)] < 0) seeds.push_back(cursor);
      ++cursor;
    }
    if (seeds.empty()) continue;
    const auto first_chain = static_cast<std::int32_t>(chain_seed.size());
    chain_seed.insert(chain_seed.end(), seeds.begin(), seeds.end());

    // Grow all chains of this round concurrently.
    exec::parallel_for(
        "cuda-dclust/main/grow-chains",
        static_cast<std::int64_t>(seeds.size()), [&](std::int64_t s) {
          const std::int32_t chain = first_chain + static_cast<std::int32_t>(s);
          const std::int32_t seed = seeds[static_cast<std::size_t>(s)];
          std::int32_t expected = -1;
          if (!exec::atomic_cas(chain_of[static_cast<std::size_t>(seed)],
                                expected, chain)) {
            return;  // another chain absorbed the seed first
          }
          std::deque<std::int32_t> queue{seed};
          std::vector<std::int32_t> neighbors;
          std::vector<std::pair<std::int32_t, std::int32_t>> local_collisions;
          std::int64_t tested = 0;
          while (!queue.empty()) {
            const std::int32_t x = queue.front();
            queue.pop_front();
            tested +=
                index.neighbors(points[static_cast<std::size_t>(x)], neighbors);
            if (static_cast<std::int32_t>(neighbors.size()) < params.minpts) {
              continue;  // x is not core: absorbed but not expanded
            }
            exec::atomic_store_relaxed(is_core[static_cast<std::size_t>(x)],
                                       std::uint8_t{1});
            for (std::int32_t y : neighbors) {
              if (y == x) continue;
              std::int32_t none = -1;
              if (exec::atomic_cas(chain_of[static_cast<std::size_t>(y)], none,
                                   chain)) {
                queue.push_back(y);
              } else if (none != chain) {
                local_collisions.emplace_back(chain, y);
              }
            }
          }
          distance_tally.local() += tested;
          if (!local_collisions.empty()) {
            auto& sink = collision_tally.local();
            sink.insert(sink.end(), local_collisions.begin(),
                        local_collisions.end());
          }
        });
  }
  // Merge per-thread collision lists in slot order (deterministic for a
  // fixed thread count, unlike the former lock-acquisition order).
  std::vector<std::pair<std::int32_t, std::int32_t>> collisions;
  for (int k = 0; k < collision_tally.num_slots(); ++k) {
    const auto& part = collision_tally.slot(k);
    collisions.insert(collisions.end(), part.begin(), part.end());
  }
  timings.main = timer.lap("cuda-dclust/main", &timings.main_profile);

  // --- Collision resolution (the original's CPU stage) --------------------
  // Chains colliding through a *core* point are density-connected and
  // merge. A collision with a non-core point must NOT merge chains (the
  // "bridging" hazard); instead, if that point heads a stale singleton
  // chain of its own, it is re-attached as a border point.
  const auto num_chains = static_cast<std::int32_t>(chain_seed.size());
  SequentialDSU dsu(num_chains);
  std::vector<std::int32_t> border_reattach(static_cast<std::size_t>(num_chains),
                                            -1);
  for (const auto& [chain, point] : collisions) {
    const std::int32_t other = chain_of[static_cast<std::size_t>(point)];
    if (is_core[static_cast<std::size_t>(point)] != 0) {
      dsu.unite(chain, other);
    } else if (chain_seed[static_cast<std::size_t>(other)] == point &&
               border_reattach[static_cast<std::size_t>(other)] < 0) {
      // `point` seeded a chain but turned out non-core: it is a border
      // point of the colliding chain (first one to reach it wins).
      border_reattach[static_cast<std::size_t>(other)] = chain;
    }
  }

  // A chain forms a cluster only if it contains at least one core point.
  std::vector<std::uint8_t> chain_has_core(static_cast<std::size_t>(num_chains), 0);
  for (std::int32_t p = 0; p < n; ++p) {
    if (is_core[static_cast<std::size_t>(p)] != 0) {
      chain_has_core[static_cast<std::size_t>(
          dsu.find(chain_of[static_cast<std::size_t>(p)]))] = 1;
    }
  }
  std::vector<std::int32_t> cluster_of_chain(static_cast<std::size_t>(num_chains),
                                             kNoise);
  std::int32_t next_cluster = 0;
  for (std::int32_t c = 0; c < num_chains; ++c) {
    const std::int32_t root = dsu.find(c);
    if (chain_has_core[static_cast<std::size_t>(root)] != 0 &&
        cluster_of_chain[static_cast<std::size_t>(root)] == kNoise) {
      cluster_of_chain[static_cast<std::size_t>(root)] = next_cluster++;
    }
  }

  Clustering result;
  result.labels.assign(points.size(), kNoise);
  for (std::int32_t p = 0; p < n; ++p) {
    const auto up = static_cast<std::size_t>(p);
    std::int32_t chain = chain_of[up];
    if (is_core[up] == 0 && chain_seed[static_cast<std::size_t>(chain)] == p &&
        border_reattach[static_cast<std::size_t>(chain)] >= 0) {
      chain = border_reattach[static_cast<std::size_t>(chain)];
    }
    result.labels[up] = cluster_of_chain[static_cast<std::size_t>(dsu.find(chain))];
  }
  if (variant == Variant::kDbscanStar) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (is_core[i] == 0) result.labels[i] = kNoise;
    }
  }
  result.is_core = std::move(is_core);
  result.num_clusters = next_cluster;
  timings.finalization = timer.lap(&timings.finalization_profile);
  result.timings = timings;
  result.distance_computations = distance_tally.combine();
  return result;
}

}  // namespace fdbscan::baselines
