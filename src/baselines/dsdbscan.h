// DSDBSCAN (paper Algorithm 2): the disjoint-set reformulation of DBSCAN
// by Patwary et al. (SC'12) that this work generalizes. Point-level
// parallelism: each point computes its own neighborhood and unions with
// its neighbors; border points are claimed through the same CAS mechanism
// as the tree-based algorithms. Uses the concurrent union-find but a k-d
// tree (per-point asynchronous queries — exactly the execution-divergence
// pattern §3.2 argues against, which the ablation bench quantifies).
#pragma once

#include <vector>

#include "core/clustering.h"
#include "exec/parallel.h"
#include "exec/per_thread.h"
#include "exec/profile.h"
#include "geometry/point.h"
#include "kdtree/kdtree.h"
#include "unionfind/union_find.h"

namespace fdbscan::baselines {

template <int DIM>
[[nodiscard]] Clustering dsdbscan(const std::vector<Point<DIM>>& points,
                                  const Parameters& params,
                                  Variant variant = Variant::kDbscan) {
  const auto n = static_cast<std::int64_t>(points.size());
  const float eps2 = params.eps * params.eps;
  if (n == 0) return {};

  exec::PhaseProfiler timer;
  KdTree<DIM> tree(points);
  PhaseTimings timings;
  timings.index_construction =
      timer.lap("dsdbscan/index", &timings.index_construction_profile);

  // Phase 1: core points (full neighborhood count — Algorithm 2 computes
  // |N| per point; no early exit, that refinement belongs to FDBSCAN).
  exec::PerThread<std::int64_t> distance_tally;
  std::vector<std::uint8_t> is_core(points.size(), 0);
  exec::parallel_for("dsdbscan/pre/neighbor-count", n, [&](std::int64_t i) {
    const auto& p = points[static_cast<std::size_t>(i)];
    std::int32_t count = 0;
    std::int64_t tested = 0;
    tree.for_each_near(
        p, eps2,
        [&](std::int32_t) {
          ++count;
          return KdTree<DIM>::TraversalControlKd::kContinue;
        },
        &tested);
    if (count >= params.minpts) is_core[static_cast<std::size_t>(i)] = 1;
    distance_tally.local() += tested;
  });
  timings.preprocessing =
      timer.lap("dsdbscan/pre", &timings.preprocessing_profile);

  // Phase 2: each core point unions with its neighbors.
  std::vector<std::int32_t> labels(points.size());
  init_singletons(labels);
  UnionFindView uf(labels.data(), static_cast<std::int32_t>(n));
  exec::parallel_for("dsdbscan/main/union", n, [&](std::int64_t i) {
    const auto x = static_cast<std::int32_t>(i);
    if (is_core[static_cast<std::size_t>(x)] == 0) return;
    const auto& p = points[static_cast<std::size_t>(x)];
    std::int64_t tested = 0;
    tree.for_each_near(
        p, eps2,
        [&](std::int32_t y) {
          if (y != x) detail::resolve_pair(uf, is_core, x, y, variant);
          return KdTree<DIM>::TraversalControlKd::kContinue;
        },
        &tested);
    distance_tally.local() += tested;
  });
  timings.main = timer.lap("dsdbscan/main", &timings.main_profile);

  flatten(labels);
  Clustering result =
      detail::finalize_labels(std::move(labels), std::move(is_core));
  timings.finalization =
      timer.lap("dsdbscan/finalize", &timings.finalization_profile);
  result.timings = timings;
  result.distance_computations = distance_tally.combine();
  return result;
}

}  // namespace fdbscan::baselines
