// Mr. Scan-style local clustering (Welton, Samanas & Miller, SC'13).
// §2.2: Mr. Scan modified CUDA-DClust by "identifying core points prior
// to cluster generation" (and cutting host-device transfers). The local
// (single-GPU) kernel reproduced here is therefore *two-phase*: a core
// identification pass over a grid directory index, then a union pass
// where each core point merges with its eps-neighbors — the structural
// midpoint between CUDA-DClust's chains and the paper's framework.
#pragma once

#include <vector>

#include "core/clustering.h"
#include "exec/parallel.h"
#include "exec/per_thread.h"
#include "exec/profile.h"
#include "geometry/point.h"
#include "grid/uniform_grid_index.h"
#include "unionfind/union_find.h"

namespace fdbscan::baselines {

template <int DIM>
[[nodiscard]] Clustering mr_scan(const std::vector<Point<DIM>>& points,
                                 const Parameters& params,
                                 Variant variant = Variant::kDbscan) {
  const auto n = static_cast<std::int64_t>(points.size());
  if (n == 0) return {};

  exec::PhaseProfiler timer;
  UniformGridIndex<DIM> index(points, params.eps);
  PhaseTimings timings;
  timings.index_construction =
      timer.lap("mr-scan/index", &timings.index_construction_profile);

  // Phase 1: core points, before any cluster generation.
  exec::PerThread<std::int64_t> distance_tally;
  std::vector<std::uint8_t> is_core(points.size(), 0);
  exec::parallel_for("mr-scan/pre/neighbor-count", n, [&](std::int64_t i) {
    std::vector<std::int32_t> neighbors;
    const std::int64_t tested =
        index.neighbors(points[static_cast<std::size_t>(i)], neighbors);
    if (static_cast<std::int32_t>(neighbors.size()) >= params.minpts) {
      is_core[static_cast<std::size_t>(i)] = 1;
    }
    distance_tally.local() += tested;
  });
  timings.preprocessing =
      timer.lap("mr-scan/pre", &timings.preprocessing_profile);

  // Phase 2: cluster generation through the disjoint-set structure.
  std::vector<std::int32_t> labels(points.size());
  init_singletons(labels);
  UnionFindView uf(labels.data(), static_cast<std::int32_t>(n));
  exec::parallel_for("mr-scan/main/union", n, [&](std::int64_t i) {
    const auto x = static_cast<std::int32_t>(i);
    if (is_core[static_cast<std::size_t>(x)] == 0) return;
    std::vector<std::int32_t> neighbors;
    const std::int64_t tested =
        index.neighbors(points[static_cast<std::size_t>(x)], neighbors);
    for (std::int32_t y : neighbors) {
      if (y != x) detail::resolve_pair(uf, is_core, x, y, variant);
    }
    distance_tally.local() += tested;
  });
  timings.main = timer.lap("mr-scan/main", &timings.main_profile);

  flatten(labels);
  Clustering result =
      detail::finalize_labels(std::move(labels), std::move(is_core));
  timings.finalization =
      timer.lap("mr-scan/finalize", &timings.finalization_profile);
  result.timings = timings;
  result.distance_computations = distance_tally.combine();
  return result;
}

}  // namespace fdbscan::baselines
