// Streaming clustering sessions: incremental insert/expire on a warm
// Engine (DESIGN.md §14).
//
// A StreamingEngine owns a *mutable logical point set* ordered by
// arrival: every inserted point gets a monotone sequence number, and
// expire(before_seq) retires the oldest prefix (the sliding-window
// pattern of trajectory workloads). The structures:
//
//   * base_   — points covered by the eps-independent point BVH of an
//     inner Engine (core/engine.h). Built by the last full Morton
//     re-sort; never mutated in place.
//   * delta_  — the side buffer: points inserted since the last rebuild,
//     mirrored into a padded SoA so membership probes run through the
//     exec/simd.h lane-group kernels (count_within / for_each_within).
//   * live_begin_ — lazy expiry. Sequence numbers are assigned in slot
//     order (base first, then delta), so the retired set is always a
//     slot *prefix*: expire just advances one cursor and dead base
//     points are filtered out of BVH probe results by an id compare.
//
// A query clusters the live set with the same two-phase kernels as
// Engine::run — core counting, then fused traverse+union — except every
// neighborhood probe is the union of a (dead-filtered) BVH traversal
// over base_ and a lane-group scan over the live delta. Because the
// logical point set and the resolved edge set are exactly those of a
// from-scratch run, labels are equivalent (up to cluster renumbering and
// the usual border-claim freedom) and core flags are bit-identical to
// re-clustering the same points from scratch — at any worker count,
// under both SIMD and scalar backends (tests/test_stream.cpp).
//
// Incremental union-find (Wang/Gu/Shun-style cheap re-finalization):
// query parameters are pinned at construction, so the union-find
// parents, saturating neighbor counts and core flags persist across
// queries. An insert() while that state is valid only processes the new
// points' edges: counts of existing neighbors are bumped atomically,
// points whose count crosses minpts flip to core and get their edge
// lists reprocessed, and the next query is just flatten + finalize.
// expire() invalidates the union-find lazily (removals can split
// clusters); the next query recomputes counts + union-find over the
// live set but still reuses the BVH. A full Morton re-sort + rebuild
// runs only when pending work (live delta + dead prefix) exceeds
// StreamConfig::rebuild_fraction of the live set.
//
// Thread-safety: like Engine — one streaming engine, one concurrent
// operation (the service session layer serializes per session). A
// cancelled insert() rolls the batch back (the logical point set is
// unchanged) and costs only the incremental state; a cancelled query()
// costs the incremental state (the next query does a full refresh).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "bvh/bvh.h"
#include "core/clustering.h"
#include "core/engine.h"
#include "exec/cancel.h"
#include "exec/per_thread.h"
#include "exec/profile.h"
#include "exec/simd.h"
#include "geometry/point.h"
#include "geometry/points_view.h"
#include "unionfind/union_find.h"

namespace fdbscan::stream {

struct StreamConfig {
  /// Rebuild threshold: a mutation triggers a full Morton re-sort +
  /// BVH rebuild when (live delta points + retired slots) exceeds this
  /// fraction of the live point count. Env (service sessions):
  /// FDBSCAN_SESSION_REBUILD_PCT.
  float rebuild_fraction = 0.25f;
  /// Forwarded to the inner Engine (grid cache capacity, memory).
  EngineConfig engine{};
};

/// Cumulative counters since construction (the streaming analogue of
/// EngineCounters).
struct StreamCounters {
  std::int64_t inserts = 0;          ///< insert() batches
  std::int64_t points_inserted = 0;
  std::int64_t expires = 0;          ///< expire() calls retiring >= 1 point
  std::int64_t points_expired = 0;
  std::int64_t queries = 0;
  /// BVH constructions: the lazy first build plus every threshold
  /// rebuild (each rebuild is one Morton re-sort + build).
  std::int64_t index_rebuilds = 0;
  std::int64_t incremental_inserts = 0;  ///< batches absorbed into a live UF
  std::int64_t full_refreshes = 0;   ///< queries recomputing counts + UF
  std::int64_t refinalized_queries = 0;  ///< queries served by flatten+finalize
};

template <int DIM>
class StreamingEngine {
 public:
  /// Query parameters are pinned per streaming engine: the incremental
  /// union-find state is only meaningful for one (eps, minpts, variant).
  StreamingEngine(Parameters params, Options options = {},
                  StreamConfig config = {})
      : params_(params), options_(options), config_(config) {
    reset_engine();
  }

  /// Seeds the stream with an initial point set (sequence numbers
  /// 0..initial.size()-1, already "inserted").
  StreamingEngine(std::vector<Point<DIM>> initial, Parameters params,
                  Options options = {}, StreamConfig config = {})
      : params_(params), options_(options), config_(config),
        base_(std::move(initial)) {
    reset_engine();
  }

  StreamingEngine(const StreamingEngine&) = delete;
  StreamingEngine& operator=(const StreamingEngine&) = delete;

  [[nodiscard]] const Parameters& params() const noexcept { return params_; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }
  [[nodiscard]] const StreamConfig& config() const noexcept { return config_; }

  /// Live (non-retired) point count.
  [[nodiscard]] std::int64_t size() const noexcept {
    return total_slots() - live_begin_;
  }
  /// Sequence number the next inserted point will get.
  [[nodiscard]] std::int64_t next_seq() const noexcept {
    return seq0_ + total_slots();
  }
  /// Sequence number of the oldest live point (== next_seq when empty).
  [[nodiscard]] std::int64_t first_live_seq() const noexcept {
    return seq0_ + live_begin_;
  }

  [[nodiscard]] StreamCounters counters() const noexcept {
    StreamCounters c = counters_;
    c.index_rebuilds = total_index_builds();
    return c;
  }

  /// The live logical point set in sequence order — exactly the vector a
  /// from-scratch equivalence reference must cluster.
  [[nodiscard]] std::vector<Point<DIM>> live_points() const {
    std::vector<Point<DIM>> out;
    out.reserve(static_cast<std::size_t>(size()));
    for (std::int64_t s = live_base_begin(); s < base_n(); ++s) {
      out.push_back(base_[static_cast<std::size_t>(s)]);
    }
    for (std::int64_t j = delta_live_begin(); j < delta_n(); ++j) {
      out.push_back(delta_[static_cast<std::size_t>(j)]);
    }
    return out;
  }

  /// Appends `points` to the stream; returns the sequence number of the
  /// first appended point. While the incremental union-find is valid
  /// (no expire since the last query), the batch is folded into it:
  /// neighbor counts of existing points are bumped, minpts-crossers flip
  /// to core and have their edges reprocessed, and new edges are
  /// resolved with the post-batch core flags — so the next query only
  /// re-finalizes. A cancellation mid-insert rolls the batch back.
  std::int64_t insert(std::span<const Point<DIM>> points) {
    exec::throw_if_cancelled();
    const std::int64_t first = next_seq();
    const auto k = static_cast<std::int64_t>(points.size());
    if (k == 0) return first;
    const std::int64_t old_nd = delta_n();
    const std::int64_t n_old = size();
    append_to_delta(points);
    if (uf_valid_) {
      try {
        absorb_batch(n_old, k);
        ++counters_.incremental_inserts;
      } catch (...) {
        // Roll the batch back: the logical point set is unchanged, and
        // the (possibly torn) counts/union-find are discarded — the
        // next query recomputes them from the live set.
        truncate_delta(old_nd);
        counts_.resize(static_cast<std::size_t>(n_old));
        is_core_.resize(static_cast<std::size_t>(n_old));
        uf_.resize(static_cast<std::size_t>(n_old));
        uf_valid_ = false;
        throw;
      }
    }
    // Count the insert only once the batch has logically taken effect —
    // a rolled-back (cancelled) absorb must not inflate StreamCounters.
    ++counters_.inserts;
    counters_.points_inserted += k;
    maybe_rebuild();
    return first;
  }

  std::int64_t insert(const std::vector<Point<DIM>>& points) {
    return insert(std::span<const Point<DIM>>(points.data(), points.size()));
  }

  /// Retires every point with sequence number < before_seq (a no-op for
  /// already-retired prefixes). Lazy: dead points are masked out of
  /// probes until the rebuild threshold trips. Removals can split
  /// clusters, so the incremental union-find is invalidated — the next
  /// query does a full refresh (BVH still amortized). Returns the
  /// number of points retired by this call.
  std::int64_t expire(std::int64_t before_seq) {
    exec::throw_if_cancelled();
    const std::int64_t target =
        std::clamp<std::int64_t>(before_seq - seq0_, live_begin_,
                                 total_slots());
    const std::int64_t expired = target - live_begin_;
    if (expired > 0) {
      live_begin_ = target;
      uf_valid_ = false;
      ++counters_.expires;
      counters_.points_expired += expired;
      maybe_rebuild();
    }
    return expired;
  }

  /// Clusters the live point set under the pinned parameters. Labels are
  /// indexed in sequence order over the live set (live_points() order).
  /// timings.index_rebuilds reports the BVH builds since the previous
  /// query — 0 for any query whose preceding mutations stayed below the
  /// rebuild threshold.
  [[nodiscard]] Clustering query() {
    exec::throw_if_cancelled();
    ++counters_.queries;
    const std::int64_t n = size();
    exec::PhaseProfiler timer;
    PhaseTimings timings;
    timings.engine_run = true;
    if (n == 0) {
      Clustering empty;
      empty.timings = timings;
      empty.timings.index_rebuilds = take_rebuilds_since_last_query();
      return empty;
    }
    exec::ScopedCharge charge(
        options_.memory,
        static_cast<std::size_t>(n) *
            (sizeof(std::int32_t) + sizeof(std::uint8_t)));
    // Index phase: the lazy first build of the base BVH lands here, like
    // Engine::run's first call; threshold rebuilds happen on mutations.
    if (live_base_count() > 0) (void)engine_->index();
    timings.index_construction =
        timer.lap("stream/index", &timings.index_construction_profile);

    exec::PerThread<TraversalStats> work;
    if (!uf_valid_) {
      full_refresh(n, timer, timings, work);
      ++counters_.full_refreshes;
    } else {
      ++counters_.refinalized_queries;
      timings.preprocessing =
          timer.lap("stream/pre", &timings.preprocessing_profile);
      timings.main = timer.lap("stream/main", &timings.main_profile);
    }

    // Finalization: flatten in place (idempotent), finalize over a copy
    // of the core flags — the persistent flags feed future inserts.
    flatten(uf_.data(), static_cast<std::int32_t>(n));
    std::vector<std::uint8_t> core_copy(is_core_.begin(), is_core_.end());
    std::vector<std::int32_t> compact(static_cast<std::size_t>(n));
    Clustering result = fdbscan::detail::finalize_labels_with_scratch(
        uf_.data(), n, std::move(core_copy), compact.data());
    timings.finalization =
        timer.lap("stream/finalize", &timings.finalization_profile);
    result.timings = timings;
    result.timings.index_rebuilds = take_rebuilds_since_last_query();
    // Probes done by incremental inserts since the previous query count
    // toward this query's stats: a refinalized query's answer embodies
    // that traversal work.
    TraversalStats total = work.combine();
    total += pending_insert_stats_;
    pending_insert_stats_ = {};
    result.distance_computations = total.leaves_tested;
    result.index_nodes_visited = total.nodes_visited;
    if (options_.memory) result.peak_memory_bytes = options_.memory->peak();
    return result;
  }

 private:
  // ---- slot-space geometry ------------------------------------------------
  [[nodiscard]] std::int64_t base_n() const noexcept {
    return static_cast<std::int64_t>(base_.size());
  }
  [[nodiscard]] std::int64_t delta_n() const noexcept {
    return static_cast<std::int64_t>(delta_.size());
  }
  [[nodiscard]] std::int64_t total_slots() const noexcept {
    return base_n() + delta_n();
  }
  [[nodiscard]] std::int64_t live_base_begin() const noexcept {
    return std::min(live_begin_, base_n());
  }
  [[nodiscard]] std::int64_t delta_live_begin() const noexcept {
    return std::max<std::int64_t>(0, live_begin_ - base_n());
  }
  [[nodiscard]] std::int64_t live_base_count() const noexcept {
    return base_n() - live_base_begin();
  }

  [[nodiscard]] Point<DIM> logical_point(std::int64_t i) const noexcept {
    const std::int64_t nb = live_base_count();
    if (i < nb) {
      return base_[static_cast<std::size_t>(live_base_begin() + i)];
    }
    return delta_[static_cast<std::size_t>(delta_live_begin() + (i - nb))];
  }

  [[nodiscard]] std::array<const float*, DIM> delta_axes() const noexcept {
    std::array<const float*, DIM> axes{};
    for (int d = 0; d < DIM; ++d) {
      axes[static_cast<std::size_t>(d)] =
          delta_axes_[static_cast<std::size_t>(d)].data();
    }
    return axes;
  }

  // ---- delta side buffer --------------------------------------------------
  void append_to_delta(std::span<const Point<DIM>> points) {
    const auto k = static_cast<std::int64_t>(points.size());
    const std::int64_t n = delta_n();
    for (int d = 0; d < DIM; ++d) {
      auto& axis = delta_axes_[static_cast<std::size_t>(d)];
      axis.resize(static_cast<std::size_t>(n + k + kSoaPadding),
                  std::numeric_limits<float>::infinity());
      for (std::int64_t j = 0; j < k; ++j) {
        axis[static_cast<std::size_t>(n + j)] =
            points[static_cast<std::size_t>(j)][d];
      }
    }
    delta_.insert(delta_.end(), points.begin(), points.end());
  }

  void truncate_delta(std::int64_t n) {
    delta_.resize(static_cast<std::size_t>(n));
    for (int d = 0; d < DIM; ++d) {
      auto& axis = delta_axes_[static_cast<std::size_t>(d)];
      axis.resize(static_cast<std::size_t>(n + kSoaPadding));
      std::fill(axis.begin() + static_cast<std::ptrdiff_t>(n), axis.end(),
                std::numeric_limits<float>::infinity());
    }
  }

  // ---- neighborhood probes (BVH over base + lane-group delta scan) --------
  /// Saturating neighbor count of `p` over the live set (includes the
  /// probe point itself when it is a member). early_stop <= 0 disables
  /// the early exit; with early_stop = minpts the returned value is
  /// exact below minpts and saturated (>= minpts) above — exactly what
  /// core determination and crossing detection compare against.
  [[nodiscard]] std::int32_t count_live_neighbors(const Point<DIM>& p,
                                                  float eps2,
                                                  std::int32_t early_stop,
                                                  TraversalStats& stats,
                                                  std::int64_t& scans) const {
    std::int32_t count = 0;
    const auto base_live = static_cast<std::int32_t>(live_base_begin());
    if (live_base_count() > 0) {
      bvh_unchecked().for_each_near(
          p, eps2, 0,
          [&](std::int32_t, std::int32_t id) {
            if (id >= base_live) {
              ++count;
              if (early_stop > 0 && count >= early_stop) {
                return TraversalControl::kTerminate;
              }
            }
            return TraversalControl::kContinue;
          },
          &stats);
    }
    const auto lo = static_cast<std::int32_t>(delta_live_begin());
    const auto hi = static_cast<std::int32_t>(delta_n());
    if (lo < hi && !(early_stop > 0 && count >= early_stop)) {
      count += simd::count_within<DIM>(
          delta_axes(), lo, hi, p, eps2,
          early_stop > 0 ? early_stop - count : std::int32_t{0}, scans);
    }
    return count;
  }

  /// Invokes f(logical_id) for every live point within eps of `p`
  /// (including `p` itself when it is a member). Never early-stops:
  /// callers need the complete edge set.
  template <class F>
  void for_each_live_neighbor(const Point<DIM>& p, float eps2,
                              TraversalStats& stats, std::int64_t& scans,
                              F&& f) const {
    const auto base_live = static_cast<std::int32_t>(live_base_begin());
    const auto nb = static_cast<std::int32_t>(live_base_count());
    if (nb > 0) {
      bvh_unchecked().for_each_near(
          p, eps2, 0,
          [&](std::int32_t, std::int32_t id) {
            if (id >= base_live) f(id - base_live);
            return TraversalControl::kContinue;
          },
          &stats);
    }
    const auto lo = static_cast<std::int32_t>(delta_live_begin());
    const auto hi = static_cast<std::int32_t>(delta_n());
    if (lo < hi) {
      simd::for_each_within<DIM>(delta_axes(), lo, hi, p, eps2, scans,
                                 [&](std::int32_t m) { f(nb + (m - lo)); });
    }
  }

  /// The base BVH. Only called when live_base_count() > 0, after query()
  /// or rebuild() already forced the build — so this never builds.
  [[nodiscard]] const Bvh<DIM>& bvh_unchecked() const { return *base_bvh_; }

  void ensure_base_bvh() {
    base_bvh_ = live_base_count() > 0 ? &engine_->index() : nullptr;
  }

  // ---- full refresh (query after expiry / first query) --------------------
  void full_refresh(std::int64_t n, exec::PhaseProfiler& timer,
                    PhaseTimings& timings,
                    exec::PerThread<TraversalStats>& work) {
    uf_valid_ = false;  // torn state on cancellation, until fully rebuilt
    ensure_base_bvh();
    const float eps2 = params_.eps * params_.eps;
    counts_.assign(static_cast<std::size_t>(n), 0);
    is_core_.assign(static_cast<std::size_t>(n), 0);
    uf_.resize(static_cast<std::size_t>(n));
    if (params_.minpts <= 1) {
      exec::parallel_for("stream/pre/all-core", n, [&](std::int64_t i) {
        is_core_[static_cast<std::size_t>(i)] = 1;
      });
    } else {
      const std::int32_t early =
          options_.early_exit ? params_.minpts : std::int32_t{0};
      exec::parallel_for("stream/pre/core-count", n, [&](std::int64_t i) {
        TraversalStats stats;
        std::int64_t scans = 0;
        const std::int32_t c = count_live_neighbors(
            logical_point(i), eps2, early, stats, scans);
        counts_[static_cast<std::size_t>(i)] = c;
        if (c >= params_.minpts) is_core_[static_cast<std::size_t>(i)] = 1;
        stats.leaves_tested += scans;
        work.local() += stats;
      });
    }
    timings.preprocessing =
        timer.lap("stream/pre", &timings.preprocessing_profile);

    init_singletons(uf_.data(), static_cast<std::int32_t>(n));
    UnionFindView uf(uf_.data(), static_cast<std::int32_t>(n));
    exec::parallel_for("stream/main/traverse-union", n, [&](std::int64_t i) {
      const auto x = static_cast<std::int32_t>(i);
      TraversalStats stats;
      std::int64_t scans = 0;
      for_each_live_neighbor(
          logical_point(i), eps2, stats, scans, [&](std::int32_t y) {
            if (y != x) {
              fdbscan::detail::resolve_pair(uf, is_core_, x, y,
                                            options_.variant);
            }
          });
      stats.leaves_tested += scans;
      work.local() += stats;
    });
    timings.main = timer.lap("stream/main", &timings.main_profile);
    uf_valid_ = true;
  }

  // ---- incremental insert -------------------------------------------------
  /// Folds the freshly appended batch (logical ids [n_old, n_old + k))
  /// into the valid union-find. Three passes so every edge is resolved
  /// with the *post-batch* core flags, like a from-scratch run:
  /// count, flip, resolve. Probe work lands in pending_insert_stats_,
  /// which the next query() folds into its reported traversal stats.
  void absorb_batch(std::int64_t n_old, std::int64_t k) {
    ensure_base_bvh();
    exec::PerThread<TraversalStats> work;
    const float eps2 = params_.eps * params_.eps;
    const std::int64_t n_new = n_old + k;
    counts_.resize(static_cast<std::size_t>(n_new), 0);
    is_core_.resize(static_cast<std::size_t>(n_new), 0);
    uf_.resize(static_cast<std::size_t>(n_new));
    for (std::int64_t i = n_old; i < n_new; ++i) {
      uf_[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(i);
    }
    UnionFindView uf(uf_.data(), static_cast<std::int32_t>(n_new));

    std::vector<std::int32_t> flipped;
    if (params_.minpts > 1) {
      // Pass 1: full neighbor enumeration of each new point — its own
      // exact count, plus an atomic bump for every *existing* neighbor
      // (batch-batch contributions are symmetric: each endpoint counts
      // the other in its own enumeration). A bump whose previous value
      // was minpts - 1 crossed the threshold exactly once.
      std::mutex flip_mutex;
      exec::parallel_for("stream/insert/count", k, [&](std::int64_t j) {
        const std::int64_t q = n_old + j;
        TraversalStats stats;
        std::int64_t scans = 0;
        std::int32_t count = 0;
        for_each_live_neighbor(
            logical_point(q), eps2, stats, scans, [&](std::int32_t y) {
              ++count;  // includes q itself and batch members
              if (y < n_old) {
                const std::int32_t prev = exec::atomic_fetch_add(
                    counts_[static_cast<std::size_t>(y)], std::int32_t{1});
                if (prev == params_.minpts - 1) {
                  std::lock_guard<std::mutex> lock(flip_mutex);
                  flipped.push_back(y);
                }
              }
            });
        counts_[static_cast<std::size_t>(q)] = count;
        stats.leaves_tested += scans;
        work.local() += stats;
      });
      // Pass 2: core flags with the post-batch counts.
      for (std::int64_t j = 0; j < k; ++j) {
        const auto q = static_cast<std::size_t>(n_old + j);
        if (counts_[q] >= params_.minpts) is_core_[q] = 1;
      }
      for (const std::int32_t y : flipped) {
        is_core_[static_cast<std::size_t>(y)] = 1;
      }
    } else {
      for (std::int64_t j = 0; j < k; ++j) {
        is_core_[static_cast<std::size_t>(n_old + j)] = 1;
      }
    }

    // Pass 3: resolve every edge incident to the batch, plus the full
    // edge lists of flipped points (their core-suppressed edges to *old*
    // neighbors just became active). minpts == 2 flips need no
    // reprocessing: a flipped point had no prior neighbors, so all its
    // edges touch the batch and are resolved from the batch side.
    const std::int64_t flips =
        params_.minpts > 2 ? static_cast<std::int64_t>(flipped.size()) : 0;
    exec::parallel_for("stream/insert/resolve", k + flips,
                       [&](std::int64_t t) {
      const std::int64_t x64 =
          t < k ? n_old + t : flipped[static_cast<std::size_t>(t - k)];
      const auto x = static_cast<std::int32_t>(x64);
      TraversalStats stats;
      std::int64_t scans = 0;
      for_each_live_neighbor(
          logical_point(x64), eps2, stats, scans, [&](std::int32_t y) {
            if (y != x) {
              fdbscan::detail::resolve_pair(uf, is_core_, x, y,
                                            options_.variant);
            }
          });
      stats.leaves_tested += scans;
      work.local() += stats;
    });
    pending_insert_stats_ += work.combine();
  }

  // ---- rebuild ------------------------------------------------------------
  void maybe_rebuild() {
    const std::int64_t n = size();
    if (n == 0) {
      if (total_slots() > 0) rebuild();  // free retired storage
      return;
    }
    const std::int64_t pending = (delta_n() - delta_live_begin()) +
                                 live_begin_;
    if (static_cast<double>(pending) >
        static_cast<double>(config_.rebuild_fraction) *
            static_cast<double>(n)) {
      rebuild();
    }
  }

  /// Compacts the live set (sequence order preserved) into a fresh base
  /// and pays the Morton re-sort + BVH build here, at mutation time.
  /// Logical ids are unchanged, so the incremental union-find survives.
  void rebuild() {
    std::vector<Point<DIM>> next;
    next.reserve(static_cast<std::size_t>(size()));
    for (std::int64_t s = live_base_begin(); s < base_n(); ++s) {
      next.push_back(base_[static_cast<std::size_t>(s)]);
    }
    for (std::int64_t j = delta_live_begin(); j < delta_n(); ++j) {
      next.push_back(delta_[static_cast<std::size_t>(j)]);
    }
    seq0_ += live_begin_;
    if (engine_) retired_index_builds_ += engine_->counters().index_builds;
    engine_.reset();  // borrows base_: destroy before reassigning
    base_bvh_ = nullptr;
    base_ = std::move(next);
    truncate_delta(0);
    live_begin_ = 0;
    reset_engine();
    // Eager build: pay the Morton re-sort + BVH construction at mutation
    // time, not on the next query. Best-effort — by this point the
    // mutation has logically taken effect, so a cancellation (or OOM)
    // inside the warm-up build must not turn a completed insert/expire
    // into a reported failure. The build simply stays lazy and the next
    // query pays it (rethrowing whatever condition persists).
    if (!base_.empty()) {
      try {
        (void)engine_->index();
      } catch (...) {
        base_bvh_ = nullptr;
      }
    }
  }

  void reset_engine() {
    engine_ = std::make_unique<Engine<DIM>>(base_, config_.engine);
    base_bvh_ = nullptr;
  }

  [[nodiscard]] std::int64_t total_index_builds() const noexcept {
    return retired_index_builds_ +
           (engine_ ? engine_->counters().index_builds : 0);
  }

  [[nodiscard]] std::int32_t take_rebuilds_since_last_query() noexcept {
    const std::int64_t total = total_index_builds();
    const auto delta = static_cast<std::int32_t>(
        total - index_builds_at_last_query_);
    index_builds_at_last_query_ = total;
    return delta;
  }

  Parameters params_;
  Options options_;
  StreamConfig config_;

  std::vector<Point<DIM>> base_;   // BVH-covered slots, sequence order
  std::vector<Point<DIM>> delta_;  // side-buffer slots appended after base
  std::array<std::vector<float>, DIM> delta_axes_{};  // +inf padded SoA
  std::int64_t seq0_ = 0;          // sequence number of slot 0
  std::int64_t live_begin_ = 0;    // slots below this are retired

  std::unique_ptr<Engine<DIM>> engine_;  // owns the base BVH + its memory
  const Bvh<DIM>* base_bvh_ = nullptr;   // cached engine_->index()

  // Incremental session state over logical ids (0 = oldest live point).
  std::vector<std::int32_t> uf_;        // union-find parents
  std::vector<std::int32_t> counts_;    // saturating |N_eps|
  std::vector<std::uint8_t> is_core_;
  bool uf_valid_ = false;
  /// Probe work of incremental inserts since the last query; folded
  /// into (and cleared by) the next query's reported traversal stats.
  TraversalStats pending_insert_stats_{};

  std::int64_t retired_index_builds_ = 0;  // builds of replaced engines
  std::int64_t index_builds_at_last_query_ = 0;
  StreamCounters counters_;
};

}  // namespace fdbscan::stream
