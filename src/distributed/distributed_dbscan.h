// Distributed-memory DBSCAN simulation — the paper's §6 future-work
// direction ("combining the proposed approach with distributed
// computations") and its §1 claim that "the local DBSCAN implementation
// is an inherent component of a full distributed algorithm [and] can be
// easily plugged into most distributed frameworks".
//
// The scheme follows the classic PDSDBSCAN-D / Mr. Scan decomposition:
//   1. the domain is split into a regular grid of ranks; each rank owns
//      the points inside its box;
//   2. halo exchange: each rank additionally receives *ghost* copies of
//      all remote points within eps of its box — exactly the set needed
//      to answer any eps-range query about an owned point locally;
//   3. every rank runs the paper's two-phase local algorithm (batched
//      BVH traversal + union-find) over its owned points;
//   4. cross-rank density connections resolve through the union-find:
//      each eps-close pair is processed by the rank owning its
//      lower-id endpoint, so every edge — local or cross-boundary — is
//      handled exactly once.
//
// Ranks execute sequentially here (they model separate address spaces;
// only the ghost exchange and the label array stand in for messages),
// while each rank's kernels use the data-parallel runtime, mirroring the
// paper's MPI+GPU layering. RankStats expose the communication volume a
// real exchange would ship. The concurrent-shards incarnation of the
// same decomposition lives in shard/sharded_engine.h.
#pragma once

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bvh/bvh.h"
#include "core/cluster.h"
#include "core/clustering.h"
#include "core/status.h"
#include "exec/per_thread.h"
#include "exec/timer.h"
#include "geometry/box.h"
#include "geometry/point.h"
#include "unionfind/union_find.h"

namespace fdbscan::distributed {

template <int DIM>
struct DistributedConfig {
  /// Ranks per dimension; the total rank count is their product.
  std::int32_t ranks_per_dim[DIM] = {};

  DistributedConfig() {
    for (int d = 0; d < DIM; ++d) ranks_per_dim[d] = 1;
  }

  [[nodiscard]] std::int32_t num_ranks() const noexcept {
    std::int32_t r = 1;
    for (int d = 0; d < DIM; ++d) r *= ranks_per_dim[d];
    return r;
  }
};

/// Per-rank decomposition statistics (the would-be communication volume).
struct RankStats {
  std::int32_t owned = 0;
  std::int32_t ghosts = 0;          ///< halo points received from peers
  std::int64_t cross_rank_edges = 0;  ///< eps-pairs resolved across ranks
  std::int32_t index_builds = 0;    ///< local BVH constructions (1 per rank
                                    ///< with owned points, 0 otherwise)
};

template <int DIM>
struct DistributedResult {
  Clustering clustering;
  std::vector<RankStats> ranks;

  [[nodiscard]] std::int64_t total_ghosts() const noexcept {
    std::int64_t g = 0;
    for (const auto& r : ranks) g += r.ghosts;
    return g;
  }
};

template <int DIM>
[[nodiscard]] DistributedResult<DIM> distributed_dbscan(
    const std::vector<Point<DIM>>& points, const Parameters& params,
    const DistributedConfig<DIM>& config, const Options& options = {}) {
  const auto n = static_cast<std::int64_t>(points.size());
  const float eps2 = params.eps * params.eps;
  const std::int32_t num_ranks = config.num_ranks();
  if (num_ranks <= 0) {
    throw std::invalid_argument("distributed_dbscan: ranks must be positive");
  }
  DistributedResult<DIM> result;
  result.ranks.resize(static_cast<std::size_t>(num_ranks));
  if (n == 0) return result;

  exec::Timer timer;
  PhaseTimings timings;

  // --- Decomposition --------------------------------------------------------
  const Box<DIM> domain = bounds_of(points.data(), points.size());
  auto rank_box = [&](std::int32_t rank) {
    Box<DIM> box;
    std::int32_t rest = rank;
    for (int d = DIM - 1; d >= 0; --d) {
      const std::int32_t r = rest % config.ranks_per_dim[d];
      rest /= config.ranks_per_dim[d];
      const float width = (domain.max[d] - domain.min[d]) /
                          static_cast<float>(config.ranks_per_dim[d]);
      box.min[d] = domain.min[d] + width * static_cast<float>(r);
      box.max[d] = box.min[d] + width;
    }
    return box;
  };
  auto owner_of = [&](const Point<DIM>& p) {
    std::int32_t rank = 0;
    for (int d = 0; d < DIM; ++d) {
      const float width = (domain.max[d] - domain.min[d]) /
                          static_cast<float>(config.ranks_per_dim[d]);
      std::int32_t r =
          width > 0.0f
              ? static_cast<std::int32_t>((p[d] - domain.min[d]) / width)
              : 0;
      r = std::clamp<std::int32_t>(r, 0, config.ranks_per_dim[d] - 1);
      rank = rank * config.ranks_per_dim[d] + r;
    }
    return rank;
  };

  std::vector<std::int32_t> owner(points.size());
  exec::parallel_for("distributed/decompose/owner", n, [&](std::int64_t i) {
    owner[static_cast<std::size_t>(i)] =
        owner_of(points[static_cast<std::size_t>(i)]);
  });

  // Halo exchange: local index lists per rank — owned first, ghosts after.
  std::vector<std::vector<std::int32_t>> local_ids(
      static_cast<std::size_t>(num_ranks));
  std::vector<std::int32_t> owned_count(static_cast<std::size_t>(num_ranks));
  for (std::int32_t r = 0; r < num_ranks; ++r) {
    const Box<DIM> box = rank_box(r);
    auto& ids = local_ids[static_cast<std::size_t>(r)];
    for (std::int32_t i = 0; i < n; ++i) {
      if (owner[static_cast<std::size_t>(i)] == r) ids.push_back(i);
    }
    owned_count[static_cast<std::size_t>(r)] =
        static_cast<std::int32_t>(ids.size());
    for (std::int32_t i = 0; i < n; ++i) {
      if (owner[static_cast<std::size_t>(i)] != r &&
          squared_distance(points[static_cast<std::size_t>(i)], box) <= eps2) {
        ids.push_back(i);  // ghost
      }
    }
    result.ranks[static_cast<std::size_t>(r)].owned =
        owned_count[static_cast<std::size_t>(r)];
    result.ranks[static_cast<std::size_t>(r)].ghosts =
        static_cast<std::int32_t>(ids.size()) -
        owned_count[static_cast<std::size_t>(r)];
  }
  timings.preprocessing = timer.lap();  // decomposition + halo exchange

  // --- Per-rank local index: gather + one BVH build per rank ---------------
  // Built once and reused by both phases below; a rank that owns nothing
  // answers no queries and builds no index.
  std::vector<std::vector<Point<DIM>>> rank_points(
      static_cast<std::size_t>(num_ranks));
  std::vector<std::unique_ptr<Bvh<DIM>>> rank_bvh(
      static_cast<std::size_t>(num_ranks));
  for (std::int32_t r = 0; r < num_ranks; ++r) {
    const auto& ids = local_ids[static_cast<std::size_t>(r)];
    if (owned_count[static_cast<std::size_t>(r)] == 0) continue;
    auto& local_points = rank_points[static_cast<std::size_t>(r)];
    local_points.resize(ids.size());
    exec::parallel_for("distributed/index/gather-local",
                       static_cast<std::int64_t>(ids.size()),
                       [&](std::int64_t k) {
                         local_points[static_cast<std::size_t>(k)] =
                             points[static_cast<std::size_t>(
                                 ids[static_cast<std::size_t>(k)])];
                       });
    rank_bvh[static_cast<std::size_t>(r)] =
        std::make_unique<Bvh<DIM>>(local_points);
    result.ranks[static_cast<std::size_t>(r)].index_builds = 1;
  }
  timings.index_construction = timer.lap();

  // --- Per-rank local clustering against the global label array ------------
  std::vector<std::uint8_t> is_core(points.size(), 0);
  std::vector<std::int32_t> labels(points.size());
  init_singletons(labels);
  UnionFindView uf(labels.data(), static_cast<std::int32_t>(n));
  const bool fof = params.minpts == 2;
  exec::PerThread<TraversalStats> work;

  for (std::int32_t r = 0; r < num_ranks; ++r) {
    const auto& ids = local_ids[static_cast<std::size_t>(r)];
    const std::int32_t owned = owned_count[static_cast<std::size_t>(r)];
    if (owned == 0) continue;
    const auto& local_points = rank_points[static_cast<std::size_t>(r)];
    const Bvh<DIM>& bvh = *rank_bvh[static_cast<std::size_t>(r)];

    // Preprocessing: core status of the rank's owned points. The halo
    // guarantees every eps-neighbor of an owned point is local, so the
    // count is exact.
    if (params.minpts <= 1) {
      exec::parallel_for("distributed/pre/all-core", owned, [&](std::int64_t k) {
        is_core[static_cast<std::size_t>(ids[static_cast<std::size_t>(k)])] = 1;
      });
    } else if (params.minpts > 2) {
      exec::parallel_for("distributed/pre/core-count", owned,
                         [&](std::int64_t k) {
        const auto& p = local_points[static_cast<std::size_t>(k)];
        std::int32_t count = 0;
        TraversalStats stats;  // stack-local: increments stay in registers
        bvh.for_each_near(
            p, eps2,
            [&](std::int32_t, std::int32_t) {
              ++count;
              return (options.early_exit && count >= params.minpts)
                         ? TraversalControl::kTerminate
                         : TraversalControl::kContinue;
            },
            &stats);
        if (count >= params.minpts) {
          is_core[static_cast<std::size_t>(
              ids[static_cast<std::size_t>(k)])] = 1;
        }
        work.local() += stats;
      });
    }
  }

  // Core flags for ghosts come "from their owner" — in this simulation
  // they are already in the shared array; a real implementation would
  // exchange them here.
  timings.preprocessing += timer.lap();

  for (std::int32_t r = 0; r < num_ranks; ++r) {
    const auto& ids = local_ids[static_cast<std::size_t>(r)];
    const std::int32_t owned = owned_count[static_cast<std::size_t>(r)];
    if (owned == 0) continue;
    const auto& local_points = rank_points[static_cast<std::size_t>(r)];
    const Bvh<DIM>& bvh = *rank_bvh[static_cast<std::size_t>(r)];
    auto& stats_out = result.ranks[static_cast<std::size_t>(r)];

    // Main phase over owned points. Pair-once rule: the rank owning the
    // globally-smaller id resolves the edge (it always holds both
    // endpoints thanks to the halo).
    exec::PerThread<std::int64_t> cross_edges;
    exec::parallel_for("distributed/main/traverse-union", owned,
                       [&](std::int64_t k) {
      const std::int32_t x = ids[static_cast<std::size_t>(k)];
      const auto& p = local_points[static_cast<std::size_t>(k)];
      std::int64_t local_cross = 0;
      TraversalStats stats;
      bvh.for_each_near(
          p, eps2,
          [&](std::int32_t, std::int32_t local_y) {
            const std::int32_t y = ids[static_cast<std::size_t>(local_y)];
            if (y > x) {
              if (local_y >= owned) ++local_cross;  // ghost endpoint
              if (fof) {
                exec::atomic_store_relaxed(is_core[static_cast<std::size_t>(x)],
                                           std::uint8_t{1});
                exec::atomic_store_relaxed(is_core[static_cast<std::size_t>(y)],
                                           std::uint8_t{1});
                uf.merge(x, y);
              } else {
                fdbscan::detail::resolve_pair(uf, is_core, x, y,
                                              options.variant);
              }
            }
            return TraversalControl::kContinue;
          },
          &stats);
      work.local() += stats;
      if (local_cross > 0) {
        cross_edges.local() += local_cross;
      }
    });
    stats_out.cross_rank_edges = cross_edges.combine();
  }
  timings.main = timer.lap();

  flatten(labels);
  result.clustering =
      detail::finalize_labels(std::move(labels), std::move(is_core));
  timings.finalization = timer.lap();
  result.clustering.timings = timings;
  const TraversalStats total_work = work.combine();
  result.clustering.distance_computations = total_work.leaves_tested;
  result.clustering.index_nodes_visited = total_work.nodes_visited;
  return result;
}

/// Checked distributed clustering: the same typed-error validation as
/// cluster() (core/cluster.h) plus the rank-grid check, so the
/// distributed path rejects malformed input with the same ErrorCodes as
/// single-engine requests instead of silently producing garbage.
template <int DIM>
[[nodiscard]] Expected<DistributedResult<DIM>> distributed_cluster(
    const std::vector<Point<DIM>>& points, const Parameters& params,
    const DistributedConfig<DIM>& config, const Options& options = {}) {
  if (auto error = validate_shard_count(config.num_ranks(), 1, "rank grid "
                                        "product")) {
    return *std::move(error);
  }
  if (auto error = validate_input(points, params, options)) {
    return *std::move(error);
  }
  return distributed_dbscan(points, params, config, options);
}

}  // namespace fdbscan::distributed
