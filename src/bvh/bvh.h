// Wide linear bounding volume hierarchy — the search index of FDBSCAN
// (§4.1). The binary topology comes from Karras, "Maximizing Parallelism
// in the Construction of BVHs, Octrees, and K-d Trees" (HPG'12), then is
// collapsed into 8-wide nodes whose child boxes are stored lane-wise
// (SoA), so a single simd::box_d2_batch sweep tests every child of a
// node at once — the `lane_width` idea of the zpc LBvh exemplar. This is
// the from-scratch stand-in for the ArborX BVH the paper uses
// (DESIGN.md §2).
//
// Construction (data-parallel except the final collapse):
//   1. Morton-code primitive centroids over the scene bounds (the point
//      path encodes straight from a PointsView SoA, one lane group per
//      launch index) and sort.
//   2. Build the n-1 binary internal nodes independently from the sorted
//      codes (Karras's prefix-delta construction; ties broken by index so
//      duplicate codes are handled).
//   3. Refit binary bounds bottom-up; each node is processed by the
//      second child to arrive (atomic counter per node).
//   4. Collapse the binary tree into wide nodes: starting from a node's
//      two children, repeatedly expand the child subtree covering the
//      most leaves until 8 entries (or all leaves) remain — a
//      deterministic, balance-seeking flattening. Left-to-right order of
//      the sorted leaf ranges is preserved lane order. The binary nodes
//      and Morton codes are build temporaries, freed afterwards.
//
// Traversal is a batched, stack-based top-down walk: one lane sweep
// computes all 8 child box distances, then lanes are processed in order.
// Counter contract (DESIGN.md §6): `nodes_visited` counts internal-node
// lanes whose bounds were tested, `leaves_tested` counts leaf lanes
// whose bounds were tested — values differ from the old binary tree
// (pruning granularity changed) but are deterministic for a given tree:
// bit-equal across worker counts and across the scalar/vector backends,
// which walk the identical wide tree in the identical lane order.
// Two traversal features the paper relies on are preserved exactly:
//   * callbacks may terminate the traversal early (preprocessing stops
//     after minpts neighbors);
//   * a *leaf mask* hides all leaves with sorted position < a threshold,
//     implementing §4.1's "half-traversal" so each neighbor pair is
//     visited exactly once (lanes carry the max sorted leaf position of
//     their subtree, pruning masked subtrees wholesale before any
//     counter is touched).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <numeric>
#include <utility>
#include <vector>

#include "exec/atomic.h"
#include "exec/parallel.h"
#include "exec/radix_sort.h"
#include "exec/simd.h"
#include "geometry/box.h"
#include "geometry/morton.h"
#include "geometry/point.h"
#include "geometry/points_view.h"

namespace fdbscan {

/// Returned by traversal callbacks.
enum class TraversalControl : std::uint8_t {
  kContinue,   ///< keep searching
  kTerminate,  ///< stop this query (early exit)
};

/// Architecture-neutral work counters for a traversal. Wall-clock on this
/// repository's CPU substrate is not directly comparable to the paper's
/// V100 numbers, but these counts are: for a point-primitive BVH,
/// `leaves_tested` is exactly the number of point-point distance
/// computations the GPU would execute.
struct TraversalStats {
  std::int64_t nodes_visited = 0;  ///< internal nodes whose bounds were tested
  std::int64_t leaves_tested = 0;  ///< leaf primitives whose bounds were tested

  TraversalStats& operator+=(const TraversalStats& other) noexcept {
    nodes_visited += other.nodes_visited;
    leaves_tested += other.leaves_tested;
    return *this;
  }
};

template <int DIM>
class Bvh {
 public:
  /// Children per wide node == SIMD lane count: one batched distance
  /// sweep covers a whole node.
  static constexpr int kArity = simd::kWidth;

  /// Builds the hierarchy over arbitrary boxed primitives (points are
  /// degenerate boxes; FDBSCAN-DenseBox mixes points and dense-cell
  /// boxes, which the BVH accommodates without extra constraints — §4.2).
  explicit Bvh(const std::vector<Box<DIM>>& primitive_bounds) {
    build_from_boxes(primitive_bounds);
  }

  /// Hierarchy over an SoA point view: Morton codes are computed one
  /// lane group at a time straight from the per-axis spans, and the
  /// degenerate leaf boxes are materialized only in sorted order.
  explicit Bvh(const PointsView<DIM>& points) { build_from_view(points); }

  /// Convenience: hierarchy over raw AoS points (packs a temporary SoA
  /// store for the build).
  explicit Bvh(const std::vector<Point<DIM>>& points) {
    const PointsStore<DIM> store(points);
    build_from_view(store.view());
  }

  [[nodiscard]] std::int32_t size() const noexcept { return n_; }
  [[nodiscard]] const Box<DIM>& scene_bounds() const noexcept { return scene_; }

  /// Original primitive id stored at a sorted leaf position.
  [[nodiscard]] std::int32_t primitive_at(std::int32_t sorted_pos) const noexcept {
    return sorted_ids_[static_cast<std::size_t>(sorted_pos)];
  }

  /// Sorted leaf position of an original primitive id.
  [[nodiscard]] std::int32_t position_of(std::int32_t primitive_id) const noexcept {
    return positions_[static_cast<std::size_t>(primitive_id)];
  }

  [[nodiscard]] const Box<DIM>& leaf_bounds(std::int32_t sorted_pos) const noexcept {
    return leaf_bounds_[static_cast<std::size_t>(sorted_pos)];
  }

  /// Bytes of device memory the structure occupies (for the memory
  /// comparison benches).
  [[nodiscard]] std::size_t bytes_used() const noexcept {
    return wide_.size() * sizeof(WideNode) +
           leaf_bounds_.size() * sizeof(Box<DIM>) +
           (sorted_ids_.size() + positions_.size()) * sizeof(std::int32_t);
  }

  /// Visits every leaf whose bounds lie within sqrt(eps_squared) of `p`
  /// and whose sorted position is >= min_sorted_pos (pass 0 for an
  /// unmasked query). The callback receives (sorted_pos, primitive_id)
  /// and may return kTerminate to stop early.
  template <class Callback>
  void for_each_near(const Point<DIM>& p, float eps_squared,
                     std::int32_t min_sorted_pos, Callback&& cb,
                     TraversalStats* stats = nullptr) const {
    if (n_ == 0) return;
    if (n_ == 1) {
      // Masked leaves are not tested and must not be counted — the n>1
      // path skips them before touching stats, and dist_comps parity
      // across the two paths depends on doing the same here.
      if (min_sorted_pos > 0) return;
      if (stats) ++stats->leaves_tested;
      if (squared_distance(p, leaf_bounds_[0]) <= eps_squared) {
        cb(std::int32_t{0}, sorted_ids_[0]);
      }
      return;
    }
    std::int32_t stack[kMaxStack];
    int top = 0;
    stack[top++] = 0;  // root is wide node 0
    while (top > 0) {
      const WideNode& node = wide_[static_cast<std::size_t>(stack[--top])];
      float d2[kArity];
      simd::box_d2_batch<DIM>(p, node.lo, node.hi, d2);
      const int count = node.count;
      for (int l = 0; l < count; ++l) {
        const std::int32_t c = node.child[l];
        if (c < 0) {  // leaf, encoded as ~sorted_pos
          const std::int32_t pos = ~c;
          if (pos < min_sorted_pos) continue;  // masked leaf
          if (stats) ++stats->leaves_tested;
          if (d2[l] <= eps_squared) {
            if (cb(pos, sorted_ids_[static_cast<std::size_t>(pos)]) ==
                TraversalControl::kTerminate) {
              return;
            }
          }
        } else {
          if (node.range_end[l] < min_sorted_pos) continue;  // masked subtree
          if (stats) ++stats->nodes_visited;
          if (d2[l] <= eps_squared) {
            stack[top++] = c;
          }
        }
      }
    }
  }

  /// Unmasked range query.
  template <class Callback>
  void for_each_near(const Point<DIM>& p, float eps_squared, Callback&& cb,
                     TraversalStats* stats = nullptr) const {
    for_each_near(p, eps_squared, 0, std::forward<Callback>(cb), stats);
  }

  /// k-nearest-neighbor query (by primitive bounds distance; exact point
  /// distances for point primitives). Returns up to k (primitive_id,
  /// squared_distance) pairs sorted by ascending distance. Used by the
  /// k-dist parameter-selection heuristic; the walk prunes subtrees
  /// farther than the current k-th distance.
  [[nodiscard]] std::vector<std::pair<std::int32_t, float>> nearest(
      const Point<DIM>& p, std::int32_t k) const {
    std::vector<std::pair<std::int32_t, float>> result;
    if (n_ == 0 || k <= 0) return result;
    // Max-heap of the best k squared distances seen so far.
    std::vector<std::pair<float, std::int32_t>> heap;  // (dist2, id)
    heap.reserve(static_cast<std::size_t>(k));
    auto offer = [&](float d2, std::int32_t id) {
      if (static_cast<std::int32_t>(heap.size()) < k) {
        heap.emplace_back(d2, id);
        std::push_heap(heap.begin(), heap.end());
      } else if (d2 < heap.front().first) {
        std::pop_heap(heap.begin(), heap.end());
        heap.back() = {d2, id};
        std::push_heap(heap.begin(), heap.end());
      }
    };
    auto bound = [&] {
      return static_cast<std::int32_t>(heap.size()) < k
                 ? std::numeric_limits<float>::max()
                 : heap.front().first;
    };
    if (n_ == 1) {
      offer(squared_distance(p, leaf_bounds_[0]), sorted_ids_[0]);
    } else {
      std::int32_t stack[kMaxStack];
      int top = 0;
      stack[top++] = 0;
      while (top > 0) {
        const WideNode& node = wide_[static_cast<std::size_t>(stack[--top])];
        float d2[kArity];
        simd::box_d2_batch<DIM>(p, node.lo, node.hi, d2);
        const int count = node.count;
        for (int l = 0; l < count; ++l) {
          const std::int32_t c = node.child[l];
          if (c < 0) {
            const std::int32_t pos = ~c;
            if (d2[l] < bound()) {
              offer(d2[l], sorted_ids_[static_cast<std::size_t>(pos)]);
            }
          } else if (d2[l] < bound()) {
            stack[top++] = c;
          }
        }
      }
    }
    std::sort_heap(heap.begin(), heap.end());
    result.reserve(heap.size());
    for (const auto& [d2, id] : heap) result.emplace_back(id, d2);
    return result;
  }

  /// Generic nearest-primitive query under a user metric: `eval(id)`
  /// returns the (squared) metric value of a candidate, or +infinity to
  /// reject it. The metric MUST dominate the squared Euclidean distance
  /// to the primitive bounds (true for Euclidean itself and for
  /// mutual-reachability distances), so box distances remain valid lower
  /// bounds for pruning. Returns (primitive_id, value), or (-1, +inf)
  /// when nothing qualifies. This powers the Boruvka EMST construction
  /// (nearest point *outside one's own component*).
  template <class Eval>
  [[nodiscard]] std::pair<std::int32_t, float> nearest_by(const Point<DIM>& p,
                                                          Eval&& eval) const {
    std::pair<std::int32_t, float> best{-1,
                                        std::numeric_limits<float>::infinity()};
    if (n_ == 0) return best;
    auto offer = [&](std::int32_t pos) {
      const std::int32_t id = sorted_ids_[static_cast<std::size_t>(pos)];
      const float value = eval(id);
      if (value < best.second) best = {id, value};
    };
    if (n_ == 1) {
      offer(0);
      return best;
    }
    std::int32_t stack[kMaxStack];
    int top = 0;
    stack[top++] = 0;
    while (top > 0) {
      const WideNode& node = wide_[static_cast<std::size_t>(stack[--top])];
      float d2[kArity];
      simd::box_d2_batch<DIM>(p, node.lo, node.hi, d2);
      const int count = node.count;
      for (int l = 0; l < count; ++l) {
        const std::int32_t c = node.child[l];
        if (c < 0) {
          if (d2[l] < best.second) offer(~c);
        } else if (d2[l] < best.second) {
          stack[top++] = c;
        }
      }
    }
    return best;
  }

 private:
  /// Lane-SoA wide node: child boxes stored axis-major so one vector
  /// load covers all 8 lane values of one axis. Lanes >= count are
  /// padding (+inf/-inf boxes, child -1, range_end -1) and are never
  /// iterated.
  struct WideNode {
    float lo[DIM][kArity];
    float hi[DIM][kArity];
    std::int32_t child[kArity];      // >= 0: wide node index; < 0: leaf ~pos
    std::int32_t range_end[kArity];  // max sorted leaf position in subtree
    std::int32_t count;              // live lanes
  };

  /// Binary build node (temporary): Karras topology plus the sorted leaf
  /// range, which the collapse uses to pick the biggest subtree to
  /// expand.
  struct BuildNode {
    Box<DIM> bounds;
    std::int32_t left;         // >= 0: internal node index; < 0: leaf ~pos
    std::int32_t right;
    std::int32_t range_begin;  // min sorted leaf position in this subtree
    std::int32_t range_end;    // max sorted leaf position in this subtree
    std::int32_t parent;       // -1 for root
  };

  // Wide-tree depth is bounded by the binary depth (Morton key length
  // plus index tiebreak, < 100 levels); a DFS pushes at most kArity - 1
  // net entries per level, so 1024 slots are comfortably above the
  // theoretical maximum.
  static constexpr int kMaxStack = 1024;

  // Prefix-delta of Karras's construction: length of the common prefix of
  // the keys at sorted positions i and j, with the position itself
  // appended as a tiebreak so duplicate codes still yield distinct keys.
  // Returns -1 when j is out of range. std::countl_zero is defined for a
  // zero argument (unlike __builtin_clz*), so i == j is well-defined
  // should a future caller pass it, and non-GNU compilers are fine.
  [[nodiscard]] int delta(std::int32_t i, std::int32_t j) const noexcept {
    if (j < 0 || j >= n_) return -1;
    const std::uint64_t a = codes_[static_cast<std::size_t>(i)];
    const std::uint64_t b = codes_[static_cast<std::size_t>(j)];
    if (a != b) return std::countl_zero(a ^ b);
    return 64 + std::countl_zero(static_cast<std::uint32_t>(i) ^
                                 static_cast<std::uint32_t>(j));
  }

  void build_from_boxes(const std::vector<Box<DIM>>& boxes) {
    n_ = static_cast<std::int32_t>(boxes.size());
    if (n_ == 0) return;

    scene_ = exec::parallel_reduce(
        "bvh/build/scene-bounds", static_cast<std::int64_t>(n_),
        Box<DIM>::empty(),
        [&](std::int64_t i) { return boxes[static_cast<std::size_t>(i)]; },
        [](Box<DIM> a, const Box<DIM>& b) {
          a.expand(b);
          return a;
        });

    // Mixed primitives keep the scalar per-centroid encoder (for the
    // degenerate boxes of point primitives the centroid IS the point, so
    // this matches the SoA group encoder bit for bit).
    codes_.resize(boxes.size());
    exec::parallel_for("bvh/build/morton-codes", static_cast<std::int64_t>(n_),
                       [&](std::int64_t i) {
      codes_[static_cast<std::size_t>(i)] =
          morton_code(boxes[static_cast<std::size_t>(i)].center(), scene_);
    });

    finish_build([&](std::int32_t id) -> const Box<DIM>& {
      return boxes[static_cast<std::size_t>(id)];
    });
  }

  void build_from_view(const PointsView<DIM>& points) {
    n_ = static_cast<std::int32_t>(points.size());
    if (n_ == 0) return;

    scene_ = exec::parallel_reduce(
        "bvh/build/scene-bounds", static_cast<std::int64_t>(n_),
        Box<DIM>::empty(),
        [&](std::int64_t i) {
          const Point<DIM> p = points.point(i);
          return Box<DIM>{p, p};
        },
        [](Box<DIM> a, const Box<DIM>& b) {
          a.expand(b);
          return a;
        });

    // One launch index per lane group: each call encodes up to
    // simd::kWidth consecutive points straight from the axis spans.
    codes_.resize(static_cast<std::size_t>(n_));
    const std::int64_t groups =
        (static_cast<std::int64_t>(n_) + simd::kWidth - 1) / simd::kWidth;
    exec::parallel_for("bvh/build/morton-codes", groups, [&](std::int64_t g) {
      const std::int64_t i0 = g * simd::kWidth;
      const int count = static_cast<int>(
          std::min<std::int64_t>(simd::kWidth, n_ - i0));
      simd::morton_group<DIM>(points.axes(), i0, count, scene_,
                              codes_.data() + i0);
    });

    finish_build([&](std::int32_t id) {
      const Point<DIM> p = points.point(id);
      return Box<DIM>{p, p};
    });
  }

  /// Shared build tail once codes_ are filled: sort, leaf order, binary
  /// hierarchy + refit, collapse to wide nodes. `box_at(id)` yields the
  /// primitive bounds of an original id.
  template <class BoxAt>
  void finish_build(BoxAt&& box_at) {
    sorted_ids_.resize(static_cast<std::size_t>(n_));
    std::iota(sorted_ids_.begin(), sorted_ids_.end(), 0);
    exec::radix_sort_pairs(codes_, sorted_ids_);

    leaf_bounds_.resize(static_cast<std::size_t>(n_));
    positions_.resize(static_cast<std::size_t>(n_));
    exec::parallel_for("bvh/build/leaf-order", static_cast<std::int64_t>(n_),
                       [&](std::int64_t pos) {
      const std::int32_t id = sorted_ids_[static_cast<std::size_t>(pos)];
      leaf_bounds_[static_cast<std::size_t>(pos)] = box_at(id);
      positions_[static_cast<std::size_t>(id)] = static_cast<std::int32_t>(pos);
    });

    if (n_ == 1) {
      codes_ = {};
      return;
    }

    // Binary hierarchy: each internal node i in [0, n-1) is built
    // independently (build temporaries; freed after the collapse).
    const std::int32_t num_internal = n_ - 1;
    build_.resize(static_cast<std::size_t>(num_internal));
    std::vector<std::int32_t> leaf_parent(static_cast<std::size_t>(n_));
    build_[0].parent = -1;
    exec::parallel_for("bvh/build/hierarchy", num_internal, [&](std::int64_t ii) {
      const auto i = static_cast<std::int32_t>(ii);
      // Direction and range of the node's keys.
      const int d = delta(i, i + 1) > delta(i, i - 1) ? 1 : -1;
      const int delta_min = delta(i, i - d);
      std::int32_t l_max = 2;
      while (delta(i, i + l_max * d) > delta_min) l_max *= 2;
      std::int32_t l = 0;
      for (std::int32_t t = l_max / 2; t >= 1; t /= 2) {
        if (delta(i, i + (l + t) * d) > delta_min) l += t;
      }
      const std::int32_t j = i + l * d;

      // Split position: highest differing bit within [min(i,j), max(i,j)].
      const int delta_node = delta(i, j);
      std::int32_t s = 0;
      for (std::int32_t t = (l + 1) / 2;; t = (t + 1) / 2) {
        if (delta(i, i + (s + t) * d) > delta_node) s += t;
        if (t == 1) break;
      }
      const std::int32_t gamma = i + s * d + std::min(d, 0);

      const std::int32_t first = std::min(i, j);
      const std::int32_t last = std::max(i, j);
      BuildNode& node = build_[static_cast<std::size_t>(ii)];
      node.range_begin = first;
      node.range_end = last;
      node.left = (first == gamma) ? ~gamma : gamma;
      node.right = (last == gamma + 1) ? ~(gamma + 1) : gamma + 1;
      if (node.left < 0) {
        leaf_parent[static_cast<std::size_t>(gamma)] = i;
      } else {
        build_[static_cast<std::size_t>(node.left)].parent = i;
      }
      if (node.right < 0) {
        leaf_parent[static_cast<std::size_t>(gamma + 1)] = i;
      } else {
        build_[static_cast<std::size_t>(node.right)].parent = i;
      }
    });

    // Bottom-up refit: the second thread to reach a node computes its
    // bounds from the (now finished) children.
    std::vector<std::int32_t> arrivals(static_cast<std::size_t>(num_internal), 0);
    exec::parallel_for("bvh/build/refit", static_cast<std::int64_t>(n_),
                       [&](std::int64_t leaf) {
      std::int32_t node = leaf_parent[static_cast<std::size_t>(leaf)];
      while (node >= 0) {
        if (exec::atomic_fetch_add(arrivals[static_cast<std::size_t>(node)],
                                   std::int32_t{1}) == 0) {
          return;  // first arrival: the sibling subtree is not done yet
        }
        BuildNode& nd = build_[static_cast<std::size_t>(node)];
        Box<DIM> b = child_bounds(nd.left);
        b.expand(child_bounds(nd.right));
        nd.bounds = b;
        node = nd.parent;
      }
    });

    // Collapse (serial, O(n): every binary node is visited once). The
    // root wide node is index 0.
    wide_.reserve(static_cast<std::size_t>(num_internal) / (kArity / 2) + 1);
    (void)collapse_node(0);
    build_ = {};
    codes_ = {};
  }

  /// Flattens the binary subtree rooted at internal node `bin` into one
  /// wide node (recursing into the surviving internal entries) and
  /// returns its wide index. Expansion policy: while fewer than kArity
  /// entries, split the entry whose subtree covers the most sorted leaf
  /// positions (ties: the leftmost), replacing it in place with its two
  /// children — lane order stays the left-to-right sorted order.
  std::int32_t collapse_node(std::int32_t bin) {
    std::int32_t entry[kArity];
    int size = 0;
    entry[size++] = build_[static_cast<std::size_t>(bin)].left;
    entry[size++] = build_[static_cast<std::size_t>(bin)].right;
    while (size < kArity) {
      int pick = -1;
      std::int32_t best_span = 0;
      for (int k = 0; k < size; ++k) {
        if (entry[k] < 0) continue;  // leaves cannot expand
        const BuildNode& nd = build_[static_cast<std::size_t>(entry[k])];
        const std::int32_t span = nd.range_end - nd.range_begin + 1;
        if (span > best_span) {
          best_span = span;
          pick = k;
        }
      }
      if (pick < 0) break;  // all entries are leaves
      const std::int32_t left = build_[static_cast<std::size_t>(entry[pick])].left;
      const std::int32_t right =
          build_[static_cast<std::size_t>(entry[pick])].right;
      for (int k = size; k > pick + 1; --k) entry[k] = entry[k - 1];
      entry[pick] = left;
      entry[pick + 1] = right;
      ++size;
    }

    const auto wi = static_cast<std::int32_t>(wide_.size());
    wide_.emplace_back();
    {
      WideNode& w = wide_[static_cast<std::size_t>(wi)];
      w.count = size;
      for (int l = 0; l < kArity; ++l) {
        w.child[l] = -1;
        w.range_end[l] = -1;
        for (int d = 0; d < DIM; ++d) {
          w.lo[d][l] = std::numeric_limits<float>::infinity();
          w.hi[d][l] = -std::numeric_limits<float>::infinity();
        }
      }
    }
    for (int k = 0; k < size; ++k) {
      const std::int32_t c = entry[k];
      Box<DIM> b;
      std::int32_t child_code;
      std::int32_t rend;
      if (c < 0) {
        const std::int32_t pos = ~c;
        b = leaf_bounds_[static_cast<std::size_t>(pos)];
        child_code = c;  // keep the ~sorted_pos encoding
        rend = pos;
      } else {
        b = build_[static_cast<std::size_t>(c)].bounds;
        rend = build_[static_cast<std::size_t>(c)].range_end;
        child_code = collapse_node(c);  // may grow wide_
      }
      WideNode& w = wide_[static_cast<std::size_t>(wi)];  // re-fetch: see above
      w.child[k] = child_code;
      w.range_end[k] = rend;
      for (int d = 0; d < DIM; ++d) {
        w.lo[d][k] = b.min[d];
        w.hi[d][k] = b.max[d];
      }
    }
    return wi;
  }

  [[nodiscard]] Box<DIM> child_bounds(std::int32_t c) const noexcept {
    if (c < 0) return leaf_bounds_[static_cast<std::size_t>(~c)];
    // The child's bounds were written before the release of the arrival
    // counter increment observed by this thread.
    return build_[static_cast<std::size_t>(c)].bounds;
  }

  std::int32_t n_ = 0;
  Box<DIM> scene_ = Box<DIM>::empty();
  std::vector<WideNode> wide_;              // collapsed tree; root at 0
  std::vector<Box<DIM>> leaf_bounds_;       // by sorted position
  std::vector<std::int32_t> sorted_ids_;    // sorted position -> primitive
  std::vector<std::int32_t> positions_;     // primitive -> sorted position
  // Build temporaries, freed at the end of finish_build().
  std::vector<BuildNode> build_;
  std::vector<std::uint64_t> codes_;        // by sorted position
};

}  // namespace fdbscan
