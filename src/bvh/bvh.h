// Linear bounding volume hierarchy (LBVH) after Karras, "Maximizing
// Parallelism in the Construction of BVHs, Octrees, and K-d Trees"
// (HPG'12) — the search index of FDBSCAN (§4.1). This is the from-scratch
// stand-in for the ArborX BVH the paper uses (DESIGN.md §2).
//
// Construction (all phases data-parallel):
//   1. Morton-code primitive centroids over the scene bounds and sort.
//   2. Build the n-1 internal nodes independently from the sorted codes
//      (Karras's prefix-delta construction; ties broken by index so
//      duplicate codes are handled).
//   3. Refit internal bounds bottom-up; each node is processed by the
//      second child to arrive (atomic counter per node).
//
// Traversal is a batched, stack-based top-down walk with two features the
// paper relies on:
//   * callbacks may terminate the traversal early (preprocessing stops
//     after minpts neighbors);
//   * a *leaf mask* hides all leaves with sorted position < a threshold,
//     implementing §4.1's "half-traversal" so each neighbor pair is
//     visited exactly once (internal nodes store the max sorted leaf
//     position of their subtree, pruning masked subtrees wholesale).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <numeric>
#include <utility>
#include <vector>

#include "exec/atomic.h"
#include "exec/parallel.h"
#include "exec/radix_sort.h"
#include "geometry/box.h"
#include "geometry/morton.h"
#include "geometry/point.h"

namespace fdbscan {

/// Returned by traversal callbacks.
enum class TraversalControl : std::uint8_t {
  kContinue,   ///< keep searching
  kTerminate,  ///< stop this query (early exit)
};

/// Architecture-neutral work counters for a traversal. Wall-clock on this
/// repository's CPU substrate is not directly comparable to the paper's
/// V100 numbers, but these counts are: for a point-primitive BVH,
/// `leaves_tested` is exactly the number of point-point distance
/// computations the GPU would execute.
struct TraversalStats {
  std::int64_t nodes_visited = 0;  ///< internal nodes whose bounds were tested
  std::int64_t leaves_tested = 0;  ///< leaf primitives whose bounds were tested

  TraversalStats& operator+=(const TraversalStats& other) noexcept {
    nodes_visited += other.nodes_visited;
    leaves_tested += other.leaves_tested;
    return *this;
  }
};

template <int DIM>
class Bvh {
 public:
  /// Builds the hierarchy over arbitrary boxed primitives (points are
  /// degenerate boxes; FDBSCAN-DenseBox mixes points and dense-cell
  /// boxes, which the BVH accommodates without extra constraints — §4.2).
  explicit Bvh(const std::vector<Box<DIM>>& primitive_bounds) {
    build(primitive_bounds);
  }

  /// Convenience: hierarchy over raw points.
  explicit Bvh(const std::vector<Point<DIM>>& points) {
    std::vector<Box<DIM>> boxes(points.size());
    exec::parallel_for("bvh/build/point-boxes",
                       static_cast<std::int64_t>(points.size()),
                       [&](std::int64_t i) {
                         const auto& p = points[static_cast<std::size_t>(i)];
                         boxes[static_cast<std::size_t>(i)] = Box<DIM>{p, p};
                       });
    build(boxes);
  }

  [[nodiscard]] std::int32_t size() const noexcept { return n_; }
  [[nodiscard]] const Box<DIM>& scene_bounds() const noexcept { return scene_; }

  /// Original primitive id stored at a sorted leaf position.
  [[nodiscard]] std::int32_t primitive_at(std::int32_t sorted_pos) const noexcept {
    return sorted_ids_[static_cast<std::size_t>(sorted_pos)];
  }

  /// Sorted leaf position of an original primitive id.
  [[nodiscard]] std::int32_t position_of(std::int32_t primitive_id) const noexcept {
    return positions_[static_cast<std::size_t>(primitive_id)];
  }

  [[nodiscard]] const Box<DIM>& leaf_bounds(std::int32_t sorted_pos) const noexcept {
    return leaf_bounds_[static_cast<std::size_t>(sorted_pos)];
  }

  /// Bytes of device memory the structure occupies (for the memory
  /// comparison benches).
  [[nodiscard]] std::size_t bytes_used() const noexcept {
    return internal_.size() * sizeof(InternalNode) +
           leaf_bounds_.size() * sizeof(Box<DIM>) +
           (sorted_ids_.size() + positions_.size()) * sizeof(std::int32_t);
  }

  /// Visits every leaf whose bounds lie within sqrt(eps_squared) of `p`
  /// and whose sorted position is >= min_sorted_pos (pass 0 for an
  /// unmasked query). The callback receives (sorted_pos, primitive_id)
  /// and may return kTerminate to stop early.
  template <class Callback>
  void for_each_near(const Point<DIM>& p, float eps_squared,
                     std::int32_t min_sorted_pos, Callback&& cb,
                     TraversalStats* stats = nullptr) const {
    if (n_ == 0) return;
    if (n_ == 1) {
      // Masked leaves are not tested and must not be counted — the n>1
      // path skips them before touching stats, and dist_comps parity
      // across the two paths depends on doing the same here.
      if (min_sorted_pos > 0) return;
      if (stats) ++stats->leaves_tested;
      if (squared_distance(p, leaf_bounds_[0]) <= eps_squared) {
        cb(std::int32_t{0}, sorted_ids_[0]);
      }
      return;
    }
    // Depth is bounded by the Morton key length plus the index tiebreak
    // bits; 128 entries is comfortably above the theoretical maximum.
    std::int32_t stack[128];
    int top = 0;
    stack[top++] = 0;  // root is internal node 0
    while (top > 0) {
      const InternalNode& node = internal_[static_cast<std::size_t>(stack[--top])];
      const std::int32_t children[2] = {node.left, node.right};
      for (std::int32_t c : children) {
        if (c < 0) {  // leaf, encoded as ~sorted_pos
          const std::int32_t pos = ~c;
          if (pos < min_sorted_pos) continue;  // masked leaf
          if (stats) ++stats->leaves_tested;
          if (squared_distance(p, leaf_bounds_[static_cast<std::size_t>(pos)]) <=
              eps_squared) {
            if (cb(pos, sorted_ids_[static_cast<std::size_t>(pos)]) ==
                TraversalControl::kTerminate) {
              return;
            }
          }
        } else {
          const InternalNode& child = internal_[static_cast<std::size_t>(c)];
          if (child.range_end < min_sorted_pos) continue;  // masked subtree
          if (stats) ++stats->nodes_visited;
          if (squared_distance(p, child.bounds) <= eps_squared) {
            stack[top++] = c;
          }
        }
      }
    }
  }

  /// Unmasked range query.
  template <class Callback>
  void for_each_near(const Point<DIM>& p, float eps_squared, Callback&& cb,
                     TraversalStats* stats = nullptr) const {
    for_each_near(p, eps_squared, 0, std::forward<Callback>(cb), stats);
  }

  /// k-nearest-neighbor query (by primitive bounds distance; exact point
  /// distances for point primitives). Returns up to k (primitive_id,
  /// squared_distance) pairs sorted by ascending distance. Used by the
  /// k-dist parameter-selection heuristic; a best-first walk prunes
  /// subtrees farther than the current k-th distance.
  [[nodiscard]] std::vector<std::pair<std::int32_t, float>> nearest(
      const Point<DIM>& p, std::int32_t k) const {
    std::vector<std::pair<std::int32_t, float>> result;
    if (n_ == 0 || k <= 0) return result;
    // Max-heap of the best k squared distances seen so far.
    std::vector<std::pair<float, std::int32_t>> heap;  // (dist2, id)
    heap.reserve(static_cast<std::size_t>(k));
    auto offer = [&](float d2, std::int32_t id) {
      if (static_cast<std::int32_t>(heap.size()) < k) {
        heap.emplace_back(d2, id);
        std::push_heap(heap.begin(), heap.end());
      } else if (d2 < heap.front().first) {
        std::pop_heap(heap.begin(), heap.end());
        heap.back() = {d2, id};
        std::push_heap(heap.begin(), heap.end());
      }
    };
    auto bound = [&] {
      return static_cast<std::int32_t>(heap.size()) < k
                 ? std::numeric_limits<float>::max()
                 : heap.front().first;
    };
    if (n_ == 1) {
      offer(squared_distance(p, leaf_bounds_[0]), sorted_ids_[0]);
    } else {
      std::int32_t stack[128];
      int top = 0;
      stack[top++] = 0;
      while (top > 0) {
        const InternalNode& node =
            internal_[static_cast<std::size_t>(stack[--top])];
        const std::int32_t children[2] = {node.left, node.right};
        for (std::int32_t c : children) {
          if (c < 0) {
            const std::int32_t pos = ~c;
            const float d2 =
                squared_distance(p, leaf_bounds_[static_cast<std::size_t>(pos)]);
            if (d2 < bound()) {
              offer(d2, sorted_ids_[static_cast<std::size_t>(pos)]);
            }
          } else {
            const InternalNode& child = internal_[static_cast<std::size_t>(c)];
            if (squared_distance(p, child.bounds) < bound()) {
              stack[top++] = c;
            }
          }
        }
      }
    }
    std::sort_heap(heap.begin(), heap.end());
    result.reserve(heap.size());
    for (const auto& [d2, id] : heap) result.emplace_back(id, d2);
    return result;
  }

  /// Generic nearest-primitive query under a user metric: `eval(id)`
  /// returns the (squared) metric value of a candidate, or +infinity to
  /// reject it. The metric MUST dominate the squared Euclidean distance
  /// to the primitive bounds (true for Euclidean itself and for
  /// mutual-reachability distances), so box distances remain valid lower
  /// bounds for pruning. Returns (primitive_id, value), or (-1, +inf)
  /// when nothing qualifies. This powers the Boruvka EMST construction
  /// (nearest point *outside one's own component*).
  template <class Eval>
  [[nodiscard]] std::pair<std::int32_t, float> nearest_by(const Point<DIM>& p,
                                                          Eval&& eval) const {
    std::pair<std::int32_t, float> best{-1,
                                        std::numeric_limits<float>::infinity()};
    if (n_ == 0) return best;
    auto offer = [&](std::int32_t pos) {
      const std::int32_t id = sorted_ids_[static_cast<std::size_t>(pos)];
      const float value = eval(id);
      if (value < best.second) best = {id, value};
    };
    if (n_ == 1) {
      offer(0);
      return best;
    }
    std::int32_t stack[128];
    int top = 0;
    stack[top++] = 0;
    while (top > 0) {
      const InternalNode& node =
          internal_[static_cast<std::size_t>(stack[--top])];
      const std::int32_t children[2] = {node.left, node.right};
      for (std::int32_t c : children) {
        if (c < 0) {
          const std::int32_t pos = ~c;
          if (squared_distance(p, leaf_bounds_[static_cast<std::size_t>(pos)]) <
              best.second) {
            offer(pos);
          }
        } else {
          const InternalNode& child = internal_[static_cast<std::size_t>(c)];
          if (squared_distance(p, child.bounds) < best.second) {
            stack[top++] = c;
          }
        }
      }
    }
    return best;
  }

 private:
  struct InternalNode {
    Box<DIM> bounds;
    std::int32_t left;       // >= 0: internal node index; < 0: leaf ~pos
    std::int32_t right;
    std::int32_t range_end;  // max sorted leaf position in this subtree
    std::int32_t parent;     // -1 for root
  };

  // Prefix-delta of Karras's construction: length of the common prefix of
  // the keys at sorted positions i and j, with the position itself
  // appended as a tiebreak so duplicate codes still yield distinct keys.
  // Returns -1 when j is out of range. std::countl_zero is defined for a
  // zero argument (unlike __builtin_clz*), so i == j is well-defined
  // should a future caller pass it, and non-GNU compilers are fine.
  [[nodiscard]] int delta(std::int32_t i, std::int32_t j) const noexcept {
    if (j < 0 || j >= n_) return -1;
    const std::uint64_t a = codes_[static_cast<std::size_t>(i)];
    const std::uint64_t b = codes_[static_cast<std::size_t>(j)];
    if (a != b) return std::countl_zero(a ^ b);
    return 64 + std::countl_zero(static_cast<std::uint32_t>(i) ^
                                 static_cast<std::uint32_t>(j));
  }

  void build(const std::vector<Box<DIM>>& boxes) {
    n_ = static_cast<std::int32_t>(boxes.size());
    if (n_ == 0) return;

    // Scene bounds over primitive boxes.
    scene_ = exec::parallel_reduce(
        "bvh/build/scene-bounds", static_cast<std::int64_t>(n_),
        Box<DIM>::empty(),
        [&](std::int64_t i) { return boxes[static_cast<std::size_t>(i)]; },
        [](Box<DIM> a, const Box<DIM>& b) {
          a.expand(b);
          return a;
        });

    // Morton codes of centroids; radix-sort primitive ids by code (the
    // stable sort breaks code ties by id, as the GPU pipeline would).
    codes_.resize(boxes.size());
    exec::parallel_for("bvh/build/morton-codes", static_cast<std::int64_t>(n_),
                       [&](std::int64_t i) {
      codes_[static_cast<std::size_t>(i)] =
          morton_code(boxes[static_cast<std::size_t>(i)].center(), scene_);
    });
    sorted_ids_.resize(boxes.size());
    std::iota(sorted_ids_.begin(), sorted_ids_.end(), 0);
    exec::radix_sort_pairs(codes_, sorted_ids_);

    leaf_bounds_.resize(boxes.size());
    positions_.resize(boxes.size());
    exec::parallel_for("bvh/build/leaf-order", static_cast<std::int64_t>(n_),
                       [&](std::int64_t pos) {
      const std::int32_t id = sorted_ids_[static_cast<std::size_t>(pos)];
      leaf_bounds_[static_cast<std::size_t>(pos)] =
          boxes[static_cast<std::size_t>(id)];
      positions_[static_cast<std::size_t>(id)] = static_cast<std::int32_t>(pos);
    });

    if (n_ == 1) return;

    // Hierarchy: each internal node i in [0, n-1) is built independently.
    const std::int32_t num_internal = n_ - 1;
    internal_.resize(static_cast<std::size_t>(num_internal));
    leaf_parent_.resize(static_cast<std::size_t>(n_));
    internal_[0].parent = -1;
    exec::parallel_for("bvh/build/hierarchy", num_internal, [&](std::int64_t ii) {
      const auto i = static_cast<std::int32_t>(ii);
      // Direction and range of the node's keys.
      const int d = delta(i, i + 1) > delta(i, i - 1) ? 1 : -1;
      const int delta_min = delta(i, i - d);
      std::int32_t l_max = 2;
      while (delta(i, i + l_max * d) > delta_min) l_max *= 2;
      std::int32_t l = 0;
      for (std::int32_t t = l_max / 2; t >= 1; t /= 2) {
        if (delta(i, i + (l + t) * d) > delta_min) l += t;
      }
      const std::int32_t j = i + l * d;

      // Split position: highest differing bit within [min(i,j), max(i,j)].
      const int delta_node = delta(i, j);
      std::int32_t s = 0;
      for (std::int32_t t = (l + 1) / 2;; t = (t + 1) / 2) {
        if (delta(i, i + (s + t) * d) > delta_node) s += t;
        if (t == 1) break;
      }
      const std::int32_t gamma = i + s * d + std::min(d, 0);

      const std::int32_t first = std::min(i, j);
      const std::int32_t last = std::max(i, j);
      InternalNode& node = internal_[static_cast<std::size_t>(ii)];
      node.range_end = last;
      node.left = (first == gamma) ? ~gamma : gamma;
      node.right = (last == gamma + 1) ? ~(gamma + 1) : gamma + 1;
      if (node.left < 0) {
        leaf_parent_[static_cast<std::size_t>(gamma)] = i;
      } else {
        internal_[static_cast<std::size_t>(node.left)].parent = i;
      }
      if (node.right < 0) {
        leaf_parent_[static_cast<std::size_t>(gamma + 1)] = i;
      } else {
        internal_[static_cast<std::size_t>(node.right)].parent = i;
      }
    });

    // Bottom-up refit: the second thread to reach a node computes its
    // bounds from the (now finished) children.
    std::vector<std::int32_t> arrivals(static_cast<std::size_t>(num_internal), 0);
    exec::parallel_for("bvh/build/refit", static_cast<std::int64_t>(n_),
                       [&](std::int64_t leaf) {
      std::int32_t node = leaf_parent_[static_cast<std::size_t>(leaf)];
      while (node >= 0) {
        if (exec::atomic_fetch_add(arrivals[static_cast<std::size_t>(node)],
                                   std::int32_t{1}) == 0) {
          return;  // first arrival: the sibling subtree is not done yet
        }
        InternalNode& nd = internal_[static_cast<std::size_t>(node)];
        Box<DIM> b = child_bounds(nd.left);
        b.expand(child_bounds(nd.right));
        nd.bounds = b;
        node = nd.parent;
      }
    });
  }

  [[nodiscard]] Box<DIM> child_bounds(std::int32_t c) const noexcept {
    if (c < 0) return leaf_bounds_[static_cast<std::size_t>(~c)];
    // The child's bounds were written before the release of the arrival
    // counter increment observed by this thread.
    return internal_[static_cast<std::size_t>(c)].bounds;
  }

  std::int32_t n_ = 0;
  Box<DIM> scene_ = Box<DIM>::empty();
  std::vector<InternalNode> internal_;
  std::vector<Box<DIM>> leaf_bounds_;       // by sorted position
  std::vector<std::uint64_t> codes_;        // by sorted position
  std::vector<std::int32_t> sorted_ids_;    // sorted position -> primitive
  std::vector<std::int32_t> positions_;     // primitive -> sorted position
  std::vector<std::int32_t> leaf_parent_;   // by sorted position
};

}  // namespace fdbscan
