// Atomic operations on plain memory locations, in the style of
// Kokkos/CUDA device atomics. All cross-thread communication inside
// kernels goes through these wrappers so that every algorithm reads as a
// GPU kernel would.
//
// Implemented with C++20 std::atomic_ref; the referenced objects must be
// suitably aligned (true for the scalar types used throughout).
#pragma once

#include <atomic>
#include <type_traits>

namespace fdbscan::exec {

template <class T>
[[nodiscard]] inline T atomic_load(const T& x) noexcept {
  return std::atomic_ref<const T>(x).load(std::memory_order_acquire);
}

template <class T>
[[nodiscard]] inline T atomic_load_relaxed(const T& x) noexcept {
  return std::atomic_ref<const T>(x).load(std::memory_order_relaxed);
}

template <class T>
inline void atomic_store(T& x, T v) noexcept {
  std::atomic_ref<T>(x).store(v, std::memory_order_release);
}

template <class T>
inline void atomic_store_relaxed(T& x, T v) noexcept {
  std::atomic_ref<T>(x).store(v, std::memory_order_relaxed);
}

/// Compare-and-swap. On failure, `expected` is updated with the observed
/// value (same contract as std::atomic::compare_exchange_strong).
template <class T>
inline bool atomic_cas(T& x, T& expected, T desired) noexcept {
  return std::atomic_ref<T>(x).compare_exchange_strong(
      expected, desired, std::memory_order_acq_rel, std::memory_order_acquire);
}

template <class T>
inline T atomic_fetch_add(T& x, T v) noexcept {
  return std::atomic_ref<T>(x).fetch_add(v, std::memory_order_acq_rel);
}

/// Atomically x = min(x, v); returns the previous value.
template <class T>
inline T atomic_fetch_min(T& x, T v) noexcept {
  std::atomic_ref<T> ref(x);
  T cur = ref.load(std::memory_order_relaxed);
  while (v < cur &&
         !ref.compare_exchange_weak(cur, v, std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
  }
  return cur;
}

/// Atomically x = max(x, v); returns the previous value.
template <class T>
inline T atomic_fetch_max(T& x, T v) noexcept {
  std::atomic_ref<T> ref(x);
  T cur = ref.load(std::memory_order_relaxed);
  while (cur < v &&
         !ref.compare_exchange_weak(cur, v, std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
  }
  return cur;
}

}  // namespace fdbscan::exec
