// Named-kernel tracing for the exec runtime (DESIGN.md §8).
//
// Off by default; enabled by FDBSCAN_TRACE=<path> (flushed at process
// exit) or programmatically via trace_start()/trace_stop(). When off, the
// only cost on a launch is one relaxed atomic load; when on, each
// participating thread appends fixed-size records to a pre-reserved
// per-thread buffer — no locks, no allocation on the hot path. The flush
// serializes everything into Chrome trace-event JSON (Perfetto-loadable):
// one track per runtime thread, kernel slices nested under the
// algorithm-phase spans emitted by PhaseProfiler / TraceSpan.
//
// Timestamps come from trace_now_ns(): steady-clock nanoseconds relative
// to the first call in the process, so spans opened before tracing starts
// still share the same epoch as the kernels they enclose.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace fdbscan::exec {

/// The label attached to launches issued through the unlabeled
/// parallel_for/reduce/scan overloads.
inline constexpr const char* kUnnamedKernel = "<unnamed>";

namespace trace_detail {
// 0 = not yet initialized (consult FDBSCAN_TRACE), 1 = off, 2 = on.
extern std::atomic<int> g_trace_state;
int trace_state_slow() noexcept;
}  // namespace trace_detail

/// True while event capture is active. One relaxed load on the fast path.
[[nodiscard]] inline bool trace_enabled() noexcept {
  int s = trace_detail::g_trace_state.load(std::memory_order_acquire);
  if (s == 0) s = trace_detail::trace_state_slow();
  return s == 2;
}

/// Monotonic nanoseconds since the first call in this process. Valid (and
/// consistent) whether or not tracing is enabled.
[[nodiscard]] std::int64_t trace_now_ns() noexcept;

/// Start capturing events. `path` (may be empty) is where trace_flush()
/// and the at-exit hook write the JSON. Pre-reserves the per-thread
/// buffers for the current worker count. Call between kernels.
void trace_start(const std::string& path);

/// Stop capturing. Buffered events are kept and still flushable.
void trace_stop();

/// Discard all buffered events (buffers stay reserved). Call between
/// kernels — must not race with recording threads.
void trace_reset();

/// Serialize all buffered events to Chrome trace-event JSON. Writes the
/// file configured by trace_start()/FDBSCAN_TRACE when a path is set, and
/// returns the JSON text either way.
///
/// Safe to call while other threads are still recording (the SIGUSR1
/// statusz path does exactly that). Partial-buffer semantics: each
/// per-thread slot is committed by a release-store of its name and read
/// back with an acquire-load, so a concurrent flush sees each event
/// either fully or not at all — an event claimed but not yet committed
/// at flush time is skipped (it appears in the next flush), and no
/// pointer can be read torn. Only trace_reset() must not race with
/// recording threads.
std::string trace_flush();

/// Number of events currently buffered / dropped to full buffers.
[[nodiscard]] std::int64_t trace_event_count();
[[nodiscard]] std::int64_t trace_dropped_count();

/// Copies a dynamically built name into trace-owned storage and returns a
/// stable pointer for use as an event name. Takes a lock — never call on
/// the hot path; intended for once-per-entry labels (bench names).
const char* trace_intern(const std::string& name);

/// Give the calling thread a dedicated trace track named `name` (copied).
/// By default every non-pool thread shares track 0 with the dispatcher;
/// long-lived auxiliary threads that record their own spans — the service
/// dispatchers — call this once at thread start so their events land on
/// a separate, named track. Slots are assigned from the top of the slot
/// space (downward from 255) to stay clear of pool workers. Idempotent
/// per thread; returns the slot, or -1 when the slot space is exhausted
/// (the thread then keeps using the shared track 0). Takes a lock — call
/// at thread start, not on the hot path.
int trace_register_thread(const char* name);

/// How a kernel slice was produced (drives busy/wall attribution).
enum class TraceKernelKind : std::uint8_t {
  kWorker = 0,  ///< one thread's participation in a pooled launch (busy)
  kLaunch = 1,  ///< a pooled launch's full dispatch-to-done window (wall)
  kInline = 2,  ///< a serial/nested launch executed inline (busy + wall)
};

/// Record a kernel slice [begin_ns, end_ns] on the calling thread's
/// track. `chunks` is the number of chunks executed within the slice.
/// No-op when tracing is off.
void trace_record_kernel(const char* name, std::int64_t begin_ns,
                         std::int64_t end_ns, std::int64_t chunks,
                         TraceKernelKind kind);

/// Record a named span [begin_ns, end_ns] (an algorithm phase or a bench
/// entry) on the calling thread's track. `cat` must be a string with
/// static storage duration ("phase" or "entry"). When the calling
/// thread has a request id installed (trace_set_request_id), the span
/// carries it as an `args.rid` tag in the flushed JSON.
void trace_record_span(const char* name, std::int64_t begin_ns,
                       std::int64_t end_ns, const char* cat);

/// Per-thread request-correlation tag: spans recorded while a non-zero
/// id is installed carry `args.rid` so traces and structured logs can
/// be joined per request. 0 = no request context. Prefer
/// obs::RequestScope (obs/request_id.h) over calling these directly —
/// it restores the previous id on scope exit.
void trace_set_request_id(std::uint64_t rid) noexcept;
[[nodiscard]] std::uint64_t trace_request_id() noexcept;

/// Record a counter sample (e.g. device-memory bytes) at trace_now_ns().
void trace_record_counter(const char* name, std::int64_t value);

/// RAII span: opens at construction, closes (records) at destruction or
/// on close(). Near-free when tracing is off. A begin timestamp may be
/// adopted to name a span retroactively (PhaseProfiler laps).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "phase")
      : name_(name), cat_(cat), begin_ns_(trace_now_ns()) {}
  TraceSpan(const char* name, std::int64_t begin_ns, const char* cat)
      : name_(name), cat_(cat), begin_ns_(begin_ns) {}
  ~TraceSpan() { close(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void close() {
    if (open_) {
      open_ = false;
      if (trace_enabled())
        trace_record_span(name_, begin_ns_, trace_now_ns(), cat_);
    }
  }

 private:
  const char* name_;
  const char* cat_;
  std::int64_t begin_ns_;
  bool open_ = true;
};

/// Per-kernel aggregate over a window of the event stream (what bench
/// telemetry records per entry, and what trace_summary.py recomputes from
/// the JSON). `workers` counts threads that executed chunks for this
/// kernel; `imbalance` follows the KernelPhaseProfile convention
/// (busiest/mean busy thread; 0.0 = no busy samples).
struct KernelAggregate {
  std::string name;
  std::int64_t count = 0;   ///< launches
  std::int64_t chunks = 0;  ///< chunks executed across those launches
  double total_ms = 0.0;    ///< summed launch wall (launches serialize)
  double max_ms = 0.0;      ///< slowest single launch
  int workers = 0;
  double imbalance = 0.0;
};

/// Opaque position in the per-thread event buffers. Capture one before a
/// region of interest and pass it to trace_kernel_aggregates() after.
struct TraceCursor {
  std::vector<std::uint64_t> counts;
};

[[nodiscard]] TraceCursor trace_cursor();

/// Aggregates the kernel events recorded since `since`, sorted by
/// total_ms descending. Empty when tracing is off.
[[nodiscard]] std::vector<KernelAggregate> trace_kernel_aggregates(
    const TraceCursor& since);

}  // namespace fdbscan::exec
