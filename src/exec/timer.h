// Minimal wall-clock stopwatch used for the per-phase timings every
// algorithm reports.
#pragma once

#include <chrono>

namespace fdbscan::exec {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Returns seconds elapsed and restarts the stopwatch — convenient for
  /// sequencing phases.
  double lap() {
    const auto now = clock::now();
    const double s = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return s;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace fdbscan::exec
