// Portable SIMD micro-kernels for the three loops that dominate every
// clustering profile: batched point–box distance tests during wide-BVH
// traversal (bvh/bvh.h), Morton encoding of the SoA point layout, and
// dense-cell membership scans (core/engine.h). Built on GCC/Clang vector
// extensions — no intrinsics, no -march requirements — with a scalar
// twin for every kernel.
//
// Backend contract (tests/test_simd.cpp): the vector and scalar twins
// are BIT-EQUAL, lane for lane. Each vector lane performs the same
// float operations in the same order as one scalar iteration, and the
// formula rewrites are exact:
//   * point–box distance max(lo-p, p-hi, 0) equals the branchy
//     three-case form of geometry/box.h for every input (x - x is +0,
//     and for a valid box only one of the two differences is positive);
//   * point–point distance squares (a-b)^2 are sign-insensitive;
//   * Morton quantization keeps the scalar divide (no reciprocal) and
//     the identical clamp sequence, and the bit interleave is integer-
//     exact.
// No FMA contraction can break this: the build never passes -march
// flags, and the per-function AVX2 target below (GCC on x86-64 only)
// enables avx2 alone — FMA is a separate ISA flag GCC will not imply,
// so vector mul/add stay separate IEEE operations.
//
// On x86-64 GCC the vector kernels are compiled with a function-local
// target("avx2") so the 8-lane types lower to single 256-bit
// instructions instead of paired SSE halves (which lose to the
// auto-vectorized scalar twins on 2-D data). enabled() refuses to
// select them on CPUs without AVX2.
//
// Selection: FDBSCAN_SIMD_BACKEND (compile-time, set by the FDBSCAN_SIMD
// CMake option) decides whether the vector twins exist at all; at
// runtime the env var FDBSCAN_SIMD=0 or set_enabled(false) drops to the
// scalar twins, which tests use to prove backend equivalence in one
// binary. Kernels that load a full lane group past a logical end rely
// on the +inf padding contract of geometry/points_view.h (kSoaPadding).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "geometry/box.h"
#include "geometry/morton.h"
#include "geometry/point.h"
#include "geometry/points_view.h"

#ifndef FDBSCAN_SIMD_BACKEND
#define FDBSCAN_SIMD_BACKEND 1
#endif

// GCC on x86-64 can retarget individual functions to AVX2; elsewhere
// the generic-vector lowering is whatever the base ISA provides and no
// runtime CPU gate is needed.
#if FDBSCAN_SIMD_BACKEND && defined(__GNUC__) && !defined(__clang__) && \
    defined(__x86_64__)
#define FDBSCAN_SIMD_AVX2_TARGET 1
#else
#define FDBSCAN_SIMD_AVX2_TARGET 0
#endif

namespace fdbscan::simd {

/// Lane count of every batched kernel and the BVH node arity.
inline constexpr int kWidth = 8;
static_assert(kSoaPadding == kWidth - 1,
              "SoA padding must cover one lane group minus one");

/// True when the vector twins were compiled in (FDBSCAN_SIMD=ON).
[[nodiscard]] constexpr bool compiled() noexcept {
  return FDBSCAN_SIMD_BACKEND != 0;
}

namespace detail {

/// True when the CPU can execute the compiled vector twins. Always
/// true unless they were retargeted to AVX2 at compile time.
[[nodiscard]] inline bool cpu_supported() noexcept {
#if FDBSCAN_SIMD_AVX2_TARGET
  return __builtin_cpu_supports("avx2");
#else
  return true;
#endif
}

inline bool& enabled_flag() {
  // First read wins the env lookup; set_enabled() writes are only made
  // between runs (tests), never concurrently with worker reads.
  static bool flag = [] {
#if FDBSCAN_SIMD_BACKEND
    const char* env = std::getenv("FDBSCAN_SIMD");
    return cpu_supported() &&
           !(env != nullptr && env[0] == '0' && env[1] == '\0');
#else
    return false;
#endif
  }();
  return flag;
}

}  // namespace detail

/// True when the vector twins are compiled in and currently selected.
[[nodiscard]] inline bool enabled() { return detail::enabled_flag(); }

/// Selects the backend at runtime (tests). A scalar-only build — or a
/// CPU that cannot run the compiled vector twins — ignores requests to
/// enable what cannot execute.
inline void set_enabled(bool on) {
#if FDBSCAN_SIMD_BACKEND
  detail::enabled_flag() = on && detail::cpu_supported();
#else
  (void)on;
#endif
}

namespace detail {

#if FDBSCAN_SIMD_BACKEND

#if FDBSCAN_SIMD_AVX2_TARGET
// avx2 only — no "fma", so mul/add below never contract (bit-identity
// with the scalar twins depends on this).
#pragma GCC push_options
#pragma GCC target("avx2")
#endif

using v8f = float __attribute__((vector_size(32)));
using v8u = std::uint32_t __attribute__((vector_size(32)));
using v4su = std::uint32_t __attribute__((vector_size(16)));
using v4du = std::uint64_t __attribute__((vector_size(32)));

[[nodiscard]] inline v8f load8(const float* p) noexcept {
  v8f v;
  std::memcpy(&v, p, sizeof(v));  // unaligned-safe
  return v;
}

inline void store8(float* p, v8f v) noexcept { std::memcpy(p, &v, sizeof(v)); }

[[nodiscard]] inline v8f splat8(float x) noexcept {
  return v8f{x, x, x, x, x, x, x, x};
}

// 64-bit-lane versions of the bit spreads in geometry/morton.h.
[[nodiscard]] inline v4du expand_bits_2_v(v4du x) noexcept {
  x &= 0x7fffffffULL;
  x = (x | (x << 16)) & 0x0000ffff0000ffffULL;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

[[nodiscard]] inline v4du expand_bits_3_v(v4du x) noexcept {
  x &= 0x1fffffULL;
  x = (x | (x << 32)) & 0x1f00000000ffffULL;
  x = (x | (x << 16)) & 0x1f0000ff0000ffULL;
  x = (x | (x << 8)) & 0x100f00f00f00f00fULL;
  x = (x | (x << 4)) & 0x10c30c30c30c30c3ULL;
  x = (x | (x << 2)) & 0x1249249249249249ULL;
  return x;
}

inline void widen_u32(v8u q, v4du& lo, v4du& hi) noexcept {
  const v4su l = __builtin_shufflevector(q, q, 0, 1, 2, 3);
  const v4su h = __builtin_shufflevector(q, q, 4, 5, 6, 7);
  lo = __builtin_convertvector(l, v4du);
  hi = __builtin_convertvector(h, v4du);
}

/// Quantizes 8 consecutive coordinates of one axis to Morton grid
/// buckets, matching geometry/morton.h's per-coordinate sequence
/// (normalize with a divide, clamp to [0, 1-ulp], scale, truncate,
/// clamp the bucket index).
template <int DIM>
[[nodiscard]] inline v8u quantize8(const float* axis, std::int64_t i0,
                                   float axis_min, float axis_max) noexcept {
  constexpr int bits = morton_bits_per_dim<DIM>();
  constexpr auto buckets = static_cast<std::uint32_t>(1ULL << bits);
  const float extent = axis_max - axis_min;
  v8f t = extent > 0.0f
              ? (load8(axis + i0) - splat8(axis_min)) / splat8(extent)
              : splat8(0.0f);
  const v8f zero = splat8(0.0f);
  t = (t < zero) ? zero : t;
  t = (t >= splat8(1.0f)) ? splat8(0x1.fffffep-1f) : t;
  v8u q = __builtin_convertvector(
      t * splat8(static_cast<float>(1ULL << bits)), v8u);
  // Like the scalar clamp: unreachable after the t-clamp, kept anyway.
  const v8u bucket_cap = q - q + buckets;  // splat without a u32 helper
  q = (q >= bucket_cap) ? bucket_cap - 1 : q;
  return q;
}

template <int DIM>
inline void morton_group_vec(const std::array<const float*, DIM>& axes,
                             std::int64_t i0, int count,
                             const Box<DIM>& scene,
                             std::uint64_t* out) noexcept {
  static_assert(DIM == 2 || DIM == 3);
  std::uint64_t codes[kWidth];
  if constexpr (DIM == 2) {
    const v8u qx = quantize8<DIM>(axes[0], i0, scene.min[0], scene.max[0]);
    const v8u qy = quantize8<DIM>(axes[1], i0, scene.min[1], scene.max[1]);
    v4du xl, xh, yl, yh;
    widen_u32(qx, xl, xh);
    widen_u32(qy, yl, yh);
    const v4du cl = expand_bits_2_v(xl) | (expand_bits_2_v(yl) << 1);
    const v4du ch = expand_bits_2_v(xh) | (expand_bits_2_v(yh) << 1);
    std::memcpy(codes, &cl, sizeof(cl));
    std::memcpy(codes + 4, &ch, sizeof(ch));
  } else {
    const v8u qx = quantize8<DIM>(axes[0], i0, scene.min[0], scene.max[0]);
    const v8u qy = quantize8<DIM>(axes[1], i0, scene.min[1], scene.max[1]);
    const v8u qz = quantize8<DIM>(axes[2], i0, scene.min[2], scene.max[2]);
    v4du xl, xh, yl, yh, zl, zh;
    widen_u32(qx, xl, xh);
    widen_u32(qy, yl, yh);
    widen_u32(qz, zl, zh);
    const v4du cl = expand_bits_3_v(xl) | (expand_bits_3_v(yl) << 1) |
                    (expand_bits_3_v(zl) << 2);
    const v4du ch = expand_bits_3_v(xh) | (expand_bits_3_v(yh) << 1) |
                    (expand_bits_3_v(zh) << 2);
    std::memcpy(codes, &cl, sizeof(cl));
    std::memcpy(codes + 4, &ch, sizeof(ch));
  }
  for (int l = 0; l < count; ++l) out[l] = codes[l];
}

template <int DIM>
inline void box_d2_batch_vec(const Point<DIM>& p,
                             const float (&lo)[DIM][kWidth],
                             const float (&hi)[DIM][kWidth],
                             float (&out)[kWidth]) noexcept {
  v8f acc = splat8(0.0f);
  const v8f zero = splat8(0.0f);
  for (int d = 0; d < DIM; ++d) {
    const v8f pd = splat8(p[d]);
    const v8f below = load8(lo[d]) - pd;
    const v8f above = pd - load8(hi[d]);
    v8f diff = (below > above) ? below : above;
    diff = (diff > zero) ? diff : zero;
    acc += diff * diff;
  }
  store8(out, acc);
}

template <int DIM>
inline void member_d2_vec(const std::array<const float*, DIM>& axes,
                          std::int64_t i0, const Point<DIM>& p,
                          float (&out)[kWidth]) noexcept {
  v8f acc = splat8(0.0f);
  for (int d = 0; d < DIM; ++d) {
    const v8f diff = load8(axes[static_cast<std::size_t>(d)] + i0) -
                     splat8(p[d]);
    acc += diff * diff;
  }
  store8(out, acc);
}

#if FDBSCAN_SIMD_AVX2_TARGET
#pragma GCC pop_options
#endif

#endif  // FDBSCAN_SIMD_BACKEND

template <int DIM>
inline void box_d2_batch_scalar(const Point<DIM>& p,
                                const float (&lo)[DIM][kWidth],
                                const float (&hi)[DIM][kWidth],
                                float (&out)[kWidth]) noexcept {
  // Per lane this is geometry/box.h's squared_distance verbatim.
  for (int l = 0; l < kWidth; ++l) {
    float s = 0.0f;
    for (int d = 0; d < DIM; ++d) {
      float diff = 0.0f;
      if (p[d] < lo[d][l]) {
        diff = lo[d][l] - p[d];
      } else if (p[d] > hi[d][l]) {
        diff = p[d] - hi[d][l];
      }
      s += diff * diff;
    }
    out[l] = s;
  }
}

template <int DIM>
inline void member_d2_scalar(const std::array<const float*, DIM>& axes,
                             std::int64_t i0, const Point<DIM>& p,
                             float (&out)[kWidth]) noexcept {
  for (int l = 0; l < kWidth; ++l) {
    float s = 0.0f;
    for (int d = 0; d < DIM; ++d) {
      const float diff =
          axes[static_cast<std::size_t>(d)][i0 + l] - p[d];
      s += diff * diff;
    }
    out[l] = s;
  }
}

}  // namespace detail

/// Squared distances from `p` to the 8 boxes stored lane-wise in
/// lo/hi (a wide BVH node). Padding lanes (+inf/-inf bounds) produce
/// +inf distances; callers iterate only real lanes.
template <int DIM>
inline void box_d2_batch(const Point<DIM>& p, const float (&lo)[DIM][kWidth],
                         const float (&hi)[DIM][kWidth],
                         float (&out)[kWidth]) noexcept {
#if FDBSCAN_SIMD_BACKEND
  if (enabled()) {
    detail::box_d2_batch_vec<DIM>(p, lo, hi, out);
    return;
  }
#endif
  detail::box_d2_batch_scalar<DIM>(p, lo, hi, out);
}

/// Morton codes for `count` consecutive points of an SoA view, written
/// to out[0..count). The vector path (DIM 2/3) may read a full lane
/// group from each axis — covered by the kSoaPadding contract. The
/// scalar path calls the canonical geometry/morton.h encoder; the
/// vector path reproduces it bit for bit.
template <int DIM>
inline void morton_group(const std::array<const float*, DIM>& axes,
                         std::int64_t i0, int count, const Box<DIM>& scene,
                         std::uint64_t* out) noexcept {
#if FDBSCAN_SIMD_BACKEND
  if constexpr (DIM == 2 || DIM == 3) {
    if (enabled()) {
      detail::morton_group_vec<DIM>(axes, i0, count, scene, out);
      return;
    }
  }
#endif
  for (int l = 0; l < count; ++l) {
    Point<DIM> p;
    for (int d = 0; d < DIM; ++d) {
      p[d] = axes[static_cast<std::size_t>(d)][i0 + l];
    }
    out[l] = morton_code(p, scene);
  }
}

/// Counts members m in [begin, end) of an SoA member range with
/// squared distance to `p` <= eps_squared, scanning one lane group at a
/// time. `scans` advances by the number of members examined — group-
/// granular, so the tally is identical across backends and worker
/// counts. When early_stop > 0 the scan stops at the first group
/// boundary where the count reaches it (the count may overshoot the
/// threshold within that final group; callers only compare >=).
template <int DIM>
[[nodiscard]] inline std::int32_t count_within(
    const std::array<const float*, DIM>& axes, std::int32_t begin,
    std::int32_t end, const Point<DIM>& p, float eps_squared,
    std::int32_t early_stop, std::int64_t& scans) noexcept {
#if FDBSCAN_SIMD_BACKEND
  const bool vec = enabled();
#endif
  std::int32_t count = 0;
  for (std::int32_t g = begin; g < end; g += kWidth) {
    const std::int32_t group = std::min<std::int32_t>(kWidth, end - g);
    float d2[kWidth];
#if FDBSCAN_SIMD_BACKEND
    if (vec) {
      detail::member_d2_vec<DIM>(axes, g, p, d2);
    } else
#endif
    {
      detail::member_d2_scalar<DIM>(axes, g, p, d2);
    }
    for (std::int32_t l = 0; l < group; ++l) {
      if (d2[l] <= eps_squared) ++count;
    }
    scans += group;
    if (early_stop > 0 && count >= early_stop) break;
  }
  return count;
}

/// Invokes `f(m)` for every member m in [begin, end) with squared
/// distance to `p` <= eps_squared, in ascending member order — the same
/// sequence a per-member scalar scan visits, so merge/claim targets are
/// backend-independent. `scans` advances group-granularly over the full
/// range (enumeration never early-stops: callers need the complete edge
/// set). This is the delta-buffer probe of the streaming engine
/// (stream/streaming_engine.h).
template <int DIM, class F>
inline void for_each_within(const std::array<const float*, DIM>& axes,
                            std::int32_t begin, std::int32_t end,
                            const Point<DIM>& p, float eps_squared,
                            std::int64_t& scans, F&& f) {
#if FDBSCAN_SIMD_BACKEND
  const bool vec = enabled();
#endif
  for (std::int32_t g = begin; g < end; g += kWidth) {
    const std::int32_t group = std::min<std::int32_t>(kWidth, end - g);
    float d2[kWidth];
#if FDBSCAN_SIMD_BACKEND
    if (vec) {
      detail::member_d2_vec<DIM>(axes, g, p, d2);
    } else
#endif
    {
      detail::member_d2_scalar<DIM>(axes, g, p, d2);
    }
    scans += group;
    for (std::int32_t l = 0; l < group; ++l) {
      if (d2[l] <= eps_squared) f(g + l);
    }
  }
}

/// Lowest member index m in [begin, end) with squared distance to `p`
/// <= eps_squared, or -1. `scans` advances group-granularly over every
/// group examined, including the witness group.
template <int DIM>
[[nodiscard]] inline std::int32_t first_within(
    const std::array<const float*, DIM>& axes, std::int32_t begin,
    std::int32_t end, const Point<DIM>& p, float eps_squared,
    std::int64_t& scans) noexcept {
#if FDBSCAN_SIMD_BACKEND
  const bool vec = enabled();
#endif
  for (std::int32_t g = begin; g < end; g += kWidth) {
    const std::int32_t group = std::min<std::int32_t>(kWidth, end - g);
    float d2[kWidth];
#if FDBSCAN_SIMD_BACKEND
    if (vec) {
      detail::member_d2_vec<DIM>(axes, g, p, d2);
    } else
#endif
    {
      detail::member_d2_scalar<DIM>(axes, g, p, d2);
    }
    scans += group;
    for (std::int32_t l = 0; l < group; ++l) {
      if (d2[l] <= eps_squared) return g + l;
    }
  }
  return -1;
}

}  // namespace fdbscan::simd
