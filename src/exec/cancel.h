// Cooperative cancellation for the data-parallel runtime.
//
// A CancelToken is a one-shot flag a controller thread raises to ask a
// running request to stop. The runtime checks it at *chunk* granularity:
// once a CancelScope installs a token on the dispatching thread, every
// parallel_for/reduce/scan launched under it polls the token with one
// relaxed load before claiming each chunk (and pays a single null-pointer
// test per chunk when no token is installed). Cancellation therefore
// lands within one chunk-quantum of the signal — the functor itself is
// never interrupted mid-index, so kernels need no cancellation awareness.
//
// Unwinding contract: worker threads and nested launches never throw —
// they simply stop claiming chunks. The CancelledError is raised exactly
// once, on the dispatching user thread, after the launch has fully
// drained (every worker parked, pool reusable). Data written by the
// partial launch is unspecified, matching the workspace contract
// (exec/workspace.h: slot contents are unspecified between acquires), so
// an Engine whose run was cancelled stays valid and produces correct,
// bit-identical results on the next run.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>

namespace fdbscan::exec {

/// Why a token was raised. kNone means "not cancelled".
enum class CancelReason : std::uint8_t {
  kNone = 0,
  kCancelled = 1,          ///< explicit request_cancel() by a controller
  kDeadlineExceeded = 2,   ///< raised by a deadline watchdog
};

/// One-shot cancellation flag. Raising is a CAS so the *first* reason
/// wins (a user cancel racing a deadline keeps the user's reason);
/// polling is a single relaxed load. Safe to share across threads.
class CancelToken {
 public:
  /// Raise the token. Returns true if this call was the first to raise
  /// it; later calls (any reason) are no-ops.
  bool request_cancel(CancelReason reason = CancelReason::kCancelled) noexcept {
    std::uint8_t expected = 0;
    return state_.compare_exchange_strong(
        expected, static_cast<std::uint8_t>(reason),
        std::memory_order_relaxed);
  }

  [[nodiscard]] bool cancelled() const noexcept {
    return state_.load(std::memory_order_relaxed) !=
           static_cast<std::uint8_t>(CancelReason::kNone);
  }

  [[nodiscard]] CancelReason reason() const noexcept {
    return static_cast<CancelReason>(state_.load(std::memory_order_relaxed));
  }

  /// Re-arm a token for reuse. Only valid while no launch is polling it.
  void reset() noexcept {
    state_.store(static_cast<std::uint8_t>(CancelReason::kNone),
                 std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint8_t> state_{
      static_cast<std::uint8_t>(CancelReason::kNone)};
};

/// Thrown by the runtime on the dispatching thread when a launch observes
/// its token raised. Carries the reason so callers can map it to
/// ErrorCode::kCancelled vs kDeadlineExceeded.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(CancelReason reason)
      : std::runtime_error(reason == CancelReason::kDeadlineExceeded
                               ? "deadline exceeded"
                               : "cancelled"),
        reason_(reason) {}

  [[nodiscard]] CancelReason reason() const noexcept { return reason_; }

 private:
  CancelReason reason_;
};

/// RAII installer: makes `token` the active token of the calling thread
/// for the scope's lifetime. Nested scopes shadow (and restore) the outer
/// token. The token must outlive the scope. Install on the thread that
/// *dispatches* kernels; workers inherit it per-launch.
class CancelScope {
 public:
  explicit CancelScope(const CancelToken& token) noexcept;
  ~CancelScope();

  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  const CancelToken* previous_;
};

/// The token installed on the calling thread (nullptr if none).
[[nodiscard]] const CancelToken* active_cancel_token() noexcept;

/// Throws CancelledError if the calling thread has a raised token AND is
/// not inside a parallel region (workers must never throw — the runtime
/// converts their cancellation into "stop claiming chunks"). Serial code
/// paths that bypass the pool (e.g. the small-n scan fast path) call this
/// to keep the chunk-quantum latency bound.
void throw_if_cancelled();

}  // namespace fdbscan::exec
