// Cooperative cancellation for the data-parallel runtime.
//
// A CancelToken is a one-shot flag a controller thread raises to ask a
// running request to stop. The runtime checks it at *chunk* granularity:
// once a CancelScope installs a token on the dispatching thread, every
// parallel_for/reduce/scan launched under it polls the token with one
// relaxed load before claiming each chunk (and pays a single null-pointer
// test per chunk when no token is installed). Cancellation therefore
// lands within one chunk-quantum of the signal — the functor itself is
// never interrupted mid-index, so kernels need no cancellation awareness.
//
// Unwinding contract: worker threads and nested launches never throw —
// they simply stop claiming chunks. The CancelledError is raised exactly
// once, on the dispatching user thread, after the launch has fully
// drained (every worker parked, pool reusable). Data written by the
// partial launch is unspecified, matching the workspace contract
// (exec/workspace.h: slot contents are unspecified between acquires), so
// an Engine whose run was cancelled stays valid and produces correct,
// bit-identical results on the next run.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>

namespace fdbscan::exec {

/// Why a token was raised. kNone means "not cancelled".
enum class CancelReason : std::uint8_t {
  kNone = 0,
  kCancelled = 1,          ///< explicit request_cancel() by a controller
  kDeadlineExceeded = 2,   ///< raised by a deadline watchdog
};

/// One-shot cancellation flag. Raising is a CAS so the *first* reason
/// wins (a user cancel racing a deadline keeps the user's reason);
/// polling is a single relaxed load. Safe to share across threads.
///
/// Generations: every reset() bumps a generation counter packed next to
/// the reason, and request_cancel_if() raises the token only while the
/// generation it captured is still current. Asynchronous controllers
/// that outlive a request — the service's deadline watchdog — use this
/// so a stale deadline registered against generation g cannot fire on a
/// token that has since been reset and reused for generation g+1
/// (DESIGN.md §10).
class CancelToken {
 public:
  /// Raise the token. Returns true if this call was the first to raise
  /// it (in the current generation); later calls (any reason) are no-ops.
  bool request_cancel(CancelReason reason = CancelReason::kCancelled) noexcept {
    std::uint32_t state = state_.load(std::memory_order_relaxed);
    while ((state & kReasonMask) ==
           static_cast<std::uint32_t>(CancelReason::kNone)) {
      if (state_.compare_exchange_weak(
              state, state | static_cast<std::uint32_t>(reason),
              std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  /// Raise the token only if its generation still equals `generation`
  /// (and it is unraised). A reset() concurrent with or preceding this
  /// call makes it a no-op — the stale controller loses.
  bool request_cancel_if(std::uint32_t generation,
                         CancelReason reason) noexcept {
    std::uint32_t expected = generation << kGenerationShift;
    return state_.compare_exchange_strong(
        expected, expected | static_cast<std::uint32_t>(reason),
        std::memory_order_relaxed);
  }

  [[nodiscard]] bool cancelled() const noexcept {
    return (state_.load(std::memory_order_relaxed) & kReasonMask) !=
           static_cast<std::uint32_t>(CancelReason::kNone);
  }

  [[nodiscard]] CancelReason reason() const noexcept {
    return static_cast<CancelReason>(state_.load(std::memory_order_relaxed) &
                                     kReasonMask);
  }

  /// Generation the token is currently in; capture before handing the
  /// token to an asynchronous controller, pair with request_cancel_if().
  [[nodiscard]] std::uint32_t generation() const noexcept {
    return state_.load(std::memory_order_relaxed) >> kGenerationShift;
  }

  /// Re-arm a token for reuse: clears the reason and advances the
  /// generation, invalidating any request_cancel_if() armed against the
  /// previous one. Only valid while no launch is polling the token.
  void reset() noexcept {
    const std::uint32_t state = state_.load(std::memory_order_relaxed);
    // 24 generation bits; wrap is harmless (a stale controller would
    // need 2^24 intervening resets to collide).
    state_.store(((state >> kGenerationShift) + 1) << kGenerationShift,
                 std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint32_t kReasonMask = 0xff;
  static constexpr int kGenerationShift = 8;

  std::atomic<std::uint32_t> state_{
      static_cast<std::uint32_t>(CancelReason::kNone)};
};

/// Thrown by the runtime on the dispatching thread when a launch observes
/// its token raised. Carries the reason so callers can map it to
/// ErrorCode::kCancelled vs kDeadlineExceeded.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(CancelReason reason)
      : std::runtime_error(reason == CancelReason::kDeadlineExceeded
                               ? "deadline exceeded"
                               : "cancelled"),
        reason_(reason) {}

  [[nodiscard]] CancelReason reason() const noexcept { return reason_; }

 private:
  CancelReason reason_;
};

/// RAII installer: makes `token` the active token of the calling thread
/// for the scope's lifetime. Nested scopes shadow (and restore) the outer
/// token. The token must outlive the scope. Install on the thread that
/// *dispatches* kernels; workers inherit it per-launch.
class CancelScope {
 public:
  explicit CancelScope(const CancelToken& token) noexcept;
  ~CancelScope();

  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  const CancelToken* previous_;
};

/// The token installed on the calling thread (nullptr if none).
[[nodiscard]] const CancelToken* active_cancel_token() noexcept;

/// Throws CancelledError if the calling thread has a raised token AND is
/// not inside a parallel region (workers must never throw — the runtime
/// converts their cancellation into "stop claiming chunks"). Serial code
/// paths that bypass the pool (e.g. the small-n scan fast path) call this
/// to keep the chunk-quantum latency bound.
void throw_if_cancelled();

}  // namespace fdbscan::exec
