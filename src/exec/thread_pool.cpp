#include "exec/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <memory>

#include "exec/atomic.h"
#include "exec/profile.h"
#include "exec/timer.h"
#include "exec/trace.h"
#include "obs/metrics.h"

namespace fdbscan::exec {

namespace {

int default_num_threads() {
  if (const char* env = std::getenv("FDBSCAN_NUM_THREADS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

std::atomic<int> g_num_threads{0};  // 0 = not yet initialized

// Pool ownership is behind g_pool_mutex; g_pool_raw is the lock-free
// fast-path handle so pool() costs one acquire load per launch.
std::mutex g_pool_mutex;
std::unique_ptr<detail::ThreadPool> g_pool;
std::atomic<detail::ThreadPool*> g_pool_raw{nullptr};

// Per-thread runtime identity. Workers are assigned 1..workers-1 at
// spawn; every other thread (the dispatcher included) is 0. Nested
// launches execute inline, so the identity never changes mid-kernel.
thread_local int t_thread_index = 0;
thread_local int t_parallel_depth = 0;

// Active cancellation token of this thread (exec/cancel.h). Set by
// CancelScope on dispatching threads; workers inherit the launch's token
// for the duration of work() so nested inline launches inside the functor
// observe it too.
thread_local const CancelToken* t_cancel_token = nullptr;

// --- Kernel profiling (see exec/profile.h) -------------------------------
// Per-thread busy slots are padded to a cache line and written only by
// their owning thread; snapshots read them with relaxed atomics.
constexpr int kMaxProfiledThreads = 256;
struct alignas(64) BusySlot {
  double seconds = 0.0;
};
BusySlot g_busy[kMaxProfiledThreads];
std::atomic<int> g_busy_high_water{0};  // 1 + highest slot ever written
std::atomic<std::int64_t> g_profile_launches{0};
std::atomic<std::int64_t> g_profile_chunks{0};

void profile_add_busy(double seconds) noexcept {
  const int i = t_thread_index;
  if (i >= kMaxProfiledThreads) return;
  std::atomic_ref<double> slot(g_busy[i].seconds);
  slot.store(slot.load(std::memory_order_relaxed) + seconds,
             std::memory_order_relaxed);
  int hw = g_busy_high_water.load(std::memory_order_relaxed);
  while (hw < i + 1 && !g_busy_high_water.compare_exchange_weak(
                           hw, i + 1, std::memory_order_relaxed)) {
  }
}

// Registry mirrors of the launch-granularity runtime metrics
// (DESIGN.md §13). References resolved once; every update below is one
// relaxed RMW, added only at launch granularity — never per chunk — so
// the hot chunk-claim loop keeps its striped-accumulator discipline.
struct ExecMetrics {
  obs::Counter& launches = obs::counter("fdbscan_exec_launches_total");
  obs::Counter& chunks = obs::counter("fdbscan_exec_chunks_total");
  obs::Counter& cancel_polls =
      obs::counter("fdbscan_exec_cancel_polls_total");
  obs::Gauge& inflight = obs::gauge("fdbscan_exec_inflight_launches");
};

ExecMetrics& exec_metrics() {
  static ExecMetrics m;
  return m;
}

// Holds fdbscan_exec_inflight_launches up for the guard's lifetime;
// exception-safe (a throwing kernel body still decrements).
class InflightGuard {
 public:
  explicit InflightGuard(bool active) : active_(active) {
    if (active_) exec_metrics().inflight.add(1);
  }
  ~InflightGuard() {
    if (active_) exec_metrics().inflight.add(-1);
  }
  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;

 private:
  bool active_;
};

void profile_add_launch(std::int64_t chunks) noexcept {
  g_profile_launches.fetch_add(1, std::memory_order_relaxed);
  g_profile_chunks.fetch_add(chunks, std::memory_order_relaxed);
  ExecMetrics& m = exec_metrics();
  m.launches.inc();
  m.chunks.inc(chunks);
}

}  // namespace

int num_threads() noexcept {
  int n = g_num_threads.load(std::memory_order_acquire);
  if (n == 0) {
    int fresh = default_num_threads();
    if (g_num_threads.compare_exchange_strong(n, fresh,
                                              std::memory_order_acq_rel)) {
      return fresh;
    }
    // Another thread initialized first; n now holds its value.
  }
  return n;
}

void set_num_threads(int n) {
  // Contract (DESIGN.md §7): never call while a kernel is in flight. A
  // nested call would tear the pool down under the very launch executing
  // it; a call concurrent with another thread's dispatch is drained via
  // quiesce(), but a dispatch *starting* after the drain is a race the
  // caller must exclude.
  assert(!in_parallel_region() &&
         "set_num_threads() must not be called from inside a parallel kernel");
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_pool) g_pool->quiesce();
  g_pool_raw.store(nullptr, std::memory_order_release);
  g_pool.reset();  // lazily recreated with the new size
  g_num_threads.store(std::max(1, n), std::memory_order_release);
}

int thread_index() noexcept { return t_thread_index; }

bool in_parallel_region() noexcept { return t_parallel_depth > 0; }

CancelScope::CancelScope(const CancelToken& token) noexcept
    : previous_(t_cancel_token) {
  t_cancel_token = &token;
}

CancelScope::~CancelScope() { t_cancel_token = previous_; }

const CancelToken* active_cancel_token() noexcept { return t_cancel_token; }

void throw_if_cancelled() {
  const CancelToken* token = t_cancel_token;
  if (token && token->cancelled() && t_parallel_depth == 0) {
    throw CancelledError(token->reason());
  }
}

KernelProfileSnapshot kernel_profile() {
  KernelProfileSnapshot snap;
  snap.launches = g_profile_launches.load(std::memory_order_relaxed);
  snap.chunks = g_profile_chunks.load(std::memory_order_relaxed);
  const int hw = g_busy_high_water.load(std::memory_order_relaxed);
  snap.busy.resize(static_cast<std::size_t>(hw));
  for (int i = 0; i < hw; ++i) {
    snap.busy[static_cast<std::size_t>(i)] =
        std::atomic_ref<double>(g_busy[i].seconds)
            .load(std::memory_order_relaxed);
  }
  return snap;
}

namespace detail {

ThreadPool& pool() {
  ThreadPool* p = g_pool_raw.load(std::memory_order_acquire);
  if (p) return *p;
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) {
    g_pool = std::make_unique<ThreadPool>(num_threads());
    g_pool_raw.store(g_pool.get(), std::memory_order_release);
  }
  return *g_pool;
}

ThreadPool::ThreadPool(int workers) {
  // The dispatching thread participates, so spawn workers-1 threads.
  int extra = std::max(0, workers - 1);
  threads_.reserve(static_cast<std::size_t>(extra));
  for (int i = 0; i < extra; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::quiesce() {
  // A launch in flight holds launch_mutex_ for its whole duration, so
  // acquiring it once is a full drain.
  std::lock_guard<std::mutex> lock(launch_mutex_);
}

void ThreadPool::worker_loop(int index) {
  t_thread_index = index;
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t generation;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      generation = generation_;
      seen = generation;
    }
    work(generation);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::work(std::uint64_t /*generation*/) {
  const std::int64_t n = job_n_;
  const std::int64_t grain = job_grain_;
  const char* name = job_name_;
  const auto& body = *job_body_;
  const CancelToken* token = job_token_;
  const bool tracing = trace_enabled();
  const std::int64_t trace_begin = tracing ? trace_now_ns() : 0;
  std::int64_t my_chunks = 0;
  Timer busy;
  // Workers inherit the dispatcher's token for this launch so nested
  // inline launches inside the functor poll it too. Never throws here:
  // a raised token only stops the chunk-claim loop.
  const CancelToken* saved_token = t_cancel_token;
  t_cancel_token = token;
  std::int64_t my_polls = 0;
  ++t_parallel_depth;
  for (;;) {
    if (token) {
      ++my_polls;
      if (token->cancelled()) break;
    }
    std::int64_t begin = atomic_fetch_add(job_next_, grain);
    if (begin >= n) break;
    body(begin, std::min(begin + grain, n));
    ++my_chunks;
  }
  --t_parallel_depth;
  t_cancel_token = saved_token;
  profile_add_busy(busy.seconds());
  if (my_polls > 0) exec_metrics().cancel_polls.inc(my_polls);
  if (tracing && my_chunks > 0) {
    trace_record_kernel(name, trace_begin, trace_now_ns(), my_chunks,
                        TraceKernelKind::kWorker);
  }
}

void ThreadPool::run(const char* name, std::int64_t n, std::int64_t grain,
                     const std::function<void(std::int64_t, std::int64_t)>& body) {
  if (n <= 0) return;
  grain = std::max<std::int64_t>(1, grain);
  const std::int64_t chunks = (n + grain - 1) / grain;
  const CancelToken* token = t_cancel_token;
  const bool tracing = trace_enabled();
  const std::int64_t trace_begin = tracing ? trace_now_ns() : 0;
  if (t_parallel_depth > 0 || threads_.empty() || n <= grain) {
    // Inline serial path, chunked identically to the pooled dispatch.
    // Covers (a) nested launches — executing them inline on the calling
    // thread keeps the outer job state intact (the Kokkos behavior) and
    // cannot deadlock on the busy pool — and (b) the no-worker / tiny-n
    // fast path.
    Timer busy;
    const InflightGuard inflight(t_parallel_depth == 0);
    std::int64_t my_polls = 0;
    ++t_parallel_depth;
    for (std::int64_t b = 0; b < n; b += grain) {
      if (token) {
        ++my_polls;
        if (token->cancelled()) break;
      }
      body(b, std::min(b + grain, n));
    }
    --t_parallel_depth;
    profile_add_busy(busy.seconds());
    profile_add_launch(chunks);
    if (my_polls > 0) exec_metrics().cancel_polls.inc(my_polls);
    if (tracing) {
      trace_record_kernel(name, trace_begin, trace_now_ns(), chunks,
                          TraceKernelKind::kInline);
    }
    // Only the top level converts cancellation into an exception: a
    // nested launch unwinding through a worker's functor would escape
    // worker_loop and terminate. At depth 0 the pool is fully drained
    // here, so the throw leaves the runtime reusable.
    if (token && token->cancelled() && t_parallel_depth == 0) {
      throw CancelledError(token->reason());
    }
    return;
  }
  // Top-level dispatches from distinct user threads are serialized: the
  // pool holds a single job slot.
  std::lock_guard<std::mutex> launch(launch_mutex_);
  const InflightGuard inflight(true);
  std::uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_n_ = n;
    job_grain_ = grain;
    job_name_ = name;
    job_token_ = token;
    job_next_ = 0;
    job_body_ = &body;
    active_ = static_cast<int>(threads_.size());
    generation = ++generation_;
  }
  cv_start_.notify_all();
  work(generation);  // the caller participates
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&] { return active_ == 0; });
    job_body_ = nullptr;
    job_token_ = nullptr;
  }
  profile_add_launch(chunks);
  if (tracing) {
    // The dispatcher's own chunk execution was recorded as a kWorker
    // slice inside this window by work(); this slice is the launch's
    // dispatch-to-done wall time.
    trace_record_kernel(name, trace_begin, trace_now_ns(), chunks,
                        TraceKernelKind::kLaunch);
  }
  // Pool fully drained (cv_done_ above): safe to surface the
  // cancellation on the dispatching thread. Pooled dispatch only happens
  // at depth 0, so this is always the top level.
  if (token && token->cancelled()) throw CancelledError(token->reason());
}

}  // namespace detail
}  // namespace fdbscan::exec
