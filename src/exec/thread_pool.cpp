#include "exec/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "exec/atomic.h"

namespace fdbscan::exec {

namespace {

int default_num_threads() {
  if (const char* env = std::getenv("FDBSCAN_NUM_THREADS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

int g_num_threads = 0;  // 0 = not yet initialized
std::unique_ptr<detail::ThreadPool> g_pool;

}  // namespace

int num_threads() noexcept {
  if (g_num_threads == 0) g_num_threads = default_num_threads();
  return g_num_threads;
}

void set_num_threads(int n) {
  g_num_threads = std::max(1, n);
  g_pool.reset();  // lazily recreated with the new size
}

namespace detail {

ThreadPool& pool() {
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(num_threads());
  return *g_pool;
}

ThreadPool::ThreadPool(int workers) {
  // The dispatching thread participates, so spawn workers-1 threads.
  int extra = std::max(0, workers - 1);
  threads_.reserve(static_cast<std::size_t>(extra));
  for (int i = 0; i < extra; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t generation;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      generation = generation_;
      seen = generation;
    }
    work(generation);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::work(std::uint64_t /*generation*/) {
  const std::int64_t n = job_n_;
  const std::int64_t grain = job_grain_;
  const auto& body = *job_body_;
  for (;;) {
    std::int64_t begin = atomic_fetch_add(job_next_, grain);
    if (begin >= n) break;
    body(begin, std::min(begin + grain, n));
  }
}

void ThreadPool::run(std::int64_t n, std::int64_t grain,
                     const std::function<void(std::int64_t, std::int64_t)>& body) {
  if (n <= 0) return;
  grain = std::max<std::int64_t>(1, grain);
  if (threads_.empty() || n <= grain) {
    // Serial fast path: no dispatch overhead, still chunked identically.
    for (std::int64_t b = 0; b < n; b += grain) body(b, std::min(b + grain, n));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_n_ = n;
    job_grain_ = grain;
    job_next_ = 0;
    job_body_ = &body;
    active_ = static_cast<int>(threads_.size());
    ++generation_;
  }
  cv_start_.notify_all();
  work(generation_);  // the caller participates
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [&] { return active_ == 0; });
  job_body_ = nullptr;
}

}  // namespace detail
}  // namespace fdbscan::exec
