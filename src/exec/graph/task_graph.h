// Task-graph runtime (DESIGN.md §15): dependency-scheduled execution of
// labeled kernel phases on top of the fork-join exec runtime.
//
// A TaskGraph is a DAG whose nodes wrap closures that issue the existing
// labeled parallel_for/reduce/scan launches. The scheduler runs every
// node whose dependencies have completed on a small process-wide pool of
// runner threads, so independent nodes — phases of *different* service
// requests, or different shards of one sharded run — overlap instead of
// queueing behind whole-request barriers.
//
// Interaction with the DESIGN §7 serialization rule: node bodies stay
// whole-kernel granular. A runner thread issuing a top-level launch
// serializes on the pool's launch mutex exactly like a concurrent
// service dispatcher does today, and a launch issued from inside another
// kernel's worker inlines serially — so a node body that itself launches
// a kernel can never deadlock, and per-kernel determinism (chunked
// reduce, serial scan fast path) is untouched.
//
// Cancellation: submit() captures the ambient CancelToken (the one a
// CancelScope installed on the submitting thread). Every node re-installs
// it on its runner and polls it before running its body; the kernels
// inside the body keep their per-chunk polling. The first failure
// (CancelledError preferred over other exceptions) marks the run failed,
// the remaining bodies are skipped while the graph drains, and
// Handle::wait() rethrows.
//
// Attribution: submit() captures the submitting thread's trace request
// id; each node installs it while running, records an interned span
// (cat "graph") tagged with that rid, and the scheduler mirrors node /
// edge / ready-depth / overlap counters into the obs registry.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/status.h"

namespace fdbscan::exec::graph {

using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

/// One dependency-ordered step of a staged run: the label becomes the
/// node's trace span name; the closure issues its kernel launches.
struct Phase {
  std::string label;
  std::function<void()> fn;
};

namespace detail {
struct GraphRun;
}  // namespace detail

class GraphScheduler;

/// A DAG of labeled work items. Build with add_node()/add_edge() (or
/// add_chain() for a linear pipeline), then hand to a GraphScheduler.
/// Cycles are rejected by validate() — surfaced as ErrorCode::kGraphCycle
/// through the Expected path, never as a hung run.
class TaskGraph {
 public:
  /// Append a node; returns its id. The label is interned for the trace
  /// buffer when tracing is enabled (spans outlive the graph).
  NodeId add_node(std::string label, std::function<void()> fn);

  /// Append phases as a linear chain (each depends on the previous);
  /// `after`, when given, becomes the first phase's dependency. Returns
  /// the last node's id (or `after` when `phases` is empty).
  NodeId add_chain(std::vector<Phase> phases, NodeId after = kNoNode);

  /// `to` runs only after `from` completes. Out-of-range ids are
  /// ignored; a self-edge makes the node unschedulable and is reported
  /// by validate() as a cycle.
  void add_edge(NodeId from, NodeId to);

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::int64_t num_edges() const noexcept { return edges_; }

  /// Kahn's algorithm: nullopt for a DAG, Error{kGraphCycle} otherwise.
  [[nodiscard]] std::optional<Error> validate() const;

 private:
  friend class GraphScheduler;
  friend struct detail::GraphRun;

  struct Node {
    std::string label;
    const char* span_name = nullptr;  ///< interned label; null = no span
    std::function<void()> fn;
    std::vector<NodeId> out;
    std::int32_t in_degree = 0;
  };

  std::vector<Node> nodes_;
  std::int64_t edges_ = 0;
};

/// Telemetry for one completed graph run.
struct GraphStats {
  std::int64_t nodes_run = 0;  ///< bodies executed (skipped bodies excluded)
  std::int64_t edges = 0;
  std::int64_t busy_ns = 0;  ///< sum of node execution time
  std::int64_t wall_ns = 0;  ///< submit -> last node complete
};

/// Process-wide scheduler totals (mirrors of the fdbscan_graph_*
/// registry metrics), read by the service telemetry snapshot.
struct SchedulerTotals {
  std::int64_t graphs = 0;
  std::int64_t nodes_run = 0;
  std::int64_t edges = 0;
  std::int64_t ready_depth = 0;
  std::int64_t overlap_pct = 0;  ///< busy/wall of the last completed graph
};

/// Ready-queue scheduler over dedicated runner threads. Runners are
/// plain top-level threads from the exec runtime's point of view, so
/// their kernel launches follow the same serialization rule as service
/// dispatchers. One process-wide instance (shared_scheduler()) carries
/// all production traffic so graphs from different requests share the
/// runner pool; tests may build private instances.
class GraphScheduler {
 public:
  /// Invoked exactly once when a submitted graph completes (from the
  /// runner that finished the last node, or inline from submit() for an
  /// empty graph). The exception_ptr is null on success and carries the
  /// first failure otherwise (CancelledError preferred). Must not throw.
  using Completion = std::function<void(const GraphStats&, std::exception_ptr)>;

  explicit GraphScheduler(int runners);
  ~GraphScheduler();

  GraphScheduler(const GraphScheduler&) = delete;
  GraphScheduler& operator=(const GraphScheduler&) = delete;

  class Handle {
   public:
    // Not default-constructible: wait() requires a live run, and a
    // handle only ever comes out of submit().

    /// Block until the graph drains. Rethrows the first failure
    /// (CancelledError preferred); returns the run's stats otherwise.
    /// Never call from a runner thread — use GraphScheduler::run(),
    /// which executes inline there instead of blocking a runner.
    GraphStats wait();

   private:
    friend class GraphScheduler;
    explicit Handle(std::shared_ptr<detail::GraphRun> run)
        : run_(std::move(run)) {}
    std::shared_ptr<detail::GraphRun> run_;
  };

  /// Validate and enqueue. Captures the ambient CancelToken (which must
  /// outlive the run — the service keeps it alive in its token table)
  /// and the submitting thread's trace request id.
  Expected<Handle> submit(TaskGraph graph, Completion on_complete = {});

  /// submit() + wait(). On a runner thread the graph executes inline in
  /// topological order (same per-node wrapping) so a node body may
  /// itself run a nested graph without deadlocking the runner pool.
  /// Returns the typed error only for cycles; runtime failures
  /// propagate as exceptions, matching Engine::run().
  Expected<GraphStats> run(TaskGraph graph);

  [[nodiscard]] int runners() const noexcept {
    return static_cast<int>(runners_.size());
  }

 private:
  struct ReadyItem {
    std::shared_ptr<detail::GraphRun> run;
    NodeId node = kNoNode;
  };

  void runner_loop(int index);
  /// Execute node `id` and retire it: decrement successors, pushing any
  /// that become ready (to `local_ready` when given — the inline path —
  /// or the shared queue otherwise), and finish the run when it drains.
  void run_node(const std::shared_ptr<detail::GraphRun>& run, NodeId id,
                std::vector<NodeId>* local_ready);
  void enqueue(std::vector<ReadyItem> items);
  Expected<GraphStats> run_inline(TaskGraph graph);

  std::vector<std::thread> runners_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<ReadyItem> ready_;
  bool stop_ = false;
};

/// The process-wide scheduler every production graph runs on (lazily
/// constructed; runner count clamped to [2, 8] from hardware/2).
GraphScheduler& shared_scheduler();

/// The FDBSCAN_SERVICE_GRAPH knob: graph dispatch is the default;
/// setting the variable to "0" falls back to fork-join everywhere the
/// knob is consulted. Read once and cached; set_enabled() overrides for
/// tests and benches.
[[nodiscard]] bool enabled();
void set_enabled(bool on);

[[nodiscard]] SchedulerTotals totals();

}  // namespace fdbscan::exec::graph
