#include "exec/graph/task_graph.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "exec/cancel.h"
#include "exec/trace.h"
#include "obs/metrics.h"

namespace fdbscan::exec::graph {

namespace {

/// Registry mirrors of the scheduler counters (DESIGN.md §15). Process-
/// wide: the shared scheduler and any test-private instances add into
/// the same totals, matching how pool/shard metrics aggregate.
struct GraphMetrics {
  obs::Counter& graphs = obs::counter("fdbscan_graph_graphs_total");
  obs::Counter& nodes_run = obs::counter("fdbscan_graph_nodes_run_total");
  obs::Counter& edges = obs::counter("fdbscan_graph_edges_total");
  obs::Gauge& ready_depth = obs::gauge("fdbscan_graph_ready_depth");
  obs::Gauge& overlap_pct = obs::gauge("fdbscan_graph_overlap_pct");
};

GraphMetrics& graph_metrics() {
  static GraphMetrics m;
  return m;
}

/// Marks graph runner threads (and the inline-execution path) so run()
/// can detect re-entrant submission and execute inline instead of
/// blocking a runner on its own pool.
thread_local bool t_is_runner = false;

}  // namespace

namespace detail {

/// Shared state of one submitted graph: the nodes (moved out of the
/// TaskGraph), the per-node dependency countdown, and the completion
/// latch waiters block on. `mutex` guards everything below it.
struct GraphRun {
  std::vector<TaskGraph::Node> nodes;
  const CancelToken* token = nullptr;
  std::uint64_t rid = 0;
  std::int64_t edges = 0;
  std::int64_t submit_ns = 0;
  GraphScheduler::Completion on_complete;

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::int32_t> pending;  ///< unmet dependencies per node
  std::int32_t remaining = 0;         ///< nodes not yet retired
  bool failed = false;                ///< skip bodies while draining
  bool done = false;
  std::exception_ptr cancelled;  ///< first CancelledError
  std::exception_ptr error;      ///< first other exception
  std::int64_t nodes_run = 0;
  std::int64_t busy_ns = 0;
  std::int64_t wall_ns = 0;

  [[nodiscard]] std::exception_ptr first_error() const {
    return cancelled ? cancelled : error;
  }
  [[nodiscard]] GraphStats stats() const {
    return GraphStats{nodes_run, edges, busy_ns, wall_ns};
  }
};

}  // namespace detail

NodeId TaskGraph::add_node(std::string label, std::function<void()> fn) {
  Node node;
  // Span names are borrowed pointers in the trace buffer (they may be
  // flushed long after this graph is gone), so dynamic labels must be
  // interned. Once per node at build time — off the kernel hot path.
  node.span_name = trace_enabled() ? trace_intern(label) : nullptr;
  node.label = std::move(label);
  node.fn = std::move(fn);
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId TaskGraph::add_chain(std::vector<Phase> phases, NodeId after) {
  NodeId prev = after;
  for (Phase& phase : phases) {
    const NodeId id = add_node(std::move(phase.label), std::move(phase.fn));
    if (prev != kNoNode) add_edge(prev, id);
    prev = id;
  }
  return prev;
}

void TaskGraph::add_edge(NodeId from, NodeId to) {
  const auto n = static_cast<NodeId>(nodes_.size());
  if (from < 0 || from >= n || to < 0 || to >= n) return;
  nodes_[from].out.push_back(to);
  nodes_[to].in_degree += 1;
  edges_ += 1;
}

std::optional<Error> TaskGraph::validate() const {
  std::vector<std::int32_t> pending(nodes_.size());
  std::vector<NodeId> ready;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    pending[i] = nodes_[i].in_degree;
    if (pending[i] == 0) ready.push_back(static_cast<NodeId>(i));
  }
  std::size_t ordered = 0;
  while (!ready.empty()) {
    const NodeId id = ready.back();
    ready.pop_back();
    ++ordered;
    for (const NodeId succ : nodes_[id].out) {
      if (--pending[succ] == 0) ready.push_back(succ);
    }
  }
  if (ordered != nodes_.size()) {
    return Error{ErrorCode::kGraphCycle,
                 "task graph has a dependency cycle through " +
                     std::to_string(nodes_.size() - ordered) + " of " +
                     std::to_string(nodes_.size()) + " node(s)"};
  }
  return std::nullopt;
}

GraphScheduler::GraphScheduler(int runners) {
  if (runners < 1) runners = 1;
  runners_.reserve(static_cast<std::size_t>(runners));
  for (int i = 0; i < runners; ++i) {
    runners_.emplace_back([this, i] { runner_loop(i); });
  }
}

GraphScheduler::~GraphScheduler() {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : runners_) t.join();
}

void GraphScheduler::runner_loop(int index) {
  const std::string name = "graph runner " + std::to_string(index);
  trace_register_thread(name.c_str());
  t_is_runner = true;
  for (;;) {
    ReadyItem item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || !ready_.empty(); });
      if (ready_.empty()) return;  // stop_ set and queue drained
      item = std::move(ready_.front());
      ready_.pop_front();
    }
    graph_metrics().ready_depth.add(-1);
    run_node(item.run, item.node, nullptr);
  }
}

void GraphScheduler::enqueue(std::vector<ReadyItem> items) {
  if (items.empty()) return;
  graph_metrics().ready_depth.add(static_cast<std::int64_t>(items.size()));
  {
    std::lock_guard<std::mutex> guard(mutex_);
    for (ReadyItem& item : items) ready_.push_back(std::move(item));
  }
  if (items.size() > 1) {
    cv_.notify_all();
  } else {
    cv_.notify_one();
  }
}

void GraphScheduler::run_node(const std::shared_ptr<detail::GraphRun>& run,
                              NodeId id, std::vector<NodeId>* local_ready) {
  TaskGraph::Node& node = run->nodes[id];

  // Re-establish the submitting request's ambient context on this
  // runner: rid for span/log attribution, CancelToken for the per-node
  // poll and the per-chunk polls inside the body's kernels.
  const std::uint64_t prev_rid = trace_request_id();
  trace_set_request_id(run->rid);
  {
    std::optional<CancelScope> cancel;
    if (run->token != nullptr) cancel.emplace(*run->token);

    bool skip = false;
    {
      std::lock_guard<std::mutex> guard(run->mutex);
      skip = run->failed;
    }
    const std::int64_t begin_ns = trace_now_ns();
    bool ran = false;
    if (!skip) {
      try {
        throw_if_cancelled();
        node.fn();
        ran = true;
      } catch (const CancelledError&) {
        std::lock_guard<std::mutex> guard(run->mutex);
        run->failed = true;
        if (!run->cancelled) run->cancelled = std::current_exception();
      } catch (...) {
        std::lock_guard<std::mutex> guard(run->mutex);
        run->failed = true;
        if (!run->error) run->error = std::current_exception();
      }
    }
    const std::int64_t end_ns = trace_now_ns();
    if (!skip && node.span_name != nullptr && trace_enabled()) {
      trace_record_span(node.span_name, begin_ns, end_ns, "graph");
    }
    if (ran) {
      std::lock_guard<std::mutex> guard(run->mutex);
      run->nodes_run += 1;
      run->busy_ns += end_ns - begin_ns;
    }
  }
  trace_set_request_id(prev_rid);

  // Retire the node: successors whose last dependency this was become
  // ready (failed runs still drain every node so waiters always wake),
  // and the run completes when the last node retires.
  std::vector<ReadyItem> ready;
  bool completed = false;
  {
    std::lock_guard<std::mutex> guard(run->mutex);
    for (const NodeId succ : node.out) {
      if (--run->pending[succ] == 0) {
        if (local_ready != nullptr) {
          local_ready->push_back(succ);
        } else {
          ready.push_back(ReadyItem{run, succ});
        }
      }
    }
    if (--run->remaining == 0) {
      run->done = true;
      run->wall_ns = trace_now_ns() - run->submit_ns;
      completed = true;
    }
  }
  enqueue(std::move(ready));
  if (!completed) return;

  // Post-done: this thread is the only writer, waiters only read after
  // `done`, so the fields are stable without the lock.
  const GraphStats stats = run->stats();
  GraphMetrics& metrics = graph_metrics();
  metrics.graphs.inc();
  metrics.nodes_run.inc(stats.nodes_run);
  if (stats.wall_ns > 0) {
    metrics.overlap_pct.set(100 * stats.busy_ns / stats.wall_ns);
  }
  run->cv.notify_all();
  if (run->on_complete) {
    GraphScheduler::Completion complete = std::move(run->on_complete);
    complete(stats, run->first_error());
  }
}

GraphStats GraphScheduler::Handle::wait() {
  std::unique_lock<std::mutex> lock(run_->mutex);
  run_->cv.wait(lock, [&] { return run_->done; });
  if (std::exception_ptr err = run_->first_error()) {
    std::rethrow_exception(err);
  }
  return run_->stats();
}

Expected<GraphScheduler::Handle> GraphScheduler::submit(
    TaskGraph graph, Completion on_complete) {
  if (std::optional<Error> err = graph.validate()) return *err;

  auto run = std::make_shared<detail::GraphRun>();
  run->nodes = std::move(graph.nodes_);
  run->edges = graph.edges_;
  run->token = active_cancel_token();
  run->rid = trace_request_id();
  run->on_complete = std::move(on_complete);
  run->submit_ns = trace_now_ns();

  const auto count = static_cast<std::int32_t>(run->nodes.size());
  run->remaining = count;
  run->pending.resize(run->nodes.size());
  std::vector<ReadyItem> ready;
  for (std::int32_t i = 0; i < count; ++i) {
    run->pending[i] = run->nodes[i].in_degree;
    if (run->pending[i] == 0) ready.push_back(ReadyItem{run, i});
  }
  graph_metrics().edges.inc(run->edges);

  if (count == 0) {
    run->done = true;
    graph_metrics().graphs.inc();
    if (run->on_complete) {
      GraphScheduler::Completion complete = std::move(run->on_complete);
      complete(run->stats(), nullptr);
    }
    return Handle(std::move(run));
  }
  enqueue(std::move(ready));
  return Handle(std::move(run));
}

Expected<GraphStats> GraphScheduler::run_inline(TaskGraph graph) {
  if (std::optional<Error> err = graph.validate()) return *err;

  auto run = std::make_shared<detail::GraphRun>();
  run->nodes = std::move(graph.nodes_);
  run->edges = graph.edges_;
  run->token = active_cancel_token();
  run->rid = trace_request_id();
  run->submit_ns = trace_now_ns();

  const auto count = static_cast<std::int32_t>(run->nodes.size());
  run->remaining = count;
  run->pending.resize(run->nodes.size());
  std::vector<NodeId> ready;
  for (std::int32_t i = 0; i < count; ++i) {
    run->pending[i] = run->nodes[i].in_degree;
    if (run->pending[i] == 0) ready.push_back(i);
  }
  graph_metrics().edges.inc(run->edges);
  if (count == 0) {
    graph_metrics().graphs.inc();
    return GraphStats{0, run->edges, 0, 0};
  }
  while (!ready.empty()) {
    const NodeId id = ready.back();
    ready.pop_back();
    run_node(run, id, &ready);
  }
  if (std::exception_ptr err = run->first_error()) {
    std::rethrow_exception(err);
  }
  return run->stats();
}

Expected<GraphStats> GraphScheduler::run(TaskGraph graph) {
  // A node body running a nested graph would block its runner waiting on
  // nodes that need runners — with every runner doing the same, the pool
  // wedges. Execute inline instead: serial topological order, same
  // per-node wrapping, which is exactly the fallback semantics.
  if (t_is_runner) return run_inline(std::move(graph));
  Expected<Handle> handle = submit(std::move(graph));
  if (!handle.has_value()) return handle.error();
  return handle.value().wait();
}

GraphScheduler& shared_scheduler() {
  static GraphScheduler scheduler([] {
    const unsigned hw = std::thread::hardware_concurrency();
    unsigned n = hw / 2;
    if (n < 2) n = 2;
    if (n > 8) n = 8;
    return static_cast<int>(n);
  }());
  return scheduler;
}

namespace {

std::atomic<int>& mode_flag() {
  static std::atomic<int> flag{-1};  // -1 = not yet read from the env
  return flag;
}

}  // namespace

bool enabled() {
  int mode = mode_flag().load(std::memory_order_relaxed);
  if (mode < 0) {
    const char* env = std::getenv("FDBSCAN_SERVICE_GRAPH");
    mode = (env != nullptr && std::string(env) == "0") ? 0 : 1;
    mode_flag().store(mode, std::memory_order_relaxed);
  }
  return mode != 0;
}

void set_enabled(bool on) {
  mode_flag().store(on ? 1 : 0, std::memory_order_relaxed);
}

SchedulerTotals totals() {
  GraphMetrics& metrics = graph_metrics();
  SchedulerTotals t;
  t.graphs = metrics.graphs.value();
  t.nodes_run = metrics.nodes_run.value();
  t.edges = metrics.edges.value();
  t.ready_depth = metrics.ready_depth.value();
  t.overlap_pct = metrics.overlap_pct.value();
  return t;
}

}  // namespace fdbscan::exec::graph
