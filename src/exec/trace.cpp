#include "exec/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/thread_pool.h"

namespace fdbscan::exec {

namespace trace_detail {
std::atomic<int> g_trace_state{0};
}  // namespace trace_detail

namespace {

// Mirrors kMaxProfiledThreads in thread_pool.cpp: slot = thread_index().
constexpr int kMaxTraceThreads = 256;

struct TraceEvent {
  const char* name = nullptr;    // nullptr = slot not yet committed
  const char* cat = nullptr;     // spans only ("phase" / "entry")
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = 0;       // counters: unused
  std::int64_t value = 0;        // kernels: chunks; counters: sample;
                                 // spans: request id (0 = none)
  std::uint8_t kind = 0;         // TraceKernelKind, or kSpan / kCounter
};

constexpr std::uint8_t kSpan = 3;
constexpr std::uint8_t kCounter = 4;

// Per-thread buffer. `size` is claimed with a relaxed fetch_add so the
// shared slot 0 (all non-pool threads) stays race-free; it may run past
// the capacity — readers clamp, writers count the overflow as dropped.
struct ThreadBuffer {
  std::atomic<TraceEvent*> events{nullptr};
  std::atomic<std::uint64_t> size{0};
};

ThreadBuffer g_buffers[kMaxTraceThreads];
std::atomic<std::uint64_t> g_capacity{0};  // events per thread, set once
std::atomic<std::int64_t> g_dropped{0};

// Dedicated slot of the calling thread (trace_register_thread), or -1 to
// fall back to thread_index(). Registered slots are handed out downward
// from the top of the slot space so they never collide with pool workers
// (which occupy [0, num_threads)).
thread_local int t_trace_slot = -1;
std::atomic<int> g_next_registered_slot{kMaxTraceThreads - 1};

// Request-correlation tag (obs/request_id.h installs it around each
// service request). Attached to spans recorded by this thread.
thread_local std::uint64_t t_request_id = 0;

std::mutex g_trace_mutex;  // guards path / interning / state transitions
std::string g_trace_path;
bool g_atexit_registered = false;

std::deque<std::string> g_interned;
std::unordered_map<std::string, const char*> g_interned_index;
std::map<int, std::string> g_registered_names;  // slot -> track name

std::uint64_t capacity_from_env() {
  std::uint64_t cap = std::uint64_t{1} << 18;  // 262144 events/thread
  if (const char* env = std::getenv("FDBSCAN_TRACE_BUFFER")) {
    const long long v = std::atoll(env);
    if (v > 0) cap = static_cast<std::uint64_t>(v);
  }
  return std::clamp<std::uint64_t>(cap, std::uint64_t{1} << 10,
                                   std::uint64_t{1} << 24);
}

TraceEvent* ensure_buffer(ThreadBuffer& b) {
  TraceEvent* mem = b.events.load(std::memory_order_acquire);
  if (mem) return mem;
  // First event on a slot that trace_start() did not pre-reserve (a
  // worker spawned after a later set_num_threads). One-time CAS.
  auto* fresh = new TraceEvent[g_capacity.load(std::memory_order_relaxed)];
  if (b.events.compare_exchange_strong(mem, fresh,
                                       std::memory_order_acq_rel)) {
    return fresh;
  }
  delete[] fresh;
  return mem;
}

void record(const TraceEvent& ev) {
  const int slot = t_trace_slot >= 0 ? t_trace_slot : thread_index();
  if (slot < 0 || slot >= kMaxTraceThreads) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ThreadBuffer& b = g_buffers[slot];
  TraceEvent* mem = ensure_buffer(b);
  const std::uint64_t idx = b.size.fetch_add(1, std::memory_order_relaxed);
  if (idx >= g_capacity.load(std::memory_order_relaxed)) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Commit protocol for concurrent flushes (trace_flush() may run from
  // the SIGUSR1 statusz thread while we write): the slot's name doubles
  // as the committed flag. Invalidate it, fill the payload, then
  // publish the name with a release-store; readers acquire-load the
  // name and skip the slot while it is nullptr. Fresh slots start at
  // nullptr (value-initialized), so the first store is redundant there
  // but keeps reused buffers (trace_reset) on the same protocol.
  TraceEvent& dst = mem[idx];
  std::atomic_ref<const char*> name_ref(dst.name);
  name_ref.store(nullptr, std::memory_order_release);
  dst.cat = ev.cat;
  dst.begin_ns = ev.begin_ns;
  dst.end_ns = ev.end_ns;
  dst.value = ev.value;
  dst.kind = ev.kind;
  name_ref.store(ev.name, std::memory_order_release);
}

// Acquire-load of a slot's committed-flag / name. nullptr = claimed by
// a writer but not yet committed (or never written): skip the slot.
const char* committed_name(TraceEvent& ev) {
  return std::atomic_ref<const char*>(ev.name).load(
      std::memory_order_acquire);
}

std::uint64_t slot_count(const ThreadBuffer& b) {
  return std::min(b.size.load(std::memory_order_acquire),
                  g_capacity.load(std::memory_order_relaxed));
}

void append_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

void append_ts_us(std::string& out, std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out += buf;
}

const char* kind_label(std::uint8_t kind) {
  switch (static_cast<TraceKernelKind>(kind)) {
    case TraceKernelKind::kWorker: return "worker";
    case TraceKernelKind::kLaunch: return "launch";
    case TraceKernelKind::kInline: return "inline";
  }
  return "?";
}

void flush_at_exit() {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(g_trace_mutex);
    path = g_trace_path;
  }
  if (trace_detail::g_trace_state.load(std::memory_order_acquire) == 2 &&
      !path.empty()) {
    trace_flush();
  }
}

// Must hold g_trace_mutex.
void enable_locked(const std::string& path) {
  const std::uint64_t cap = capacity_from_env();
  std::uint64_t expected = 0;
  g_capacity.compare_exchange_strong(expected, cap,
                                     std::memory_order_acq_rel);
  // Pre-reserve buffers for every thread the pool will use, so the hot
  // path never allocates.
  const int reserve = std::min(num_threads(), kMaxTraceThreads);
  for (int i = 0; i < reserve; ++i) ensure_buffer(g_buffers[i]);
  g_trace_path = path;
  if (!g_atexit_registered) {
    g_atexit_registered = true;
    std::atexit(flush_at_exit);
  }
  (void)trace_now_ns();  // pin the epoch before the first event
  trace_detail::g_trace_state.store(2, std::memory_order_release);
}

}  // namespace

namespace trace_detail {

int trace_state_slow() noexcept {
  std::lock_guard<std::mutex> lock(g_trace_mutex);
  int s = g_trace_state.load(std::memory_order_acquire);
  if (s != 0) return s;
  const char* env = std::getenv("FDBSCAN_TRACE");
  if (env && *env) {
    enable_locked(env);
    return 2;
  }
  g_trace_state.store(1, std::memory_order_release);
  return 1;
}

}  // namespace trace_detail

std::int64_t trace_now_ns() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

void trace_start(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_trace_mutex);
  enable_locked(path);
}

void trace_stop() {
  std::lock_guard<std::mutex> lock(g_trace_mutex);
  trace_detail::g_trace_state.store(1, std::memory_order_release);
}

void trace_reset() {
  for (ThreadBuffer& b : g_buffers) b.size.store(0, std::memory_order_release);
  g_dropped.store(0, std::memory_order_relaxed);
}

std::int64_t trace_event_count() {
  std::int64_t total = 0;
  for (ThreadBuffer& b : g_buffers) {
    total += static_cast<std::int64_t>(slot_count(b));
  }
  return total;
}

std::int64_t trace_dropped_count() {
  return g_dropped.load(std::memory_order_relaxed);
}

int trace_register_thread(const char* name) {
  if (t_trace_slot >= 0) return t_trace_slot;  // idempotent per thread
  int slot = g_next_registered_slot.fetch_sub(1, std::memory_order_acq_rel);
  // Keep the top half for registered tracks; below that we would risk
  // colliding with pool-worker slots, so give the slot back and let the
  // thread share track 0.
  if (slot < kMaxTraceThreads / 2) {
    g_next_registered_slot.fetch_add(1, std::memory_order_acq_rel);
    return -1;
  }
  t_trace_slot = slot;
  {
    std::lock_guard<std::mutex> lock(g_trace_mutex);
    g_registered_names[slot] = name && *name ? name : "registered";
  }
  if (trace_enabled()) ensure_buffer(g_buffers[slot]);
  return slot;
}

const char* trace_intern(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_trace_mutex);
  auto it = g_interned_index.find(name);
  if (it != g_interned_index.end()) return it->second;
  g_interned.push_back(name);
  const char* stable = g_interned.back().c_str();
  g_interned_index.emplace(name, stable);
  return stable;
}

void trace_record_kernel(const char* name, std::int64_t begin_ns,
                         std::int64_t end_ns, std::int64_t chunks,
                         TraceKernelKind kind) {
  if (!trace_enabled()) return;
  TraceEvent ev;
  ev.name = name ? name : kUnnamedKernel;
  ev.begin_ns = begin_ns;
  ev.end_ns = end_ns;
  ev.value = chunks;
  ev.kind = static_cast<std::uint8_t>(kind);
  record(ev);
}

void trace_record_span(const char* name, std::int64_t begin_ns,
                       std::int64_t end_ns, const char* cat) {
  if (!trace_enabled()) return;
  TraceEvent ev;
  ev.name = name ? name : "<span>";
  ev.cat = cat ? cat : "phase";
  ev.begin_ns = begin_ns;
  ev.end_ns = end_ns;
  ev.value = static_cast<std::int64_t>(t_request_id);  // spans: rid tag
  ev.kind = kSpan;
  record(ev);
}

void trace_set_request_id(std::uint64_t rid) noexcept {
  t_request_id = rid;
}

std::uint64_t trace_request_id() noexcept { return t_request_id; }

void trace_record_counter(const char* name, std::int64_t value) {
  if (!trace_enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.begin_ns = trace_now_ns();
  ev.value = value;
  ev.kind = kCounter;
  record(ev);
}

TraceCursor trace_cursor() {
  TraceCursor c;
  c.counts.resize(kMaxTraceThreads);
  for (int i = 0; i < kMaxTraceThreads; ++i) {
    c.counts[static_cast<std::size_t>(i)] = slot_count(g_buffers[i]);
  }
  return c;
}

std::vector<KernelAggregate> trace_kernel_aggregates(const TraceCursor& since) {
  struct Agg {
    std::int64_t count = 0;
    std::int64_t chunks = 0;
    double total_ms = 0.0;
    double max_ms = 0.0;
    std::map<int, double> busy_by_tid;
  };
  std::map<std::string, Agg> by_name;
  for (int tid = 0; tid < kMaxTraceThreads; ++tid) {
    ThreadBuffer& b = g_buffers[tid];
    TraceEvent* mem = b.events.load(std::memory_order_acquire);
    if (!mem) continue;
    const std::uint64_t from =
        tid < static_cast<int>(since.counts.size())
            ? since.counts[static_cast<std::size_t>(tid)]
            : 0;
    const std::uint64_t to = slot_count(b);
    for (std::uint64_t i = from; i < to; ++i) {
      const char* name = committed_name(mem[i]);
      if (!name) continue;  // claimed, not yet committed
      const TraceEvent& ev = mem[i];
      if (ev.kind > static_cast<std::uint8_t>(TraceKernelKind::kInline))
        continue;
      Agg& a = by_name[name];
      const double ms =
          static_cast<double>(ev.end_ns - ev.begin_ns) * 1e-6;
      const auto kind = static_cast<TraceKernelKind>(ev.kind);
      if (kind != TraceKernelKind::kWorker) {
        // Launch-granularity stats: launches are serialized by the pool,
        // so their wall durations sum to the kernel's share of wall time.
        ++a.count;
        a.chunks += ev.value;
        a.total_ms += ms;
        if (ms > a.max_ms) a.max_ms = ms;
      }
      if (kind != TraceKernelKind::kLaunch) {
        // Busy attribution: worker slices and inline executions; a pooled
        // launch's window includes the dispatcher's wait, so it is
        // excluded from busy.
        a.busy_by_tid[tid] += ms;
      }
    }
  }
  std::vector<KernelAggregate> out;
  out.reserve(by_name.size());
  for (auto& [name, a] : by_name) {
    KernelAggregate k;
    k.name = name;
    k.count = a.count;
    k.chunks = a.chunks;
    k.total_ms = a.total_ms;
    k.max_ms = a.max_ms;
    k.workers = static_cast<int>(a.busy_by_tid.size());
    double busy_total = 0.0, busy_max = 0.0;
    for (const auto& [tid, busy] : a.busy_by_tid) {
      busy_total += busy;
      if (busy > busy_max) busy_max = busy;
    }
    if (k.workers > 0 && busy_total > 0.0) {
      k.imbalance = busy_max * static_cast<double>(k.workers) / busy_total;
    }
    out.push_back(std::move(k));
  }
  std::sort(out.begin(), out.end(),
            [](const KernelAggregate& x, const KernelAggregate& y) {
              return x.total_ms > y.total_ms;
            });
  return out;
}

std::string trace_flush() {
  // Slice records (kernels + spans) per thread track, counters globally.
  struct Slice {
    const TraceEvent* ev;
    std::int64_t end_ns;  // may be clamped to the enclosing slice
  };
  std::vector<std::vector<Slice>> per_tid(kMaxTraceThreads);
  std::vector<const TraceEvent*> counters;
  for (int tid = 0; tid < kMaxTraceThreads; ++tid) {
    ThreadBuffer& b = g_buffers[tid];
    TraceEvent* mem = b.events.load(std::memory_order_acquire);
    if (!mem) continue;
    const std::uint64_t n = slot_count(b);
    for (std::uint64_t i = 0; i < n; ++i) {
      // Skip claimed-but-uncommitted slots (flush may run concurrently
      // with recorders — see the record() commit protocol). A committed
      // slot is never rewritten, so the pointer stays valid below.
      if (committed_name(mem[i]) == nullptr) continue;
      const TraceEvent& ev = mem[i];
      if (ev.kind == kCounter) {
        counters.push_back(&ev);
      } else {
        per_tid[static_cast<std::size_t>(tid)].push_back(
            Slice{&ev, ev.end_ns});
      }
    }
  }
  std::sort(counters.begin(), counters.end(),
            [](const TraceEvent* a, const TraceEvent* b) {
              return a->begin_ns < b->begin_ns;
            });

  std::vector<std::string> lines;
  auto meta = [&lines](int tid, const char* key, const std::string& value) {
    std::string l = "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    l += std::to_string(tid);
    l += ",\"name\":\"";
    l += key;
    l += "\",\"args\":{\"name\":\"";
    append_escaped(l, value.c_str());
    l += "\"}}";
    lines.push_back(std::move(l));
  };
  meta(0, "process_name", "fdbscan");

  constexpr int kCounterTid = 9999;
  std::map<int, std::string> registered;
  {
    std::lock_guard<std::mutex> lock(g_trace_mutex);
    registered = g_registered_names;
  }
  for (int tid = 0; tid < kMaxTraceThreads; ++tid) {
    if (per_tid[static_cast<std::size_t>(tid)].empty()) continue;
    const auto it = registered.find(tid);
    meta(tid, "thread_name",
         it != registered.end() ? it->second
         : tid == 0             ? std::string("dispatcher (0)")
                                : "worker " + std::to_string(tid));
  }
  if (!counters.empty()) meta(kCounterTid, "thread_name", "counters");

  auto emit_begin = [&lines](int tid, const Slice& s) {
    std::string l = "{\"ph\":\"B\",\"pid\":1,\"tid\":";
    l += std::to_string(tid);
    l += ",\"ts\":";
    append_ts_us(l, s.ev->begin_ns);
    l += ",\"cat\":\"";
    l += s.ev->kind == kSpan ? s.ev->cat : "kernel";
    l += "\",\"name\":\"";
    append_escaped(l, s.ev->name);
    l += "\"";
    if (s.ev->kind != kSpan) {
      l += ",\"args\":{\"chunks\":";
      l += std::to_string(s.ev->value);
      l += ",\"kind\":\"";
      l += kind_label(s.ev->kind);
      l += "\"}";
    } else if (s.ev->value != 0) {
      // Spans reuse `value` for the request-correlation tag.
      l += ",\"args\":{\"rid\":";
      l += std::to_string(s.ev->value);
      l += "}";
    }
    l += "}";
    lines.push_back(std::move(l));
  };
  auto emit_end = [&lines](int tid, const Slice& s) {
    std::string l = "{\"ph\":\"E\",\"pid\":1,\"tid\":";
    l += std::to_string(tid);
    l += ",\"ts\":";
    append_ts_us(l, s.end_ns);
    l += ",\"name\":\"";
    append_escaped(l, s.ev->name);
    l += "\"}";
    lines.push_back(std::move(l));
  };

  for (int tid = 0; tid < kMaxTraceThreads; ++tid) {
    auto& slices = per_tid[static_cast<std::size_t>(tid)];
    if (slices.empty()) continue;
    // Sort outermost-first at equal begins so the stack walk nests
    // children under parents; a thread records its slices at their end
    // times, so the buffer order alone is end-ordered, not begin-ordered.
    std::sort(slices.begin(), slices.end(),
              [](const Slice& a, const Slice& b) {
                if (a.ev->begin_ns != b.ev->begin_ns)
                  return a.ev->begin_ns < b.ev->begin_ns;
                return a.end_ns > b.end_ns;
              });
    std::vector<Slice> stack;
    for (Slice s : slices) {
      while (!stack.empty() && stack.back().end_ns <= s.ev->begin_ns) {
        emit_end(tid, stack.back());
        stack.pop_back();
      }
      if (!stack.empty() && stack.back().end_ns < s.end_ns) {
        // Defensive clamp: overlapping (non-nested) slices cannot be
        // expressed as B/E pairs; truncate to the enclosing slice.
        s.end_ns = stack.back().end_ns;
      }
      emit_begin(tid, s);
      stack.push_back(s);
    }
    while (!stack.empty()) {
      emit_end(tid, stack.back());
      stack.pop_back();
    }
  }

  for (const TraceEvent* c : counters) {
    std::string l = "{\"ph\":\"C\",\"pid\":1,\"tid\":";
    l += std::to_string(kCounterTid);
    l += ",\"ts\":";
    append_ts_us(l, c->begin_ns);
    l += ",\"name\":\"";
    append_escaped(l, c->name);
    l += "\",\"args\":{\"value\":";
    l += std::to_string(c->value);
    l += "}}";
    lines.push_back(std::move(l));
  }

  std::string out = "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out += lines[i];
    if (i + 1 < lines.size()) out += ',';
    out += '\n';
  }
  out += "]}\n";

  std::string path;
  {
    std::lock_guard<std::mutex> lock(g_trace_mutex);
    path = g_trace_path;
  }
  if (!path.empty()) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (f) f << out;
  }
  return out;
}

}  // namespace fdbscan::exec
