// A persistent worker pool that executes flat index spaces with dynamic
// (work-stealing-counter) scheduling. This is the "device" of the
// reproduction: the paper runs its kernels on a V100 through Kokkos; we run
// the identical kernels on a thread pool. See DESIGN.md §2 and §7 (the
// runtime contract: reentrancy, determinism, per-thread accumulation).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/cancel.h"

namespace fdbscan::exec {

/// Number of worker threads used by parallel kernels. Defaults to
/// FDBSCAN_NUM_THREADS env var if set, otherwise hardware concurrency.
/// Lazy initialization is thread-safe.
int num_threads() noexcept;

/// Override the worker count (recreates the pool). Must not be called
/// while any parallel launch is in flight (asserted): call only between
/// kernels, e.g. from the main thread of a test or bench. Launches
/// already dispatched from other threads are drained first.
void set_num_threads(int n);

/// Stable index of the calling thread within the runtime: 0 for a
/// dispatching (non-pool) thread, 1..num_threads()-1 for pool workers.
/// Always in [0, num_threads()) while inside a kernel; nested kernels
/// execute inline on the calling thread, so the index is stable across
/// nesting. This is the slot index used by PerThread<T>.
[[nodiscard]] int thread_index() noexcept;

/// True while the calling thread is executing inside a parallel kernel
/// (including the dispatching thread, which participates). Nested
/// launches observe true and execute serially inline.
[[nodiscard]] bool in_parallel_region() noexcept;

namespace detail {

/// Internal pool. Dispatches a kernel over [0, n) in dynamically
/// scheduled chunks; the calling thread participates.
///
/// Reentrancy: a run() issued from inside a running kernel (a nested
/// launch) executes serially inline on the calling thread — the Kokkos
/// serial-backend behavior for nested parallelism — instead of touching
/// the shared job state. Concurrent top-level run() calls from distinct
/// user threads are serialized through launch_mutex_.
class ThreadPool {
 public:
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs body(begin, end) over contiguous chunks covering [0, n).
  /// Blocks until all chunks are processed — or, when the dispatching
  /// thread has a CancelToken installed (exec/cancel.h) and it is raised,
  /// until every participant has stopped claiming chunks, after which
  /// CancelledError is thrown on the dispatching thread (only at the top
  /// level: nested launches just stop). `grain` is the chunk size;
  /// chunk k covers [k*grain, min((k+1)*grain, n)) in every execution
  /// mode (pooled, serial, nested), which is what makes chunk-indexed
  /// reductions deterministic. `name` labels the launch for the tracing
  /// subsystem (exec/trace.h); it must outlive the launch (string
  /// literals and trace_intern() results qualify); nullptr reads as
  /// "<unnamed>".
  void run(const char* name, std::int64_t n, std::int64_t grain,
           const std::function<void(std::int64_t, std::int64_t)>& body);

  void run(std::int64_t n, std::int64_t grain,
           const std::function<void(std::int64_t, std::int64_t)>& body) {
    run(nullptr, n, grain, body);
  }

  int workers() const noexcept { return static_cast<int>(threads_.size()) + 1; }

  /// Blocks until no launch is in flight (used by set_num_threads before
  /// tearing the pool down).
  void quiesce();

 private:
  void worker_loop(int index);
  void work(std::uint64_t generation);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::mutex launch_mutex_;  // serializes top-level dispatches
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  int active_ = 0;
  bool stop_ = false;

  // Current job (valid while active_ > 0; written under mutex_ before
  // the wake-up notification, read by workers after it).
  std::int64_t job_n_ = 0;
  std::int64_t job_grain_ = 1;
  const char* job_name_ = nullptr;  // kernel label for tracing
  const CancelToken* job_token_ = nullptr;  // dispatcher's token, or null
  alignas(64) std::int64_t job_next_ = 0;  // atomic chunk cursor
  const std::function<void(std::int64_t, std::int64_t)>* job_body_ = nullptr;
};

ThreadPool& pool();

}  // namespace detail
}  // namespace fdbscan::exec
