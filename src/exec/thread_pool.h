// A persistent worker pool that executes flat index spaces with dynamic
// (work-stealing-counter) scheduling. This is the "device" of the
// reproduction: the paper runs its kernels on a V100 through Kokkos; we run
// the identical kernels on a thread pool. See DESIGN.md §2.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fdbscan::exec {

/// Number of worker threads used by parallel kernels. Defaults to
/// FDBSCAN_NUM_THREADS env var if set, otherwise hardware concurrency.
int num_threads() noexcept;

/// Override the worker count (recreates the pool). Thread-safe with
/// respect to concurrent parallel dispatches is NOT provided: call only
/// from the main thread between kernels.
void set_num_threads(int n);

namespace detail {

/// Internal pool. Dispatches a kernel over [0, n) in dynamically
/// scheduled chunks; the calling thread participates.
class ThreadPool {
 public:
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs body(begin, end) over contiguous chunks covering [0, n).
  /// Blocks until all chunks are processed. `grain` is the chunk size.
  void run(std::int64_t n, std::int64_t grain,
           const std::function<void(std::int64_t, std::int64_t)>& body);

  int workers() const noexcept { return static_cast<int>(threads_.size()) + 1; }

 private:
  void worker_loop();
  void work(std::uint64_t generation);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  int active_ = 0;
  bool stop_ = false;

  // Current job (valid while active_ > 0).
  std::int64_t job_n_ = 0;
  std::int64_t job_grain_ = 1;
  alignas(64) std::int64_t job_next_ = 0;  // atomic chunk cursor
  const std::function<void(std::int64_t, std::int64_t)>* job_body_ = nullptr;
};

ThreadPool& pool();

}  // namespace detail
}  // namespace fdbscan::exec
