// Auxiliary-memory accounting. The paper's evaluation hinges on memory
// behaviour (G-DBSCAN stores the full adjacency graph and runs out of GPU
// memory; the proposed algorithms are O(n)). Algorithms report their
// auxiliary allocations here so benches can reproduce the memory
// comparison, and a configurable budget simulates the 16 GB V100 limit
// (DESIGN.md §2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace fdbscan::exec {

/// Thrown when an algorithm would exceed the configured device-memory
/// budget — the analogue of cudaMalloc failing on the V100.
class OutOfDeviceMemory : public std::runtime_error {
 public:
  OutOfDeviceMemory(std::size_t requested, std::size_t budget)
      : std::runtime_error("simulated device out of memory: requested " +
                           std::to_string(requested) + " bytes against budget " +
                           std::to_string(budget)),
        requested_(requested),
        budget_(budget) {}

  std::size_t requested() const noexcept { return requested_; }
  std::size_t budget() const noexcept { return budget_; }

 private:
  std::size_t requested_;
  std::size_t budget_;
};

/// Tracks the current and peak auxiliary ("device") memory of one
/// algorithm run. Not thread-safe for concurrent charge/release — kernels
/// allocate from the host side only, as on a GPU.
class MemoryTracker {
 public:
  /// budget == 0 means unlimited.
  explicit MemoryTracker(std::size_t budget_bytes = 0) noexcept
      : budget_(budget_bytes) {}

  /// Record an allocation of `bytes`; throws OutOfDeviceMemory if the
  /// running total would exceed the budget.
  void charge(std::size_t bytes);

  /// Record a deallocation.
  void release(std::size_t bytes) noexcept;

  std::size_t current() const noexcept { return current_; }
  std::size_t peak() const noexcept { return peak_; }
  std::size_t budget() const noexcept { return budget_; }

  void reset() noexcept { current_ = peak_ = 0; }

 private:
  std::size_t budget_;
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
};

/// RAII helper charging a tracker for the lifetime of a container-sized
/// allocation.
class ScopedCharge {
 public:
  ScopedCharge(MemoryTracker* tracker, std::size_t bytes)
      : tracker_(tracker), bytes_(bytes) {
    if (tracker_) tracker_->charge(bytes_);
  }
  ~ScopedCharge() {
    if (tracker_) tracker_->release(bytes_);
  }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

 private:
  MemoryTracker* tracker_;
  std::size_t bytes_;
};

}  // namespace fdbscan::exec
