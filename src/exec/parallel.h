// Data-parallel primitives: parallel_for, parallel_reduce, parallel_scan.
// These mirror the Kokkos primitives the paper's implementation is written
// against; every algorithm in this repository is expressed through them.
//
// Semantics contract (the "GPU contract"): the functor may be invoked for
// the indices of [0, n) in any order and concurrently from multiple
// threads. Any shared state it touches must go through exec/atomic.h.
//
// Cancellation (exec/cancel.h): when the dispatching thread has a
// CancelToken installed via CancelScope, every primitive polls it once
// per chunk and the dispatch throws CancelledError after draining. Output
// ranges of a cancelled launch hold unspecified values.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "exec/thread_pool.h"
#include "exec/trace.h"

namespace fdbscan::exec {

namespace detail {
inline std::int64_t default_grain(std::int64_t n, int threads) {
  // Enough chunks for dynamic load balancing without excessive dispatch.
  return std::max<std::int64_t>(1, n / (static_cast<std::int64_t>(threads) * 8));
}

inline std::int64_t reduce_grain(std::int64_t n) {
  // parallel_reduce chunking must NOT depend on the worker count: the
  // grouping of the per-chunk partials is part of the result for
  // non-associative-in-practice ops (float +), and the determinism
  // guarantee (DESIGN.md §7) is "bit-identical at any thread count".
  // 256 chunks saturate any realistic pool while keeping the in-order
  // merge trivial.
  constexpr std::int64_t kReduceChunks = 256;
  return std::max<std::int64_t>(1, (n + kReduceChunks - 1) / kReduceChunks);
}
}  // namespace detail

/// parallel_for: invokes f(i) for every i in [0, n). The labeled overload
/// tags the launch for the tracing subsystem (exec/trace.h; convention
/// "algo/phase/kernel"); `name` must outlive the launch — string literals
/// and trace_intern() results qualify.
template <class F>
void parallel_for(const char* name, std::int64_t n, F&& f) {
  if (n <= 0) return;
  auto& p = detail::pool();
  std::function<void(std::int64_t, std::int64_t)> body =
      [&f](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) f(i);
      };
  p.run(name, n, detail::default_grain(n, p.workers()), body);
}

template <class F>
void parallel_for(std::int64_t n, F&& f) {
  parallel_for(kUnnamedKernel, n, std::forward<F>(f));
}

/// parallel_reduce: computes reduce(init, f(0), f(1), ..., f(n-1)) where
/// `reduce` is an associative binary op and f(i) -> T (T must be
/// default-constructible). Deterministic: the index space is cut into a
/// fixed, thread-count-independent set of chunks, each chunk's partial
/// lands in its own slot, and the partials are merged serially in chunk
/// order — so even float sums are bit-identical from run to run at any
/// FDBSCAN_NUM_THREADS.
template <class T, class F, class R>
[[nodiscard]] T parallel_reduce(const char* name, std::int64_t n, T init,
                                F&& f, R&& reduce) {
  if (n <= 0) return init;
  auto& p = detail::pool();
  const std::int64_t grain = detail::reduce_grain(n);
  const std::int64_t nchunks = (n + grain - 1) / grain;
  // One partial per chunk, indexed by chunk position (the pool hands out
  // chunk k as exactly [k*grain, min((k+1)*grain, n)), so each slot is
  // written exactly once — no mutex, no ordering dependence).
  std::vector<T> partials(static_cast<std::size_t>(nchunks));
  std::function<void(std::int64_t, std::int64_t)> body =
      [&](std::int64_t begin, std::int64_t end) {
        T acc = f(begin);
        for (std::int64_t i = begin + 1; i < end; ++i) acc = reduce(acc, f(i));
        partials[static_cast<std::size_t>(begin / grain)] = std::move(acc);
      };
  p.run(name, n, grain, body);
  T total = std::move(init);
  for (T& x : partials) total = reduce(std::move(total), std::move(x));
  return total;
}

template <class T, class F, class R>
[[nodiscard]] T parallel_reduce(std::int64_t n, T init, F&& f, R&& reduce) {
  return parallel_reduce(kUnnamedKernel, n, std::move(init),
                         std::forward<F>(f), std::forward<R>(reduce));
}

/// Sum-reduction convenience.
template <class T, class F>
[[nodiscard]] T parallel_sum(const char* name, std::int64_t n, F&& f) {
  return parallel_reduce(
      name, n, T{}, std::forward<F>(f), [](T a, T b) { return a + b; });
}

template <class T, class F>
[[nodiscard]] T parallel_sum(std::int64_t n, F&& f) {
  return parallel_sum<T>(kUnnamedKernel, n, std::forward<F>(f));
}

/// Exclusive prefix sum over data[0..n), in place. Returns the grand total
/// (i.e. the value that would occupy index n). Two-pass chunked scan; both
/// passes carry the launch label.
template <class T>
T exclusive_scan(const char* name, T* data, std::int64_t n) {
  if (n <= 0) return T{};
  auto& p = detail::pool();
  const int workers = p.workers();
  if (workers == 1 || n < 4096) {
    // This serial path never enters the pool, so it polls the token
    // itself to preserve the chunk-quantum cancellation latency bound.
    throw_if_cancelled();
    T run{};
    for (std::int64_t i = 0; i < n; ++i) {
      T v = data[i];
      data[i] = run;
      run += v;
    }
    return run;
  }
  const std::int64_t nchunks = std::min<std::int64_t>(workers * 4, n);
  const std::int64_t chunk = (n + nchunks - 1) / nchunks;
  std::vector<T> sums(static_cast<std::size_t>(nchunks), T{});
  parallel_for(name, nchunks, [&](std::int64_t c) {
    const std::int64_t b = c * chunk, e = std::min(b + chunk, n);
    T s{};
    for (std::int64_t i = b; i < e; ++i) s += data[i];
    sums[static_cast<std::size_t>(c)] = s;
  });
  T total{};
  for (std::int64_t c = 0; c < nchunks; ++c) {
    T s = sums[static_cast<std::size_t>(c)];
    sums[static_cast<std::size_t>(c)] = total;
    total += s;
  }
  parallel_for(name, nchunks, [&](std::int64_t c) {
    const std::int64_t b = c * chunk, e = std::min(b + chunk, n);
    T run = sums[static_cast<std::size_t>(c)];
    for (std::int64_t i = b; i < e; ++i) {
      T v = data[i];
      data[i] = run;
      run += v;
    }
  });
  return total;
}

template <class T>
T exclusive_scan(T* data, std::int64_t n) {
  return exclusive_scan(kUnnamedKernel, data, n);
}

template <class T>
T exclusive_scan(const char* name, std::vector<T>& data) {
  return exclusive_scan(name, data.data(),
                        static_cast<std::int64_t>(data.size()));
}

template <class T>
T exclusive_scan(std::vector<T>& data) {
  return exclusive_scan(kUnnamedKernel, data.data(),
                        static_cast<std::int64_t>(data.size()));
}

}  // namespace fdbscan::exec
