// Lightweight kernel profiling for the exec runtime: every parallel
// launch records its launch count, chunk count and the busy time of each
// participating thread (one clock-read pair per thread per launch — cheap
// enough to stay always-on). Algorithms snapshot the cumulative counters
// at phase boundaries through PhaseProfiler and surface the deltas in
// PhaseTimings, which is how the benches report per-phase load imbalance
// (DESIGN.md §7).
#pragma once

#include <cstdint>
#include <vector>

#include "exec/timer.h"
#include "exec/trace.h"

namespace fdbscan::exec {

/// Cumulative profile counters since process start. `busy[i]` is the
/// total seconds thread-index i spent executing kernel chunks (including
/// nested launches, attributed to the executing thread).
struct KernelProfileSnapshot {
  std::int64_t launches = 0;
  std::int64_t chunks = 0;
  std::vector<double> busy;
};

/// Reads the current cumulative counters. Thread-safe; typically called
/// between kernels (counters of an in-flight launch land at its end).
[[nodiscard]] KernelProfileSnapshot kernel_profile();

/// Aggregated profile of one phase (a delta between two snapshots).
struct KernelPhaseProfile {
  std::int64_t launches = 0;  ///< parallel launches issued (incl. nested)
  std::int64_t chunks = 0;    ///< chunks executed across those launches
  int workers = 0;            ///< threads that executed at least one chunk
  double busy_total = 0.0;    ///< summed per-thread busy seconds
  double busy_max = 0.0;      ///< busiest thread's busy seconds

  /// Load-imbalance factor: busiest thread vs. the mean busy thread.
  /// 1.0 = perfectly balanced, W = all work on one of W threads,
  /// 0.0 = no parallel work recorded in this phase (sentinel, not
  /// "perfect").
  ///
  /// Degenerate case: always read together with `workers`. A phase whose
  /// launches all ran on a single thread reports imbalance == 1.0 (that
  /// one thread matches the mean of one) — indistinguishable from a
  /// perfectly balanced W-thread phase by this number alone. workers == 1
  /// with a multi-thread pool IS the extreme imbalance. (DESIGN.md §7.)
  [[nodiscard]] double imbalance() const noexcept {
    if (workers <= 0 || busy_total <= 0.0) return 0.0;
    return busy_max * static_cast<double>(workers) / busy_total;
  }
};

/// Difference of two cumulative snapshots (`after` taken later).
[[nodiscard]] inline KernelPhaseProfile profile_delta(
    const KernelProfileSnapshot& before, const KernelProfileSnapshot& after) {
  KernelPhaseProfile d;
  d.launches = after.launches - before.launches;
  d.chunks = after.chunks - before.chunks;
  for (std::size_t i = 0; i < after.busy.size(); ++i) {
    const double b = i < before.busy.size() ? before.busy[i] : 0.0;
    const double dt = after.busy[i] - b;
    if (dt > 0.0) {
      ++d.workers;
      d.busy_total += dt;
      if (dt > d.busy_max) d.busy_max = dt;
    }
  }
  return d;
}

/// Drop-in upgrade of Timer for phase sequencing: lap() returns elapsed
/// seconds like Timer::lap() and, when given an out-param, also the
/// kernel profile of the elapsed phase. The named overload additionally
/// emits the elapsed phase as a trace span (exec/trace.h), under which
/// the phase's kernel launches nest on the dispatcher's track.
class PhaseProfiler {
 public:
  PhaseProfiler() : last_(kernel_profile()), span_begin_ns_(trace_now_ns()) {}

  double lap(KernelPhaseProfile* profile = nullptr) {
    return lap(nullptr, profile);
  }

  /// Ends the current phase, naming it `phase_name` (convention:
  /// "algo/phase"; nullptr = unnamed, no span emitted). Returns elapsed
  /// seconds since the previous lap.
  double lap(const char* phase_name, KernelPhaseProfile* profile = nullptr) {
    const double s = timer_.lap();
    if (profile) {
      KernelProfileSnapshot now = kernel_profile();
      *profile = profile_delta(last_, now);
      last_ = std::move(now);
    } else {
      last_ = kernel_profile();
    }
    const std::int64_t now_ns = trace_now_ns();
    if (phase_name != nullptr && trace_enabled()) {
      // Retroactive span: the phase name is known at its end, so adopt
      // the begin timestamp recorded at the previous lap. The end must
      // be exactly now_ns — the next phase adopts the same timestamp,
      // and any later clock read would make consecutive spans overlap
      // (the flush would clamp one of them away).
      trace_record_span(phase_name, span_begin_ns_, now_ns, "phase");
    }
    span_begin_ns_ = now_ns;
    return s;
  }

 private:
  Timer timer_;
  KernelProfileSnapshot last_;
  std::int64_t span_begin_ns_;
};

}  // namespace fdbscan::exec
