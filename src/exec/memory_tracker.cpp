#include "exec/memory_tracker.h"

#include <algorithm>

#include "exec/trace.h"
#include "obs/metrics.h"

namespace fdbscan::exec {

namespace {

// Registry mirrors (DESIGN.md §13). Trackers are per-run objects and
// not thread-safe individually, but many can be live at once, so the
// registry publishes process-wide monotonic byte totals plus a
// high-water mark of any single tracker's peak — an exact global
// "current" across concurrent trackers does not exist.
struct MemoryMetrics {
  obs::Counter& charged =
      obs::counter("fdbscan_memory_charged_bytes_total");
  obs::Counter& released =
      obs::counter("fdbscan_memory_released_bytes_total");
  obs::Gauge& peak = obs::gauge("fdbscan_memory_peak_bytes");
};

MemoryMetrics& memory_metrics() {
  static MemoryMetrics m;
  return m;
}

}  // namespace

void MemoryTracker::charge(std::size_t bytes) {
  if (budget_ != 0 && current_ + bytes > budget_) {
    throw OutOfDeviceMemory(current_ + bytes, budget_);
  }
  current_ += bytes;
  peak_ = std::max(peak_, current_);
  MemoryMetrics& m = memory_metrics();
  m.charged.inc(static_cast<std::int64_t>(bytes));
  m.peak.update_max(static_cast<std::int64_t>(peak_));
  if (trace_enabled()) {
    trace_record_counter("device_memory",
                         static_cast<std::int64_t>(current_));
  }
}

void MemoryTracker::release(std::size_t bytes) noexcept {
  current_ = bytes > current_ ? 0 : current_ - bytes;
  memory_metrics().released.inc(static_cast<std::int64_t>(bytes));
  if (trace_enabled()) {
    trace_record_counter("device_memory",
                         static_cast<std::int64_t>(current_));
  }
}

}  // namespace fdbscan::exec
