#include "exec/memory_tracker.h"

#include <algorithm>

#include "exec/trace.h"

namespace fdbscan::exec {

void MemoryTracker::charge(std::size_t bytes) {
  if (budget_ != 0 && current_ + bytes > budget_) {
    throw OutOfDeviceMemory(current_ + bytes, budget_);
  }
  current_ += bytes;
  peak_ = std::max(peak_, current_);
  if (trace_enabled()) {
    trace_record_counter("device_memory",
                         static_cast<std::int64_t>(current_));
  }
}

void MemoryTracker::release(std::size_t bytes) noexcept {
  current_ = bytes > current_ ? 0 : current_ - bytes;
  if (trace_enabled()) {
    trace_record_counter("device_memory",
                         static_cast<std::int64_t>(current_));
  }
}

}  // namespace fdbscan::exec
