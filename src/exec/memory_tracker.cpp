#include "exec/memory_tracker.h"

#include <algorithm>

namespace fdbscan::exec {

void MemoryTracker::charge(std::size_t bytes) {
  if (budget_ != 0 && current_ + bytes > budget_) {
    throw OutOfDeviceMemory(current_ + bytes, budget_);
  }
  current_ += bytes;
  peak_ = std::max(peak_, current_);
}

void MemoryTracker::release(std::size_t bytes) noexcept {
  current_ = bytes > current_ ? 0 : current_ - bytes;
}

}  // namespace fdbscan::exec
