// Parallel LSD radix sort for (uint64 key, int32 id) pairs — the sort
// primitive a GPU implementation would use for the Morton ordering of
// the BVH construction (Karras 2012 assumes a radix sort) and for the
// cell grouping of the dense grid. 8 bits per pass, per-chunk histograms
// combined with an exclusive scan, all phases data-parallel.
//
// Stability note: LSD radix is stable, and ids start in increasing
// order, so equal keys keep increasing ids — the exact tie-break the
// BVH's duplicate-code handling and the grid's grouping rely on.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/parallel.h"

namespace fdbscan::exec {

namespace detail {

/// One LSD pass over `shift`: stable-partitions (keys, ids) into
/// (keys_out, ids_out) by byte. Histograms are per-chunk so the scatter
/// positions are computable without atomics.
inline void radix_pass(const std::uint64_t* keys, const std::int32_t* ids,
                       std::uint64_t* keys_out, std::int32_t* ids_out,
                       std::int64_t n, int shift) {
  constexpr int kBuckets = 256;
  auto& p = pool();
  const std::int64_t nchunks =
      std::min<std::int64_t>(p.workers() * 4, std::max<std::int64_t>(1, n));
  const std::int64_t chunk = (n + nchunks - 1) / nchunks;

  // Per-chunk bucket counts.
  std::vector<std::int64_t> counts(
      static_cast<std::size_t>(nchunks * kBuckets), 0);
  parallel_for("radix-sort/histogram", nchunks, [&](std::int64_t c) {
    std::int64_t* my = counts.data() + c * kBuckets;
    const std::int64_t begin = c * chunk;
    const std::int64_t end = std::min(begin + chunk, n);
    for (std::int64_t i = begin; i < end; ++i) {
      ++my[(keys[i] >> shift) & 0xff];
    }
  });

  // Column-major exclusive scan: bucket 0 of all chunks, then bucket 1,
  // ... so equal-key order across chunks is preserved (stability).
  std::int64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) {
    for (std::int64_t c = 0; c < nchunks; ++c) {
      std::int64_t& slot = counts[static_cast<std::size_t>(c * kBuckets + b)];
      const std::int64_t v = slot;
      slot = total;
      total += v;
    }
  }

  // Scatter.
  parallel_for("radix-sort/scatter", nchunks, [&](std::int64_t c) {
    std::int64_t* my = counts.data() + c * kBuckets;
    const std::int64_t begin = c * chunk;
    const std::int64_t end = std::min(begin + chunk, n);
    for (std::int64_t i = begin; i < end; ++i) {
      const auto bucket = (keys[i] >> shift) & 0xff;
      const std::int64_t dst = my[bucket]++;
      keys_out[dst] = keys[i];
      ids_out[dst] = ids[i];
    }
  });
}

}  // namespace detail

/// Sorts (keys, ids) in tandem by key, ascending, stable. Both vectors
/// must have equal length. Skips passes whose byte is constant across
/// all keys (common: Morton codes rarely use all 64 bits).
inline void radix_sort_pairs(std::vector<std::uint64_t>& keys,
                             std::vector<std::int32_t>& ids) {
  const auto n = static_cast<std::int64_t>(keys.size());
  if (n <= 1) return;

  // Which bytes vary? OR of all keys vs AND of all keys per byte.
  struct Extent {
    std::uint64_t any;
    std::uint64_t all;
  };
  const Extent extent = parallel_reduce(
      "radix-sort/byte-extent", n, Extent{0, ~std::uint64_t{0}},
      [&](std::int64_t i) {
        return Extent{keys[static_cast<std::size_t>(i)],
                      keys[static_cast<std::size_t>(i)]};
      },
      [](Extent a, Extent b) {
        return Extent{a.any | b.any, a.all & b.all};
      });

  std::vector<std::uint64_t> keys_tmp(keys.size());
  std::vector<std::int32_t> ids_tmp(ids.size());
  std::uint64_t* k_src = keys.data();
  std::int32_t* i_src = ids.data();
  std::uint64_t* k_dst = keys_tmp.data();
  std::int32_t* i_dst = ids_tmp.data();
  for (int pass = 0; pass < 8; ++pass) {
    const int shift = pass * 8;
    const std::uint64_t varying =
        ((extent.any ^ extent.all) >> shift) & 0xff;
    if (varying == 0) continue;  // constant byte: pass is a no-op
    detail::radix_pass(k_src, i_src, k_dst, i_dst, n, shift);
    std::swap(k_src, k_dst);
    std::swap(i_src, i_dst);
  }
  if (k_src != keys.data()) {
    // Odd number of executed passes: copy back.
    parallel_for("radix-sort/copy-back", n, [&](std::int64_t i) {
      keys[static_cast<std::size_t>(i)] = k_src[i];
      ids[static_cast<std::size_t>(i)] = i_src[i];
    });
  }
}

}  // namespace fdbscan::exec
