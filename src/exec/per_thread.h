// PerThread<T> — striped per-worker accumulator, the contention-free
// replacement for hot-loop atomic_fetch_add on a shared counter. Every
// runtime thread (dispatcher = slot 0, workers = 1..num_threads()-1) owns
// one cache-line-aligned slot; kernels accumulate into local() with plain
// loads/stores and the owner combines the slots after the launch. This is
// the scratch-per-team idiom of the GPU substrate the paper runs on: a
// shared atomic serializes every lane on one cache line, a striped
// accumulator costs a private write (DESIGN.md §7).
//
// Contract: local() may be called from inside kernels and from the
// dispatching thread between kernels. combine()/sum() must only be called
// outside a parallel region (they read every slot unsynchronized — the
// launch boundary is the barrier). A PerThread must not be used across a
// set_num_threads() call that grows the pool (slots are sized at
// construction; asserted).
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "exec/thread_pool.h"

namespace fdbscan::exec {

template <class T>
class PerThread {
 public:
  explicit PerThread(const T& init = T{})
      : slots_(static_cast<std::size_t>(num_threads()), Slot{init}) {}

  /// The calling thread's private slot.
  [[nodiscard]] T& local() noexcept {
    const auto i = static_cast<std::size_t>(thread_index());
    assert(i < slots_.size() &&
           "PerThread used after set_num_threads() grew the pool");
    return slots_[i].value;
  }

  /// Folds all slots with `op(acc, slot)` starting from `init`, in slot
  /// order (deterministic). Call only outside a parallel region.
  template <class Op>
  [[nodiscard]] T combine(T init, Op&& op) const {
    for (const Slot& s : slots_) init = op(std::move(init), s.value);
    return init;
  }

  /// Folds all slots with operator+= from a value-initialized T —
  /// the common case for counters and TraversalStats-like tallies.
  [[nodiscard]] T combine() const {
    T total{};
    for (const Slot& s : slots_) total += s.value;
    return total;
  }

  /// Number of slots (== num_threads() at construction).
  [[nodiscard]] int num_slots() const noexcept {
    return static_cast<int>(slots_.size());
  }

  /// Direct slot access (tests, custom merges in slot order).
  [[nodiscard]] const T& slot(int i) const noexcept {
    return slots_[static_cast<std::size_t>(i)].value;
  }
  [[nodiscard]] T& slot(int i) noexcept {
    return slots_[static_cast<std::size_t>(i)].value;
  }

 private:
  // One cache line per slot so neighboring workers never false-share.
  struct alignas(64) Slot {
    T value;
  };
  std::vector<Slot> slots_;
};

}  // namespace fdbscan::exec
