// Reusable kernel workspace — the allocation-amortization half of the
// clustering Engine (core/engine.h, DESIGN.md §9).
//
// A Workspace is a small fixed set of slots, each backed by a grow-only
// byte arena. Algorithms acquire a typed span per run instead of
// constructing fresh std::vectors; after the first run at a given problem
// size every acquire is a pointer cast, so repeated runs (parameter
// sweeps, serving traffic) perform zero heap allocations for their O(n)
// scratch. Growth events are counted (`reallocs()`) — the bench telemetry
// gates that a warmed engine reports zero — and optionally charged to a
// MemoryTracker so the simulated-device accounting sees the arena like
// any other allocation.
//
// Contents are NOT preserved or zeroed between acquires: a slot is raw
// scratch and every kernel must fully overwrite what it reads (the same
// contract a freshly cudaMalloc'ed buffer has).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "exec/memory_tracker.h"

namespace fdbscan::exec {

class Workspace {
 public:
  /// `num_slots` is fixed for the workspace lifetime; `memory` (optional)
  /// is charged for the reserved arena bytes and released on destruction.
  explicit Workspace(int num_slots, MemoryTracker* memory = nullptr)
      : slots_(static_cast<std::size_t>(num_slots)), memory_(memory) {}

  ~Workspace() {
    if (memory_) memory_->release(bytes_reserved_);
  }

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Returns a span of `count` T over slot `slot`, growing the backing
  /// arena if needed (geometric growth; never shrinks). The span is valid
  /// until the next acquire() on the same slot with a larger size, or the
  /// workspace is destroyed. Contents are unspecified.
  template <class T>
  [[nodiscard]] std::span<T> acquire(int slot, std::size_t count) {
    static_assert(alignof(T) <= alignof(std::max_align_t));
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    const std::size_t bytes = count * sizeof(T);
    if (bytes > s.data.size() * sizeof(Unit)) grow(s, bytes);
    return {reinterpret_cast<T*>(s.data.data()), count};
  }

  /// Cumulative number of arena growth events across all slots. A warmed
  /// workspace (every slot at its high-water size) stops incrementing.
  [[nodiscard]] std::int64_t reallocs() const noexcept { return reallocs_; }

  /// Total bytes currently reserved across all slots.
  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    return bytes_reserved_;
  }

 private:
  using Unit = std::max_align_t;  // every slot is max-aligned

  struct Slot {
    std::vector<Unit> data;
  };

  void grow(Slot& s, std::size_t bytes) {
    const std::size_t old_bytes = s.data.size() * sizeof(Unit);
    // Geometric growth so an ascending size sweep costs O(log n) growth
    // events, not one per run.
    const std::size_t target = std::max(bytes, old_bytes * 2);
    const std::size_t units = (target + sizeof(Unit) - 1) / sizeof(Unit);
    // Charge before committing: if the budget rejects the growth the
    // workspace is unchanged (the run unwinds like a failed cudaMalloc).
    if (memory_) memory_->charge(units * sizeof(Unit) - old_bytes);
    // One fresh allocation; old contents are deliberately not carried over
    // (slot contents are unspecified between acquires).
    std::vector<Unit> fresh(units);
    s.data = std::move(fresh);
    bytes_reserved_ += units * sizeof(Unit) - old_bytes;
    ++reallocs_;
  }

  std::vector<Slot> slots_;
  MemoryTracker* memory_;
  std::size_t bytes_reserved_ = 0;
  std::int64_t reallocs_ = 0;
};

}  // namespace fdbscan::exec
