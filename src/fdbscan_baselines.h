// Umbrella header: the comparison baselines of the paper's evaluation
// (§5) — every algorithm FDBSCAN is benchmarked against. Split from
// <fdbscan.h> so that production users do not pull in ~half the library
// for algorithms that exist only to reproduce the paper's tables.
//
//   #include <fdbscan_baselines.h>
//   auto ref = fdbscan::baselines::sequential_dbscan(points, params);
#pragma once

#include "baselines/cell_fof.h"           // IWYU pragma: export
#include "baselines/cuda_dclust.h"        // IWYU pragma: export
#include "baselines/dsdbscan.h"           // IWYU pragma: export
#include "baselines/gdbscan.h"            // IWYU pragma: export
#include "baselines/hybrid_gowanlock.h"   // IWYU pragma: export
#include "baselines/mr_scan.h"            // IWYU pragma: export
#include "baselines/sequential_dbscan.h"  // IWYU pragma: export
