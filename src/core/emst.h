// Parallel Boruvka minimum spanning tree over the complete Euclidean (or
// mutual-reachability) graph, using the BVH for nearest-outside-component
// queries — the tree-based construction behind the HDBSCAN lineage the
// paper cites (§2.1: DBSCAN* "serving as a basis for the hierarchical
// HDBSCAN algorithm"; ArborX later built HDBSCAN on exactly this
// BVH+Boruvka combination).
//
// Each Boruvka round runs one filtered nearest-neighbor query per point
// (batched, data-parallel), reduces the per-component minimum outgoing
// edge with an atomic packed min, and contracts via the concurrent
// union-find. At most ceil(log2 n) rounds.
//
// With `mutual_reachability_k > 1`, edge weights are the HDBSCAN mutual
// reachability distance d_mr(a, b) = max(core_k(a), core_k(b), d(a, b)).
// Cutting the resulting dendrogram at eps reproduces DBSCAN* with
// minpts = k (see hdbscan_cut and the cross-validation tests).
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "bvh/bvh.h"
#include "core/clustering.h"
#include "core/parameter_selection.h"
#include "exec/atomic.h"
#include "exec/parallel.h"
#include "exec/per_thread.h"
#include "geometry/point.h"
#include "unionfind/union_find.h"

namespace fdbscan {

/// One MST edge; `distance` is the edge's metric value (Euclidean or
/// mutual-reachability, not squared).
struct MstEdge {
  std::int32_t a = -1;
  std::int32_t b = -1;
  float distance = 0.0f;
};

struct MstConfig {
  /// 1 = plain Euclidean MST; k > 1 = HDBSCAN mutual reachability with
  /// core distances to the k-th neighbor (k plays the role of minpts).
  std::int32_t mutual_reachability_k = 1;
};

/// Work statistics of a Boruvka run (architecture-neutral, like
/// Clustering's counters). Accumulated contention-free per thread.
struct MstStats {
  std::int64_t rounds = 0;                 ///< Boruvka contraction rounds
  std::int64_t distance_computations = 0;  ///< metric evaluations in queries
};

namespace detail {

/// Packs a non-negative float and a 31-bit payload into an order-
/// preserving uint64 (IEEE-754 bit patterns of non-negative floats sort
/// like the floats themselves).
[[nodiscard]] inline std::uint64_t pack_min_key(float value,
                                                std::int32_t payload) noexcept {
  std::uint32_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, sizeof(bits));
  return (static_cast<std::uint64_t>(bits) << 32) |
         static_cast<std::uint32_t>(payload);
}

[[nodiscard]] inline std::int32_t unpack_payload(std::uint64_t key) noexcept {
  return static_cast<std::int32_t>(key & 0xffffffffu);
}

}  // namespace detail

/// Boruvka MST. Returns exactly n-1 edges for n >= 2 (the complete graph
/// is always connected); empty for n <= 1. Pass `stats` to receive round
/// and distance-evaluation counts.
template <int DIM>
[[nodiscard]] std::vector<MstEdge> euclidean_mst(
    const std::vector<Point<DIM>>& points, const MstConfig& config = {},
    MstStats* stats = nullptr) {
  const auto n = static_cast<std::int32_t>(points.size());
  std::vector<MstEdge> mst;
  if (n <= 1) {
    if (stats) *stats = {};
    return mst;
  }
  mst.reserve(static_cast<std::size_t>(n) - 1);

  Bvh<DIM> bvh(points);

  // Squared core distances for the mutual-reachability metric.
  std::vector<float> core2;
  if (config.mutual_reachability_k > 1) {
    core2 = k_distances(points, config.mutual_reachability_k);
    exec::parallel_for("emst/core-dist2", n, [&](std::int64_t i) {
      auto& c = core2[static_cast<std::size_t>(i)];
      c = c * c;
    });
  }
  auto metric2 = [&](std::int32_t a, std::int32_t b) {
    float m = squared_distance(points[static_cast<std::size_t>(a)],
                               points[static_cast<std::size_t>(b)]);
    if (!core2.empty()) {
      m = std::max({m, core2[static_cast<std::size_t>(a)],
                    core2[static_cast<std::size_t>(b)]});
    }
    return m;
  };

  std::vector<std::int32_t> labels(points.size());
  init_singletons(labels);
  UnionFindView uf(labels.data(), n);

  std::vector<std::int32_t> component(points.size());
  std::vector<std::int32_t> candidate(points.size());   // per-point best target
  std::vector<float> candidate_dist2(points.size());
  std::vector<std::uint64_t> component_best(points.size());

  // Distance-evaluation tally: striped per-thread slots, not a shared
  // atomic — the eval callback is the innermost loop of every query.
  exec::PerThread<std::int64_t> distance_evals;
  std::int64_t rounds = 0;

  std::int32_t num_components = n;
  while (num_components > 1) {
    ++rounds;
    // Stable component snapshot for this round.
    exec::parallel_for("emst/round/snapshot", n, [&](std::int64_t i) {
      component[static_cast<std::size_t>(i)] =
          uf.representative(static_cast<std::int32_t>(i));
      component_best[static_cast<std::size_t>(i)] = ~std::uint64_t{0};
    });

    // Per-point nearest neighbor outside the own component, then reduce
    // to a per-component minimum (packed atomic min on the root's slot).
    exec::parallel_for("emst/round/nearest", n, [&](std::int64_t ii) {
      const auto i = static_cast<std::int32_t>(ii);
      const std::int32_t my_component = component[static_cast<std::size_t>(i)];
      std::int64_t evals = 0;  // stack-local, flushed once per query
      const auto [target, d2] = bvh.nearest_by(
          points[static_cast<std::size_t>(i)], [&](std::int32_t id) {
            if (component[static_cast<std::size_t>(id)] == my_component) {
              return std::numeric_limits<float>::infinity();
            }
            ++evals;
            return metric2(i, id);
          });
      distance_evals.local() += evals;
      candidate[static_cast<std::size_t>(i)] = target;
      candidate_dist2[static_cast<std::size_t>(i)] = d2;
      if (target >= 0) {
        exec::atomic_fetch_min(
            component_best[static_cast<std::size_t>(my_component)],
            detail::pack_min_key(d2, i));
      }
    });

    // Contract: every component adds its minimum outgoing edge. An edge
    // picked from both sides merges once (unite() reports novelty).
    for (std::int32_t root = 0; root < n; ++root) {
      const std::uint64_t best = component_best[static_cast<std::size_t>(root)];
      if (best == ~std::uint64_t{0}) continue;  // not a live root this round
      const std::int32_t from = detail::unpack_payload(best);
      const std::int32_t to = candidate[static_cast<std::size_t>(from)];
      const std::int32_t ra = uf.representative(from);
      const std::int32_t rb = uf.representative(to);
      if (ra == rb) continue;  // the reverse edge already merged us
      uf.merge(ra, rb);
      mst.push_back(
          {from, to,
           std::sqrt(candidate_dist2[static_cast<std::size_t>(from)])});
      --num_components;
    }
  }
  if (stats) {
    stats->rounds = rounds;
    stats->distance_computations = distance_evals.combine();
  }
  return mst;
}

/// Total weight of an edge set (the quantity that is unique across all
/// valid MSTs, used by the correctness tests).
[[nodiscard]] inline double mst_weight(const std::vector<MstEdge>& edges) {
  double total = 0.0;
  for (const auto& e : edges) total += e.distance;
  return total;
}

/// Cuts a mutual-reachability dendrogram at `eps`: connects MST edges
/// with weight <= eps among points whose core distance is <= eps, and
/// labels the rest noise — by construction this equals DBSCAN* with
/// (eps, minpts = k) on the same data (HDBSCAN's defining property).
/// This overload takes precomputed core distances (from k_distances with
/// the same k as the MST), so sweeping many cuts over one MST costs only
/// the union-find pass per cut.
[[nodiscard]] inline Clustering hdbscan_cut(
    const std::vector<float>& core_distances, const std::vector<MstEdge>& mst,
    float eps) {
  const auto n = static_cast<std::int32_t>(core_distances.size());
  Clustering result;
  if (n == 0) return result;
  const auto& core = core_distances;
  std::vector<std::uint8_t> is_core(core_distances.size());
  exec::parallel_for("hdbscan-cut/core-flags", n, [&](std::int64_t i) {
    is_core[static_cast<std::size_t>(i)] =
        core[static_cast<std::size_t>(i)] <= eps ? 1 : 0;
  });
  std::vector<std::int32_t> labels(core_distances.size());
  init_singletons(labels);
  UnionFindView uf(labels.data(), n);
  for (const auto& edge : mst) {
    if (edge.distance <= eps) uf.merge(edge.a, edge.b);
  }
  flatten(labels);
  // Re-root every cluster at a core member so finalize_labels recognizes
  // it (an all-noise chain collapses away naturally).
  std::vector<std::int32_t> rerooted(core_distances.size());
  exec::parallel_for("hdbscan-cut/reroot-init", n, [&](std::int64_t i) {
    rerooted[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(i);
  });
  std::vector<std::int32_t> cluster_root(core_distances.size(), -1);
  for (std::int32_t i = 0; i < n; ++i) {
    if (is_core[static_cast<std::size_t>(i)] == 0) continue;
    auto& root = cluster_root[static_cast<std::size_t>(
        labels[static_cast<std::size_t>(i)])];
    if (root < 0) root = i;
  }
  exec::parallel_for("hdbscan-cut/reroot", n, [&](std::int64_t i) {
    const auto ui = static_cast<std::size_t>(i);
    if (is_core[ui] == 0) return;  // DBSCAN*: non-core points are noise
    rerooted[ui] =
        cluster_root[static_cast<std::size_t>(labels[ui])];
  });
  return detail::finalize_labels(std::move(rerooted), std::move(is_core));
}

/// Convenience overload computing the core distances itself (one-shot
/// cuts; for sweeps, compute k_distances once and use the overload
/// above).
template <int DIM>
[[nodiscard]] Clustering hdbscan_cut(const std::vector<Point<DIM>>& points,
                                     const std::vector<MstEdge>& mst,
                                     std::int32_t k, float eps) {
  if (points.empty()) return {};
  return hdbscan_cut(k_distances(points, std::max(k, std::int32_t{2})), mst,
                     eps);
}

}  // namespace fdbscan
